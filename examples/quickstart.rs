//! Quickstart: wrap a self-test routine with the paper's cache-based
//! strategy, learn its golden signature, and run it with the embedded
//! self-check on a fully contended triple-core SoC.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use det_sbst::cpu::{CoreConfig, CoreKind};
use det_sbst::soc::SocBuilder;
use det_sbst::stl::routines::{GenericAluTest, IcuTest};
use det_sbst::stl::{
    learn_golden_cached, wrap_cached, RoutineEnv, WrapConfig, RESULT_STATUS_OFF, STATUS_PASS,
};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let kind = CoreKind::A;
    let routine = IcuTest::new();
    let env = RoutineEnv::for_core(kind);
    let mut cfg = WrapConfig::default();

    // 1. Learn the fault-free signature once, on a single cached core.
    let golden = learn_golden_cached(&routine, &env, &cfg, kind, 0x400)?;
    println!("golden signature: {golden:#010x}");

    // 2. Embed it as the in-field self-check and build the test program.
    cfg.expected_sig = Some(golden);
    let program = wrap_cached(&routine, &env, &cfg, "icu")?.assemble(0x400)?;

    // 3. Run it on core A while cores B and C hammer the shared bus.
    let mut builder = SocBuilder::new()
        .load(&program)
        .core(CoreConfig::cached(kind, 0, 0x400), 0);
    for core in 1..3usize {
        let tenv = RoutineEnv {
            result_addr: det_sbst::mem::SRAM_BASE + 0x800 + 0x100 * core as u32,
            data_base: det_sbst::mem::SRAM_BASE + 0x2000 + 0x400 * core as u32,
            ..env
        };
        let traffic = wrap_cached(
            &GenericAluTest::new(10),
            &tenv,
            &WrapConfig { icache_capacity: u32::MAX, ..WrapConfig::default() },
            &format!("t{core}"),
        )?;
        let base = 0x40000 * core as u32;
        builder = builder
            .load(&traffic.assemble(base)?)
            .core(CoreConfig::uncached(CoreKind::ALL[core], core, base), core as u32 * 5);
    }
    let mut soc = builder.build();
    let outcome = soc.run(10_000_000);
    let status = soc.peek(env.result_addr + RESULT_STATUS_OFF as u32);

    println!("outcome: {outcome:?}");
    println!(
        "self-check: {}",
        if status == STATUS_PASS { "PASS — signature stable under contention" } else { "FAIL" }
    );
    assert_eq!(status, STATUS_PASS);
    Ok(())
}
