//! A small forwarding-logic fault campaign: grades a sample of stuck-at
//! faults across a few uncached multi-core scenarios (coverage
//! oscillates) and under the cache-based wrapper (stable, higher).
//!
//! ```sh
//! cargo run --release --example fault_campaign
//! ```

use det_sbst::campaign::{routines_for, run_campaign, ExecStyle, Experiment};
use det_sbst::cpu::{unit_fault_list, CoreKind};
use det_sbst::fault::Unit;
use det_sbst::soc::Scenario;

fn main() {
    let kind = CoreKind::A;
    let faults = unit_fault_list(kind, Unit::Forwarding).sample(40);
    let factory = routines_for(Unit::Forwarding);
    println!(
        "grading {} of {} forwarding faults on core {kind}\n",
        faults.len(),
        unit_fault_list(kind, Unit::Forwarding).len()
    );

    println!("legacy execution (no caches), 3 cores, varying SoC configuration:");
    let (mut min, mut max) = (f64::MAX, f64::MIN);
    for seed in 0..4u64 {
        let scenario = Scenario { active_cores: 3, skew_seed: seed, ..Scenario::single_core() };
        let exp = Experiment::assemble(&*factory, kind, ExecStyle::LegacyUncached, &scenario)
            .expect("experiment");
        let golden = exp.golden();
        let res = run_campaign(&exp, &golden, &faults, 0);
        println!("  config #{seed}: {res}");
        min = min.min(res.coverage());
        max = max.max(res.coverage());
    }
    println!("  -> coverage oscillates between {min:.2}% and {max:.2}%\n");

    println!("cache-based wrapper, same contention:");
    let scenario = Scenario { active_cores: 3, ..Scenario::single_core() };
    let exp = Experiment::assemble(&*factory, kind, ExecStyle::CacheWrapped, &scenario)
        .expect("experiment");
    let golden = exp.golden();
    let res = run_campaign(&exp, &golden, &faults, 0);
    println!("  {res}");
    println!(
        "\n=> deterministic {:.2}% — higher than the best uncached scenario ({max:.2}%)",
        res.coverage()
    );
}
