//! Fault-tolerant boot: the STL supervisor runs the parallel boot test
//! under a watchdog, retries a hung core with cold caches and an
//! escalating budget, quarantines it when the retries are exhausted,
//! and still completes the self-test on the healthy cores.
//!
//! Core 1 is armed with a stuck-at-1 stall line in its hazard unit — a
//! fault that hangs the pipeline, so only the watchdog can report it.
//!
//! ```sh
//! cargo run --release --example degraded_boot
//! ```

use det_sbst::cpu::{CoreKind, HDCU_CTRL};
use det_sbst::fault::{Element, FaultPlane, FaultSite, Polarity, Unit};
use det_sbst::mem::SRAM_BASE;
use det_sbst::stl::routines::{GenericAluTest, RegFileTest};
use det_sbst::stl::sched::CoreStl;
use det_sbst::stl::{RoutineEnv, Supervisor, SupervisorConfig};

fn stl_for(core: usize) -> CoreStl {
    let env = RoutineEnv {
        result_addr: SRAM_BASE + 0x2000 + 0x100 * core as u32,
        data_base: SRAM_BASE + 0x5000 + 0x400 * core as u32,
        ..RoutineEnv::for_core(CoreKind::ALL[core])
    };
    CoreStl::new(
        vec![Box::new(RegFileTest::new()), Box::new(GenericAluTest::new(3))],
        env,
    )
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut sup = Supervisor::new(SupervisorConfig {
        max_retries: 2,
        watchdog_timeout: 150_000,
        base_budget: 2_000_000,
        ..Default::default()
    });
    for core in 0..3 {
        sup.add_core(core, stl_for(core));
    }

    // Break core 1's silicon: a stuck stall line that hangs its pipeline.
    sup.set_plane(
        1,
        FaultPlane::armed(FaultSite {
            unit: Unit::Hdcu,
            instance: HDCU_CTRL,
            element: Element::StallLine { line: 4 },
            polarity: Polarity::StuckAt1,
        }),
    );

    println!("running the supervised boot test (core 1 silicon is broken)...\n");
    let report = sup.run()?;
    println!("{report}");

    println!("\ndegraded boot: {}", report.degraded());
    println!("quarantined cores: {:?}", report.quarantined());
    assert!(report.degraded());
    assert_eq!(report.quarantined(), vec![1]);
    Ok(())
}
