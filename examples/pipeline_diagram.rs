//! Figure 1 as a runnable example: cycle-by-cycle pipeline occupancy of
//! the forwarding snippet in an undisturbed run (EX-to-EX path excited)
//! versus a bus-contended uncached run (forwarding path broken).
//!
//! ```sh
//! cargo run --release --example pipeline_diagram
//! ```

use det_sbst::cpu::{CoreConfig, CoreKind};
use det_sbst::isa::{Asm, Reg};
use det_sbst::soc::{PipelineTrace, SocBuilder};
use det_sbst::stl::routines::GenericAluTest;
use det_sbst::stl::{wrap_cached, RoutineEnv, WrapConfig};

fn snippet() -> Asm {
    let mut a = Asm::new();
    a.li(Reg::R1, 10);
    a.li(Reg::R2, 20);
    a.li(Reg::R3, 1);
    a.align(16);
    a.add(Reg::R7, Reg::R1, Reg::R2); // producer
    a.nop();
    a.add(Reg::R8, Reg::R7, Reg::R3); // consumer (wants EX/MEM forwarding)
    a.nop();
    a.halt();
    a
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let base = 0x400;
    let program = snippet().assemble(base)?;
    let window = (base + 0x10, base + 0x30);

    println!("(a) single core, warm caches — dependent adds one packet apart:\n");
    let mut soc = SocBuilder::new()
        .load(&program)
        .core(CoreConfig::cached(CoreKind::A, 0, base), 0)
        .build();
    let trace = PipelineTrace::capture(&mut soc, 0, 5_000);
    println!("{}", trace.diagram(window.0, window.1));

    println!("(b) caches off, two other cores loading the bus — the consumer");
    println!("    enters the pipeline several cycles late; the EX-to-EX path");
    println!("    is never excited (its faults would stay untested):\n");
    let tenv = RoutineEnv {
        result_addr: det_sbst::mem::SRAM_BASE + 0x800,
        data_base: det_sbst::mem::SRAM_BASE + 0x1000,
        ..RoutineEnv::for_core(CoreKind::B)
    };
    let traffic = wrap_cached(
        &GenericAluTest::new(30),
        &tenv,
        &WrapConfig { iterations: 1, invalidate: false, icache_capacity: u32::MAX, ..WrapConfig::default() },
        "t",
    )?;
    let mut builder = SocBuilder::new()
        .load(&program)
        .core(CoreConfig::uncached(CoreKind::A, 0, base), 0);
    for core in 1..3usize {
        let tbase = 0x20000 * core as u32;
        builder = builder
            .load(&traffic.assemble(tbase)?)
            .core(CoreConfig::uncached(CoreKind::ALL[core], core, tbase), core as u32);
    }
    let mut soc = builder.build();
    let trace = PipelineTrace::capture(&mut soc, 0, 500_000);
    println!("{}", trace.diagram(window.0, window.1));
    Ok(())
}
