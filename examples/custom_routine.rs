//! Writing your own self-test routine as assembly text and running it
//! under the cache-based deterministic wrapper.
//!
//! ```sh
//! cargo run --release --example custom_routine
//! ```

use det_sbst::cpu::CoreKind;
use det_sbst::stl::{
    learn_golden_cached, run_standalone, wrap_cached, RoutineEnv, TextRoutine, WrapConfig,
    STATUS_PASS,
};
use det_sbst::fault::FaultPlane;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A tiny shifter test in plain assembly. `{data_base}` is substituted
    // with this routine's private scratch area; the signature lives in
    // r20 (scratch r30), as for every STL routine.
    let routine = TextRoutine::new(
        "shifter-walk",
        r"
            li   r8, {data_base}
            li   r1, 1
            li   r2, 31
        walk:
            sll  r3, r1, r2       ; walk a one across the barrel shifter
            srl  r4, r3, r2
            add  r3, r3, r4       ; combine before folding
            ; sig = rotl(sig,1) ^ r3
            slli r30, r20, 1
            srli r20, r20, 31
            or   r20, r30, r20
            xor  r20, r20, r3
            sw   r3, 0(r8)        ; and bounce it through the D$
            lw   r5, 0(r8)
            slli r30, r20, 1
            srli r20, r20, 31
            or   r20, r30, r20
            xor  r20, r20, r5
            subi r2, r2, 1
            bge  r2, r0, walk
        ",
    )?;

    let kind = CoreKind::A;
    let env = RoutineEnv::for_core(kind);
    let mut cfg = WrapConfig::default();
    let golden = learn_golden_cached(&routine, &env, &cfg, kind, 0x400)?;
    println!("custom routine `shifter-walk` golden signature: {golden:#010x}");

    cfg.expected_sig = Some(golden);
    let asm = wrap_cached(&routine, &env, &cfg, "user")?;
    let report = run_standalone(&asm, &env, kind, true, 0x400, FaultPlane::fault_free(), 5_000_000);
    println!("self-check: {}", if report.status == STATUS_PASS { "PASS" } else { "FAIL" });
    assert_eq!(report.status, STATUS_PASS);
    Ok(())
}
