//! Section II demo: the HDCU routine (which folds performance counters
//! into its signature) produces a *different signature on every SoC
//! configuration* when executed the legacy way in a multi-core system —
//! and a single stable value once wrapped with the cache-based strategy.
//!
//! ```sh
//! cargo run --release --example unstable_signature
//! ```

use det_sbst::campaign::{routines_for, ExecStyle, Experiment};
use det_sbst::cpu::CoreKind;
use det_sbst::fault::Unit;
use det_sbst::soc::Scenario;

fn main() {
    let factory = routines_for(Unit::Hdcu);
    println!("HDCU routine (performance counters folded into the signature)\n");

    println!("legacy execution, caches off, 3 active cores:");
    for seed in 0..5u64 {
        let scenario = Scenario { active_cores: 3, skew_seed: seed, ..Scenario::single_core() };
        let exp = Experiment::assemble(&*factory, CoreKind::A, ExecStyle::LegacyUncached, &scenario)
            .expect("experiment");
        let obs = exp.golden();
        println!("  SoC configuration #{seed}: signature = {:#010x}", obs.signature);
    }

    println!("\ncache-based wrapper, same contention:");
    let mut sigs = Vec::new();
    for seed in 0..5u64 {
        let scenario = Scenario { active_cores: 3, skew_seed: seed, ..Scenario::single_core() };
        let exp = Experiment::assemble(&*factory, CoreKind::A, ExecStyle::CacheWrapped, &scenario)
            .expect("experiment");
        let obs = exp.golden();
        println!("  SoC configuration #{seed}: signature = {:#010x}", obs.signature);
        sigs.push(obs.signature);
    }
    assert!(sigs.windows(2).all(|w| w[0] == w[1]), "wrapper must be deterministic");
    println!("\n=> the wrapped signature is identical in every configuration:");
    println!("   the self-test can safely compare against one golden value in field.");
}
