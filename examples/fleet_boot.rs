//! Fleet campaign demo: a heterogeneous ECU population graded through
//! the lease-based fleet orchestrator while a seeded chaos plane
//! panics, hangs and corrupts workers mid-shard.
//!
//! Three acts:
//!
//! 1. an uninterrupted serial run over the whole population — the
//!    ground truth every fleet run must reproduce bit-identically;
//! 2. a 4-worker fleet under a chaos storm with a forced panic and a
//!    forced hang — leases expire, work is stolen, shards retried with
//!    jittered exponential backoff, and the merged verdict map still
//!    equals the serial baseline;
//! 3. a killed worker resuming from its crash-atomic shard checkpoint
//!    — the retry restores already-graded faults instead of paying for
//!    them twice.
//!
//! ```sh
//! cargo run --release --example fleet_boot
//! ```

use std::time::Duration;

use det_sbst::campaign::fleet::{
    run_fleet, run_fleet_serial, ChaosAction, EcuSpec, ExperimentFleetGrader, FleetConfig,
    FleetPlan, ForcedFailure, LeasePolicy, ShardFate, WorkerChaos,
};
use det_sbst::cpu::unit_fault_list;
use det_sbst::fault::{FaultList, Unit};

fn plan() -> FleetPlan {
    let ecus = EcuSpec::population(Unit::Icu);
    let faults: Vec<FaultList> = ecus
        .iter()
        .map(|e| unit_fault_list(e.config.kind, Unit::Icu).sample(19))
        .collect();
    FleetPlan::build(ecus, faults, 3)
}

fn main() {
    let plan = plan();
    println!("ECU population under test:");
    for (i, ecu) in plan.ecus.iter().enumerate() {
        println!(
            "  #{i} {:18} {} faults, fingerprint {:#018x}",
            ecu.name,
            plan.ecu_faults(i).len(),
            ecu.fingerprint()
        );
    }
    println!(
        "=> {} faults tiled into {} leased shards\n",
        plan.total_faults(),
        plan.shard_count()
    );

    // Act 1 — the ground truth.
    let grader = ExperimentFleetGrader::new(&plan).expect("assemble fleet");
    let baseline = run_fleet_serial(&plan, &grader);
    println!("act 1: serial baseline graded {} shards\n", baseline.len());

    // Act 2 — chaos storm with a forced panic and a forced hang.
    let mut chaos = WorkerChaos::storm(0xf1ee7);
    chaos.forced.extend([
        ForcedFailure { shard: 0, attempt: 1, action: ChaosAction::Panic { after: 1 } },
        ForcedFailure { shard: 2, attempt: 1, action: ChaosAction::Hang { after: 0 } },
    ]);
    let cfg = FleetConfig {
        workers: 4,
        policy: LeasePolicy {
            max_retries: 6,
            lease_timeout: Duration::from_millis(2000),
            backoff_base: Duration::from_millis(2),
            backoff_cap: Duration::from_millis(16),
            seed: 0xf1ee7,
        },
        chaos,
        checkpoint_dir: None,
        checkpoint_every: 4,
        poll: Duration::from_millis(2),
    };
    let report = run_fleet(&plan, &grader, &cfg);
    println!("act 2: chaos storm — {}", report.telemetry);
    for (i, fate) in report.fates.iter().enumerate() {
        match fate {
            ShardFate::Completed { attempts, steals, resumed_faults } => {
                if *attempts > 1 || *steals > 0 {
                    println!(
                        "  shard {i}: survived after {attempts} attempts \
                         ({steals} steals, {resumed_faults} faults resumed)"
                    );
                }
                assert_eq!(
                    report.verdicts[i].as_deref(),
                    Some(baseline[i].as_slice()),
                    "shard {i} diverged from the serial baseline"
                );
            }
            ShardFate::Quarantined { cause, attempts } => {
                println!("  shard {i}: QUARANTINED after {attempts} attempts ({})", cause.as_str());
            }
        }
    }
    println!("=> every completed shard is bit-identical to the serial run\n");

    // Act 3 — crash, checkpoint, resume.
    let ckpt = std::env::temp_dir().join(format!("sbst-fleet-boot-{}", std::process::id()));
    std::fs::create_dir_all(&ckpt).expect("checkpoint dir");
    let mut chaos = WorkerChaos::off();
    chaos
        .forced
        .push(ForcedFailure { shard: 4, attempt: 1, action: ChaosAction::Panic { after: 2 } });
    let cfg = FleetConfig {
        checkpoint_dir: Some(ckpt.clone()),
        checkpoint_every: 1,
        chaos,
        policy: LeasePolicy {
            lease_timeout: Duration::from_secs(30),
            ..LeasePolicy::fast(7)
        },
        ..FleetConfig::new(2, 7)
    };
    let report = run_fleet(&plan, &grader, &cfg);
    let t = &report.telemetry;
    println!(
        "act 3: worker killed 2 faults into shard 4 — retry restored {} graded faults \
         from its checkpoint ({} resumes, {} retries)",
        t.faults_restored, t.counters.resumes, t.counters.retries
    );
    assert!(report.is_complete(), "the resumed fleet must complete everything");
    assert!(t.faults_restored >= 2, "the checkpoint must save re-grading work");
    for (i, verdicts) in report.verdicts.iter().enumerate() {
        assert_eq!(verdicts.as_deref(), Some(baseline[i].as_slice()));
    }
    let _ = std::fs::remove_dir_all(&ckpt);
    println!("=> resumed verdicts bit-identical to the serial run");
}
