//! Chaos-layer demo: adversarial bus interference and transient upsets
//! against the cache-wrapped runtime.
//!
//! Three acts:
//!
//! 1. a programmable traffic injector hammers the shared bus — the
//!    legacy (unwrapped) signature moves, the cache-wrapped one does
//!    not;
//! 2. seeded single-event upsets corrupt cached lines / in-flight bus
//!    words — the self-healing wrapper cross-checks the signature and
//!    retries on a fresh SoC, escalating to quarantine only when every
//!    attempt is struck;
//! 3. a small chaos campaign sweeps injector intensity × SEU rate and
//!    reports detection / recovery / false-quarantine statistics.
//!
//! ```sh
//! cargo run --release --example chaos_recovery
//! ```

use det_sbst::campaign::{run_chaos_campaign, ChaosSweepConfig};
use det_sbst::cpu::CoreKind;
use det_sbst::fault::FaultPlane;
use det_sbst::mem::{InjectorProgram, SeuConfig};
use det_sbst::soc::ChaosConfig;
use det_sbst::stl::routines::ForwardingTest;
use det_sbst::stl::{
    cycle_budget_for, heal_standalone, run_chaotic, run_standalone, wrap_cached, HealConfig,
    RoutineEnv, WrapConfig,
};

const KIND: CoreKind = CoreKind::A;
const BASE: u32 = 0x1000;

fn main() {
    let routine = ForwardingTest::with_pcs(KIND);
    let env = RoutineEnv::for_core(KIND);
    let wrapped = wrap_cached(&routine, &env, &WrapConfig::default(), "chaos").expect("wraps");
    let legacy_cfg = WrapConfig {
        iterations: 1,
        invalidate: false,
        icache_capacity: u32::MAX,
        ..WrapConfig::default()
    };
    let unwrapped = wrap_cached(&routine, &env, &legacy_cfg, "legacy").expect("wraps");
    let budget_w = cycle_budget_for(&env, &wrapped);
    let budget_u = cycle_budget_for(&env, &unwrapped);

    // Act 1 — interference invariance.
    let solo_w =
        run_standalone(&wrapped, &env, KIND, true, BASE, FaultPlane::fault_free(), budget_w);
    let solo_u =
        run_standalone(&unwrapped, &env, KIND, false, BASE, FaultPlane::fault_free(), budget_u);
    println!("forwarding routine (stall counters folded into the signature)");
    println!("  solo baselines: wrapped {:#010x}, legacy {:#010x}\n", solo_w.signature,
             solo_u.signature);
    println!("adversarial traffic injector on the shared bus:");
    println!("  program              | legacy signature | wrapped signature");
    let mut diverged = 0;
    for seed in 0..5u64 {
        let prog = InjectorProgram::from_seed(seed);
        let chaos = ChaosConfig::interference(prog);
        let u = run_chaotic(&unwrapped, &env, KIND, false, BASE, chaos, budget_u);
        let w = run_chaotic(&wrapped, &env, KIND, true, BASE, chaos, budget_w);
        let moved = if u.signature != solo_u.signature { diverged += 1; "MOVED" } else { "same " };
        println!("  {:20} | {:#010x} {moved} | {:#010x}", format!("{:?}", prog.pattern),
                 u.signature, w.signature);
        assert_eq!(w.signature, solo_w.signature, "wrapped signature must be invariant");
    }
    println!("=> the wrapper kept its signature bit-identical under all {diverged} diverging programs\n");

    // Act 2 — self-healing under transient upsets.
    println!("transient upsets (SEU) at 1000 ppm, golden-checked healer:");
    for seed in 0..8u64 {
        let chaos = ChaosConfig {
            injector: InjectorProgram::from_seed(seed),
            seu: SeuConfig::at_rate(seed ^ 0xbeef, 1_000),
        };
        let report = heal_standalone(
            &routine, &env, &WrapConfig::default(), KIND, BASE, chaos,
            &HealConfig::golden(solo_w.signature),
        )
        .expect("wraps");
        println!("  seed {seed:2}: {report}");
        if let Some(sig) = report.signature {
            assert_eq!(sig, solo_w.signature, "healer must never trust a corrupted signature");
        }
    }
    println!("=> every trusted signature equals the golden; disturbed runs retry or escalate\n");

    // Act 3 — the chaos campaign.
    println!("chaos campaign (smoke sweep):");
    let report = run_chaos_campaign(&ChaosSweepConfig::smoke(0xc4a0)).expect("campaign");
    println!("{report}");
    assert_eq!(report.silent_total(), 0, "silent corruption must be impossible");
    assert_eq!(report.false_quarantines(), 0, "no quarantine without transients");
    println!("=> zero silent corruptions, zero false quarantines");
}
