//! Run-time self-test coexistence (paper §I): unlike boot-time tests,
//! run-time tests execute *during application idle windows*. This
//! example shows an "application" main loop on core A that periodically
//! calls a cache-wrapped routine as a subroutine (`ret` terminator) while
//! cores B and C run their own workloads — the STL coexisting with
//! application software, as the paper requires of a deployable library.
//!
//! ```sh
//! cargo run --release --example runtime_tests
//! ```

use det_sbst::cpu::{CoreConfig, CoreKind};
use det_sbst::isa::{Asm, Reg};
use det_sbst::mem::SRAM_BASE;
use det_sbst::soc::SocBuilder;
use det_sbst::stl::routines::RegFileTest;
use det_sbst::stl::{
    learn_golden_cached, wrap_cached, RoutineEnv, Terminator, WrapConfig, STATUS_PASS,
};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let kind = CoreKind::A;
    let routine = RegFileTest::new();
    let env = RoutineEnv::for_core(kind);
    let mut cfg = WrapConfig::default();
    cfg.expected_sig = Some(learn_golden_cached(&routine, &env, &cfg, kind, 0x4000)?);
    cfg.terminator = Terminator::Ret; // callable from the application

    // Application: 4 "work periods", each followed by an idle window in
    // which the self-test runs. Self-test routines clobber the general
    // registers (they *test* the register file), so the application
    // spills its live state to SRAM around each call — exactly what the
    // paper means by the STL "complying with the requirements of the
    // embedded software".
    let save = SRAM_BASE + 0x3000;
    let mut app = Asm::new();
    app.li(Reg::R24, 4); // periods
    app.label("period");
    //   ... the application's real work ...
    app.li(Reg::R26, 40);
    app.label("work");
    app.addi(Reg::R25, Reg::R25, 1);
    app.subi(Reg::R26, Reg::R26, 1);
    app.bne(Reg::R26, Reg::R0, "work");
    //   idle window: spill, run the self-test, restore.
    app.li(Reg::R1, save);
    app.sw(Reg::R24, Reg::R1, 0);
    app.sw(Reg::R25, Reg::R1, 4);
    app.call("selftest");
    app.li(Reg::R1, save);
    app.lw(Reg::R24, Reg::R1, 0);
    app.lw(Reg::R25, Reg::R1, 4);
    app.subi(Reg::R24, Reg::R24, 1);
    app.bne(Reg::R24, Reg::R0, "period");
    app.halt();
    app.label("selftest");
    let wrapped = wrap_cached(&routine, &env, &cfg, "rt")?;
    app.append(&wrapped);

    let base = 0x1000;
    let program = app.assemble(base)?;
    let mut builder = SocBuilder::new()
        .load(&program)
        .core(CoreConfig::cached(kind, 0, base), 0);
    // Background workloads on the other cores.
    for core in 1..3usize {
        let mut w = Asm::new();
        w.li(Reg::R1, 3000);
        w.label("spin");
        w.addi(Reg::R2, Reg::R2, 1);
        w.subi(Reg::R1, Reg::R1, 1);
        w.bne(Reg::R1, Reg::R0, "spin");
        w.halt();
        let wbase = 0x40000 * core as u32;
        builder = builder
            .load(&w.assemble(wbase)?)
            .core(CoreConfig::uncached(CoreKind::ALL[core], core, wbase), core as u32);
    }
    let mut soc = builder.build();
    let outcome = soc.run(10_000_000);
    println!("outcome: {outcome:?}");
    println!("application work done: {}", soc.core(0).reg(Reg::R25));
    let status = soc.peek(env.result_addr + 4);
    println!(
        "last in-idle self-test: {}",
        if status == STATUS_PASS { "PASS" } else { "FAIL/NOT-RUN" }
    );
    assert!(outcome.is_clean());
    assert_eq!(soc.core(0).reg(Reg::R25), 160);
    assert_eq!(status, STATUS_PASS, "run-time test passed in every idle window");
    assert_eq!(SRAM_BASE, det_sbst::mem::SRAM_BASE);
    Ok(())
}
