//! Table IV as a runnable example: the TCM-based strategy versus the
//! cache-based strategy on the imprecise-interrupt routine.
//!
//! ```sh
//! cargo run --release --example tcm_vs_cache
//! ```

use det_sbst::campaign::tables::{render_table4, table4};

fn main() {
    let rows = table4();
    println!("{}", render_table4(&rows));
    println!("TCM-based execution copies the routine into the scratchpad once and");
    println!("runs it from there: fast, but those {} bytes of TCM stay permanently", rows[0].overhead_bytes);
    println!("reserved for test purposes. The cache-based wrapper costs {} extra", rows[1].cycles - rows[0].cycles);
    println!("cycles (the loading loop) and not a single byte of dedicated memory.");
}
