//! The deployable flow: declare a Software Test Library for the
//! triple-core SoC, let the library learn golden signatures and build a
//! self-checking boot image, run the parallel boot test, read verdicts.
//!
//! ```sh
//! cargo run --release --example boot_image
//! ```

use det_sbst::cpu::CoreKind;
use det_sbst::stl::routines::{
    BranchTest, ForwardingTest, GenericAluTest, HdcuTest, IcuTest, LsuTest, RegFileTest,
};
use det_sbst::stl::StlCatalog;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut catalog = StlCatalog::new();
    // Core A: datapath-heavy routines.
    catalog.add("A/regfile", 0, Box::new(RegFileTest::new()));
    catalog.add("A/forwarding", 0, Box::new(ForwardingTest::without_pcs(CoreKind::A)));
    // Core B: control + memory.
    catalog.add("B/branch", 1, Box::new(BranchTest::new()));
    catalog.add("B/lsu", 1, Box::new(LsuTest::new()));
    catalog.add("B/hdcu", 1, Box::new(HdcuTest::new(CoreKind::B)));
    // Core C: interrupts + generic.
    catalog.add("C/icu", 2, Box::new(IcuTest::new()));
    catalog.add("C/alu", 2, Box::new(GenericAluTest::new(3)));

    println!("learning golden signatures and building the boot image...");
    let image = catalog.build()?;
    for (core, base, program) in image.programs() {
        println!(
            "  core {core}: {} bytes of boot-test code at {base:#x}",
            program.len_bytes()
        );
    }

    println!("\nrunning the parallel boot test (all cores, cache-wrapped)...");
    let report = image.run(120_000_000);
    let mut lines: Vec<String> =
        report.iter().map(|(n, v)| format!("  {n:<14} {v}")).collect();
    lines.sort();
    for l in lines {
        println!("{l}");
    }
    println!("\noutcome: {:?} — all passed: {}", report.outcome, report.all_passed());
    assert!(report.all_passed());
    Ok(())
}
