//! Observability tour: run the boot-time STL with the metrics layer
//! attached and render the run three ways — a human-readable summary
//! table, a Chrome-trace JSON (load `observe_boot_trace.json` in
//! `chrome://tracing` or https://ui.perfetto.dev), and a JSONL event
//! log for `jq`-style filtering.
//!
//! Observation is strictly read-only: the verdicts printed here are
//! bit-identical to an unobserved `BootImage::run` (asserted below, and
//! property-tested by `tests/observability.rs`).
//!
//! ```sh
//! cargo run --release --example observe_boot
//! ```

use det_sbst::cpu::CoreKind;
use det_sbst::obs::parse_json;
use det_sbst::soc::ObsConfig;
use det_sbst::stl::routines::{
    BranchTest, ForwardingTest, GenericAluTest, HdcuTest, IcuTest, LsuTest, RegFileTest,
};
use det_sbst::stl::StlCatalog;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut catalog = StlCatalog::new();
    catalog.add("A/regfile", 0, Box::new(RegFileTest::new()));
    catalog.add("A/forwarding", 0, Box::new(ForwardingTest::without_pcs(CoreKind::A)));
    catalog.add("B/branch", 1, Box::new(BranchTest::new()));
    catalog.add("B/lsu", 1, Box::new(LsuTest::new()));
    catalog.add("B/hdcu", 1, Box::new(HdcuTest::new(CoreKind::B)));
    catalog.add("C/icu", 2, Box::new(IcuTest::new()));
    catalog.add("C/alu", 2, Box::new(GenericAluTest::new(3)));

    println!("learning goldens and building the boot image...");
    let image = catalog.build()?;

    println!("running the parallel boot test with observability attached...\n");
    let (report, metrics) = image.run_observed(120_000_000, ObsConfig::default());

    let mut lines: Vec<String> =
        report.iter().map(|(n, v)| format!("  {n:<14} {v}")).collect();
    lines.sort();
    for l in lines {
        println!("{l}");
    }
    println!("\noutcome: {:?} — all passed: {}", report.outcome, report.all_passed());
    assert!(report.all_passed());

    // Observation must not have changed a single verdict or cycle.
    let unobserved = image.run(120_000_000);
    assert_eq!(unobserved.outcome, report.outcome, "observability changed the run");

    println!("\n== metrics summary ==\n{}", metrics.summary_table());

    let trace = metrics.to_chrome_trace();
    parse_json(&trace).expect("chrome trace is valid JSON");
    std::fs::write("observe_boot_trace.json", &trace)?;
    println!(
        "wrote observe_boot_trace.json ({} events) — open in chrome://tracing",
        metrics.events.len()
    );

    let jsonl = metrics.to_jsonl();
    std::fs::write("observe_boot_events.jsonl", &jsonl)?;
    println!("wrote observe_boot_events.jsonl ({} lines)", jsonl.lines().count());
    Ok(())
}
