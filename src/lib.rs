#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! # det-sbst — deterministic cache-based execution of on-line self-test
//! routines in multi-core automotive SoCs
//!
//! A full Rust reproduction of Floridia et al., *"Deterministic
//! Cache-based Execution of On-line Self-Test Routines in Multi-core
//! Automotive System-on-Chips"*, DATE 2020 — including every substrate
//! the paper's evaluation needs:
//!
//! | crate | contents |
//! |---|---|
//! | [`isa`] | 32-bit dual-issue ISA, assembler, disassembler |
//! | [`mem`] | Flash (+ prefetch rows), shared bus, L1 caches, TCMs, watchdog |
//! | [`fault`] | stuck-at fault sites, armed-fault plane, gate evaluators, equivalence collapsing |
//! | [`cpu`] | cycle-accurate dual-issue pipeline, forwarding, HDCU, ICU |
//! | [`soc`] | triple-core SoC, scenarios, pipeline traces |
//! | [`stl`] | self-test routines, signatures, the **cache-based wrapper**, TCM wrapper, scheduler |
//! | [`campaign`] | parallel fault-simulation campaigns, Tables I–IV |
//! | [`obs`] | zero-cost-when-disabled observability: counters, event rings, Chrome-trace export |
//!
//! The headline result, as a doctest:
//!
//! ```
//! use det_sbst::cpu::CoreKind;
//! use det_sbst::stl::routines::IcuTest;
//! use det_sbst::stl::{learn_golden_cached, RoutineEnv, WrapConfig};
//!
//! # fn main() -> Result<(), det_sbst::stl::WrapError> {
//! // The golden signature of a cache-wrapped routine is learned once on
//! // a single core — and (as the test suite asserts) the same value is
//! // produced under full three-core bus contention: deterministic
//! // in-field self-test.
//! let routine = IcuTest::new();
//! let env = RoutineEnv::for_core(CoreKind::A);
//! let cfg = WrapConfig::default();
//! let golden = learn_golden_cached(&routine, &env, &cfg, CoreKind::A, 0x400)?;
//! assert_ne!(golden, 0);
//! # Ok(())
//! # }
//! ```
//!
//! See `DESIGN.md` for the system inventory, `EXPERIMENTS.md` for the
//! paper-vs-measured record, and `examples/` for runnable entry points.

pub use sbst_campaign as campaign;
pub use sbst_cpu as cpu;
pub use sbst_fault as fault;
pub use sbst_isa as isa;
pub use sbst_mem as mem;
pub use sbst_obs as obs;
pub use sbst_soc as soc;
pub use sbst_stl as stl;
