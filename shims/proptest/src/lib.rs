//! A hermetic, in-tree stand-in for the `proptest` crate.
//!
//! The container this repository builds in has no network access and no
//! cargo registry cache, so the real `proptest` cannot be fetched. This
//! shim implements the subset of the API the workspace's tests use —
//! deterministic pseudo-random generation, `Strategy` combinators, the
//! `proptest!` macro, `prop_oneof!`, `prop::sample::select`,
//! `prop::collection::vec`, simple `[class]{lo,hi}` string patterns and
//! the `prop_assert*` macros — with a fixed per-test seed so runs are
//! reproducible. It performs no shrinking: a failing case panics with
//! the case index and the generated inputs' `Debug` rendering when
//! available.

use std::fmt;
use std::ops::Range;

// ---------------------------------------------------------------------
// Deterministic RNG (splitmix64).
// ---------------------------------------------------------------------

/// Deterministic pseudo-random generator used by all strategies.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds the generator.
    pub fn new(seed: u64) -> TestRng {
        TestRng { state: seed ^ 0x9e37_79b9_7f4a_7c15 }
    }

    /// Next 64 random bits (splitmix64 step).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Next 32 random bits.
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Uniform draw from `[0, bound)` (`bound > 0`).
    pub fn below(&mut self, bound: u64) -> u64 {
        // Modulo bias is irrelevant for test-input generation.
        self.next_u64() % bound
    }
}

// ---------------------------------------------------------------------
// Strategy trait and combinators.
// ---------------------------------------------------------------------

/// A generator of test values.
///
/// Object-safe: boxed strategies (`prop_oneof!`) generate through the
/// same entry point.
pub trait Strategy {
    /// The generated value type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Keeps only values satisfying `f` (bounded retries).
    fn prop_filter<F>(self, whence: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter { inner: self, whence, f }
    }

    /// Boxes the strategy (type erasure for `prop_oneof!`).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for Box<dyn Strategy<Value = T>> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (**self).generate(rng)
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_filter`].
#[derive(Debug, Clone)]
pub struct Filter<S, F> {
    inner: S,
    whence: &'static str,
    f: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.generate(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!("prop_filter gave up after 1000 rejections: {}", self.whence);
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice between boxed strategies (`prop_oneof!`).
pub struct Union<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Builds a union over `arms` (must be non-empty).
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Union<T> {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.arms.len() as u64) as usize;
        self.arms[i].generate(rng)
    }
}

// ---------------------------------------------------------------------
// Primitive strategies: any::<T>(), ranges, string classes, tuples.
// ---------------------------------------------------------------------

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Draws an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// The canonical strategy for `T` (`any::<u32>()` etc.).
#[derive(Debug, Clone, Copy)]
pub struct Any<T> {
    _marker: std::marker::PhantomData<fn() -> T>,
}

/// Returns the canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any { _marker: std::marker::PhantomData }
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! arb_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
arb_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}
range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// `"[class]{lo,hi}"` string patterns (the only regex form the
/// workspace's tests use). The class supports `\n`/`\t`/`\\` escapes,
/// `a-z` ranges and a literal leading `-`.
impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        let (alphabet, lo, hi) = parse_pattern(self);
        let len = lo + rng.below((hi - lo + 1) as u64) as usize;
        (0..len)
            .map(|_| alphabet[rng.below(alphabet.len() as u64) as usize])
            .collect()
    }
}

fn parse_pattern(pat: &str) -> (Vec<char>, usize, usize) {
    let rest = pat
        .strip_prefix('[')
        .unwrap_or_else(|| panic!("unsupported string pattern (want [class]{{lo,hi}}): {pat:?}"));
    let (class, reps) = rest
        .split_once(']')
        .unwrap_or_else(|| panic!("unterminated char class in pattern {pat:?}"));
    let mut alphabet = Vec::new();
    let mut chars = class.chars().peekable();
    while let Some(c) = chars.next() {
        match c {
            '\\' => match chars.next() {
                Some('n') => alphabet.push('\n'),
                Some('t') => alphabet.push('\t'),
                Some(other) => alphabet.push(other),
                None => panic!("dangling escape in pattern {pat:?}"),
            },
            _ => {
                if chars.peek() == Some(&'-') {
                    let mut ahead = chars.clone();
                    ahead.next(); // the '-'
                    match ahead.next() {
                        Some(end) => {
                            chars = ahead;
                            for x in c as u32..=end as u32 {
                                if let Some(ch) = char::from_u32(x) {
                                    alphabet.push(ch);
                                }
                            }
                        }
                        None => alphabet.push(c), // '-' is last: literal
                    }
                } else {
                    alphabet.push(c);
                }
            }
        }
    }
    assert!(!alphabet.is_empty(), "empty char class in pattern {pat:?}");
    let reps = reps
        .strip_prefix('{')
        .and_then(|r| r.strip_suffix('}'))
        .unwrap_or_else(|| panic!("missing {{lo,hi}} repetition in pattern {pat:?}"));
    let (lo, hi) = reps
        .split_once(',')
        .unwrap_or_else(|| panic!("want lo,hi in pattern {pat:?}"));
    (
        alphabet,
        lo.trim().parse().expect("pattern lo"),
        hi.trim().parse().expect("pattern hi"),
    )
}

macro_rules! tuple_strategy {
    ($($name:ident),*) => {
        impl<$($name: Strategy),*> Strategy for ($($name,)*) {
            type Value = ($($name::Value,)*);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)*) = self;
                ($($name.generate(rng),)*)
            }
        }
    };
}
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);

// ---------------------------------------------------------------------
// prop:: modules (sample, collection).
// ---------------------------------------------------------------------

/// Sampling strategies (`prop::sample`).
pub mod sample {
    use super::{Strategy, TestRng};

    /// Uniform choice from a fixed list.
    #[derive(Debug, Clone)]
    pub struct Select<T: Clone> {
        options: Vec<T>,
    }

    /// Uniformly selects one of `options`.
    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select of an empty list");
        Select { options }
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.options[rng.below(self.options.len() as u64) as usize].clone()
        }
    }
}

/// Collection strategies (`prop::collection`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::{Range, RangeInclusive};

    /// Lengths accepted by [`vec`]: an exact `usize` or a (possibly
    /// inclusive) `usize` range.
    pub trait IntoSizeRange {
        /// Draws a length.
        fn draw_len(&self, rng: &mut TestRng) -> usize;
    }

    impl IntoSizeRange for usize {
        fn draw_len(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    impl IntoSizeRange for Range<usize> {
        fn draw_len(&self, rng: &mut TestRng) -> usize {
            assert!(self.start < self.end, "empty vec length range");
            self.start + rng.below((self.end - self.start) as u64) as usize
        }
    }

    impl IntoSizeRange for RangeInclusive<usize> {
        fn draw_len(&self, rng: &mut TestRng) -> usize {
            let (start, end) = (*self.start(), *self.end());
            assert!(start <= end, "empty vec length range");
            start + rng.below((end - start + 1) as u64) as usize
        }
    }

    /// See [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S, L> {
        element: S,
        len: L,
    }

    /// Vectors of `element` values with a drawn length.
    pub fn vec<S: Strategy, L: IntoSizeRange>(element: S, len: L) -> VecStrategy<S, L> {
        VecStrategy { element, len }
    }

    impl<S: Strategy, L: IntoSizeRange> Strategy for VecStrategy<S, L> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.len.draw_len(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// The `prop::` namespace the prelude exposes.
pub mod prop {
    pub use crate::collection;
    pub use crate::sample;
}

// ---------------------------------------------------------------------
// Runner, config, errors, macros.
// ---------------------------------------------------------------------

/// Per-`proptest!` configuration (only `cases` is honoured).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases each test runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per test.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 256 }
    }
}

/// A failed `prop_assert*` inside a case body.
#[derive(Debug)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// Builds a failure with a rendered message.
    pub fn fail(message: String) -> TestCaseError {
        TestCaseError { message }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

/// Drives the cases of one property test.
#[derive(Debug)]
pub struct TestRunner {
    config: ProptestConfig,
    rng: TestRng,
}

impl TestRunner {
    /// A runner seeded deterministically from the test name.
    pub fn new(config: ProptestConfig, name: &str) -> TestRunner {
        let mut seed = 0xcbf2_9ce4_8422_2325u64; // FNV-1a offset basis
        for b in name.bytes() {
            seed ^= b as u64;
            seed = seed.wrapping_mul(0x100_0000_01b3);
        }
        TestRunner { config, rng: TestRng::new(seed) }
    }

    /// Number of cases to run.
    pub fn cases(&self) -> u32 {
        self.config.cases
    }

    /// The shared RNG.
    pub fn rng(&mut self) -> &mut TestRng {
        &mut self.rng
    }
}

/// Everything a property test needs in scope.
pub mod prelude {
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest,
        Arbitrary, BoxedStrategy, Just, ProptestConfig, Strategy, TestCaseError, TestRng,
        TestRunner,
    };
}

/// Declares property tests: `fn name(x in strategy, ...) { body }`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Internal expansion of [`proptest!`] — not public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$attr:meta])*
     fn $name:ident($($pat:pat_param in $strat:expr),* $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$attr])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut runner = $crate::TestRunner::new(config, stringify!($name));
            for case in 0..runner.cases() {
                $(let $pat = $crate::Strategy::generate(&($strat), runner.rng());)*
                // The immediately-called closure gives the body its own
                // `?`-able scope, like real proptest's per-case fn.
                #[allow(clippy::redundant_closure_call)]
                let outcome = (|| -> ::std::result::Result<(), $crate::TestCaseError> {
                    $body
                    Ok(())
                })();
                if let Err(e) = outcome {
                    panic!("property `{}` failed at case {}: {}", stringify!($name), case, e);
                }
            }
        }
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
}

/// Uniformly picks one of several strategies producing the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($arm)),+])
    };
}

/// Asserts inside a property body (records the case on failure).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: {}", stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: {}: {}", stringify!($cond), format_args!($($fmt)+)
            )));
        }
    };
}

/// Asserts equality inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{:?}` == `{:?}`", l, r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{:?}` == `{:?}`: {}", l, r, format_args!($($fmt)+)
            )));
        }
    }};
}

/// Asserts inequality inside a property body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{:?}` != `{:?}`", l, r
            )));
        }
    }};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn rng_is_deterministic() {
        let mut a = TestRng::new(7);
        let mut b = TestRng::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::new(1);
        for _ in 0..1000 {
            let v = (3u16..17).generate(&mut rng);
            assert!((3..17).contains(&v));
            let s = (-5i32..5).generate(&mut rng);
            assert!((-5..5).contains(&s));
        }
    }

    #[test]
    fn string_pattern_respects_class_and_length() {
        let mut rng = TestRng::new(2);
        for _ in 0..200 {
            let s = "[a-c\\n]{1,4}".generate(&mut rng);
            assert!((1..=4).contains(&s.chars().count()));
            assert!(s.chars().all(|c| matches!(c, 'a'..='c' | '\n')));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_smoke(x in 0u32..10, v in prop::collection::vec(any::<bool>(), 0..4)) {
            prop_assert!(x < 10);
            prop_assert!(v.len() < 4, "len was {}", v.len());
        }
    }

    static BODY_RUNS: std::sync::atomic::AtomicU32 = std::sync::atomic::AtomicU32::new(0);

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(57))]

        fn body_runs_once_per_case(_x in any::<u64>()) {
            BODY_RUNS.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        }
    }

    #[test]
    fn configured_case_count_is_honoured() {
        BODY_RUNS.store(0, std::sync::atomic::Ordering::Relaxed);
        body_runs_once_per_case();
        assert_eq!(BODY_RUNS.load(std::sync::atomic::Ordering::Relaxed), 57);
    }
}
