//! A hermetic, in-tree stand-in for the `criterion` crate.
//!
//! The build container has no network access, so the real `criterion`
//! cannot be fetched. This shim keeps the workspace's `harness = false`
//! bench targets compiling and runnable: it implements the subset of
//! the API the benches use (`Criterion::benchmark_group`,
//! `bench_function`, `bench_with_input`, `Throughput`, `BenchmarkId`,
//! `criterion_group!`, `criterion_main!`) with a simple
//! median-of-samples timer and plain-text reporting. No statistics,
//! plots or baselines.

use std::fmt;
use std::time::{Duration, Instant};

/// Prevents the optimizer from deleting a benchmarked computation.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Throughput annotation (printed, not analysed).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A benchmark identifier: function name + parameter rendering.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// An id from a function name and a parameter value.
    pub fn new(function: impl fmt::Display, parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId { name: format!("{function}/{parameter}") }
    }

    /// An id from a parameter value alone.
    pub fn from_parameter(parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId { name: parameter.to_string() }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.name)
    }
}

/// The timing loop handle passed to bench closures.
#[derive(Debug, Default)]
pub struct Bencher {
    samples: Vec<Duration>,
}

impl Bencher {
    /// Times `routine`, collecting a handful of samples.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // One warm-up, then a few timed samples: enough for a smoke
        // signal without criterion's statistical machinery.
        black_box(routine());
        for _ in 0..self.sample_target() {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
        }
    }

    fn sample_target(&self) -> usize {
        5
    }

    fn median(&mut self) -> Option<Duration> {
        if self.samples.is_empty() {
            return None;
        }
        self.samples.sort();
        Some(self.samples[self.samples.len() / 2])
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'c> {
    name: String,
    _criterion: &'c mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; sampling here is fixed.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Records the group's throughput annotation.
    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher::default();
        f(&mut b);
        report(&self.name, &id.to_string(), &mut b);
        self
    }

    /// Runs one benchmark parameterised by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher::default();
        f(&mut b, input);
        report(&self.name, &id.to_string(), &mut b);
        self
    }

    /// Ends the group (no-op; printing happens per benchmark).
    pub fn finish(&mut self) {}
}

fn report(group: &str, id: &str, b: &mut Bencher) {
    match b.median() {
        Some(t) => println!("bench {group}/{id}: median {t:?}"),
        None => println!("bench {group}/{id}: no samples"),
    }
}

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a named group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { name: name.into(), _criterion: self }
    }

    /// Runs one ungrouped benchmark.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.benchmark_group("bench").bench_function(id, f);
        self
    }
}

/// Declares a bench group entry point.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares the bench binary's `main`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
