//! Workspace-level PPSFP equivalence wall: the bit-parallel tier must
//! return verdicts bit-identical to the serial warm path through the
//! `det-sbst` facade. The exhaustive full-list walls live in
//! `crates/campaign/tests/ppsfp_equivalence.rs`; this sampled gate keeps
//! the invariant in the default `cargo test` run at debug-build speed.

use det_sbst::campaign::{
    routines_for, run_campaign_ppsfp_detailed, run_campaign_warm_detailed, ExecStyle,
    Experiment,
};
use det_sbst::cpu::{unit_fault_list, CoreKind};
use det_sbst::fault::Unit;
use det_sbst::soc::Scenario;

fn exp_for(unit: Unit) -> Experiment {
    let factory = routines_for(unit);
    Experiment::assemble(
        &*factory,
        CoreKind::A,
        ExecStyle::CacheWrapped,
        &Scenario { active_cores: 3, ..Scenario::single_core() },
    )
    .expect("experiment assembles")
}

#[test]
fn ppsfp_verdicts_match_warm_on_a_sampled_forwarding_list() {
    let exp = exp_for(Unit::Forwarding);
    let golden = exp.golden();
    let faults = unit_fault_list(CoreKind::A, Unit::Forwarding).sample(40);
    let (_, warm) = run_campaign_warm_detailed(&exp, &golden, &faults, 0);
    let (result, ppsfp, stats) = run_campaign_ppsfp_detailed(&exp, &golden, &faults, 0);
    assert_eq!(result.total, faults.len(), "every fault graded exactly once");
    assert_eq!(result.sim_errors, 0);
    assert!(stats.ridden_words > 0, "forwarding faults must ride the golden tail");
    for (w, p) in warm.iter().zip(&ppsfp) {
        assert_eq!(w, p, "PPSFP verdict diverged from serial at {:?}", w.0);
    }
}

#[test]
fn ppsfp_forced_fallback_matches_warm_on_a_sampled_hdcu_list() {
    // HDCU faults perturb stall timing, so every lane falls back to the
    // serial path (with the livelock short-circuit active) — and the
    // verdicts must still be identical.
    let exp = exp_for(Unit::Hdcu);
    let golden = exp.golden();
    let faults = unit_fault_list(CoreKind::A, Unit::Hdcu).sample(60);
    let (_, warm) = run_campaign_warm_detailed(&exp, &golden, &faults, 0);
    let (_, ppsfp, stats) = run_campaign_ppsfp_detailed(&exp, &golden, &faults, 0);
    assert_eq!(stats.fallback_faults, faults.len(), "HDCU words must not ride");
    assert_eq!(warm, ppsfp);
}
