//! Workspace-level end-to-end tests through the `det-sbst` facade: the
//! full flow a downstream user follows, plus cross-crate properties that
//! no single crate can check alone.

use det_sbst::campaign::{routines_for, run_campaign, ExecStyle, Experiment};
use det_sbst::cpu::{delay_fault_list, unit_fault_list, CoreConfig, CoreKind};
use det_sbst::fault::{FaultPlane, Unit, Verdict};
use det_sbst::isa::{Asm, Reg};
use det_sbst::soc::{PipelineTrace, Scenario, SocBuilder};
use det_sbst::stl::routines::{ForwardingTest, GenericAluTest, IcuTest};
use det_sbst::stl::{
    learn_golden_cached, run_standalone, wrap_cached, RoutineEnv, WrapConfig, STATUS_PASS,
};

#[test]
fn full_user_flow_learn_embed_check() {
    let kind = CoreKind::B;
    let routine = ForwardingTest::without_pcs(kind);
    let env = RoutineEnv::for_core(kind);
    let mut cfg = WrapConfig::default();
    let golden = learn_golden_cached(&routine, &env, &cfg, kind, 0x400).expect("golden");
    cfg.expected_sig = Some(golden);
    let asm = wrap_cached(&routine, &env, &cfg, "flow").expect("wraps");
    let report = run_standalone(
        &asm,
        &env,
        kind,
        true,
        0x400,
        FaultPlane::fault_free(),
        10_000_000,
    );
    assert!(report.outcome.is_clean());
    assert_eq!(report.status, STATUS_PASS);
    assert_eq!(report.signature, golden);
}

#[test]
fn forwarding_excitation_visible_in_the_pipeline_trace() {
    // Cross-checks the trace module against the pipeline: the dependent
    // add executes exactly one cycle after its producer when cached.
    let mut a = Asm::new();
    a.li(Reg::R1, 7);
    a.align(16);
    a.add(Reg::R5, Reg::R1, Reg::R1); // producer @ base+8 (after 1 li)
    a.nop();
    a.add(Reg::R6, Reg::R5, Reg::R1); // consumer
    a.nop();
    a.halt();
    let base = 0x400;
    let program = a.assemble(base).unwrap();
    let producer_pc = base + 16;
    let consumer_pc = base + 24;
    let mut soc = SocBuilder::new()
        .load(&program)
        .core(CoreConfig::cached(CoreKind::A, 0, base), 0)
        .build();
    let trace = PipelineTrace::capture(&mut soc, 0, 10_000);
    let p = trace.ex_cycle_of(producer_pc).expect("producer traced");
    let c = trace.ex_cycle_of(consumer_pc).expect("consumer traced");
    assert_eq!(c - p, 1, "back-to-back packets -> EX/MEM path");
    assert_eq!(soc.core(0).reg(Reg::R6), 21);
}

#[test]
fn delay_fault_extension_is_detected_only_with_back_to_back_execution() {
    // The paper's §V outlook: delay defects need test patterns applied in
    // a timed sequence — which only the cache-wrapped execution provides.
    let kind = CoreKind::A;
    let factory = routines_for(Unit::Forwarding);
    let faults = delay_fault_list(kind).sample(24);
    let cached = Experiment::assemble(
        &*factory,
        kind,
        ExecStyle::CacheWrapped,
        &Scenario { active_cores: 3, ..Scenario::single_core() },
    )
    .expect("cached experiment");
    let golden = cached.golden();
    let fc_cached = run_campaign(&cached, &golden, &faults, 0).coverage();
    let uncached = Experiment::assemble(
        &*factory,
        kind,
        ExecStyle::LegacyUncached,
        &Scenario { active_cores: 3, ..Scenario::single_core() },
    )
    .expect("uncached experiment");
    let golden = uncached.golden();
    let fc_uncached = run_campaign(&uncached, &golden, &faults, 0).coverage();
    assert!(
        fc_cached > fc_uncached,
        "delay-fault coverage needs timed back-to-back excitation: \
         cached {fc_cached:.1}% vs uncached {fc_uncached:.1}%"
    );
}

#[test]
fn mixed_stl_with_icu_routine_runs_under_the_scheduler() {
    use det_sbst::stl::sched::{build_stl_program, CoreStl, SchedLayout};
    let layout = SchedLayout::default();
    let wrap = WrapConfig::default();
    let mut builder = SocBuilder::new();
    for core in 0..3usize {
        let kind = CoreKind::ALL[core];
        let env = RoutineEnv {
            result_addr: det_sbst::mem::SRAM_BASE + 0x2000 + 0x100 * core as u32,
            data_base: det_sbst::mem::SRAM_BASE + 0x5000 + 0x400 * core as u32,
            ..RoutineEnv::for_core(kind)
        };
        let stl = CoreStl {
            routines: vec![
                Box::new(IcuTest::with_rounds(2)),
                Box::new(GenericAluTest::new(2)),
                Box::new(ForwardingTest::without_pcs(kind)),
            ],
            env,
            watchdog: None,
        };
        let asm = build_stl_program(core, 3, &stl, &wrap, &layout);
        let base = 0x2000 + 0x40000 * core as u32;
        builder = builder
            .load(&asm.assemble(base).expect("assembles"))
            .core(CoreConfig::cached(kind, core, base), core as u32 * 11);
    }
    let mut soc = builder.build();
    let outcome = soc.run(60_000_000);
    assert!(outcome.is_clean(), "{outcome:?}");
    for core in 0..3usize {
        assert_eq!(soc.peek(layout.done_base + 4 * core as u32), 1, "core {core}");
    }
}

#[test]
fn known_undetectable_fault_stays_undetected() {
    // The routine's mask-toggle phase only exercises the *overflow* mask
    // bit; the mul-overflow mask stays enabled throughout, so a
    // stuck-at-1 on that already-1 bit is untestable by this routine —
    // the campaign must NOT count it. (The overflow mask bit, by
    // contrast, IS covered since the routine toggles it.)
    let factory = routines_for(Unit::Icu);
    let exp = Experiment::assemble(
        &*factory,
        CoreKind::A,
        ExecStyle::CacheWrapped,
        &Scenario::single_core(),
    )
    .expect("experiment");
    let golden = exp.golden();
    let list = unit_fault_list(CoreKind::A, Unit::Icu);
    let site_of = |cause: u8, polarity| {
        list.iter()
            .find(|s| {
                matches!(s.element,
                    det_sbst::fault::Element::MaskBit { cause: c } if c == cause)
                    && s.polarity == polarity
            })
            .copied()
            .expect("site exists")
    };
    let sa1 = det_sbst::fault::Polarity::StuckAt1;
    assert_eq!(
        exp.test_fault(&golden, site_of(1, sa1)),
        Verdict::Undetected,
        "never-toggled mask bit"
    );
    assert!(
        exp.test_fault(&golden, site_of(0, sa1)).is_detected(),
        "the toggled overflow mask bit is covered by the mask phase"
    );
}
