//! The observability layer's headline contract: **attaching it never
//! changes behaviour**. Signatures, verdicts, registers, memory and
//! cycle counts are bit-identical with observation on or off — over
//! random programs, random contention and random transient upsets.
//!
//! This is the property that makes the metrics trustworthy: a probe
//! that perturbs the system measures only itself.

use proptest::prelude::*;

use det_sbst::cpu::{CoreConfig, CoreKind};
use det_sbst::isa::{AluOp, Asm, Reg};
use det_sbst::mem::{InjectorProgram, SeuConfig, SRAM_BASE};
use det_sbst::soc::{ChaosConfig, ObsConfig, SocBuilder};
use det_sbst::stl::routines::{GenericAluTest, IcuTest, LsuTest};
use det_sbst::stl::StlCatalog;

const BASE: u32 = 0x400;

/// A small random program: seeded ALU soup over a bounded countdown
/// loop plus store/load traffic — terminates by construction.
fn program(seed: u64, len: usize, scratch: u32) -> Asm {
    let ops = [AluOp::Add, AluOp::Sub, AluOp::Xor, AluOp::Or, AluOp::Mul, AluOp::Sll];
    let mut a = Asm::new();
    let mut x = seed | 1;
    let mut draw = |n: usize| {
        x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        (x >> 33) as usize % n
    };
    for i in 1..12 {
        a.li(Reg::from_index(i), (i as u32).wrapping_mul(0x9e37_79b9));
    }
    a.li(Reg::R15, scratch);
    a.li(Reg::R14, 3); // loop counter
    a.label("top");
    for _ in 0..len {
        a.alu(
            ops[draw(ops.len())],
            Reg::from_index(1 + draw(11)),
            Reg::from_index(1 + draw(11)),
            Reg::from_index(1 + draw(11)),
        );
        if draw(4) == 0 {
            let off = (draw(16) as i16) * 4;
            a.sw(Reg::from_index(1 + draw(11)), Reg::R15, off);
            a.lw(Reg::from_index(1 + draw(11)), Reg::R15, off);
        }
    }
    a.subi(Reg::R14, Reg::R14, 1);
    a.bne(Reg::R14, Reg::R0, "top");
    a.halt();
    a
}

/// Builds the three-core contended SoC for one case; `observe` toggles
/// the layer under test, everything else is identical.
fn build(programs: &[det_sbst::isa::Program], chaos: ChaosConfig, observe: bool) -> det_sbst::soc::Soc {
    let mut b = SocBuilder::new();
    for p in programs {
        b = b.load(p);
    }
    for (i, kind) in CoreKind::ALL.iter().enumerate() {
        let reset = BASE + (i as u32) * 0x10000;
        let cfg = if i == 1 {
            CoreConfig::uncached(*kind, i, reset)
        } else {
            CoreConfig::cached(*kind, i, reset)
        };
        b = b.core(cfg, (i as u32) * 3);
    }
    b = b.chaos(chaos);
    if observe {
        b = b.observe(ObsConfig::default());
    }
    b.build()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The headline property: a three-core SoC under adversarial bus
    /// traffic *and* transient upsets produces bit-identical
    /// architectural state, cycle counts and SEU logs whether or not
    /// the observability layer is attached — and the observed run's
    /// metrics agree with the SoC's own counters.
    #[test]
    fn observation_is_behaviour_neutral(
        seed in any::<u64>(),
        len in 4usize..40,
        inj_seed in any::<u64>(),
        seu_rate in 0u32..300,
    ) {
        let programs: Vec<det_sbst::isa::Program> = (0..3)
            .map(|i| {
                program(
                    seed ^ (i as u64).wrapping_mul(0xabcd_ef01),
                    len,
                    SRAM_BASE + 0x200 + 0x100 * i as u32,
                )
                .assemble(BASE + (i as u32) * 0x10000)
                .expect("assembles")
            })
            .collect();
        let chaos = ChaosConfig {
            injector: InjectorProgram::from_seed(inj_seed),
            seu: if seu_rate == 0 {
                SeuConfig::off()
            } else {
                SeuConfig::at_rate(inj_seed ^ seed, seu_rate)
            },
        };

        let mut plain = build(&programs, chaos, false);
        let mut observed = build(&programs, chaos, true);
        prop_assert!(plain.metrics().is_none(), "no metrics without the layer");

        // Generous for these short programs, yet cheap enough that an
        // SEU-induced hang (watchdog outcome — still compared equal)
        // doesn't dominate the suite's runtime.
        let budget = 2_000_000;
        let outcome_plain = plain.run(budget);
        let outcome_observed = observed.run(budget);
        prop_assert_eq!(outcome_plain, outcome_observed, "outcome must not move");
        prop_assert_eq!(plain.cycle(), observed.cycle(), "cycle count must not move");
        for core in 0..3 {
            prop_assert_eq!(
                plain.core(core).regs(), observed.core(core).regs(),
                "core {} registers must not move", core
            );
        }
        for off in (0..0x400u32).step_by(4) {
            let addr = SRAM_BASE + 0x200 + off;
            prop_assert_eq!(plain.peek(addr), observed.peek(addr), "memory must not move");
        }
        prop_assert_eq!(plain.seu_events(), observed.seu_events(), "SEU log must not move");

        // The metrics the observed run collected must agree with the
        // simulator's own statistics — observation reports, it never
        // invents.
        let stats = observed.bus().stats().clone();
        let metrics = observed.metrics().expect("metrics attached");
        prop_assert_eq!(metrics.cycles, observed.cycle());
        prop_assert_eq!(metrics.bus.transactions, stats.transactions);
        prop_assert_eq!(metrics.bus.busy_cycles, stats.busy_cycles);
        for (p, port) in metrics.bus.ports.iter().enumerate() {
            prop_assert_eq!(port.grants, stats.grants[p]);
            prop_assert_eq!(port.wait_cycles, stats.wait_cycles[p]);
            prop_assert_eq!(port.max_grant_wait, stats.max_grant_wait[p]);
        }
        for (i, core) in metrics.cores.iter().enumerate() {
            let counters = observed.core(i).counters();
            prop_assert_eq!(core.counters.cycles, counters.cycles);
            prop_assert_eq!(core.counters.retired, counters.retired);
        }
        prop_assert_eq!(metrics.seu_strikes, observed.seu_events().len() as u64);
        prop_assert_eq!(metrics.seu_landed, observed.seu_landed() as u64);
    }
}

/// The boot-time STL catalog gives the same verdicts observed and
/// unobserved — the user-facing form of the neutrality property.
#[test]
fn catalog_verdicts_unmoved_by_observation() {
    let mut catalog = StlCatalog::new();
    catalog.add("A/alu", 0, Box::new(GenericAluTest::new(2)));
    catalog.add("B/lsu", 1, Box::new(LsuTest::new()));
    catalog.add("C/icu", 2, Box::new(IcuTest::new()));
    let image = catalog.build().expect("catalog builds");

    let plain = image.run(120_000_000);
    let (observed, metrics) = image.run_observed(120_000_000, ObsConfig::default());

    assert_eq!(plain.outcome, observed.outcome);
    let collect = |r: &det_sbst::stl::BootReport| {
        let mut v: Vec<(String, String)> =
            r.iter().map(|(n, verdict)| (n.to_string(), format!("{verdict:?}"))).collect();
        v.sort();
        v
    };
    assert_eq!(collect(&plain), collect(&observed), "verdicts must not move");
    assert!(plain.all_passed() && observed.all_passed());

    // The observed run actually recorded something useful.
    assert!(metrics.cycles > 0);
    assert_eq!(metrics.cores.len(), 3);
    assert!(!metrics.events.is_empty());
    assert!(metrics.cores.iter().any(|c| c.counters.retired > 0));
}
