//! Whole-suite determinism: running the full boot-time STL twice in one
//! process yields bit-identical results — same verdicts, same cycle
//! counts, same signatures, and (because `MetricsHub` is `PartialEq`
//! throughout) the *entire* observability record down to every counter,
//! histogram bucket and trace event.
//!
//! This is the repo-level form of the paper's claim: the cache-based
//! wrapper removes every source of execution-time variability, so
//! nothing about a run depends on when (or how often) it happens.

use det_sbst::cpu::CoreKind;
use det_sbst::soc::ObsConfig;
use det_sbst::stl::routines::{
    BranchTest, ForwardingTest, GenericAluTest, HdcuTest, IcuTest, LsuTest, RegFileTest,
};
use det_sbst::stl::{BootImage, BootReport, StlCatalog};

fn build_image() -> BootImage {
    let mut catalog = StlCatalog::new();
    catalog.add("A/regfile", 0, Box::new(RegFileTest::new()));
    catalog.add("A/forwarding", 0, Box::new(ForwardingTest::without_pcs(CoreKind::A)));
    catalog.add("B/branch", 1, Box::new(BranchTest::new()));
    catalog.add("B/lsu", 1, Box::new(LsuTest::new()));
    catalog.add("B/hdcu", 1, Box::new(HdcuTest::new(CoreKind::B)));
    catalog.add("C/icu", 2, Box::new(IcuTest::new()));
    catalog.add("C/alu", 2, Box::new(GenericAluTest::new(3)));
    catalog.build().expect("catalog builds")
}

fn verdicts(r: &BootReport) -> Vec<(String, String)> {
    let mut v: Vec<(String, String)> =
        r.iter().map(|(n, verdict)| (n.to_string(), format!("{verdict:?}"))).collect();
    v.sort();
    v
}

#[test]
fn full_stl_suite_twice_is_bit_identical() {
    let image = build_image();

    let (first, first_metrics) = image.run_observed(120_000_000, ObsConfig::default());
    let (second, second_metrics) = image.run_observed(120_000_000, ObsConfig::default());

    // Verdicts and outcome.
    assert!(first.all_passed(), "suite must pass: {:?}", first.outcome);
    assert_eq!(first.outcome, second.outcome, "outcome differs between runs");
    assert_eq!(verdicts(&first), verdicts(&second), "verdicts differ between runs");

    // Cycle counts, per-core counters, cache counters, bus statistics,
    // grant-latency histograms and the full trace-event window, all at
    // once: MetricsHub is plain data with PartialEq all the way down.
    assert_eq!(first_metrics, second_metrics, "observability record differs between runs");

    // Spot-check that the comparison had teeth: a real run was recorded.
    assert!(first_metrics.cycles > 0);
    assert_eq!(first_metrics.cores.len(), 3);
    assert!(first_metrics.cores.iter().all(|c| c.counters.retired > 0));
    assert!(first_metrics.bus.transactions > 0);
    assert!(!first_metrics.events.is_empty());
}

#[test]
fn rebuilding_the_image_reproduces_the_run_too() {
    // Stronger form: not just the same image object, but a fresh
    // learn-and-build pass (goldens relearned from scratch) reproduces
    // the identical observability record.
    let (a, am) = build_image().run_observed(120_000_000, ObsConfig::default());
    let (b, bm) = build_image().run_observed(120_000_000, ObsConfig::default());
    assert_eq!(a.outcome, b.outcome);
    assert_eq!(verdicts(&a), verdicts(&b));
    assert_eq!(am, bm, "fresh build must reproduce the identical record");
}
