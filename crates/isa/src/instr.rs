//! Instruction definitions and binary encoding.
//!
//! Every instruction is a fixed 32-bit word. Field layout (MSB first):
//!
//! ```text
//! R-type : op[31:26] rd[25:21] rs1[20:16] rs2[15:11] func[10:0]
//! I-type : op[31:26] rd[25:21] rs1[20:16] imm16[15:0]
//! B-type : op[31:26] rs1[25:21] rs2[20:16] imm16[15:0]   (byte offset, pc-relative)
//! J-type : op[31:26] rd[25:21] imm21[20:0]               (byte offset, pc-relative)
//! ```
//!
//! Branch and jump offsets are relative to the address of the branch
//! instruction itself.

use crate::{Csr, Reg};

/// Register-register / register-immediate ALU operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum AluOp {
    /// Wrapping add.
    Add,
    /// Wrapping subtract.
    Sub,
    /// Bitwise AND.
    And,
    /// Bitwise OR.
    Or,
    /// Bitwise XOR.
    Xor,
    /// Shift left logical (amount masked to 5 bits; 6 for 64-bit ops).
    Sll,
    /// Shift right logical.
    Srl,
    /// Shift right arithmetic.
    Sra,
    /// Set if signed less-than.
    Slt,
    /// Wrapping multiply (low half).
    Mul,
    /// Add that raises the imprecise [`Overflow`](crate::Cause::Overflow)
    /// exception on signed overflow. The wrapped result is still written.
    AddV,
    /// Multiply that raises [`MulOverflow`](crate::Cause::MulOverflow) if
    /// the signed product does not fit the result width.
    MulV,
}

impl AluOp {
    /// All ALU operations.
    pub const ALL: [AluOp; 12] = [
        AluOp::Add,
        AluOp::Sub,
        AluOp::And,
        AluOp::Or,
        AluOp::Xor,
        AluOp::Sll,
        AluOp::Srl,
        AluOp::Sra,
        AluOp::Slt,
        AluOp::Mul,
        AluOp::AddV,
        AluOp::MulV,
    ];

    fn func(self) -> u32 {
        self as u32
    }

    fn from_func(f: u32) -> Option<AluOp> {
        AluOp::ALL.get(f as usize).copied()
    }

    /// Whether this op exists in register-immediate form.
    pub fn has_imm_form(self) -> bool {
        imm_op_code(self).is_some()
    }

    /// Mnemonic stem ("add", "xor", ...).
    pub fn mnemonic(self) -> &'static str {
        match self {
            AluOp::Add => "add",
            AluOp::Sub => "sub",
            AluOp::And => "and",
            AluOp::Or => "or",
            AluOp::Xor => "xor",
            AluOp::Sll => "sll",
            AluOp::Srl => "srl",
            AluOp::Sra => "sra",
            AluOp::Slt => "slt",
            AluOp::Mul => "mul",
            AluOp::AddV => "addv",
            AluOp::MulV => "mulv",
        }
    }
}

impl std::fmt::Display for AluOp {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.mnemonic())
    }
}

/// Branch conditions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Cond {
    /// Equal.
    Eq,
    /// Not equal.
    Ne,
    /// Signed less-than.
    Lt,
    /// Signed greater-or-equal.
    Ge,
}

impl Cond {
    /// All branch conditions.
    pub const ALL: [Cond; 4] = [Cond::Eq, Cond::Ne, Cond::Lt, Cond::Ge];

    /// Evaluate the condition on two operand values.
    pub fn eval(self, a: u32, b: u32) -> bool {
        match self {
            Cond::Eq => a == b,
            Cond::Ne => a != b,
            Cond::Lt => (a as i32) < (b as i32),
            Cond::Ge => (a as i32) >= (b as i32),
        }
    }

    /// Mnemonic suffix ("eq", "ne", ...).
    pub fn mnemonic(self) -> &'static str {
        match self {
            Cond::Eq => "eq",
            Cond::Ne => "ne",
            Cond::Lt => "lt",
            Cond::Ge => "ge",
        }
    }
}

/// Cache-maintenance operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum CacheOp {
    /// Invalidate the whole instruction cache.
    IcInv,
    /// Invalidate the whole data cache (write-through caches hold no
    /// dirty data, so invalidation never loses writes).
    DcInv,
}

impl CacheOp {
    fn code(self) -> u32 {
        match self {
            CacheOp::IcInv => 0,
            CacheOp::DcInv => 1,
        }
    }

    fn from_code(c: u32) -> Option<CacheOp> {
        match c {
            0 => Some(CacheOp::IcInv),
            1 => Some(CacheOp::DcInv),
            _ => None,
        }
    }
}

/// A decoded instruction.
///
/// See the [module documentation](self) for the binary formats. All
/// instructions are exactly 4 bytes long. Field meanings follow the
/// assembly notation in each variant's doc comment (`rd` destination,
/// `rs1`/`rs2`/`src` sources, `base` address register, `off`/`imm`
/// immediates).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)] // field meanings documented on each variant
pub enum Instr {
    /// No operation (dedicated encoding, not an `addi` alias).
    Nop,
    /// `op rd, rs1, rs2` — 32-bit register-register ALU.
    Alu { op: AluOp, rd: Reg, rs1: Reg, rs2: Reg },
    /// `op64 rd, rs1, rs2` — 64-bit register-pair ALU (core C only;
    /// raises [`Illegal`](crate::Cause::Illegal) elsewhere). All register
    /// operands must be even.
    Alu64 { op: AluOp, rd: Reg, rs1: Reg, rs2: Reg },
    /// `opi rd, rs1, imm` — ALU with sign-extended 16-bit immediate.
    AluImm { op: AluOp, rd: Reg, rs1: Reg, imm: i16 },
    /// `lui rd, imm` — `rd = imm << 16`.
    Lui { rd: Reg, imm: u16 },
    /// `lw rd, off(rs1)` — load word.
    Load { rd: Reg, base: Reg, off: i16 },
    /// `sw rs2, off(rs1)` — store word.
    Store { src: Reg, base: Reg, off: i16 },
    /// `amoswap rd, rs2, (rs1)` — atomically swap `rs2` with `[rs1]`,
    /// old memory value into `rd`. Used by the test scheduler's locks.
    Amoswap { rd: Reg, base: Reg, src: Reg },
    /// `b<cond> rs1, rs2, off` — conditional pc-relative branch.
    Branch { cond: Cond, rs1: Reg, rs2: Reg, off: i16 },
    /// `jal rd, off` — jump and link (return address = pc + 4).
    Jal { rd: Reg, off: i32 },
    /// `jalr rd, off(rs1)` — indirect jump and link.
    Jalr { rd: Reg, base: Reg, off: i16 },
    /// `csrr rd, csr` — read CSR.
    CsrRead { rd: Reg, csr: Csr },
    /// `csrw csr, rs` — write CSR (only for writable CSRs).
    CsrWrite { csr: Csr, src: Reg },
    /// `icinv` / `dcinv` — cache maintenance.
    Cache(CacheOp),
    /// `mret` — return from the interrupt handler to `EPC`.
    Mret,
    /// `halt` — stop this core (test program finished).
    Halt,
}

/// Error returned when a 32-bit word is not a valid instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DecodeError {
    /// The offending word.
    pub word: u32,
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid instruction word {:#010x}", self.word)
    }
}

impl std::error::Error for DecodeError {}

// Opcodes.
const OP_RALU: u32 = 0x00;
const OP_RALU64: u32 = 0x01;
const OP_NOP: u32 = 0x02;
const OP_ALUI_BASE: u32 = 0x04; // 0x04 + AluOp index, Add..Slt and AddV
const OP_LUI: u32 = 0x0e;
const OP_LW: u32 = 0x10;
const OP_SW: u32 = 0x11;
const OP_AMOSWAP: u32 = 0x12;
const OP_BR_BASE: u32 = 0x18; // + Cond index
const OP_JAL: u32 = 0x20;
const OP_JALR: u32 = 0x21;
const OP_CSRR: u32 = 0x28;
const OP_CSRW: u32 = 0x29;
const OP_MRET: u32 = 0x2a;
const OP_CACHE: u32 = 0x30;
const OP_HALT: u32 = 0x3f;

/// Which ALU ops are legal in immediate form.
fn imm_op_code(op: AluOp) -> Option<u32> {
    match op {
        AluOp::Add => Some(0),
        AluOp::And => Some(1),
        AluOp::Or => Some(2),
        AluOp::Xor => Some(3),
        AluOp::Sll => Some(4),
        AluOp::Srl => Some(5),
        AluOp::Sra => Some(6),
        AluOp::Slt => Some(7),
        AluOp::AddV => Some(8),
        _ => None,
    }
}

fn imm_op_from_code(c: u32) -> Option<AluOp> {
    match c {
        0 => Some(AluOp::Add),
        1 => Some(AluOp::And),
        2 => Some(AluOp::Or),
        3 => Some(AluOp::Xor),
        4 => Some(AluOp::Sll),
        5 => Some(AluOp::Srl),
        6 => Some(AluOp::Sra),
        7 => Some(AluOp::Slt),
        8 => Some(AluOp::AddV),
        _ => None,
    }
}

fn field(word: u32, hi: u32, lo: u32) -> u32 {
    (word >> lo) & ((1 << (hi - lo + 1)) - 1)
}

fn reg_at(word: u32, hi: u32, lo: u32) -> Result<Reg, DecodeError> {
    Reg::try_from(field(word, hi, lo) as u8).map_err(|()| DecodeError { word })
}

impl Instr {
    /// Encode this instruction as a 32-bit word.
    ///
    /// # Panics
    ///
    /// Panics if an `AluImm` carries an op with no immediate form, or if
    /// a `Jal` offset does not fit in 21 signed bits. Programs built via
    /// [`Asm`](crate::Asm) never violate these.
    pub fn encode(self) -> u32 {
        fn r(op: u32, rd: Reg, rs1: Reg, rs2: Reg, func: u32) -> u32 {
            (op << 26)
                | ((rd.index() as u32) << 21)
                | ((rs1.index() as u32) << 16)
                | ((rs2.index() as u32) << 11)
                | (func & 0x7ff)
        }
        fn i(op: u32, rd: Reg, rs1: Reg, imm: u16) -> u32 {
            (op << 26) | ((rd.index() as u32) << 21) | ((rs1.index() as u32) << 16) | imm as u32
        }
        match self {
            Instr::Nop => OP_NOP << 26,
            Instr::Alu { op, rd, rs1, rs2 } => r(OP_RALU, rd, rs1, rs2, op.func()),
            Instr::Alu64 { op, rd, rs1, rs2 } => r(OP_RALU64, rd, rs1, rs2, op.func()),
            Instr::AluImm { op, rd, rs1, imm } => {
                let code = imm_op_code(op)
                    .unwrap_or_else(|| panic!("ALU op {op} has no immediate form"));
                i(OP_ALUI_BASE + code, rd, rs1, imm as u16)
            }
            Instr::Lui { rd, imm } => i(OP_LUI, rd, Reg::R0, imm),
            Instr::Load { rd, base, off } => i(OP_LW, rd, base, off as u16),
            Instr::Store { src, base, off } => i(OP_SW, src, base, off as u16),
            Instr::Amoswap { rd, base, src } => r(OP_AMOSWAP, rd, base, src, 0),
            Instr::Branch { cond, rs1, rs2, off } => {
                i(OP_BR_BASE + cond as u32, rs1, rs2, off as u16)
            }
            Instr::Jal { rd, off } => {
                assert!(
                    (-(1 << 20)..(1 << 20)).contains(&off),
                    "jal offset {off} out of 21-bit range"
                );
                (OP_JAL << 26) | ((rd.index() as u32) << 21) | ((off as u32) & 0x1f_ffff)
            }
            Instr::Jalr { rd, base, off } => i(OP_JALR, rd, base, off as u16),
            Instr::CsrRead { rd, csr } => i(OP_CSRR, rd, Reg::R0, csr.addr()),
            Instr::CsrWrite { csr, src } => i(OP_CSRW, src, Reg::R0, csr.addr()),
            Instr::Cache(op) => (OP_CACHE << 26) | op.code(),
            Instr::Mret => OP_MRET << 26,
            Instr::Halt => OP_HALT << 26,
        }
    }

    /// Decode a 32-bit word.
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError`] if the opcode or any sub-field is invalid.
    /// Note that *architecturally* illegal instructions (e.g. `add64` on a
    /// 32-bit core, odd register pairs) decode successfully and raise
    /// [`Illegal`](crate::Cause::Illegal) at execution instead.
    pub fn decode(word: u32) -> Result<Instr, DecodeError> {
        let op = field(word, 31, 26);
        let err = DecodeError { word };
        match op {
            // Fieldless opcodes require all remaining bits to be zero so
            // that arbitrary data words do not alias onto them.
            OP_NOP | OP_MRET | OP_HALT if field(word, 25, 0) != 0 => Err(err),
            OP_CACHE if field(word, 25, 11) != 0 => Err(err),
            OP_NOP => Ok(Instr::Nop),
            OP_RALU | OP_RALU64 => {
                let alu = AluOp::from_func(field(word, 10, 0)).ok_or(err)?;
                let (rd, rs1, rs2) = (
                    reg_at(word, 25, 21)?,
                    reg_at(word, 20, 16)?,
                    reg_at(word, 15, 11)?,
                );
                if op == OP_RALU {
                    Ok(Instr::Alu { op: alu, rd, rs1, rs2 })
                } else {
                    Ok(Instr::Alu64 { op: alu, rd, rs1, rs2 })
                }
            }
            _ if (OP_ALUI_BASE..OP_ALUI_BASE + 9).contains(&op) => {
                let alu = imm_op_from_code(op - OP_ALUI_BASE).ok_or(err)?;
                Ok(Instr::AluImm {
                    op: alu,
                    rd: reg_at(word, 25, 21)?,
                    rs1: reg_at(word, 20, 16)?,
                    imm: field(word, 15, 0) as u16 as i16,
                })
            }
            OP_LUI => Ok(Instr::Lui {
                rd: reg_at(word, 25, 21)?,
                imm: field(word, 15, 0) as u16,
            }),
            OP_LW => Ok(Instr::Load {
                rd: reg_at(word, 25, 21)?,
                base: reg_at(word, 20, 16)?,
                off: field(word, 15, 0) as u16 as i16,
            }),
            OP_SW => Ok(Instr::Store {
                src: reg_at(word, 25, 21)?,
                base: reg_at(word, 20, 16)?,
                off: field(word, 15, 0) as u16 as i16,
            }),
            OP_AMOSWAP => Ok(Instr::Amoswap {
                rd: reg_at(word, 25, 21)?,
                base: reg_at(word, 20, 16)?,
                src: reg_at(word, 15, 11)?,
            }),
            _ if (OP_BR_BASE..OP_BR_BASE + 4).contains(&op) => Ok(Instr::Branch {
                cond: Cond::ALL[(op - OP_BR_BASE) as usize],
                rs1: reg_at(word, 25, 21)?,
                rs2: reg_at(word, 20, 16)?,
                off: field(word, 15, 0) as u16 as i16,
            }),
            OP_JAL => {
                let raw = field(word, 20, 0);
                // Sign-extend 21 bits.
                let off = ((raw << 11) as i32) >> 11;
                Ok(Instr::Jal { rd: reg_at(word, 25, 21)?, off })
            }
            OP_JALR => Ok(Instr::Jalr {
                rd: reg_at(word, 25, 21)?,
                base: reg_at(word, 20, 16)?,
                off: field(word, 15, 0) as u16 as i16,
            }),
            OP_CSRR => Ok(Instr::CsrRead {
                rd: reg_at(word, 25, 21)?,
                csr: Csr::from_addr(field(word, 15, 0) as u16).ok_or(err)?,
            }),
            OP_CSRW => Ok(Instr::CsrWrite {
                csr: Csr::from_addr(field(word, 15, 0) as u16).ok_or(err)?,
                src: reg_at(word, 25, 21)?,
            }),
            OP_CACHE => Ok(Instr::Cache(CacheOp::from_code(field(word, 10, 0)).ok_or(err)?)),
            OP_MRET => Ok(Instr::Mret),
            OP_HALT => Ok(Instr::Halt),
            _ => Err(err),
        }
    }

    /// Destination register written by this instruction, if any.
    ///
    /// `R0` destinations are reported as `None` (writes are discarded).
    /// For `Alu64` this is the even base of the destination pair.
    pub fn dest(self) -> Option<Reg> {
        let rd = match self {
            Instr::Alu { rd, .. }
            | Instr::Alu64 { rd, .. }
            | Instr::AluImm { rd, .. }
            | Instr::Lui { rd, .. }
            | Instr::Load { rd, .. }
            | Instr::Amoswap { rd, .. }
            | Instr::Jal { rd, .. }
            | Instr::Jalr { rd, .. }
            | Instr::CsrRead { rd, .. } => rd,
            _ => return None,
        };
        (!rd.is_zero()).then_some(rd)
    }

    /// Source registers read by this instruction (up to 2, `R0` included).
    pub fn sources(self) -> [Option<Reg>; 2] {
        match self {
            Instr::Alu { rs1, rs2, .. } | Instr::Alu64 { rs1, rs2, .. } => {
                [Some(rs1), Some(rs2)]
            }
            Instr::AluImm { rs1, .. } => [Some(rs1), None],
            Instr::Load { base, .. } => [Some(base), None],
            Instr::Store { src, base, .. } => [Some(base), Some(src)],
            Instr::Amoswap { base, src, .. } => [Some(base), Some(src)],
            Instr::Branch { rs1, rs2, .. } => [Some(rs1), Some(rs2)],
            Instr::Jalr { base, .. } => [Some(base), None],
            Instr::CsrWrite { src, .. } => [Some(src), None],
            _ => [None, None],
        }
    }

    /// Whether this instruction accesses data memory.
    pub fn is_mem(self) -> bool {
        matches!(
            self,
            Instr::Load { .. } | Instr::Store { .. } | Instr::Amoswap { .. }
        )
    }

    /// Whether this instruction is a load (writes a register from memory).
    pub fn is_load(self) -> bool {
        matches!(self, Instr::Load { .. } | Instr::Amoswap { .. })
    }

    /// Whether this instruction may redirect the program counter.
    pub fn is_control_flow(self) -> bool {
        matches!(
            self,
            Instr::Branch { .. } | Instr::Jal { .. } | Instr::Jalr { .. } | Instr::Mret
        )
    }
}

impl std::fmt::Display for Instr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match *self {
            Instr::Nop => write!(f, "nop"),
            Instr::Alu { op, rd, rs1, rs2 } => write!(f, "{op} {rd}, {rs1}, {rs2}"),
            Instr::Alu64 { op, rd, rs1, rs2 } => write!(f, "{op}64 {rd}, {rs1}, {rs2}"),
            Instr::AluImm { op, rd, rs1, imm } => write!(f, "{op}i {rd}, {rs1}, {imm}"),
            Instr::Lui { rd, imm } => write!(f, "lui {rd}, {imm:#x}"),
            Instr::Load { rd, base, off } => write!(f, "lw {rd}, {off}({base})"),
            Instr::Store { src, base, off } => write!(f, "sw {src}, {off}({base})"),
            Instr::Amoswap { rd, base, src } => write!(f, "amoswap {rd}, {src}, ({base})"),
            Instr::Branch { cond, rs1, rs2, off } => {
                write!(f, "b{} {rs1}, {rs2}, {off}", cond.mnemonic())
            }
            Instr::Jal { rd, off } => write!(f, "jal {rd}, {off}"),
            Instr::Jalr { rd, base, off } => write!(f, "jalr {rd}, {off}({base})"),
            Instr::CsrRead { rd, csr } => write!(f, "csrr {rd}, {csr}"),
            Instr::CsrWrite { csr, src } => write!(f, "csrw {csr}, {src}"),
            Instr::Cache(CacheOp::IcInv) => write!(f, "icinv"),
            Instr::Cache(CacheOp::DcInv) => write!(f, "dcinv"),
            Instr::Mret => write!(f, "mret"),
            Instr::Halt => write!(f, "halt"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn arb_reg() -> impl Strategy<Value = Reg> {
        (0usize..32).prop_map(Reg::from_index)
    }

    fn arb_alu_op() -> impl Strategy<Value = AluOp> {
        prop::sample::select(AluOp::ALL.to_vec())
    }

    fn arb_imm_op() -> impl Strategy<Value = AluOp> {
        prop::sample::select(
            AluOp::ALL
                .iter()
                .copied()
                .filter(|&op| super::imm_op_code(op).is_some())
                .collect::<Vec<_>>(),
        )
    }

    fn arb_instr() -> impl Strategy<Value = Instr> {
        prop_oneof![
            Just(Instr::Nop),
            (arb_alu_op(), arb_reg(), arb_reg(), arb_reg())
                .prop_map(|(op, rd, rs1, rs2)| Instr::Alu { op, rd, rs1, rs2 }),
            (arb_alu_op(), arb_reg(), arb_reg(), arb_reg())
                .prop_map(|(op, rd, rs1, rs2)| Instr::Alu64 { op, rd, rs1, rs2 }),
            (arb_imm_op(), arb_reg(), arb_reg(), any::<i16>())
                .prop_map(|(op, rd, rs1, imm)| Instr::AluImm { op, rd, rs1, imm }),
            (arb_reg(), any::<u16>()).prop_map(|(rd, imm)| Instr::Lui { rd, imm }),
            (arb_reg(), arb_reg(), any::<i16>())
                .prop_map(|(rd, base, off)| Instr::Load { rd, base, off }),
            (arb_reg(), arb_reg(), any::<i16>())
                .prop_map(|(src, base, off)| Instr::Store { src, base, off }),
            (arb_reg(), arb_reg(), arb_reg())
                .prop_map(|(rd, base, src)| Instr::Amoswap { rd, base, src }),
            (
                prop::sample::select(Cond::ALL.to_vec()),
                arb_reg(),
                arb_reg(),
                any::<i16>()
            )
                .prop_map(|(cond, rs1, rs2, off)| Instr::Branch { cond, rs1, rs2, off }),
            (arb_reg(), -(1i32 << 20)..(1i32 << 20))
                .prop_map(|(rd, off)| Instr::Jal { rd, off }),
            (arb_reg(), arb_reg(), any::<i16>())
                .prop_map(|(rd, base, off)| Instr::Jalr { rd, base, off }),
            (arb_reg(), prop::sample::select(Csr::ALL.to_vec()))
                .prop_map(|(rd, csr)| Instr::CsrRead { rd, csr }),
            (arb_reg(), prop::sample::select(Csr::ALL.to_vec()))
                .prop_map(|(src, csr)| Instr::CsrWrite { csr, src }),
            Just(Instr::Cache(CacheOp::IcInv)),
            Just(Instr::Cache(CacheOp::DcInv)),
            Just(Instr::Mret),
            Just(Instr::Halt),
        ]
    }

    proptest! {
        #[test]
        fn encode_decode_roundtrip(instr in arb_instr()) {
            let word = instr.encode();
            let back = Instr::decode(word).expect("decode");
            prop_assert_eq!(instr, back);
        }

        #[test]
        fn decode_never_panics(word in any::<u32>()) {
            let _ = Instr::decode(word);
        }

        #[test]
        fn display_never_empty(instr in arb_instr()) {
            prop_assert!(!instr.to_string().is_empty());
        }

        #[test]
        fn display_parse_roundtrip(instr in arb_instr()) {
            let text = instr.to_string();
            let back: Instr = text.parse().unwrap_or_else(|e| panic!("{e}"));
            prop_assert_eq!(instr, back, "text was `{}`", text);
        }
    }

    #[test]
    fn decode_rejects_bad_opcode() {
        assert!(Instr::decode(0x3e << 26).is_err());
    }

    #[test]
    fn decode_rejects_bad_alu_func() {
        let word = AluOp::ALL.len() as u32; // RALU with out-of-range func
        assert!(Instr::decode(word).is_err());
    }

    #[test]
    fn jal_sign_extension() {
        let i = Instr::Jal { rd: Reg::R1, off: -8 };
        assert_eq!(Instr::decode(i.encode()).unwrap(), i);
    }

    #[test]
    fn dest_hides_r0() {
        let i = Instr::AluImm { op: AluOp::Add, rd: Reg::R0, rs1: Reg::R1, imm: 1 };
        assert_eq!(i.dest(), None);
        let i = Instr::AluImm { op: AluOp::Add, rd: Reg::R2, rs1: Reg::R1, imm: 1 };
        assert_eq!(i.dest(), Some(Reg::R2));
    }

    #[test]
    fn cond_eval() {
        assert!(Cond::Eq.eval(5, 5));
        assert!(Cond::Ne.eval(5, 6));
        assert!(Cond::Lt.eval(-1i32 as u32, 0));
        assert!(Cond::Ge.eval(0, -1i32 as u32));
    }

    #[test]
    fn sources_of_store_include_value() {
        let i = Instr::Store { src: Reg::R7, base: Reg::R8, off: 0 };
        assert_eq!(i.sources(), [Some(Reg::R8), Some(Reg::R7)]);
    }
}
