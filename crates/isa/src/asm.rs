//! A small two-pass assembler with labels.

use std::collections::HashMap;

use crate::{AluOp, CacheOp, Cond, Csr, Instr, Program, Reg};

/// Errors produced by [`Asm::assemble`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AsmError {
    /// The same label was defined twice.
    DuplicateLabel(String),
    /// A branch or jump referenced an undefined label.
    UnknownLabel(String),
    /// A resolved branch offset does not fit its 16-bit field.
    BranchOutOfRange {
        /// The target label.
        label: String,
        /// The resolved byte offset.
        offset: i64,
    },
    /// A resolved jump offset does not fit its 21-bit field.
    JumpOutOfRange {
        /// The target label.
        label: String,
        /// The resolved byte offset.
        offset: i64,
    },
    /// The requested base address is not 4-byte aligned.
    MisalignedBase(u32),
}

impl std::fmt::Display for AsmError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AsmError::DuplicateLabel(l) => write!(f, "label `{l}` defined twice"),
            AsmError::UnknownLabel(l) => write!(f, "label `{l}` is not defined"),
            AsmError::BranchOutOfRange { label, offset } => {
                write!(f, "branch to `{label}` out of range (offset {offset})")
            }
            AsmError::JumpOutOfRange { label, offset } => {
                write!(f, "jump to `{label}` out of range (offset {offset})")
            }
            AsmError::MisalignedBase(b) => write!(f, "base address {b:#x} is not word aligned"),
        }
    }
}

impl std::error::Error for AsmError {}

#[derive(Debug, Clone)]
enum Item {
    Instr(Instr),
    BranchTo { cond: Cond, rs1: Reg, rs2: Reg, label: String },
    JalTo { rd: Reg, label: String },
    /// Pad with `nop`s until the current address is a multiple of `n` bytes.
    Align(u32),
    /// Raw data word (constants pools, scratch slots).
    Word(u32),
}

/// A two-pass assembler: emit instructions and labels, then
/// [`assemble`](Asm::assemble) into a [`Program`] at a base address.
///
/// Branch/jump offsets are pc-relative so the *same* `Asm` can be
/// assembled at several base addresses — exactly what the scenario sweeps
/// (code position low/mid/high in Flash) require.
///
/// # Example
///
/// ```
/// use sbst_isa::{Asm, Reg};
/// # fn main() -> Result<(), sbst_isa::AsmError> {
/// let mut a = Asm::new();
/// a.li(Reg::R1, 3);
/// a.label("spin");
/// a.subi(Reg::R1, Reg::R1, 1);
/// a.bne(Reg::R1, Reg::R0, "spin");
/// a.halt();
/// let low = a.assemble(0x100)?;
/// let high = a.assemble(0x0007_0000)?;
/// assert_eq!(low.words(), high.words()); // fully position independent
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default)]
pub struct Asm {
    items: Vec<Item>,
    labels: HashMap<String, usize>, // label -> item index
}

impl Asm {
    /// Creates an empty assembler.
    pub fn new() -> Asm {
        Asm::default()
    }

    /// Number of emitted items (instructions + data words; labels and
    /// alignment directives excluded).
    pub fn len(&self) -> usize {
        self.items
            .iter()
            .filter(|i| !matches!(i, Item::Align(_)))
            .count()
    }

    /// Whether nothing has been emitted yet.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Appends a raw instruction.
    pub fn emit(&mut self, instr: Instr) {
        self.items.push(Item::Instr(instr));
    }

    /// Appends every instruction of another assembler fragment.
    ///
    /// Labels of `other` are *not* imported; fragments must be
    /// self-contained with respect to control flow.
    pub fn extend_instrs<I: IntoIterator<Item = Instr>>(&mut self, instrs: I) {
        for i in instrs {
            self.emit(i);
        }
    }

    /// Appends another assembler fragment *including its labels*
    /// (shifted to this assembler's current position). Colliding label
    /// names are reported by [`assemble`](Asm::assemble) as duplicates.
    pub fn append(&mut self, other: &Asm) {
        let offset = self.items.len();
        for (name, &idx) in &other.labels {
            let shifted = if idx == usize::MAX { usize::MAX } else { idx + offset };
            if self.labels.contains_key(name) {
                self.labels.insert(name.clone(), usize::MAX);
            } else {
                self.labels.insert(name.clone(), shifted);
            }
        }
        self.items.extend(other.items.iter().cloned());
    }

    /// Defines a label at the current position.
    ///
    /// Duplicate definitions are reported by [`assemble`](Asm::assemble).
    pub fn label(&mut self, name: &str) {
        // Allow overwrite detection at assemble time: record first one wins,
        // remember duplicates with a sentinel item-less map entry.
        if self.labels.contains_key(name) {
            // Mark duplicate by pointing at usize::MAX; assemble reports it.
            self.labels.insert(name.to_string(), usize::MAX);
        } else {
            self.labels.insert(name.to_string(), self.items.len());
        }
    }

    /// Emits a raw data word at the current position.
    pub fn word(&mut self, value: u32) {
        self.items.push(Item::Word(value));
    }

    /// Pads with `nop` until the current address is `n`-byte aligned.
    ///
    /// `n` must be a power of two multiple of 4. Used by the scenario
    /// sweeps to control issue-packet alignment.
    pub fn align(&mut self, n: u32) {
        assert!(n.is_power_of_two() && n >= 4, "bad alignment {n}");
        self.items.push(Item::Align(n));
    }

    // ---- ALU ----------------------------------------------------------

    /// `add rd, rs1, rs2`
    pub fn add(&mut self, rd: Reg, rs1: Reg, rs2: Reg) {
        self.emit(Instr::Alu { op: AluOp::Add, rd, rs1, rs2 });
    }

    /// `sub rd, rs1, rs2`
    pub fn sub(&mut self, rd: Reg, rs1: Reg, rs2: Reg) {
        self.emit(Instr::Alu { op: AluOp::Sub, rd, rs1, rs2 });
    }

    /// `and rd, rs1, rs2`
    pub fn and(&mut self, rd: Reg, rs1: Reg, rs2: Reg) {
        self.emit(Instr::Alu { op: AluOp::And, rd, rs1, rs2 });
    }

    /// `or rd, rs1, rs2`
    pub fn or(&mut self, rd: Reg, rs1: Reg, rs2: Reg) {
        self.emit(Instr::Alu { op: AluOp::Or, rd, rs1, rs2 });
    }

    /// `xor rd, rs1, rs2`
    pub fn xor(&mut self, rd: Reg, rs1: Reg, rs2: Reg) {
        self.emit(Instr::Alu { op: AluOp::Xor, rd, rs1, rs2 });
    }

    /// `sll rd, rs1, rs2`
    pub fn sll(&mut self, rd: Reg, rs1: Reg, rs2: Reg) {
        self.emit(Instr::Alu { op: AluOp::Sll, rd, rs1, rs2 });
    }

    /// `srl rd, rs1, rs2`
    pub fn srl(&mut self, rd: Reg, rs1: Reg, rs2: Reg) {
        self.emit(Instr::Alu { op: AluOp::Srl, rd, rs1, rs2 });
    }

    /// `mul rd, rs1, rs2`
    pub fn mul(&mut self, rd: Reg, rs1: Reg, rs2: Reg) {
        self.emit(Instr::Alu { op: AluOp::Mul, rd, rs1, rs2 });
    }

    /// `sra rd, rs1, rs2`
    pub fn sra(&mut self, rd: Reg, rs1: Reg, rs2: Reg) {
        self.emit(Instr::Alu { op: AluOp::Sra, rd, rs1, rs2 });
    }

    /// `slt rd, rs1, rs2`
    pub fn slt(&mut self, rd: Reg, rs1: Reg, rs2: Reg) {
        self.emit(Instr::Alu { op: AluOp::Slt, rd, rs1, rs2 });
    }

    /// Generic register-register ALU op.
    pub fn alu(&mut self, op: AluOp, rd: Reg, rs1: Reg, rs2: Reg) {
        self.emit(Instr::Alu { op, rd, rs1, rs2 });
    }

    /// Generic 64-bit register-pair ALU op (core C only).
    pub fn alu64(&mut self, op: AluOp, rd: Reg, rs1: Reg, rs2: Reg) {
        self.emit(Instr::Alu64 { op, rd, rs1, rs2 });
    }

    /// `addv rd, rs1, rs2` — overflow-trapping add (imprecise exception).
    pub fn addv(&mut self, rd: Reg, rs1: Reg, rs2: Reg) {
        self.emit(Instr::Alu { op: AluOp::AddV, rd, rs1, rs2 });
    }

    /// `mulv rd, rs1, rs2` — overflow-trapping multiply.
    pub fn mulv(&mut self, rd: Reg, rs1: Reg, rs2: Reg) {
        self.emit(Instr::Alu { op: AluOp::MulV, rd, rs1, rs2 });
    }

    /// `addi rd, rs1, imm`
    pub fn addi(&mut self, rd: Reg, rs1: Reg, imm: i16) {
        self.emit(Instr::AluImm { op: AluOp::Add, rd, rs1, imm });
    }

    /// `subi rd, rs1, imm` (pseudo: `addi rd, rs1, -imm`).
    pub fn subi(&mut self, rd: Reg, rs1: Reg, imm: i16) {
        self.addi(rd, rs1, -imm);
    }

    /// `andi rd, rs1, imm`
    pub fn andi(&mut self, rd: Reg, rs1: Reg, imm: i16) {
        self.emit(Instr::AluImm { op: AluOp::And, rd, rs1, imm });
    }

    /// `ori rd, rs1, imm`
    pub fn ori(&mut self, rd: Reg, rs1: Reg, imm: i16) {
        self.emit(Instr::AluImm { op: AluOp::Or, rd, rs1, imm });
    }

    /// `xori rd, rs1, imm`
    pub fn xori(&mut self, rd: Reg, rs1: Reg, imm: i16) {
        self.emit(Instr::AluImm { op: AluOp::Xor, rd, rs1, imm });
    }

    /// `slli rd, rs1, imm`
    pub fn slli(&mut self, rd: Reg, rs1: Reg, imm: i16) {
        self.emit(Instr::AluImm { op: AluOp::Sll, rd, rs1, imm });
    }

    /// `srli rd, rs1, imm`
    pub fn srli(&mut self, rd: Reg, rs1: Reg, imm: i16) {
        self.emit(Instr::AluImm { op: AluOp::Srl, rd, rs1, imm });
    }

    /// `lui rd, imm`
    pub fn lui(&mut self, rd: Reg, imm: u16) {
        self.emit(Instr::Lui { rd, imm });
    }

    /// Loads an arbitrary 32-bit constant (`lui`+`ori` or single `addi`).
    ///
    /// Always emits a *fixed* number of instructions for a given constant,
    /// keeping code layout deterministic.
    pub fn li(&mut self, rd: Reg, value: u32) {
        let v = value as i32;
        if (-32768..32768).contains(&v) {
            self.addi(rd, Reg::R0, v as i16);
        } else {
            self.lui(rd, (value >> 16) as u16);
            self.ori(rd, rd, (value & 0xffff) as i16);
        }
    }

    /// Loads a 32-bit constant with a *fixed* two-instruction expansion
    /// (`lui`+`ori`), regardless of the value. Used where downstream code
    /// depends on a constant code size (e.g. embedded-image address
    /// computation in the TCM wrapper).
    pub fn li32(&mut self, rd: Reg, value: u32) {
        self.lui(rd, (value >> 16) as u16);
        self.ori(rd, rd, (value & 0xffff) as i16);
    }

    /// `mv rd, rs` (pseudo: `addi rd, rs, 0`).
    pub fn mv(&mut self, rd: Reg, rs: Reg) {
        self.addi(rd, rs, 0);
    }

    /// `nop`
    pub fn nop(&mut self) {
        self.emit(Instr::Nop);
    }

    /// Emits `n` consecutive `nop`s.
    pub fn nops(&mut self, n: usize) {
        for _ in 0..n {
            self.nop();
        }
    }

    // ---- memory -------------------------------------------------------

    /// `lw rd, off(base)`
    pub fn lw(&mut self, rd: Reg, base: Reg, off: i16) {
        self.emit(Instr::Load { rd, base, off });
    }

    /// `sw src, off(base)`
    pub fn sw(&mut self, src: Reg, base: Reg, off: i16) {
        self.emit(Instr::Store { src, base, off });
    }

    /// `amoswap rd, src, (base)`
    pub fn amoswap(&mut self, rd: Reg, src: Reg, base: Reg) {
        self.emit(Instr::Amoswap { rd, base, src });
    }

    // ---- control flow -------------------------------------------------

    /// `beq rs1, rs2, label`
    pub fn beq(&mut self, rs1: Reg, rs2: Reg, label: &str) {
        self.branch(Cond::Eq, rs1, rs2, label);
    }

    /// `bne rs1, rs2, label`
    pub fn bne(&mut self, rs1: Reg, rs2: Reg, label: &str) {
        self.branch(Cond::Ne, rs1, rs2, label);
    }

    /// `blt rs1, rs2, label`
    pub fn blt(&mut self, rs1: Reg, rs2: Reg, label: &str) {
        self.branch(Cond::Lt, rs1, rs2, label);
    }

    /// `bge rs1, rs2, label`
    pub fn bge(&mut self, rs1: Reg, rs2: Reg, label: &str) {
        self.branch(Cond::Ge, rs1, rs2, label);
    }

    /// Generic conditional branch to a label.
    pub fn branch(&mut self, cond: Cond, rs1: Reg, rs2: Reg, label: &str) {
        self.items.push(Item::BranchTo { cond, rs1, rs2, label: label.to_string() });
    }

    /// `j label` (pseudo: `jal r0, label`).
    pub fn j(&mut self, label: &str) {
        self.items.push(Item::JalTo { rd: Reg::R0, label: label.to_string() });
    }

    /// `jal rd, label`
    pub fn jal(&mut self, rd: Reg, label: &str) {
        self.items.push(Item::JalTo { rd, label: label.to_string() });
    }

    /// `jalr rd, off(base)`
    pub fn jalr(&mut self, rd: Reg, base: Reg, off: i16) {
        self.emit(Instr::Jalr { rd, base, off });
    }

    /// `ret` (pseudo: `jalr r0, 0(r31)`; `r31` is the link register by
    /// convention).
    pub fn ret(&mut self) {
        self.jalr(Reg::R0, Reg::R31, 0);
    }

    /// `call label` (pseudo: `jal r31, label`).
    pub fn call(&mut self, label: &str) {
        self.jal(Reg::R31, label);
    }

    // ---- system -------------------------------------------------------

    /// `csrr rd, csr`
    pub fn csrr(&mut self, rd: Reg, csr: Csr) {
        self.emit(Instr::CsrRead { rd, csr });
    }

    /// `csrw csr, src`
    pub fn csrw(&mut self, csr: Csr, src: Reg) {
        self.emit(Instr::CsrWrite { csr, src });
    }

    /// `icinv` — invalidate the instruction cache.
    pub fn icinv(&mut self) {
        self.emit(Instr::Cache(CacheOp::IcInv));
    }

    /// `dcinv` — invalidate the data cache.
    pub fn dcinv(&mut self) {
        self.emit(Instr::Cache(CacheOp::DcInv));
    }

    /// `mret`
    pub fn mret(&mut self) {
        self.emit(Instr::Mret);
    }

    /// `halt`
    pub fn halt(&mut self) {
        self.emit(Instr::Halt);
    }

    // ---- assembly -----------------------------------------------------

    /// Resolves labels and produces a [`Program`] based at `base`.
    ///
    /// # Errors
    ///
    /// Returns an [`AsmError`] for duplicate/unknown labels, out-of-range
    /// branch offsets or a misaligned base address.
    pub fn assemble(&self, base: u32) -> Result<Program, AsmError> {
        if !base.is_multiple_of(4) {
            return Err(AsmError::MisalignedBase(base));
        }
        for (name, &idx) in &self.labels {
            if idx == usize::MAX {
                return Err(AsmError::DuplicateLabel(name.clone()));
            }
        }

        // Pass 1: layout — byte offset of each item, plus label offsets.
        let mut offsets = Vec::with_capacity(self.items.len());
        let mut cursor = base;
        for item in &self.items {
            if let Item::Align(n) = item {
                while !cursor.is_multiple_of(*n) {
                    cursor += 4;
                }
            }
            offsets.push(cursor);
            match item {
                Item::Align(_) => {}
                _ => cursor += 4,
            }
        }
        let end = cursor;

        let label_addr = |label: &str| -> Result<u32, AsmError> {
            let &idx = self
                .labels
                .get(label)
                .ok_or_else(|| AsmError::UnknownLabel(label.to_string()))?;
            Ok(if idx == self.items.len() { end } else { offsets[idx] })
        };

        // Pass 2: emit words.
        let mut words = Vec::new();
        let mut cursor = base;
        for (item, &addr) in self.items.iter().zip(&offsets) {
            match item {
                Item::Align(_) => {
                    while cursor < addr {
                        words.push(Instr::Nop.encode());
                        cursor += 4;
                    }
                    continue;
                }
                Item::Instr(i) => words.push(i.encode()),
                Item::Word(w) => words.push(*w),
                Item::BranchTo { cond, rs1, rs2, label } => {
                    let target = label_addr(label)?;
                    let off = target as i64 - addr as i64;
                    let off16 = i16::try_from(off).map_err(|_| AsmError::BranchOutOfRange {
                        label: label.clone(),
                        offset: off,
                    })?;
                    words.push(
                        Instr::Branch { cond: *cond, rs1: *rs1, rs2: *rs2, off: off16 }.encode(),
                    );
                }
                Item::JalTo { rd, label } => {
                    let target = label_addr(label)?;
                    let off = target as i64 - addr as i64;
                    if !(-(1 << 20)..(1 << 20)).contains(&off) {
                        return Err(AsmError::JumpOutOfRange {
                            label: label.clone(),
                            offset: off,
                        });
                    }
                    words.push(Instr::Jal { rd: *rd, off: off as i32 }.encode());
                }
            }
            cursor += 4;
        }

        Ok(Program::new(base, words))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_and_backward_branches_resolve() {
        let mut a = Asm::new();
        a.label("top");
        a.addi(Reg::R1, Reg::R1, 1);
        a.beq(Reg::R1, Reg::R2, "end");
        a.j("top");
        a.label("end");
        a.halt();
        let p = a.assemble(0x1000).unwrap();
        assert_eq!(p.words().len(), 4);
        // beq at 0x1004 targets 0x100c => off = 8
        let beq = Instr::decode(p.words()[1]).unwrap();
        assert_eq!(
            beq,
            Instr::Branch { cond: Cond::Eq, rs1: Reg::R1, rs2: Reg::R2, off: 8 }
        );
        // j at 0x1008 targets 0x1000 => off = -8
        let j = Instr::decode(p.words()[2]).unwrap();
        assert_eq!(j, Instr::Jal { rd: Reg::R0, off: -8 });
    }

    #[test]
    fn label_at_end_of_program_resolves() {
        let mut a = Asm::new();
        a.beq(Reg::R0, Reg::R0, "end");
        a.label("end");
        let p = a.assemble(0).unwrap();
        let b = Instr::decode(p.words()[0]).unwrap();
        assert_eq!(b, Instr::Branch { cond: Cond::Eq, rs1: Reg::R0, rs2: Reg::R0, off: 4 });
    }

    #[test]
    fn unknown_label_is_reported() {
        let mut a = Asm::new();
        a.j("nowhere");
        assert_eq!(
            a.assemble(0),
            Err(AsmError::UnknownLabel("nowhere".to_string()))
        );
    }

    #[test]
    fn duplicate_label_is_reported() {
        let mut a = Asm::new();
        a.label("x");
        a.nop();
        a.label("x");
        assert_eq!(a.assemble(0), Err(AsmError::DuplicateLabel("x".to_string())));
    }

    #[test]
    fn misaligned_base_is_reported() {
        let a = Asm::new();
        assert_eq!(a.assemble(2), Err(AsmError::MisalignedBase(2)));
    }

    #[test]
    fn align_pads_with_nops() {
        let mut a = Asm::new();
        a.nop();
        a.align(16);
        a.label("aligned");
        a.halt();
        let p = a.assemble(0x100).unwrap();
        // nop at 0x100, pad 0x104..0x110, halt at 0x110
        assert_eq!(p.words().len(), 5);
        assert_eq!(Instr::decode(p.words()[4]).unwrap(), Instr::Halt);
    }

    #[test]
    fn sra_and_slt_helpers() {
        let mut a = Asm::new();
        a.sra(Reg::R1, Reg::R2, Reg::R3);
        a.slt(Reg::R4, Reg::R5, Reg::R6);
        let p = a.assemble(0).unwrap();
        assert_eq!(
            Instr::decode(p.words()[0]).unwrap(),
            Instr::Alu { op: AluOp::Sra, rd: Reg::R1, rs1: Reg::R2, rs2: Reg::R3 }
        );
        assert_eq!(
            Instr::decode(p.words()[1]).unwrap(),
            Instr::Alu { op: AluOp::Slt, rd: Reg::R4, rs1: Reg::R5, rs2: Reg::R6 }
        );
    }

    #[test]
    fn li_small_and_large() {
        let mut a = Asm::new();
        a.li(Reg::R1, 5);
        a.li(Reg::R2, 0xdead_beef);
        let p = a.assemble(0).unwrap();
        assert_eq!(p.words().len(), 3);
        assert_eq!(
            Instr::decode(p.words()[1]).unwrap(),
            Instr::Lui { rd: Reg::R2, imm: 0xdead }
        );
    }

    #[test]
    fn position_independent_codegen() {
        let mut a = Asm::new();
        a.label("top");
        a.addi(Reg::R1, Reg::R1, 1);
        a.bne(Reg::R1, Reg::R2, "top");
        a.halt();
        assert_eq!(a.assemble(0).unwrap().words(), a.assemble(0x7_0000).unwrap().words());
    }

    #[test]
    fn append_imports_labels_shifted() {
        let mut frag = Asm::new();
        frag.label("frag_top");
        frag.addi(Reg::R1, Reg::R1, 1);
        frag.bne(Reg::R1, Reg::R2, "frag_top");
        let mut main = Asm::new();
        main.nop();
        main.nop();
        main.append(&frag);
        main.halt();
        let p = main.assemble(0x100).unwrap();
        // The backward branch targets the shifted label (0x108).
        let b = Instr::decode(p.words()[3]).unwrap();
        assert_eq!(
            b,
            Instr::Branch { cond: Cond::Ne, rs1: Reg::R1, rs2: Reg::R2, off: -4 }
        );
    }

    #[test]
    fn append_detects_label_collisions() {
        let mut frag = Asm::new();
        frag.label("x");
        frag.nop();
        let mut main = Asm::new();
        main.label("x");
        main.nop();
        main.append(&frag);
        assert_eq!(main.assemble(0), Err(AsmError::DuplicateLabel("x".into())));
    }

    #[test]
    fn branch_out_of_range_is_reported() {
        let mut a = Asm::new();
        a.label("far");
        for _ in 0..10_000 {
            a.nop();
        }
        a.beq(Reg::R0, Reg::R0, "far");
        assert!(matches!(
            a.assemble(0),
            Err(AsmError::BranchOutOfRange { .. })
        ));
    }
}
