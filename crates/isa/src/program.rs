//! Assembled program image.

use crate::{DecodeError, Instr};

/// An assembled, position-fixed program image: a base address plus a
/// contiguous sequence of 32-bit words (instructions and inline data).
///
/// Programs are what the SoC loader writes into Flash and what the
/// self-test wrappers measure for the *memory footprint* comparisons
/// (paper Table IV).
///
/// # Example
///
/// ```
/// use sbst_isa::{Asm, Program, Reg};
/// # fn main() -> Result<(), sbst_isa::AsmError> {
/// let mut a = Asm::new();
/// a.addi(Reg::R1, Reg::R0, 7);
/// a.halt();
/// let p: Program = a.assemble(0x200)?;
/// assert_eq!(p.len_bytes(), 8);
/// assert!(p.contains(0x204));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Program {
    base: u32,
    words: Vec<u32>,
}

impl Program {
    /// Creates a program from raw words at `base`.
    ///
    /// # Panics
    ///
    /// Panics if `base` is not 4-byte aligned.
    pub fn new(base: u32, words: Vec<u32>) -> Program {
        assert_eq!(base % 4, 0, "program base {base:#x} must be word aligned");
        Program { base, words }
    }

    /// Base (load) address.
    pub fn base(&self) -> u32 {
        self.base
    }

    /// Address of the first byte past the image.
    pub fn end(&self) -> u32 {
        self.base + self.len_bytes() as u32
    }

    /// Raw image words.
    pub fn words(&self) -> &[u32] {
        &self.words
    }

    /// Size of the image in bytes.
    pub fn len_bytes(&self) -> usize {
        self.words.len() * 4
    }

    /// Whether the image is empty.
    pub fn is_empty(&self) -> bool {
        self.words.is_empty()
    }

    /// Whether `addr` falls inside the image.
    pub fn contains(&self, addr: u32) -> bool {
        addr >= self.base && addr < self.end()
    }

    /// Word at byte address `addr`, if inside the image and aligned.
    pub fn word_at(&self, addr: u32) -> Option<u32> {
        if !self.contains(addr) || !addr.is_multiple_of(4) {
            return None;
        }
        Some(self.words[((addr - self.base) / 4) as usize])
    }

    /// Decoded instruction at byte address `addr`.
    ///
    /// # Errors
    ///
    /// Returns a [`DecodeError`] if the word is not a valid encoding
    /// (e.g. it is inline data); addresses outside the image yield
    /// `Err` with the word reported as `0`.
    pub fn instr_at(&self, addr: u32) -> Result<Instr, DecodeError> {
        match self.word_at(addr) {
            Some(w) => Instr::decode(w),
            None => Err(DecodeError { word: 0 }),
        }
    }

    /// Pretty disassembly listing of the whole image.
    ///
    /// Data words that do not decode are shown as `.word`.
    pub fn disassemble(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for (i, &w) in self.words.iter().enumerate() {
            let addr = self.base + (i as u32) * 4;
            match Instr::decode(w) {
                Ok(instr) => {
                    let _ = writeln!(out, "{addr:#010x}:  {w:08x}  {instr}");
                }
                Err(_) => {
                    let _ = writeln!(out, "{addr:#010x}:  {w:08x}  .word {w:#x}");
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Asm, Reg};

    fn sample() -> Program {
        let mut a = Asm::new();
        a.addi(Reg::R1, Reg::R0, 1);
        a.word(0xffff_ffff);
        a.halt();
        a.assemble(0x400).unwrap()
    }

    #[test]
    fn addressing() {
        let p = sample();
        assert_eq!(p.base(), 0x400);
        assert_eq!(p.end(), 0x40c);
        assert_eq!(p.len_bytes(), 12);
        assert!(p.contains(0x400));
        assert!(p.contains(0x40b));
        assert!(!p.contains(0x40c));
        assert_eq!(p.word_at(0x404), Some(0xffff_ffff));
        assert_eq!(p.word_at(0x402), None, "unaligned");
        assert_eq!(p.word_at(0x3fc), None, "below base");
    }

    #[test]
    fn disassembly_marks_data() {
        let p = sample();
        let d = p.disassemble();
        assert!(d.contains("addi"), "{d}");
        assert!(d.contains(".word"), "{d}");
        assert!(d.contains("halt"), "{d}");
    }

    #[test]
    #[should_panic]
    fn misaligned_base_panics() {
        let _ = Program::new(3, vec![]);
    }
}
