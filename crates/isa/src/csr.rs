//! Control and status registers.

/// Control and status registers exposed by the modeled cores.
///
/// Performance counters (`Cycles`, `IfStalls`, `MemStalls`, `HazStalls`,
/// `Retired`) are the paper's "Performance Counters": self-test routines
/// read them with `csrr` and fold them into the test signature to detect
/// wrongly inserted pipeline stalls. The ICU registers expose the imprecise
/// synchronous interrupt state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[repr(u16)]
pub enum Csr {
    /// Free-running cycle counter.
    Cycles = 0x000,
    /// Retired (committed) instruction counter.
    Retired = 0x001,
    /// Cycles the fetch stage stalled waiting for instruction memory.
    IfStalls = 0x002,
    /// Cycles the memory stage stalled waiting for data memory.
    MemStalls = 0x003,
    /// Cycles the issue stage stalled on data hazards (HDCU-inserted).
    HazStalls = 0x004,
    /// ICU cause register (bit layout differs between cores A/B and C).
    IcuCause = 0x010,
    /// ICU raw pending latches (one bit per cause source).
    IcuPending = 0x011,
    /// ICU interrupt mask; bit set = cause enabled.
    IcuMask = 0x012,
    /// Exception PC: address of the first instruction *not* retired
    /// before the imprecise trap was recognised.
    Epc = 0x013,
    /// Number of instructions retired *past* the offending instruction
    /// before the trap was recognised (the paper's "imprecision depth").
    IcuDepth = 0x014,
    /// Trap handler vector; traps are fatal while it is 0.
    TrapVec = 0x015,
    /// Identifier of this core (0 = A, 1 = B, 2 = C).
    CoreId = 0x020,
    /// Scratch register 0 (software use, e.g. saved signature).
    Scratch0 = 0x030,
    /// Scratch register 1.
    Scratch1 = 0x031,
}

impl Csr {
    /// All CSRs.
    pub const ALL: [Csr; 14] = [
        Csr::Cycles,
        Csr::Retired,
        Csr::IfStalls,
        Csr::MemStalls,
        Csr::HazStalls,
        Csr::IcuCause,
        Csr::IcuPending,
        Csr::IcuMask,
        Csr::Epc,
        Csr::IcuDepth,
        Csr::TrapVec,
        Csr::CoreId,
        Csr::Scratch0,
        Csr::Scratch1,
    ];

    /// Numeric CSR address as used in the instruction encoding.
    pub fn addr(self) -> u16 {
        self as u16
    }

    /// CSR for a numeric address, if defined.
    pub fn from_addr(addr: u16) -> Option<Csr> {
        Csr::ALL.iter().copied().find(|c| c.addr() == addr)
    }

    /// Whether software writes via `csrw` are permitted.
    ///
    /// Counters are read-only from software (they are reset by the wrapper
    /// through dedicated semantics in the core model); ICU mask, scratch
    /// registers and the pending clear are writable.
    pub fn is_writable(self) -> bool {
        matches!(
            self,
            Csr::IcuMask | Csr::IcuPending | Csr::TrapVec | Csr::Scratch0 | Csr::Scratch1
        )
    }
}

impl std::fmt::Display for Csr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            Csr::Cycles => "cycles",
            Csr::Retired => "retired",
            Csr::IfStalls => "ifstalls",
            Csr::MemStalls => "memstalls",
            Csr::HazStalls => "hazstalls",
            Csr::IcuCause => "icucause",
            Csr::IcuPending => "icupending",
            Csr::IcuMask => "icumask",
            Csr::Epc => "epc",
            Csr::IcuDepth => "icudepth",
            Csr::TrapVec => "trapvec",
            Csr::CoreId => "coreid",
            Csr::Scratch0 => "scratch0",
            Csr::Scratch1 => "scratch1",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn addr_roundtrip() {
        for c in Csr::ALL {
            assert_eq!(Csr::from_addr(c.addr()), Some(c));
        }
        assert_eq!(Csr::from_addr(0xfff), None);
    }

    #[test]
    fn counters_are_read_only() {
        assert!(!Csr::Cycles.is_writable());
        assert!(!Csr::IfStalls.is_writable());
        assert!(Csr::IcuMask.is_writable());
        assert!(Csr::Scratch0.is_writable());
    }
}
