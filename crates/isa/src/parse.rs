//! Assembly-text parsing: the inverse of the `Display` impls.
//!
//! Accepts exactly the notation the disassembler prints (plus flexible
//! whitespace), so `instr.to_string().parse()` round-trips every
//! instruction — handy for writing test programs as text and for
//! tooling over disassembly listings.

use std::str::FromStr;

use crate::{AluOp, CacheOp, Cond, Csr, Instr, Reg};

/// Error produced when a line of assembly text cannot be parsed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseInstrError {
    /// The offending text.
    pub text: String,
    /// What went wrong.
    pub reason: &'static str,
}

impl std::fmt::Display for ParseInstrError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "cannot parse `{}`: {}", self.text, self.reason)
    }
}

impl std::error::Error for ParseInstrError {}

fn err(text: &str, reason: &'static str) -> ParseInstrError {
    ParseInstrError { text: text.to_string(), reason }
}

impl FromStr for Reg {
    type Err = ParseInstrError;

    fn from_str(s: &str) -> Result<Reg, ParseInstrError> {
        let s = s.trim();
        let idx = s
            .strip_prefix('r')
            .and_then(|n| n.parse::<u8>().ok())
            .ok_or_else(|| err(s, "expected a register like `r7`"))?;
        Reg::try_from(idx).map_err(|()| err(s, "register index out of range"))
    }
}

impl FromStr for Csr {
    type Err = ParseInstrError;

    fn from_str(s: &str) -> Result<Csr, ParseInstrError> {
        let s = s.trim();
        Csr::ALL
            .iter()
            .copied()
            .find(|c| c.to_string() == s)
            .ok_or_else(|| err(s, "unknown CSR name"))
    }
}

/// Parses a signed integer in decimal or `0x` hex (with optional sign).
fn parse_int(s: &str) -> Option<i64> {
    let s = s.trim();
    let (neg, body) = match s.strip_prefix('-') {
        Some(rest) => (true, rest),
        None => (false, s),
    };
    let v = if let Some(hex) = body.strip_prefix("0x") {
        i64::from_str_radix(hex, 16).ok()?
    } else {
        body.parse::<i64>().ok()?
    };
    Some(if neg { -v } else { v })
}

/// Splits `off(base)` notation.
fn parse_mem_operand(s: &str) -> Option<(i16, Reg)> {
    let s = s.trim();
    let open = s.find('(')?;
    let close = s.rfind(')')?;
    let off = if open == 0 { 0 } else { i16::try_from(parse_int(&s[..open])?).ok()? };
    let base: Reg = s[open + 1..close].parse().ok()?;
    Some((off, base))
}

impl FromStr for Instr {
    type Err = ParseInstrError;

    /// Parses one instruction in the disassembler's notation.
    ///
    /// # Errors
    ///
    /// Returns [`ParseInstrError`] for unknown mnemonics, malformed
    /// operands or out-of-range immediates.
    fn from_str(line: &str) -> Result<Instr, ParseInstrError> {
        let line = line.trim();
        let (mnemonic, rest) = match line.split_once(char::is_whitespace) {
            Some((m, r)) => (m, r.trim()),
            None => (line, ""),
        };
        let ops: Vec<&str> = if rest.is_empty() {
            Vec::new()
        } else {
            rest.split(',').map(str::trim).collect()
        };
        let nargs = ops.len();
        let want = |n: usize| -> Result<(), ParseInstrError> {
            if nargs == n {
                Ok(())
            } else {
                Err(err(line, "wrong operand count"))
            }
        };
        let reg = |i: usize| -> Result<Reg, ParseInstrError> {
            ops.get(i).ok_or_else(|| err(line, "missing operand"))?.parse()
        };
        let imm16 = |i: usize| -> Result<i16, ParseInstrError> {
            let raw = parse_int(ops.get(i).ok_or_else(|| err(line, "missing operand"))?)
                .ok_or_else(|| err(line, "bad immediate"))?;
            // Accept both signed and unsigned-u16 spellings.
            if (-(1 << 15)..(1 << 16)).contains(&raw) {
                Ok(raw as u16 as i16)
            } else {
                Err(err(line, "immediate out of 16-bit range"))
            }
        };

        match mnemonic {
            "nop" => want(0).map(|()| Instr::Nop),
            "halt" => want(0).map(|()| Instr::Halt),
            "mret" => want(0).map(|()| Instr::Mret),
            "icinv" => want(0).map(|()| Instr::Cache(CacheOp::IcInv)),
            "dcinv" => want(0).map(|()| Instr::Cache(CacheOp::DcInv)),
            "lui" => {
                want(2)?;
                let raw = parse_int(ops[1]).ok_or_else(|| err(line, "bad immediate"))?;
                let imm = u16::try_from(raw).map_err(|_| err(line, "lui immediate range"))?;
                Ok(Instr::Lui { rd: reg(0)?, imm })
            }
            "lw" => {
                want(2)?;
                let (off, base) =
                    parse_mem_operand(ops[1]).ok_or_else(|| err(line, "bad memory operand"))?;
                Ok(Instr::Load { rd: reg(0)?, base, off })
            }
            "sw" => {
                want(2)?;
                let (off, base) =
                    parse_mem_operand(ops[1]).ok_or_else(|| err(line, "bad memory operand"))?;
                Ok(Instr::Store { src: reg(0)?, base, off })
            }
            "amoswap" => {
                want(3)?;
                let (off, base) =
                    parse_mem_operand(ops[2]).ok_or_else(|| err(line, "bad memory operand"))?;
                if off != 0 {
                    return Err(err(line, "amoswap takes no offset"));
                }
                Ok(Instr::Amoswap { rd: reg(0)?, base, src: reg(1)? })
            }
            "jal" => {
                want(2)?;
                let off = parse_int(ops[1]).ok_or_else(|| err(line, "bad offset"))?;
                if !(-(1 << 20)..(1 << 20)).contains(&off) {
                    return Err(err(line, "jal offset out of range"));
                }
                Ok(Instr::Jal { rd: reg(0)?, off: off as i32 })
            }
            "jalr" => {
                want(2)?;
                let (off, base) =
                    parse_mem_operand(ops[1]).ok_or_else(|| err(line, "bad memory operand"))?;
                Ok(Instr::Jalr { rd: reg(0)?, base, off })
            }
            "csrr" => {
                want(2)?;
                Ok(Instr::CsrRead { rd: reg(0)?, csr: ops[1].parse()? })
            }
            "csrw" => {
                want(2)?;
                Ok(Instr::CsrWrite { csr: ops[0].parse()?, src: reg(1)? })
            }
            // `subi` is a pseudo-instruction (negated `addi`).
            "subi" => {
                want(3)?;
                let imm = imm16(2)?;
                let neg = imm.checked_neg().ok_or_else(|| err(line, "subi immediate range"))?;
                Ok(Instr::AluImm { op: AluOp::Add, rd: reg(0)?, rs1: reg(1)?, imm: neg })
            }
            _ => {
                // Branches: b<cond>.
                if let Some(cond) = Cond::ALL
                    .iter()
                    .copied()
                    .find(|c| mnemonic == format!("b{}", c.mnemonic()))
                {
                    want(3)?;
                    return Ok(Instr::Branch { cond, rs1: reg(0)?, rs2: reg(1)?, off: imm16(2)? });
                }
                // ALU forms: <op>, <op>64, <op>i.
                for op in AluOp::ALL {
                    let stem = op.mnemonic();
                    if mnemonic == stem {
                        want(3)?;
                        return Ok(Instr::Alu { op, rd: reg(0)?, rs1: reg(1)?, rs2: reg(2)? });
                    }
                    if mnemonic == format!("{stem}64") {
                        want(3)?;
                        return Ok(Instr::Alu64 { op, rd: reg(0)?, rs1: reg(1)?, rs2: reg(2)? });
                    }
                    if mnemonic == format!("{stem}i") {
                        if !op.has_imm_form() {
                            return Err(err(line, "this op has no immediate form"));
                        }
                        want(3)?;
                        return Ok(Instr::AluImm { op, rd: reg(0)?, rs1: reg(1)?, imm: imm16(2)? });
                    }
                }
                Err(err(line, "unknown mnemonic"))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_representative_lines() {
        assert_eq!("nop".parse::<Instr>().unwrap(), Instr::Nop);
        assert_eq!(
            "add r3, r1, r2".parse::<Instr>().unwrap(),
            Instr::Alu { op: AluOp::Add, rd: Reg::R3, rs1: Reg::R1, rs2: Reg::R2 }
        );
        assert_eq!(
            "addi r5, r0, -7".parse::<Instr>().unwrap(),
            Instr::AluImm { op: AluOp::Add, rd: Reg::R5, rs1: Reg::R0, imm: -7 }
        );
        assert_eq!(
            "lw r4, -8(r9)".parse::<Instr>().unwrap(),
            Instr::Load { rd: Reg::R4, base: Reg::R9, off: -8 }
        );
        assert_eq!(
            "amoswap r1, r2, (r3)".parse::<Instr>().unwrap(),
            Instr::Amoswap { rd: Reg::R1, base: Reg::R3, src: Reg::R2 }
        );
        assert_eq!(
            "beq r1, r2, 16".parse::<Instr>().unwrap(),
            Instr::Branch { cond: Cond::Eq, rs1: Reg::R1, rs2: Reg::R2, off: 16 }
        );
        assert_eq!(
            "csrw icumask, r7".parse::<Instr>().unwrap(),
            Instr::CsrWrite { csr: Csr::IcuMask, src: Reg::R7 }
        );
        assert_eq!(
            "lui r2, 0xdead".parse::<Instr>().unwrap(),
            Instr::Lui { rd: Reg::R2, imm: 0xdead }
        );
        assert_eq!(
            "add64 r4, r2, r6".parse::<Instr>().unwrap(),
            Instr::Alu64 { op: AluOp::Add, rd: Reg::R4, rs1: Reg::R2, rs2: Reg::R6 }
        );
    }

    #[test]
    fn subi_is_a_pseudo_for_negated_addi() {
        assert_eq!(
            "subi r1, r1, 5".parse::<Instr>().unwrap(),
            Instr::AluImm { op: AluOp::Add, rd: Reg::R1, rs1: Reg::R1, imm: -5 }
        );
        assert!("muli r1, r1, 5".parse::<Instr>().is_err(), "no immediate multiply");
    }

    #[test]
    fn rejects_garbage() {
        assert!("frobnicate r1".parse::<Instr>().is_err());
        assert!("add r1, r2".parse::<Instr>().is_err());
        assert!("lw r1, r2".parse::<Instr>().is_err());
        assert!("add r99, r1, r2".parse::<Instr>().is_err());
        assert!("csrr r1, nonsense".parse::<Instr>().is_err());
        assert!("amoswap r1, r2, 4(r3)".parse::<Instr>().is_err());
    }

    #[test]
    fn reg_and_csr_from_str() {
        assert_eq!("r31".parse::<Reg>().unwrap(), Reg::R31);
        assert!("r32".parse::<Reg>().is_err());
        assert!("x1".parse::<Reg>().is_err());
        assert_eq!("cycles".parse::<Csr>().unwrap(), Csr::Cycles);
    }
}
