//! Multi-line assembly source parsing.
//!
//! Builds an [`Asm`] from `.s`-style text: one instruction or directive
//! per line, `name:` labels, `;`/`#` comments, branch/jump mnemonics may
//! target labels, and a few pseudo-instructions (`li`, `j`, `call`,
//! `ret`, `mv`) expand exactly like the corresponding [`Asm`] methods.
//!
//! ```
//! use sbst_isa::Asm;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let asm = Asm::parse_source(r"
//!     li   r1, 5          ; counter
//! spin:
//!     subi r1, r1, 1
//!     bne  r1, r0, spin
//!     halt
//! ")?;
//! let program = asm.assemble(0x400)?;
//! assert_eq!(program.words().len(), 4);
//! # Ok(())
//! # }
//! ```

use crate::{Asm, Cond, Instr, ParseInstrError, Reg};

/// Error from [`Asm::parse_source`]: the line number (1-based) and the
/// underlying instruction-parse failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseSourceError {
    /// 1-based line number in the source text.
    pub line: usize,
    /// The failure on that line.
    pub error: ParseInstrError,
}

impl std::fmt::Display for ParseSourceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.error)
    }
}

impl std::error::Error for ParseSourceError {}

fn perr(line: usize, text: &str, reason: &'static str) -> ParseSourceError {
    ParseSourceError {
        line,
        error: ParseInstrError { text: text.to_string(), reason },
    }
}

impl Asm {
    /// Parses multi-line assembly source into an assembler.
    ///
    /// Supports everything the instruction parser accepts, plus labels
    /// (`name:`), label targets for `b<cond>`/`jal`/`j`/`call`, the
    /// pseudo-instructions `li rd, imm32`, `mv rd, rs`, `j label`,
    /// `call label`, `ret`, `nop`-padding via `.align n`, and `.word v`
    /// data directives. Comments start with `;` or `#`.
    ///
    /// # Errors
    ///
    /// Returns the first offending line.
    pub fn parse_source(source: &str) -> Result<Asm, ParseSourceError> {
        let mut asm = Asm::new();
        for (idx, raw) in source.lines().enumerate() {
            let lineno = idx + 1;
            // Strip comments.
            let code = raw.split([';', '#']).next().unwrap_or("").trim();
            if code.is_empty() {
                continue;
            }
            // Labels (possibly followed by an instruction on the same line).
            let mut rest = code;
            while let Some(colon) = rest.find(':') {
                let (label, after) = rest.split_at(colon);
                let label = label.trim();
                if label.is_empty() || label.contains(char::is_whitespace) {
                    break; // not a label — let the instruction parser complain
                }
                asm.label(label);
                rest = after[1..].trim();
                if rest.is_empty() {
                    break;
                }
            }
            if rest.is_empty() {
                continue;
            }
            let (mnemonic, operands) = match rest.split_once(char::is_whitespace) {
                Some((m, o)) => (m, o.trim()),
                None => (rest, ""),
            };
            let ops: Vec<&str> = if operands.is_empty() {
                Vec::new()
            } else {
                operands.split(',').map(str::trim).collect()
            };
            match mnemonic {
                ".align" => {
                    let n = parse_u32(operands)
                        .ok_or_else(|| perr(lineno, rest, "bad alignment"))?;
                    if !n.is_power_of_two() || n < 4 {
                        return Err(perr(lineno, rest, "alignment must be a power of two >= 4"));
                    }
                    asm.align(n);
                }
                ".word" => {
                    let v = parse_u32(operands)
                        .ok_or_else(|| perr(lineno, rest, "bad data word"))?;
                    asm.word(v);
                }
                "li" => {
                    if ops.len() != 2 {
                        return Err(perr(lineno, rest, "li takes `rd, imm32`"));
                    }
                    let rd: Reg = ops[0]
                        .parse()
                        .map_err(|error| ParseSourceError { line: lineno, error })?;
                    let v = parse_u32(ops[1])
                        .ok_or_else(|| perr(lineno, rest, "bad li constant"))?;
                    asm.li(rd, v);
                }
                "mv" => {
                    if ops.len() != 2 {
                        return Err(perr(lineno, rest, "mv takes `rd, rs`"));
                    }
                    let rd: Reg = ops[0]
                        .parse()
                        .map_err(|error| ParseSourceError { line: lineno, error })?;
                    let rs: Reg = ops[1]
                        .parse()
                        .map_err(|error| ParseSourceError { line: lineno, error })?;
                    asm.mv(rd, rs);
                }
                "j" => {
                    if ops.len() != 1 {
                        return Err(perr(lineno, rest, "j takes a label"));
                    }
                    asm.j(ops[0]);
                }
                "call" => {
                    if ops.len() != 1 {
                        return Err(perr(lineno, rest, "call takes a label"));
                    }
                    asm.call(ops[0]);
                }
                "ret" => asm.ret(),
                _ => {
                    // Branch-to-label / jal-to-label forms first.
                    let branch_cond = Cond::ALL
                        .iter()
                        .copied()
                        .find(|c| mnemonic == format!("b{}", c.mnemonic()));
                    if let Some(cond) = branch_cond {
                        if ops.len() == 3 && parse_u32(ops[2]).is_none() {
                            let rs1: Reg = ops[0]
                                .parse()
                                .map_err(|error| ParseSourceError { line: lineno, error })?;
                            let rs2: Reg = ops[1]
                                .parse()
                                .map_err(|error| ParseSourceError { line: lineno, error })?;
                            asm.branch(cond, rs1, rs2, ops[2]);
                            continue;
                        }
                    }
                    if mnemonic == "jal" && ops.len() == 2 && parse_u32(ops[1]).is_none() {
                        let rd: Reg = ops[0]
                            .parse()
                            .map_err(|error| ParseSourceError { line: lineno, error })?;
                        asm.jal(rd, ops[1]);
                        continue;
                    }
                    // Fall back to the single-instruction parser.
                    let instr: Instr = rest
                        .parse()
                        .map_err(|error| ParseSourceError { line: lineno, error })?;
                    asm.emit(instr);
                }
            }
        }
        Ok(asm)
    }
}

/// Unsigned 32-bit constant in decimal, hex, or negative-decimal
/// (two's complement) notation.
fn parse_u32(s: &str) -> Option<u32> {
    let s = s.trim();
    if let Some(hex) = s.strip_prefix("0x") {
        return u32::from_str_radix(hex, 16).ok();
    }
    if let Some(neg) = s.strip_prefix('-') {
        return neg.parse::<u32>().ok().map(u32::wrapping_neg);
    }
    s.parse::<u32>().ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::AsmError;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(512))]

        /// Arbitrary text must never panic the parser (errors are fine).
        #[test]
        fn parser_never_panics(text in "[ -~\n\t]{0,200}") {
            let _ = Asm::parse_source(&text);
        }

        /// Valid-ish token soup: mnemonics with random operands.
        #[test]
        fn mnemonic_soup_never_panics(
            lines in prop::collection::vec(
                (
                    prop::sample::select(vec![
                        "add", "addi", "subi", "lw", "sw", "beq", "jal", "jalr",
                        "csrr", "csrw", "li", "j", "call", ".align", ".word",
                        "amoswap", "lui", "mulv", "add64",
                    ]),
                    prop::collection::vec("[-a-z0-9(){},xr]{0,8}", 0..4),
                ),
                0..20,
            )
        ) {
            let text: String = lines
                .iter()
                .map(|(m, ops)| format!("{m} {}
", ops.join(", ")))
                .collect();
            let _ = Asm::parse_source(&text);
        }
    }

    #[test]
    fn parses_a_program_with_labels_and_pseudos() {
        let asm = Asm::parse_source(
            r"
            ; a counted loop
            li r1, 3
        top:
            addi r2, r2, 10   # body
            subi r1, r1, 1
            bne  r1, r0, top
            call leaf
            halt
        leaf:
            mv r3, r2
            ret
        ",
        )
        .expect("parses");
        let program = asm.assemble(0x100).expect("assembles");
        assert_eq!(program.words().len(), 8);
    }

    #[test]
    fn labels_on_their_own_or_inline() {
        let asm = Asm::parse_source("a: b: nop\nj a\n").expect("parses");
        assert!(asm.assemble(0).is_ok());
    }

    #[test]
    fn reports_line_numbers() {
        let e = Asm::parse_source("nop\nbogus r1\n").unwrap_err();
        assert_eq!(e.line, 2);
        let text = e.to_string();
        assert!(text.contains("line 2"), "{text}");
    }

    #[test]
    fn directives() {
        let asm = Asm::parse_source(".align 8\n.word 0xdeadbeef\nhalt\n").expect("parses");
        let p = asm.assemble(0x104).expect("assembles");
        assert_eq!(p.words()[0], sbst_isa_nop_word());
        assert_eq!(p.words()[1], 0xdead_beef);
    }

    fn sbst_isa_nop_word() -> u32 {
        Instr::Nop.encode()
    }

    #[test]
    fn duplicate_label_surfaces_at_assemble_time() {
        let asm = Asm::parse_source("x: nop\nx: nop\n").expect("parse is lenient");
        assert_eq!(asm.assemble(0), Err(AsmError::DuplicateLabel("x".into())));
    }

    #[test]
    fn negative_and_hex_constants() {
        let asm = Asm::parse_source("li r1, -1\nli r2, 0xffff0000\nhalt\n").expect("parses");
        let p = asm.assemble(0).expect("assembles");
        // li -1 fits addi; li 0xffff0000 is lui+ori.
        assert_eq!(p.words().len(), 4);
    }
}
