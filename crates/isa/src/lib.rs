#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! # sbst-isa — the instruction set of the simulated automotive SoC
//!
//! This crate defines the 32-bit, dual-issue RISC instruction set used by
//! every other crate of the `det-sbst` workspace: register and CSR names,
//! the [`Instr`] enum with binary [`encode`](Instr::encode) /
//! [`decode`](Instr::decode), a label-resolving [`Asm`] assembler and the
//! [`Program`] container that the SoC loads into Flash.
//!
//! The ISA is intentionally close to the industrial cores evaluated in the
//! DATE 2020 paper this workspace reproduces:
//!
//! * 32 general-purpose 32-bit registers, `r0` hardwired to zero;
//! * dual-issue friendly fixed 32-bit encoding, packets aligned on 8 bytes;
//! * `*v` arithmetic ops (`addv`, `mulv`) that raise **synchronous
//!   imprecise** exceptions recognised by the Interrupt Control Unit;
//! * 64-bit register-pair ALU ops (`add64`, …) implemented only by core C;
//! * cache-management (`icinv`, `dcinv`) and CSR instructions used by the
//!   self-test wrappers;
//! * `amoswap` for the decentralized multi-core test scheduler.
//!
//! ## Example
//!
//! ```
//! use sbst_isa::{Asm, Reg};
//!
//! # fn main() -> Result<(), sbst_isa::AsmError> {
//! let mut a = Asm::new();
//! let (r1, r2, r3) = (Reg::R1, Reg::R2, Reg::R3);
//! a.li(r1, 40);
//! a.li(r2, 2);
//! a.label("again");
//! a.add(r3, r1, r2);
//! a.bne(r3, r1, "done");
//! a.j("again");
//! a.label("done");
//! a.halt();
//! let program = a.assemble(0x0000_0100)?;
//! assert_eq!(program.base(), 0x100);
//! # Ok(())
//! # }
//! ```

mod asm;
mod csr;
mod instr;
mod parse;
mod program;
mod reg;
mod source;

pub use asm::{Asm, AsmError};
pub use parse::ParseInstrError;
pub use source::ParseSourceError;
pub use csr::Csr;
pub use instr::{AluOp, CacheOp, Cond, DecodeError, Instr};
pub use program::Program;
pub use reg::Reg;

/// Exception causes raised by instructions.
///
/// All of these are *synchronous imprecise* in the modeled cores: they are
/// latched by the Interrupt Control Unit when the offending instruction
/// executes and are only recognised a variable number of instructions
/// later (see `sbst-cpu`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Cause {
    /// Signed overflow in `addv`.
    Overflow,
    /// Signed overflow in `mulv` (product does not fit in 32 bits).
    MulOverflow,
    /// Misaligned data access by `lw`/`sw`/`amoswap`.
    Unaligned,
    /// Instruction not implemented by this core (e.g. `add64` on core A/B).
    Illegal,
}

impl Cause {
    /// All causes, in priority order (index 0 = highest priority).
    pub const ALL: [Cause; 4] = [
        Cause::Overflow,
        Cause::MulOverflow,
        Cause::Unaligned,
        Cause::Illegal,
    ];

    /// Stable index of this cause (0..4), used by the ICU cause encoder.
    pub fn index(self) -> usize {
        match self {
            Cause::Overflow => 0,
            Cause::MulOverflow => 1,
            Cause::Unaligned => 2,
            Cause::Illegal => 3,
        }
    }
}

impl std::fmt::Display for Cause {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            Cause::Overflow => "overflow",
            Cause::MulOverflow => "mul-overflow",
            Cause::Unaligned => "unaligned",
            Cause::Illegal => "illegal",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cause_indices_are_stable_and_distinct() {
        let mut seen = [false; 4];
        for c in Cause::ALL {
            assert!(!seen[c.index()], "duplicate index for {c}");
            seen[c.index()] = true;
        }
        assert!(seen.iter().all(|&b| b));
    }

    #[test]
    fn cause_display_is_lowercase() {
        for c in Cause::ALL {
            let s = c.to_string();
            assert_eq!(s, s.to_lowercase());
        }
    }
}
