//! General-purpose register names.

/// One of the 32 general-purpose registers.
///
/// `R0` is hardwired to zero: writes to it are discarded by the core.
/// 64-bit operations (core C) use *even/odd pairs*: `add64 r4, r2, r6`
/// reads `(r2, r3)` and `(r6, r7)` as little-endian 64-bit values and
/// writes `(r4, r5)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[repr(u8)]
#[allow(missing_docs)] // r0..r31 are self-describing
pub enum Reg {
    R0 = 0,
    R1,
    R2,
    R3,
    R4,
    R5,
    R6,
    R7,
    R8,
    R9,
    R10,
    R11,
    R12,
    R13,
    R14,
    R15,
    R16,
    R17,
    R18,
    R19,
    R20,
    R21,
    R22,
    R23,
    R24,
    R25,
    R26,
    R27,
    R28,
    R29,
    R30,
    R31,
}

impl Reg {
    /// All registers in index order.
    pub const ALL: [Reg; 32] = [
        Reg::R0,
        Reg::R1,
        Reg::R2,
        Reg::R3,
        Reg::R4,
        Reg::R5,
        Reg::R6,
        Reg::R7,
        Reg::R8,
        Reg::R9,
        Reg::R10,
        Reg::R11,
        Reg::R12,
        Reg::R13,
        Reg::R14,
        Reg::R15,
        Reg::R16,
        Reg::R17,
        Reg::R18,
        Reg::R19,
        Reg::R20,
        Reg::R21,
        Reg::R22,
        Reg::R23,
        Reg::R24,
        Reg::R25,
        Reg::R26,
        Reg::R27,
        Reg::R28,
        Reg::R29,
        Reg::R30,
        Reg::R31,
    ];

    /// Register for index `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= 32`.
    pub fn from_index(i: usize) -> Reg {
        Reg::ALL[i]
    }

    /// Index of this register (0..32).
    pub fn index(self) -> usize {
        self as usize
    }

    /// Whether this register can serve as the low half of a 64-bit pair.
    pub fn is_even(self) -> bool {
        self.index().is_multiple_of(2)
    }

    /// The odd partner of an even register (high half of a 64-bit pair).
    ///
    /// # Panics
    ///
    /// Panics if `self` is odd or `R31`-adjacent overflow would occur.
    pub fn pair_high(self) -> Reg {
        assert!(self.is_even(), "64-bit pair base must be even: {self}");
        Reg::from_index(self.index() + 1)
    }

    /// Whether this is the hardwired-zero register.
    pub fn is_zero(self) -> bool {
        self == Reg::R0
    }
}

impl std::fmt::Display for Reg {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "r{}", self.index())
    }
}

impl From<Reg> for u8 {
    fn from(r: Reg) -> u8 {
        r as u8
    }
}

impl TryFrom<u8> for Reg {
    type Error = ();

    fn try_from(v: u8) -> Result<Reg, ()> {
        if v < 32 {
            Ok(Reg::ALL[v as usize])
        } else {
            Err(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_roundtrip() {
        for i in 0..32 {
            assert_eq!(Reg::from_index(i).index(), i);
            assert_eq!(Reg::try_from(i as u8).unwrap().index(), i);
        }
        assert!(Reg::try_from(32u8).is_err());
    }

    #[test]
    fn display() {
        assert_eq!(Reg::R0.to_string(), "r0");
        assert_eq!(Reg::R31.to_string(), "r31");
    }

    #[test]
    fn pairs() {
        assert!(Reg::R4.is_even());
        assert_eq!(Reg::R4.pair_high(), Reg::R5);
        assert!(!Reg::R5.is_even());
    }

    #[test]
    #[should_panic]
    fn pair_high_panics_on_odd() {
        let _ = Reg::R3.pair_high();
    }
}
