//! Criterion bench for Table IV: building + running both wrappers of the
//! imprecise-interrupt routine (the table is printed by the `table4`
//! binary).

use criterion::{criterion_group, criterion_main, Criterion};
use sbst_campaign::tables::table4;

fn bench_table4(c: &mut Criterion) {
    let mut g = c.benchmark_group("table4");
    g.sample_size(10);
    g.bench_function("tcm_vs_cache", |b| {
        b.iter(|| {
            let rows = table4();
            assert_eq!(rows.len(), 2);
            rows
        })
    });
    g.finish();
}

criterion_group!(benches, bench_table4);
criterion_main!(benches);
