//! Micro-benchmarks of the simulation substrate itself: cycle
//! throughput, cache operations, wrapper emission and a single fault
//! run — the quantities that bound every campaign's wall-clock time.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use sbst_cpu::{CoreConfig, CoreKind};
use sbst_fault::{Element, FaultPlane, FaultSite, Polarity, Unit};
use sbst_isa::{Asm, Reg};
use sbst_mem::{Cache, CacheConfig};
use sbst_soc::SocBuilder;
use sbst_stl::routines::{ForwardingTest, IcuTest};
use sbst_stl::{wrap_cached, RoutineEnv, WrapConfig};

fn busy_loop(iters: u32) -> Asm {
    let mut a = Asm::new();
    a.li(Reg::R1, iters);
    a.label("top");
    a.addi(Reg::R2, Reg::R2, 1);
    a.add(Reg::R3, Reg::R2, Reg::R3);
    a.subi(Reg::R1, Reg::R1, 1);
    a.bne(Reg::R1, Reg::R0, "top");
    a.halt();
    a
}

fn bench_soc_throughput(c: &mut Criterion) {
    let mut g = c.benchmark_group("simulator");
    let program = busy_loop(2_000).assemble(0x400).unwrap();
    g.throughput(Throughput::Elements(1));
    g.bench_function("soc_run_cached_loop", |b| {
        b.iter(|| {
            let mut soc = SocBuilder::new()
                .load(&program)
                .core(CoreConfig::cached(CoreKind::A, 0, 0x400), 0)
                .build();
            let outcome = soc.run(1_000_000);
            assert!(outcome.is_clean());
            soc.cycle()
        })
    });
    g.bench_function("triple_core_contended_step", |b| {
        let mk = |i: usize| busy_loop(2_000).assemble(0x400 + 0x10000 * i as u32).unwrap();
        b.iter(|| {
            let mut builder = SocBuilder::new();
            for i in 0..3usize {
                builder = builder
                    .load(&mk(i))
                    .core(CoreConfig::uncached(CoreKind::ALL[i], i, 0x400 + 0x10000 * i as u32), 0);
            }
            let mut soc = builder.build();
            for _ in 0..10_000 {
                soc.step();
            }
            soc.cycle()
        })
    });
    g.finish();
}

fn bench_cache(c: &mut Criterion) {
    let mut g = c.benchmark_group("cache");
    g.bench_function("read_hit", |b| {
        let mut cache = Cache::new(CacheConfig::icache_8k());
        for line in 0..256u32 {
            cache.fill(line * 32, &[line; 8]);
        }
        let mut addr = 0u32;
        b.iter(|| {
            addr = (addr + 4) % 8192;
            cache.read(addr)
        })
    });
    g.bench_function("invalidate_all", |b| {
        let mut cache = Cache::new(CacheConfig::dcache_4k());
        b.iter(|| cache.invalidate_all())
    });
    g.finish();
}

fn bench_wrapper(c: &mut Criterion) {
    let mut g = c.benchmark_group("wrapper");
    g.bench_function("wrap_and_assemble_forwarding", |b| {
        let routine = ForwardingTest::without_pcs(CoreKind::A);
        let env = RoutineEnv::for_core(CoreKind::A);
        let cfg = WrapConfig::default();
        b.iter(|| {
            wrap_cached(&routine, &env, &cfg, "w")
                .expect("wraps")
                .assemble(0x400)
                .expect("assembles")
        })
    });
    g.finish();
}

fn bench_fault_run(c: &mut Criterion) {
    let mut g = c.benchmark_group("fault_run");
    g.sample_size(20);
    let routine = IcuTest::new();
    let env = RoutineEnv::for_core(CoreKind::A);
    let program = wrap_cached(&routine, &env, &WrapConfig::default(), "f")
        .expect("wraps")
        .assemble(0x400)
        .expect("assembles");
    let site = FaultSite {
        unit: Unit::Icu,
        instance: 0,
        element: Element::DepthBit { bit: 1 },
        polarity: Polarity::StuckAt1,
    };
    g.bench_function("single_fault_simulation", |b| {
        b.iter(|| {
            let mut soc = SocBuilder::new()
                .load(&program)
                .core(CoreConfig::cached(CoreKind::A, 0, 0x400), 0)
                .build();
            soc.core_mut(0).set_plane(FaultPlane::armed(site));
            soc.run(10_000_000)
        })
    });
    g.finish();
}

criterion_group!(benches, bench_soc_throughput, bench_cache, bench_wrapper, bench_fault_run);
criterion_main!(benches);
