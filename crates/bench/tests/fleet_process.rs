//! End-to-end integration tests of the `fleet_campaign` service binary:
//! the CI smoke contract (clean termination under forced panics + one
//! hang, zero silent losses, valid JSONL telemetry) and the
//! process-pool hang-kill-steal path across a real process boundary.

use std::path::{Path, PathBuf};
use std::process::Command;

use sbst_obs::{parse_json, Json};

const BIN: &str = env!("CARGO_BIN_EXE_fleet_campaign");

/// Fresh scratch cwd so artifact files never collide between tests.
fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("sbst-fleet-it-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create scratch cwd");
    dir
}

fn run(mode: &str, cwd: &Path) -> String {
    let out = Command::new(BIN).arg(mode).current_dir(cwd).output().expect("spawn binary");
    let stdout = String::from_utf8_lossy(&out.stdout).into_owned();
    assert!(
        out.status.success(),
        "fleet_campaign {mode} failed ({:?}):\n{stdout}\n{}",
        out.status,
        String::from_utf8_lossy(&out.stderr)
    );
    stdout
}

#[test]
fn smoke_mode_terminates_cleanly_with_valid_artifacts() {
    let dir = scratch("smoke");
    let stdout = run("smoke", &dir);
    assert!(stdout.contains("fleet_campaign [smoke]: OK"), "missing OK marker:\n{stdout}");

    // Every dashboard line is a standalone JSON object (JSONL), and the
    // last line is the telemetry summary with the recovery counters.
    let dashboard =
        std::fs::read_to_string(dir.join("out/fleet_dashboard.jsonl")).expect("dashboard written");
    let lines: Vec<&str> = dashboard.lines().collect();
    assert!(lines.len() > 5, "dashboard suspiciously short: {} lines", lines.len());
    for (i, line) in lines.iter().enumerate() {
        parse_json(line).unwrap_or_else(|e| panic!("dashboard line {i} invalid ({e:?}): {line}"));
    }
    let telemetry = parse_json(lines[lines.len() - 1]).expect("telemetry line");
    let shards = telemetry.get("shards").and_then(Json::as_f64).expect("shards field");
    let completed = telemetry.get("completed").and_then(Json::as_f64).expect("completed");
    let quarantined = telemetry.get("quarantined").and_then(Json::as_f64).expect("quarantined");
    assert!(shards > 0.0);
    // Zero silent losses: every shard is accounted completed or
    // quarantined-with-cause.
    assert_eq!(completed + quarantined, shards, "unaccounted shards in telemetry");
    assert!(
        telemetry.get("injected_panics").and_then(Json::as_f64).expect("panics") >= 2.0,
        "forced panics missing from telemetry"
    );
    assert!(
        telemetry.get("injected_hangs").and_then(Json::as_f64).expect("hangs") >= 1.0,
        "forced hang missing from telemetry"
    );

    // The bench record carries the fleet throughput + recovery stats.
    let bench =
        std::fs::read_to_string(dir.join("BENCH_campaign.json")).expect("bench json written");
    let doc = parse_json(&bench).expect("bench json parses");
    let fleet = doc.get("fleet").expect("fleet key");
    for key in ["speedup", "faults_per_sec", "chaos", "process_pool"] {
        assert!(fleet.get(key).is_some(), "fleet record missing {key:?}");
    }
    let chaos = fleet.get("chaos").expect("chaos record");
    for key in ["retries", "steals", "quarantined", "resumes"] {
        assert!(chaos.get(key).is_some(), "recovery stat {key:?} missing");
    }
}

#[test]
fn process_pool_kills_and_steals_a_hung_child() {
    let dir = scratch("proc-hang");
    let stdout = run("proc-hang", &dir);
    assert!(stdout.contains("fleet_campaign [proc-hang]: OK"), "missing OK marker:\n{stdout}");
    // The binary itself asserts steals >= 1 and bit-identity to the
    // serial baseline; reaching OK means the hung child was killed at
    // lease expiry and its shard re-graded elsewhere.
}
