//! Diagnostic: where are a routine's coverage holes? Buckets the graded
//! faults by gate category for each unit under the cache-based wrapper.
//!
//! Usage: `coverage_holes [quick|standard]`

use sbst_campaign::tables::Effort;
use sbst_campaign::{routines_for, run_campaign_detailed, ExecStyle, Experiment,
                    summarize_by_category};
use sbst_cpu::{unit_fault_list, CoreKind};
use sbst_fault::Unit;
use sbst_soc::Scenario;

fn main() {
    let effort = match std::env::args().nth(1).as_deref() {
        Some("standard") => Effort::standard(),
        _ => Effort::quick(),
    };
    for unit in [Unit::Forwarding, Unit::Hdcu, Unit::Icu] {
        let kind = CoreKind::A;
        let factory = routines_for(unit);
        let exp = Experiment::assemble(
            &*factory,
            kind,
            ExecStyle::CacheWrapped,
            &Scenario { active_cores: 3, ..Scenario::single_core() },
        )
        .expect("experiment");
        let golden = exp.golden();
        let faults = effort.sample(&unit_fault_list(kind, unit));
        let (agg, records) = run_campaign_detailed(&exp, &golden, &faults, effort.threads);
        println!("== {unit} (core {kind}, cache-wrapped): {agg}");
        for (category, detected, total) in summarize_by_category(&records) {
            println!(
                "   {category:<22} {detected:>4}/{total:<4} ({:>5.1}%)",
                100.0 * detected as f64 / total.max(1) as f64
            );
        }
        println!();
    }
}
