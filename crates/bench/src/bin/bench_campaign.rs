//! Campaign-throughput benchmark: cold-start grading (every fault
//! re-simulates the SoC from reset) versus the warm-start fast path
//! (clone the golden-prefix snapshot, simulate only the tail, exit at
//! the first decided verdict). Emits machine-readable
//! `BENCH_campaign.json` so the repo carries a perf trajectory.
//!
//! Modes (first CLI argument):
//!
//! * `standard` (default) — the standard effort tier; asserts the
//!   fast path's ≥ 1.5× throughput and verdict equivalence.
//! * `quick` — a smaller timed run for local iteration (equivalence
//!   asserted, no throughput floor).
//! * `smoke` — CI mode: a tiny fault list, asserts warm/cold verdict
//!   equivalence only (no timing assertions — CI machines are noisy).

use std::time::Instant;

use sbst_campaign::tables::Effort;
use sbst_campaign::{
    routines_for, run_campaign_detailed, run_campaign_warm_detailed,
    run_campaign_warm_telemetry, ExecStyle, Experiment,
};
use sbst_cpu::{unit_fault_list, CoreKind};
use sbst_fault::{collapse, Unit};
use sbst_obs::Json;
use sbst_soc::Scenario;

struct Timed {
    seconds: f64,
    faults_per_sec: f64,
}

fn main() {
    let mode = std::env::args().nth(1).unwrap_or_else(|| "standard".into());
    let effort = match mode.as_str() {
        "smoke" => Effort { max_faults: 40, ..Effort::quick() },
        "quick" => Effort::quick(),
        "standard" => Effort::standard(),
        "full" => Effort::full(),
        other => panic!("unknown mode {other:?} (smoke|quick|standard|full)"),
    };

    let unit = Unit::Forwarding; // the largest fault population
    let factory = routines_for(unit);
    let exp = Experiment::assemble(
        &*factory,
        CoreKind::A,
        ExecStyle::CacheWrapped,
        &Scenario { active_cores: 3, ..Scenario::single_core() },
    )
    .expect("experiment assembles");
    let golden = exp.golden();
    let collapsed = collapse(&unit_fault_list(CoreKind::A, unit));
    let faults = effort.sample(collapsed.representatives());
    let snapshot = exp.snapshot(&golden);
    println!(
        "bench_campaign [{mode}]: {} collapsed forwarding faults, golden {} cycles, \
         snapshot at cycle {}",
        faults.len(),
        golden.cycles,
        snapshot.cycle()
    );

    // Alternate cold/warm passes and keep each engine's best time:
    // background load only ever inflates a wall-clock measurement, so
    // the minimum is the cleanest estimate of the engine's real cost
    // (one pass in the untimed smoke/quick modes).
    let passes = if mode == "standard" || mode == "full" { 3 } else { 1 };
    let mut cold_t = Timed { seconds: f64::INFINITY, faults_per_sec: 0.0 };
    let mut warm_t = Timed { seconds: f64::INFINITY, faults_per_sec: 0.0 };
    let mut cold_result = Default::default();
    let mut cold = Vec::new();
    let mut warm = Vec::new();
    for _ in 0..passes {
        let t = Instant::now();
        (cold_result, cold) = run_campaign_detailed(&exp, &golden, &faults, effort.threads);
        cold_t = best(cold_t, timed(t, faults.len()));
        let t = Instant::now();
        (_, warm) = run_campaign_warm_detailed(&exp, &golden, &faults, effort.threads);
        warm_t = best(warm_t, timed(t, faults.len()));
    }

    // Equivalence is part of the benchmark's contract in every mode: a
    // fast path that changes verdicts measures nothing.
    assert_eq!(cold, warm, "warm-start verdicts diverged from cold-start");
    println!("verdicts equivalent over {} faults: {cold_result}", faults.len());

    let speedup = warm_t.faults_per_sec / cold_t.faults_per_sec;
    println!(
        "cold: {:.2}s ({:.1} faults/sec) | warm: {:.2}s ({:.1} faults/sec) | speedup {speedup:.2}x",
        cold_t.seconds, cold_t.faults_per_sec, warm_t.seconds, warm_t.faults_per_sec
    );

    // One untimed telemetry pass for the observability fields: verdict
    // mix, warm-start hit rate, and periodic progress snapshots.
    let (telemetry_result, _, telemetry) =
        run_campaign_warm_telemetry(&exp, &golden, &faults, effort.threads);
    assert_eq!(telemetry_result, cold_result, "telemetry pass changed verdicts");
    println!("telemetry: {telemetry}");

    let pass = |t: &Timed| {
        Json::Obj(vec![
            ("seconds".into(), Json::Num(round3(t.seconds))),
            ("faults_per_sec".into(), Json::Num(round2(t.faults_per_sec))),
        ])
    };
    let doc = Json::Obj(vec![
        ("bench".into(), Json::Str("campaign_throughput".into())),
        ("mode".into(), Json::Str(mode.clone())),
        ("unit".into(), Json::Str("forwarding".into())),
        ("faults".into(), Json::int(faults.len() as u64)),
        ("golden_cycles".into(), Json::int(golden.cycles)),
        ("snapshot_cycle".into(), Json::int(snapshot.cycle())),
        ("coverage_percent".into(), Json::Num(round2(cold_result.coverage()))),
        ("cold".into(), pass(&cold_t)),
        ("warm".into(), pass(&warm_t)),
        ("speedup".into(), Json::Num(round3(speedup))),
        ("verdicts_equivalent".into(), Json::Bool(true)),
        ("verdicts".into(), cold_result.mix().to_json()),
        (
            "warm_hit_rate".into(),
            telemetry.warm_hit_rate.map_or(Json::Null, |r| Json::Num(round3(r))),
        ),
        (
            "progress".into(),
            Json::Arr(telemetry.progress.iter().map(|s| s.to_json()).collect()),
        ),
    ]);
    std::fs::write("BENCH_campaign.json", doc.render_pretty(2))
        .expect("write BENCH_campaign.json");
    println!("wrote BENCH_campaign.json");

    if mode == "standard" || mode == "full" {
        assert!(
            speedup >= 1.5,
            "warm-start fast path must deliver >= 1.5x campaign throughput, got {speedup:.2}x"
        );
    }
}

fn timed(since: Instant, faults: usize) -> Timed {
    let seconds = since.elapsed().as_secs_f64().max(1e-9);
    Timed { seconds, faults_per_sec: faults as f64 / seconds }
}

fn best(a: Timed, b: Timed) -> Timed {
    if b.seconds < a.seconds {
        b
    } else {
        a
    }
}

fn round2(v: f64) -> f64 {
    (v * 100.0).round() / 100.0
}

fn round3(v: f64) -> f64 {
    (v * 1000.0).round() / 1000.0
}
