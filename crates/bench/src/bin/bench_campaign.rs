//! Campaign-throughput benchmark: cold-start grading (every fault
//! re-simulates the SoC from reset) versus the warm-start fast path
//! (clone the golden-prefix snapshot, simulate only the tail, exit at
//! the first decided verdict) versus the bit-parallel PPSFP tier (one
//! tapped golden tail grades a whole word of packed faults). Emits
//! machine-readable `BENCH_campaign.json` so the repo carries a perf
//! trajectory.
//!
//! Modes (first CLI argument):
//!
//! * `standard` (default) — the standard effort tier; asserts the warm
//!   path's ≥ 1.5× throughput over cold, PPSFP's ≥ 5× throughput over
//!   the recorded warm baseline (on machines with ≥ [`MIN_CORES`]
//!   cores), and three-way verdict equivalence.
//! * `quick` — a smaller timed run for local iteration (equivalence
//!   asserted, no throughput floors).
//! * `smoke` — CI mode: a tiny fault list, asserts verdict equivalence
//!   only (no timing assertions — CI machines are noisy).
//! * `ppsfp [--smoke|--quick|--standard]` — PPSFP-focused CI step: warm
//!   vs PPSFP only, asserting verdict parity always and a PPSFP-beats-
//!   warm speedup when the machine has ≥ [`MIN_CORES`] cores.

use std::time::Instant;

use sbst_campaign::tables::Effort;
use sbst_campaign::{
    routines_for, run_campaign_detailed, run_campaign_ppsfp_telemetry,
    run_campaign_warm_detailed, run_campaign_warm_telemetry, ExecStyle, Experiment,
};
use sbst_cpu::{unit_fault_list, CoreKind};
use sbst_fault::{collapse, Unit};
use sbst_obs::{parse_json, Json};
use sbst_soc::Scenario;

/// The warm-path standard-tier throughput recorded in
/// BENCH_campaign.json before the PPSFP tier landed — the fixed
/// baseline the ≥ 5× acceptance floor is asserted against.
const WARM_BASELINE_FPS: f64 = 192.84;

/// Speedup assertions only fire on machines with at least this many
/// cores: PPSFP grades words concurrently, and a starved runner would
/// turn a perf floor into flakiness.
const MIN_CORES: usize = 4;

struct Timed {
    seconds: f64,
    faults_per_sec: f64,
}

fn cores() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

fn main() {
    let mode = std::env::args().nth(1).unwrap_or_else(|| "standard".into());
    if mode == "ppsfp" {
        let tier = std::env::args().nth(2).unwrap_or_else(|| "--smoke".into());
        return ppsfp_mode(&tier);
    }
    let effort = match mode.as_str() {
        "smoke" => Effort { max_faults: 40, ..Effort::quick() },
        "quick" => Effort::quick(),
        "standard" => Effort::standard(),
        "full" => Effort::full(),
        other => panic!("unknown mode {other:?} (smoke|quick|standard|full|ppsfp)"),
    };

    let unit = Unit::Forwarding; // the largest fault population
    let factory = routines_for(unit);
    let exp = Experiment::assemble(
        &*factory,
        CoreKind::A,
        ExecStyle::CacheWrapped,
        &Scenario { active_cores: 3, ..Scenario::single_core() },
    )
    .expect("experiment assembles");
    let golden = exp.golden();
    let collapsed = collapse(&unit_fault_list(CoreKind::A, unit));
    let faults = effort.sample(collapsed.representatives());
    let snapshot = exp.snapshot(&golden);
    println!(
        "bench_campaign [{mode}]: {} collapsed forwarding faults, golden {} cycles, \
         snapshot at cycle {}",
        faults.len(),
        golden.cycles,
        snapshot.cycle()
    );

    // Alternate cold/warm passes and keep each engine's best time:
    // background load only ever inflates a wall-clock measurement, so
    // the minimum is the cleanest estimate of the engine's real cost
    // (one pass in the untimed smoke/quick modes).
    let passes = if mode == "standard" || mode == "full" { 3 } else { 1 };
    let mut cold_t = Timed { seconds: f64::INFINITY, faults_per_sec: 0.0 };
    let mut warm_t = Timed { seconds: f64::INFINITY, faults_per_sec: 0.0 };
    let mut cold_result = Default::default();
    let mut cold = Vec::new();
    let mut warm = Vec::new();
    for _ in 0..passes {
        let t = Instant::now();
        (cold_result, cold) = run_campaign_detailed(&exp, &golden, &faults, effort.threads);
        cold_t = best(cold_t, timed(t, faults.len()));
        let t = Instant::now();
        (_, warm) = run_campaign_warm_detailed(&exp, &golden, &faults, effort.threads);
        warm_t = best(warm_t, timed(t, faults.len()));
    }

    // The bit-parallel tier, timed the same way (best of the passes).
    let mut ppsfp_t = Timed { seconds: f64::INFINITY, faults_per_sec: 0.0 };
    let mut ppsfp = Vec::new();
    let mut ppsfp_tel = sbst_obs::PpsfpTelemetry::default();
    for _ in 0..passes {
        let t = Instant::now();
        (_, ppsfp, ppsfp_tel) =
            run_campaign_ppsfp_telemetry(&exp, &golden, &faults, effort.threads);
        ppsfp_t = best(ppsfp_t, timed(t, faults.len()));
    }

    // Equivalence is part of the benchmark's contract in every mode: a
    // fast path that changes verdicts measures nothing.
    assert_eq!(cold, warm, "warm-start verdicts diverged from cold-start");
    assert_eq!(cold, ppsfp, "PPSFP verdicts diverged from cold-start");
    println!("verdicts equivalent over {} faults: {cold_result}", faults.len());

    let speedup = warm_t.faults_per_sec / cold_t.faults_per_sec;
    let ppsfp_speedup = ppsfp_t.faults_per_sec / warm_t.faults_per_sec;
    println!(
        "cold: {:.2}s ({:.1} faults/sec) | warm: {:.2}s ({:.1} faults/sec) | speedup {speedup:.2}x",
        cold_t.seconds, cold_t.faults_per_sec, warm_t.seconds, warm_t.faults_per_sec
    );
    println!(
        "ppsfp: {:.2}s ({:.1} faults/sec) | {:.2}x over warm | {}",
        ppsfp_t.seconds, ppsfp_t.faults_per_sec, ppsfp_speedup, ppsfp_tel
    );

    // One untimed telemetry pass for the observability fields: verdict
    // mix, warm-start hit rate, and periodic progress snapshots.
    let (telemetry_result, _, telemetry) =
        run_campaign_warm_telemetry(&exp, &golden, &faults, effort.threads);
    assert_eq!(telemetry_result, cold_result, "telemetry pass changed verdicts");
    println!("telemetry: {telemetry}");

    let pass = |t: &Timed| {
        Json::Obj(vec![
            ("seconds".into(), Json::Num(round3(t.seconds))),
            ("faults_per_sec".into(), Json::Num(round2(t.faults_per_sec))),
        ])
    };
    let doc = Json::Obj(vec![
        ("bench".into(), Json::Str("campaign_throughput".into())),
        ("mode".into(), Json::Str(mode.clone())),
        ("unit".into(), Json::Str("forwarding".into())),
        ("faults".into(), Json::int(faults.len() as u64)),
        ("golden_cycles".into(), Json::int(golden.cycles)),
        ("snapshot_cycle".into(), Json::int(snapshot.cycle())),
        ("coverage_percent".into(), Json::Num(round2(cold_result.coverage()))),
        ("cold".into(), pass(&cold_t)),
        ("warm".into(), pass(&warm_t)),
        ("speedup".into(), Json::Num(round3(speedup))),
        (
            "ppsfp".into(),
            Json::Obj(vec![
                ("seconds".into(), Json::Num(round3(ppsfp_t.seconds))),
                ("faults_per_sec".into(), Json::Num(round2(ppsfp_t.faults_per_sec))),
                ("speedup_vs_warm".into(), Json::Num(round3(ppsfp_speedup))),
                ("words".into(), Json::int(ppsfp_tel.words)),
                ("ridden_words".into(), Json::int(ppsfp_tel.ridden_words)),
                ("pack_density".into(), Json::Num(round3(ppsfp_tel.pack_density))),
                ("fallback_rate".into(), Json::Num(round3(ppsfp_tel.fallback_rate))),
                (
                    "loop_short_circuits".into(),
                    Json::int(ppsfp_tel.loop_short_circuits),
                ),
            ]),
        ),
        ("verdicts_equivalent".into(), Json::Bool(true)),
        ("verdicts".into(), cold_result.mix().to_json()),
        (
            "warm_hit_rate".into(),
            telemetry.warm_hit_rate.map_or(Json::Null, |r| Json::Num(round3(r))),
        ),
        (
            "progress".into(),
            Json::Arr(telemetry.progress.iter().map(|s| s.to_json()).collect()),
        ),
    ]);
    // This bench owns the top-level campaign fields but other benches
    // (chaos_sweep, fleet_campaign, certify) merge their sections into
    // the same file — carry those over instead of wiping them.
    let mut doc = doc;
    if let Ok(Json::Obj(old)) =
        std::fs::read_to_string("BENCH_campaign.json").map(|t| {
            parse_json(&t).unwrap_or(Json::Obj(Vec::new()))
        })
    {
        if let Json::Obj(fields) = &mut doc {
            for (key, value) in old {
                if !fields.iter().any(|(k, _)| *k == key) {
                    fields.push((key, value));
                }
            }
        }
    }
    std::fs::write("BENCH_campaign.json", doc.render_pretty(2))
        .expect("write BENCH_campaign.json");
    println!("wrote BENCH_campaign.json");

    if mode == "standard" || mode == "full" {
        assert!(
            speedup >= 1.5,
            "warm-start fast path must deliver >= 1.5x campaign throughput, got {speedup:.2}x"
        );
        if cores() >= MIN_CORES {
            let floor = 5.0 * WARM_BASELINE_FPS;
            assert!(
                ppsfp_t.faults_per_sec >= floor,
                "PPSFP must deliver >= 5x the recorded warm baseline \
                 ({WARM_BASELINE_FPS} f/s), got {:.1} f/s",
                ppsfp_t.faults_per_sec
            );
        } else {
            println!("({} cores < {MIN_CORES}: PPSFP speedup floor skipped)", cores());
        }
    }
}

/// The `ppsfp` CLI mode — the CI bench step. Warm vs PPSFP on the
/// chosen tier: verdict parity is asserted unconditionally; the
/// speedup floor only on machines with at least [`MIN_CORES`] cores.
fn ppsfp_mode(tier: &str) {
    let effort = match tier {
        "--smoke" => Effort { max_faults: 120, ..Effort::quick() },
        "--quick" => Effort::quick(),
        "--standard" => Effort::standard(),
        other => panic!("unknown ppsfp tier {other:?} (--smoke|--quick|--standard)"),
    };
    let unit = Unit::Forwarding;
    let factory = routines_for(unit);
    let exp = Experiment::assemble(
        &*factory,
        CoreKind::A,
        ExecStyle::CacheWrapped,
        &Scenario { active_cores: 3, ..Scenario::single_core() },
    )
    .expect("experiment assembles");
    let golden = exp.golden();
    let collapsed = collapse(&unit_fault_list(CoreKind::A, unit));
    let faults = effort.sample(collapsed.representatives());
    println!("bench_campaign [ppsfp {tier}]: {} collapsed forwarding faults", faults.len());

    let t = Instant::now();
    let (_, warm) = run_campaign_warm_detailed(&exp, &golden, &faults, effort.threads);
    let warm_t = timed(t, faults.len());
    let t = Instant::now();
    let (result, ppsfp, telemetry) =
        run_campaign_ppsfp_telemetry(&exp, &golden, &faults, effort.threads);
    let ppsfp_t = timed(t, faults.len());

    assert_eq!(warm, ppsfp, "PPSFP verdicts diverged from the serial warm path");
    assert_eq!(result.sim_errors, 0, "PPSFP graders crashed");
    let speedup = ppsfp_t.faults_per_sec / warm_t.faults_per_sec;
    println!(
        "warm: {:.2}s ({:.1} faults/sec) | ppsfp: {:.2}s ({:.1} faults/sec) | {speedup:.2}x",
        warm_t.seconds, warm_t.faults_per_sec, ppsfp_t.seconds, ppsfp_t.faults_per_sec
    );
    println!("telemetry: {telemetry}");
    if cores() >= MIN_CORES {
        assert!(
            speedup >= 2.0,
            "PPSFP must beat the warm path >= 2x on a {MIN_CORES}+-core machine, \
             got {speedup:.2}x"
        );
    } else {
        println!("({} cores < {MIN_CORES}: speedup assertion skipped)", cores());
    }
    println!("ppsfp verdict parity over {} faults: ok", faults.len());
}

fn timed(since: Instant, faults: usize) -> Timed {
    let seconds = since.elapsed().as_secs_f64().max(1e-9);
    Timed { seconds, faults_per_sec: faults as f64 / seconds }
}

fn best(a: Timed, b: Timed) -> Timed {
    if b.seconds < a.seconds {
        b
    } else {
        a
    }
}

fn round2(v: f64) -> f64 {
    (v * 100.0).round() / 100.0
}

fn round3(v: f64) -> f64 {
    (v * 1000.0).round() / 1000.0
}
