//! Regenerates the paper's Table II (forwarding-logic fault simulation).
//!
//! Usage: `table2 [quick|standard|full]`

use sbst_campaign::tables::{render_table2, table2, Effort};

fn main() {
    let effort = match std::env::args().nth(1).as_deref() {
        Some("full") => Effort::full(),
        Some("standard") => Effort::standard(),
        _ => Effort::quick(),
    };
    let rows = table2(&effort);
    println!("{}", render_table2(&rows));
    println!(
        "(graded {} of {} faults per core; paper: A 53,298 / B 57,506 / C 113,212)",
        rows[0].simulated, rows[0].fault_count
    );
}
