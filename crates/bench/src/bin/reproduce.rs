//! One-shot reproduction driver: regenerates every table, figure and
//! extension experiment of the paper at the chosen effort and prints a
//! consolidated report.
//!
//! Usage: `reproduce [quick|standard|full]`

use sbst_campaign::ablation::{ablate, render_ablation};
use sbst_campaign::tables::{
    render_table1, render_table2, render_table3, render_table4, table1, table2, table3, table4,
    Effort,
};
use sbst_cpu::CoreKind;

fn main() {
    let effort = match std::env::args().nth(1).as_deref() {
        Some("full") => Effort::full(),
        Some("standard") => Effort::standard(),
        _ => Effort::quick(),
    };
    println!("det-sbst reproduction run (faults/list budget: {})\n", effort.max_faults);

    println!("{}", render_table1(&table1(&effort)));
    println!("{}", render_table2(&table2(&effort)));
    println!("{}", render_table3(&table3(&effort)));
    println!("{}", render_table4(&table4()));
    println!("{}", render_ablation(&ablate(CoreKind::A, &effort)));
    println!("For Figures 1 and 2 run the `fig1` / `fig2` binaries; for the");
    println!("delay-fault and cache-capacity extensions run `delay_faults` /");
    println!("`cache_sweep`; paper-vs-measured analysis lives in EXPERIMENTS.md.");
}
