//! Chaos campaign (beyond the paper): sweeps adversarial bus-injector
//! intensity × transient-upset (SEU) rate against the self-healing
//! cache-wrapped runtime and reports detection / recovery /
//! false-quarantine statistics per cell.
//!
//! Usage: `chaos_sweep [smoke|standard] [seed]`

use sbst_campaign::{run_chaos_campaign, ChaosSweepConfig};

fn main() {
    let mode = std::env::args().nth(1).unwrap_or_else(|| "standard".into());
    let seed = std::env::args()
        .nth(2)
        .and_then(|s| s.parse::<u64>().ok())
        .unwrap_or(0xc4a0);
    let cfg = match mode.as_str() {
        "smoke" => ChaosSweepConfig::smoke(seed),
        _ => ChaosSweepConfig::default_sweep(seed),
    };
    println!(
        "CHAOS SWEEP — {} intensities x {} SEU rates, {} trials/cell, seed {seed:#x}\n",
        cfg.intensities.len(),
        cfg.seu_rates.len(),
        cfg.trials
    );
    let report = run_chaos_campaign(&cfg).expect("campaign");
    println!("{report}");
    assert_eq!(report.silent_total(), 0, "silent corruption detected");
    assert_eq!(report.false_quarantines(), 0, "quarantine without transients");
    println!(
        "\nOK: {} recovered, 0 silent corruptions, 0 false quarantines",
        report.recovered_total()
    );
}
