//! Chaos campaign (beyond the paper): sweeps adversarial bus-injector
//! intensity × transient-upset (SEU) rate against the self-healing
//! cache-wrapped runtime and reports detection / recovery /
//! false-quarantine statistics per cell.
//!
//! Usage: `chaos_sweep [smoke|standard] [seed]`
//!
//! Besides the per-cell table on stdout, the sweep's telemetry totals
//! are merged into `BENCH_campaign.json` under the `"chaos"` key (the
//! rest of the file — `bench_campaign`'s output — is preserved).

use sbst_campaign::{run_chaos_campaign, ChaosSweepConfig};
use sbst_obs::{parse_json, Json};

fn main() {
    let mode = std::env::args().nth(1).unwrap_or_else(|| "standard".into());
    let seed = std::env::args()
        .nth(2)
        .and_then(|s| s.parse::<u64>().ok())
        .unwrap_or(0xc4a0);
    let cfg = match mode.as_str() {
        "smoke" => ChaosSweepConfig::smoke(seed),
        _ => ChaosSweepConfig::default_sweep(seed),
    };
    println!(
        "CHAOS SWEEP — {} intensities x {} SEU rates, {} trials/cell, seed {seed:#x}\n",
        cfg.intensities.len(),
        cfg.seu_rates.len(),
        cfg.trials
    );
    let report = run_chaos_campaign(&cfg).expect("campaign");
    println!("{report}");
    assert_eq!(report.silent_total(), 0, "silent corruption detected");
    assert_eq!(report.false_quarantines(), 0, "quarantine without transients");
    println!(
        "\nOK: {} recovered, 0 silent corruptions, 0 false quarantines",
        report.recovered_total()
    );

    // Merge the sweep totals into BENCH_campaign.json without
    // disturbing bench_campaign's fields; start a fresh object when the
    // file is absent or unparsable.
    let mut doc = std::fs::read_to_string("BENCH_campaign.json")
        .ok()
        .and_then(|text| parse_json(&text).ok())
        .filter(|d| matches!(d, Json::Obj(_)))
        .unwrap_or(Json::Obj(Vec::new()));
    let mut chaos = report.telemetry().to_json();
    chaos.set("mode", Json::Str(mode.clone()));
    chaos.set("seed", Json::int(seed));
    doc.set("chaos", chaos);
    std::fs::write("BENCH_campaign.json", doc.render_pretty(2))
        .expect("write BENCH_campaign.json");
    println!("merged chaos telemetry into BENCH_campaign.json");
}
