//! Extension experiment (paper §V): transition/small-delay defects on
//! the forwarding datapath "require test patterns applied in a timed
//! sequence" — so their coverage separates the cache-based execution
//! (back-to-back, timed) from the legacy uncached execution even more
//! sharply than stuck-at faults do.
//!
//! Usage: `delay_faults [quick|standard]`

use sbst_campaign::tables::Effort;
use sbst_campaign::{routines_for, run_campaign, ExecStyle, Experiment};
use sbst_cpu::{delay_fault_list, CoreKind};
use sbst_fault::Unit;
use sbst_soc::Scenario;

fn main() {
    let effort = match std::env::args().nth(1).as_deref() {
        Some("standard") => Effort::standard(),
        _ => Effort::quick(),
    };
    println!("DELAY-FAULT EXTENSION — FORWARDING DATAPATH (paper §V outlook)");
    println!("Core | Delay faults | FC legacy uncached [%] | FC cache-wrapped [%]");
    let factory = routines_for(Unit::Forwarding);
    for kind in CoreKind::ALL {
        let list = delay_fault_list(kind);
        let sample = effort.sample(&list);
        let scenario = Scenario { active_cores: 3, ..Scenario::single_core() };
        let uncached =
            Experiment::assemble(&*factory, kind, ExecStyle::LegacyUncached, &scenario)
                .expect("uncached experiment");
        let golden = uncached.golden();
        let fc_uncached = run_campaign(&uncached, &golden, &sample, effort.threads).coverage();
        let cached = Experiment::assemble(&*factory, kind, ExecStyle::CacheWrapped, &scenario)
            .expect("cached experiment");
        let golden = cached.golden();
        let fc_cached = run_campaign(&cached, &golden, &sample, effort.threads).coverage();
        println!(
            "{:>4} | {:>12} | {:>22.2} | {:>20.2}",
            kind,
            list.len(),
            fc_uncached,
            fc_cached
        );
    }
    println!("\n(stuck-at grading of the same unit: see `table2`)");
}
