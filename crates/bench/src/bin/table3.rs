//! Regenerates the paper's Table III (ICU and HDCU fault simulation).
//!
//! Usage: `table3 [quick|standard|full]`

use sbst_campaign::tables::{render_table3, table3, Effort};

fn main() {
    let effort = match std::env::args().nth(1).as_deref() {
        Some("full") => Effort::full(),
        Some("standard") => Effort::standard(),
        _ => Effort::quick(),
    };
    let rows = table3(&effort);
    println!("{}", render_table3(&rows));
    println!(
        "(graded up to {} faults per list; paper FC: ICU 46.57->51.36 (A), \
         54.94->60.91 (C); HDCU 62.53->70.37 (A))",
        effort.max_faults
    );
}
