//! Regenerates the paper's Table I (multi-core STL execution: stalls due
//! to the memory subsystem).
//!
//! Usage: `table1 [quick|standard|full]`

use sbst_campaign::tables::{render_table1, table1, Effort};

fn main() {
    let effort = match std::env::args().nth(1).as_deref() {
        Some("full") => Effort::full(),
        Some("standard") => Effort::standard(),
        _ => Effort::quick(),
    };
    let rows = table1(&effort);
    println!("{}", render_table1(&rows));
    println!("(averaged over {} phase seeds; paper: 200,679/117,965 -> 1,878,336/663,386)", effort.seeds);
}
