//! Ablation study of the cache-based wrapper (DESIGN.md §9): which
//! ingredient of Figure 2b buys determinism, which buys coverage.
//!
//! Usage: `ablations [quick|standard]`

use sbst_campaign::ablation::{ablate, render_ablation};
use sbst_campaign::tables::Effort;
use sbst_cpu::CoreKind;

fn main() {
    let effort = match std::env::args().nth(1).as_deref() {
        Some("standard") => Effort::standard(),
        _ => Effort { seeds: 4, ..Effort::quick() },
    };
    let rows = ablate(CoreKind::A, &effort);
    println!("{}", render_ablation(&rows));
    println!("Reading guide:");
    println!(" - only variants with a loading loop AND caches are deterministic;");
    println!(" - skipping invalidation happens to stay deterministic HERE because a");
    println!("   fresh LRU cache makes it redundant — the paper's step guards against");
    println!("   non-LRU replacement and leftover cache contents (see EXPERIMENTS.md);");
    println!(" - a third iteration adds cycles but neither determinism nor coverage;");
    println!(" - the uncached baseline is both unstable and low-coverage.");
}
