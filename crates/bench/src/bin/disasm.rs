//! Developer tool: print the wrapped program of any built-in routine.
//!
//! Usage: `disasm <routine> [core] [--raw]`
//!   routine: forwarding | hdcu | icu | regfile | branch | lsu | alu
//!   core:    A | B | C (default A)
//!   --raw:   print the unwrapped body instead of the Figure-2b wrapper

use sbst_cpu::CoreKind;
use sbst_isa::Asm;
use sbst_stl::routines::{
    BranchTest, ForwardingTest, GenericAluTest, HdcuTest, IcuTest, LsuTest, RegFileTest,
};
use sbst_stl::{wrap_cached, RoutineEnv, SelfTestRoutine, WrapConfig};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(which) = args.first() else {
        eprintln!("usage: disasm <forwarding|hdcu|icu|regfile|branch|lsu|alu> [A|B|C] [--raw]");
        std::process::exit(2);
    };
    let kind = match args.get(1).map(String::as_str) {
        Some("B") => CoreKind::B,
        Some("C") => CoreKind::C,
        _ => CoreKind::A,
    };
    let raw = args.iter().any(|a| a == "--raw");
    let routine: Box<dyn SelfTestRoutine> = match which.as_str() {
        "forwarding" => Box::new(ForwardingTest::without_pcs(kind)),
        "hdcu" => Box::new(HdcuTest::new(kind)),
        "icu" => Box::new(IcuTest::new()),
        "regfile" => Box::new(RegFileTest::new()),
        "branch" => Box::new(BranchTest::new()),
        "lsu" => Box::new(LsuTest::new()),
        "alu" => Box::new(GenericAluTest::new(2)),
        other => {
            eprintln!("unknown routine `{other}`");
            std::process::exit(2);
        }
    };
    let env = RoutineEnv::for_core(kind);
    let asm = if raw {
        let mut a = Asm::new();
        routine.emit_body(&mut a, &env, "body");
        a
    } else {
        let cfg = WrapConfig { icache_capacity: u32::MAX, ..WrapConfig::default() };
        wrap_cached(routine.as_ref(), &env, &cfg, "w").expect("wraps")
    };
    let program = asm.assemble(0x400).expect("assembles");
    println!(
        "; {} on core {kind} — {} bytes ({} instructions){}",
        routine.name(),
        program.len_bytes(),
        program.words().len(),
        if raw { " [unwrapped body]" } else { "" }
    );
    print!("{}", program.disassemble());
}
