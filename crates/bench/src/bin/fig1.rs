//! Regenerates the paper's Figure 1: the EX-to-EX forwarding path excited
//! by back-to-back dependent adds (a), and the same code with the
//! forwarding broken by multi-core fetch stalls (b).

use sbst_cpu::{CoreConfig, CoreKind};
use sbst_isa::{Asm, Reg};
use sbst_soc::{PipelineTrace, SocBuilder};
use sbst_stl::routines::GenericAluTest;
use sbst_stl::{wrap_cached, RoutineEnv, WrapConfig};

fn snippet() -> Asm {
    let mut a = Asm::new();
    a.li(Reg::R1, 10);
    a.li(Reg::R2, 20);
    a.li(Reg::R3, 1);
    a.li(Reg::R4, 2);
    a.align(16);
    a.label("snippet");
    a.add(Reg::R7, Reg::R1, Reg::R2); // the Figure 1 producer
    a.nop();
    a.add(Reg::R8, Reg::R7, Reg::R3); // consumer: EX->EX path
    a.nop();
    a.add(Reg::R9, Reg::R8, Reg::R4);
    a.nop();
    a.halt();
    a
}

fn main() {
    let base = 0x400;
    let program = snippet().assemble(base).unwrap();
    let window = (base + 0x10, base + 0x40);

    println!("(a) single-core, warm caches: the second add enters the pipeline");
    println!("    one packet behind the first -> EX/MEM forwarding excited\n");
    // Warm the cache by running the snippet after a cached warm-up pass:
    // simplest faithful setup: run uncached single-core with the flash
    // streaming (gap ~3) vs contended.
    let mut soc = SocBuilder::new()
        .load(&program)
        .core(CoreConfig::cached(CoreKind::A, 0, base), 0)
        .build();
    let trace = PipelineTrace::capture(&mut soc, 0, 2_000);
    println!("{}", trace.diagram(window.0, window.1));

    println!("(b) same code, caches off, two other cores hammering the bus:");
    println!("    fetches are delayed and the dependent add arrives too late —");
    println!("    the operand comes from the register file instead\n");
    let traffic_src = {
        let t = GenericAluTest::new(30);
        let env = RoutineEnv {
            result_addr: sbst_mem::SRAM_BASE + 0x800,
            data_base: sbst_mem::SRAM_BASE + 0x1000,
            ..RoutineEnv::for_core(CoreKind::B)
        };
        let cfg = WrapConfig {
            iterations: 1,
            invalidate: false,
            icache_capacity: u32::MAX,
            ..WrapConfig::default()
        };
        wrap_cached(&t, &env, &cfg, "t").unwrap()
    };
    let mut builder = SocBuilder::new()
        .load(&program)
        .core(CoreConfig::uncached(CoreKind::A, 0, base), 0);
    for core in 1..3usize {
        let tbase = 0x20000 * core as u32;
        builder = builder
            .load(&traffic_src.assemble(tbase).unwrap())
            .core(CoreConfig::uncached(CoreKind::ALL[core], core, tbase), core as u32);
    }
    let mut soc = builder.build();
    let trace = PipelineTrace::capture(&mut soc, 0, 200_000);
    println!("{}", trace.diagram(window.0, window.1));
}
