//! certify — the interference-bound certification sweep.
//!
//! Sweeps arbiter × cache configuration × chaos intensity over a set of
//! routine × core scenarios and, per scenario, checks the machine
//! against the analytical certificate:
//!
//! * every bus port's **observed** worst grant wait must respect the
//!   per-access worst-case latency derived by `sbst_mem::BoundParams`
//!   for the scenario's arbiter (round-robin: one full rotation of
//!   worst-case transactions; TDMA: the slot-table distance) — the
//!   saturate adversary is included precisely because it realises the
//!   densest interference round-robin admits;
//! * the wrapped routine's signature must equal its solo golden
//!   (the paper's determinism claim, now judged *under* the certified
//!   bound instead of merely observed);
//! * fixed-priority configurations must be **refused**: their
//!   low-priority ports are starvation-unbounded, so no certificate
//!   exists and running an STL there is rejected up front.
//!
//! Any observed > bound, any signature drift, or any unbounded port
//! that fails to be flagged hard-fails the binary (non-zero exit) — CI
//! runs `certify --smoke`.
//!
//! Output: a per-scenario table on stdout, a `MetricsHub` summary
//! (with the per-port bound column) for the saturated scenarios, a JSON
//! report at `out/certify_report.json`, and telemetry totals merged
//! into `BENCH_campaign.json` under `"certify"`.

use sbst_cpu::{CoreConfig, CoreKind};
use sbst_mem::{ArbiterKind, InjectorProgram};
use sbst_obs::{parse_json, Json, PortBound};
use sbst_soc::{ChaosConfig, ObsConfig, SocBuilder};
use sbst_stl::routines::{ForwardingTest, IcuTest, RegFileTest};
use sbst_stl::{
    cycle_budget_for, learn_golden_cached, wrap_cached, RoutineEnv, SelfTestRoutine, WrapConfig,
    RESULT_SIG_OFF, RESULT_STATUS_OFF, STATUS_PASS,
};

/// Flash base the scenario program is assembled at.
const BASE: u32 = 0x1000;

/// Cache configuration axis.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum CacheCfg {
    /// The paper's 2-way write-through caches.
    TwoWay,
    /// The certification variant: direct-mapped, same capacities.
    Direct,
}

impl CacheCfg {
    fn name(self) -> &'static str {
        match self {
            CacheCfg::TwoWay => "2-way",
            CacheCfg::Direct => "direct",
        }
    }

    fn core(self, kind: CoreKind, id: usize, reset_pc: u32) -> CoreConfig {
        match self {
            CacheCfg::TwoWay => CoreConfig::cached(kind, id, reset_pc),
            CacheCfg::Direct => CoreConfig::cached_direct(kind, id, reset_pc),
        }
    }
}

/// One certified (or refused) scenario's outcome.
struct ScenarioResult {
    routine: &'static str,
    core: CoreKind,
    arbiter: ArbiterKind,
    cache: CacheCfg,
    intensity: u32,
    /// Worst observed single-request wait across all ports.
    observed: u64,
    /// Tightest finite per-port bound (the core ports' bound).
    bound: u64,
    /// Observed ≤ bound on every port.
    within_bound: bool,
    /// Signature identical to the solo golden and self-check passed.
    signature_ok: bool,
}

type RoutineFactory = Box<dyn Fn(CoreKind) -> Box<dyn SelfTestRoutine>>;

fn routines() -> Vec<(&'static str, RoutineFactory)> {
    vec![
        ("forwarding+pcs", Box::new(|k| Box::new(ForwardingTest::with_pcs(k)))),
        ("icu", Box::new(|_| Box::new(IcuTest::new()))),
        ("regfile", Box::new(|_| Box::new(RegFileTest::new()))),
    ]
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke" || a == "smoke");
    let seed = std::env::args()
        .filter_map(|s| s.parse::<u64>().ok())
        .next()
        .unwrap_or(0xce47);

    let arbiters = [ArbiterKind::RoundRobin, ArbiterKind::tdma()];
    let caches = [CacheCfg::TwoWay, CacheCfg::Direct];
    let intensities: &[u32] = if smoke { &[0, 100] } else { &[0, 40, 100] };
    let routine_set = routines();
    let (routine_set, cores): (_, &[CoreKind]) = if smoke {
        (&routine_set[..1], &[CoreKind::A])
    } else {
        (&routine_set[..], &CoreKind::ALL[..])
    };

    println!(
        "CERTIFY — {} arbiters x {} caches x {} intensities x {} routines x {} cores, seed {seed:#x}\n",
        arbiters.len(),
        caches.len(),
        intensities.len(),
        routine_set.len(),
        cores.len(),
    );

    let mut results: Vec<ScenarioResult> = Vec::new();
    let mut sample_tables: Vec<String> = Vec::new();
    for (name, make) in routine_set {
        for &kind in cores {
            let routine = make(kind);
            let env = RoutineEnv::for_core(kind);
            let wrap = WrapConfig::default();
            let golden = learn_golden_cached(routine.as_ref(), &env, &wrap, kind, BASE)
                .expect("golden learns");
            let checked = WrapConfig { expected_sig: Some(golden), ..wrap };
            let asm = wrap_cached(routine.as_ref(), &env, &checked, "cert").expect("wraps");
            let program = asm.assemble(BASE).expect("assembles");
            // The solo budget plus headroom for every access eating its
            // worst-case grant latency (3 ports, the conservative x4).
            let budget = cycle_budget_for(&env, &asm) * 12;
            for &arbiter in &arbiters {
                for &cache in &caches {
                    for (i, &intensity) in intensities.iter().enumerate() {
                        let chaos = ChaosConfig::interference(InjectorProgram::with_intensity(
                            intensity,
                            seed ^ (i as u64) << 8,
                        ));
                        let mut soc = SocBuilder::new()
                            .load(&program)
                            .core(cache.core(kind, 0, BASE), 0)
                            .arbiter(arbiter)
                            .chaos(chaos)
                            .observe(ObsConfig::default())
                            .build();
                        let outcome = soc.run(budget);
                        let stats = soc.bus().stats();
                        let bounds = soc.bus().bound_params();
                        let mut within = true;
                        let mut tightest = u64::MAX;
                        let mut worst = 0;
                        for (p, &observed) in stats.max_grant_wait.iter().enumerate() {
                            let b = bounds.per_access_wcl(p);
                            within &= b.admits(observed);
                            worst = worst.max(observed);
                            if let Some(c) = b.cycles() {
                                tightest = tightest.min(c);
                            }
                        }
                        let status = soc.peek(env.result_addr + RESULT_STATUS_OFF as u32);
                        let sig = soc.peek(env.result_addr + RESULT_SIG_OFF as u32);
                        let signature_ok =
                            outcome.is_clean() && status == STATUS_PASS && sig == golden;
                        if intensity == 100 && kind == CoreKind::A && name == &"forwarding+pcs" {
                            let hub = soc.metrics().expect("observed");
                            sample_tables.push(format!(
                                "--- {} / {} / saturate ---\n{}",
                                arbiter.name(),
                                cache.name(),
                                hub.summary_table()
                            ));
                        }
                        results.push(ScenarioResult {
                            routine: name,
                            core: kind,
                            arbiter,
                            cache,
                            intensity,
                            observed: worst,
                            bound: tightest,
                            within_bound: within,
                            signature_ok,
                        });
                    }
                }
            }
        }
    }

    // Fixed-priority is evaluated statically: with more than one port,
    // some port is always below the top of the chain, so the
    // certificate must come back starvation-unbounded and the platform
    // is refused without running anything on it.
    let mut fp_flagged = true;
    let mut refused = 0usize;
    for ascending in [true, false] {
        let params = sbst_mem::BoundParams {
            ports: 3,
            arbiter: ArbiterKind::FixedPriority { ascending },
            flash: sbst_mem::FlashTiming::default(),
            sram_latency: 4,
        };
        let all = params.all();
        let unbounded = all.iter().filter(|b| **b == PortBound::Unbounded).count();
        let ok = unbounded == 2
            && all.iter().filter(|b| matches!(b, PortBound::Bounded(_))).count() == 1;
        fp_flagged &= ok;
        refused += 1;
        println!(
            "fixed-priority (ascending={ascending}): {unbounded}/3 ports starvation-unbounded \
             -> REFUSED{}",
            if ok { "" } else { " [FLAGGING BROKEN]" },
        );
    }
    println!();

    println!(
        "{:<16} {:>6} {:>13} {:>7} {:>9} {:>9} {:>7} {:>10}",
        "routine", "core", "arbiter", "cache", "intensity", "observed", "bound", "verdict"
    );
    let mut violations = 0usize;
    let mut mismatches = 0usize;
    for r in &results {
        if !r.within_bound {
            violations += 1;
        }
        if !r.signature_ok {
            mismatches += 1;
        }
        let verdict = match (r.within_bound, r.signature_ok) {
            (true, true) => "CERTIFIED",
            (false, _) => "VIOLATED",
            (_, false) => "SIG-DRIFT",
        };
        println!(
            "{:<16} {:>6} {:>13} {:>7} {:>9} {:>9} {:>7} {:>10}",
            r.routine,
            format!("{:?}", r.core),
            r.arbiter.name(),
            r.cache.name(),
            r.intensity,
            r.observed,
            r.bound,
            verdict,
        );
    }
    println!();
    for t in &sample_tables {
        println!("{t}");
    }

    // JSON report.
    let scenarios: Vec<Json> = results
        .iter()
        .map(|r| {
            Json::Obj(vec![
                ("routine".into(), Json::Str(r.routine.into())),
                ("core".into(), Json::Str(format!("{:?}", r.core))),
                ("arbiter".into(), Json::Str(r.arbiter.name().into())),
                ("cache".into(), Json::Str(r.cache.name().into())),
                ("intensity".into(), Json::int(u64::from(r.intensity))),
                ("observed_max_wait".into(), Json::int(r.observed)),
                ("certified_bound".into(), Json::int(r.bound)),
                ("within_bound".into(), Json::Bool(r.within_bound)),
                ("signature_ok".into(), Json::Bool(r.signature_ok)),
            ])
        })
        .collect();
    let report = Json::Obj(vec![
        ("mode".into(), Json::Str(if smoke { "smoke".into() } else { "full".into() })),
        ("seed".into(), Json::int(seed)),
        ("scenarios".into(), Json::Arr(scenarios)),
        ("violations".into(), Json::int(violations as u64)),
        ("signature_mismatches".into(), Json::int(mismatches as u64)),
        ("fixed_priority_refused".into(), Json::int(refused as u64)),
        ("fixed_priority_flagged".into(), Json::Bool(fp_flagged)),
    ]);
    std::fs::create_dir_all("out").expect("create out/");
    std::fs::write("out/certify_report.json", report.render_pretty(2))
        .expect("write out/certify_report.json");
    println!("wrote out/certify_report.json ({} scenarios)", results.len());

    // Merge totals into BENCH_campaign.json, preserving other keys.
    let mut doc = std::fs::read_to_string("BENCH_campaign.json")
        .ok()
        .and_then(|text| parse_json(&text).ok())
        .filter(|d| matches!(d, Json::Obj(_)))
        .unwrap_or(Json::Obj(Vec::new()));
    doc.set(
        "certify",
        Json::Obj(vec![
            ("scenarios".into(), Json::int(results.len() as u64)),
            ("violations".into(), Json::int(violations as u64)),
            ("signature_mismatches".into(), Json::int(mismatches as u64)),
            ("fixed_priority_flagged".into(), Json::Bool(fp_flagged)),
            ("seed".into(), Json::int(seed)),
        ]),
    );
    std::fs::write("BENCH_campaign.json", doc.render_pretty(2))
        .expect("write BENCH_campaign.json");
    println!("merged certify telemetry into BENCH_campaign.json");

    assert!(fp_flagged, "fixed-priority low-priority ports must be flagged unbounded");
    assert_eq!(violations, 0, "observed grant wait exceeded a certified bound");
    assert_eq!(mismatches, 0, "signature drifted under certified interference");
    println!(
        "\nOK: {} scenarios certified (observed <= bound, signatures bit-identical), \
         {refused} fixed-priority platforms refused",
        results.len()
    );
}
