//! Reference listing of the fault universes: per unit and core kind,
//! the enumerated stuck-at sites, the collapsed equivalence classes and
//! the per-category breakdown.

use sbst_cpu::{delay_fault_list, unit_fault_list, CoreKind};
use sbst_fault::{collapse, Unit};

fn main() {
    println!("FAULT UNIVERSES (paper: forwarding 53k/58k/113k, HDCU ~16-20k, ICU ~13-14k)\n");
    println!("unit        | core | sites | classes | reduction");
    let mut grand = (0usize, 0usize);
    for unit in [Unit::Forwarding, Unit::Hdcu, Unit::Icu] {
        for kind in CoreKind::ALL {
            let list = unit_fault_list(kind, unit);
            let c = collapse(&list);
            grand.0 += list.len();
            grand.1 += c.classes();
            println!(
                "{:<11} | {:>4} | {:>5} | {:>7} | {:>6.1}%",
                unit.to_string(),
                kind,
                list.len(),
                c.classes(),
                100.0 * (1.0 - c.classes() as f64 / list.len() as f64)
            );
        }
    }
    println!(
        "\ntotal stuck-at universe: {} sites -> {} classes ({:.1}% fewer simulations)",
        grand.0,
        grand.1,
        100.0 * (1.0 - grand.1 as f64 / grand.0 as f64)
    );
    println!("\ndelay-fault extension (forwarding datapath):");
    for kind in CoreKind::ALL {
        println!("  core {kind}: {} transition sites", delay_fault_list(kind).len());
    }
}
