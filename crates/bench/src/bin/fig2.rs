//! Regenerates the paper's Figure 2: the structure of the single-core
//! self-test procedure (a) versus the cache-based multi-core version (b).

use sbst_cpu::CoreKind;
use sbst_isa::Asm;
use sbst_stl::routines::IcuTest;
use sbst_stl::{wrap_cached, RoutineEnv, Signature, WrapConfig};

fn main() {
    let kind = CoreKind::A;
    let routine = IcuTest::with_rounds(1);
    let env = RoutineEnv::for_core(kind);

    println!("(a) single-core version: [init] -> [test program body] -> [signature]");
    println!("(b) cache-based multi-core version (Figure 2b):\n");
    let cfg = WrapConfig::default();
    let asm = wrap_cached(&routine, &env, &cfg, "fig2").unwrap();
    let program = asm.assemble(0x400).unwrap();
    println!(
        "  block a: setup (loop counter = {} iterations, result pointer)",
        cfg.iterations
    );
    println!("  block b: icinv + dcinv (invalidate both caches)");
    println!("  block c/d: the UNMODIFIED single-core body, executed twice:");
    println!("     iteration 1 = loading loop (warms I$/D$, signature discarded)");
    println!("     iteration 2 = execution loop (runs from cache, signature kept)");
    println!("  block e: loop decrement + backward branch (taken exactly once)");
    println!("  then: store signature, self-check, halt\n");
    println!(
        "  image: {} bytes ({} instructions), fits the 8 KiB I$: {}",
        program.len_bytes(),
        program.words().len(),
        program.len_bytes() <= 8 * 1024
    );
    let _ = Signature::new();
    println!("\nFirst 24 instructions of the emitted wrapper:\n");
    let head: String = program
        .disassemble()
        .lines()
        .take(24)
        .collect::<Vec<_>>()
        .join("\n");
    println!("{head}");
    let _ = Asm::new();
}
