//! Fleet campaign service benchmark and chaos smoke: a heterogeneous
//! ECU population grading real ICU faults through the lease-based
//! fleet orchestrator, under injected worker failures, in both worker
//! topologies (thread pool and process-per-worker).
//!
//! Asserted in every mode:
//!
//! * the fleet run terminates with every shard explicitly accounted
//!   (completed or quarantined-with-cause) — zero silent losses;
//! * every completed shard's verdicts are bit-identical to an
//!   uninterrupted serial run;
//! * the chaos plane actually fired (forced panics + one forced hang).
//!
//! Artifacts: `out/fleet_dashboard.jsonl` (one JSON object per lease
//! event, then one telemetry line) and a `fleet` key merged into
//! `BENCH_campaign.json` with throughput and recovery statistics.
//!
//! Modes (first CLI argument): `smoke` (CI), `quick`, `standard`
//! (asserts fleet-over-serial speedup), `proc-hang` (tiny
//! process-pool run whose hung child must be killed and stolen —
//! exercised by the `fleet_process` integration test).
//!
//! `--worker <mode> <shard> <attempt> <action> <out>` is the child
//! entry point of the process pool: it rebuilds the same deterministic
//! plan, grades one shard (applying the injected chaos action), and
//! writes the sealed result file.

use std::path::Path;
use std::process::Command;
use std::time::{Duration, Instant};

use sbst_campaign::fleet::{
    assemble_ecu, execute_shard_standalone, run_fleet, run_fleet_process, run_fleet_serial,
    ChaosAction, EcuSpec, FleetConfig, FleetGrader, FleetPlan, FleetReport, ForcedFailure,
    LeasePolicy, Shard, ShardFate, WorkerChaos,
};
use sbst_cpu::unit_fault_list;
use sbst_fault::{FaultList, FaultSite, Unit, Verdict};
use sbst_obs::{Json, MetricsHub};

/// The deterministic work inventory for a mode — parent and `--worker`
/// children rebuild the identical plan from this one function, so no
/// fault list ever crosses a process boundary.
fn build_plan(mode: &str) -> FleetPlan {
    let (stride, shard_faults) = match mode {
        "smoke" | "proc-hang" => (19, 3),
        "quick" => (7, 5),
        "standard" => (3, 8),
        other => panic!("unknown mode {other:?} (smoke|quick|standard|proc-hang)"),
    };
    let ecus = EcuSpec::population(Unit::Icu);
    let faults: Vec<FaultList> = ecus
        .iter()
        .map(|e| unit_fault_list(e.config.kind, Unit::Icu).sample(stride))
        .collect();
    FleetPlan::build(ecus, faults, shard_faults)
}

/// A grader holding only one ECU variant's simulation stack — what a
/// child process builds for the single shard it grades.
struct OneEcuGrader {
    ecu: usize,
    cell: (
        sbst_campaign::Experiment,
        sbst_campaign::Observation,
        sbst_campaign::Snapshot,
    ),
}

impl FleetGrader for OneEcuGrader {
    fn grade(&self, ecu: usize, _spec: &EcuSpec, site: FaultSite) -> Verdict {
        assert_eq!(ecu, self.ecu, "child graded a foreign ECU");
        let (experiment, golden, snapshot) = &self.cell;
        experiment.test_fault_warm(golden, snapshot, site)
    }
}

fn render_action(action: ChaosAction) -> String {
    match action {
        ChaosAction::None => "none".into(),
        ChaosAction::Panic { after } => format!("panic:{after}"),
        ChaosAction::Hang { after } => format!("hang:{after}"),
        ChaosAction::Slow => "slow".into(),
        ChaosAction::Corrupt => "corrupt".into(),
    }
}

fn parse_action(text: &str) -> ChaosAction {
    match text.split_once(':') {
        Some(("panic", n)) => ChaosAction::Panic { after: n.parse().expect("panic index") },
        Some(("hang", n)) => ChaosAction::Hang { after: n.parse().expect("hang index") },
        None if text == "none" => ChaosAction::None,
        None if text == "slow" => ChaosAction::Slow,
        None if text == "corrupt" => ChaosAction::Corrupt,
        _ => panic!("unknown chaos action {text:?}"),
    }
}

/// Child entry point: grade one shard, write the sealed result.
fn run_worker(args: &[String]) {
    let [mode, shard, attempt, action, out] = args else {
        panic!("--worker needs <mode> <shard> <attempt> <action> <out>");
    };
    let plan = build_plan(mode);
    let shard_idx: usize = shard.parse().expect("shard index");
    let attempt: u8 = attempt.parse().expect("attempt");
    let shard = plan.shards[shard_idx];
    let mut chaos = WorkerChaos::off();
    chaos.slow_millis = 10;
    let action = parse_action(action);
    if action != ChaosAction::None {
        chaos.forced.push(ForcedFailure { shard: shard_idx, attempt, action });
    }
    let cfg = FleetConfig { chaos, ..FleetConfig::new(1, 0) };
    let grader = OneEcuGrader {
        ecu: shard.ecu,
        cell: assemble_ecu(&plan.ecus[shard.ecu]).expect("assemble ECU"),
    };
    let result = execute_shard_standalone(&plan, &shard, attempt, &cfg, &grader);
    std::fs::write(out, result.to_json()).expect("write shard result");
}

/// Zero-silent-losses + bit-identity checks shared by every phase.
fn assert_report(report: &FleetReport, baseline: &[Vec<Verdict>], label: &str) {
    let c = report.telemetry.counters;
    assert_eq!(c.completed + c.quarantined, c.shards, "{label}: every shard terminal");
    for (i, fate) in report.fates.iter().enumerate() {
        match fate {
            ShardFate::Completed { .. } => assert_eq!(
                report.verdicts[i].as_deref(),
                Some(baseline[i].as_slice()),
                "{label}: shard {i} diverged from the serial baseline"
            ),
            ShardFate::Quarantined { cause, attempts } => {
                assert!(report.verdicts[i].is_none(), "{label}: quarantined shard {i} leaked");
                println!("{label}: shard {i} quarantined after {attempts} attempts ({})", cause.as_str());
            }
        }
    }
}

fn write_dashboard(report: &FleetReport, path: &str) {
    if let Some(dir) = std::path::Path::new(path).parent().filter(|d| !d.as_os_str().is_empty()) {
        std::fs::create_dir_all(dir).expect("create dashboard dir");
    }
    let mut out = String::new();
    for e in &report.events {
        out.push_str(&format!(
            "{{\"t_ms\":{},\"worker\":{},\"event\":\"{}\",\"args\":{}}}\n",
            e.cycle,
            e.core.map_or("null".into(), |c| c.to_string()),
            e.kind.name(),
            e.args_json(),
        ));
    }
    out.push_str(&report.telemetry.to_json().render());
    out.push('\n');
    std::fs::write(path, out).expect("write fleet dashboard");
    println!("wrote {path} ({} events)", report.events.len());
}

fn merge_bench_json(fleet: Json) {
    let path = "BENCH_campaign.json";
    let mut doc = std::fs::read_to_string(path)
        .ok()
        .and_then(|t| sbst_obs::parse_json(&t).ok())
        .unwrap_or_else(|| {
            Json::Obj(vec![("bench".into(), Json::Str("campaign_throughput".into()))])
        });
    doc.set("fleet", fleet);
    std::fs::write(path, doc.render_pretty(2)).expect("write BENCH_campaign.json");
    println!("merged fleet stats into {path}");
}

fn round2(v: f64) -> f64 {
    (v * 100.0).round() / 100.0
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("--worker") {
        run_worker(&args[1..]);
        return;
    }
    let mode = args.first().cloned().unwrap_or_else(|| "standard".into());

    let plan = build_plan(&mode);
    println!(
        "fleet_campaign [{mode}]: {} ECU variants, {} faults, {} shards",
        plan.ecus.len(),
        plan.total_faults(),
        plan.shard_count()
    );
    let grader = sbst_campaign::fleet::ExperimentFleetGrader::new(&plan)
        .expect("assemble fleet graders");
    let serial_t = Instant::now();
    let baseline = run_fleet_serial(&plan, &grader);
    let serial_secs = serial_t.elapsed().as_secs_f64().max(1e-9);

    if mode == "proc-hang" {
        proc_hang(&plan, &baseline);
        return;
    }

    // ── Phase 1: thread pool under a chaos storm with forced panics
    // and one forced hang (the CI contract).
    let mut chaos = WorkerChaos::storm(42);
    chaos.forced.extend([
        ForcedFailure { shard: 0, attempt: 1, action: ChaosAction::Panic { after: 1 } },
        ForcedFailure { shard: 2, attempt: 1, action: ChaosAction::Panic { after: 0 } },
        ForcedFailure { shard: 1, attempt: 1, action: ChaosAction::Hang { after: 1 } },
    ]);
    let cfg = FleetConfig {
        workers: 4,
        policy: LeasePolicy {
            max_retries: 6,
            // Must exceed the worst honest shard grading time by a
            // wide margin; the one forced hang costs exactly one
            // lease timeout of wall clock.
            lease_timeout: Duration::from_millis(2000),
            backoff_base: Duration::from_millis(2),
            backoff_cap: Duration::from_millis(16),
            seed: 42,
        },
        chaos,
        checkpoint_dir: None,
        checkpoint_every: 4,
        poll: Duration::from_millis(2),
    };
    let report = run_fleet(&plan, &grader, &cfg);
    assert_report(&report, &baseline, "threads+chaos");
    let t = &report.telemetry;
    assert!(t.injected_panics >= 2, "forced panics must fire (got {})", t.injected_panics);
    assert!(t.injected_hangs >= 1, "the forced hang must fire (got {})", t.injected_hangs);
    assert!(t.counters.retries >= 2, "panicked shards must be retried");
    assert!(t.counters.steals >= 1, "the hung lease must be stolen");
    println!("threads+chaos: {t}");

    // The fleet counters in the standard observability summary table.
    let hub = MetricsHub {
        cycles: 0,
        cores: Vec::new(),
        bus: Default::default(),
        events: report.events.clone(),
        dropped_events: 0,
        seu_strikes: 0,
        seu_landed: 0,
        injector_requests: None,
        fleet: Some(t.counters),
    };
    print!("{}", hub.summary_table());

    write_dashboard(&report, "out/fleet_dashboard.jsonl");

    // ── Phase 2: a calm timed fleet run for the throughput figure.
    let calm_cfg = FleetConfig {
        policy: LeasePolicy {
            lease_timeout: Duration::from_millis(10_000),
            ..LeasePolicy::fast(7)
        },
        workers: 4,
        ..FleetConfig::new(4, 7)
    };
    let calm_t = Instant::now();
    let calm = run_fleet(&plan, &grader, &calm_cfg);
    let calm_secs = calm_t.elapsed().as_secs_f64().max(1e-9);
    assert_report(&calm, &baseline, "threads+calm");
    assert!(calm.is_complete(), "calm fleet must complete everything");
    let speedup = serial_secs / calm_secs;
    println!(
        "serial {serial_secs:.2}s vs fleet {calm_secs:.2}s ({:.1} faults/s) — speedup {speedup:.2}x",
        calm.telemetry.faults_per_sec
    );
    if mode == "standard" {
        let cores =
            std::thread::available_parallelism().map_or(1, std::num::NonZero::get);
        if cores >= 4 {
            assert!(
                speedup >= 1.2,
                "a 4-worker fleet on {cores} cores must beat the serial run, \
                 got {speedup:.2}x"
            );
        } else {
            // On a starved machine parallel speedup is unobtainable;
            // still bound the orchestration overhead.
            assert!(
                calm_secs <= serial_secs * 3.0 + 0.5,
                "fleet orchestration overhead out of bounds: \
                 serial {serial_secs:.2}s vs fleet {calm_secs:.2}s on {cores} cores"
            );
        }
    }

    // ── Phase 3: process-per-worker pool with a forced child panic and
    // a forced corrupted result (crash isolation across a real process
    // boundary; the forced hang-and-kill path runs in `proc-hang`).
    let mut proc_chaos = WorkerChaos::off();
    proc_chaos.forced.extend([
        ForcedFailure { shard: 0, attempt: 1, action: ChaosAction::Panic { after: 1 } },
        ForcedFailure { shard: 3, attempt: 1, action: ChaosAction::Corrupt },
    ]);
    let proc_cfg = FleetConfig {
        workers: 3,
        policy: LeasePolicy {
            max_retries: 4,
            lease_timeout: Duration::from_secs(60),
            backoff_base: Duration::from_millis(2),
            backoff_cap: Duration::from_millis(16),
            seed: 9,
        },
        chaos: proc_chaos,
        checkpoint_dir: None,
        checkpoint_every: 4,
        poll: Duration::from_millis(5),
    };
    let proc_report = run_process_fleet(&plan, &proc_cfg, &mode);
    assert_report(&proc_report, &baseline, "processes");
    let pt = &proc_report.telemetry;
    assert!(pt.injected_panics >= 1, "forced child panic scheduled");
    assert!(pt.injected_corruptions >= 1, "forced child corruption scheduled");
    assert!(pt.counters.retries >= 2, "dead/corrupt children must be retried");
    println!("processes: {pt}");

    merge_bench_json(Json::Obj(vec![
        ("mode".into(), Json::Str(mode.clone())),
        ("ecus".into(), Json::int(plan.ecus.len() as u64)),
        ("faults".into(), Json::int(plan.total_faults() as u64)),
        ("shards".into(), Json::int(plan.shard_count() as u64)),
        ("serial_secs".into(), Json::Num(round2(serial_secs))),
        ("fleet_secs".into(), Json::Num(round2(calm_secs))),
        ("speedup".into(), Json::Num(round2(speedup))),
        ("faults_per_sec".into(), Json::Num(round2(calm.telemetry.faults_per_sec))),
        ("chaos".into(), t.to_json()),
        ("process_pool".into(), pt.to_json()),
    ]));
    println!("fleet_campaign [{mode}]: OK");
}

/// Runs the process pool with this binary as the worker.
fn run_process_fleet(plan: &FleetPlan, cfg: &FleetConfig, mode: &str) -> FleetReport {
    let exe = std::env::current_exe().expect("own path");
    let chaos = cfg.chaos.clone();
    let command = move |shard: &Shard, attempt: u8, out: &Path| {
        let action = render_action(chaos.roll(shard.index, attempt, shard.len));
        let mut cmd = Command::new(&exe);
        cmd.arg("--worker")
            .arg(mode)
            .arg(shard.index.to_string())
            .arg(attempt.to_string())
            .arg(action)
            .arg(out);
        cmd
    };
    run_fleet_process(plan, cfg, &command).expect("process fleet scratch dir")
}

/// The hung-child scenario: one worker process is forced to hang
/// mid-shard; the parent must kill it at lease expiry, steal the
/// lease, and still converge to the serial baseline.
fn proc_hang(plan: &FleetPlan, baseline: &[Vec<Verdict>]) {
    let mut chaos = WorkerChaos::off();
    chaos.forced.push(ForcedFailure {
        shard: 1,
        attempt: 1,
        action: ChaosAction::Hang { after: 1 },
    });
    let cfg = FleetConfig {
        workers: 2,
        policy: LeasePolicy {
            max_retries: 4,
            lease_timeout: Duration::from_millis(2500),
            backoff_base: Duration::from_millis(2),
            backoff_cap: Duration::from_millis(16),
            seed: 13,
        },
        chaos,
        checkpoint_dir: None,
        checkpoint_every: 4,
        poll: Duration::from_millis(5),
    };
    let report = run_process_fleet(plan, &cfg, "proc-hang");
    assert_report(&report, baseline, "proc-hang");
    let t = &report.telemetry;
    assert!(t.counters.steals >= 1, "the hung child's lease must be stolen");
    assert!(t.injected_hangs >= 1, "the forced hang was scheduled");
    println!("proc-hang: {t}");
    println!("fleet_campaign [proc-hang]: OK");
}
