//! Cache-capacity study (beyond the paper): how does the method behave
//! as the instruction cache shrinks below / grows beyond the routine?
//! With a too-small I$ the routine must split (paper §III.2.2); the
//! method stays deterministic at every size, and coverage is preserved.
//!
//! Usage: `cache_sweep [quick|standard]`

use sbst_campaign::tables::Effort;
use sbst_campaign::{routines_for, run_campaign, ExecStyle, Experiment, ExperimentConfig};
use sbst_cpu::{unit_fault_list, CoreKind};
use sbst_fault::Unit;
use sbst_mem::{CacheConfig, WritePolicy};
use sbst_soc::Scenario;

fn main() {
    let effort = match std::env::args().nth(1).as_deref() {
        Some("standard") => Effort::standard(),
        _ => Effort::quick(),
    };
    let kind = CoreKind::A;
    let factory = routines_for(Unit::Forwarding);
    let faults = effort.sample(&unit_fault_list(kind, Unit::Forwarding));
    println!("CACHE-CAPACITY STUDY — forwarding routine, core {kind}, 3 active cores");
    println!("I$ size | Deterministic | FC [%] | Cycles (golden)");
    for size_kb in [2u32, 4, 8, 16] {
        let icache = CacheConfig {
            size_bytes: size_kb * 1024,
            ways: 2,
            line_bytes: 32,
            policy: WritePolicy::WriteAllocate,
        };
        let mut sigs = Vec::new();
        let mut fc = 0.0;
        let mut cycles = 0;
        for seed in 0..effort.seeds.max(2) {
            let config = ExperimentConfig {
                icache,
                ..ExperimentConfig::new(
                    kind,
                    ExecStyle::CacheWrapped,
                    Scenario { active_cores: 3, skew_seed: seed, ..Scenario::single_core() },
                )
            };
            let exp = Experiment::assemble_config(&*factory, &config)
                .expect("experiment (splits when the routine exceeds the I$)");
            let golden = exp.golden();
            sigs.push(golden.signature);
            if seed == 0 {
                cycles = golden.cycles;
                fc = run_campaign(&exp, &golden, &faults, effort.threads).coverage();
            }
        }
        sigs.dedup();
        println!(
            "{size_kb:>5}K | {:>13} | {fc:>6.2} | {cycles:>7}",
            if sigs.len() == 1 { "YES" } else { "no" }
        );
    }
}
