//! Regenerates the paper's Table IV (TCM-based versus cache-based
//! execution of the imprecise-interrupt routine).

use sbst_campaign::tables::{render_table4, table4};

fn main() {
    let rows = table4();
    println!("{}", render_table4(&rows));
    let ratio = rows[1].cycles as f64 / rows[0].cycles as f64;
    println!(
        "cache/TCM time ratio: {ratio:.3} (paper: 18,043/16,463 = 1.096; \
         TCM overhead paper: 2,874 bytes)"
    );
}
