#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! # sbst-bench — reproduction binaries and benchmarks
//!
//! This crate has no library API: it hosts
//!
//! * the table/figure regeneration binaries (`table1`–`table4`, `fig1`,
//!   `fig2`, `ablations`, `delay_faults`, `cache_sweep`,
//!   `coverage_holes`, `disasm`, and the one-shot `reproduce` driver) —
//!   see `README.md` for the command lines;
//! * the Criterion benches under `benches/` measuring the simulator's
//!   cycle throughput, cache operations, wrapper emission and
//!   single-fault simulation latency.
