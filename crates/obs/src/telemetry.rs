//! Campaign-level telemetry: verdict mix, throughput, warm-start hit
//! rate and periodic progress snapshots of a fault-injection campaign.

use crate::json::Json;

/// How a campaign's verdicts were distributed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct VerdictMix {
    /// Faults detected by a wrong signature.
    pub wrong_signature: u64,
    /// Faults detected by an explicit test-fail status.
    pub test_fail: u64,
    /// Faults detected by an unexpected trap.
    pub unexpected_trap: u64,
    /// Faults detected by a hang (watchdog / cycle budget).
    pub hang: u64,
    /// Faults the STL did not detect.
    pub undetected: u64,
    /// Simulations that failed outright (grader error).
    pub sim_error: u64,
}

impl VerdictMix {
    /// Total verdicts counted.
    pub fn total(&self) -> u64 {
        self.wrong_signature
            + self.test_fail
            + self.unexpected_trap
            + self.hang
            + self.undetected
            + self.sim_error
    }

    /// Faults detected by any mechanism.
    pub fn detected(&self) -> u64 {
        self.wrong_signature + self.test_fail + self.unexpected_trap + self.hang
    }

    /// Renders the mix as a JSON object.
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("wrong_signature".into(), Json::int(self.wrong_signature)),
            ("test_fail".into(), Json::int(self.test_fail)),
            ("unexpected_trap".into(), Json::int(self.unexpected_trap)),
            ("hang".into(), Json::int(self.hang)),
            ("undetected".into(), Json::int(self.undetected)),
            ("sim_error".into(), Json::int(self.sim_error)),
        ])
    }
}

impl std::fmt::Display for VerdictMix {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "sig={} fail={} trap={} hang={} undetected={} err={}",
            self.wrong_signature,
            self.test_fail,
            self.unexpected_trap,
            self.hang,
            self.undetected,
            self.sim_error,
        )
    }
}

/// One periodic progress sample taken while a campaign was running.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProgressSnapshot {
    /// Faults graded so far.
    pub done: usize,
    /// Faults in the campaign.
    pub total: usize,
    /// Wall-clock seconds since the campaign started.
    pub elapsed_secs: f64,
    /// Grading throughput at this snapshot.
    pub faults_per_sec: f64,
}

impl ProgressSnapshot {
    /// Renders the snapshot as a JSON object.
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("done".into(), Json::int(self.done as u64)),
            ("total".into(), Json::int(self.total as u64)),
            ("elapsed_secs".into(), Json::Num(self.elapsed_secs)),
            ("faults_per_sec".into(), Json::Num(self.faults_per_sec)),
        ])
    }
}

/// End-of-campaign telemetry.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct CampaignTelemetry {
    /// Faults graded.
    pub total: u64,
    /// Verdict distribution.
    pub mix: VerdictMix,
    /// Wall-clock seconds the campaign took.
    pub elapsed_secs: f64,
    /// Overall grading throughput.
    pub faults_per_sec: f64,
    /// Fraction of faults that short-circuited on the warm-start early
    /// verdict (None for cold campaigns).
    pub warm_hit_rate: Option<f64>,
    /// Periodic snapshots, oldest first.
    pub progress: Vec<ProgressSnapshot>,
}

impl CampaignTelemetry {
    /// Renders the telemetry as a JSON object.
    pub fn to_json(&self) -> Json {
        let mut fields = vec![
            ("total".into(), Json::int(self.total)),
            ("verdicts".into(), self.mix.to_json()),
            ("elapsed_secs".into(), Json::Num(self.elapsed_secs)),
            ("faults_per_sec".into(), Json::Num(self.faults_per_sec)),
        ];
        match self.warm_hit_rate {
            Some(rate) => fields.push(("warm_hit_rate".into(), Json::Num(rate))),
            None => fields.push(("warm_hit_rate".into(), Json::Null)),
        }
        fields.push((
            "progress".into(),
            Json::Arr(self.progress.iter().map(ProgressSnapshot::to_json).collect()),
        ));
        Json::Obj(fields)
    }
}

impl std::fmt::Display for CampaignTelemetry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} faults in {:.2}s ({:.0} faults/sec; {})",
            self.total, self.elapsed_secs, self.faults_per_sec, self.mix,
        )?;
        if let Some(rate) = self.warm_hit_rate {
            write!(f, "; warm-hit {:.1}%", 100.0 * rate)?;
        }
        Ok(())
    }
}

/// End-of-run telemetry of a fleet campaign: the recovery counters of
/// the lease table, the chaos plane's injection tally, the work saved
/// by shard checkpoints and the aggregate verdict mix of every
/// completed shard.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct FleetTelemetry {
    /// Lease/retry/steal/quarantine counters.
    pub counters: crate::metrics::FleetCounters,
    /// Injected worker panics (chaos plane).
    pub injected_panics: u64,
    /// Injected worker hangs.
    pub injected_hangs: u64,
    /// Injected worker slowdowns.
    pub injected_slowdowns: u64,
    /// Injected result corruptions.
    pub injected_corruptions: u64,
    /// Shard checkpoints rejected on load (fingerprint/config mismatch
    /// or torn file) and discarded.
    pub checkpoints_rejected: u64,
    /// Faults graded by workers (excluding checkpoint restores).
    pub faults_graded: u64,
    /// Faults restored from shard checkpoints instead of re-graded.
    pub faults_restored: u64,
    /// Wall-clock seconds of the fleet run.
    pub elapsed_secs: f64,
    /// Grading throughput over graded + restored faults.
    pub faults_per_sec: f64,
    /// Verdict distribution over every completed shard.
    pub mix: VerdictMix,
}

impl FleetTelemetry {
    /// Renders the telemetry as a JSON object.
    pub fn to_json(&self) -> Json {
        let c = &self.counters;
        Json::Obj(vec![
            ("shards".into(), Json::int(c.shards)),
            ("completed".into(), Json::int(c.completed)),
            ("quarantined".into(), Json::int(c.quarantined)),
            ("leases".into(), Json::int(c.leases)),
            ("retries".into(), Json::int(c.retries)),
            ("steals".into(), Json::int(c.steals)),
            ("resumes".into(), Json::int(c.resumes)),
            ("late_results".into(), Json::int(c.late_results)),
            ("injected_panics".into(), Json::int(self.injected_panics)),
            ("injected_hangs".into(), Json::int(self.injected_hangs)),
            ("injected_slowdowns".into(), Json::int(self.injected_slowdowns)),
            ("injected_corruptions".into(), Json::int(self.injected_corruptions)),
            ("checkpoints_rejected".into(), Json::int(self.checkpoints_rejected)),
            ("faults_graded".into(), Json::int(self.faults_graded)),
            ("faults_restored".into(), Json::int(self.faults_restored)),
            ("elapsed_secs".into(), Json::Num(self.elapsed_secs)),
            ("faults_per_sec".into(), Json::Num(self.faults_per_sec)),
            ("verdicts".into(), self.mix.to_json()),
        ])
    }
}

impl std::fmt::Display for FleetTelemetry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let c = &self.counters;
        write!(
            f,
            "{}/{} shards ({} quarantined) in {:.2}s ({:.0} faults/sec); \
             {} leases, {} retries, {} steals, {} resumes; \
             chaos: {} panics, {} hangs, {} slowdowns, {} corruptions; {}",
            c.completed,
            c.shards,
            c.quarantined,
            self.elapsed_secs,
            self.faults_per_sec,
            c.leases,
            c.retries,
            c.steals,
            c.resumes,
            self.injected_panics,
            self.injected_hangs,
            self.injected_slowdowns,
            self.injected_corruptions,
            self.mix,
        )
    }
}

/// End-of-campaign telemetry of a bit-parallel (PPSFP) grading run:
/// how the fault list packed into words, how much of it rode the shared
/// golden tail versus falling back to serial grading, and how often the
/// serial fallback's livelock short-circuit fired.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct PpsfpTelemetry {
    /// Faults graded.
    pub total: u64,
    /// Packed fault words formed from the list (all units).
    pub words: u64,
    /// Words graded on the bit-parallel ride.
    pub ridden_words: u64,
    /// Faults packed into ridden words.
    pub packed_faults: u64,
    /// Mean lane occupancy of the packing (fraction of the word width).
    pub pack_density: f64,
    /// Faults graded by the serial fallback.
    pub fallback_faults: u64,
    /// `fallback_faults / total` (0 for an empty campaign).
    pub fallback_rate: f64,
    /// Fallback runs decided early by the verified-livelock detector.
    pub loop_short_circuits: u64,
    /// Wall-clock seconds the campaign took.
    pub elapsed_secs: f64,
    /// Overall grading throughput.
    pub faults_per_sec: f64,
    /// Verdict distribution.
    pub mix: VerdictMix,
}

impl PpsfpTelemetry {
    /// Renders the telemetry as a JSON object.
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("total".into(), Json::int(self.total)),
            ("words".into(), Json::int(self.words)),
            ("ridden_words".into(), Json::int(self.ridden_words)),
            ("packed_faults".into(), Json::int(self.packed_faults)),
            ("pack_density".into(), Json::Num(self.pack_density)),
            ("fallback_faults".into(), Json::int(self.fallback_faults)),
            ("fallback_rate".into(), Json::Num(self.fallback_rate)),
            ("loop_short_circuits".into(), Json::int(self.loop_short_circuits)),
            ("elapsed_secs".into(), Json::Num(self.elapsed_secs)),
            ("faults_per_sec".into(), Json::Num(self.faults_per_sec)),
            ("verdicts".into(), self.mix.to_json()),
        ])
    }
}

impl std::fmt::Display for PpsfpTelemetry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} faults in {:.2}s ({:.0} faults/sec); {} words (density {:.2}), \
             {} ridden; fallback {:.1}% ({} faults, {} loop short-circuits); {}",
            self.total,
            self.elapsed_secs,
            self.faults_per_sec,
            self.words,
            self.pack_density,
            self.ridden_words,
            100.0 * self.fallback_rate,
            self.fallback_faults,
            self.loop_short_circuits,
            self.mix,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::parse_json;

    #[test]
    fn telemetry_renders_as_valid_json() {
        let telemetry = CampaignTelemetry {
            total: 100,
            mix: VerdictMix { wrong_signature: 60, hang: 10, undetected: 30, ..VerdictMix::default() },
            elapsed_secs: 2.5,
            faults_per_sec: 40.0,
            warm_hit_rate: Some(0.9),
            progress: vec![ProgressSnapshot {
                done: 50,
                total: 100,
                elapsed_secs: 1.25,
                faults_per_sec: 40.0,
            }],
        };
        let doc = parse_json(&telemetry.to_json().render()).expect("valid JSON");
        assert_eq!(doc.get("total").and_then(Json::as_f64), Some(100.0));
        assert_eq!(
            doc.get("verdicts").and_then(|v| v.get("wrong_signature")).and_then(Json::as_f64),
            Some(60.0)
        );
        assert_eq!(doc.get("warm_hit_rate").and_then(Json::as_f64), Some(0.9));
        assert_eq!(doc.get("progress").and_then(Json::as_arr).map(<[Json]>::len), Some(1));
        assert!(telemetry.to_string().contains("warm-hit 90.0%"));
    }

    #[test]
    fn fleet_telemetry_renders_as_valid_json() {
        let telemetry = FleetTelemetry {
            counters: crate::metrics::FleetCounters {
                shards: 12,
                completed: 11,
                quarantined: 1,
                leases: 18,
                retries: 5,
                steals: 2,
                resumes: 3,
                late_results: 1,
            },
            injected_panics: 3,
            injected_hangs: 1,
            injected_slowdowns: 2,
            injected_corruptions: 1,
            checkpoints_rejected: 0,
            faults_graded: 500,
            faults_restored: 40,
            elapsed_secs: 1.5,
            faults_per_sec: 360.0,
            mix: VerdictMix { wrong_signature: 300, undetected: 240, ..VerdictMix::default() },
        };
        let doc = parse_json(&telemetry.to_json().render()).expect("valid JSON");
        assert_eq!(doc.get("shards").and_then(Json::as_f64), Some(12.0));
        assert_eq!(doc.get("steals").and_then(Json::as_f64), Some(2.0));
        assert_eq!(doc.get("injected_hangs").and_then(Json::as_f64), Some(1.0));
        assert_eq!(
            doc.get("verdicts").and_then(|v| v.get("wrong_signature")).and_then(Json::as_f64),
            Some(300.0)
        );
        assert!(telemetry.to_string().contains("11/12 shards"));
    }

    #[test]
    fn ppsfp_telemetry_renders_as_valid_json() {
        let telemetry = PpsfpTelemetry {
            total: 587,
            words: 10,
            ridden_words: 9,
            packed_faults: 560,
            pack_density: 0.92,
            fallback_faults: 104,
            fallback_rate: 0.177,
            loop_short_circuits: 5,
            elapsed_secs: 1.5,
            faults_per_sec: 391.3,
            mix: VerdictMix { wrong_signature: 457, hang: 54, undetected: 76, ..VerdictMix::default() },
        };
        let doc = parse_json(&telemetry.to_json().render()).expect("valid JSON");
        assert_eq!(doc.get("words").and_then(Json::as_f64), Some(10.0));
        assert_eq!(doc.get("ridden_words").and_then(Json::as_f64), Some(9.0));
        assert_eq!(doc.get("pack_density").and_then(Json::as_f64), Some(0.92));
        assert_eq!(doc.get("loop_short_circuits").and_then(Json::as_f64), Some(5.0));
        assert_eq!(
            doc.get("verdicts").and_then(|v| v.get("hang")).and_then(Json::as_f64),
            Some(54.0)
        );
        assert!(telemetry.to_string().contains("fallback 17.7%"));
        assert!(telemetry.to_string().contains("5 loop short-circuits"));
    }

    #[test]
    fn mix_totals_add_up() {
        let mix = VerdictMix {
            wrong_signature: 1,
            test_fail: 2,
            unexpected_trap: 3,
            hang: 4,
            undetected: 5,
            sim_error: 6,
        };
        assert_eq!(mix.total(), 21);
        assert_eq!(mix.detected(), 10);
    }
}
