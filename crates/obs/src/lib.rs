#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! # sbst-obs — the observability layer
//!
//! A dependency-free leaf crate every layer of the simulator can hook
//! into: per-core pipeline counters, per-cache hit/miss counters,
//! per-bus-port grant-latency histograms, a bounded structured event
//! ring, and campaign-level telemetry — plus Chrome-trace
//! (`chrome://tracing`) and JSONL exporters and a minimal hand-written
//! JSON parser/renderer (the workspace carries no serde).
//!
//! ## Design contract
//!
//! Observation is **strictly read-only with respect to the simulated
//! machine**: observers receive copies of counters and notifications of
//! events and accumulate them in their own plain-data state. Nothing an
//! observer does can change a signature, a verdict, or a cycle count —
//! the headline property test of the repository runs every SoC with and
//! without observers attached and asserts bit-identical architectural
//! results.
//!
//! The hot-path cost when disabled is a single `Option` discriminant
//! check: the simulator stores observers as `Option<Box<...>>` fields
//! that stay `None` unless explicitly attached (see
//! `SocBuilder::observe` in `sbst-soc`).

pub mod hist;
pub mod json;
pub mod metrics;
pub mod ring;
pub mod telemetry;
pub mod trace;

pub use hist::Histogram;
pub use json::{parse_json, Json, JsonError};
pub use metrics::{
    BusMetrics, BusObs, CacheCounters, CoreCounters, CoreMetrics, CoreSample, FleetCounters,
    MetricsHub, PortBound, PortMetrics,
};
pub use ring::EventRing;
pub use telemetry::{CampaignTelemetry, FleetTelemetry, PpsfpTelemetry, ProgressSnapshot, VerdictMix};
pub use trace::{TraceEvent, TraceKind};
