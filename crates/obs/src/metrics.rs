//! Aggregated metrics: per-core counters, per-cache counters, per-port
//! bus statistics, and the [`MetricsHub`] that collects them all at the
//! end of an observed run together with the merged event ring.
//!
//! The hub is plain owned data with `PartialEq` throughout, so the
//! determinism test can assert two observed runs produced *identical*
//! metrics, bit for bit.

use crate::hist::Histogram;
use crate::json::{parse_json, Json};
use crate::ring::EventRing;
use crate::trace::{TraceEvent, TraceKind};

/// Pipeline counters of one core (copied out of its CSR file).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CoreCounters {
    /// Cycles the core has stepped.
    pub cycles: u64,
    /// Instructions retired.
    pub retired: u64,
    /// Instructions issued into the execute stage.
    pub issued: u64,
    /// Cycles the fetch stage stalled (instruction-side).
    pub if_stalls: u64,
    /// Cycles the memory stage stalled (data-side).
    pub mem_stalls: u64,
    /// Cycles lost to hazard interlocks.
    pub haz_stalls: u64,
    /// Operand reads satisfied by a forwarding path instead of the
    /// register file.
    pub fwd_uses: u64,
}

impl CoreCounters {
    /// Retired instructions per cycle (0.0 before the first cycle).
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.retired as f64 / self.cycles as f64
        }
    }
}

/// Hit/miss counters of one cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheCounters {
    /// Read lookups that hit.
    pub read_hits: u64,
    /// Read lookups that missed.
    pub read_misses: u64,
    /// Write lookups that hit.
    pub write_hits: u64,
    /// Write lookups that missed.
    pub write_misses: u64,
    /// Lines dropped by invalidation.
    pub invalidations: u64,
}

impl CacheCounters {
    /// Total hits.
    pub fn hits(&self) -> u64 {
        self.read_hits + self.write_hits
    }

    /// Total misses.
    pub fn misses(&self) -> u64 {
        self.read_misses + self.write_misses
    }

    /// Total lookups.
    pub fn accesses(&self) -> u64 {
        self.hits() + self.misses()
    }

    /// Hit rate in `[0, 1]` (0.0 when never accessed).
    pub fn hit_rate(&self) -> f64 {
        if self.accesses() == 0 {
            0.0
        } else {
            self.hits() as f64 / self.accesses() as f64
        }
    }
}

/// One per-cycle snapshot of a core, taken by the SoC observer to
/// compute deltas (events) between consecutive cycles.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CoreSample {
    /// Counters at this cycle.
    pub counters: CoreCounters,
    /// Instruction-cache counters, if the core has an I$.
    pub icache: Option<CacheCounters>,
    /// Data-cache counters, if the core has a D$.
    pub dcache: Option<CacheCounters>,
    /// PC the fetch unit will fetch next.
    pub next_pc: u32,
    /// PC of the packet currently entering execute, if any.
    pub ex_pc: Option<u32>,
    /// Whether the core has halted.
    pub halted: bool,
}

/// Final metrics of one core.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct CoreMetrics {
    /// Pipeline counters.
    pub counters: CoreCounters,
    /// Instruction-cache counters, if present.
    pub icache: Option<CacheCounters>,
    /// Data-cache counters, if present.
    pub dcache: Option<CacheCounters>,
}

/// The certified worst-case grant latency of one bus port — the
/// analytical prediction an observed `max_grant_wait` is judged
/// against. Computed by the memory layer's `bounds` module (this crate
/// only carries the value so it can ride through metrics and reports).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PortBound {
    /// Any single request is granted within this many wait cycles.
    Bounded(u64),
    /// No finite bound exists: the arbitration policy lets other
    /// masters starve this port indefinitely. Certification must flag
    /// this — running an STL on such a port voids the determinism
    /// argument by construction.
    Unbounded,
}

impl PortBound {
    /// Whether `observed` wait cycles respect this bound. An unbounded
    /// port is never violated — there is nothing to violate, which is
    /// exactly why certification rejects unbounded ports up front.
    pub fn admits(&self, observed: u64) -> bool {
        match self {
            PortBound::Bounded(b) => observed <= *b,
            PortBound::Unbounded => true,
        }
    }

    /// The finite bound, if one exists.
    pub fn cycles(&self) -> Option<u64> {
        match self {
            PortBound::Bounded(b) => Some(*b),
            PortBound::Unbounded => None,
        }
    }
}

impl std::fmt::Display for PortBound {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PortBound::Bounded(b) => write!(f, "{b}"),
            PortBound::Unbounded => write!(f, "unbounded"),
        }
    }
}

/// Final metrics of one bus master port.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct PortMetrics {
    /// Requests submitted on the port.
    pub requests: u64,
    /// Requests granted.
    pub grants: u64,
    /// Total cycles requests on this port spent waiting.
    pub wait_cycles: u64,
    /// Longest wait of any single request (including a still-pending
    /// one, so a starved port reports its growing wait).
    pub max_grant_wait: u64,
    /// Certified worst-case grant latency, when the platform computed
    /// one for this port.
    pub bound: Option<PortBound>,
    /// Distribution of per-grant wait times.
    pub wait_hist: Histogram,
}

/// Final metrics of the shared bus.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct BusMetrics {
    /// Transactions completed.
    pub transactions: u64,
    /// Cycles the bus was busy with a transaction.
    pub busy_cycles: u64,
    /// Per-master-port metrics, port 0 first.
    pub ports: Vec<PortMetrics>,
}

/// The bus-side observer: owns the grant-latency histograms and the
/// bus half of the event ring. Attached to the bus as an
/// `Option<Box<BusObs>>` — `None` costs one branch per step.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BusObs {
    cycle: u64,
    requests: Vec<u64>,
    wait_hist: Vec<Histogram>,
    ring: EventRing,
}

impl BusObs {
    /// An observer for a bus with `ports` master ports, recording at
    /// most `ring_capacity` events.
    pub fn new(ports: usize, ring_capacity: usize) -> BusObs {
        BusObs {
            cycle: 0,
            requests: vec![0; ports],
            wait_hist: vec![Histogram::new(); ports],
            ring: EventRing::new(ring_capacity),
        }
    }

    /// Called once at the end of every bus step.
    pub fn tick(&mut self) {
        self.cycle += 1;
    }

    /// Called when a master submits a request.
    pub fn on_request(&mut self, port: usize) {
        if let Some(r) = self.requests.get_mut(port) {
            *r += 1;
        }
    }

    /// Called when the arbiter grants a pending request.
    pub fn on_grant(&mut self, port: usize, wait: u64, addr: u32, write: bool) {
        if let Some(h) = self.wait_hist.get_mut(port) {
            h.record(wait);
        }
        self.ring.push(TraceEvent {
            cycle: self.cycle,
            core: None,
            kind: TraceKind::BusGrant {
                port: port as u8,
                wait: wait.min(u64::from(u32::MAX)) as u32,
                addr,
                write,
            },
        });
    }

    /// Requests submitted per port so far.
    pub fn requests(&self) -> &[u64] {
        &self.requests
    }

    /// Grant-wait histogram of one port.
    pub fn wait_hist(&self, port: usize) -> &Histogram {
        &self.wait_hist[port]
    }

    /// The bus half of the event ring.
    pub fn ring(&self) -> &EventRing {
        &self.ring
    }

    /// Consumes the observer into its parts: per-port request counts,
    /// per-port wait histograms, and the event ring.
    pub fn into_parts(self) -> (Vec<u64>, Vec<Histogram>, EventRing) {
        (self.requests, self.wait_hist, self.ring)
    }
}

/// Recovery counters of a fleet-campaign orchestrator run: how many
/// shards were leased, how often workers had to be retried, stolen
/// from, or quarantined, and how much work checkpoints saved. Attached
/// to a [`MetricsHub`] so fleet recovery behaviour rides through the
/// existing summary-table / JSONL exporters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FleetCounters {
    /// Shards in the plan.
    pub shards: u64,
    /// Shards whose verdicts were accepted.
    pub completed: u64,
    /// Shards that exhausted their retry budget.
    pub quarantined: u64,
    /// Leases granted (first tries + retries + steals).
    pub leases: u64,
    /// Failed attempts re-scheduled with backoff.
    pub retries: u64,
    /// Expired leases revoked and re-issued to another worker.
    pub steals: u64,
    /// Attempts that restored graded faults from a shard checkpoint.
    pub resumes: u64,
    /// Results that arrived after their lease had been revoked (or the
    /// shard already completed) and were dropped.
    pub late_results: u64,
}

/// Everything one observed run produced: final counters of every layer
/// plus the merged, cycle-sorted event window.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct MetricsHub {
    /// SoC cycles simulated.
    pub cycles: u64,
    /// Per-core metrics, core 0 first.
    pub cores: Vec<CoreMetrics>,
    /// Shared-bus metrics.
    pub bus: BusMetrics,
    /// Merged trace events, sorted by cycle (stable: core events before
    /// bus events within a cycle).
    pub events: Vec<TraceEvent>,
    /// Events lost to ring bounds.
    pub dropped_events: u64,
    /// SEU strikes rolled.
    pub seu_strikes: u64,
    /// SEU strikes that corrupted live state.
    pub seu_landed: u64,
    /// Requests issued by the traffic injector, if one was configured.
    pub injector_requests: Option<u64>,
    /// Fleet-orchestrator recovery counters, when the hub describes a
    /// fleet campaign run rather than a single SoC simulation.
    pub fleet: Option<FleetCounters>,
}

impl MetricsHub {
    /// Renders a fixed-width human-readable summary table.
    pub fn summary_table(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("cycles simulated: {}\n", self.cycles));
        out.push_str(&format!(
            "{:<6} {:>10} {:>10} {:>6} {:>9} {:>9} {:>9} {:>9} {:>7} {:>7}\n",
            "core", "cycles", "retired", "ipc", "if-stall", "mem-stall", "haz-stall", "fwd-uses",
            "i$-hit", "d$-hit",
        ));
        for (i, core) in self.cores.iter().enumerate() {
            let c = &core.counters;
            let rate = |cache: &Option<CacheCounters>| match cache {
                Some(s) if s.accesses() > 0 => format!("{:6.2}%", 100.0 * s.hit_rate()),
                Some(_) => "  cold ".to_string(),
                None => "   -   ".to_string(),
            };
            out.push_str(&format!(
                "{:<6} {:>10} {:>10} {:>6.2} {:>9} {:>9} {:>9} {:>9} {} {}\n",
                format!("core{i}"),
                c.cycles,
                c.retired,
                c.ipc(),
                c.if_stalls,
                c.mem_stalls,
                c.haz_stalls,
                c.fwd_uses,
                rate(&core.icache),
                rate(&core.dcache),
            ));
        }
        out.push_str(&format!(
            "bus: {} transactions, {} busy cycles\n",
            self.bus.transactions, self.bus.busy_cycles
        ));
        out.push_str(&format!(
            "{:<6} {:>9} {:>9} {:>11} {:>9} {:>9} {:>10}\n",
            "port", "requests", "grants", "wait-cycles", "max-wait", "mean-wait", "bound",
        ));
        for (p, port) in self.bus.ports.iter().enumerate() {
            let bound = match port.bound {
                None => "-".to_string(),
                Some(b) => b.to_string(),
            };
            let verdict = match port.bound {
                Some(b) if !b.admits(port.max_grant_wait) => " VIOLATED",
                _ => "",
            };
            out.push_str(&format!(
                "{:<6} {:>9} {:>9} {:>11} {:>9} {:>9.2} {:>10}{}\n",
                format!("port{p}"),
                port.requests,
                port.grants,
                port.wait_cycles,
                port.max_grant_wait,
                port.wait_hist.mean(),
                bound,
                verdict,
            ));
        }
        out.push_str(&format!(
            "events: {} kept, {} dropped; seu: {} rolled, {} landed",
            self.events.len(),
            self.dropped_events,
            self.seu_strikes,
            self.seu_landed,
        ));
        if let Some(inj) = self.injector_requests {
            out.push_str(&format!("; injector: {inj} requests"));
        }
        out.push('\n');
        if let Some(f) = &self.fleet {
            out.push_str(&format!(
                "fleet: {}/{} shards completed, {} quarantined; {} leases, \
                 {} retries, {} steals, {} resumes, {} late results\n",
                f.completed,
                f.shards,
                f.quarantined,
                f.leases,
                f.retries,
                f.steals,
                f.resumes,
                f.late_results,
            ));
        }
        out
    }

    /// Renders the run as a Chrome-trace (`chrome://tracing` /
    /// Perfetto) JSON document: one thread per core plus a `soc`
    /// thread, instant events from the ring, and final counter samples.
    pub fn to_chrome_trace(&self) -> String {
        let mut trace = Vec::new();
        let meta = |tid: u64, name: &str| {
            Json::Obj(vec![
                ("name".into(), Json::Str("thread_name".into())),
                ("ph".into(), Json::Str("M".into())),
                ("pid".into(), Json::int(0)),
                ("tid".into(), Json::int(tid)),
                (
                    "args".into(),
                    Json::Obj(vec![("name".into(), Json::Str(name.into()))]),
                ),
            ])
        };
        trace.push(meta(0, "soc"));
        for i in 0..self.cores.len() {
            trace.push(meta(i as u64 + 1, &format!("core{i}")));
        }
        for event in &self.events {
            let tid = event.core.map_or(0, |c| u64::from(c) + 1);
            let args = parse_json(&event.args_json()).unwrap_or(Json::Obj(Vec::new()));
            trace.push(Json::Obj(vec![
                ("name".into(), Json::Str(event.kind.name().into())),
                ("ph".into(), Json::Str("i".into())),
                ("s".into(), Json::Str("t".into())),
                ("ts".into(), Json::int(event.cycle)),
                ("pid".into(), Json::int(0)),
                ("tid".into(), Json::int(tid)),
                ("args".into(), args),
            ]));
        }
        for (i, core) in self.cores.iter().enumerate() {
            let c = &core.counters;
            trace.push(Json::Obj(vec![
                ("name".into(), Json::Str("pipeline".into())),
                ("ph".into(), Json::Str("C".into())),
                ("ts".into(), Json::int(self.cycles)),
                ("pid".into(), Json::int(0)),
                ("tid".into(), Json::int(i as u64 + 1)),
                (
                    "args".into(),
                    Json::Obj(vec![
                        ("retired".into(), Json::int(c.retired)),
                        ("if_stalls".into(), Json::int(c.if_stalls)),
                        ("mem_stalls".into(), Json::int(c.mem_stalls)),
                        ("haz_stalls".into(), Json::int(c.haz_stalls)),
                        ("fwd_uses".into(), Json::int(c.fwd_uses)),
                    ]),
                ),
            ]));
        }
        Json::Obj(vec![("traceEvents".into(), Json::Arr(trace))]).render()
    }

    /// Renders the event window as JSONL: one compact object per line
    /// (`cycle`, `core`, `kind`, `args`), ready for `jq`-style
    /// filtering.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for event in &self.events {
            let core = event.core.map_or("null".to_string(), |c| c.to_string());
            out.push_str(&format!(
                "{{\"cycle\":{},\"core\":{},\"kind\":\"{}\",\"args\":{}}}\n",
                event.cycle,
                core,
                event.kind.name(),
                event.args_json(),
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_hub() -> MetricsHub {
        let mut bus_obs = BusObs::new(2, 8);
        bus_obs.on_request(0);
        bus_obs.tick();
        bus_obs.on_grant(0, 3, 0x2000_0000, true);
        let (requests, hists, ring) = bus_obs.into_parts();
        let mut hist_iter = hists.into_iter();
        MetricsHub {
            cycles: 100,
            cores: vec![CoreMetrics {
                counters: CoreCounters {
                    cycles: 100,
                    retired: 80,
                    issued: 90,
                    if_stalls: 5,
                    mem_stalls: 3,
                    haz_stalls: 2,
                    fwd_uses: 11,
                },
                icache: Some(CacheCounters {
                    read_hits: 70,
                    read_misses: 10,
                    ..CacheCounters::default()
                }),
                dcache: None,
            }],
            bus: BusMetrics {
                transactions: 1,
                busy_cycles: 8,
                ports: vec![
                    PortMetrics {
                        requests: requests[0],
                        grants: 1,
                        wait_cycles: 3,
                        max_grant_wait: 3,
                        bound: Some(PortBound::Bounded(44)),
                        wait_hist: hist_iter.next().expect("port 0"),
                    },
                    PortMetrics { wait_hist: hist_iter.next().expect("port 1"), ..PortMetrics::default() },
                ],
            },
            events: {
                let mut events = vec![TraceEvent {
                    cycle: 1,
                    core: Some(0),
                    kind: TraceKind::Fetch { pc: 0x400, slots: 2 },
                }];
                events.extend(ring.iter());
                events
            },
            dropped_events: 0,
            seu_strikes: 2,
            seu_landed: 1,
            injector_requests: Some(7),
            fleet: Some(FleetCounters {
                shards: 12,
                completed: 11,
                quarantined: 1,
                leases: 17,
                retries: 4,
                steals: 2,
                resumes: 3,
                late_results: 1,
            }),
        }
    }

    #[test]
    fn chrome_trace_is_valid_json_with_expected_shape() {
        let hub = sample_hub();
        let doc = parse_json(&hub.to_chrome_trace()).expect("valid trace JSON");
        let events = doc.get("traceEvents").and_then(Json::as_arr).expect("traceEvents array");
        // 2 thread-name records, 2 instants, 1 counter sample.
        assert_eq!(events.len(), 5);
        assert!(events.iter().any(|e| {
            e.get("ph").and_then(Json::as_str) == Some("i")
                && e.get("name").and_then(Json::as_str) == Some("bus-grant")
        }));
    }

    #[test]
    fn jsonl_lines_each_parse() {
        let hub = sample_hub();
        let jsonl = hub.to_jsonl();
        assert_eq!(jsonl.lines().count(), hub.events.len());
        for line in jsonl.lines() {
            parse_json(line).expect("valid JSONL line");
        }
    }

    #[test]
    fn summary_table_mentions_every_section() {
        let table = sample_hub().summary_table();
        for needle in [
            "core0",
            "bus:",
            "port0",
            "seu: 2 rolled",
            "injector: 7 requests",
            "fleet: 11/12 shards completed",
            "2 steals",
        ] {
            assert!(table.contains(needle), "missing {needle:?} in:\n{table}");
        }
    }

    #[test]
    fn bus_obs_counts_requests_and_histograms_waits() {
        let mut obs = BusObs::new(3, 4);
        obs.on_request(2);
        obs.on_request(2);
        obs.on_grant(2, 5, 0x0, false);
        assert_eq!(obs.requests()[2], 2);
        assert_eq!(obs.wait_hist(2).count(), 1);
        assert_eq!(obs.wait_hist(2).mass(), 5);
        assert_eq!(obs.ring().len(), 1);
    }
}
