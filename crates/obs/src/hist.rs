//! Log₂-bucketed latency histograms.
//!
//! Grant-latency distributions span five orders of magnitude between a
//! quiet bus (0-cycle waits) and a saturated one (whole-burst waits), so
//! the histogram buckets by bit length: bucket 0 holds exact zeros,
//! bucket `k` holds values in `[2^(k-1), 2^k)`. Alongside the buckets
//! the histogram keeps exact totals — count, mass (sum of recorded
//! values), non-zero count and maximum — so consistency properties
//! ("histogram mass equals the port's total wait cycles") can be
//! asserted without rounding.

/// Number of buckets: zeros plus one bucket per possible bit length.
pub const BUCKETS: usize = 65;

/// A log₂-bucketed histogram of `u64` samples with exact side totals.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    counts: Vec<u64>,
    count: u64,
    mass: u64,
    nonzero: u64,
    max: u64,
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Histogram {
        Histogram { counts: vec![0; BUCKETS], count: 0, mass: 0, nonzero: 0, max: 0 }
    }

    /// Bucket index of a value: 0 for 0, else its bit length.
    pub fn bucket_of(value: u64) -> usize {
        if value == 0 {
            0
        } else {
            64 - value.leading_zeros() as usize
        }
    }

    /// Inclusive-exclusive value range `[lo, hi)` of bucket `i` (bucket 0
    /// is the exact-zero bucket, reported as `[0, 1)`).
    pub fn bucket_range(i: usize) -> (u64, u64) {
        match i {
            0 => (0, 1),
            64 => (1 << 63, u64::MAX),
            _ => (1 << (i - 1), 1 << i),
        }
    }

    /// Records one sample.
    pub fn record(&mut self, value: u64) {
        self.counts[Histogram::bucket_of(value)] += 1;
        self.count += 1;
        self.mass += value;
        if value > 0 {
            self.nonzero += 1;
        }
        self.max = self.max.max(value);
    }

    /// Samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of every recorded value (the histogram's mass).
    pub fn mass(&self) -> u64 {
        self.mass
    }

    /// Samples with a non-zero value.
    pub fn nonzero(&self) -> u64 {
        self.nonzero
    }

    /// Largest recorded value.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean of the recorded values (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mass as f64 / self.count as f64
        }
    }

    /// Per-bucket counts, zero-bucket first.
    pub fn buckets(&self) -> &[u64] {
        &self.counts
    }

    /// `(range, count)` for every non-empty bucket, low to high.
    pub fn occupied(&self) -> Vec<((u64, u64), u64)> {
        self.counts
            .iter()
            .enumerate()
            .filter(|&(_, &c)| c > 0)
            .map(|(i, &c)| (Histogram::bucket_range(i), c))
            .collect()
    }
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucketing_is_by_bit_length() {
        assert_eq!(Histogram::bucket_of(0), 0);
        assert_eq!(Histogram::bucket_of(1), 1);
        assert_eq!(Histogram::bucket_of(2), 2);
        assert_eq!(Histogram::bucket_of(3), 2);
        assert_eq!(Histogram::bucket_of(4), 3);
        assert_eq!(Histogram::bucket_of(u64::MAX), 64);
    }

    #[test]
    fn totals_are_exact() {
        let mut h = Histogram::new();
        for v in [0u64, 0, 1, 7, 8, 100] {
            h.record(v);
        }
        assert_eq!(h.count(), 6);
        assert_eq!(h.mass(), 116);
        assert_eq!(h.nonzero(), 4);
        assert_eq!(h.max(), 100);
        assert!((h.mean() - 116.0 / 6.0).abs() < 1e-12);
        assert_eq!(h.buckets().iter().sum::<u64>(), h.count());
    }

    #[test]
    fn every_value_lands_inside_its_bucket_range() {
        for v in [0u64, 1, 2, 3, 4, 31, 32, 1000, u64::MAX / 2, u64::MAX] {
            let (lo, hi) = Histogram::bucket_range(Histogram::bucket_of(v));
            assert!(v >= lo && (v < hi || (v == u64::MAX && hi == u64::MAX)), "{v}");
        }
    }
}
