//! Structured trace events.
//!
//! Every notable micro-architectural moment of a run can be recorded as
//! one small, `Copy`able [`TraceEvent`] in a bounded [`EventRing`]
//! (bounded so observation can never grow without limit on a hung run).
//! Events carry the cycle they occurred in and, where meaningful, the
//! core they belong to — enough to render a `chrome://tracing` timeline
//! of a whole boot-time STL run.
//!
//! [`EventRing`]: crate::ring::EventRing

/// What happened.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceKind {
    /// A fetch packet entered the pipeline (one or two instructions).
    Fetch {
        /// PC of the first issued instruction.
        pc: u32,
        /// Instructions issued this cycle (1 or 2).
        slots: u8,
    },
    /// The instruction cache missed.
    ICacheMiss,
    /// The data cache missed (read or write lookup).
    DCacheMiss,
    /// The bus arbiter granted a port's pending request.
    BusGrant {
        /// Granted master port.
        port: u8,
        /// Cycles the request waited for this grant.
        wait: u32,
        /// Target address of the transaction.
        addr: u32,
        /// Whether the transaction writes (write or swap).
        write: bool,
    },
    /// A transient upset (SEU) was rolled.
    SeuStrike {
        /// Whether the strike corrupted real state (vs was absorbed).
        landed: bool,
    },
    /// The memory-mapped watchdog bit.
    WatchdogBite,
    /// The supervisor quarantined a core.
    Quarantine {
        /// Human-readable failure cause of the last attempt.
        cause: &'static str,
    },
    /// A fleet shard was leased to a worker. For fleet events the
    /// `cycle` field carries milliseconds since the fleet run started
    /// and `core` carries the worker id.
    ShardLease {
        /// Shard index within the fleet plan.
        shard: u32,
        /// Attempt number (0 = first try).
        attempt: u8,
    },
    /// A failed shard attempt was scheduled for retry after backoff.
    ShardRetry {
        /// Shard index within the fleet plan.
        shard: u32,
        /// Failures accumulated so far (drives the exponential backoff).
        failures: u8,
        /// Jittered backoff delay before the next lease, in ms.
        backoff_ms: u32,
        /// Human-readable failure cause.
        cause: &'static str,
    },
    /// An expired lease was revoked and its shard put back up for
    /// stealing by another worker.
    ShardSteal {
        /// Shard index within the fleet plan.
        shard: u32,
    },
    /// A shard exhausted its retry budget and was quarantined.
    ShardQuarantine {
        /// Shard index within the fleet plan.
        shard: u32,
        /// Human-readable failure cause of the last attempt.
        cause: &'static str,
    },
    /// A shard's verdicts were accepted.
    ShardDone {
        /// Shard index within the fleet plan.
        shard: u32,
        /// Faults restored from its checkpoint instead of re-graded.
        restored: u32,
    },
}

impl TraceKind {
    /// Short stable name (Chrome-trace event name, JSONL `"kind"`).
    pub fn name(&self) -> &'static str {
        match self {
            TraceKind::Fetch { .. } => "fetch",
            TraceKind::ICacheMiss => "icache-miss",
            TraceKind::DCacheMiss => "dcache-miss",
            TraceKind::BusGrant { .. } => "bus-grant",
            TraceKind::SeuStrike { .. } => "seu-strike",
            TraceKind::WatchdogBite => "watchdog-bite",
            TraceKind::Quarantine { .. } => "quarantine",
            TraceKind::ShardLease { .. } => "shard-lease",
            TraceKind::ShardRetry { .. } => "shard-retry",
            TraceKind::ShardSteal { .. } => "shard-steal",
            TraceKind::ShardQuarantine { .. } => "shard-quarantine",
            TraceKind::ShardDone { .. } => "shard-done",
        }
    }
}

/// One recorded event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// Cycle the event occurred in.
    pub cycle: u64,
    /// Core the event belongs to (`None` for SoC-level events such as
    /// bus grants of the traffic injector or the watchdog).
    pub core: Option<u8>,
    /// What happened.
    pub kind: TraceKind,
}

impl TraceEvent {
    /// Renders the event's payload as a Chrome-trace / JSONL `args`
    /// object body (the `{...}` without braces is inconvenient, so the
    /// whole object is returned).
    pub fn args_json(&self) -> String {
        match self.kind {
            TraceKind::Fetch { pc, slots } => {
                format!("{{\"pc\":\"{pc:#x}\",\"slots\":{slots}}}")
            }
            TraceKind::BusGrant { port, wait, addr, write } => format!(
                "{{\"port\":{port},\"wait\":{wait},\"addr\":\"{addr:#x}\",\"write\":{write}}}"
            ),
            TraceKind::SeuStrike { landed } => format!("{{\"landed\":{landed}}}"),
            TraceKind::Quarantine { cause } => {
                format!("{{\"cause\":{}}}", crate::json::escape(cause))
            }
            TraceKind::ShardLease { shard, attempt } => {
                format!("{{\"shard\":{shard},\"attempt\":{attempt}}}")
            }
            TraceKind::ShardRetry { shard, failures, backoff_ms, cause } => format!(
                "{{\"shard\":{shard},\"failures\":{failures},\"backoff_ms\":{backoff_ms},\"cause\":{}}}",
                crate::json::escape(cause)
            ),
            TraceKind::ShardSteal { shard } => format!("{{\"shard\":{shard}}}"),
            TraceKind::ShardQuarantine { shard, cause } => {
                format!("{{\"shard\":{shard},\"cause\":{}}}", crate::json::escape(cause))
            }
            TraceKind::ShardDone { shard, restored } => {
                format!("{{\"shard\":{shard},\"restored\":{restored}}}")
            }
            TraceKind::ICacheMiss | TraceKind::DCacheMiss | TraceKind::WatchdogBite => {
                "{}".to_string()
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn args_render_as_valid_json() {
        let events = [
            TraceEvent { cycle: 1, core: Some(0), kind: TraceKind::Fetch { pc: 0x400, slots: 2 } },
            TraceEvent { cycle: 2, core: None, kind: TraceKind::WatchdogBite },
            TraceEvent {
                cycle: 3,
                core: None,
                kind: TraceKind::BusGrant { port: 6, wait: 17, addr: 0x100, write: false },
            },
            TraceEvent { cycle: 4, core: Some(2), kind: TraceKind::Quarantine { cause: "x\"y" } },
            TraceEvent {
                cycle: 5,
                core: Some(1),
                kind: TraceKind::ShardLease { shard: 7, attempt: 0 },
            },
            TraceEvent {
                cycle: 6,
                core: Some(1),
                kind: TraceKind::ShardRetry {
                    shard: 7,
                    failures: 2,
                    backoff_ms: 12,
                    cause: "worker panic",
                },
            },
            TraceEvent { cycle: 7, core: None, kind: TraceKind::ShardSteal { shard: 7 } },
            TraceEvent {
                cycle: 8,
                core: None,
                kind: TraceKind::ShardQuarantine { shard: 7, cause: "hang" },
            },
            TraceEvent {
                cycle: 9,
                core: Some(0),
                kind: TraceKind::ShardDone { shard: 7, restored: 3 },
            },
        ];
        for e in events {
            crate::json::parse_json(&e.args_json()).expect("valid args");
            assert!(!e.kind.name().is_empty());
        }
    }
}
