//! A bounded ring of trace events.

use std::collections::VecDeque;

use crate::trace::TraceEvent;

/// A bounded FIFO of [`TraceEvent`]s: once full, pushing drops the
/// *oldest* event and counts it, so the ring always holds the most
/// recent window of activity and the loss is observable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EventRing {
    buf: VecDeque<TraceEvent>,
    capacity: usize,
    dropped: u64,
}

impl EventRing {
    /// An empty ring holding at most `capacity` events (minimum 1).
    pub fn new(capacity: usize) -> EventRing {
        let capacity = capacity.max(1);
        EventRing { buf: VecDeque::with_capacity(capacity), capacity, dropped: 0 }
    }

    /// Records an event, evicting the oldest if full.
    pub fn push(&mut self, event: TraceEvent) {
        if self.buf.len() == self.capacity {
            self.buf.pop_front();
            self.dropped += 1;
        }
        self.buf.push_back(event);
    }

    /// Events currently held, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = TraceEvent> + '_ {
        self.buf.iter().copied()
    }

    /// Events currently held, oldest first, as an owned vector.
    pub fn to_vec(&self) -> Vec<TraceEvent> {
        self.buf.iter().copied().collect()
    }

    /// Events held.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether the ring is empty.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Maximum events held.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Events evicted because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::TraceKind;

    fn ev(cycle: u64) -> TraceEvent {
        TraceEvent { cycle, core: None, kind: TraceKind::WatchdogBite }
    }

    #[test]
    fn keeps_newest_and_counts_drops() {
        let mut r = EventRing::new(3);
        for c in 0..5 {
            r.push(ev(c));
        }
        assert_eq!(r.len(), 3);
        assert_eq!(r.dropped(), 2);
        let cycles: Vec<u64> = r.iter().map(|e| e.cycle).collect();
        assert_eq!(cycles, vec![2, 3, 4]);
    }

    #[test]
    fn zero_capacity_is_clamped() {
        let mut r = EventRing::new(0);
        r.push(ev(1));
        assert_eq!(r.len(), 1);
        assert_eq!(r.capacity(), 1);
    }
}
