//! A minimal JSON value type, parser and renderer.
//!
//! The workspace deliberately carries no external dependencies, so the
//! observability layer brings its own JSON: enough to *validate* the
//! Chrome traces it emits, to read and extend `BENCH_campaign.json`,
//! and to check golden-signature fixtures into version control. Objects
//! preserve insertion order (rendering is deterministic), numbers are
//! `f64`, and parsing accepts exactly the JSON grammar — no comments,
//! no trailing commas.

/// A JSON value. Objects are ordered key/value lists (insertion order is
/// preserved through a parse/render round trip).
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object (ordered).
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object field by key (first match).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Sets (replacing) or appends an object field. No-op on non-objects.
    pub fn set(&mut self, key: &str, value: Json) {
        if let Json::Obj(fields) = self {
            match fields.iter_mut().find(|(k, _)| k == key) {
                Some((_, v)) => *v = value,
                None => fields.push((key.to_string(), value)),
            }
        }
    }

    /// The numeric value, if a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The string value, if a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The elements, if an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(a) => Some(a),
            _ => None,
        }
    }

    /// Convenience constructor for an integer-valued number.
    pub fn int(v: u64) -> Json {
        Json::Num(v as f64)
    }

    /// Renders compact JSON (no whitespace).
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Renders with `indent`-space indentation (human-facing files).
    pub fn render_pretty(&self, indent: usize) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(indent), 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        let (nl, pad, pad_in) = match indent {
            Some(w) => ("\n", " ".repeat(w * depth), " ".repeat(w * (depth + 1))),
            None => ("", String::new(), String::new()),
        };
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => out.push_str(&render_number(*n)),
            Json::Str(s) => out.push_str(&escape(s)),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(nl);
                    out.push_str(&pad_in);
                    item.write(out, indent, depth + 1);
                }
                out.push_str(nl);
                out.push_str(&pad);
                out.push(']');
            }
            Json::Obj(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(nl);
                    out.push_str(&pad_in);
                    out.push_str(&escape(k));
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.write(out, indent, depth + 1);
                }
                out.push_str(nl);
                out.push_str(&pad);
                out.push('}');
            }
        }
    }
}

/// Renders a number the way JSON expects: integers without a fraction,
/// everything else through Rust's shortest-roundtrip float formatting.
fn render_number(n: f64) -> String {
    if n.is_finite() && n.fract() == 0.0 && n.abs() < 9.0e15 {
        format!("{}", n as i64)
    } else if n.is_finite() {
        format!("{n}")
    } else {
        // JSON has no Inf/NaN; null is the least-wrong rendering.
        "null".to_string()
    }
}

/// Escapes a string into a quoted JSON string literal.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// A parse failure: byte offset plus a static description.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the failure.
    pub pos: usize,
    /// What was wrong.
    pub msg: &'static str,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.pos, self.msg)
    }
}

impl std::error::Error for JsonError {}

/// Parses a complete JSON document (trailing whitespace allowed,
/// trailing garbage rejected).
///
/// # Errors
///
/// Returns the first [`JsonError`] encountered.
pub fn parse_json(text: &str) -> Result<Json, JsonError> {
    let mut p = Parser { bytes: text.as_bytes(), pos: 0 };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after document"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &'static str) -> JsonError {
        JsonError { pos: self.pos, msg }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8, msg: &'static str) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(msg))
        }
    }

    fn literal(&mut self, lit: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a value")),
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[', "expected '['")?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{', "expected '{'")?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':', "expected ':'")?;
            self.skip_ws();
            fields.push((key, self.value()?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"', "expected '\"'")?;
        let mut out = String::new();
        loop {
            let Some(b) = self.peek() else {
                return Err(self.err("unterminated string"));
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err(self.err("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            if self.pos + 4 > self.bytes.len() {
                                return Err(self.err("truncated \\u escape"));
                            }
                            let hex =
                                std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
                                    .map_err(|_| self.err("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs are not needed for the
                            // ASCII-only documents this crate emits;
                            // lone surrogates render as U+FFFD.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                // Multi-byte UTF-8: copy continuation bytes verbatim.
                b => {
                    let start = self.pos - 1;
                    let len = utf8_len(b);
                    if len == 0 || start + len > self.bytes.len() {
                        return Err(self.err("invalid UTF-8 in string"));
                    }
                    self.pos = start + len;
                    let s = std::str::from_utf8(&self.bytes[start..start + len])
                        .map_err(|_| self.err("invalid UTF-8 in string"))?;
                    out.push_str(s);
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("bad number"))?;
        text.parse::<f64>().map(Json::Num).map_err(|_| JsonError {
            pos: start,
            msg: "bad number",
        })
    }
}

fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7f => 1,
        0xc0..=0xdf => 2,
        0xe0..=0xef => 3,
        0xf0..=0xf7 => 4,
        _ => 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_a_nested_document() {
        let text = r#"{"a":[1,2.5,-3e2],"b":{"c":"x\"\\\n","d":null,"e":true},"f":[]}"#;
        let v = parse_json(text).expect("parses");
        assert_eq!(parse_json(&v.render()).expect("re-parses"), v);
        assert_eq!(v.get("a").and_then(Json::as_arr).map(<[Json]>::len), Some(3));
        assert_eq!(v.get("b").and_then(|b| b.get("c")).and_then(Json::as_str), Some("x\"\\\n"));
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in ["", "{", "[1,]", "{\"a\":}", "tru", "1 2", "\"\\q\"", "{\"a\" 1}"] {
            assert!(parse_json(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn preserves_object_order() {
        let v = parse_json(r#"{"z":1,"a":2,"m":3}"#).expect("parses");
        assert_eq!(v.render(), r#"{"z":1,"a":2,"m":3}"#);
    }

    #[test]
    fn set_replaces_and_appends() {
        let mut v = parse_json(r#"{"a":1}"#).expect("parses");
        v.set("a", Json::int(2));
        v.set("b", Json::Str("x".into()));
        assert_eq!(v.render(), r#"{"a":2,"b":"x"}"#);
    }

    #[test]
    fn pretty_rendering_parses_back() {
        let v = parse_json(r#"{"a":[1,{"b":true}],"c":"s"}"#).expect("parses");
        let pretty = v.render_pretty(2);
        assert_eq!(parse_json(&pretty).expect("re-parses"), v);
    }

    #[test]
    fn unicode_survives() {
        let v = parse_json("\"caf\u{e9} \\u00e9\"").expect("parses");
        assert_eq!(v.as_str(), Some("café é"));
    }

    #[test]
    fn integers_render_without_fraction() {
        assert_eq!(Json::Num(3.0).render(), "3");
        assert_eq!(Json::Num(3.25).render(), "3.25");
        assert_eq!(Json::int(u64::MAX / 2).render(), parse_json(&Json::int(u64::MAX / 2).render()).unwrap().render());
    }
}
