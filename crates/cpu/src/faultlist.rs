//! Per-core fault-list assembly.

use sbst_fault::{FaultList, Unit};

use crate::forwarding::ForwardingNetwork;
use crate::hdcu::Hdcu;
use crate::icu::Icu;
use crate::CoreKind;

/// Enumerates the stuck-at fault list of one unit of one core kind.
///
/// This is the in-simulator equivalent of extracting a unit's fault list
/// from the post-layout netlist: the same routine graded by the paper's
/// commercial fault simulator. Cores A and B share RTL but not netlists,
/// so their lists differ (B's resynthesized OR planes and buffered stall
/// line); core C's 64-bit datapath roughly doubles the forwarding list.
///
/// # Example
///
/// ```
/// use sbst_cpu::{unit_fault_list, CoreKind};
/// use sbst_fault::Unit;
///
/// let fwd_a = unit_fault_list(CoreKind::A, Unit::Forwarding);
/// let fwd_c = unit_fault_list(CoreKind::C, Unit::Forwarding);
/// assert!(fwd_c.len() as f64 > 1.7 * fwd_a.len() as f64);
/// ```
pub fn unit_fault_list(kind: CoreKind, unit: Unit) -> FaultList {
    match unit {
        Unit::Forwarding => FaultList::from_sites(ForwardingNetwork::fault_sites(kind)),
        Unit::Hdcu => FaultList::from_sites(Hdcu::fault_sites(kind)),
        Unit::Icu => FaultList::from_sites(Icu::fault_sites(kind)),
    }
}

/// The full fault list of one core (all three targeted units).
pub fn core_fault_list(kind: CoreKind) -> FaultList {
    let mut list = unit_fault_list(kind, Unit::Forwarding);
    list.extend(unit_fault_list(kind, Unit::Hdcu));
    list.extend(unit_fault_list(kind, Unit::Icu));
    list
}

/// The transition-delay fault list of the forwarding datapath
/// (extension; the paper's §V future work).
pub fn delay_fault_list(kind: CoreKind) -> FaultList {
    FaultList::from_sites(ForwardingNetwork::delay_fault_sites(kind))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn per_core_counts_follow_the_paper_trends() {
        let fwd: Vec<usize> = CoreKind::ALL
            .iter()
            .map(|&k| unit_fault_list(k, Unit::Forwarding).len())
            .collect();
        // Paper Table II: A 53,298 / B 57,506 / C 113,212.
        assert!(fwd[1] > fwd[0], "B > A");
        assert!(fwd[2] as f64 / fwd[0] as f64 > 1.7, "C ~ 2x A");
        let hdcu: Vec<usize> = CoreKind::ALL
            .iter()
            .map(|&k| unit_fault_list(k, Unit::Hdcu).len())
            .collect();
        // Paper Table III: A 16,096 / B 15,783 / C 19,931.
        assert!(hdcu[2] > hdcu[0], "C > A");
        let icu: Vec<usize> = CoreKind::ALL
            .iter()
            .map(|&k| unit_fault_list(k, Unit::Icu).len())
            .collect();
        assert!(icu[2] > icu[0], "C's wider cause register");
    }

    #[test]
    fn core_list_is_the_union() {
        let total = core_fault_list(CoreKind::A).len();
        let sum: usize = [Unit::Forwarding, Unit::Hdcu, Unit::Icu]
            .iter()
            .map(|&u| unit_fault_list(CoreKind::A, u).len())
            .sum();
        assert_eq!(total, sum);
    }

    #[test]
    fn restriction_matches_units() {
        let list = core_fault_list(CoreKind::A);
        for unit in [Unit::Forwarding, Unit::Hdcu, Unit::Icu] {
            assert_eq!(
                list.restrict_to(unit).len(),
                unit_fault_list(CoreKind::A, unit).len()
            );
        }
    }

    #[test]
    fn delay_list_nonempty() {
        assert!(!delay_fault_list(CoreKind::A).is_empty());
    }
}
