//! The dual-issue, in-order, 5-stage pipelined core.
//!
//! Stage order within one simulated cycle (synchronous registers are
//! snapshotted first, so every stage sees the previous cycle's values):
//!
//! ```text
//! snapshot EX/MEM + MEM/WB  →  WB commit  →  MEM  →  EX  →  ICU  →
//! issue  →  fetch  →  halt check
//! ```
//!
//! The ordering encodes the classic DLX hazard structure: a consumer in
//! EX forwards from the producer one packet ahead (in MEM: the EX/MEM
//! path) or two ahead (in WB: the MEM/WB path); load-use pairs cost one
//! HDCU stall; three-packet distance reads the freshly committed register
//! file.

use sbst_fault::FaultPlane;
use sbst_isa::{Cause, Csr, Instr, Reg};
use sbst_mem::{Bus, CacheConfig, Tcm, DTCM_BASE, ITCM_BASE};

use crate::csrfile::CsrFile;
use crate::exec::{alu32, alu64, imm_operand};
use crate::fetch::FetchUnit;
use crate::forwarding::{
    ForwardingNetwork, OPERAND_SOURCES, WB_SOURCES, WB_SRC_ALU, WB_SRC_CSR, WB_SRC_MEM,
};
use crate::hdcu::{Hdcu, ProducerView};
use crate::icu::Icu;
use crate::lsu::{Lsu, MemOp, MemOpKind};
use crate::CoreKind;

/// Configuration of one core instance.
#[derive(Debug, Clone, Copy)]
pub struct CoreConfig {
    /// Architectural variant.
    pub kind: CoreKind,
    /// Core id within the SoC (0 = A, 1 = B, 2 = C); selects the bus
    /// ports `2*id` (fetch) and `2*id + 1` (data).
    pub id: usize,
    /// Instruction-cache geometry, or `None` to run uncached.
    pub icache: Option<CacheConfig>,
    /// Data-cache geometry, or `None` to run uncached.
    pub dcache: Option<CacheConfig>,
    /// Reset program counter.
    pub reset_pc: u32,
    /// Posted-write buffer depth.
    pub wbuf_depth: usize,
}

impl CoreConfig {
    /// The paper's configuration: 8 KiB I$ + 4 KiB D$ enabled.
    pub fn cached(kind: CoreKind, id: usize, reset_pc: u32) -> CoreConfig {
        CoreConfig {
            kind,
            id,
            icache: Some(CacheConfig::icache_8k()),
            dcache: Some(CacheConfig::dcache_4k()),
            reset_pc,
            // Deep enough that the posted-write buffer never back-pressures
            // a cache-resident execution loop, even with the bus saturated
            // by the other cores.
            wbuf_depth: 32,
        }
    }

    /// Caches disabled (every access goes over the shared bus).
    pub fn uncached(kind: CoreKind, id: usize, reset_pc: u32) -> CoreConfig {
        CoreConfig { icache: None, dcache: None, ..CoreConfig::cached(kind, id, reset_pc) }
    }

    /// The certification variant: same capacities as [`cached`] but
    /// direct-mapped (one way), removing replacement state from the
    /// cache-locking argument.
    ///
    /// [`cached`]: CoreConfig::cached
    pub fn cached_direct(kind: CoreKind, id: usize, reset_pc: u32) -> CoreConfig {
        CoreConfig {
            icache: Some(CacheConfig::icache_8k_direct()),
            dcache: Some(CacheConfig::dcache_4k_direct()),
            ..CoreConfig::cached(kind, id, reset_pc)
        }
    }
}

/// Entry sitting at EX input (issued, not yet executed).
#[derive(Debug, Clone, Copy, PartialEq)]
struct ExInEntry {
    instr: Option<Instr>,
    pc: u32,
    seq: u64,
    /// Register-file values of the two source operands, read at issue.
    rf: [u64; 2],
    /// Source register descriptors: (base index, is 64-bit pair).
    src: [Option<(u8, bool)>; 2],
}

/// [`ExInEntry`] latch equality *modulo* the issue sequence number each
/// entry carries: `seq` is a snapshot of the monotone `issue_seq`
/// counter, so it never repeats across loop iterations, while its only
/// consumer (`raise_seq`, and through it the trap imprecision depth) is
/// a sequence-number *difference* — invariant across a loop period.
/// See [`Core::loop_state_eq`] for the full soundness argument.
fn ex_in_eq(a: &[Option<ExInEntry>; 2], b: &[Option<ExInEntry>; 2]) -> bool {
    a.iter().zip(b).all(|(x, y)| match (x, y) {
        (None, None) => true,
        (Some(x), Some(y)) => {
            x.instr == y.instr && x.pc == y.pc && x.rf == y.rf && x.src == y.src
        }
        _ => false,
    })
}

/// Entry in the EX/MEM or MEM/WB pipeline register.
#[derive(Debug, Clone, Copy, PartialEq)]
struct PipeEntry {
    instr: Option<Instr>,
    pc: u32,
    dest: Option<(u8, bool)>,
    /// ALU/link result (the EX/MEM forwarding value).
    alu: u64,
    /// CSR read value.
    csr_val: u64,
    /// Writeback-mux select (`WB_SRC_*`).
    wb_sel: usize,
    /// Data-memory operation (pipe 0 only).
    mem: Option<MemOp>,
    mem_started: bool,
    /// Loaded word (valid once the LSU completed).
    mem_data: u32,
    /// Final writeback value (valid in MEM/WB).
    value: u64,
}

/// One instruction as seen by a pipeline trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StageSlot {
    /// Instruction address.
    pub pc: u32,
    /// Decoded instruction (`None` = undecodable word).
    pub instr: Option<Instr>,
}

/// Snapshot of pipeline occupancy, used to draw the paper's Figure 1
/// diagrams.
#[derive(Debug, Clone, Default)]
pub struct StageView {
    /// Next fetch address.
    pub fetch_pc: u32,
    /// Fetched instructions waiting to issue.
    pub buffer: Vec<StageSlot>,
    /// Instructions entering EX this cycle (per pipe).
    pub ex: [Option<StageSlot>; 2],
    /// EX/MEM pipeline register (per pipe).
    pub mem: [Option<StageSlot>; 2],
    /// MEM/WB pipeline register (per pipe).
    pub wb: [Option<StageSlot>; 2],
    /// Whether the core has fully halted.
    pub halted: bool,
}

/// One micro-architectural event captured by the core tap (see
/// [`Core::set_tap`]).
///
/// The tap records, in exact intra-step order, every register-file
/// commit, every forwarding-mux evaluation (with its fault-free inputs
/// and output) and every executed instruction (with its resolved
/// operands). The campaign's bit-parallel fault grader replays these
/// events per fault lane: a lane overlays its own value differences on
/// the recorded inputs, re-evaluates the shared
/// [`mux_eval`](crate::mux_eval) decomposition for its own faulted mux
/// instance, and tracks where its machine state diverges from the
/// fault-free run — without stepping a second SoC.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TapEvent {
    /// WB committed a retiring instruction to the register file
    /// (`dest = None`: the entry retired without a destination).
    WbCommit {
        /// Pipe index.
        pipe: usize,
        /// Destination register (base index, 64-bit pair flag).
        dest: Option<(u8, bool)>,
        /// Committed value.
        value: u64,
    },
    /// The writeback-select mux of `pipe` computed an entry's final
    /// value as it moved from EX/MEM to MEM/WB.
    WbMux {
        /// Pipe index (mux instance `wb_mux_id(pipe)`).
        pipe: usize,
        /// Mux inputs: ALU result, load data, CSR read value.
        inputs: [u64; WB_SOURCES],
        /// Select code (`WB_SRC_*`).
        sel: usize,
        /// Fault-free mux output (the entry's writeback value).
        out: u64,
        /// The entry's data-memory operation, if any (the grader needs
        /// the address to overlay lane-local memory differences on the
        /// load data, and to apply store differences).
        mem: Option<MemOp>,
    },
    /// An operand-bypass mux resolved operand `operand` of slot `slot`.
    ExOperand {
        /// Issue slot (mux instance `operand_mux_id(slot, operand)`).
        slot: usize,
        /// Operand index.
        operand: usize,
        /// Source register of the register-file input (base, 64-bit).
        rf_src: Option<(u8, bool)>,
        /// Mux inputs (indexed by the `SRC_*` constants).
        inputs: [u64; OPERAND_SOURCES],
        /// HDCU-encoded select (`None` = dead code).
        sel: Option<usize>,
        /// Fault-free mux output (the resolved operand).
        out: u64,
    },
    /// EX executed one instruction with the given resolved operands.
    ExExec {
        /// Issue slot.
        slot: usize,
        /// The instruction (`None` = undecodable word).
        instr: Option<Instr>,
        /// Its address.
        pc: u32,
        /// Resolved operand values.
        ops: [u64; 2],
        /// Fault-free ALU/link result (grader cross-check).
        alu: u64,
        /// Fault-free data-memory operation (grader cross-check).
        mem: Option<MemOp>,
        /// Cause latched by this instruction, if any.
        raise: Option<Cause>,
    },
}

/// A dual-issue in-order pipelined core with private caches, TCMs,
/// forwarding network, HDCU, imprecise-interrupt ICU and per-pin fault
/// injection.
///
/// Drive it by calling [`step`](Core::step) once per cycle with the
/// shared [`Bus`]; the surrounding SoC (see `sbst-soc`) does this for
/// all three cores and the bus arbiter.
#[derive(Debug, Clone)]
pub struct Core {
    cfg: CoreConfig,
    regs: [u32; 32],
    csr: CsrFile,
    icu: Icu,
    hdcu: Hdcu,
    fwd: ForwardingNetwork,
    fetch: FetchUnit,
    lsu: Lsu,
    itcm: Tcm,
    dtcm: Tcm,
    plane: FaultPlane,
    ex_in: [Option<ExInEntry>; 2],
    exmem: [Option<PipeEntry>; 2],
    memwb: [Option<PipeEntry>; 2],
    issue_seq: u64,
    raise_seq: u64,
    branch_pending: bool,
    halting: bool,
    halted: bool,
    fatal_trap: bool,
    /// Event tap buffer (`None` = tap disabled, the normal case). Pure
    /// observation: enabling it changes no simulated behavior.
    tap: Option<Vec<TapEvent>>,
}

#[derive(Debug, Clone, Copy, Default)]
struct FwdView {
    dest: Option<(u8, bool)>,
    load_pending: bool,
    value: u64,
}

impl Core {
    /// Creates a core at reset.
    pub fn new(cfg: CoreConfig) -> Core {
        Core {
            cfg,
            regs: [0; 32],
            csr: CsrFile::new(cfg.id as u32),
            icu: Icu::new(cfg.kind),
            hdcu: Hdcu::new(cfg.kind),
            fwd: ForwardingNetwork::new(cfg.kind),
            fetch: FetchUnit::new(cfg.reset_pc, cfg.icache, 2 * cfg.id),
            lsu: Lsu::new(cfg.dcache, cfg.wbuf_depth, 2 * cfg.id + 1),
            itcm: Tcm::new(ITCM_BASE),
            dtcm: Tcm::new(DTCM_BASE),
            plane: FaultPlane::fault_free(),
            ex_in: [None; 2],
            exmem: [None; 2],
            memwb: [None; 2],
            issue_seq: 0,
            raise_seq: 0,
            branch_pending: false,
            halting: false,
            halted: false,
            fatal_trap: false,
            tap: None,
        }
    }

    /// Enables or disables the micro-architectural event tap. While
    /// enabled, [`step`](Core::step) appends [`TapEvent`]s in exact
    /// intra-cycle order; drain them with
    /// [`take_tap_events`](Core::take_tap_events) (typically once per
    /// step). Observation only — simulated behavior is unchanged.
    pub fn set_tap(&mut self, enable: bool) {
        self.tap = enable.then(Vec::new);
    }

    /// Drains the tap buffer (empty when the tap is disabled).
    pub fn take_tap_events(&mut self) -> Vec<TapEvent> {
        match &mut self.tap {
            Some(buf) => std::mem::take(buf),
            None => Vec::new(),
        }
    }

    /// The forwarding network (read-only: campaign lane graders seed
    /// delay-fault history from its [`delay_state`] and mirror its mux
    /// decomposition).
    ///
    /// [`delay_state`]: ForwardingNetwork::delay_state
    pub fn forwarding_unit(&self) -> &ForwardingNetwork {
        &self.fwd
    }

    /// The armed fault plane.
    pub fn plane(&self) -> FaultPlane {
        self.plane
    }

    /// Architectural-trajectory equality for livelock detection: two
    /// cores whose `loop_state_eq` states are equal, stepped against
    /// equal bus states, evolve identically — *modulo* the deliberately
    /// excluded free-running state: the performance counters and the
    /// issue/raise sequence numbers, including the in-flight copy each
    /// [`ExInEntry`] carries (all monotone; only their *difference* —
    /// the imprecision depth — is architecturally visible, and a
    /// difference is invariant across one loop period). The exclusions
    /// are sound only when the compared trajectory never reads a
    /// counter CSR; the campaign's loop detector verifies that
    /// separately from the instruction tap.
    pub fn loop_state_eq(&self, other: &Core) -> bool {
        self.regs == other.regs
            && self.csr.loop_state_eq(&other.csr)
            && self.icu == other.icu
            && self.fwd.delay_state() == other.fwd.delay_state()
            && ex_in_eq(&self.ex_in, &other.ex_in)
            && self.exmem == other.exmem
            && self.memwb == other.memwb
            && self.branch_pending == other.branch_pending
            && self.halting == other.halting
            && self.halted == other.halted
            && self.fatal_trap == other.fatal_trap
            && self.fetch.state_eq(&other.fetch)
            && self.lsu.state_eq(&other.lsu)
            && self.itcm.state_eq(&other.itcm)
            && self.dtcm.state_eq(&other.dtcm)
    }

    /// Arms a fault (call before the first step).
    pub fn set_plane(&mut self, plane: FaultPlane) {
        self.plane = plane;
    }

    /// This core's configuration.
    pub fn config(&self) -> CoreConfig {
        self.cfg
    }

    /// Whether the core has halted (pipeline drained after `halt`).
    pub fn halted(&self) -> bool {
        self.halted
    }

    /// Whether a trap was recognised with no handler installed.
    pub fn fatal_trap(&self) -> bool {
        self.fatal_trap
    }

    /// How many instructions have entered the pipeline so far. Issue
    /// happens before fetch within a step, so the state *before* the
    /// step in which this first becomes non-zero is the last point at
    /// which no instruction of this core has had any effect yet.
    pub fn instructions_issued(&self) -> u64 {
        self.issue_seq
    }

    /// Architectural register value.
    pub fn reg(&self, r: Reg) -> u32 {
        self.regs[r.index()]
    }

    /// All architectural registers.
    pub fn regs(&self) -> &[u32; 32] {
        &self.regs
    }

    /// CSR value as software would read it.
    pub fn csr_value(&self, csr: Csr) -> u32 {
        self.icu
            .read(csr, &self.plane)
            .or_else(|| self.csr.read(csr))
            .unwrap_or(0)
    }

    /// Performance counters (full 64-bit values).
    pub fn counters(&self) -> &CsrFile {
        &self.csr
    }

    /// A copied-out observability snapshot of the core: pipeline
    /// counters, cache counters and the pipeline's current position.
    /// The SoC observer diffs consecutive samples to derive per-cycle
    /// trace events; nothing here touches core state.
    pub fn obs_sample(&self) -> sbst_obs::CoreSample {
        sbst_obs::CoreSample {
            counters: sbst_obs::CoreCounters {
                cycles: self.csr.cycles,
                retired: self.csr.retired,
                issued: self.issue_seq,
                if_stalls: self.csr.if_stalls,
                mem_stalls: self.csr.mem_stalls,
                haz_stalls: self.csr.haz_stalls,
                fwd_uses: self.csr.fwd_uses,
            },
            icache: self.fetch.icache().map(|c| c.stats().counters()),
            dcache: self.lsu.dcache().map(|c| c.stats().counters()),
            next_pc: self.fetch.pc(),
            ex_pc: self.ex_in[0].map(|e| e.pc),
            halted: self.halted,
        }
    }

    /// The instruction TCM (harness loading of TCM-resident code).
    pub fn itcm_mut(&mut self) -> &mut Tcm {
        &mut self.itcm
    }

    /// The data TCM.
    pub fn dtcm_mut(&mut self) -> &mut Tcm {
        &mut self.dtcm
    }

    /// The fetch unit (cache statistics, debug).
    pub fn fetch_unit(&self) -> &FetchUnit {
        &self.fetch
    }

    /// The load/store unit (cache statistics, debug).
    pub fn lsu_unit(&self) -> &Lsu {
        &self.lsu
    }

    /// Mutable instruction cache, if configured (SEU injection).
    pub fn icache_mut(&mut self) -> Option<&mut sbst_mem::Cache> {
        self.fetch.icache_mut()
    }

    /// Mutable data cache, if configured (SEU injection).
    pub fn dcache_mut(&mut self) -> Option<&mut sbst_mem::Cache> {
        self.lsu.dcache_mut()
    }

    /// Severs every copy-on-write page this core's backing stores (TCMs
    /// and caches) still share with other clones — the deep-copy
    /// behavior of the pre-COW `Vec` backing, as a differential-test
    /// hook.
    pub fn unshare(&mut self) {
        self.itcm.unshare();
        self.dtcm.unshare();
        if let Some(ic) = self.fetch.icache_mut() {
            ic.unshare();
        }
        if let Some(dc) = self.lsu.dcache_mut() {
            dc.unshare();
        }
    }

    /// Current pipeline occupancy for tracing.
    pub fn stage_view(&self) -> StageView {
        let slot = |e: &Option<PipeEntry>| e.map(|e| StageSlot { pc: e.pc, instr: e.instr });
        StageView {
            fetch_pc: self.fetch.pc(),
            buffer: self
                .fetch
                .buffered()
                .iter()
                .map(|f| StageSlot { pc: f.pc, instr: f.instr })
                .collect(),
            ex: [
                self.ex_in[0].map(|e| StageSlot { pc: e.pc, instr: e.instr }),
                self.ex_in[1].map(|e| StageSlot { pc: e.pc, instr: e.instr }),
            ],
            mem: [slot(&self.exmem[0]), slot(&self.exmem[1])],
            wb: [slot(&self.memwb[0]), slot(&self.memwb[1])],
            halted: self.halted,
        }
    }

    /// Advances the core by one clock cycle.
    pub fn step(&mut self, bus: &mut Bus) {
        if self.halted {
            return;
        }
        self.csr.cycles += 1;

        // ---- snapshot pipeline registers for the forwarding network ----
        let view = |e: &Option<PipeEntry>, in_mem: bool| match e {
            Some(e) => FwdView {
                dest: e.dest,
                // Loads AND CSR reads produce their value at the WB mux,
                // not in EX: while still in EX/MEM they are late
                // producers that request a load-use-style stall.
                load_pending: in_mem && e.wb_sel != WB_SRC_ALU,
                value: if in_mem { e.alu } else { e.value },
            },
            None => FwdView::default(),
        };
        let fwd_ex = [view(&self.exmem[0], true), view(&self.exmem[1], true)];
        let fwd_wb = [view(&self.memwb[0], false), view(&self.memwb[1], false)];

        // ---- WB: commit ------------------------------------------------
        for pipe in 0..2 {
            if let Some(e) = self.memwb[pipe].take() {
                if let Some(t) = &mut self.tap {
                    t.push(TapEvent::WbCommit { pipe, dest: e.dest, value: e.value });
                }
                if let Some((d, is64)) = e.dest {
                    self.write_reg(d, is64, e.value);
                }
                self.csr.retired += 1;
            }
        }

        // ---- MEM -------------------------------------------------------
        if let Some(e) = &mut self.exmem[0] {
            if let Some(op) = e.mem {
                if !e.mem_started && !self.lsu.busy() {
                    self.lsu.start(op);
                    e.mem_started = true;
                }
            }
        }
        self.lsu.cycle(bus, &mut self.itcm, &mut self.dtcm);
        let mem_done = match &mut self.exmem[0] {
            Some(e) if e.mem.is_some() => match self.lsu.take_result() {
                Some(v) => {
                    e.mem_data = v;
                    true
                }
                None => {
                    self.csr.mem_stalls += 1;
                    false
                }
            },
            _ => true,
        };
        if mem_done {
            for pipe in 0..2 {
                if let Some(mut e) = self.exmem[pipe].take() {
                    let inputs = [e.alu, e.mem_data as u64, e.csr_val];
                    e.value = self.fwd.wb_value(pipe, &inputs, e.wb_sel, &self.plane);
                    if let Some(t) = &mut self.tap {
                        t.push(TapEvent::WbMux {
                            pipe,
                            inputs,
                            sel: e.wb_sel,
                            out: e.value,
                            mem: e.mem,
                        });
                    }
                    self.memwb[pipe] = Some(e);
                }
            }
        }

        // ---- EX ----------------------------------------------------------
        let exmem_free = self.exmem.iter().all(Option::is_none);
        if self.ex_in.iter().any(Option::is_some) && exmem_free {
            self.execute_packet(&fwd_ex, &fwd_wb);
        }

        // ---- ICU recognition --------------------------------------------
        if !self.branch_pending && !self.halting && self.icu.tick(&self.plane) {
            if self.csr.trap_vec == 0 {
                self.fatal_trap = true;
                self.halted = true;
                return;
            }
            let depth =
                self.issue_seq.saturating_sub(self.raise_seq + 1).min(255) as u32;
            let epc = self.fetch.next_unissued_pc();
            self.icu.recognize(epc, depth, &self.plane);
            self.fetch.redirect(self.csr.trap_vec);
        }

        // ---- issue -------------------------------------------------------
        if !self.halting && !self.branch_pending && self.ex_in.iter().all(Option::is_none) {
            self.issue();
        }

        // ---- fetch -------------------------------------------------------
        self.fetch.step(bus, &self.itcm, self.halting);

        // ---- halt check ----------------------------------------------------
        if self.halting
            && self.ex_in.iter().all(Option::is_none)
            && self.exmem.iter().all(Option::is_none)
            && self.memwb.iter().all(Option::is_none)
            && self.lsu.quiescent()
            && !self.fetch.busy()
        {
            self.halted = true;
        }
    }

    fn write_reg(&mut self, base: u8, is64: bool, value: u64) {
        if base != 0 {
            self.regs[base as usize] = value as u32;
        }
        if is64 && base < 31 {
            let hi = base + 1;
            if hi != 0 {
                self.regs[hi as usize] = (value >> 32) as u32;
            }
        }
    }

    fn read_src(&self, base: u8, is64: bool) -> u64 {
        let lo = self.regs[base as usize] as u64;
        if is64 && base.is_multiple_of(2) && base < 31 {
            lo | ((self.regs[base as usize + 1] as u64) << 32)
        } else {
            lo
        }
    }

    /// Executes the packet in `ex_in` (both slots), or stalls it.
    fn execute_packet(&mut self, fwd_ex: &[FwdView; 2], fwd_wb: &[FwdView; 2]) {
        let producers: [ProducerView; 4] = [
            ProducerView { dest: fwd_ex[0].dest, load_pending: fwd_ex[0].load_pending },
            ProducerView { dest: fwd_ex[1].dest, load_pending: fwd_ex[1].load_pending },
            ProducerView { dest: fwd_wb[0].dest, load_pending: false },
            ProducerView { dest: fwd_wb[1].dest, load_pending: false },
        ];
        // Refresh register-file operand values: an instruction can sit at
        // EX entry across an interlock stall long enough for its producer
        // to retire, in which case the RF path must see the committed
        // value (the RF is read through until EX entry).
        for slot in 0..2 {
            let Some(entry) = &mut self.ex_in[slot] else { continue };
            let srcs = entry.src;
            for (operand, src) in srcs.iter().enumerate() {
                if let Some((base, is64)) = src {
                    entry.rf[operand] = {
                        let lo = self.regs[*base as usize] as u64;
                        if *is64 && base % 2 == 0 && *base < 31 {
                            lo | ((self.regs[*base as usize + 1] as u64) << 32)
                        } else {
                            lo
                        }
                    };
                }
            }
        }
        // Route every operand of every slot; collect stall requests.
        let mut selects = [[None::<Option<usize>>; 2]; 2];
        let mut requests = [false; 4];
        for slot in 0..2 {
            let Some(entry) = &self.ex_in[slot] else { continue };
            for operand in 0..2 {
                let Some((src, src64)) = entry.src[operand] else { continue };
                let route =
                    self.hdcu.route(slot, operand, src, src64, &producers, &self.plane);
                selects[slot][operand] = Some(route.select);
                requests[slot * 2 + operand] = route.stall_request;
            }
        }
        if self.hdcu.aggregate_stall(&requests, &self.plane) {
            self.csr.haz_stalls += 1;
            return;
        }
        // Resolve operand values through the forwarding muxes and execute.
        for (slot, slot_selects) in selects.iter().enumerate() {
            let Some(entry) = self.ex_in[slot].take() else { continue };
            let mut ops = [0u64; 2];
            for operand in 0..2 {
                if entry.src[operand].is_none() {
                    ops[operand] = entry.rf[operand];
                    continue;
                }
                let inputs: [u64; OPERAND_SOURCES] = [
                    entry.rf[operand],
                    fwd_ex[0].value,
                    fwd_ex[1].value,
                    fwd_wb[0].value,
                    fwd_wb[1].value,
                ];
                let sel = slot_selects[operand].expect("routed above");
                if sel.is_some_and(|s| s != crate::forwarding::SRC_RF) {
                    self.csr.fwd_uses += 1;
                }
                ops[operand] = self.fwd.operand(slot, operand, &inputs, sel, &self.plane);
                if let Some(t) = &mut self.tap {
                    t.push(TapEvent::ExOperand {
                        slot,
                        operand,
                        rf_src: entry.src[operand],
                        inputs,
                        sel,
                        out: ops[operand],
                    });
                }
            }
            let pipe_entry = self.execute_one(slot, entry, ops);
            self.exmem[slot] = Some(pipe_entry);
        }
    }

    /// Executes a single instruction in EX; returns its pipeline entry.
    fn execute_one(&mut self, slot: usize, entry: ExInEntry, ops: [u64; 2]) -> PipeEntry {
        let mut out = PipeEntry {
            instr: entry.instr,
            pc: entry.pc,
            dest: None,
            alu: 0,
            csr_val: 0,
            wb_sel: WB_SRC_ALU,
            mem: None,
            mem_started: false,
            mem_data: 0,
            value: 0,
        };
        let mut raise: Option<Cause> = None;
        let (a32, b32) = (ops[0] as u32, ops[1] as u32);
        match entry.instr {
            None => raise = Some(Cause::Illegal),
            Some(instr) => match instr {
                Instr::Nop | Instr::Halt => {}
                Instr::Alu { op, rd, .. } => {
                    let (v, c) = alu32(op, a32, b32);
                    out.alu = v as u64;
                    out.dest = entry_dest(rd, false);
                    raise = c;
                }
                Instr::AluImm { op, rd, imm, .. } => {
                    let (v, c) = alu32(op, a32, imm_operand(op, imm));
                    out.alu = v as u64;
                    out.dest = entry_dest(rd, false);
                    raise = c;
                }
                Instr::Alu64 { op, rd, rs1, rs2 } => {
                    let legal = self.cfg.kind.has_alu64()
                        && rd.is_even()
                        && rs1.is_even()
                        && rs2.is_even()
                        && rd.index() < 31;
                    if legal {
                        let (v, c) = alu64(op, ops[0], ops[1]);
                        out.alu = v;
                        out.dest = entry_dest(rd, true);
                        raise = c;
                    } else {
                        raise = Some(Cause::Illegal);
                    }
                }
                Instr::Lui { rd, imm } => {
                    out.alu = ((imm as u32) << 16) as u64;
                    out.dest = entry_dest(rd, false);
                }
                Instr::Load { rd, off, .. } => {
                    let addr = a32.wrapping_add(off as i32 as u32);
                    if addr % 4 != 0 {
                        raise = Some(Cause::Unaligned);
                        out.dest = entry_dest(rd, false);
                    } else {
                        out.mem = Some(MemOp { kind: MemOpKind::Load, addr, wdata: 0 });
                        out.dest = entry_dest(rd, false);
                        out.wb_sel = WB_SRC_MEM;
                    }
                }
                Instr::Store { off, .. } => {
                    let addr = a32.wrapping_add(off as i32 as u32);
                    if addr % 4 != 0 {
                        raise = Some(Cause::Unaligned);
                    } else {
                        out.mem =
                            Some(MemOp { kind: MemOpKind::Store, addr, wdata: b32 });
                    }
                }
                Instr::Amoswap { rd, .. } => {
                    let addr = a32;
                    if addr % 4 != 0 {
                        raise = Some(Cause::Unaligned);
                        out.dest = entry_dest(rd, false);
                    } else {
                        out.mem = Some(MemOp { kind: MemOpKind::Swap, addr, wdata: b32 });
                        out.dest = entry_dest(rd, false);
                        out.wb_sel = WB_SRC_MEM;
                    }
                }
                Instr::Branch { cond, off, .. } => {
                    if cond.eval(a32, b32) {
                        self.redirect(entry.pc.wrapping_add(off as i32 as u32));
                    }
                    self.branch_pending = false;
                }
                Instr::Jal { rd, off } => {
                    out.alu = entry.pc.wrapping_add(4) as u64;
                    out.dest = entry_dest(rd, false);
                    self.redirect(entry.pc.wrapping_add(off as u32));
                    self.branch_pending = false;
                }
                Instr::Jalr { rd, off, .. } => {
                    out.alu = entry.pc.wrapping_add(4) as u64;
                    out.dest = entry_dest(rd, false);
                    self.redirect(a32.wrapping_add(off as i32 as u32) & !3);
                    self.branch_pending = false;
                }
                Instr::CsrRead { rd, csr } => {
                    out.csr_val = self
                        .icu
                        .read(csr, &self.plane)
                        .or_else(|| self.csr.read(csr))
                        .unwrap_or(0) as u64;
                    out.wb_sel = WB_SRC_CSR;
                    out.dest = entry_dest(rd, false);
                }
                Instr::CsrWrite { csr, .. } => {
                    if csr.is_writable() {
                        if !self.icu.write(csr, a32) {
                            self.csr.write(csr, a32);
                        }
                    } else {
                        raise = Some(Cause::Illegal);
                    }
                }
                Instr::Cache(op) => match op {
                    sbst_isa::CacheOp::IcInv => {
                        if let Some(ic) = self.fetch.icache_mut() {
                            ic.invalidate_all();
                        }
                    }
                    sbst_isa::CacheOp::DcInv => {
                        if let Some(dc) = self.lsu.dcache_mut() {
                            dc.invalidate_all();
                        }
                    }
                },
                Instr::Mret => {
                    self.redirect(self.icu.epc());
                    self.icu.mret(&self.plane);
                    self.branch_pending = false;
                }
            },
        }
        if let Some(t) = &mut self.tap {
            t.push(TapEvent::ExExec {
                slot,
                instr: entry.instr,
                pc: entry.pc,
                ops,
                alu: out.alu,
                mem: out.mem,
                raise,
            });
        }
        if let Some(cause) = raise {
            if self.icu.raise(cause, &self.plane) {
                self.raise_seq = entry.seq;
            }
        }
        out
    }

    fn redirect(&mut self, target: u32) {
        self.fetch.redirect(target);
    }

    /// Issues up to one packet from the fetch buffer.
    fn issue(&mut self) {
        let plane = self.plane;
        let Some(packet) = self.fetch.packet_mut() else {
            self.csr.if_stalls += 1;
            return;
        };
        let rem = packet.remaining();
        debug_assert!(!rem.is_empty());
        let first = rem[0];
        let dual = match (first.instr, rem.get(1)) {
            (Some(i0), Some(second)) => match second.instr {
                Some(i1) => {
                    let split = self.hdcu.needs_split(&i0, &i1, &plane);
                    if split {
                        // A split delays the second instruction by one
                        // cycle: an HDCU-inserted stall, visible through
                        // the performance counters.
                        self.csr.haz_stalls += 1;
                    }
                    !split
                }
                None => false,
            },
            _ => false,
        };
        let packet = self.fetch.packet_mut().expect("checked");
        let issued0 = packet.take();
        let issued1 = dual.then(|| packet.take());
        self.fetch.retire_packet_if_exhausted();
        for (slot, fetched) in [(0, Some(issued0)), (1, issued1)] {
            let Some(fetched) = fetched else { continue };
            let seq = self.issue_seq;
            self.issue_seq += 1;
            let mut src = [None; 2];
            let mut rf = [0u64; 2];
            if let Some(instr) = fetched.instr {
                let is64 = matches!(instr, Instr::Alu64 { .. });
                for (i, s) in instr.sources().iter().enumerate() {
                    if let Some(r) = s {
                        src[i] = Some((r.index() as u8, is64));
                        rf[i] = self.read_src(r.index() as u8, is64);
                    }
                }
                if instr.is_control_flow() {
                    self.branch_pending = true;
                }
                if matches!(instr, Instr::Halt) {
                    self.halting = true;
                }
            }
            self.ex_in[slot] =
                Some(ExInEntry { instr: fetched.instr, pc: fetched.pc, seq, rf, src });
        }
    }
}

fn entry_dest(rd: Reg, is64: bool) -> Option<(u8, bool)> {
    (!rd.is_zero()).then_some((rd.index() as u8, is64))
}
