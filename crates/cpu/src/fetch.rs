//! The instruction fetch unit.
//!
//! Fetches *issue packets*: up to two instructions from an 8-byte-aligned
//! fetch group. Packets come from the instruction TCM (1 cycle), the
//! instruction cache (1 cycle on hit, line fill over the bus on miss) or
//! straight over the shared bus when the cache is disabled — the paper's
//! 8-cycles-per-packet Flash fetch path whose contention-induced jitter
//! breaks self-test determinism.

use sbst_isa::Instr;
use sbst_mem::{Bus, BusRequest, Cache, CacheConfig, Region, Tcm};

/// One fetched instruction slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FetchedInstr {
    /// Address of the instruction.
    pub pc: u32,
    /// Raw word.
    pub raw: u32,
    /// Decoded instruction; `None` raises an illegal-instruction cause
    /// when issued (e.g. erased Flash).
    pub instr: Option<Instr>,
}

/// A fetch packet: 1–2 instructions from one aligned fetch group, with a
/// consumption cursor (split issue consumes one instruction at a time).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FetchPacket {
    slots: Vec<FetchedInstr>,
    next: usize,
}

impl FetchPacket {
    /// Remaining (unissued) instructions.
    pub fn remaining(&self) -> &[FetchedInstr] {
        &self.slots[self.next..]
    }

    /// Consumes the next instruction.
    ///
    /// # Panics
    ///
    /// Panics if the packet is exhausted.
    pub fn take(&mut self) -> FetchedInstr {
        let i = self.slots[self.next];
        self.next += 1;
        i
    }

    /// Whether every instruction has been issued.
    pub fn is_exhausted(&self) -> bool {
        self.next >= self.slots.len()
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum FetchState {
    Idle,
    /// Uncached fetch over the bus (`words` words requested).
    WaitBus { addr: u32, words: u8 },
    /// Cache line fill in flight.
    WaitFill { addr: u32 },
}

/// Fetch-queue depth: the unit prefetches up to this many packets ahead
/// of issue. Prefetching is what lets a *variable* number of younger
/// instructions be in flight when an imprecise trap's recognition window
/// elapses — the paper's unstable imprecision depth.
pub const FETCH_QUEUE_DEPTH: usize = 2;

/// The fetch unit of one core.
#[derive(Debug, Clone)]
pub struct FetchUnit {
    pc: u32,
    queue: std::collections::VecDeque<FetchPacket>,
    state: FetchState,
    icache: Option<Cache>,
    port: usize,
    /// A redirect arrived while a bus transaction was in flight: the
    /// response must be drained and dropped.
    discard: bool,
}

impl FetchUnit {
    /// Creates a fetch unit using bus port `port`.
    pub fn new(reset_pc: u32, icache: Option<CacheConfig>, port: usize) -> FetchUnit {
        FetchUnit {
            pc: reset_pc,
            queue: std::collections::VecDeque::with_capacity(FETCH_QUEUE_DEPTH),
            state: FetchState::Idle,
            icache: icache.map(Cache::new),
            port,
            discard: false,
        }
    }

    /// Next fetch address.
    pub fn pc(&self) -> u32 {
        self.pc
    }

    /// The instruction cache, if enabled.
    pub fn icache(&self) -> Option<&Cache> {
        self.icache.as_ref()
    }

    /// Mutable instruction cache (for `icinv`).
    pub fn icache_mut(&mut self) -> Option<&mut Cache> {
        self.icache.as_mut()
    }

    /// The oldest queued packet, if one is ready for issue.
    pub fn packet_mut(&mut self) -> Option<&mut FetchPacket> {
        self.queue.front_mut()
    }

    /// Drops the head packet once fully consumed by issue.
    pub fn retire_packet_if_exhausted(&mut self) {
        if self.queue.front().is_some_and(FetchPacket::is_exhausted) {
            self.queue.pop_front();
        }
    }

    /// Address of the next unissued instruction (EPC source).
    pub fn next_unissued_pc(&self) -> u32 {
        self.queue
            .front()
            .and_then(|p| p.remaining().first().map(|s| s.pc))
            .unwrap_or(self.pc)
    }

    /// Redirects fetch to `target` (taken branch, trap entry, `mret`).
    /// The low PC bits are ignored (instructions are word aligned), so a
    /// corrupted EPC cannot produce unaligned fetches.
    pub fn redirect(&mut self, target: u32) {
        self.pc = target & !3;
        self.queue.clear();
        if self.state != FetchState::Idle {
            self.discard = true;
        }
    }

    /// Addresses of the next fetch group: the group never crosses an
    /// 8-byte boundary, so a misaligned entry point yields a 1-wide
    /// packet (this is what makes the code-alignment scenarios matter).
    fn group(&self) -> (u32, u8) {
        if self.pc.is_multiple_of(8) {
            (self.pc, 2)
        } else {
            (self.pc, 1)
        }
    }

    /// Advances the fetch unit by one cycle. `halting` suppresses new
    /// fetches (after `halt` issues).
    pub fn step(&mut self, bus: &mut Bus, itcm: &Tcm, halting: bool) {
        // Drain any in-flight response first; on arrival the unit turns
        // around and issues the next request in the same cycle (the
        // controller streams sequential code back to back).
        match self.state {
            FetchState::WaitBus { addr, words } => {
                if let Some(resp) = bus.response(self.port) {
                    self.state = FetchState::Idle;
                    if !self.discard {
                        let slots = resp.words()[..words as usize]
                            .iter()
                            .enumerate()
                            .map(|(i, &raw)| FetchedInstr {
                                pc: addr + 4 * i as u32,
                                raw,
                                instr: Instr::decode(raw).ok(),
                            })
                            .collect();
                        self.queue.push_back(FetchPacket { slots, next: 0 });
                        self.pc = addr + 4 * words as u32;
                    }
                    self.discard = false;
                } else {
                    return;
                }
            }
            FetchState::WaitFill { addr } => {
                if let Some(resp) = bus.response(self.port) {
                    // Install the line even on discard: the fill already
                    // happened electrically.
                    if let Some(ic) = self.icache.as_mut() {
                        let base = ic.line_base(addr);
                        ic.fill(base, resp.words());
                    }
                    self.state = FetchState::Idle;
                    self.discard = false;
                    // Retry the lookup (next cycle: the fill response and
                    // the array write occupy the cache port this cycle).
                }
                return;
            }
            FetchState::Idle => {}
        }
        if self.queue.len() >= FETCH_QUEUE_DEPTH || halting {
            return;
        }
        let (addr, words) = self.group();
        match Region::of(addr) {
            Region::Itcm => {
                let slots = (0..words)
                    .map(|i| {
                        let pc = addr + 4 * i as u32;
                        let raw = if itcm.contains(pc) { itcm.read(pc) } else { 0 };
                        FetchedInstr { pc, raw, instr: Instr::decode(raw).ok() }
                    })
                    .collect();
                self.queue.push_back(FetchPacket { slots, next: 0 });
                self.pc = addr + 4 * words as u32;
            }
            Region::Flash | Region::Sram => {
                if let Some(ic) = self.icache.as_mut() {
                    let hit0 = ic.read(addr);
                    // Both packet words always live in the same 32-byte line.
                    let hit1 = if words == 2 { ic.read(addr + 4) } else { Some(0) };
                    match (hit0, hit1) {
                        (Some(w0), Some(w1)) => {
                            let mut slots = vec![FetchedInstr {
                                pc: addr,
                                raw: w0,
                                instr: Instr::decode(w0).ok(),
                            }];
                            if words == 2 {
                                slots.push(FetchedInstr {
                                    pc: addr + 4,
                                    raw: w1,
                                    instr: Instr::decode(w1).ok(),
                                });
                            }
                            self.queue.push_back(FetchPacket { slots, next: 0 });
                            self.pc = addr + 4 * words as u32;
                        }
                        _ => {
                            let base = self.icache.as_ref().expect("checked").line_base(addr);
                            let burst =
                                self.icache.as_ref().expect("checked").config().line_words();
                            bus.request(self.port, BusRequest::read_burst(base, burst as u8));
                            self.state = FetchState::WaitFill { addr };
                        }
                    }
                } else {
                    bus.request(self.port, BusRequest::read_burst(addr, words));
                    self.state = FetchState::WaitBus { addr, words };
                }
            }
            // Fetching from the data TCM or unmapped space returns erased
            // words, which issue as illegal instructions.
            _ => {
                let slots = (0..words)
                    .map(|i| FetchedInstr { pc: addr + 4 * i as u32, raw: !0, instr: None })
                    .collect();
                self.queue.push_back(FetchPacket { slots, next: 0 });
                self.pc = addr + 4 * words as u32;
            }
        }
    }

    /// Whether a bus transaction is in flight (used to decide when a
    /// halting core is fully quiescent).
    pub fn busy(&self) -> bool {
        self.state != FetchState::Idle
    }

    /// Behavioral-state equality (livelock detection): fetch pc, queued
    /// packets, bus-transaction state and cache contents. Cache
    /// statistics are ignored; the copy-on-write cache backing makes the
    /// content comparison cheap for states cloned from one another.
    pub fn state_eq(&self, other: &FetchUnit) -> bool {
        self.pc == other.pc
            && self.queue == other.queue
            && self.state == other.state
            && self.discard == other.discard
            && match (&self.icache, &other.icache) {
                (Some(a), Some(b)) => a.state_eq(b),
                (None, None) => true,
                _ => false,
            }
    }

    /// Buffered packet contents for trace views (issue order).
    pub fn buffered(&self) -> Vec<FetchedInstr> {
        self.queue.iter().flat_map(|p| p.remaining().iter().copied()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sbst_isa::{Asm, Reg};
    use sbst_mem::{FlashCtl, FlashImage, FlashTiming, Sram, ITCM_BASE};

    fn flash_bus() -> Bus {
        let mut a = Asm::new();
        for i in 0..32 {
            a.addi(Reg::R1, Reg::R0, i);
        }
        let mut img = FlashImage::new();
        img.load(&a.assemble(0x100).unwrap());
        Bus::new(FlashCtl::new(img.freeze(), FlashTiming::default()), Sram::default(), 1)
    }

    fn run_until_packet(f: &mut FetchUnit, bus: &mut Bus, itcm: &Tcm, max: u32) -> u32 {
        for cycle in 1..=max {
            f.step(bus, itcm, false);
            bus.step();
            if f.packet_mut().is_some() {
                return cycle;
            }
        }
        panic!("no packet after {max} cycles");
    }

    #[test]
    fn uncached_fetch_takes_flash_latency() {
        let mut bus = flash_bus();
        let itcm = Tcm::new(ITCM_BASE);
        let mut f = FetchUnit::new(0x100, None, 0);
        let cycles = run_until_packet(&mut f, &mut bus, &itcm, 100);
        assert!(cycles >= 8, "packet fetch over the bus costs >= flash latency, got {cycles}");
        let p = f.packet_mut().unwrap();
        assert_eq!(p.remaining().len(), 2);
        assert_eq!(p.remaining()[0].pc, 0x100);
    }

    #[test]
    fn misaligned_pc_fetches_single_slot() {
        let mut bus = flash_bus();
        let itcm = Tcm::new(ITCM_BASE);
        let mut f = FetchUnit::new(0x104, None, 0);
        run_until_packet(&mut f, &mut bus, &itcm, 100);
        assert_eq!(f.packet_mut().unwrap().remaining().len(), 1);
    }

    #[test]
    fn cached_fetch_misses_then_hits() {
        let mut bus = flash_bus();
        let itcm = Tcm::new(ITCM_BASE);
        let mut f = FetchUnit::new(0x100, Some(CacheConfig::icache_8k()), 0);
        let miss_cycles = run_until_packet(&mut f, &mut bus, &itcm, 100);
        assert!(miss_cycles > 8, "cold miss pays the line fill");
        // Consume and fetch the next packet in the same line: 1 cycle.
        while !f.packet_mut().unwrap().is_exhausted() {
            f.packet_mut().unwrap().take();
        }
        f.retire_packet_if_exhausted();
        let hit_cycles = run_until_packet(&mut f, &mut bus, &itcm, 100);
        assert_eq!(hit_cycles, 1, "warm fetch is single-cycle");
    }

    #[test]
    fn itcm_fetch_is_single_cycle() {
        let mut bus = flash_bus();
        let mut itcm = Tcm::new(ITCM_BASE);
        let mut a = Asm::new();
        a.addi(Reg::R1, Reg::R0, 7);
        a.halt();
        let p = a.assemble(ITCM_BASE).unwrap();
        for (i, &w) in p.words().iter().enumerate() {
            itcm.write(ITCM_BASE + 4 * i as u32, w);
        }
        let mut f = FetchUnit::new(ITCM_BASE, None, 0);
        assert_eq!(run_until_packet(&mut f, &mut bus, &itcm, 10), 1);
    }

    #[test]
    fn redirect_discards_inflight_fetch() {
        let mut bus = flash_bus();
        let itcm = Tcm::new(ITCM_BASE);
        let mut f = FetchUnit::new(0x100, None, 0);
        f.step(&mut bus, &itcm, false); // starts the bus read
        assert!(f.busy());
        f.redirect(0x140);
        let cycles = run_until_packet(&mut f, &mut bus, &itcm, 100);
        assert!(cycles > 8, "old response drained, new fetch issued");
        assert_eq!(f.packet_mut().unwrap().remaining()[0].pc, 0x140);
    }

    #[test]
    fn erased_flash_decodes_to_illegal_slots() {
        let mut bus = flash_bus();
        let itcm = Tcm::new(ITCM_BASE);
        let mut f = FetchUnit::new(0x7000, None, 0); // unprogrammed flash
        run_until_packet(&mut f, &mut bus, &itcm, 100);
        assert!(f.packet_mut().unwrap().remaining()[0].instr.is_none());
    }

    #[test]
    fn next_unissued_pc_tracks_buffer() {
        let mut bus = flash_bus();
        let itcm = Tcm::new(ITCM_BASE);
        let mut f = FetchUnit::new(0x100, None, 0);
        run_until_packet(&mut f, &mut bus, &itcm, 100);
        assert_eq!(f.next_unissued_pc(), 0x100);
        f.packet_mut().unwrap().take();
        assert_eq!(f.next_unissued_pc(), 0x104);
        f.packet_mut().unwrap().take();
        f.retire_packet_if_exhausted();
        assert_eq!(f.next_unissued_pc(), 0x108, "falls back to the fetch pc");
    }
}
