#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! # sbst-cpu — cycle-accurate dual-issue pipeline model
//!
//! Models the processor cores of the paper's triple-core automotive SoC
//! at the level of detail its self-test routines exercise:
//!
//! * a dual-issue, in-order, 5-stage pipeline ([`Core`]) with issue
//!   packets, split issue, branch-resolution-in-EX and posted writes;
//! * the **forwarding network** ([`ForwardingNetwork`]): four 5-input
//!   operand-bypass muxes plus two writeback-select muxes, decomposed to
//!   gate pins for stuck-at fault injection;
//! * the **Hazard Detection Control Unit** ([`Hdcu`]): dependency
//!   comparators, load-use stall generation, forwarding-select encoding,
//!   intra-packet split detection;
//! * the **Interrupt Control Unit** ([`Icu`]): synchronous *imprecise*
//!   interrupts recognised a variable number of instructions late;
//! * per-core performance counters (cycles, retired, IF/MEM/hazard
//!   stalls) — the paper's Performance Counters;
//! * a functional reference model ([`RefCpu`]) for differential testing;
//! * per-unit fault-list enumeration ([`unit_fault_list`]).
//!
//! Three core kinds are modeled ([`CoreKind`]): A and B (32-bit,
//! different netlists) and C (64-bit datapath, extended ISA, fully
//! decoded ICU cause register) — matching the paper's case-study SoC.

mod core;
mod csrfile;
mod exec;
mod faultlist;
mod fetch;
mod forwarding;
mod hdcu;
mod icu;
mod kind;
mod lsu;
mod refcpu;

pub use crate::core::{Core, CoreConfig, StageSlot, StageView, TapEvent};
pub use csrfile::CsrFile;
pub use exec::{alu32, alu64, imm_operand};
pub use faultlist::{core_fault_list, delay_fault_list, unit_fault_list};
pub use fetch::{FetchPacket, FetchUnit, FetchedInstr};
pub use forwarding::{
    mux_eval, operand_mux_id, wb_mux_id, ForwardingNetwork, OPERAND_SOURCES, SRC_EXMEM_P0,
    SRC_EXMEM_P1, SRC_MEMWB_P0, SRC_MEMWB_P1, SRC_RF, WB_SOURCES, WB_SRC_ALU, WB_SRC_CSR,
    WB_SRC_MEM,
};
pub use hdcu::{
    overlap_cmp_id, split_cmp_id, Hdcu, ProducerView, Route, HDCU_CTRL, PROD_EXMEM_P0,
    PROD_EXMEM_P1, PROD_MEMWB_P0, PROD_MEMWB_P1,
};
pub use icu::{Icu, RECOG_LAT};
pub use kind::CoreKind;
pub use lsu::{Lsu, MemOp, MemOpKind};
pub use refcpu::{RefCpu, RefStop};
