//! The Hazard Detection Control Unit.
//!
//! Detects register dependencies among issue packets, drives the
//! forwarding-mux select lines, and stalls the pipeline when forwarding
//! is not possible (load-use, 32/64-bit operand overlap). Faults here
//! produce either *wrong data* (missed forwarding, wrong select — caught
//! by the signature) or *wrongly inserted stalls* (caught only through
//! the performance counters, which is why the paper's HDCU routine folds
//! them into the signature).

use sbst_fault::{gates, Element, FaultPlane, FaultSite, Polarity, Unit};
use sbst_isa::Instr;

use crate::forwarding::{SRC_EXMEM_P0, SRC_EXMEM_P1, SRC_MEMWB_P0, SRC_MEMWB_P1, SRC_RF};
use crate::CoreKind;

/// Producer index: EX/MEM register of pipe 0.
pub const PROD_EXMEM_P0: usize = 0;
/// Producer index: EX/MEM register of pipe 1.
pub const PROD_EXMEM_P1: usize = 1;
/// Producer index: MEM/WB register of pipe 0.
pub const PROD_MEMWB_P0: usize = 2;
/// Producer index: MEM/WB register of pipe 1.
pub const PROD_MEMWB_P1: usize = 3;

/// Priority order in which producers are matched (youngest first).
const PRIORITY: [usize; 4] = [PROD_EXMEM_P1, PROD_EXMEM_P0, PROD_MEMWB_P1, PROD_MEMWB_P0];

/// Map from producer index to forwarding-mux source index.
const PROD_TO_SRC: [usize; 4] = [SRC_EXMEM_P0, SRC_EXMEM_P1, SRC_MEMWB_P0, SRC_MEMWB_P1];

/// Instance id of the intra-packet (split) comparator for slot-1
/// operand `operand`.
pub fn split_cmp_id(operand: usize) -> u16 {
    16 + operand as u16
}

/// Instance id of the 32/64-bit overlap detector for consumer
/// (`slot`, `operand`) — core C only.
pub fn overlap_cmp_id(slot: usize, operand: usize) -> u16 {
    18 + (slot * 2 + operand) as u16
}

/// Instance id grouping the HDCU control lines (stall requests, global
/// stall, select encoders).
pub const HDCU_CTRL: u16 = 100;

/// What the EX-entry comparators see of one potential producer.
#[derive(Debug, Clone, Copy, Default)]
pub struct ProducerView {
    /// Destination base register and whether it is a 64-bit pair.
    pub dest: Option<(u8, bool)>,
    /// `true` for a load still in EX/MEM (its data is not forwardable
    /// yet — matching it requests a load-use stall).
    pub load_pending: bool,
}

/// Routing decision for one consumer operand.
///
/// `select` and `stall_request` are independent physical outputs: even
/// when a stall is requested, the select encoder keeps driving the mux —
/// so a fault that suppresses the stall (dead stall line) makes the core
/// forward the not-yet-ready value instead of waiting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Route {
    /// Forwarding-mux select code (already through the faultable
    /// encoder); `None` means a dead code (no source enabled).
    pub select: Option<usize>,
    /// This consumer requests a pipeline stall (load-use or 32/64-bit
    /// overlap interlock), after per-consumer stall-line faults.
    pub stall_request: bool,
}

/// The HDCU of one core.
#[derive(Debug, Clone)]
pub struct Hdcu {
    kind: CoreKind,
}

impl Hdcu {
    /// Creates the HDCU for a core kind.
    pub fn new(kind: CoreKind) -> Hdcu {
        Hdcu { kind }
    }

    /// EX-entry comparator instance for consumer (`slot`,`operand`) and
    /// producer `producer`.
    fn cmp_id(slot: usize, operand: usize, producer: usize) -> u16 {
        ((slot * 2 + operand) * 4 + producer) as u16
    }

    /// Evaluates one register-index equality comparator with faults.
    fn cmp(
        &self,
        instance: u16,
        a: u8,
        b: u8,
        valid: bool,
        plane: &FaultPlane,
    ) -> bool {
        gates::cmp_eq(a as u32, b as u32, 5, valid, plane.query(Unit::Hdcu, instance))
    }

    /// Applies stall-request line faults for `consumer` (0..4).
    fn stall_request(&self, consumer: usize, request: bool, plane: &FaultPlane) -> bool {
        let mut r = request;
        if let Some((Element::StallLine { line }, pol)) = plane.query(Unit::Hdcu, HDCU_CTRL) {
            if line as usize == consumer {
                r = pol.value();
            }
        }
        r
    }

    /// ORs per-consumer stall requests into the global stall line (with
    /// line faults; core B's netlist adds a buffered copy of the global
    /// line, electrically equivalent when fault-free).
    pub fn aggregate_stall(&self, requests: &[bool; 4], plane: &FaultPlane) -> bool {
        let mut global = requests.iter().any(|&r| r);
        if let Some((Element::StallLine { line }, pol)) = plane.query(Unit::Hdcu, HDCU_CTRL) {
            if line == 4 || (line == 5 && self.kind == CoreKind::B) {
                global = pol.value();
            }
        }
        global
    }

    /// Encodes a forwarding-mux select through the (faultable) 3-bit
    /// select encoder of `mux`; out-of-range codes decode to no source.
    pub fn encode_select(
        &self,
        mux: usize,
        sel: usize,
        plane: &FaultPlane,
    ) -> Option<usize> {
        let mut code = sel as u32;
        if let Some((Element::SelEncLine { mux: m, bit }, pol)) =
            plane.query(Unit::Hdcu, HDCU_CTRL)
        {
            if m as usize == mux && bit < 3 {
                code = pol.force(code as u64, bit) as u32;
            }
        }
        (code as usize <= SRC_MEMWB_P1).then_some(code as usize)
    }

    /// Routes one consumer operand at EX entry.
    ///
    /// `src`/`src64` describe the consumer's source register (base index,
    /// 64-bit pair flag); `producers` are the four pipeline registers.
    /// The returned select already includes select-encoder faults; the
    /// per-consumer stall request feeds
    /// [`aggregate_stall`](Hdcu::aggregate_stall).
    pub fn route(
        &self,
        slot: usize,
        operand: usize,
        src: u8,
        src64: bool,
        producers: &[ProducerView; 4],
        plane: &FaultPlane,
    ) -> Route {
        let consumer = slot * 2 + operand;
        // r0 reads never forward (the register is hardwired).
        if src == 0 && !src64 {
            return Route {
                select: self.encode_select(consumer, SRC_RF, plane),
                stall_request: false,
            };
        }
        for &p in &PRIORITY {
            let view = producers[p];
            let (dest, dest64) = view.dest.unwrap_or_default();
            let width_match = view.dest.is_some() && dest64 == src64;
            // Exact-match comparator (gated by width equality).
            let eq = self.cmp(Hdcu::cmp_id(slot, operand, p), src, dest, width_match, plane);
            if eq {
                // Load-use: the value is not forwardable yet; the select
                // encoder still drives the producer's source, so a dead
                // stall line forwards the not-yet-ready value.
                let req = view.load_pending
                    && self.stall_request(consumer, true, plane);
                return Route {
                    select: self.encode_select(consumer, PROD_TO_SRC[p], plane),
                    stall_request: req,
                };
            }
            // 32/64-bit partial-overlap interlock (core C only): a width
            // mismatch whose register ranges intersect cannot be
            // forwarded and stalls until the producer retires.
            if self.kind.has_alu64() && view.dest.is_some() && dest64 != src64 {
                let overlap = ranges_overlap(src, src64, dest, dest64);
                let detected =
                    self.overlap_detect(overlap_cmp_id(slot, operand), overlap, plane);
                if detected && self.stall_request(consumer, true, plane) {
                    return Route {
                        select: self.encode_select(consumer, SRC_RF, plane),
                        stall_request: true,
                    };
                }
            }
        }
        Route { select: self.encode_select(consumer, SRC_RF, plane), stall_request: false }
    }

    /// Overlap-detector output with faults on its output pin.
    fn overlap_detect(&self, instance: u16, overlap: bool, plane: &FaultPlane) -> bool {
        match plane.query(Unit::Hdcu, instance) {
            Some((Element::CmpOut, pol)) => pol.value(),
            _ => overlap,
        }
    }

    /// Issue-stage decision: must `slot1` be split from `slot0`?
    ///
    /// Structural rules (unfaultable): memory ops only issue in slot 0;
    /// control flow, `halt` and `mret` issue alone. Data rule
    /// (faultable intra-packet RAW comparators): slot 1 reading slot 0's
    /// destination splits so the interpipeline EX/MEM path can serve it
    /// one cycle later.
    pub fn needs_split(&self, slot0: &Instr, slot1: &Instr, plane: &FaultPlane) -> bool {
        if slot1.is_mem() {
            return true;
        }
        if slot0.is_control_flow()
            || matches!(slot0, Instr::Halt | Instr::Mret | Instr::Cache(_))
        {
            return true;
        }
        let (dest, dest64) = dest_of(slot0).unwrap_or_default();
        let valid = dest_of(slot0).is_some();
        for (operand, src) in slot1.sources().iter().enumerate() {
            let Some(src) = src else { continue };
            let src64 = matches!(slot1, Instr::Alu64 { .. });
            if src.is_zero() && !src64 {
                continue;
            }
            let width_match = valid && dest64 == src64;
            if self.cmp(split_cmp_id(operand), src.index() as u8, dest, width_match, plane) {
                return true;
            }
            // Conservative structural interlock for in-packet 32/64 overlap.
            if valid && dest64 != src64 && ranges_overlap(src.index() as u8, src64, dest, dest64)
            {
                return true;
            }
        }
        false
    }

    /// Enumerates every stuck-at fault site of the HDCU for a core kind.
    pub fn fault_sites(kind: CoreKind) -> Vec<FaultSite> {
        let mut sites = Vec::new();
        let mut push = |instance: u16, element| {
            for polarity in Polarity::BOTH {
                sites.push(FaultSite { unit: Unit::Hdcu, instance, element, polarity });
            }
        };
        let comparator = |instance: u16, push: &mut dyn FnMut(u16, Element)| {
            for bit in 0..5 {
                push(instance, Element::CmpXnorOut { bit });
            }
            for node in 0..6 {
                push(instance, Element::CmpChainNode { node });
            }
            push(instance, Element::CmpValidIn);
            push(instance, Element::CmpOut);
        };
        for slot in 0..2 {
            for operand in 0..2 {
                for producer in 0..4 {
                    comparator(Hdcu::cmp_id(slot, operand, producer), &mut push);
                }
            }
        }
        for operand in 0..2 {
            comparator(split_cmp_id(operand), &mut push);
        }
        if kind.has_alu64() {
            for slot in 0..2 {
                for operand in 0..2 {
                    comparator(overlap_cmp_id(slot, operand), &mut push);
                }
            }
        }
        let stall_lines = if kind == CoreKind::B { 6 } else { 5 };
        for line in 0..stall_lines {
            push(HDCU_CTRL, Element::StallLine { line });
        }
        for mux in 0..4 {
            for bit in 0..3 {
                push(HDCU_CTRL, Element::SelEncLine { mux, bit });
            }
        }
        sites
    }
}

/// Destination (base register, is64) of an instruction, if any.
fn dest_of(i: &Instr) -> Option<(u8, bool)> {
    i.dest().map(|r| (r.index() as u8, matches!(i, Instr::Alu64 { .. })))
}

/// Whether the register ranges of two (possibly 64-bit pair) operands
/// intersect.
fn ranges_overlap(a: u8, a64: bool, b: u8, b64: bool) -> bool {
    let (a0, a1) = (a, if a64 { a + 1 } else { a });
    let (b0, b1) = (b, if b64 { b + 1 } else { b });
    a0 <= b1 && b0 <= a1
}

#[cfg(test)]
mod tests {
    use super::*;
    use sbst_isa::{AluOp, Reg};

    const FREE: FaultPlane = FaultPlane::fault_free();

    fn producers(p: [(Option<(u8, bool)>, bool); 4]) -> [ProducerView; 4] {
        p.map(|(dest, load_pending)| ProducerView { dest, load_pending })
    }

    fn armed(instance: u16, element: Element, polarity: Polarity) -> FaultPlane {
        FaultPlane::armed(FaultSite { unit: Unit::Hdcu, instance, element, polarity })
    }

    #[test]
    fn rf_route_when_no_producer_matches() {
        let hdcu = Hdcu::new(CoreKind::A);
        let prods = producers([(None, false); 4]);
        let route = hdcu.route(0, 0, 5, false, &prods, &FREE);
        assert_eq!(route.select, Some(SRC_RF));
        assert!(!route.stall_request);
    }

    #[test]
    fn youngest_producer_wins() {
        let hdcu = Hdcu::new(CoreKind::A);
        // Register 7 produced by both EX/MEM.P0 (older) and EX/MEM.P1
        // (younger in-program-order within the previous packet).
        let mut p = producers([(None, false); 4]);
        p[PROD_EXMEM_P0].dest = Some((7, false));
        p[PROD_EXMEM_P1].dest = Some((7, false));
        let route = hdcu.route(0, 0, 7, false, &p, &FREE);
        assert_eq!(route.select, Some(SRC_EXMEM_P1));
    }

    #[test]
    fn memwb_matches_when_exmem_does_not() {
        let hdcu = Hdcu::new(CoreKind::A);
        let mut p = producers([(None, false); 4]);
        p[PROD_MEMWB_P0].dest = Some((3, false));
        let route = hdcu.route(1, 1, 3, false, &p, &FREE);
        assert_eq!(route.select, Some(SRC_MEMWB_P0));
    }

    #[test]
    fn load_use_requests_a_stall() {
        let hdcu = Hdcu::new(CoreKind::A);
        let mut p = producers([(None, false); 4]);
        p[PROD_EXMEM_P0] = ProducerView { dest: Some((9, false)), load_pending: true };
        let route = hdcu.route(0, 0, 9, false, &p, &FREE);
        assert!(route.stall_request);
        assert_eq!(route.select, Some(SRC_EXMEM_P0), "encoder keeps driving");
    }

    #[test]
    fn dead_stall_line_forwards_garbage_instead() {
        let plane = armed(HDCU_CTRL, Element::StallLine { line: 0 }, Polarity::StuckAt0);
        let hdcu = Hdcu::new(CoreKind::A);
        let mut p = producers([(None, false); 4]);
        p[PROD_EXMEM_P0] = ProducerView { dest: Some((9, false)), load_pending: true };
        let route = hdcu.route(0, 0, 9, false, &p, &plane);
        assert!(!route.stall_request, "stall suppressed by the fault");
        assert_eq!(
            route.select,
            Some(SRC_EXMEM_P0),
            "missing stall forwards the not-yet-ready value"
        );
    }

    #[test]
    fn cmp_fault_misses_the_dependency() {
        // Kill comparator consumer(0,0) x producer EXMEM_P1.
        let id = Hdcu::cmp_id(0, 0, PROD_EXMEM_P1);
        let plane = armed(id, Element::CmpOut, Polarity::StuckAt0);
        let hdcu = Hdcu::new(CoreKind::A);
        let mut p = producers([(None, false); 4]);
        p[PROD_EXMEM_P1].dest = Some((7, false));
        let route = hdcu.route(0, 0, 7, false, &p, &plane);
        assert_eq!(route.select, Some(SRC_RF), "stale RF value selected");
    }

    #[test]
    fn cmp_fault_forges_a_dependency() {
        let id = Hdcu::cmp_id(0, 0, PROD_EXMEM_P0);
        let plane = armed(id, Element::CmpOut, Polarity::StuckAt1);
        let hdcu = Hdcu::new(CoreKind::A);
        let mut p = producers([(None, false); 4]);
        p[PROD_EXMEM_P0].dest = Some((3, false));
        // Consumer reads r9, no real dependency on r3.
        let route = hdcu.route(0, 0, 9, false, &p, &plane);
        assert_eq!(route.select, Some(SRC_EXMEM_P0), "wrong forward");
    }

    #[test]
    fn global_stall_aggregation_and_faults() {
        let hdcu = Hdcu::new(CoreKind::A);
        assert!(hdcu.aggregate_stall(&[false, true, false, false], &FREE));
        assert!(!hdcu.aggregate_stall(&[false; 4], &FREE));
        let sa1 = armed(HDCU_CTRL, Element::StallLine { line: 4 }, Polarity::StuckAt1);
        assert!(hdcu.aggregate_stall(&[false; 4], &sa1), "permanent stall");
        let sa0 = armed(HDCU_CTRL, Element::StallLine { line: 4 }, Polarity::StuckAt0);
        assert!(!hdcu.aggregate_stall(&[true; 4], &sa0), "stalls suppressed");
        // The buffered copy only exists on core B.
        let buf = armed(HDCU_CTRL, Element::StallLine { line: 5 }, Polarity::StuckAt1);
        assert!(!hdcu.aggregate_stall(&[false; 4], &buf), "inert on core A");
        assert!(Hdcu::new(CoreKind::B).aggregate_stall(&[false; 4], &buf));
    }

    #[test]
    fn select_encoder_fault_can_kill_the_select() {
        let hdcu = Hdcu::new(CoreKind::A);
        assert_eq!(hdcu.encode_select(2, SRC_EXMEM_P0, &FREE), Some(SRC_EXMEM_P0));
        // Force bit 2: select 1 (001) becomes 5 (101) -> dead code.
        let plane = armed(
            HDCU_CTRL,
            Element::SelEncLine { mux: 2, bit: 2 },
            Polarity::StuckAt1,
        );
        assert_eq!(hdcu.encode_select(2, SRC_EXMEM_P0, &plane), None);
        assert_eq!(
            hdcu.encode_select(0, SRC_EXMEM_P0, &plane),
            Some(SRC_EXMEM_P0),
            "other mux unaffected"
        );
    }

    #[test]
    fn split_on_intra_packet_raw() {
        let hdcu = Hdcu::new(CoreKind::A);
        let i0 = Instr::Alu { op: AluOp::Add, rd: Reg::R5, rs1: Reg::R1, rs2: Reg::R2 };
        let dep = Instr::Alu { op: AluOp::Add, rd: Reg::R6, rs1: Reg::R5, rs2: Reg::R2 };
        let indep = Instr::Alu { op: AluOp::Add, rd: Reg::R6, rs1: Reg::R1, rs2: Reg::R2 };
        assert!(hdcu.needs_split(&i0, &dep, &FREE));
        assert!(!hdcu.needs_split(&i0, &indep, &FREE));
    }

    #[test]
    fn split_fault_sa0_misses_the_raw() {
        let plane = armed(split_cmp_id(0), Element::CmpOut, Polarity::StuckAt0);
        let hdcu = Hdcu::new(CoreKind::A);
        let i0 = Instr::Alu { op: AluOp::Add, rd: Reg::R5, rs1: Reg::R1, rs2: Reg::R2 };
        let dep = Instr::Alu { op: AluOp::Add, rd: Reg::R6, rs1: Reg::R5, rs2: Reg::R2 };
        assert!(!hdcu.needs_split(&i0, &dep, &plane), "RAW missed -> stale RF read");
    }

    #[test]
    fn split_fault_sa1_inserts_needless_splits() {
        let plane = armed(split_cmp_id(0), Element::CmpOut, Polarity::StuckAt1);
        let hdcu = Hdcu::new(CoreKind::A);
        let i0 = Instr::Alu { op: AluOp::Add, rd: Reg::R5, rs1: Reg::R1, rs2: Reg::R2 };
        let indep = Instr::Alu { op: AluOp::Add, rd: Reg::R6, rs1: Reg::R1, rs2: Reg::R2 };
        assert!(
            hdcu.needs_split(&i0, &indep, &plane),
            "spurious split: only the performance counters can see this"
        );
    }

    #[test]
    fn structural_split_rules() {
        let hdcu = Hdcu::new(CoreKind::A);
        let alu = Instr::Alu { op: AluOp::Add, rd: Reg::R5, rs1: Reg::R1, rs2: Reg::R2 };
        let load = Instr::Load { rd: Reg::R6, base: Reg::R1, off: 0 };
        assert!(hdcu.needs_split(&alu, &load, &FREE), "mem ops only in slot 0");
        assert!(hdcu.needs_split(&Instr::Halt, &alu, &FREE));
        let br = Instr::Branch {
            cond: sbst_isa::Cond::Eq,
            rs1: Reg::R0,
            rs2: Reg::R0,
            off: 8,
        };
        assert!(hdcu.needs_split(&br, &alu, &FREE));
    }

    #[test]
    fn overlap_interlock_on_core_c() {
        let hdcu = Hdcu::new(CoreKind::C);
        let mut p = producers([(None, false); 4]);
        // Producer wrote the pair (r4, r5); consumer reads r5 as 32-bit.
        p[PROD_EXMEM_P0].dest = Some((4, true));
        let route = hdcu.route(0, 0, 5, false, &p, &FREE);
        assert!(route.stall_request);
        // Exact 64-bit consumers forward normally.
        let route = hdcu.route(0, 0, 4, true, &p, &FREE);
        assert_eq!(route.select, Some(SRC_EXMEM_P0));
        assert!(!route.stall_request);
    }

    #[test]
    fn overlap_detector_fault_misses_the_interlock() {
        let plane = armed(overlap_cmp_id(0, 0), Element::CmpOut, Polarity::StuckAt0);
        let hdcu = Hdcu::new(CoreKind::C);
        let mut p = producers([(None, false); 4]);
        p[PROD_EXMEM_P0].dest = Some((4, true));
        let route = hdcu.route(0, 0, 5, false, &p, &plane);
        assert!(!route.stall_request, "interlock missed");
        assert_eq!(route.select, Some(SRC_RF));
    }

    #[test]
    fn fault_site_counts_scale_with_kind() {
        let a = Hdcu::fault_sites(CoreKind::A).len();
        let b = Hdcu::fault_sites(CoreKind::B).len();
        let c = Hdcu::fault_sites(CoreKind::C).len();
        assert!(c > a, "core C adds overlap detectors: {c} vs {a}");
        assert_ne!(a, b, "different physical design");
    }

    #[test]
    fn ranges() {
        assert!(ranges_overlap(4, true, 5, false));
        assert!(ranges_overlap(5, false, 4, true));
        assert!(!ranges_overlap(4, true, 6, false));
        assert!(ranges_overlap(4, true, 5, true));
    }
}
