//! Architectural execution semantics shared by the pipeline model and the
//! functional reference model ([`RefCpu`](crate::RefCpu)).

use sbst_isa::{AluOp, Cause};

/// Result of a 32-bit ALU evaluation: the (wrapping) value plus the
/// imprecise exception it raises, if any.
pub fn alu32(op: AluOp, a: u32, b: u32) -> (u32, Option<Cause>) {
    match op {
        AluOp::Add => (a.wrapping_add(b), None),
        AluOp::Sub => (a.wrapping_sub(b), None),
        AluOp::And => (a & b, None),
        AluOp::Or => (a | b, None),
        AluOp::Xor => (a ^ b, None),
        AluOp::Sll => (a.wrapping_shl(b & 31), None),
        AluOp::Srl => (a.wrapping_shr(b & 31), None),
        AluOp::Sra => ((a as i32).wrapping_shr(b & 31) as u32, None),
        AluOp::Slt => (u32::from((a as i32) < (b as i32)), None),
        AluOp::Mul => (a.wrapping_mul(b), None),
        AluOp::AddV => {
            let (v, ovf) = (a as i32).overflowing_add(b as i32);
            (v as u32, ovf.then_some(Cause::Overflow))
        }
        AluOp::MulV => {
            let wide = (a as i32 as i64) * (b as i32 as i64);
            let v = wide as i32;
            ((v as u32), (wide != v as i64).then_some(Cause::MulOverflow))
        }
    }
}

/// Expands a 16-bit instruction immediate to the 32-bit operand value.
///
/// Arithmetic/comparison immediates (`addi`, `slti`, `addvi`) are
/// sign-extended; logical and shift immediates (`andi`, `ori`, `xori`,
/// `slli`, `srli`, `srai`) are zero-extended so that `li` (`lui`+`ori`)
/// can synthesize any 32-bit constant.
pub fn imm_operand(op: AluOp, imm: i16) -> u32 {
    match op {
        AluOp::Add | AluOp::Slt | AluOp::AddV => imm as i32 as u32,
        _ => imm as u16 as u32,
    }
}

/// 64-bit (register-pair) ALU evaluation, core C only.
pub fn alu64(op: AluOp, a: u64, b: u64) -> (u64, Option<Cause>) {
    match op {
        AluOp::Add => (a.wrapping_add(b), None),
        AluOp::Sub => (a.wrapping_sub(b), None),
        AluOp::And => (a & b, None),
        AluOp::Or => (a | b, None),
        AluOp::Xor => (a ^ b, None),
        AluOp::Sll => (a.wrapping_shl((b & 63) as u32), None),
        AluOp::Srl => (a.wrapping_shr((b & 63) as u32), None),
        AluOp::Sra => ((a as i64).wrapping_shr((b & 63) as u32) as u64, None),
        AluOp::Slt => (u64::from((a as i64) < (b as i64)), None),
        AluOp::Mul => (a.wrapping_mul(b), None),
        AluOp::AddV => {
            let (v, ovf) = (a as i64).overflowing_add(b as i64);
            (v as u64, ovf.then_some(Cause::Overflow))
        }
        AluOp::MulV => {
            let (v, ovf) = (a as i64).overflowing_mul(b as i64);
            (v as u64, ovf.then_some(Cause::MulOverflow))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_wraps_silently() {
        assert_eq!(alu32(AluOp::Add, u32::MAX, 1), (0, None));
    }

    #[test]
    fn addv_raises_on_signed_overflow() {
        let (v, c) = alu32(AluOp::AddV, i32::MAX as u32, 1);
        assert_eq!(v, i32::MIN as u32, "wrapped result still produced");
        assert_eq!(c, Some(Cause::Overflow));
        assert_eq!(alu32(AluOp::AddV, 1, 2), (3, None));
    }

    #[test]
    fn mulv_raises_when_product_overflows() {
        assert_eq!(alu32(AluOp::MulV, 3, 4), (12, None));
        let (_, c) = alu32(AluOp::MulV, 0x4000_0000, 4);
        assert_eq!(c, Some(Cause::MulOverflow));
    }

    #[test]
    fn shifts_mask_amount() {
        assert_eq!(alu32(AluOp::Sll, 1, 33).0, 2);
        assert_eq!(alu32(AluOp::Sra, 0x8000_0000, 31).0, u32::MAX);
    }

    #[test]
    fn slt_is_signed() {
        assert_eq!(alu32(AluOp::Slt, u32::MAX, 0).0, 1, "-1 < 0");
    }

    #[test]
    fn imm_extension_rules() {
        assert_eq!(imm_operand(AluOp::Add, -1), u32::MAX);
        assert_eq!(imm_operand(AluOp::Or, -1), 0xffff);
        assert_eq!(imm_operand(AluOp::Xor, 0x7fff), 0x7fff);
    }

    #[test]
    fn alu64_basics() {
        assert_eq!(alu64(AluOp::Add, u64::MAX, 1), (0, None));
        let (v, c) = alu64(AluOp::AddV, i64::MAX as u64, 1);
        assert_eq!(v, i64::MIN as u64);
        assert_eq!(c, Some(Cause::Overflow));
        assert_eq!(alu64(AluOp::Sll, 1, 63).0, 1 << 63);
    }
}
