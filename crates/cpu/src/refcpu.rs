//! A single-cycle functional reference model.
//!
//! Executes the same ISA as the pipelined [`Core`](crate::Core) but with
//! no timing, no caches and no interrupt imprecision. Used by the test
//! suite for *differential testing*: any cause-free program must leave
//! the same architectural state in both models regardless of pipeline
//! hazards, forwarding and memory latencies.

use std::collections::HashMap;

use sbst_isa::{Cause, Instr, Program, Reg};

use crate::exec::{alu32, alu64, imm_operand};
use crate::CoreKind;

/// Why the reference model stopped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RefStop {
    /// A `halt` instruction was executed.
    Halted,
    /// The step budget ran out.
    OutOfFuel,
    /// An instruction raised a cause (the reference model does not
    /// emulate imprecise traps).
    Raised(Cause),
    /// The PC left every loaded program image.
    WildPc(u32),
}

/// The functional reference CPU.
#[derive(Debug, Clone)]
pub struct RefCpu {
    kind: CoreKind,
    regs: [u32; 32],
    mem: HashMap<u32, u32>,
    code: Vec<Program>,
    pc: u32,
}

impl RefCpu {
    /// Creates a reference CPU of the given kind, starting at
    /// `program.base()`.
    pub fn new(kind: CoreKind, program: Program) -> RefCpu {
        let pc = program.base();
        RefCpu { kind, regs: [0; 32], mem: HashMap::new(), code: vec![program], pc }
    }

    /// Registers after execution.
    pub fn regs(&self) -> &[u32; 32] {
        &self.regs
    }

    /// One register.
    pub fn reg(&self, r: Reg) -> u32 {
        self.regs[r.index()]
    }

    /// Word of data memory (0 if never written).
    pub fn mem_word(&self, addr: u32) -> u32 {
        // Reads fall back to program images (constant pools in Flash).
        self.mem.get(&addr).copied().unwrap_or_else(|| {
            self.code.iter().find_map(|p| p.word_at(addr)).unwrap_or(0)
        })
    }

    /// Pre-sets a word of data memory.
    pub fn poke(&mut self, addr: u32, value: u32) {
        self.mem.insert(addr, value);
    }

    fn write_reg(&mut self, r: Reg, v: u32) {
        if !r.is_zero() {
            self.regs[r.index()] = v;
        }
    }

    fn read64(&self, r: Reg) -> u64 {
        (self.regs[r.index()] as u64) | ((self.regs[r.index() + 1] as u64) << 32)
    }

    fn write64(&mut self, r: Reg, v: u64) {
        if !r.is_zero() {
            self.regs[r.index()] = v as u32;
        }
        self.regs[r.index() + 1] = (v >> 32) as u32;
    }

    /// Runs until `halt`, a raised cause, a wild PC or `fuel` executed
    /// instructions.
    pub fn run(&mut self, fuel: u64) -> RefStop {
        for _ in 0..fuel {
            let word = match self.code.iter().find_map(|p| p.word_at(self.pc)) {
                Some(w) => w,
                None => return RefStop::WildPc(self.pc),
            };
            let instr = match Instr::decode(word) {
                Ok(i) => i,
                Err(_) => return RefStop::Raised(Cause::Illegal),
            };
            let mut next = self.pc.wrapping_add(4);
            match instr {
                Instr::Nop => {}
                Instr::Halt => return RefStop::Halted,
                Instr::Alu { op, rd, rs1, rs2 } => {
                    let (v, c) = alu32(op, self.reg(rs1), self.reg(rs2));
                    if let Some(c) = c {
                        return RefStop::Raised(c);
                    }
                    self.write_reg(rd, v);
                }
                Instr::AluImm { op, rd, rs1, imm } => {
                    let (v, c) = alu32(op, self.reg(rs1), imm_operand(op, imm));
                    if let Some(c) = c {
                        return RefStop::Raised(c);
                    }
                    self.write_reg(rd, v);
                }
                Instr::Alu64 { op, rd, rs1, rs2 } => {
                    let legal = self.kind.has_alu64()
                        && rd.is_even()
                        && rs1.is_even()
                        && rs2.is_even()
                        && rd.index() < 31;
                    if !legal {
                        return RefStop::Raised(Cause::Illegal);
                    }
                    let (v, c) = alu64(op, self.read64(rs1), self.read64(rs2));
                    if let Some(c) = c {
                        return RefStop::Raised(c);
                    }
                    self.write64(rd, v);
                }
                Instr::Lui { rd, imm } => self.write_reg(rd, (imm as u32) << 16),
                Instr::Load { rd, base, off } => {
                    let addr = self.reg(base).wrapping_add(off as i32 as u32);
                    if !addr.is_multiple_of(4) {
                        return RefStop::Raised(Cause::Unaligned);
                    }
                    let v = self.mem_word(addr);
                    self.write_reg(rd, v);
                }
                Instr::Store { src, base, off } => {
                    let addr = self.reg(base).wrapping_add(off as i32 as u32);
                    if !addr.is_multiple_of(4) {
                        return RefStop::Raised(Cause::Unaligned);
                    }
                    self.mem.insert(addr, self.reg(src));
                }
                Instr::Amoswap { rd, base, src } => {
                    let addr = self.reg(base);
                    if !addr.is_multiple_of(4) {
                        return RefStop::Raised(Cause::Unaligned);
                    }
                    let old = self.mem_word(addr);
                    self.mem.insert(addr, self.reg(src));
                    self.write_reg(rd, old);
                }
                Instr::Branch { cond, rs1, rs2, off } => {
                    if cond.eval(self.reg(rs1), self.reg(rs2)) {
                        next = self.pc.wrapping_add(off as i32 as u32);
                    }
                }
                Instr::Jal { rd, off } => {
                    self.write_reg(rd, self.pc.wrapping_add(4));
                    next = self.pc.wrapping_add(off as u32);
                }
                Instr::Jalr { rd, base, off } => {
                    let target = self.reg(base).wrapping_add(off as i32 as u32) & !3;
                    self.write_reg(rd, self.pc.wrapping_add(4));
                    next = target;
                }
                // System instructions have no architectural effect in the
                // reference model (differential tests avoid them).
                Instr::CsrRead { rd, .. } => self.write_reg(rd, 0),
                Instr::CsrWrite { .. } | Instr::Cache(_) | Instr::Mret => {}
            }
            self.pc = next;
        }
        RefStop::OutOfFuel
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sbst_isa::Asm;

    #[test]
    fn runs_a_loop() {
        let mut a = Asm::new();
        let (r1, r2) = (Reg::R1, Reg::R2);
        a.li(r1, 5);
        a.label("spin");
        a.addi(r2, r2, 3);
        a.subi(r1, r1, 1);
        a.bne(r1, Reg::R0, "spin");
        a.halt();
        let mut cpu = RefCpu::new(CoreKind::A, a.assemble(0x100).unwrap());
        assert_eq!(cpu.run(1000), RefStop::Halted);
        assert_eq!(cpu.reg(r2), 15);
    }

    #[test]
    fn memory_roundtrip_and_swap() {
        let mut a = Asm::new();
        a.li(Reg::R1, 0x2000_0000);
        a.li(Reg::R2, 77);
        a.sw(Reg::R2, Reg::R1, 8);
        a.lw(Reg::R3, Reg::R1, 8);
        a.li(Reg::R4, 5);
        a.addi(Reg::R5, Reg::R1, 8);
        a.amoswap(Reg::R6, Reg::R4, Reg::R5);
        a.halt();
        let mut cpu = RefCpu::new(CoreKind::A, a.assemble(0).unwrap());
        assert_eq!(cpu.run(100), RefStop::Halted);
        assert_eq!(cpu.reg(Reg::R3), 77);
        assert_eq!(cpu.reg(Reg::R6), 77);
        assert_eq!(cpu.mem_word(0x2000_0008), 5);
    }

    #[test]
    fn alu64_requires_core_c() {
        let mut a = Asm::new();
        a.alu64(sbst_isa::AluOp::Add, Reg::R4, Reg::R2, Reg::R6);
        a.halt();
        let p = a.assemble(0).unwrap();
        let mut on_a = RefCpu::new(CoreKind::A, p.clone());
        assert_eq!(on_a.run(10), RefStop::Raised(Cause::Illegal));
        let mut on_c = RefCpu::new(CoreKind::C, p);
        assert_eq!(on_c.run(10), RefStop::Halted);
    }

    #[test]
    fn overflow_stops_the_model() {
        let mut a = Asm::new();
        a.li(Reg::R1, 0x7fff_ffff);
        a.addv(Reg::R2, Reg::R1, Reg::R1);
        a.halt();
        let mut cpu = RefCpu::new(CoreKind::A, a.assemble(0).unwrap());
        assert_eq!(cpu.run(10), RefStop::Raised(Cause::Overflow));
    }

    #[test]
    fn wild_pc_detected() {
        let mut a = Asm::new();
        a.nop(); // runs off the end
        let mut cpu = RefCpu::new(CoreKind::A, a.assemble(0).unwrap());
        assert_eq!(cpu.run(10), RefStop::WildPc(4));
    }
}
