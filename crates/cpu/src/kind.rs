//! Core variants of the modeled SoC.

use sbst_isa::Cause;

/// The three processor cores of the paper's triple-core SoC.
///
/// Cores A and B are the same 32-bit architecture but underwent different
/// physical design processes (their stuck-at fault lists differ); core C
/// implements an extended instruction set with 64-bit register-pair
/// operands, a 64-bit forwarding datapath and a fully decoded ICU cause
/// register.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CoreKind {
    /// 32-bit core, reference netlist.
    A,
    /// 32-bit core, resynthesized netlist (different fault universe).
    B,
    /// 64-bit-capable core with extended ISA.
    C,
}

impl CoreKind {
    /// All core kinds in SoC order (core id 0 = A, 1 = B, 2 = C).
    pub const ALL: [CoreKind; 3] = [CoreKind::A, CoreKind::B, CoreKind::C];

    /// Forwarding datapath width in bits.
    pub fn datapath_bits(self) -> u8 {
        match self {
            CoreKind::A | CoreKind::B => 32,
            CoreKind::C => 64,
        }
    }

    /// Whether the 64-bit register-pair ALU ops are implemented.
    pub fn has_alu64(self) -> bool {
        self == CoreKind::C
    }

    /// Which ICU cause-register bit a cause maps to.
    ///
    /// Cores A and B map *pairs* of interrupt events onto shared bits
    /// (the paper's source of fault masking on those cores); core C
    /// dedicates one bit per cause.
    pub fn cause_bit(self, cause: Cause) -> u8 {
        match self {
            CoreKind::A | CoreKind::B => (cause.index() / 2) as u8,
            CoreKind::C => cause.index() as u8,
        }
    }

    /// Width of the ICU cause register in bits.
    pub fn cause_bits(self) -> u8 {
        match self {
            CoreKind::A | CoreKind::B => 2,
            CoreKind::C => 4,
        }
    }

    /// Whether the netlist decomposition uses a chained OR plane in the
    /// forwarding muxes (core B's resynthesis) — adds `MuxOrNode` sites.
    pub fn has_or_chain_sites(self) -> bool {
        self == CoreKind::B
    }
}

impl std::fmt::Display for CoreKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            CoreKind::A => "A",
            CoreKind::B => "B",
            CoreKind::C => "C",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cause_mapping_shares_bits_on_a_and_b() {
        assert_eq!(CoreKind::A.cause_bit(Cause::Overflow), 0);
        assert_eq!(CoreKind::A.cause_bit(Cause::MulOverflow), 0);
        assert_eq!(CoreKind::A.cause_bit(Cause::Unaligned), 1);
        assert_eq!(CoreKind::A.cause_bit(Cause::Illegal), 1);
        for c in Cause::ALL {
            assert_eq!(CoreKind::C.cause_bit(c), c.index() as u8);
            assert_eq!(CoreKind::A.cause_bit(c), CoreKind::B.cause_bit(c));
        }
    }

    #[test]
    fn datapaths() {
        assert_eq!(CoreKind::A.datapath_bits(), 32);
        assert_eq!(CoreKind::C.datapath_bits(), 64);
        assert!(CoreKind::C.has_alu64());
        assert!(!CoreKind::B.has_alu64());
        assert!(CoreKind::B.has_or_chain_sites());
    }
}
