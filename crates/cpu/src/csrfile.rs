//! Performance counters and CSR file.

use sbst_isa::Csr;

/// The per-core CSR file: performance counters, scratch registers and
/// the trap vector. ICU-owned CSRs (`IcuCause`, `IcuPending`, `IcuMask`,
/// `Epc`, `IcuDepth`) are serviced by the [`Icu`](crate::Icu) and only
/// routed through here.
#[derive(Debug, Clone, Default)]
pub struct CsrFile {
    /// Free-running cycle counter.
    pub cycles: u64,
    /// Retired instructions.
    pub retired: u64,
    /// Fetch-stall cycles (issue wanted a packet, none was ready).
    pub if_stalls: u64,
    /// Data-memory stall cycles (MEM stage waiting).
    pub mem_stalls: u64,
    /// Hazard-stall cycles inserted by the HDCU.
    pub haz_stalls: u64,
    /// Operand reads satisfied by a forwarding path instead of the
    /// register file. Deliberately *not* a software-visible CSR: adding
    /// a `Csr` variant would change how random CSR-number instructions
    /// decode, and this counter must be observable without perturbing
    /// any program.
    pub fwd_uses: u64,
    /// Software scratch registers.
    pub scratch: [u32; 2],
    /// Trap handler vector (0 = no handler installed).
    pub trap_vec: u32,
    core_id: u32,
}

impl CsrFile {
    /// Creates a zeroed CSR file for core `core_id`.
    pub fn new(core_id: u32) -> CsrFile {
        CsrFile { core_id, ..CsrFile::default() }
    }

    /// Software read of a non-ICU CSR (low 32 bits of counters).
    ///
    /// Returns `None` for ICU-owned CSRs (the core routes those to the
    /// ICU).
    pub fn read(&self, csr: Csr) -> Option<u32> {
        Some(match csr {
            Csr::Cycles => self.cycles as u32,
            Csr::Retired => self.retired as u32,
            Csr::IfStalls => self.if_stalls as u32,
            Csr::MemStalls => self.mem_stalls as u32,
            Csr::HazStalls => self.haz_stalls as u32,
            Csr::CoreId => self.core_id,
            Csr::TrapVec => self.trap_vec,
            Csr::Scratch0 => self.scratch[0],
            Csr::Scratch1 => self.scratch[1],
            _ => return None,
        })
    }

    /// Architectural-trajectory equality for livelock detection: scratch
    /// registers and trap vector only. The performance counters are
    /// deliberately excluded — they advance monotonically every cycle,
    /// so no two states of a spinning loop could ever compare equal
    /// through them. Excluding them is sound only when the loop body
    /// never *reads* a counter CSR; the campaign's loop detector
    /// verifies that separately from the instruction tap.
    pub fn loop_state_eq(&self, other: &CsrFile) -> bool {
        self.scratch == other.scratch
            && self.trap_vec == other.trap_vec
            && self.core_id == other.core_id
    }

    /// Software write of a non-ICU CSR.
    ///
    /// Returns `false` for CSRs not owned (or not writable) here.
    pub fn write(&mut self, csr: Csr, value: u32) -> bool {
        match csr {
            Csr::Scratch0 => self.scratch[0] = value,
            Csr::Scratch1 => self.scratch[1] = value,
            Csr::TrapVec => self.trap_vec = value,
            _ => return false,
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_read_low_32_bits() {
        let mut f = CsrFile::new(2);
        f.cycles = 0x1_0000_0007;
        assert_eq!(f.read(Csr::Cycles), Some(7));
        assert_eq!(f.read(Csr::CoreId), Some(2));
    }

    #[test]
    fn icu_csrs_are_not_serviced_here() {
        let f = CsrFile::new(0);
        assert_eq!(f.read(Csr::IcuCause), None);
        assert_eq!(f.read(Csr::Epc), None);
    }

    #[test]
    fn scratch_is_writable_counters_are_not() {
        let mut f = CsrFile::new(0);
        assert!(f.write(Csr::Scratch0, 42));
        assert_eq!(f.read(Csr::Scratch0), Some(42));
        assert!(!f.write(Csr::Cycles, 1));
    }
}
