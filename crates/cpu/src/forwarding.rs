//! The forwarding (bypass) network.
//!
//! Per consumer slot and operand there is a 5-input operand mux selecting
//! among the register file and the four pipeline-register forwarding
//! paths; per pipe there is a 3-input writeback-select mux collecting the
//! results of the execution units. These are the muxes whose stuck-at
//! faults the paper's Table II grades (the "Forwarding Logic").

use sbst_fault::{gates, Element, FaultPlane, FaultSite, Polarity, Unit};

use crate::CoreKind;

/// Operand-mux source index: register-file value (no forwarding).
pub const SRC_RF: usize = 0;
/// Source index: EX/MEM pipeline register, pipe 0 (one packet ahead).
pub const SRC_EXMEM_P0: usize = 1;
/// Source index: EX/MEM pipeline register, pipe 1.
pub const SRC_EXMEM_P1: usize = 2;
/// Source index: MEM/WB pipeline register, pipe 0 (two packets ahead).
pub const SRC_MEMWB_P0: usize = 3;
/// Source index: MEM/WB pipeline register, pipe 1.
pub const SRC_MEMWB_P1: usize = 4;
/// Number of operand-mux sources.
pub const OPERAND_SOURCES: usize = 5;

/// Writeback-mux source index: ALU result.
pub const WB_SRC_ALU: usize = 0;
/// Writeback-mux source index: load data.
pub const WB_SRC_MEM: usize = 1;
/// Writeback-mux source index: CSR read value.
pub const WB_SRC_CSR: usize = 2;
/// Number of writeback-mux sources.
pub const WB_SOURCES: usize = 3;

/// Mux instance id of the operand mux for (`slot`, `operand`).
pub fn operand_mux_id(slot: usize, operand: usize) -> u16 {
    debug_assert!(slot < 2 && operand < 2);
    (slot * 2 + operand) as u16
}

/// Mux instance id of the writeback-select mux of `pipe`.
pub fn wb_mux_id(pipe: usize) -> u16 {
    debug_assert!(pipe < 2);
    4 + pipe as u16
}

/// The forwarding network of one core: four operand muxes plus two
/// writeback-select muxes, fault-injectable per pin.
///
/// The network is combinational except for one word of history per mux,
/// kept to model the small-delay-defect extension
/// ([`Element::MuxPathDelay`]).
#[derive(Debug, Clone)]
pub struct ForwardingNetwork {
    kind: CoreKind,
    last_out: [u64; 6],
}

impl ForwardingNetwork {
    /// Creates the network for a core kind (datapath width 32 for A/B,
    /// 64 for C).
    pub fn new(kind: CoreKind) -> ForwardingNetwork {
        ForwardingNetwork { kind, last_out: [0; 6] }
    }

    /// Datapath width in bits.
    pub fn width(&self) -> u8 {
        self.kind.datapath_bits()
    }

    /// The per-mux one-word delay history (indexed by mux instance id).
    /// Campaign lane graders seed their reconstruction of a
    /// [`Element::MuxPathDelay`] fault's history from this, and livelock
    /// detection includes it in state comparison.
    pub fn delay_state(&self) -> &[u64; 6] {
        &self.last_out
    }

    fn mux(&mut self, id: u16, inputs: &[u64], sel: Option<usize>, plane: &FaultPlane) -> u64 {
        let fault = plane.query(Unit::Forwarding, id);
        let width = self.width();
        mux_eval(inputs, sel, width, fault, &mut self.last_out[id as usize])
    }

    /// Resolves one consumer operand through its forwarding mux.
    ///
    /// `inputs` are the five candidate values (indexed by the `SRC_*`
    /// constants); `sel` is the select code produced by the HDCU encoder
    /// (`None` = out-of-range faulty code).
    pub fn operand(
        &mut self,
        slot: usize,
        operand: usize,
        inputs: &[u64; OPERAND_SOURCES],
        sel: Option<usize>,
        plane: &FaultPlane,
    ) -> u64 {
        self.mux(operand_mux_id(slot, operand), inputs, sel, plane)
    }

    /// Selects the writeback value of `pipe` among ALU / load / CSR.
    pub fn wb_value(
        &mut self,
        pipe: usize,
        inputs: &[u64; WB_SOURCES],
        sel: usize,
        plane: &FaultPlane,
    ) -> u64 {
        self.mux(wb_mux_id(pipe), inputs, Some(sel), plane)
    }

    /// Enumerates every stuck-at fault site of the forwarding logic for a
    /// core kind.
    ///
    /// Core C's 64-bit datapath roughly doubles the site count (the
    /// paper's core C has ~2x the forwarding faults of A/B); core B's
    /// resynthesized OR plane adds [`Element::MuxOrNode`] sites.
    pub fn fault_sites(kind: CoreKind) -> Vec<FaultSite> {
        let width = kind.datapath_bits();
        let mut sites = Vec::new();
        let mut mux_sites = |instance: u16, srcs: u8, width: u8| {
            let mut push = |element| {
                for polarity in Polarity::BOTH {
                    sites.push(FaultSite { unit: Unit::Forwarding, instance, element, polarity });
                }
            };
            for src in 0..srcs {
                push(Element::MuxSelStem { src });
                for bit in 0..width {
                    push(Element::MuxDataIn { src, bit });
                    push(Element::MuxSelBranch { src, bit });
                    push(Element::MuxAndOut { src, bit });
                    if kind.has_or_chain_sites() {
                        push(Element::MuxOrNode { node: src, bit });
                    }
                }
            }
            for bit in 0..width {
                push(Element::MuxOrOut { bit });
            }
        };
        for slot in 0..2 {
            for operand in 0..2 {
                mux_sites(operand_mux_id(slot, operand), OPERAND_SOURCES as u8, width);
            }
        }
        for pipe in 0..2 {
            mux_sites(wb_mux_id(pipe), WB_SOURCES as u8, width);
        }
        sites
    }

    /// Enumerates the small-delay-defect sites (extension, paper §V).
    pub fn delay_fault_sites(kind: CoreKind) -> Vec<FaultSite> {
        let width = kind.datapath_bits();
        let mut sites = Vec::new();
        for slot in 0..2 {
            for operand in 0..2 {
                for src in 0..OPERAND_SOURCES as u8 {
                    for bit in 0..width {
                        sites.push(FaultSite {
                            unit: Unit::Forwarding,
                            instance: operand_mux_id(slot, operand),
                            element: Element::MuxPathDelay { src, bit },
                            polarity: Polarity::StuckAt0, // unused for delay
                        });
                    }
                }
            }
        }
        sites
    }
}

/// One mux evaluation of the forwarding network's gate decomposition —
/// the single function both the in-pipeline network above and the
/// campaign's bit-parallel (PPSFP) lane graders evaluate, so a lane's
/// reconstruction of a faulty mux output is exact by construction.
///
/// `fault` is the armed fault *if it lives in this mux instance* (the
/// caller resolves instance matching); `last_out` is this instance's
/// one-word delay history, updated to the fault-free/pre-delay output
/// exactly as the in-pipeline network does.
pub fn mux_eval(
    inputs: &[u64],
    sel: Option<usize>,
    width: u8,
    fault: Option<(Element, Polarity)>,
    last_out: &mut u64,
) -> u64 {
    let out = match sel {
        // A faulted select encoder can produce a code no one-hot line
        // decodes to: no AND gate opens and the OR plane yields 0
        // (modulo select-stem faults, handled by evaluating with a
        // guaranteed-dead select).
        None => gates::mux_out(&vec![0u64; inputs.len()], 0, width, fault)
            | leak_from_stems(inputs, width, fault),
        Some(s) => gates::mux_out(inputs, s, width, fault),
    };
    // Small-delay defect: the faulted bit lags one evaluation behind
    // the fault-free value (the history records what the fast path
    // would have produced).
    let delayed = if let Some((Element::MuxPathDelay { src, bit }, _)) = fault {
        if sel == Some(src as usize) && bit < width {
            let mask = 1u64 << bit;
            (out & !mask) | (*last_out & mask)
        } else {
            out
        }
    } else {
        out
    };
    *last_out = out;
    delayed
}

/// Sources leaked by select-stem/branch stuck-at-1 faults when the
/// nominal select code is dead (out of range).
fn leak_from_stems(inputs: &[u64], width: u8, fault: Option<(Element, Polarity)>) -> u64 {
    let mask = if width == 64 { u64::MAX } else { (1u64 << width) - 1 };
    match fault {
        Some((Element::MuxSelStem { src }, pol)) if pol.value() => {
            inputs.get(src as usize).copied().unwrap_or(0) & mask
        }
        Some((Element::MuxSelBranch { src, bit }, pol)) if pol.value() && bit < width => {
            inputs.get(src as usize).copied().unwrap_or(0) & (1 << bit)
        }
        _ => 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const FREE: FaultPlane = FaultPlane::fault_free();

    fn site(instance: u16, element: Element, polarity: Polarity) -> FaultPlane {
        FaultPlane::armed(FaultSite { unit: Unit::Forwarding, instance, element, polarity })
    }

    #[test]
    fn operand_selects_each_source() {
        let mut net = ForwardingNetwork::new(CoreKind::A);
        let inputs = [10, 20, 30, 40, 50];
        for (s, &v) in inputs.iter().enumerate() {
            assert_eq!(net.operand(0, 0, &inputs, Some(s), &FREE), v);
        }
    }

    #[test]
    fn dead_select_yields_zero() {
        let mut net = ForwardingNetwork::new(CoreKind::A);
        assert_eq!(net.operand(1, 1, &[1, 2, 3, 4, 5], None, &FREE), 0);
    }

    #[test]
    fn dead_select_still_leaks_stem_sa1() {
        let plane = site(0, Element::MuxSelStem { src: 3 }, Polarity::StuckAt1);
        let mut net = ForwardingNetwork::new(CoreKind::A);
        assert_eq!(net.operand(0, 0, &[1, 2, 3, 4, 5], None, &plane), 4);
    }

    #[test]
    fn fault_is_local_to_one_mux_instance() {
        let plane = site(2, Element::MuxOrOut { bit: 0 }, Polarity::StuckAt1);
        let mut net = ForwardingNetwork::new(CoreKind::A);
        // Instance 2 is slot 1 operand 0.
        assert_eq!(net.operand(1, 0, &[0; 5], Some(0), &plane), 1);
        assert_eq!(net.operand(0, 0, &[0; 5], Some(0), &plane), 0);
        assert_eq!(net.wb_value(0, &[0, 0, 0], WB_SRC_ALU, &plane), 0);
    }

    #[test]
    fn wb_mux_selects() {
        let mut net = ForwardingNetwork::new(CoreKind::A);
        let inputs = [0xa, 0xb, 0xc];
        assert_eq!(net.wb_value(0, &inputs, WB_SRC_ALU, &FREE), 0xa);
        assert_eq!(net.wb_value(0, &inputs, WB_SRC_MEM, &FREE), 0xb);
        assert_eq!(net.wb_value(1, &inputs, WB_SRC_CSR, &FREE), 0xc);
    }

    #[test]
    fn core_c_width_is_64() {
        let mut net = ForwardingNetwork::new(CoreKind::C);
        let big = 0xdead_beef_0000_0001;
        assert_eq!(net.operand(0, 0, &[big, 0, 0, 0, 0], Some(0), &FREE), big);
        let mut net_a = ForwardingNetwork::new(CoreKind::A);
        assert_eq!(
            net_a.operand(0, 0, &[big, 0, 0, 0, 0], Some(0), &FREE),
            1,
            "32-bit datapath truncates"
        );
    }

    #[test]
    fn upper_half_faults_only_exist_on_core_c() {
        let plane = site(0, Element::MuxDataIn { src: 0, bit: 40 }, Polarity::StuckAt1);
        let mut c = ForwardingNetwork::new(CoreKind::C);
        assert_eq!(c.operand(0, 0, &[0; 5], Some(0), &plane), 1 << 40);
        let mut a = ForwardingNetwork::new(CoreKind::A);
        assert_eq!(a.operand(0, 0, &[0; 5], Some(0), &plane), 0, "inert on 32-bit");
    }

    #[test]
    fn delay_fault_lags_one_evaluation() {
        let sites = ForwardingNetwork::delay_fault_sites(CoreKind::A);
        let s = sites
            .iter()
            .find(|s| {
                s.instance == 0
                    && matches!(s.element, Element::MuxPathDelay { src: 0, bit: 0 })
            })
            .copied()
            .unwrap();
        let plane = FaultPlane::armed(s);
        let mut net = ForwardingNetwork::new(CoreKind::A);
        assert_eq!(net.operand(0, 0, &[0, 0, 0, 0, 0], Some(0), &plane), 0);
        // Bit 0 toggles 0 -> 1 but the slow path still shows 0.
        assert_eq!(net.operand(0, 0, &[1, 0, 0, 0, 0], Some(0), &plane), 0);
        // Now the value has propagated.
        assert_eq!(net.operand(0, 0, &[1, 0, 0, 0, 0], Some(0), &plane), 1);
    }

    #[test]
    fn site_counts_scale_with_kind() {
        let a = ForwardingNetwork::fault_sites(CoreKind::A).len();
        let b = ForwardingNetwork::fault_sites(CoreKind::B).len();
        let c = ForwardingNetwork::fault_sites(CoreKind::C).len();
        assert!(b > a, "B's resynthesis adds OR-chain sites: {b} vs {a}");
        assert!(c > 1, "C has sites");
        let ratio = c as f64 / a as f64;
        assert!(
            (1.7..2.3).contains(&ratio),
            "C/A forwarding fault ratio ~2 (paper: 113k/53k), got {ratio}"
        );
    }
}
