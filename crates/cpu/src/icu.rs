//! The Interrupt Control Unit: synchronous *imprecise* interrupts.
//!
//! Causes are latched when the offending instruction executes, but the
//! trap is only *recognised* [`RECOG_LAT`] cycles later. Instructions
//! issued in that window complete normally — the number of instructions
//! retired "beyond" the interrupting one (the imprecision depth) and the
//! captured EPC therefore depend on fetch/stall timing, which is exactly
//! why the paper's ICU self-test routine produces an unstable signature
//! in an uncached multi-core run.

use sbst_fault::{Element, FaultPlane, FaultSite, Polarity, Unit};
use sbst_isa::{Cause, Csr};

use crate::CoreKind;

/// Cycles between a cause being latched and the trap being recognised.
///
/// The window is long enough that, with warm caches, several younger
/// instructions enter the pipeline before recognition — while an
/// uncached Flash fetch may or may not deliver any, depending on bus
/// contention. This is the paper's "variable number of instructions
/// executed beyond the interrupting instruction".
pub const RECOG_LAT: u32 = 12;

/// Number of EPC capture bits exposed as fault sites.
const EPC_BITS: u8 = 32;
/// Number of imprecision-depth counter bits exposed as fault sites.
const DEPTH_BITS: u8 = 8;

/// The per-core Interrupt Control Unit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Icu {
    kind: CoreKind,
    pending: [bool; 4],
    mask: [bool; 4],
    countdown: Option<u32>,
    in_trap: bool,
    epc: u32,
    depth: u32,
}

impl Icu {
    /// Creates a reset ICU (nothing pending, all causes enabled).
    pub fn new(kind: CoreKind) -> Icu {
        Icu {
            kind,
            pending: [false; 4],
            mask: [true; 4],
            countdown: None,
            in_trap: false,
            epc: 0,
            depth: 0,
        }
    }

    /// Effective pending latch value for `cause`, with latch-Q faults.
    fn pending_eff(&self, cause: Cause, plane: &FaultPlane) -> bool {
        let mut v = self.pending[cause.index()];
        if let Some((Element::PendLatchQ { cause: c }, pol)) = plane.query(Unit::Icu, 0) {
            if c as usize == cause.index() {
                v = pol.value();
            }
        }
        v
    }

    /// Effective mask bit for `cause`, with mask-bit faults.
    fn mask_eff(&self, cause: Cause, plane: &FaultPlane) -> bool {
        let mut v = self.mask[cause.index()];
        if let Some((Element::MaskBit { cause: c }, pol)) = plane.query(Unit::Icu, 0) {
            if c as usize == cause.index() {
                v = pol.value();
            }
        }
        v
    }

    /// Latches `cause` (called from EX when an instruction raises it).
    ///
    /// Returns `true` when this raise *started* a recognition window
    /// (i.e. this is the interrupting instruction the imprecision depth
    /// is measured from).
    pub fn raise(&mut self, cause: Cause, plane: &FaultPlane) -> bool {
        let mut set = true;
        if let Some((Element::PendSetLine { cause: c }, pol)) = plane.query(Unit::Icu, 0) {
            if c as usize == cause.index() {
                set = pol.value();
            }
        }
        if set {
            self.pending[cause.index()] = true;
        }
        if self.countdown.is_none()
            && !self.in_trap
            && self.pending_eff(cause, plane)
            && self.mask_eff(cause, plane)
        {
            self.countdown = Some(RECOG_LAT);
            true
        } else {
            false
        }
    }

    /// Advances the recognition timer by one cycle; returns `true` when
    /// the trap must be taken *this* cycle.
    pub fn tick(&mut self, plane: &FaultPlane) -> bool {
        // A stuck-at-1 pending *set* line loads its latch every cycle —
        // the cause pends permanently and (if enabled) keeps trapping.
        if let Some((Element::PendSetLine { cause: c }, pol)) = plane.query(Unit::Icu, 0) {
            if pol.value() {
                if let Some(&cause) = Cause::ALL.get(c as usize) {
                    self.pending[cause.index()] = true;
                    if self.countdown.is_none()
                        && !self.in_trap
                        && self.mask_eff(cause, plane)
                    {
                        self.countdown = Some(RECOG_LAT);
                    }
                }
            }
        }
        // A stuck recognition line overrides the timer entirely.
        if let Some((Element::RecognizeLine, pol)) = plane.query(Unit::Icu, 0) {
            return pol.value() && !self.in_trap;
        }
        match self.countdown {
            Some(0) | None => false,
            Some(n) => {
                let n = n - 1;
                self.countdown = Some(n);
                if n == 0 {
                    self.countdown = None;
                    true
                } else {
                    false
                }
            }
        }
    }

    /// Records trap entry: captures EPC and imprecision depth (through
    /// possibly faulty capture registers) and blocks further recognition
    /// until [`mret`](Icu::mret).
    pub fn recognize(&mut self, epc: u32, depth: u32, plane: &FaultPlane) {
        let mut epc = epc;
        let mut depth = depth;
        match plane.query(Unit::Icu, 0) {
            Some((Element::EpcBit { bit }, pol)) if bit < EPC_BITS => {
                epc = pol.force(epc as u64, bit) as u32;
            }
            Some((Element::DepthBit { bit }, pol)) if bit < DEPTH_BITS => {
                depth = pol.force(depth as u64, bit) as u32;
            }
            _ => {}
        }
        self.epc = epc;
        self.depth = depth;
        self.in_trap = true;
        self.countdown = None;
    }

    /// Handles `mret`: leaves the trap context and, if enabled causes are
    /// still pending, restarts the recognition timer.
    pub fn mret(&mut self, plane: &FaultPlane) {
        self.in_trap = false;
        if Cause::ALL
            .iter()
            .any(|&c| self.pending_eff(c, plane) && self.mask_eff(c, plane))
        {
            self.countdown = Some(RECOG_LAT);
        }
    }

    /// Whether the core is inside a trap handler.
    pub fn in_trap(&self) -> bool {
        self.in_trap
    }

    /// Captured EPC.
    pub fn epc(&self) -> u32 {
        self.epc
    }

    /// Software CSR read of an ICU register.
    ///
    /// Returns `None` if `csr` is not ICU-owned.
    pub fn read(&self, csr: Csr, plane: &FaultPlane) -> Option<u32> {
        Some(match csr {
            Csr::IcuCause => self.cause_reg(plane),
            Csr::IcuPending => Cause::ALL
                .iter()
                .fold(0u32, |acc, &c| {
                    acc | (u32::from(self.pending_eff(c, plane)) << c.index())
                }),
            Csr::IcuMask => Cause::ALL.iter().fold(0u32, |acc, &c| {
                acc | (u32::from(self.mask_eff(c, plane)) << c.index())
            }),
            Csr::Epc => self.epc,
            Csr::IcuDepth => self.depth,
            _ => return None,
        })
    }

    /// Software CSR write of an ICU register.
    ///
    /// `IcuPending` is write-1-to-clear; `IcuMask` is written directly.
    /// Returns `false` if `csr` is not ICU-owned or read-only.
    pub fn write(&mut self, csr: Csr, value: u32) -> bool {
        match csr {
            Csr::IcuPending => {
                for c in Cause::ALL {
                    if value & (1 << c.index()) != 0 {
                        self.pending[c.index()] = false;
                    }
                }
            }
            Csr::IcuMask => {
                for c in Cause::ALL {
                    self.mask[c.index()] = value & (1 << c.index()) != 0;
                }
            }
            _ => return false,
        }
        true
    }

    /// The cause register as read by software: pending causes OR-ed into
    /// their (core-kind dependent) cause-register bits.
    fn cause_reg(&self, plane: &FaultPlane) -> u32 {
        let mut reg = 0u32;
        for c in Cause::ALL {
            let mut line = self.pending_eff(c, plane);
            if let Some((Element::CauseMapLine { cause }, pol)) = plane.query(Unit::Icu, 0) {
                if cause as usize == c.index() {
                    line = pol.value();
                }
            }
            if line {
                reg |= 1 << self.kind.cause_bit(c);
            }
        }
        if let Some((Element::CauseRegBit { bit }, pol)) = plane.query(Unit::Icu, 0) {
            if bit < self.kind.cause_bits() {
                reg = pol.force(reg as u64, bit) as u32;
            }
        }
        reg
    }

    /// Enumerates every stuck-at fault site of this ICU implementation.
    pub fn fault_sites(kind: CoreKind) -> Vec<FaultSite> {
        let mut sites = Vec::new();
        let mut push = |element| {
            for polarity in Polarity::BOTH {
                sites.push(FaultSite { unit: Unit::Icu, instance: 0, element, polarity });
            }
        };
        for c in 0..4u8 {
            push(Element::PendLatchQ { cause: c });
            push(Element::PendSetLine { cause: c });
            push(Element::CauseMapLine { cause: c });
            push(Element::MaskBit { cause: c });
        }
        for bit in 0..kind.cause_bits() {
            push(Element::CauseRegBit { bit });
        }
        push(Element::RecognizeLine);
        for bit in 0..EPC_BITS {
            push(Element::EpcBit { bit });
        }
        for bit in 0..DEPTH_BITS {
            push(Element::DepthBit { bit });
        }
        sites
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const FREE: FaultPlane = FaultPlane::fault_free();

    fn armed(element: Element, polarity: Polarity) -> FaultPlane {
        FaultPlane::armed(FaultSite { unit: Unit::Icu, instance: 0, element, polarity })
    }

    #[test]
    fn raise_then_recognize_after_latency() {
        let mut icu = Icu::new(CoreKind::A);
        icu.raise(Cause::Overflow, &FREE);
        for _ in 0..RECOG_LAT - 1 {
            assert!(!icu.tick(&FREE));
        }
        assert!(icu.tick(&FREE), "recognised after RECOG_LAT ticks");
        icu.recognize(0x100, 2, &FREE);
        assert!(icu.in_trap());
        assert_eq!(icu.read(Csr::Epc, &FREE), Some(0x100));
        assert_eq!(icu.read(Csr::IcuDepth, &FREE), Some(2));
        assert!(!icu.tick(&FREE), "no re-recognition inside the handler");
    }

    #[test]
    fn cause_register_mapping_differs_by_kind() {
        for (kind, ovf_bits, unal_bits) in
            [(CoreKind::A, 0b01, 0b10), (CoreKind::C, 0b0001, 0b0100)]
        {
            let mut icu = Icu::new(kind);
            icu.raise(Cause::Overflow, &FREE);
            assert_eq!(icu.read(Csr::IcuCause, &FREE), Some(ovf_bits));
            icu.write(Csr::IcuPending, 0xf);
            icu.raise(Cause::Unaligned, &FREE);
            assert_eq!(icu.read(Csr::IcuCause, &FREE), Some(unal_bits));
        }
    }

    #[test]
    fn shared_bits_mask_simultaneous_causes_on_core_a() {
        let mut a = Icu::new(CoreKind::A);
        a.raise(Cause::Overflow, &FREE);
        a.raise(Cause::MulOverflow, &FREE);
        assert_eq!(a.read(Csr::IcuCause, &FREE), Some(0b01), "one shared bit");
        let mut c = Icu::new(CoreKind::C);
        c.raise(Cause::Overflow, &FREE);
        c.raise(Cause::MulOverflow, &FREE);
        assert_eq!(c.read(Csr::IcuCause, &FREE), Some(0b0011), "distinct bits");
    }

    #[test]
    fn pending_is_write_one_to_clear() {
        let mut icu = Icu::new(CoreKind::A);
        icu.raise(Cause::Overflow, &FREE);
        icu.raise(Cause::Illegal, &FREE);
        assert_eq!(icu.read(Csr::IcuPending, &FREE), Some(0b1001));
        icu.write(Csr::IcuPending, 0b0001);
        assert_eq!(icu.read(Csr::IcuPending, &FREE), Some(0b1000));
    }

    #[test]
    fn masked_cause_does_not_start_recognition() {
        let mut icu = Icu::new(CoreKind::A);
        icu.write(Csr::IcuMask, 0b1110); // overflow disabled
        icu.raise(Cause::Overflow, &FREE);
        for _ in 0..2 * RECOG_LAT {
            assert!(!icu.tick(&FREE));
        }
        assert_eq!(icu.read(Csr::IcuCause, &FREE), Some(0b01), "still visible");
    }

    #[test]
    fn mret_restarts_recognition_for_leftover_causes() {
        let mut icu = Icu::new(CoreKind::A);
        icu.raise(Cause::Overflow, &FREE);
        while !icu.tick(&FREE) {}
        icu.recognize(0, 0, &FREE);
        icu.raise(Cause::Unaligned, &FREE); // arrives inside the handler
        icu.write(Csr::IcuPending, 0b0011); // handler clears what it saw
        icu.mret(&FREE);
        assert!(!icu.in_trap());
        while !icu.tick(&FREE) {}
        icu.recognize(4, 0, &FREE);
        assert_eq!(icu.read(Csr::IcuCause, &FREE), Some(0b10));
    }

    #[test]
    fn pend_set_line_sa0_loses_the_cause() {
        let plane = armed(Element::PendSetLine { cause: 0 }, Polarity::StuckAt0);
        let mut icu = Icu::new(CoreKind::A);
        icu.raise(Cause::Overflow, &plane);
        assert_eq!(icu.read(Csr::IcuPending, &plane), Some(0));
        for _ in 0..2 * RECOG_LAT {
            assert!(!icu.tick(&plane));
        }
    }

    #[test]
    fn pend_latch_sa1_fakes_a_pending_cause() {
        let plane = armed(Element::PendLatchQ { cause: 2 }, Polarity::StuckAt1);
        let icu = Icu::new(CoreKind::C);
        assert_eq!(icu.read(Csr::IcuPending, &plane), Some(0b0100));
        assert_eq!(icu.read(Csr::IcuCause, &plane), Some(0b0100));
    }

    #[test]
    fn recognize_line_sa1_traps_spuriously() {
        let plane = armed(Element::RecognizeLine, Polarity::StuckAt1);
        let mut icu = Icu::new(CoreKind::A);
        assert!(icu.tick(&plane), "trap with nothing pending");
        icu.recognize(0, 0, &plane);
        assert!(!icu.tick(&plane), "but not while in the handler");
    }

    #[test]
    fn recognize_line_sa0_never_traps() {
        let plane = armed(Element::RecognizeLine, Polarity::StuckAt0);
        let mut icu = Icu::new(CoreKind::A);
        icu.raise(Cause::Overflow, &plane);
        for _ in 0..2 * RECOG_LAT {
            assert!(!icu.tick(&plane));
        }
    }

    #[test]
    fn epc_capture_fault_flips_bit() {
        let plane = armed(Element::EpcBit { bit: 4 }, Polarity::StuckAt1);
        let mut icu = Icu::new(CoreKind::A);
        icu.recognize(0x100, 0, &plane);
        assert_eq!(icu.epc(), 0x110);
    }

    #[test]
    fn simultaneous_cause_masking_on_shared_bits() {
        // The masking mechanism behind the paper's ~10% lower ICU coverage
        // on cores A/B: with overflow *and* mul-overflow pending, a fault
        // on the mul-overflow map line is invisible on core A (overflow
        // drives the shared bit anyway) but visible on core C.
        let plane = armed(Element::CauseMapLine { cause: 1 }, Polarity::StuckAt0);
        for (kind, masked) in [(CoreKind::A, true), (CoreKind::C, false)] {
            let mut icu = Icu::new(kind);
            icu.raise(Cause::Overflow, &plane);
            icu.raise(Cause::MulOverflow, &plane);
            let golden = {
                let mut g = Icu::new(kind);
                g.raise(Cause::Overflow, &FREE);
                g.raise(Cause::MulOverflow, &FREE);
                g.read(Csr::IcuCause, &FREE)
            };
            let faulty = icu.read(Csr::IcuCause, &plane);
            assert_eq!(faulty == golden, masked, "kind {kind}");
        }
    }

    #[test]
    fn fault_site_counts() {
        let a = Icu::fault_sites(CoreKind::A).len();
        let c = Icu::fault_sites(CoreKind::C).len();
        assert!(c > a, "core C has more cause-register bits");
        assert_eq!(c - a, 4, "two extra bits, two polarities");
        // No duplicate sites.
        let mut sites = Icu::fault_sites(CoreKind::C);
        let before = sites.len();
        sites.sort_by_key(|s| format!("{s}"));
        sites.dedup();
        assert_eq!(sites.len(), before);
    }
}
