//! The load/store unit: data cache, write-through buffer, TCM and bus
//! access.
//!
//! Stores are write-through with a posted write buffer: a store completes
//! in the MEM stage as soon as the (possibly missing) cache part is
//! handled, and the memory write drains over the bus in the background.
//! In the cache-based wrapper's *execution loop* every access hits, so
//! the core never waits on the contended bus — the mechanism behind the
//! paper's deterministic execution.

use std::collections::VecDeque;

use sbst_mem::{Bus, BusRequest, Cache, CacheConfig, Region, Tcm, WritePolicy};

/// Kind of a data-memory operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemOpKind {
    /// Word load.
    Load,
    /// Word store.
    Store,
    /// Atomic swap (returns the old word).
    Swap,
}

/// A data-memory operation issued by the MEM stage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemOp {
    /// Operation kind.
    pub kind: MemOpKind,
    /// Word-aligned effective address (alignment is checked in EX).
    pub addr: u32,
    /// Store/swap payload.
    pub wdata: u32,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Pending {
    None,
    /// Background write-buffer drain in flight.
    Drain,
    /// Foreground single-word read.
    Read,
    /// Foreground line fill; optionally merge a store after the fill.
    Fill { addr: u32, merge: Option<(u32, u32)> },
    /// Foreground atomic swap.
    Swap,
}

/// The LSU of one core.
#[derive(Debug, Clone)]
pub struct Lsu {
    dcache: Option<Cache>,
    wbuf: VecDeque<(u32, u32)>,
    wbuf_depth: usize,
    pending: Pending,
    current: Option<MemOp>,
    result: Option<u32>,
    port: usize,
}

impl Lsu {
    /// Creates an LSU on bus port `port` with a `wbuf_depth`-entry write
    /// buffer.
    pub fn new(dcache: Option<CacheConfig>, wbuf_depth: usize, port: usize) -> Lsu {
        assert!(wbuf_depth >= 1);
        Lsu {
            dcache: dcache.map(Cache::new),
            wbuf: VecDeque::new(),
            wbuf_depth,
            pending: Pending::None,
            current: None,
            result: None,
            port,
        }
    }

    /// The data cache, if enabled.
    pub fn dcache(&self) -> Option<&Cache> {
        self.dcache.as_ref()
    }

    /// Mutable data cache (for `dcinv`).
    pub fn dcache_mut(&mut self) -> Option<&mut Cache> {
        self.dcache.as_mut()
    }

    /// Starts a foreground operation.
    ///
    /// # Panics
    ///
    /// Panics if one is already in progress.
    pub fn start(&mut self, op: MemOp) {
        assert!(self.current.is_none(), "LSU already busy");
        self.current = Some(op);
    }

    /// Whether a foreground operation is in progress.
    pub fn busy(&self) -> bool {
        self.current.is_some()
    }

    /// Takes the completed foreground result (load data, swap old value,
    /// or 0 for stores).
    pub fn take_result(&mut self) -> Option<u32> {
        if self.result.is_some() {
            self.current = None;
        }
        self.result.take()
    }

    /// Whether the LSU holds no state that could still touch memory.
    pub fn quiescent(&self) -> bool {
        self.current.is_none() && self.wbuf.is_empty() && self.pending == Pending::None
    }

    /// Behavioral-state equality (livelock detection): write buffer,
    /// in-flight operation and cache contents; cache statistics are
    /// ignored.
    pub fn state_eq(&self, other: &Lsu) -> bool {
        self.wbuf == other.wbuf
            && self.pending == other.pending
            && self.current == other.current
            && self.result == other.result
            && match (&self.dcache, &other.dcache) {
                (Some(a), Some(b)) => a.state_eq(b),
                (None, None) => true,
                _ => false,
            }
    }

    /// Advances the LSU by one cycle.
    pub fn cycle(&mut self, bus: &mut Bus, itcm: &mut Tcm, dtcm: &mut Tcm) {
        // 1. Collect any bus response.
        if self.pending != Pending::None {
            if let Some(resp) = bus.response(self.port) {
                match self.pending {
                    Pending::Drain => {
                        self.wbuf.pop_front();
                    }
                    Pending::Read => self.result = Some(resp.word()),
                    Pending::Swap => self.result = Some(resp.word()),
                    Pending::Fill { addr, merge } => {
                        let dc = self.dcache.as_mut().expect("fill without dcache");
                        dc.fill(dc.line_base(addr), resp.words());
                        match merge {
                            Some((a, v)) => {
                                dc.write(a, v);
                                self.push_wbuf(a, v);
                                self.result = Some(0);
                            }
                            None => {
                                self.result =
                                    Some(dc.probe(addr).expect("line just filled"));
                            }
                        }
                    }
                    Pending::None => unreachable!(),
                }
                self.pending = Pending::None;
            }
        }
        // 2. Foreground progress.
        if self.result.is_none() {
            if let Some(op) = self.current {
                self.progress(op, bus, itcm, dtcm);
            }
        }
        // 3. Background drain when the port is free.
        if self.pending == Pending::None {
            if let Some(&(addr, value)) = self.wbuf.front() {
                bus.request(self.port, BusRequest::write(addr, value));
                self.pending = Pending::Drain;
            }
        }
    }

    fn push_wbuf(&mut self, addr: u32, value: u32) {
        debug_assert!(self.wbuf.len() < self.wbuf_depth);
        self.wbuf.push_back((addr, value));
    }

    /// Latest write-buffer entry matching `addr` (store-to-load
    /// forwarding).
    fn wbuf_forward(&self, addr: u32) -> Option<u32> {
        self.wbuf.iter().rev().find(|&&(a, _)| a == addr).map(|&(_, v)| v)
    }

    fn progress(&mut self, op: MemOp, bus: &mut Bus, itcm: &mut Tcm, dtcm: &mut Tcm) {
        // TCMs: single-cycle, core-private.
        let region = Region::of(op.addr);
        if region.is_private() {
            let tcm = if region == Region::Itcm { itcm } else { dtcm };
            if !tcm.contains(op.addr) {
                self.result = Some(0);
                return;
            }
            self.result = Some(match op.kind {
                MemOpKind::Load => tcm.read(op.addr),
                MemOpKind::Store => {
                    tcm.write(op.addr, op.wdata);
                    0
                }
                MemOpKind::Swap => {
                    let old = tcm.read(op.addr);
                    tcm.write(op.addr, op.wdata);
                    old
                }
            });
            return;
        }
        match op.kind {
            MemOpKind::Load => {
                if let Some(v) = self.wbuf_forward(op.addr) {
                    self.result = Some(v);
                    return;
                }
                if let Some(dc) = self.dcache.as_mut() {
                    if let Some(v) = dc.read(op.addr) {
                        self.result = Some(v);
                        return;
                    }
                    // Line fill; drain older stores first so the fill
                    // cannot read stale memory.
                    if self.wbuf.is_empty() && self.pending == Pending::None {
                        let (base, burst) = {
                            let dc = self.dcache.as_ref().expect("checked");
                            (dc.line_base(op.addr), dc.config().line_words() as u8)
                        };
                        bus.request(self.port, BusRequest::read_burst(base, burst));
                        self.pending = Pending::Fill { addr: op.addr, merge: None };
                    }
                    // else: wait; the drain logic below us empties the buffer.
                } else if self.pending == Pending::None {
                    bus.request(self.port, BusRequest::read(op.addr));
                    self.pending = Pending::Read;
                }
            }
            MemOpKind::Store => {
                if self.wbuf.len() >= self.wbuf_depth {
                    return; // buffer full: stall until a drain completes
                }
                match self.dcache.as_mut() {
                    Some(dc) => {
                        if dc.write(op.addr, op.wdata) {
                            self.push_wbuf(op.addr, op.wdata);
                            self.result = Some(0);
                        } else {
                            match dc.config().policy {
                                WritePolicy::NoWriteAllocate => {
                                    self.push_wbuf(op.addr, op.wdata);
                                    self.result = Some(0);
                                }
                                WritePolicy::WriteAllocate => {
                                    if self.wbuf.is_empty()
                                        && self.pending == Pending::None
                                    {
                                        let (base, burst) = {
                                            let dc = self.dcache.as_ref().expect("checked");
                                            (
                                                dc.line_base(op.addr),
                                                dc.config().line_words() as u8,
                                            )
                                        };
                                        bus.request(
                                            self.port,
                                            BusRequest::read_burst(base, burst),
                                        );
                                        self.pending = Pending::Fill {
                                            addr: op.addr,
                                            merge: Some((op.addr, op.wdata)),
                                        };
                                    }
                                }
                            }
                        }
                    }
                    None => {
                        self.push_wbuf(op.addr, op.wdata);
                        self.result = Some(0);
                    }
                }
            }
            MemOpKind::Swap => {
                // Swaps are strongly ordered: drain everything first.
                if self.wbuf.is_empty() && self.pending == Pending::None {
                    bus.request(self.port, BusRequest::swap(op.addr, op.wdata));
                    self.pending = Pending::Swap;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sbst_mem::{FlashCtl, FlashImage, FlashTiming, Sram, DTCM_BASE, ITCM_BASE, SRAM_BASE};

    fn rig(dcache: Option<CacheConfig>) -> (Lsu, Bus, Tcm, Tcm) {
        let bus = Bus::new(
            FlashCtl::new(FlashImage::new().freeze(), FlashTiming::default()),
            Sram::default(),
            1,
        );
        (Lsu::new(dcache, 4, 0), bus, Tcm::new(ITCM_BASE), Tcm::new(DTCM_BASE))
    }

    fn run_op(
        lsu: &mut Lsu,
        bus: &mut Bus,
        itcm: &mut Tcm,
        dtcm: &mut Tcm,
        op: MemOp,
        max: u32,
    ) -> (u32, u32) {
        lsu.start(op);
        for cycle in 1..=max {
            lsu.cycle(bus, itcm, dtcm);
            if let Some(v) = lsu.take_result() {
                return (cycle, v);
            }
            bus.step();
        }
        panic!("op {op:?} did not complete in {max} cycles");
    }

    fn settle(lsu: &mut Lsu, bus: &mut Bus, itcm: &mut Tcm, dtcm: &mut Tcm) {
        for _ in 0..200 {
            lsu.cycle(bus, itcm, dtcm);
            bus.step();
            if lsu.quiescent() {
                return;
            }
        }
        panic!("LSU did not quiesce");
    }

    #[test]
    fn dtcm_access_is_single_cycle() {
        let (mut lsu, mut bus, mut itcm, mut dtcm) = rig(None);
        let a = DTCM_BASE + 16;
        let (c, _) = run_op(&mut lsu, &mut bus, &mut itcm, &mut dtcm,
            MemOp { kind: MemOpKind::Store, addr: a, wdata: 55 }, 10);
        assert_eq!(c, 1);
        let (c, v) = run_op(&mut lsu, &mut bus, &mut itcm, &mut dtcm,
            MemOp { kind: MemOpKind::Load, addr: a, wdata: 0 }, 10);
        assert_eq!((c, v), (1, 55));
    }

    #[test]
    fn store_posts_and_load_forwards_from_wbuf() {
        let (mut lsu, mut bus, mut itcm, mut dtcm) = rig(None);
        let a = SRAM_BASE + 0x20;
        let (c, _) = run_op(&mut lsu, &mut bus, &mut itcm, &mut dtcm,
            MemOp { kind: MemOpKind::Store, addr: a, wdata: 99 }, 10);
        assert_eq!(c, 1, "posted store completes immediately");
        let (c, v) = run_op(&mut lsu, &mut bus, &mut itcm, &mut dtcm,
            MemOp { kind: MemOpKind::Load, addr: a, wdata: 0 }, 10);
        assert_eq!(v, 99, "store-to-load forwarding");
        assert_eq!(c, 1);
        settle(&mut lsu, &mut bus, &mut itcm, &mut dtcm);
        assert_eq!(bus.sram().peek(a), 99, "drained to memory");
    }

    #[test]
    fn uncached_load_pays_bus_latency() {
        let (mut lsu, mut bus, mut itcm, mut dtcm) = rig(None);
        bus.sram_mut().poke(SRAM_BASE + 4, 7);
        let (c, v) = run_op(&mut lsu, &mut bus, &mut itcm, &mut dtcm,
            MemOp { kind: MemOpKind::Load, addr: SRAM_BASE + 4, wdata: 0 }, 50);
        assert_eq!(v, 7);
        assert!(c >= 4, "SRAM access latency, got {c}");
    }

    #[test]
    fn cached_load_miss_fills_then_hits() {
        let (mut lsu, mut bus, mut itcm, mut dtcm) = rig(Some(CacheConfig::dcache_4k()));
        bus.sram_mut().poke(SRAM_BASE + 0x40, 11);
        bus.sram_mut().poke(SRAM_BASE + 0x44, 22);
        let (c_miss, v) = run_op(&mut lsu, &mut bus, &mut itcm, &mut dtcm,
            MemOp { kind: MemOpKind::Load, addr: SRAM_BASE + 0x40, wdata: 0 }, 100);
        assert_eq!(v, 11);
        assert!(c_miss > 4);
        let (c_hit, v) = run_op(&mut lsu, &mut bus, &mut itcm, &mut dtcm,
            MemOp { kind: MemOpKind::Load, addr: SRAM_BASE + 0x44, wdata: 0 }, 10);
        assert_eq!((c_hit, v), (1, 22), "same line now hits");
    }

    #[test]
    fn write_allocate_miss_fills_line() {
        let (mut lsu, mut bus, mut itcm, mut dtcm) = rig(Some(CacheConfig::dcache_4k()));
        let a = SRAM_BASE + 0x80;
        let (c, _) = run_op(&mut lsu, &mut bus, &mut itcm, &mut dtcm,
            MemOp { kind: MemOpKind::Store, addr: a, wdata: 5 }, 100);
        assert!(c > 1, "write-allocate miss pays the fill");
        let (c, v) = run_op(&mut lsu, &mut bus, &mut itcm, &mut dtcm,
            MemOp { kind: MemOpKind::Load, addr: a, wdata: 0 }, 10);
        assert_eq!((c, v), (1, 5), "allocated");
        settle(&mut lsu, &mut bus, &mut itcm, &mut dtcm);
        assert_eq!(bus.sram().peek(a), 5, "write-through reached memory");
    }

    #[test]
    fn no_write_allocate_miss_skips_the_cache() {
        let cfg = CacheConfig { policy: WritePolicy::NoWriteAllocate, ..CacheConfig::dcache_4k() };
        let (mut lsu, mut bus, mut itcm, mut dtcm) = rig(Some(cfg));
        let a = SRAM_BASE + 0x80;
        let (c, _) = run_op(&mut lsu, &mut bus, &mut itcm, &mut dtcm,
            MemOp { kind: MemOpKind::Store, addr: a, wdata: 5 }, 10);
        assert_eq!(c, 1, "miss posts straight to the buffer");
        settle(&mut lsu, &mut bus, &mut itcm, &mut dtcm);
        assert_eq!(lsu.dcache().unwrap().probe(a), None, "not allocated");
        // The paper's dummy-load transform then brings the line in:
        let (_, v) = run_op(&mut lsu, &mut bus, &mut itcm, &mut dtcm,
            MemOp { kind: MemOpKind::Load, addr: a, wdata: 0 }, 100);
        assert_eq!(v, 5);
        assert!(lsu.dcache().unwrap().probe(a).is_some(), "now allocated");
    }

    #[test]
    fn swap_is_ordered_after_drain() {
        let (mut lsu, mut bus, mut itcm, mut dtcm) = rig(None);
        let lock = SRAM_BASE;
        run_op(&mut lsu, &mut bus, &mut itcm, &mut dtcm,
            MemOp { kind: MemOpKind::Store, addr: lock, wdata: 3 }, 10);
        let (_, old) = run_op(&mut lsu, &mut bus, &mut itcm, &mut dtcm,
            MemOp { kind: MemOpKind::Swap, addr: lock, wdata: 1 }, 100);
        assert_eq!(old, 3, "swap saw the drained store");
        assert_eq!(bus.sram().peek(lock), 1);
    }

    #[test]
    fn wbuf_full_stalls_store() {
        let (mut lsu, mut bus, mut itcm, mut dtcm) = rig(None);
        // Depth is 4; issue 5 stores back to back and count cycles.
        let mut cycles = vec![];
        for i in 0..5 {
            let (c, _) = run_op(&mut lsu, &mut bus, &mut itcm, &mut dtcm,
                MemOp { kind: MemOpKind::Store, addr: SRAM_BASE + 4 * i, wdata: i }, 100);
            cycles.push(c);
        }
        assert_eq!(cycles[0], 1);
        assert!(*cycles.last().unwrap() > 1, "buffer backpressure: {cycles:?}");
    }

    #[test]
    fn quiescent_lifecycle() {
        let (mut lsu, mut bus, mut itcm, mut dtcm) = rig(None);
        assert!(lsu.quiescent());
        run_op(&mut lsu, &mut bus, &mut itcm, &mut dtcm,
            MemOp { kind: MemOpKind::Store, addr: SRAM_BASE, wdata: 1 }, 10);
        assert!(!lsu.quiescent(), "write still buffered");
        settle(&mut lsu, &mut bus, &mut itcm, &mut dtcm);
    }
}
