//! Robustness: arming *any* fault site — including sites that reference
//! nonexistent instances or out-of-range bits — must never panic the
//! simulator. In-field, silicon doesn't crash the fault simulator; the
//! run either detects the fault or it doesn't.

use proptest::prelude::*;
use sbst_cpu::{Core, CoreConfig, CoreKind};
use sbst_fault::{Element, FaultPlane, FaultSite, Polarity, Unit};
use sbst_isa::{Asm, Reg};
use sbst_mem::{Bus, FlashCtl, FlashImage, FlashTiming, Sram, SRAM_BASE};

fn arb_element() -> impl Strategy<Value = Element> {
    prop_oneof![
        (any::<u8>(), any::<u8>()).prop_map(|(src, bit)| Element::MuxDataIn { src, bit }),
        any::<u8>().prop_map(|src| Element::MuxSelStem { src }),
        (any::<u8>(), any::<u8>()).prop_map(|(src, bit)| Element::MuxSelBranch { src, bit }),
        (any::<u8>(), any::<u8>()).prop_map(|(src, bit)| Element::MuxAndOut { src, bit }),
        any::<u8>().prop_map(|bit| Element::MuxOrOut { bit }),
        (any::<u8>(), any::<u8>()).prop_map(|(node, bit)| Element::MuxOrNode { node, bit }),
        any::<u8>().prop_map(|bit| Element::CmpXnorOut { bit }),
        any::<u8>().prop_map(|node| Element::CmpChainNode { node }),
        Just(Element::CmpValidIn),
        Just(Element::CmpOut),
        any::<u8>().prop_map(|line| Element::StallLine { line }),
        (any::<u8>(), any::<u8>()).prop_map(|(mux, bit)| Element::SelEncLine { mux, bit }),
        any::<u8>().prop_map(|cause| Element::PendLatchQ { cause }),
        any::<u8>().prop_map(|cause| Element::PendSetLine { cause }),
        any::<u8>().prop_map(|cause| Element::CauseMapLine { cause }),
        any::<u8>().prop_map(|bit| Element::CauseRegBit { bit }),
        any::<u8>().prop_map(|cause| Element::MaskBit { cause }),
        Just(Element::RecognizeLine),
        any::<u8>().prop_map(|bit| Element::EpcBit { bit }),
        any::<u8>().prop_map(|bit| Element::DepthBit { bit }),
        (any::<u8>(), any::<u8>()).prop_map(|(src, bit)| Element::MuxPathDelay { src, bit }),
    ]
}

fn arb_site() -> impl Strategy<Value = FaultSite> {
    (
        prop::sample::select(Unit::ALL.to_vec()),
        any::<u16>(),
        arb_element(),
        prop::sample::select(Polarity::BOTH.to_vec()),
    )
        .prop_map(|(unit, instance, element, polarity)| FaultSite {
            unit,
            instance,
            element,
            polarity,
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn arbitrary_armed_faults_never_panic_the_simulator(
        site in arb_site(),
        kind in prop::sample::select(CoreKind::ALL.to_vec()),
    ) {
        let mut a = Asm::new();
        a.li(Reg::R8, SRAM_BASE);
        a.li(Reg::R1, 0x7fff_ffff);
        a.addv(Reg::R2, Reg::R1, Reg::R1); // exercise the ICU too
        a.sw(Reg::R1, Reg::R8, 0);
        a.lw(Reg::R3, Reg::R8, 0);
        a.add(Reg::R4, Reg::R3, Reg::R3);
        for _ in 0..40 {
            a.nop();
        }
        a.halt();
        let mut img = FlashImage::new();
        img.load(&a.assemble(0x400).expect("assembles"));
        let mut bus = Bus::new(
            FlashCtl::new(img.freeze(), FlashTiming::default()),
            Sram::default(),
            2,
        );
        let mut core = Core::new(CoreConfig::cached(kind, 0, 0x400));
        core.set_plane(FaultPlane::armed(site));
        // Bounded run: hang (e.g. a stuck stall line) is a fine outcome,
        // a panic is not.
        for _ in 0..30_000 {
            core.step(&mut bus);
            bus.step();
            if core.halted() {
                break;
            }
        }
    }

    #[test]
    fn armed_faults_never_panic_the_triple_core_soc(
        site in arb_site(),
        victim in 0usize..3,
    ) {
        use sbst_soc::{RunOutcome, SocBuilder};
        let mut builder = SocBuilder::new();
        let mut bases = Vec::new();
        for core in 0..3usize {
            let base = 0x1000 + 0x4_0000 * core as u32;
            let mut a = Asm::new();
            let scratch = SRAM_BASE + 0x100 * core as u32;
            a.li(Reg::R8, scratch);
            a.li(Reg::R1, 0x7fff_ffff);
            a.addv(Reg::R2, Reg::R1, Reg::R1);
            a.sw(Reg::R1, Reg::R8, 0);
            a.lw(Reg::R3, Reg::R8, 0);
            a.add(Reg::R4, Reg::R3, Reg::R3);
            for _ in 0..20 {
                a.nop();
            }
            a.halt();
            builder = builder.load(&a.assemble(base).expect("assembles"));
            bases.push(base);
        }
        for (core, &base) in bases.iter().enumerate() {
            builder = builder.core(
                CoreConfig::cached(CoreKind::ALL[core], core, base),
                core as u32 * 3,
            );
        }
        let mut soc = builder.build();
        soc.core_mut(victim).set_plane(FaultPlane::armed(site));
        // The whole SoC must survive any armed fault: `run` must come
        // back (halt, trap, or budget expiry), never panic, and never
        // simulate past its budget.
        let budget = 120_000;
        let outcome = soc.run(budget);
        prop_assert!(soc.cycle() <= budget, "ran past the budget: {}", soc.cycle());
        match outcome {
            RunOutcome::AllHalted { cycles }
            | RunOutcome::FatalTrap { cycles, .. }
            | RunOutcome::Watchdog { cycles } => {
                prop_assert_eq!(cycles, soc.cycle());
            }
        }
    }
}
