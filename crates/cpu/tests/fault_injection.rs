//! Failure-injection tests at pipeline level: arm one specific fault,
//! run a minimal program that exercises exactly that structure, and
//! assert the *precise* architectural corruption it causes.

use sbst_cpu::{
    operand_mux_id, split_cmp_id, Core, CoreConfig, CoreKind, SRC_EXMEM_P0, HDCU_CTRL,
};
use sbst_fault::{Element, FaultPlane, FaultSite, Polarity, Unit};
use sbst_isa::{Asm, Csr, Reg};
use sbst_mem::{Bus, FlashCtl, FlashImage, FlashTiming, Sram};

const BASE: u32 = 0x400;

fn run_with(asm: &Asm, site: Option<FaultSite>, max: u64) -> Core {
    let mut img = FlashImage::new();
    img.load(&asm.assemble(BASE).expect("assembles"));
    let mut bus = Bus::new(
        FlashCtl::new(img.freeze(), FlashTiming::default()),
        Sram::default(),
        2,
    );
    let mut core = Core::new(CoreConfig::cached(CoreKind::A, 0, BASE));
    if let Some(site) = site {
        core.set_plane(FaultPlane::armed(site));
    }
    for _ in 0..max {
        core.step(&mut bus);
        bus.step();
        if core.halted() {
            return core;
        }
    }
    core
}

/// Warmed-up dependent pair whose consumer takes the EX/MEM path into
/// slot-0 operand A; result lands in r6.
fn forwarded_pair() -> Asm {
    let mut a = Asm::new();
    // NOTE: a full `li` (lui+ori) would itself forward r1 through the
    // mux under test and corrupt r1 permanently; use a single addi from
    // the unforwardable r0 and pad so the preamble leaves the pipeline.
    a.addi(Reg::R1, Reg::R0, 0x0f0f);
    a.nops(6);
    // Warm-up pass so the measured pair runs from the I$ back to back.
    a.li(Reg::R21, 2);
    a.label("pass");
    a.align(8);
    a.add(Reg::R5, Reg::R1, Reg::R0); // producer
    a.nop();
    a.add(Reg::R6, Reg::R5, Reg::R0); // consumer: EX/MEM.P0 -> slot0 opA
    a.nop();
    a.subi(Reg::R21, Reg::R21, 1);
    a.bne(Reg::R21, Reg::R0, "pass");
    a.halt();
    a
}

fn fwd_site(instance: u16, element: Element, polarity: Polarity) -> FaultSite {
    FaultSite { unit: Unit::Forwarding, instance, element, polarity }
}

fn hdcu_site(instance: u16, element: Element, polarity: Polarity) -> FaultSite {
    FaultSite { unit: Unit::Hdcu, instance, element, polarity }
}

#[test]
fn forwarding_data_bit_fault_corrupts_exactly_that_bit() {
    let a = forwarded_pair();
    let clean = run_with(&a, None, 100_000);
    assert_eq!(clean.reg(Reg::R6), 0x0f0f);
    // SA1 on bit 4 of the EX/MEM.P0 input of mux (slot0, opA).
    let site = fwd_site(
        operand_mux_id(0, 0),
        Element::MuxDataIn { src: SRC_EXMEM_P0 as u8, bit: 4 },
        Polarity::StuckAt1,
    );
    let faulty = run_with(&a, Some(site), 100_000);
    assert_eq!(faulty.reg(Reg::R6), 0x0f1f, "only bit 4 of the forwarded operand flips");
    assert_eq!(faulty.reg(Reg::R5), 0x0f0f, "producer value untouched");
}

#[test]
fn forwarding_fault_on_the_other_operand_mux_is_invisible_here() {
    let a = forwarded_pair();
    // Same fault but on slot-0 operand B: the consumer's rs2 is r0 and
    // never forwards, so the run is clean.
    let site = fwd_site(
        operand_mux_id(0, 1),
        Element::MuxDataIn { src: SRC_EXMEM_P0 as u8, bit: 4 },
        Polarity::StuckAt1,
    );
    let faulty = run_with(&a, Some(site), 100_000);
    assert_eq!(faulty.reg(Reg::R6), 0x0f0f, "fault not excited by this program");
}

#[test]
fn select_stem_sa0_falls_back_to_the_stale_register_value() {
    let a = forwarded_pair();
    let site = fwd_site(
        operand_mux_id(0, 0),
        Element::MuxSelStem { src: SRC_EXMEM_P0 as u8 },
        Polarity::StuckAt0,
    );
    let faulty = run_with(&a, Some(site), 100_000);
    // The AND gates for the forwarding source are dead: with no other
    // one-hot line active the mux output is all-zero, not the RF value.
    assert_eq!(faulty.reg(Reg::R6), 0, "dead select source yields zero operand");
}

#[test]
fn split_comparator_sa0_reads_the_stale_register_file() {
    // Intra-packet RAW: r5 written in slot 0, read in slot 1. The split
    // comparator fault makes both issue together -> slot 1 sees the OLD r5.
    let mut a = Asm::new();
    a.li(Reg::R5, 111); // stale value
    a.li(Reg::R1, 7);
    a.li(Reg::R21, 2);
    a.label("pass");
    a.align(8);
    a.add(Reg::R5, Reg::R1, Reg::R1); // slot 0: r5 = 14
    a.add(Reg::R6, Reg::R5, Reg::R0); // slot 1: RAW on slot 0
    a.subi(Reg::R21, Reg::R21, 1);
    a.bne(Reg::R21, Reg::R0, "pass");
    a.halt();
    let clean = run_with(&a, None, 100_000);
    assert_eq!(clean.reg(Reg::R6), 14, "split + interpipeline forwarding");
    let site = hdcu_site(split_cmp_id(0), Element::CmpOut, Polarity::StuckAt0);
    let faulty = run_with(&a, Some(site), 100_000);
    assert_eq!(faulty.reg(Reg::R6), 14, "second pass reads committed r5 anyway");
    // The observable difference is the *missing split stall*:
    assert!(
        faulty.counters().haz_stalls < clean.counters().haz_stalls,
        "missed splits reduce the HDCU stall count: {} vs {}",
        faulty.counters().haz_stalls,
        clean.counters().haz_stalls
    );
}

#[test]
fn spurious_split_is_visible_only_through_the_stall_counter() {
    // Independent packet pair + a forged intra-packet dependency.
    let mut a = Asm::new();
    a.li(Reg::R1, 3);
    a.li(Reg::R21, 2);
    a.label("pass");
    a.align(8);
    a.add(Reg::R5, Reg::R1, Reg::R1);
    a.add(Reg::R6, Reg::R1, Reg::R1); // independent
    a.subi(Reg::R21, Reg::R21, 1);
    a.bne(Reg::R21, Reg::R0, "pass");
    a.csrr(Reg::R9, Csr::HazStalls);
    a.halt();
    let clean = run_with(&a, None, 100_000);
    let site = hdcu_site(split_cmp_id(0), Element::CmpOut, Polarity::StuckAt1);
    let faulty = run_with(&a, Some(site), 100_000);
    assert_eq!(faulty.reg(Reg::R5), clean.reg(Reg::R5));
    assert_eq!(faulty.reg(Reg::R6), clean.reg(Reg::R6));
    assert!(
        faulty.reg(Reg::R9) > clean.reg(Reg::R9),
        "values identical; only the performance counter betrays the fault \
         (the paper's central HDCU observation)"
    );
}

#[test]
fn global_stall_sa1_hangs_the_pipeline() {
    let mut a = Asm::new();
    a.li(Reg::R8, sbst_mem::SRAM_BASE);
    a.sw(Reg::R8, Reg::R8, 0);
    a.lw(Reg::R5, Reg::R8, 0);
    a.add(Reg::R6, Reg::R5, Reg::R5); // load-use: needs a (real) stall path
    a.halt();
    let clean = run_with(&a, None, 100_000);
    assert!(clean.halted());
    let site = hdcu_site(HDCU_CTRL, Element::StallLine { line: 4 }, Polarity::StuckAt1);
    let faulty = run_with(&a, Some(site), 50_000);
    assert!(!faulty.halted(), "permanent global stall: watchdog territory");
}

#[test]
fn wb_mux_upper_half_fault_exists_only_on_core_c() {
    use sbst_cpu::wb_mux_id;
    use sbst_isa::AluOp;
    // A stuck bit in the upper half of the writeback mux corrupts 64-bit
    // results on core C and is inert on the 32-bit cores.
    let mut a = Asm::new();
    a.addi(Reg::R2, Reg::R0, 5);
    a.addi(Reg::R3, Reg::R0, 0);
    a.nops(4);
    a.emit(sbst_isa::Instr::Alu64 { op: AluOp::Add, rd: Reg::R4, rs1: Reg::R2, rs2: Reg::R2 });
    a.nops(4);
    a.halt();
    let site = fwd_site(wb_mux_id(0), Element::MuxOrOut { bit: 36 }, Polarity::StuckAt1);
    // Core C: bit 36 lands in the high register of the pair (bit 4 of r5).
    let mut img = FlashImage::new();
    img.load(&a.assemble(BASE).unwrap());
    let mut bus = Bus::new(
        FlashCtl::new(img.freeze(), FlashTiming::default()),
        Sram::default(),
        2,
    );
    let mut core = Core::new(CoreConfig::cached(CoreKind::C, 0, BASE));
    core.set_plane(FaultPlane::armed(site));
    for _ in 0..100_000 {
        core.step(&mut bus);
        bus.step();
        if core.halted() {
            break;
        }
    }
    assert!(core.halted());
    assert_eq!(core.reg(Reg::R4), 10, "low half clean");
    assert_eq!(core.reg(Reg::R5), 1 << 4, "bit 36 = high-word bit 4 forced");
}

#[test]
fn icu_cause_register_fault_reaches_the_handler() {
    use sbst_isa::Csr;
    let mut a = Asm::new();
    a.j("main");
    a.align(16);
    a.label("handler");
    a.csrr(Reg::R10, Csr::IcuCause);
    a.li(Reg::R13, 0xf);
    a.csrw(Csr::IcuPending, Reg::R13);
    a.mret();
    a.label("main");
    a.li(Reg::R1, BASE + 16);
    a.csrw(Csr::TrapVec, Reg::R1);
    a.li(Reg::R2, i32::MAX as u32);
    a.li(Reg::R3, 1);
    a.addv(Reg::R4, Reg::R2, Reg::R3);
    a.nops(40);
    a.halt();
    let site = FaultSite {
        unit: Unit::Icu,
        instance: 0,
        element: Element::CauseRegBit { bit: 1 },
        polarity: Polarity::StuckAt1,
    };
    let clean = run_with(&a, None, 200_000);
    assert_eq!(clean.reg(Reg::R10), 0b01, "overflow maps to bit 0 on core A");
    let faulty = run_with(&a, Some(site), 200_000);
    assert_eq!(faulty.reg(Reg::R10), 0b11, "forced cause bit visible to software");
}
