//! ICU behaviour at pipeline level: imprecise recognition, EPC capture,
//! nested causes, handler interplay — driven through a one-core SoC-like
//! harness (core + bus) without the `sbst-soc` crate.

use sbst_cpu::{Core, CoreConfig, CoreKind, RECOG_LAT};
use sbst_isa::{Asm, Csr, Reg};
use sbst_mem::{Bus, FlashCtl, FlashImage, FlashTiming, Sram};

const BASE: u32 = 0x400;

fn run(asm: &Asm, kind: CoreKind, max: u64) -> Core {
    let mut img = FlashImage::new();
    img.load(&asm.assemble(BASE).expect("assembles"));
    let mut bus = Bus::new(
        FlashCtl::new(img.freeze(), FlashTiming::default()),
        Sram::default(),
        2,
    );
    let mut core = Core::new(CoreConfig::cached(kind, 0, BASE));
    for _ in 0..max {
        core.step(&mut bus);
        bus.step();
        if core.halted() {
            return core;
        }
    }
    panic!("core did not halt");
}

/// Standard preamble: install a handler that records cause/depth/EPC in
/// r10/r11/r12, counts traps in r14, clears pending and returns.
fn with_handler(body: impl FnOnce(&mut Asm)) -> Asm {
    let mut a = Asm::new();
    a.j("main");
    a.align(16);
    a.label("handler");
    a.csrr(Reg::R10, Csr::IcuCause);
    a.csrr(Reg::R11, Csr::IcuDepth);
    a.csrr(Reg::R12, Csr::Epc);
    a.li(Reg::R13, 0xf);
    a.csrw(Csr::IcuPending, Reg::R13);
    a.addi(Reg::R14, Reg::R14, 1);
    a.mret();
    a.label("main");
    a.li(Reg::R1, BASE + 16);
    a.csrw(Csr::TrapVec, Reg::R1);
    body(&mut a);
    for _ in 0..3 * RECOG_LAT {
        a.nop();
    }
    a.halt();
    a
}

#[test]
fn trap_returns_to_the_next_unissued_instruction() {
    let a = with_handler(|a| {
        a.li(Reg::R2, i32::MAX as u32);
        a.li(Reg::R3, 1);
        a.addv(Reg::R4, Reg::R2, Reg::R3);
        // Post-trigger work that must ALL retire exactly once despite the
        // trap landing somewhere inside it.
        for _ in 0..30 {
            a.addi(Reg::R20, Reg::R20, 1);
        }
    });
    let core = run(&a, CoreKind::A, 100_000);
    assert_eq!(core.reg(Reg::R14), 1, "one trap");
    assert_eq!(core.reg(Reg::R20), 30, "no instruction lost or replayed");
    assert_eq!(core.reg(Reg::R4), i32::MIN as u32);
    let epc = core.reg(Reg::R12);
    assert!(epc > BASE && epc < BASE + 0x400, "sane EPC {epc:#x}");
}

#[test]
fn imprecision_depth_counts_younger_retirements() {
    let a = with_handler(|a| {
        a.li(Reg::R2, i32::MAX as u32);
        a.li(Reg::R3, 1);
        a.addv(Reg::R4, Reg::R2, Reg::R3);
        for _ in 0..40 {
            a.nop();
        }
    });
    let core = run(&a, CoreKind::A, 100_000);
    let depth = core.reg(Reg::R11);
    assert!(depth > 0, "warm dual-issue must slip instructions past the addv");
    assert!(depth <= 2 * RECOG_LAT + 2, "bounded by the window, got {depth}");
}

#[test]
fn back_to_back_traps_are_serialised() {
    let a = with_handler(|a| {
        a.li(Reg::R2, i32::MAX as u32);
        a.li(Reg::R3, 1);
        for _ in 0..3 {
            a.addv(Reg::R4, Reg::R2, Reg::R3);
            for _ in 0..3 * RECOG_LAT {
                a.nop();
            }
        }
    });
    let core = run(&a, CoreKind::A, 200_000);
    assert_eq!(core.reg(Reg::R14), 3, "each trigger produces exactly one trap");
}

#[test]
fn cause_raised_inside_the_window_joins_the_same_trap() {
    let a = with_handler(|a| {
        a.li(Reg::R2, i32::MAX as u32);
        a.li(Reg::R3, 1);
        a.align(8);
        a.addv(Reg::R4, Reg::R2, Reg::R3); // overflow
        a.mulv(Reg::R5, Reg::R2, Reg::R2); // mul-overflow, same packet
        for _ in 0..3 * RECOG_LAT {
            a.nop();
        }
    });
    // Core A: both causes share cause-register bit 0.
    let core_a = run(&a, CoreKind::A, 100_000);
    assert_eq!(core_a.reg(Reg::R14), 1, "one combined trap");
    assert_eq!(core_a.reg(Reg::R10), 0b01);
    // Core C: distinct bits.
    let core_c = run(&a, CoreKind::C, 100_000);
    assert_eq!(core_c.reg(Reg::R14), 1);
    assert_eq!(core_c.reg(Reg::R10), 0b11);
}

#[test]
fn masked_cause_never_traps_but_stays_visible() {
    let a = with_handler(|a| {
        a.li(Reg::R5, 0b1110); // disable Overflow
        a.csrw(Csr::IcuMask, Reg::R5);
        a.li(Reg::R2, i32::MAX as u32);
        a.li(Reg::R3, 1);
        a.addv(Reg::R4, Reg::R2, Reg::R3);
        for _ in 0..3 * RECOG_LAT {
            a.nop();
        }
        a.csrr(Reg::R15, Csr::IcuPending);
    });
    let core = run(&a, CoreKind::A, 100_000);
    assert_eq!(core.reg(Reg::R14), 0, "masked cause must not trap");
    assert_eq!(core.reg(Reg::R15) & 1, 1, "but stays pending");
}

#[test]
fn unaligned_store_is_imprecise_and_skips_the_write() {
    let a = with_handler(|a| {
        a.li(Reg::R8, sbst_mem::SRAM_BASE + 0x100);
        a.li(Reg::R2, 0xdead_beef);
        a.sw(Reg::R2, Reg::R8, 0); // aligned: lands
        a.sw(Reg::R2, Reg::R8, 6); // unaligned: trap, squashed
        for _ in 0..3 * RECOG_LAT {
            a.nop();
        }
    });
    let mut img = FlashImage::new();
    img.load(&a.assemble(BASE).unwrap());
    let mut bus = Bus::new(
        FlashCtl::new(img.freeze(), FlashTiming::default()),
        Sram::default(),
        2,
    );
    let mut core = Core::new(CoreConfig::cached(CoreKind::A, 0, BASE));
    for _ in 0..100_000 {
        core.step(&mut bus);
        bus.step();
        if core.halted() {
            break;
        }
    }
    assert!(core.halted());
    assert_eq!(core.reg(Reg::R14), 1, "unaligned store trapped");
    assert_eq!(bus.sram().peek(sbst_mem::SRAM_BASE + 0x100), 0xdead_beef);
    assert_eq!(bus.sram().peek(sbst_mem::SRAM_BASE + 0x104), 0, "squashed");
}

#[test]
fn fatal_without_handler() {
    let mut a = Asm::new();
    a.li(Reg::R2, i32::MAX as u32);
    a.addv(Reg::R3, Reg::R2, Reg::R2);
    for _ in 0..3 * RECOG_LAT {
        a.nop();
    }
    a.halt();
    let mut img = FlashImage::new();
    img.load(&a.assemble(BASE).unwrap());
    let mut bus = Bus::new(
        FlashCtl::new(img.freeze(), FlashTiming::default()),
        Sram::default(),
        2,
    );
    let mut core = Core::new(CoreConfig::cached(CoreKind::A, 0, BASE));
    for _ in 0..100_000 {
        core.step(&mut bus);
        bus.step();
        if core.halted() {
            break;
        }
    }
    assert!(core.fatal_trap(), "no TrapVec installed: recognition is fatal");
}
