//! The self-test routine abstraction.

use sbst_cpu::CoreKind;
use sbst_fault::Unit;
use sbst_isa::{Asm, Reg};
use sbst_mem::WritePolicy;

/// Result-mailbox layout: signature word offset.
pub const RESULT_SIG_OFF: i16 = 0;
/// Result-mailbox layout: status word offset.
pub const RESULT_STATUS_OFF: i16 = 4;
/// Status word: routine finished and its self-check passed.
pub const STATUS_PASS: u32 = 0xc0de_600d;
/// Status word: routine finished and its self-check FAILED.
pub const STATUS_FAIL: u32 = 0xc0de_baad;
/// Status word: routine finished without an embedded expected signature.
pub const STATUS_DONE: u32 = 0xc0de_0000;

/// Environment a routine's body is emitted against.
#[derive(Debug, Clone, Copy)]
pub struct RoutineEnv {
    /// The core the routine will run on (selects 64-bit sections, ICU
    /// cause mapping, ...).
    pub core_kind: CoreKind,
    /// SRAM address of the 2-word result mailbox (signature + status).
    pub result_addr: u32,
    /// SRAM scratch area private to this routine (≥ 64 bytes).
    pub data_base: u32,
    /// Data-cache write policy: with
    /// [`NoWriteAllocate`](WritePolicy::NoWriteAllocate) every emitted
    /// store is followed by a dummy load (paper §III.1).
    pub policy: WritePolicy,
    /// Cycle budget for fault-free runs of this routine. `None` derives
    /// one from the program size (see
    /// [`derive_cycle_budget`](crate::derive_cycle_budget)) — the old
    /// behaviour was a magic constant that neither scaled down for tiny
    /// routines nor up for exhaustive ones.
    pub cycle_budget: Option<u64>,
}

impl RoutineEnv {
    /// A default environment for `core_kind` with mailbox/scratch at
    /// conventional SRAM offsets.
    pub fn for_core(core_kind: CoreKind) -> RoutineEnv {
        RoutineEnv {
            core_kind,
            result_addr: sbst_mem::SRAM_BASE + 0x40,
            data_base: sbst_mem::SRAM_BASE + 0x100,
            policy: WritePolicy::WriteAllocate,
            cycle_budget: None,
        }
    }

    /// Emits a store that honours the write policy: under no-write
    /// allocate a dummy `lw r0` immediately follows so the loading loop
    /// still allocates the line and the execution loop sees no write
    /// miss.
    pub fn emit_store(&self, asm: &mut Asm, src: Reg, base: Reg, off: i16) {
        asm.sw(src, base, off);
        if self.policy == WritePolicy::NoWriteAllocate {
            asm.lw(Reg::R0, base, off);
        }
    }
}

/// A boot-time software self-test routine (single-core version).
///
/// Implementations emit the *body* only: the code that excites the
/// target unit and accumulates observations into
/// [`SIG_REG`](crate::SIG_REG). The deterministic wrappers
/// ([`wrap_cached`](crate::wrap_cached), [`wrap_tcm`](crate::wrap_tcm))
/// add cache management, the loading/execution loop, signature storage
/// and the self-check.
///
/// Register convention: the body owns `r1..=r19` and `r24..=r28`, keeps
/// the signature in `r20` (via [`emit_accumulate`](crate::emit_accumulate),
/// which clobbers `r30`), and must not touch `r21..=r23` or `r31`
/// (wrapper state). Bodies must be loop-free in the sense of paper
/// §III.2.1: any conditional branch either always falls through by the
/// end of an iteration or is taken only under a fault.
pub trait SelfTestRoutine {
    /// Routine name (diagnostics, reports).
    fn name(&self) -> String;

    /// The CPU unit this routine grades (`None` for generic STL
    /// routines that target unmodeled structures like the ALU).
    fn target_unit(&self) -> Option<Unit>;

    /// Emits the test body.
    ///
    /// `tag` uniquely prefixes any labels the body defines (the body may
    /// be emitted more than once into one program).
    fn emit_body(&self, asm: &mut Asm, env: &RoutineEnv, tag: &str);

    /// Splits the routine into `parts` smaller routines covering the
    /// same faults (for bodies larger than the instruction cache, paper
    /// §III.2.2). Returns `None` when unsupported.
    fn split(&self, parts: usize) -> Option<Vec<Box<dyn SelfTestRoutine>>> {
        let _ = parts;
        None
    }
}

/// Emits `anchor = pc_of_next_instruction` — bodies use this to fold
/// *position-independent* address deltas (e.g. EPC offsets) into the
/// signature so that golden signatures do not depend on where in Flash
/// the scenario placed the code.
pub fn emit_pc_anchor(asm: &mut Asm, anchor: Reg, tag: &str) {
    let label = format!("{tag}_anchor");
    asm.jal(anchor, &label);
    asm.label(&label);
}

#[cfg(test)]
mod tests {
    use super::*;
    use sbst_cpu::{CoreKind, RefCpu, RefStop};

    #[test]
    fn store_helper_adds_dummy_load_under_nwa() {
        let env_wa = RoutineEnv::for_core(CoreKind::A);
        let mut asm = Asm::new();
        env_wa.emit_store(&mut asm, Reg::R1, Reg::R2, 8);
        assert_eq!(asm.len(), 1);
        let env_nwa = RoutineEnv { policy: WritePolicy::NoWriteAllocate, ..env_wa };
        let mut asm = Asm::new();
        env_nwa.emit_store(&mut asm, Reg::R1, Reg::R2, 8);
        assert_eq!(asm.len(), 2, "store + dummy load");
    }

    #[test]
    fn pc_anchor_yields_next_instruction_address() {
        let mut asm = Asm::new();
        asm.nop();
        emit_pc_anchor(&mut asm, Reg::R25, "t");
        asm.halt();
        let mut cpu = RefCpu::new(CoreKind::A, asm.assemble(0x200).unwrap());
        assert_eq!(cpu.run(100), RefStop::Halted);
        assert_eq!(cpu.reg(Reg::R25), 0x208, "address after the jal");
    }
}
