//! Fault-tolerant supervision of the decentralized boot-time STL.
//!
//! [`build_stl_program`](crate::sched::build_stl_program) assumes every
//! core completes its share of the Software Test Library; a single hung
//! or failing core leaves the whole boot report unusable. The
//! [`Supervisor`] wraps the same scheduler primitives (barrier,
//! watchdog arm/kick, cache-wrapped routines) in a host-side state
//! machine that *degrades* instead of dying:
//!
//! 1. every core's program installs a trap handler (via the
//!    software-writable `TrapVec` CSR) so an unexpected trap parks the
//!    core with a diagnostic flag instead of killing the simulation;
//! 2. the lowest active core arms the memory-mapped watchdog and kicks
//!    it between routines, so a hang anywhere bites within one routine
//!    budget;
//! 3. a core that misses its done-flag, publishes a FAIL status, or
//!    trips the trap handler is retried standalone up to
//!    [`SupervisorConfig::max_retries`] times — each retry rebuilds the
//!    SoC from the frozen image (cold caches: the deterministic wrapper
//!    re-invalidates and the loading loop re-warms) under a cycle
//!    budget that doubles per attempt;
//! 4. a core that exhausts its retries is **quarantined** and the
//!    parallel phase re-runs with the remaining cores behind a shrunken
//!    barrier, so one dead core never blocks the others' verdicts.
//!
//! The outcome is a [`DegradedReport`]: per-core
//! [`Passed`](CoreVerdict::Passed) /
//! [`PassedAfterRetry`](CoreVerdict::PassedAfterRetry) /
//! [`Quarantined`](CoreVerdict::Quarantined) verdicts a boot ROM could
//! act on (fuse off a core, enter limp-home mode, ...).

use std::collections::BTreeMap;

use sbst_cpu::CoreConfig;
use sbst_fault::FaultPlane;
use sbst_isa::{Asm, Csr, Reg};
use sbst_mem::ArbiterKind;
use sbst_soc::{ChaosConfig, RunOutcome, Soc, SocBuilder};

use crate::bound::BoundWatchdog;
use crate::harness::derive_cycle_budget;
use crate::routine::{RoutineEnv, RESULT_STATUS_OFF, STATUS_PASS};
use crate::sched::{
    emit_barrier, emit_watchdog_arm, emit_watchdog_kick, CoreStl, SchedLayout,
};
use crate::wrap::cache::{emit_into, WrapConfig};
use crate::wrap::{Terminator, WrapError};

/// The SoC's core count (core ids are `0..MAX_CORES`).
const MAX_CORES: usize = 3;

/// Value the trap handler parks in a core's trap flag.
const TRAP_FLAG: u32 = 0xdead_c0de;

/// Why a core was quarantined.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QuarantineCause {
    /// A routine finished but its signature self-check failed.
    SignatureMismatch,
    /// The core never reached its done flag — in field this is the
    /// watchdog-bite path.
    WatchdogBite,
    /// The core took an unexpected trap into the supervisor's handler.
    UnexpectedTrap,
    /// One of the core's bus ports waited longer than the certified
    /// worst-case grant latency — the platform is not the certified one
    /// (or the certificate is wrong), so the routine's determinism
    /// argument is void regardless of what signature it produced.
    BoundViolation,
}

impl QuarantineCause {
    /// Short human-readable cause (also used in trace events).
    pub fn as_str(&self) -> &'static str {
        match self {
            QuarantineCause::SignatureMismatch => "signature mismatch",
            QuarantineCause::WatchdogBite => "watchdog bite",
            QuarantineCause::UnexpectedTrap => "unexpected trap",
            QuarantineCause::BoundViolation => "bound violation",
        }
    }
}

impl std::fmt::Display for QuarantineCause {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Final verdict of one supervised core.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CoreVerdict {
    /// Every routine passed on the first parallel run.
    Passed,
    /// Every routine eventually passed, but only after `attempts`
    /// standalone retries (the core is suspect; field policy decides).
    PassedAfterRetry {
        /// Standalone retries consumed.
        attempts: usize,
    },
    /// The core exhausted its retries and was excluded from the
    /// remaining boot test.
    Quarantined {
        /// The failure mode of the *last* attempt.
        cause: QuarantineCause,
    },
}

impl std::fmt::Display for CoreVerdict {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CoreVerdict::Passed => f.write_str("PASSED"),
            CoreVerdict::PassedAfterRetry { attempts } => {
                write!(f, "PASSED after {attempts} retr{}", if *attempts == 1 { "y" } else { "ies" })
            }
            CoreVerdict::Quarantined { cause } => write!(f, "QUARANTINED ({cause})"),
        }
    }
}

/// The structured outcome of a supervised boot test.
#[derive(Debug, Clone)]
pub struct DegradedReport {
    verdicts: BTreeMap<usize, CoreVerdict>,
    /// Parallel-phase rounds executed.
    pub rounds: usize,
}

impl DegradedReport {
    /// Verdict of one core.
    pub fn verdict(&self, core: usize) -> Option<CoreVerdict> {
        self.verdicts.get(&core).copied()
    }

    /// `(core, verdict)` in core order.
    pub fn iter(&self) -> impl Iterator<Item = (usize, CoreVerdict)> + '_ {
        self.verdicts.iter().map(|(&c, &v)| (c, v))
    }

    /// Cores that were quarantined, in core order.
    pub fn quarantined(&self) -> Vec<usize> {
        self.verdicts
            .iter()
            .filter(|(_, v)| matches!(v, CoreVerdict::Quarantined { .. }))
            .map(|(&c, _)| c)
            .collect()
    }

    /// Whether every core passed first time — the common, healthy case.
    pub fn fully_healthy(&self) -> bool {
        self.verdicts.values().all(|&v| v == CoreVerdict::Passed)
    }

    /// Whether at least one core was quarantined (degraded mode).
    pub fn degraded(&self) -> bool {
        !self.quarantined().is_empty()
    }
}

impl std::fmt::Display for DegradedReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "boot test ({} round{}):", self.rounds, if self.rounds == 1 { "" } else { "s" })?;
        for (core, verdict) in &self.verdicts {
            write!(f, " core{core}={verdict}")?;
        }
        Ok(())
    }
}

/// Supervisor tuning knobs.
#[derive(Debug, Clone)]
pub struct SupervisorConfig {
    /// Standalone retries granted to a failing core before quarantine.
    pub max_retries: usize,
    /// Watchdog reload value armed by the kicker core; 0 derives one
    /// from the largest program (it must exceed the slowest single
    /// routine plus the barrier wait).
    pub watchdog_timeout: u32,
    /// Host cycle budget for the parallel phase; 0 derives one from the
    /// program sizes. Retries double it per attempt.
    pub base_budget: u64,
    /// Deterministic wrapper applied to every routine (`expected_sig`
    /// is overridden per routine with its learned golden).
    pub wrap: WrapConfig,
    /// Shared-SRAM coordination block.
    pub layout: SchedLayout,
    /// Bus arbitration policy of every SoC the supervisor builds
    /// (parallel phase and standalone retries alike).
    pub arbiter: ArbiterKind,
    /// Chaos plane attached to every supervised run — the hook the
    /// robustness tests use to put adversarial traffic on the bus while
    /// the STL executes.
    pub chaos: Option<ChaosConfig>,
    /// When set, every run's observed per-port worst grant wait is
    /// checked against the bound certified by this watchdog *before*
    /// the routine statuses are consulted; a violation escalates like a
    /// trap, ending in [`QuarantineCause::BoundViolation`].
    pub bound_watchdog: Option<BoundWatchdog>,
}

impl Default for SupervisorConfig {
    fn default() -> SupervisorConfig {
        SupervisorConfig {
            max_retries: 2,
            watchdog_timeout: 0,
            base_budget: 0,
            wrap: WrapConfig::default(),
            layout: SchedLayout::default(),
            arbiter: ArbiterKind::RoundRobin,
            chaos: None,
            bound_watchdog: None,
        }
    }
}

/// One supervised core: its STL share plus learned goldens and an
/// optional armed fault (test/diagnosis hook).
struct Supervised {
    stl: CoreStl,
    goldens: Vec<u32>,
    plane: FaultPlane,
    /// A fault armed for only the next `.1` runs — the transient hook:
    /// once consumed, the core runs with its permanent `plane` again.
    transient: Option<(FaultPlane, usize)>,
}

/// Host-side fault-tolerant driver of the decentralized boot STL — see
/// the module docs for the state machine.
///
/// # Example
///
/// ```
/// use sbst_cpu::CoreKind;
/// use sbst_mem::SRAM_BASE;
/// use sbst_stl::routines::{GenericAluTest, RegFileTest};
/// use sbst_stl::sched::CoreStl;
/// use sbst_stl::{RoutineEnv, Supervisor, SupervisorConfig};
///
/// # fn main() -> Result<(), sbst_stl::WrapError> {
/// let mut sup = Supervisor::new(SupervisorConfig::default());
/// for core in 0..2usize {
///     let env = RoutineEnv {
///         result_addr: SRAM_BASE + 0x2000 + 0x100 * core as u32,
///         data_base: SRAM_BASE + 0x4000 + 0x400 * core as u32,
///         ..RoutineEnv::for_core(CoreKind::ALL[core])
///     };
///     sup.add_core(core, CoreStl::new(
///         vec![Box::new(RegFileTest::new()), Box::new(GenericAluTest::new(2))],
///         env,
///     ));
/// }
/// let report = sup.run()?;
/// assert!(report.fully_healthy(), "{report}");
/// # Ok(())
/// # }
/// ```
pub struct Supervisor {
    cfg: SupervisorConfig,
    cores: BTreeMap<usize, Supervised>,
    /// Quarantine trace events of the last [`run`](Supervisor::run) —
    /// quarantine is a host-side decision, so the SoC-level observer
    /// cannot see it; the supervisor records it here instead.
    events: Vec<sbst_obs::TraceEvent>,
}

impl Supervisor {
    /// An empty supervisor.
    pub fn new(cfg: SupervisorConfig) -> Supervisor {
        Supervisor { cfg, cores: BTreeMap::new(), events: Vec::new() }
    }

    /// Trace events (currently: quarantines) recorded by the last
    /// [`run`](Supervisor::run).
    pub fn events(&self) -> &[sbst_obs::TraceEvent] {
        &self.events
    }

    /// Takes the recorded trace events, leaving the supervisor empty.
    pub fn take_events(&mut self) -> Vec<sbst_obs::TraceEvent> {
        std::mem::take(&mut self.events)
    }

    /// Registers core `core`'s STL share. `stl.watchdog` is ignored —
    /// the supervisor owns watchdog policy.
    ///
    /// # Panics
    ///
    /// Panics if `core` is out of range or already registered.
    pub fn add_core(&mut self, core: usize, stl: CoreStl) {
        assert!(core < MAX_CORES, "core must be 0..{MAX_CORES}");
        assert!(!stl.routines.is_empty(), "core {core} has no routines");
        let prev = self.cores.insert(
            core,
            Supervised {
                stl,
                goldens: Vec::new(),
                plane: FaultPlane::fault_free(),
                transient: None,
            },
        );
        assert!(prev.is_none(), "core {core} registered twice");
    }

    /// Arms a fault on one core for every subsequent run (parallel and
    /// standalone) — the hook the robustness tests use to make a core
    /// hang or fail deterministically.
    ///
    /// # Panics
    ///
    /// Panics if `core` was not registered.
    pub fn set_plane(&mut self, core: usize, plane: FaultPlane) {
        self.cores.get_mut(&core).expect("core registered").plane = plane;
    }

    /// Arms a fault on one core for only the next `runs` runs (parallel
    /// or standalone); afterwards the core reverts to its permanent
    /// plane. This models a *transient* disturbance: the supervisor's
    /// standalone retry then faces a healthy core and should report
    /// [`CoreVerdict::PassedAfterRetry`], not quarantine.
    ///
    /// # Panics
    ///
    /// Panics if `core` was not registered.
    pub fn set_transient_plane(&mut self, core: usize, plane: FaultPlane, runs: usize) {
        self.cores.get_mut(&core).expect("core registered").transient = Some((plane, runs));
    }

    /// The plane `core` faces for the run being built *now*, consuming
    /// one transient charge if armed.
    fn plane_for_run(&mut self, core: usize) -> FaultPlane {
        let sup = self.cores.get_mut(&core).expect("core registered");
        if let Some((plane, runs)) = sup.transient {
            if runs > 0 {
                sup.transient = Some((plane, runs - 1));
                return plane;
            }
        }
        sup.plane
    }

    /// SRAM address of `core`'s trap flag (after the done flags).
    fn trap_addr(&self, core: usize) -> u32 {
        self.cfg.layout.done_base + 4 * MAX_CORES as u32 + 4 * core as u32
    }

    /// SRAM address of `core`'s done flag.
    fn done_addr(&self, core: usize) -> u32 {
        self.cfg.layout.done_base + 4 * core as u32
    }

    /// Emits core `core`'s supervised program: trap-handler install,
    /// watchdog arm (kicker only), barrier over `n_active` cores,
    /// wrapped routines with per-routine golden self-checks and
    /// inter-routine kicks, done flag, halt.
    fn emit_program(
        &self,
        core: usize,
        n_active: u32,
        kicker: bool,
        watchdog: u32,
        base: u32,
    ) -> Asm {
        let sup = &self.cores[&core];
        let tag = format!("sup{core}");
        let mut asm = Asm::new();
        // The handler sits at base + 4 (right after this jump): the
        // address is position-derived, so it can be materialised with a
        // plain `li` before any label arithmetic exists.
        asm.jal(Reg::R0, &format!("{tag}_start"));
        asm.label(&format!("{tag}_trap"));
        asm.li(Reg::R1, self.trap_addr(core));
        asm.li(Reg::R2, TRAP_FLAG);
        asm.sw(Reg::R2, Reg::R1, 0);
        asm.halt();
        asm.label(&format!("{tag}_start"));
        asm.li(Reg::R1, base + 4);
        asm.csrw(Csr::TrapVec, Reg::R1);
        if kicker {
            emit_watchdog_arm(&mut asm, watchdog);
        }
        emit_barrier(&mut asm, &self.cfg.layout, n_active, &tag);
        for (i, routine) in sup.stl.routines.iter().enumerate() {
            let env = RoutineEnv {
                result_addr: sup.stl.env.result_addr + 16 * i as u32,
                data_base: sup.stl.env.data_base + 0x40 * i as u32,
                ..sup.stl.env
            };
            let cfg = WrapConfig {
                expected_sig: Some(sup.goldens[i]),
                terminator: Terminator::Fallthrough,
                ..self.cfg.wrap
            };
            emit_into(&mut asm, routine.as_ref(), &env, &cfg, &format!("{tag}_r{i}"));
            if kicker {
                emit_watchdog_kick(&mut asm);
            }
        }
        asm.li(Reg::R1, self.done_addr(core));
        asm.li(Reg::R2, 1);
        asm.sw(Reg::R2, Reg::R1, 0);
        asm.halt();
        asm
    }

    /// Classifies one core after a run: `Ok(())` when it finished with
    /// every routine passing, else the failure cause. `slot` is the
    /// core's position in the SoC just run (its bus ports are `2·slot`
    /// and `2·slot + 1`), which differs from `core` once quarantines
    /// shrink the active set.
    fn classify(&self, soc: &Soc, core: usize, slot: usize) -> Result<(), QuarantineCause> {
        // A violated interference bound voids the determinism argument
        // for *everything* the core did this run — a hang or a bad
        // signature under a violated bound is a platform problem, not a
        // core problem, so the bound verdict comes first.
        if let Some(wd) = &self.cfg.bound_watchdog {
            if wd.check_core(soc, slot).is_some() {
                return Err(QuarantineCause::BoundViolation);
            }
        }
        if soc.peek(self.trap_addr(core)) == TRAP_FLAG {
            return Err(QuarantineCause::UnexpectedTrap);
        }
        if soc.peek(self.done_addr(core)) != 1 {
            return Err(QuarantineCause::WatchdogBite);
        }
        let sup = &self.cores[&core];
        for i in 0..sup.stl.routines.len() {
            let status = soc.peek(
                sup.stl.env.result_addr + 16 * i as u32 + RESULT_STATUS_OFF as u32,
            );
            if status != STATUS_PASS {
                return Err(QuarantineCause::SignatureMismatch);
            }
        }
        Ok(())
    }

    /// Learns every routine's golden signature (fault-free standalone
    /// cached runs, derived budgets).
    fn learn(&mut self) -> Result<(), WrapError> {
        let cores: Vec<usize> = self.cores.keys().copied().collect();
        for core in cores {
            let sup = &self.cores[&core];
            let mut goldens = Vec::with_capacity(sup.stl.routines.len());
            for i in 0..sup.stl.routines.len() {
                let sup = &self.cores[&core];
                let env = RoutineEnv {
                    result_addr: sup.stl.env.result_addr + 16 * i as u32,
                    data_base: sup.stl.env.data_base + 0x40 * i as u32,
                    ..sup.stl.env
                };
                let golden = crate::harness::learn_golden_cached(
                    sup.stl.routines[i].as_ref(),
                    &env,
                    &self.cfg.wrap,
                    sup.stl.env.core_kind,
                    0x1000,
                )?;
                goldens.push(golden);
            }
            self.cores.get_mut(&core).expect("core registered").goldens = goldens;
        }
        Ok(())
    }

    /// Builds and runs the parallel phase over `active`, returning the
    /// finished SoC and its outcome.
    fn run_parallel(
        &mut self,
        active: &[usize],
        watchdog: u32,
        budget: u64,
    ) -> Result<(Soc, RunOutcome), WrapError> {
        let kicker = active[0];
        let mut builder = SocBuilder::new().arbiter(self.cfg.arbiter);
        if let Some(chaos) = self.cfg.chaos {
            builder = builder.chaos(chaos);
        }
        let mut bases = Vec::new();
        for (slot, &core) in active.iter().enumerate() {
            let base = 0x1000 + 0x4_0000 * slot as u32;
            let asm =
                self.emit_program(core, active.len() as u32, core == kicker, watchdog, base);
            builder = builder.load(&asm.assemble(base)?);
            bases.push(base);
        }
        for (slot, &core) in active.iter().enumerate() {
            let kind = self.cores[&core].stl.env.core_kind;
            builder = builder.core(CoreConfig::cached(kind, slot, bases[slot]), slot as u32 * 3);
        }
        let mut soc = builder.build();
        for (slot, &core) in active.iter().enumerate() {
            let plane = self.plane_for_run(core);
            soc.core_mut(slot).set_plane(plane);
        }
        let outcome = soc.run(budget);
        Ok((soc, outcome))
    }

    /// One standalone retry of `core` under `budget` cycles. The SoC is
    /// rebuilt from scratch, so caches start cold: the wrapper's
    /// invalidation plus the loading loop re-warm them before the
    /// execution loop runs.
    fn run_standalone(
        &mut self,
        core: usize,
        watchdog: u32,
        budget: u64,
    ) -> Result<(Soc, RunOutcome), WrapError> {
        let base = 0x1000;
        let asm = self.emit_program(core, 1, true, watchdog, base);
        let kind = self.cores[&core].stl.env.core_kind;
        let mut builder = SocBuilder::new()
            .arbiter(self.cfg.arbiter)
            .load(&asm.assemble(base)?)
            .core(CoreConfig::cached(kind, 0, base), 0);
        if let Some(chaos) = self.cfg.chaos {
            builder = builder.chaos(chaos);
        }
        let mut soc = builder.build();
        let plane = self.plane_for_run(core);
        soc.core_mut(0).set_plane(plane);
        let outcome = soc.run(budget);
        Ok((soc, outcome))
    }

    /// Derived parallel-phase budget: the largest per-core program's
    /// derived budget, scaled by the number of cores sharing the bus.
    fn derive_budget(&self, active: &[usize]) -> u64 {
        let worst = active
            .iter()
            .map(|&core| {
                let asm = self.emit_program(core, active.len() as u32, true, 1, 0x1000);
                derive_cycle_budget(&asm)
            })
            .max()
            .unwrap_or(1_000_000);
        worst * active.len().max(1) as u64
    }

    /// Runs the supervised boot test to a [`DegradedReport`].
    ///
    /// # Errors
    ///
    /// Propagates wrapper/assembly errors (these are build defects, not
    /// in-field failures, and are never retried).
    ///
    /// # Panics
    ///
    /// Panics if no core was registered.
    pub fn run(&mut self) -> Result<DegradedReport, WrapError> {
        assert!(!self.cores.is_empty(), "no cores registered");
        self.events.clear();
        self.learn()?;

        let mut active: Vec<usize> = self.cores.keys().copied().collect();
        let budget = if self.cfg.base_budget != 0 {
            self.cfg.base_budget
        } else {
            self.derive_budget(&active)
        };
        // The watchdog only needs to outlast one routine plus the
        // barrier (it is kicked between routines), so the derived
        // timeout is one core's whole-program budget — a bite then
        // arrives well before the host budget expires.
        let watchdog = if self.cfg.watchdog_timeout != 0 {
            self.cfg.watchdog_timeout
        } else {
            u32::try_from(budget / active.len().max(1) as u64).unwrap_or(u32::MAX).max(1)
        };

        let mut verdicts: BTreeMap<usize, CoreVerdict> = BTreeMap::new();
        let mut attempts: BTreeMap<usize, usize> = BTreeMap::new();
        let mut rounds = 0;
        // Each round either ends cleanly or consumes at least one retry
        // (or quarantines a core), so the loop is bounded.
        let max_rounds = (self.cfg.max_retries + 1) * self.cores.len() + 1;

        while !active.is_empty() && rounds < max_rounds {
            rounds += 1;
            let (soc, _outcome) = self.run_parallel(&active, watchdog, budget)?;
            let mut last_cycle = soc.cycle();
            let failing: Vec<(usize, QuarantineCause)> = active
                .iter()
                .enumerate()
                .filter_map(|(slot, &core)| {
                    self.classify(&soc, core, slot).err().map(|c| (core, c))
                })
                .collect();
            if failing.is_empty() {
                for &core in &active {
                    let verdict = match attempts.get(&core) {
                        None | Some(0) => CoreVerdict::Passed,
                        Some(&attempts) => CoreVerdict::PassedAfterRetry { attempts },
                    };
                    verdicts.insert(core, verdict);
                }
                active.clear();
                break;
            }
            for (core, mut cause) in failing {
                let mut recovered = false;
                while *attempts.entry(core).or_insert(0) < self.cfg.max_retries {
                    let n = {
                        let a = attempts.get_mut(&core).expect("attempt counter");
                        *a += 1;
                        *a
                    };
                    let retry_budget = budget.saturating_mul(1 << n.min(16));
                    let retry_wdg = watchdog.saturating_mul(1 << n.min(16) as u32);
                    let (soc, _) = self.run_standalone(core, retry_wdg, retry_budget)?;
                    last_cycle = soc.cycle();
                    match self.classify(&soc, core, 0) {
                        Ok(()) => {
                            recovered = true;
                            break;
                        }
                        Err(c) => cause = c,
                    }
                }
                if !recovered {
                    verdicts.insert(core, CoreVerdict::Quarantined { cause });
                    active.retain(|&c| c != core);
                    self.events.push(sbst_obs::TraceEvent {
                        cycle: last_cycle,
                        core: u8::try_from(core).ok(),
                        kind: sbst_obs::TraceKind::Quarantine { cause: cause.as_str() },
                    });
                }
            }
        }
        // Unreachable in practice (the loop is bounded by retries), but
        // never report a core without a verdict.
        for core in active {
            verdicts
                .entry(core)
                .or_insert(CoreVerdict::Quarantined { cause: QuarantineCause::WatchdogBite });
        }
        Ok(DegradedReport { verdicts, rounds })
    }
}
