//! The runtime bound watchdog: observed interference vs certified
//! bound.
//!
//! The analytical bounds of [`sbst_mem::BoundParams`] are statements
//! about a *certified* platform configuration — port count, arbiter,
//! slave timings. In the field the STL runs on whatever platform it
//! finds; if the observed worst grant wait of a core's bus ports ever
//! exceeds the bound certified for it, one of two things is true and
//! both void the determinism argument:
//!
//! * the platform is not the certified one (wrong arbiter programmed,
//!   extra bus master powered up, slower memory mounted), or
//! * the bound derivation itself is wrong.
//!
//! Either way the routine's signature can no longer be trusted to be
//! contention-independent, so the [`Supervisor`](crate::Supervisor)
//! escalates a violation exactly like a trap: the core is retried and,
//! when the violation persists, quarantined with
//! [`QuarantineCause::BoundViolation`](crate::QuarantineCause).
//!
//! The watchdog therefore stores the **certified** arbiter kind, not
//! the deployed one: bounds are recomputed from the live bus's port
//! count and timings *under the certified policy*, so a platform that
//! silently swapped round-robin for fixed-priority is caught the first
//! time a starved port's wait crosses the round-robin bound.

use sbst_mem::{ArbiterKind, BoundParams};
use sbst_obs::PortBound;
use sbst_soc::Soc;

/// One detected violation: a port whose observed worst wait exceeded
/// its certified bound.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BoundViolation {
    /// The violating bus port.
    pub port: usize,
    /// Observed worst single-request wait, in cycles (grows even while
    /// the request is still starved).
    pub observed: u64,
    /// The certified bound it exceeded.
    pub bound: u64,
}

impl std::fmt::Display for BoundViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "port {} waited {} cycles, certified bound {}",
            self.port, self.observed, self.bound
        )
    }
}

/// Compares each run's observed per-port `max_grant_wait` against the
/// worst-case grant latency certified for this platform.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BoundWatchdog {
    certified: ArbiterKind,
}

impl BoundWatchdog {
    /// A watchdog holding the arbitration policy the platform was
    /// certified under.
    pub fn new(certified: ArbiterKind) -> BoundWatchdog {
        BoundWatchdog { certified }
    }

    /// The certified arbitration policy.
    pub fn certified(&self) -> ArbiterKind {
        self.certified
    }

    /// The bound parameters of `soc`'s live bus under the *certified*
    /// arbiter (port count and slave timings are read from the bus; the
    /// policy is the certificate's).
    pub fn params(&self, soc: &Soc) -> BoundParams {
        BoundParams { arbiter: self.certified, ..soc.bus().bound_params() }
    }

    /// Checks one port. `None` when the observed worst wait respects
    /// the certified bound (or the certified bound is
    /// [`PortBound::Unbounded`], which certification must reject up
    /// front — there is nothing for a runtime check to enforce).
    pub fn check_port(&self, soc: &Soc, port: usize) -> Option<BoundViolation> {
        let observed = *soc.bus().stats().max_grant_wait.get(port)?;
        match self.params(soc).per_access_wcl(port) {
            PortBound::Bounded(bound) if observed > bound => {
                Some(BoundViolation { port, observed, bound })
            }
            _ => None,
        }
    }

    /// Checks the two bus ports of the core in `slot` (fetch port
    /// `2·slot`, data port `2·slot + 1`), returning the worst
    /// violation.
    pub fn check_core(&self, soc: &Soc, slot: usize) -> Option<BoundViolation> {
        [2 * slot, 2 * slot + 1]
            .into_iter()
            .filter_map(|p| self.check_port(soc, p))
            .max_by_key(|v| v.observed - v.bound)
    }

    /// Checks every port of `soc`'s bus.
    pub fn check(&self, soc: &Soc) -> Vec<BoundViolation> {
        (0..soc.bus().ports())
            .filter_map(|p| self.check_port(soc, p))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sbst_cpu::{CoreConfig, CoreKind};
    use sbst_isa::{Asm, Reg};
    use sbst_mem::{InjectorProgram, SRAM_BASE};
    use sbst_soc::{ChaosConfig, SocBuilder};

    fn busy_loop_soc(arbiter: ArbiterKind, saturate: bool) -> Soc {
        let mut a = Asm::new();
        // Uncached pointer-chase through SRAM: every iteration is a bus
        // access, so the core's data port stays contended.
        a.li(Reg::R1, SRAM_BASE);
        for _ in 0..64 {
            a.lw(Reg::R2, Reg::R1, 0);
        }
        a.halt();
        let program = a.assemble(0x100).expect("assembles");
        let mut b = SocBuilder::new()
            .load(&program)
            .core(CoreConfig::uncached(CoreKind::A, 0, 0x100), 0)
            .arbiter(arbiter);
        if saturate {
            b = b.chaos(ChaosConfig::interference(InjectorProgram::saturate(1)));
        }
        let mut soc = b.build();
        soc.run(200_000);
        soc
    }

    #[test]
    fn matching_platform_never_violates() {
        let wd = BoundWatchdog::new(ArbiterKind::RoundRobin);
        let soc = busy_loop_soc(ArbiterKind::RoundRobin, true);
        assert!(wd.check(&soc).is_empty(), "{:?}", wd.check(&soc));
    }

    #[test]
    fn mismatched_arbiter_is_caught() {
        // Certified round-robin, deployed fixed-priority with the
        // injector (last port) on top: the core's ports starve past the
        // round-robin bound and the watchdog fires.
        let wd = BoundWatchdog::new(ArbiterKind::RoundRobin);
        let soc = busy_loop_soc(ArbiterKind::FixedPriority { ascending: false }, true);
        let violations = wd.check(&soc);
        assert!(!violations.is_empty());
        for v in &violations {
            assert!(v.observed > v.bound, "{v}");
            assert!(v.port < 2, "only the core's ports starve, got {v}");
        }
        assert!(wd.check_core(&soc, 0).is_some());
    }

    #[test]
    fn certified_unbounded_ports_never_fire() {
        // A fixed-priority *certificate* declares low-priority ports
        // unbounded — the runtime check has nothing to enforce there
        // (certification rejects such platforms before deployment).
        let wd = BoundWatchdog::new(ArbiterKind::FixedPriority { ascending: false });
        let soc = busy_loop_soc(ArbiterKind::FixedPriority { ascending: false }, true);
        assert!(wd.check(&soc).is_empty());
    }
}
