//! The deployable Software Test Library: a catalog of routines, golden
//! learning, and boot-image generation.
//!
//! This is the top of the stack a product team would actually ship:
//! declare which routines run on which core, let the library learn the
//! fault-free golden signatures (paper §I: "obtained in a fault-free
//! scenario"), and emit one cache-wrapped, self-checking boot-test
//! program per core — scheduler barrier included. After a run, read the
//! per-routine verdicts back from the result mailboxes.

use std::collections::HashMap;

use sbst_cpu::{CoreConfig, CoreKind};
use sbst_isa::Program;
use sbst_mem::SRAM_BASE;
use sbst_soc::{Soc, SocBuilder};

use crate::routine::{RoutineEnv, SelfTestRoutine, STATUS_FAIL, STATUS_PASS};
use crate::sched::{emit_barrier, SchedLayout};
use crate::wrap::cache::{emit_into, WrapConfig, WrapError};
use crate::wrap::Terminator;

/// One catalog entry: a named routine assigned to one core.
pub struct CatalogEntry {
    /// Stable routine name (report key).
    pub name: String,
    /// Core the routine runs on (0 = A, 1 = B, 2 = C).
    pub core: usize,
    /// The routine itself.
    pub routine: Box<dyn SelfTestRoutine>,
}

/// Verdict of one routine after a boot-test run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BootVerdict {
    /// Signature matched the golden value.
    Pass,
    /// Signature mismatched (the in-field fault alarm).
    Fail,
    /// The routine never published a status (core hung or died earlier).
    NotRun,
}

impl std::fmt::Display for BootVerdict {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            BootVerdict::Pass => "PASS",
            BootVerdict::Fail => "FAIL",
            BootVerdict::NotRun => "NOT-RUN",
        })
    }
}

/// Persisted golden signatures, learned once on a known-good device and
/// reusable across builds (paper §I: the expected signature is obtained
/// in a fault-free scenario — typically at end of manufacturing — and
/// then compared in field).
///
/// Serialized as a plain text format (`name = 0xXXXXXXXX` per line) so
/// it can live in version control next to the STL definition.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct GoldenDb {
    entries: Vec<(String, u32)>,
}

impl GoldenDb {
    /// Golden signature of a routine by name.
    pub fn get(&self, name: &str) -> Option<u32> {
        self.entries.iter().find(|(n, _)| n == name).map(|&(_, v)| v)
    }

    /// Number of recorded goldens.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the database is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Serializes to the text format.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        for (name, sig) in &self.entries {
            out.push_str(&format!("{name} = {sig:#010x}
"));
        }
        out
    }

    /// Parses the text format.
    ///
    /// # Errors
    ///
    /// Returns the first malformed line (1-based).
    pub fn from_text(text: &str) -> Result<GoldenDb, usize> {
        let mut entries = Vec::new();
        for (i, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let (name, value) = line.split_once('=').ok_or(i + 1)?;
            let value = value.trim();
            let sig = value
                .strip_prefix("0x")
                .and_then(|h| u32::from_str_radix(h, 16).ok())
                .ok_or(i + 1)?;
            entries.push((name.trim().to_string(), sig));
        }
        Ok(GoldenDb { entries })
    }
}

/// A catalog of boot-time self-test routines for the triple-core SoC.
///
/// # Example
///
/// ```
/// use sbst_cpu::CoreKind;
/// use sbst_stl::routines::{GenericAluTest, RegFileTest};
/// use sbst_stl::{BootVerdict, StlCatalog};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut catalog = StlCatalog::new();
/// catalog.add("regfile-a", 0, Box::new(RegFileTest::new()));
/// catalog.add("alu-b", 1, Box::new(GenericAluTest::new(2)));
/// let image = catalog.build()?; // learns goldens, embeds self-checks
/// let report = image.run(20_000_000);
/// assert!(report.all_passed());
/// assert_eq!(report.verdict("regfile-a"), Some(BootVerdict::Pass));
/// # Ok(())
/// # }
/// ```
#[derive(Default)]
pub struct StlCatalog {
    entries: Vec<CatalogEntry>,
    wrap: WrapConfig,
}

impl StlCatalog {
    /// An empty catalog with the default (paper) wrapper configuration.
    pub fn new() -> StlCatalog {
        StlCatalog::default()
    }

    /// Adds a routine to one core's boot sequence.
    pub fn add(&mut self, name: &str, core: usize, routine: Box<dyn SelfTestRoutine>) {
        assert!(core < 3, "triple-core SoC: core must be 0..3");
        self.entries.push(CatalogEntry { name: name.to_string(), core, routine });
    }

    /// Number of routines.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the catalog is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The per-entry environment: mailboxes advance globally by entry
    /// index so the report can read every routine unambiguously.
    fn env_of(&self, entry_idx: usize, core: usize) -> RoutineEnv {
        RoutineEnv {
            result_addr: SRAM_BASE + 0x100 + 16 * entry_idx as u32,
            data_base: SRAM_BASE + 0x4000 + 0x200 * entry_idx as u32,
            ..RoutineEnv::for_core(CoreKind::ALL[core])
        }
    }

    /// Learns every routine's golden signature on its own core
    /// (single-core cached runs) and returns the persistable database.
    ///
    /// # Errors
    ///
    /// Propagates wrapper errors (oversized routine, assembly failure).
    pub fn learn(&self) -> Result<GoldenDb, WrapError> {
        let mut entries = Vec::with_capacity(self.entries.len());
        for (i, entry) in self.entries.iter().enumerate() {
            let env = self.env_of(i, entry.core);
            let golden = crate::harness::learn_golden_cached(
                entry.routine.as_ref(),
                &env,
                &self.wrap,
                CoreKind::ALL[entry.core],
                0x400,
            )?;
            entries.push((entry.name.clone(), golden));
        }
        Ok(GoldenDb { entries })
    }

    /// Builds the deployable boot image: learns every routine's golden
    /// signature, then emits per-core programs with the goldens embedded
    /// as self-checks and a start barrier so all cores boot-test in
    /// parallel.
    ///
    /// # Errors
    ///
    /// Propagates wrapper errors (oversized routine, assembly failure).
    pub fn build(&self) -> Result<BootImage, WrapError> {
        let goldens = self.learn()?;
        self.build_with(&goldens)
    }

    /// Builds the boot image against previously learned (possibly
    /// persisted) goldens.
    ///
    /// # Panics
    ///
    /// Panics if a routine has no golden in `db`.
    ///
    /// # Errors
    ///
    /// Propagates wrapper/assembly errors.
    pub fn build_with(&self, db: &GoldenDb) -> Result<BootImage, WrapError> {
        assert!(!self.is_empty(), "empty catalog");
        let active: Vec<usize> = {
            let mut cores: Vec<usize> = self.entries.iter().map(|e| e.core).collect();
            cores.sort_unstable();
            cores.dedup();
            cores
        };
        let goldens: Vec<u32> = self
            .entries
            .iter()
            .map(|e| db.get(&e.name).unwrap_or_else(|| panic!("no golden for {}", e.name)))
            .collect();
        // Pass 2: per-core boot programs with embedded checks + barrier.
        let layout = SchedLayout::default();
        let mut programs = Vec::new();
        for (slot, &core) in active.iter().enumerate() {
            let mut asm = sbst_isa::Asm::new();
            emit_barrier(&mut asm, &layout, active.len() as u32, &format!("boot{core}"));
            for (i, entry) in self.entries.iter().enumerate() {
                if entry.core != core {
                    continue;
                }
                let env = self.env_of(i, core);
                let cfg = WrapConfig {
                    expected_sig: Some(goldens[i]),
                    terminator: Terminator::Fallthrough,
                    ..self.wrap
                };
                emit_into(&mut asm, entry.routine.as_ref(), &env, &cfg, &format!("e{i}"));
            }
            asm.halt();
            let base = 0x1000 + 0x4_0000 * slot as u32;
            let program = asm.assemble(base)?;
            programs.push((core, base, program));
        }
        let names = self
            .entries
            .iter()
            .enumerate()
            .map(|(i, e)| (e.name.clone(), (i, e.core)))
            .collect();
        Ok(BootImage {
            programs,
            names,
            mailbox0: SRAM_BASE + 0x100,
        })
    }
}

/// The built boot-test image: one program per active core plus the
/// routine→mailbox directory.
pub struct BootImage {
    programs: Vec<(usize, u32, Program)>,
    names: HashMap<String, (usize, usize)>,
    mailbox0: u32,
}

impl BootImage {
    /// The per-core programs: `(core index, base address, program)`.
    pub fn programs(&self) -> &[(usize, u32, Program)] {
        &self.programs
    }

    fn builder(&self) -> SocBuilder {
        let mut builder = SocBuilder::new();
        for (_, _, program) in &self.programs {
            builder = builder.load(program);
        }
        for (i, &(core, base, _)) in self.programs.iter().enumerate() {
            let kind = CoreKind::ALL[core];
            builder = builder.core(CoreConfig::cached(kind, i, base), i as u32 * 3);
        }
        builder
    }

    /// Builds the SoC, runs the parallel boot test, and reads back the
    /// per-routine verdicts.
    pub fn run(&self, watchdog: u64) -> BootReport {
        let mut soc = self.builder().build();
        let outcome = soc.run(watchdog);
        self.report(&soc, outcome)
    }

    /// [`run`](BootImage::run) with the observability layer attached:
    /// returns the verdicts plus the run's [`MetricsHub`]. Verdicts and
    /// cycle counts are bit-identical to an unobserved run.
    pub fn run_observed(
        &self,
        watchdog: u64,
        cfg: sbst_soc::ObsConfig,
    ) -> (BootReport, sbst_obs::MetricsHub) {
        let mut soc = self.builder().observe(cfg).build();
        let outcome = soc.run(watchdog);
        let metrics = soc.metrics().expect("observability attached");
        (self.report(&soc, outcome), metrics)
    }

    /// Reads the verdicts out of a finished SoC.
    pub fn report(&self, soc: &Soc, outcome: sbst_soc::RunOutcome) -> BootReport {
        let mut verdicts = HashMap::new();
        for (name, &(idx, _)) in &self.names {
            let status = soc.peek(self.mailbox0 + 16 * idx as u32 + 4);
            let verdict = match status {
                STATUS_PASS => BootVerdict::Pass,
                STATUS_FAIL => BootVerdict::Fail,
                _ => BootVerdict::NotRun,
            };
            verdicts.insert(name.clone(), verdict);
        }
        BootReport { outcome, verdicts }
    }
}

/// Per-routine boot-test verdicts.
#[derive(Debug, Clone)]
pub struct BootReport {
    /// SoC-level outcome.
    pub outcome: sbst_soc::RunOutcome,
    verdicts: HashMap<String, BootVerdict>,
}

impl BootReport {
    /// Verdict of one routine by name.
    pub fn verdict(&self, name: &str) -> Option<BootVerdict> {
        self.verdicts.get(name).copied()
    }

    /// Whether every routine passed and the SoC halted cleanly.
    pub fn all_passed(&self) -> bool {
        self.outcome.is_clean()
            && self.verdicts.values().all(|&v| v == BootVerdict::Pass)
    }

    /// Iterates `(name, verdict)` in arbitrary order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, BootVerdict)> {
        self.verdicts.iter().map(|(n, &v)| (n.as_str(), v))
    }
}
