//! Single-run execution helpers: running a wrapped routine on a SoC and
//! reading back its mailbox, and learning golden signatures.

use sbst_cpu::{CoreConfig, CoreKind};
use sbst_fault::FaultPlane;
use sbst_isa::Asm;
use sbst_soc::{ChaosConfig, RunOutcome, Soc, SocBuilder};

use crate::routine::{RoutineEnv, SelfTestRoutine, RESULT_SIG_OFF, RESULT_STATUS_OFF};
use crate::wrap::cache::{wrap_cached, WrapConfig, WrapError};

/// Outcome of running one test program on one core.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunReport {
    /// SoC-level outcome.
    pub outcome: RunOutcome,
    /// Signature read from the mailbox.
    pub signature: u32,
    /// Status word read from the mailbox.
    pub status: u32,
    /// Cycles the core under test took to halt (total SoC cycles).
    pub cycles: u64,
}

/// Derives a fault-free cycle budget for a wrapped program: enough for
/// every instruction to be fetched from Flash once plus re-executed
/// from cache, with generous slack for bus contention and the loading
/// loop — a clean run halts long before this; only a defective one
/// (or an armed fault) ever reaches it.
pub fn derive_cycle_budget(asm: &Asm) -> u64 {
    200_000 + 1_024 * asm.len() as u64
}

/// The cycle budget for a fault-free run of `asm` under `env`: an
/// explicit [`RoutineEnv::cycle_budget`] wins, else one is derived from
/// the program size.
pub fn cycle_budget_for(env: &RoutineEnv, asm: &Asm) -> u64 {
    env.cycle_budget.unwrap_or_else(|| derive_cycle_budget(asm))
}

/// Runs `asm` standalone on a single core and reads the mailbox at
/// `env.result_addr`.
///
/// # Panics
///
/// Panics if the program cannot be assembled at `base`.
pub fn run_standalone(
    asm: &Asm,
    env: &RoutineEnv,
    kind: CoreKind,
    cached: bool,
    base: u32,
    plane: FaultPlane,
    max_cycles: u64,
) -> RunReport {
    let program = asm.assemble(base).expect("program assembles");
    let cfg = if cached {
        CoreConfig::cached(kind, 0, base)
    } else {
        CoreConfig::uncached(kind, 0, base)
    };
    let mut soc = SocBuilder::new().load(&program).core(cfg, 0).build();
    soc.core_mut(0).set_plane(plane);
    finish(soc, env, max_cycles)
}

/// Like [`run_standalone`], but with a chaos plane attached: the
/// traffic injector contends on its own bus port and the SEU schedule
/// may flip cached/in-flight bits. The core itself stays fault-free —
/// chaos is environmental, not a logic defect.
///
/// # Panics
///
/// Panics if the program cannot be assembled at `base`.
pub fn run_chaotic(
    asm: &Asm,
    env: &RoutineEnv,
    kind: CoreKind,
    cached: bool,
    base: u32,
    chaos: ChaosConfig,
    max_cycles: u64,
) -> RunReport {
    let program = asm.assemble(base).expect("program assembles");
    let cfg = if cached {
        CoreConfig::cached(kind, 0, base)
    } else {
        CoreConfig::uncached(kind, 0, base)
    };
    let soc = SocBuilder::new().load(&program).core(cfg, 0).chaos(chaos).build();
    finish(soc, env, max_cycles)
}

/// Steps `soc` to completion and reads core 0's mailbox.
pub fn finish(mut soc: Soc, env: &RoutineEnv, max_cycles: u64) -> RunReport {
    let outcome = soc.run(max_cycles);
    RunReport {
        outcome,
        signature: soc.peek(env.result_addr.wrapping_add(RESULT_SIG_OFF as u32)),
        status: soc.peek(env.result_addr.wrapping_add(RESULT_STATUS_OFF as u32)),
        cycles: soc.cycle(),
    }
}

/// Learns the golden signature of the cache-wrapped `routine`: wraps it
/// without an expected value, runs it fault-free on a single cached
/// core, and returns the signature (paper §I: the expected signature is
/// obtained in a fault-free scenario).
///
/// # Errors
///
/// Propagates wrapper errors (image too large, assembly failure).
pub fn learn_golden_cached(
    routine: &dyn SelfTestRoutine,
    env: &RoutineEnv,
    cfg: &WrapConfig,
    kind: CoreKind,
    base: u32,
) -> Result<u32, WrapError> {
    let learn_cfg = WrapConfig { expected_sig: None, ..*cfg };
    let asm = wrap_cached(routine, env, &learn_cfg, "golden")?;
    let report = run_standalone(
        &asm,
        env,
        kind,
        true,
        base,
        FaultPlane::fault_free(),
        cycle_budget_for(env, &asm),
    );
    assert!(
        report.outcome.is_clean(),
        "golden run must halt cleanly: {:?}",
        report.outcome
    );
    Ok(report.signature)
}
