#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! # sbst-stl — the Software Test Library and the paper's contribution
//!
//! This crate implements the DATE 2020 paper's method and everything it
//! wraps:
//!
//! * [`SelfTestRoutine`] — the single-core self-test routine abstraction
//!   and the [`Signature`] (software MISR) machinery;
//! * the routines themselves ([`routines`]): the forwarding-logic test
//!   of \[19\] with and without performance counters
//!   ([`ForwardingTest`](routines::ForwardingTest)), the full HDCU test
//!   ([`HdcuTest`](routines::HdcuTest)), the imprecise-interrupt ICU
//!   test after \[21\] ([`IcuTest`](routines::IcuTest)) and a generic STL
//!   filler ([`GenericAluTest`](routines::GenericAluTest));
//! * **the cache-based deterministic wrapper** ([`wrap_cached`],
//!   Figure 2b): invalidate I$/D$, run the unmodified body twice —
//!   *loading loop* then *execution loop* — so the reported signature is
//!   computed entirely from the private caches, decoupled from
//!   multi-core bus contention; with automatic routine splitting when
//!   the image exceeds the cache ([`plan_cached`]) and the dummy-load
//!   store transform for no-write-allocate D$ configurations;
//! * the competing TCM-based strategy ([`wrap_tcm`], Table IV);
//! * the decentralized multi-core STL scheduler ([`sched`], after \[13\]);
//! * run helpers ([`run_standalone`], [`learn_golden_cached`]).
//!
//! ## Quickstart
//!
//! ```
//! use sbst_cpu::CoreKind;
//! use sbst_fault::FaultPlane;
//! use sbst_stl::{
//!     learn_golden_cached, routines::IcuTest, run_standalone, wrap_cached,
//!     RoutineEnv, WrapConfig, STATUS_PASS,
//! };
//!
//! # fn main() -> Result<(), sbst_stl::WrapError> {
//! let routine = IcuTest::new();
//! let env = RoutineEnv::for_core(CoreKind::A);
//! let mut cfg = WrapConfig::default();
//! // Learn the fault-free signature, then embed it as the self-check.
//! cfg.expected_sig =
//!     Some(learn_golden_cached(&routine, &env, &cfg, CoreKind::A, 0x400)?);
//! let program = wrap_cached(&routine, &env, &cfg, "icu")?;
//! let report = run_standalone(
//!     &program, &env, CoreKind::A, true, 0x400,
//!     FaultPlane::fault_free(), 10_000_000,
//! );
//! assert_eq!(report.status, STATUS_PASS);
//! # Ok(())
//! # }
//! ```

pub mod bound;
mod catalog;
mod harness;
pub mod healer;
mod routine;
pub mod routines;
pub mod sched;
mod signature;
pub mod supervisor;
mod text_routine;
mod wrap;

pub use bound::{BoundViolation, BoundWatchdog};
pub use catalog::{BootImage, BootReport, BootVerdict, CatalogEntry, GoldenDb, StlCatalog};
pub use harness::{
    cycle_budget_for, derive_cycle_budget, finish, learn_golden_cached, run_chaotic,
    run_standalone, RunReport,
};
pub use healer::{
    heal_standalone, run_self_healing, CheckMode, HealAction, HealConfig, RecoveryReport,
};
pub use supervisor::{
    CoreVerdict, DegradedReport, QuarantineCause, Supervisor, SupervisorConfig,
};
pub use routine::{
    emit_pc_anchor, RoutineEnv, SelfTestRoutine, RESULT_SIG_OFF, RESULT_STATUS_OFF, STATUS_DONE,
    STATUS_FAIL, STATUS_PASS,
};
pub use signature::{emit_accumulate, emit_init, Signature, SIG_REG, SIG_TMP};
pub use text_routine::TextRoutine;
pub use wrap::{
    plan_cached, wrap_cached, wrap_sequence, wrap_tcm, TcmWrapped, Terminator, WrapConfig,
    WrapError,
};
