//! Decentralized boot-time STL scheduling (after Floridia et al. \[13\]).
//!
//! Each core runs its own sequence of wrapped routines; coordination is
//! decentralized through shared-SRAM primitives (an `amoswap` spinlock
//! and a start barrier) — no core plays master. This is the execution
//! context that produces the paper's Table I bus-contention numbers.

use sbst_isa::{Asm, Reg};
use sbst_mem::{MMIO_BASE, SRAM_BASE, WDG_KICK, WDG_LOAD};

use crate::routine::{RoutineEnv, SelfTestRoutine};
use crate::wrap::cache::{emit_into, WrapConfig};
use crate::wrap::Terminator;

/// Shared-memory layout of the scheduler's coordination block.
#[derive(Debug, Clone, Copy)]
pub struct SchedLayout {
    /// Spinlock word.
    pub lock_addr: u32,
    /// Arrived-cores counter.
    pub count_addr: u32,
    /// First per-core "done" flag word (one word per core).
    pub done_base: u32,
}

impl Default for SchedLayout {
    fn default() -> SchedLayout {
        SchedLayout {
            lock_addr: SRAM_BASE,
            count_addr: SRAM_BASE + 4,
            done_base: SRAM_BASE + 8,
        }
    }
}

// Scheduler-reserved registers (distinct from wrapper + body sets is
// unnecessary: the barrier runs before/after routines).
const LOCK_PTR: Reg = Reg::R1;
const TMP: Reg = Reg::R2;
const OLD: Reg = Reg::R3;
const CNT_PTR: Reg = Reg::R4;

/// Emits a decentralized start barrier: take the lock, bump the arrival
/// counter, release, then spin until all `n` cores arrived.
pub fn emit_barrier(asm: &mut Asm, layout: &SchedLayout, n: u32, tag: &str) {
    let acquire = format!("{tag}_bar_acq");
    let wait = format!("{tag}_bar_wait");
    asm.li(LOCK_PTR, layout.lock_addr);
    asm.li(CNT_PTR, layout.count_addr);
    asm.label(&acquire);
    asm.li(TMP, 1);
    asm.amoswap(OLD, TMP, LOCK_PTR); // swaps bypass the D$
    asm.bne(OLD, Reg::R0, &acquire);
    // There is no cache-coherence protocol: shared words written by the
    // other cores must be re-read past the private D$, so boot code
    // invalidates before every coordination read.
    asm.dcinv();
    asm.lw(TMP, CNT_PTR, 0);
    asm.addi(TMP, TMP, 1);
    asm.sw(TMP, CNT_PTR, 0); // write-through: immediately visible
    asm.sw(Reg::R0, LOCK_PTR, 0); // release
    asm.li(OLD, n);
    asm.label(&wait);
    asm.dcinv();
    asm.lw(TMP, CNT_PTR, 0);
    asm.blt(TMP, OLD, &wait);
}

/// Arms the memory-mapped watchdog with `timeout` cycles.
pub fn emit_watchdog_arm(asm: &mut Asm, timeout: u32) {
    asm.li(Reg::R1, MMIO_BASE + WDG_LOAD);
    asm.li(Reg::R2, timeout);
    asm.sw(Reg::R2, Reg::R1, 0);
}

/// Kicks (reloads) the watchdog.
pub fn emit_watchdog_kick(asm: &mut Asm) {
    asm.li(Reg::R1, MMIO_BASE + WDG_KICK);
    asm.sw(Reg::R0, Reg::R1, 0);
}

/// One core's share of the Software Test Library.
pub struct CoreStl {
    /// Routines this core runs, in order.
    pub routines: Vec<Box<dyn SelfTestRoutine>>,
    /// Environment (result mailboxes advance by 16 bytes per routine).
    pub env: RoutineEnv,
    /// Watchdog timeout armed by core 0 and kicked between routines
    /// (`None` = watchdog unused). Must exceed the longest routine's
    /// cache-wrapped execution time.
    pub watchdog: Option<u32>,
}

impl CoreStl {
    /// An STL share without watchdog supervision.
    pub fn new(routines: Vec<Box<dyn SelfTestRoutine>>, env: RoutineEnv) -> CoreStl {
        CoreStl { routines, env, watchdog: None }
    }
}

/// Builds the boot-time STL program of one core: start barrier →
/// wrapped routines back-to-back → done flag → halt.
///
/// `wrap` controls the deterministic wrapper applied to *every* routine
/// (set `iterations: 1, invalidate: false` to model the legacy uncached
/// STL).
pub fn build_stl_program(
    core_id: usize,
    total_cores: u32,
    stl: &CoreStl,
    wrap: &WrapConfig,
    layout: &SchedLayout,
) -> Asm {
    let mut asm = Asm::new();
    let tag_base = format!("c{core_id}");
    if let Some(timeout) = stl.watchdog {
        if core_id == 0 {
            emit_watchdog_arm(&mut asm, timeout);
        }
    }
    emit_barrier(&mut asm, layout, total_cores, &tag_base);
    for (i, routine) in stl.routines.iter().enumerate() {
        let env = RoutineEnv {
            result_addr: stl.env.result_addr + 16 * i as u32,
            data_base: stl.env.data_base + 0x40 * i as u32,
            ..stl.env
        };
        let cfg = WrapConfig { terminator: Terminator::Fallthrough, ..*wrap };
        emit_into(&mut asm, routine.as_ref(), &env, &cfg, &format!("{tag_base}_r{i}"));
        if stl.watchdog.is_some() && core_id == 0 {
            emit_watchdog_kick(&mut asm);
        }
    }
    // Publish completion.
    asm.li(Reg::R1, layout.done_base + 4 * core_id as u32);
    asm.li(Reg::R2, 1);
    asm.sw(Reg::R2, Reg::R1, 0);
    asm.halt();
    asm
}
