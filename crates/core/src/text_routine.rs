//! User-defined routines written as assembly text.
//!
//! [`TextRoutine`] adapts a `.s`-style source string (parsed with
//! [`Asm::parse_source`]) into a [`SelfTestRoutine`], so downstream users
//! can add their own test procedures to the STL — and wrap them with the
//! deterministic cache-based strategy — without touching Rust emitters.
//!
//! The source may reference two placeholder symbols that are substituted
//! per [`RoutineEnv`] before parsing:
//!
//! * `{data_base}` — the routine's private SRAM scratch area;
//! * `{result}` — the routine's result mailbox (rarely needed: the
//!   wrapper publishes the signature itself).
//!
//! Labels are automatically prefixed with the emission tag, so the same
//! routine can appear several times in one STL sequence.

use sbst_fault::Unit;
use sbst_isa::{Asm, ParseSourceError};

use crate::routine::{RoutineEnv, SelfTestRoutine};

/// A self-test routine defined by assembly source text.
///
/// # Example
///
/// ```
/// use sbst_cpu::CoreKind;
/// use sbst_fault::FaultPlane;
/// use sbst_stl::{run_standalone, wrap_cached, RoutineEnv, TextRoutine, WrapConfig};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let routine = TextRoutine::new(
///     "my-alu-check",
///     r"
///         li   r1, 0x1234
///         li   r2, 0x4321
///     mix:
///         add  r3, r1, r2
///         xor  r4, r3, r1
///         ; fold r4 into the signature (r20, scratch r30):
///         slli r30, r20, 1
///         srli r20, r20, 31
///         or   r20, r30, r20
///         xor  r20, r20, r4
///     ",
/// )?;
/// let env = RoutineEnv::for_core(CoreKind::A);
/// let asm = wrap_cached(&routine, &env, &WrapConfig::default(), "mine")?;
/// let report = run_standalone(&asm, &env, CoreKind::A, true, 0x400,
///                             FaultPlane::fault_free(), 5_000_000);
/// assert!(report.outcome.is_clean());
/// assert_ne!(report.signature, 0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct TextRoutine {
    name: String,
    source: String,
}

impl TextRoutine {
    /// Validates `source` (parse check against a dummy environment) and
    /// creates the routine.
    ///
    /// # Errors
    ///
    /// Returns the first unparsable line.
    pub fn new(name: &str, source: &str) -> Result<TextRoutine, ParseSourceError> {
        let routine = TextRoutine { name: name.to_string(), source: source.to_string() };
        // Early validation with placeholder values.
        routine.render(&RoutineEnv::for_core(sbst_cpu::CoreKind::A), "probe")?;
        Ok(routine)
    }

    /// Substitutes placeholders and prefixes labels, then parses.
    fn render(&self, env: &RoutineEnv, tag: &str) -> Result<Asm, ParseSourceError> {
        let substituted = self
            .source
            .replace("{data_base}", &format!("{:#x}", env.data_base))
            .replace("{result}", &format!("{:#x}", env.result_addr));
        // Prefix every label definition and reference. Labels are plain
        // identifiers; operands referencing them appear as the last
        // comma-separated field of branch/jump lines, which the source
        // parser resolves by name — so a uniform textual prefix works as
        // long as the prefix is applied to definitions and uses alike.
        // We rely on the parser for structure and only prefix at the
        // label-definition site plus the label-operand positions it
        // accepts; simplest robust approach: prefix every standalone
        // word that is also defined as a label in the source.
        let label_names: Vec<String> = substituted
            .lines()
            .filter_map(|l| {
                let code = l.split([';', '#']).next().unwrap_or("").trim();
                code.find(':').map(|i| code[..i].trim().to_string())
            })
            .filter(|s| !s.is_empty() && !s.contains(char::is_whitespace))
            .collect();
        let mut text = substituted;
        for name in &label_names {
            // Word-boundary replacement (labels are unique identifiers).
            let mut out = String::with_capacity(text.len());
            let mut rest = text.as_str();
            while let Some(pos) = rest.find(name.as_str()) {
                let before_ok = pos == 0
                    || !rest[..pos]
                        .chars()
                        .next_back()
                        .is_some_and(|c| c.is_alphanumeric() || c == '_');
                let after = &rest[pos + name.len()..];
                let after_ok = !after
                    .chars()
                    .next()
                    .is_some_and(|c| c.is_alphanumeric() || c == '_');
                out.push_str(&rest[..pos]);
                if before_ok && after_ok {
                    out.push_str(&format!("{tag}_{name}"));
                } else {
                    out.push_str(name);
                }
                rest = after;
            }
            out.push_str(rest);
            text = out;
        }
        Asm::parse_source(&text)
    }
}

impl SelfTestRoutine for TextRoutine {
    fn name(&self) -> String {
        format!("text:{}", self.name)
    }

    fn target_unit(&self) -> Option<Unit> {
        None
    }

    fn emit_body(&self, asm: &mut Asm, env: &RoutineEnv, tag: &str) {
        let parsed = self
            .render(env, tag)
            .expect("validated at construction; placeholders are numeric");
        asm.append(&parsed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sbst_cpu::CoreKind;

    #[test]
    fn placeholders_and_labels_render() {
        let r = TextRoutine::new(
            "t",
            "li r8, {data_base}\nspin: subi r8, r8, 1\nbne r8, r0, spin\n",
        )
        .expect("valid");
        let env = RoutineEnv::for_core(CoreKind::A);
        let mut a = Asm::new();
        r.emit_body(&mut a, &env, "x");
        let mut b = Asm::new();
        r.emit_body(&mut b, &env, "y");
        // Distinct tags -> no duplicate labels when both are in one program.
        let mut combined = Asm::new();
        r.emit_body(&mut combined, &env, "x");
        r.emit_body(&mut combined, &env, "y");
        assert!(combined.assemble(0x400).is_ok());
    }

    #[test]
    fn bad_source_is_rejected_up_front() {
        assert!(TextRoutine::new("bad", "frobnicate r1, r2\n").is_err());
    }

    #[test]
    fn label_prefixing_respects_word_boundaries() {
        // `a` is a substring of `ab`: prefixing must not mangle either.
        let r = TextRoutine::new(
            "tricky",
            "a: nop\nab: nop\nj a\nj ab\n",
        )
        .expect("valid");
        let env = RoutineEnv::for_core(CoreKind::A);
        let mut asm = Asm::new();
        r.emit_body(&mut asm, &env, "t");
        let program = asm.assemble(0x400).expect("labels resolved uniquely");
        // j a -> offset -8 (two nops back), j ab -> offset -8 as well
        // (one nop + one j back). Both must decode as jumps.
        let jumps: Vec<_> = program
            .words()
            .iter()
            .filter_map(|&w| match sbst_isa::Instr::decode(w) {
                Ok(sbst_isa::Instr::Jal { off, .. }) => Some(off),
                _ => None,
            })
            .collect();
        assert_eq!(jumps, vec![-8, -8]);
    }
}
