//! Test signatures.
//!
//! SBST routines accumulate every observable value into a *signature*
//! (a software MISR): `sig = rotl(sig, 1) ^ value`. In field, comparing
//! the final signature with the fault-free golden value is the only safe
//! way to decide pass/fail (paper §I). This module provides both the
//! host-side accumulator used to predict golden signatures and the
//! assembly emitters routines use to compute it on the core.

use sbst_isa::{Asm, Reg};

/// Register holding the running signature, by STL convention.
pub const SIG_REG: Reg = Reg::R20;
/// Scratch register clobbered by [`emit_accumulate`].
pub const SIG_TMP: Reg = Reg::R30;

/// Host-side mirror of the software MISR.
///
/// # Example
///
/// ```
/// use sbst_stl::Signature;
///
/// let mut sig = Signature::new();
/// sig.push(0x1234_5678);
/// sig.push(0x9abc_def0);
/// assert_ne!(sig.value(), 0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Signature(u32);

impl Signature {
    /// A fresh signature (value 0).
    pub fn new() -> Signature {
        Signature(0)
    }

    /// Folds one observed value.
    pub fn push(&mut self, value: u32) {
        self.0 = self.0.rotate_left(1) ^ value;
    }

    /// The accumulated value.
    pub fn value(self) -> u32 {
        self.0
    }
}

/// Emits `sig = 0` (start of the execution loop's accumulation).
pub fn emit_init(asm: &mut Asm) {
    asm.addi(SIG_REG, Reg::R0, 0);
}

/// Emits `sig = rotl(sig, 1) ^ value_reg` (4 instructions, clobbers
/// [`SIG_TMP`]).
pub fn emit_accumulate(asm: &mut Asm, value_reg: Reg) {
    asm.slli(SIG_TMP, SIG_REG, 1);
    asm.srli(SIG_REG, SIG_REG, 31);
    asm.or(SIG_REG, SIG_TMP, SIG_REG);
    asm.xor(SIG_REG, SIG_REG, value_reg);
}

#[cfg(test)]
mod tests {
    use super::*;
    use sbst_cpu::{CoreKind, RefCpu, RefStop};

    #[test]
    fn rotate_xor_semantics() {
        let mut s = Signature::new();
        s.push(1);
        assert_eq!(s.value(), 1);
        s.push(0);
        assert_eq!(s.value(), 2);
        s.push(0x8000_0000);
        assert_eq!(s.value(), 0x8000_0004);
        s.push(0);
        assert_eq!(s.value(), 0x0000_0009, "msb rotates into bit 0");
    }

    #[test]
    fn order_matters() {
        let mut a = Signature::new();
        a.push(1);
        a.push(2);
        let mut b = Signature::new();
        b.push(2);
        b.push(1);
        assert_ne!(a.value(), b.value());
    }

    #[test]
    fn emitted_code_matches_host_mirror() {
        let values = [0xdead_beefu32, 0x0000_0001, 0xffff_ffff, 0x1234_5678];
        let mut asm = Asm::new();
        emit_init(&mut asm);
        for (i, &v) in values.iter().enumerate() {
            asm.li(Reg::R1, v);
            emit_accumulate(&mut asm, Reg::R1);
            let _ = i;
        }
        asm.halt();
        let mut cpu = RefCpu::new(CoreKind::A, asm.assemble(0x100).unwrap());
        assert_eq!(cpu.run(10_000), RefStop::Halted);
        let mut expected = Signature::new();
        for &v in &values {
            expected.push(v);
        }
        assert_eq!(cpu.reg(SIG_REG), expected.value());
    }
}
