//! Self-healing execution of a cache-wrapped routine under chaos.
//!
//! The deterministic wrapper makes a routine's signature immune to bus
//! *timing* (interference from other masters), but not to *data*
//! corruption: a transient upset in a cached line or an in-flight bus
//! word silently changes what the execution loop computes. The healer
//! closes that gap with a cross-check-and-retry loop:
//!
//! 1. run the wrapped routine and cross-check its signature — against a
//!    learned golden ([`CheckMode::Golden`]) or by majority over
//!    independent re-runs ([`CheckMode::Vote`]);
//! 2. on mismatch, throw the state away and retry: each attempt is a
//!    *fresh* SoC (cold caches — the wrapper invalidates and the
//!    loading loop re-warms) under a *re-seeded* transient schedule
//!    ([`ChaosConfig::for_attempt`]), because an SEU does not replay;
//! 3. after [`HealConfig::max_retries`] extra attempts, escalate to the
//!    supervisor's quarantine path with a [`QuarantineCause`].
//!
//! The invariant the chaos property tests pin down: the healer **never
//! silently reports a corrupted signature** — every returned signature
//! was either cross-checked clean or the report says quarantine.
//!
//! [`ChaosConfig::for_attempt`]: sbst_soc::ChaosConfig::for_attempt

use sbst_cpu::{CoreConfig, CoreKind};
use sbst_soc::{ChaosConfig, RunOutcome, SocBuilder};

use crate::harness::{cycle_budget_for, finish, RunReport};
use crate::routine::{RoutineEnv, SelfTestRoutine, STATUS_DONE, STATUS_PASS};
use crate::supervisor::QuarantineCause;
use crate::wrap::cache::{wrap_cached, WrapConfig};
use crate::wrap::WrapError;

/// How the healer decides whether a run's signature is trustworthy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CheckMode {
    /// Compare against a golden signature learned fault-free (the
    /// paper's normal regime: goldens exist for every routine).
    Golden(u32),
    /// No golden available: trust a signature only when two out of
    /// three independent runs agree on it.
    Vote,
}

/// Healer tuning knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HealConfig {
    /// Extra attempts after the first failing one before escalation.
    pub max_retries: usize,
    /// Signature cross-check policy.
    pub check: CheckMode,
}

impl HealConfig {
    /// Golden-compare with the default retry budget.
    pub fn golden(expected: u32) -> HealConfig {
        HealConfig { max_retries: 2, check: CheckMode::Golden(expected) }
    }

    /// 2-of-3 voting with the default retry budget.
    pub fn vote() -> HealConfig {
        HealConfig { max_retries: 2, check: CheckMode::Vote }
    }
}

/// What the healer ultimately did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HealAction {
    /// First check passed — no disturbance reached the signature.
    Clean,
    /// A check failed but a retry produced a trusted signature.
    Recovered {
        /// Extra attempts consumed beyond the baseline.
        retries: usize,
    },
    /// Every attempt failed; the core must be quarantined.
    Quarantine {
        /// Failure mode of the last attempt.
        cause: QuarantineCause,
    },
}

/// Structured outcome of one healed execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Total runs executed (including votes and retries).
    pub attempts: usize,
    /// What happened.
    pub action: HealAction,
    /// The cross-checked signature — `None` exactly when quarantined.
    pub signature: Option<u32>,
}

impl RecoveryReport {
    /// Whether a trusted signature was produced.
    pub fn healthy(&self) -> bool {
        self.signature.is_some()
    }

    /// Whether the healer ended in escalation.
    pub fn quarantined(&self) -> bool {
        matches!(self.action, HealAction::Quarantine { .. })
    }
}

impl std::fmt::Display for RecoveryReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.action {
            HealAction::Clean => write!(f, "clean in {} run(s)", self.attempts),
            HealAction::Recovered { retries } => {
                write!(f, "recovered after {retries} retr{} ({} runs)",
                       if retries == 1 { "y" } else { "ies" }, self.attempts)
            }
            HealAction::Quarantine { cause } => {
                write!(f, "quarantine after {} runs ({cause})", self.attempts)
            }
        }
    }
}

/// Maps a failing run to the supervisor's quarantine vocabulary.
fn cause_of(report: &RunReport) -> QuarantineCause {
    match report.outcome {
        RunOutcome::FatalTrap { .. } => QuarantineCause::UnexpectedTrap,
        RunOutcome::Watchdog { .. } => QuarantineCause::WatchdogBite,
        // Halted cleanly but the signature/status check failed.
        RunOutcome::AllHalted { .. } => QuarantineCause::SignatureMismatch,
    }
}

/// Whether a run halted cleanly with a non-failing status. Programs
/// wrapped *with* an embedded golden report `STATUS_PASS`; wrapped
/// without one they report `STATUS_DONE` — the healer is then the sole
/// checker. Anything else (explicit FAIL, a zeroed mailbox) is a
/// failing run.
fn finished_ok(report: &RunReport) -> bool {
    report.outcome.is_clean()
        && (report.status == STATUS_PASS || report.status == STATUS_DONE)
}

/// Whether a run is acceptable under golden comparison.
fn golden_ok(report: &RunReport, expected: u32) -> bool {
    finished_ok(report) && report.signature == expected
}

/// Runs `run(attempt)` under the healer's cross-check-and-retry policy.
///
/// The closure owns execution: attempt `n` must be an *independent*
/// fresh run (new SoC, cold caches) — under chaos, pass
/// `chaos.for_attempt(n)` so transients do not replay. Vote mode
/// consumes attempt indices for its extra ballots, so the closure sees
/// strictly increasing `attempt` values across the whole healing.
pub fn run_self_healing(
    cfg: &HealConfig,
    mut run: impl FnMut(usize) -> RunReport,
) -> RecoveryReport {
    match cfg.check {
        CheckMode::Golden(expected) => {
            let mut last = run(0);
            if golden_ok(&last, expected) {
                return RecoveryReport {
                    attempts: 1,
                    action: HealAction::Clean,
                    signature: Some(last.signature),
                };
            }
            for retry in 1..=cfg.max_retries {
                last = run(retry);
                if golden_ok(&last, expected) {
                    return RecoveryReport {
                        attempts: retry + 1,
                        action: HealAction::Recovered { retries: retry },
                        signature: Some(last.signature),
                    };
                }
            }
            RecoveryReport {
                attempts: cfg.max_retries + 1,
                action: HealAction::Quarantine { cause: cause_of(&last) },
                signature: None,
            }
        }
        CheckMode::Vote => {
            // One ballot is three independent runs; a signature shared
            // by two clean PASS runs is trusted. Retries grant extra
            // ballots.
            let mut attempt = 0usize;
            let mut last = RunReport {
                outcome: RunOutcome::Watchdog { cycles: 0 },
                signature: 0,
                status: 0,
                cycles: 0,
            };
            for ballot in 0..=cfg.max_retries {
                let votes: Vec<RunReport> = (0..3)
                    .map(|_| {
                        let r = run(attempt);
                        attempt += 1;
                        r
                    })
                    .collect();
                last = votes[2];
                let clean: Vec<&RunReport> = votes.iter().filter(|r| finished_ok(r)).collect();
                let majority = clean.iter().find(|r| {
                    clean.iter().filter(|o| o.signature == r.signature).count() >= 2
                });
                if let Some(winner) = majority {
                    let unanimous = votes
                        .iter()
                        .all(|r| golden_ok(r, winner.signature));
                    let action = if unanimous && ballot == 0 {
                        HealAction::Clean
                    } else {
                        HealAction::Recovered { retries: ballot }
                    };
                    return RecoveryReport {
                        attempts: attempt,
                        action,
                        signature: Some(winner.signature),
                    };
                }
            }
            RecoveryReport {
                attempts: attempt,
                action: HealAction::Quarantine { cause: cause_of(&last) },
                signature: None,
            }
        }
    }
}

/// Convenience: heals one cache-wrapped routine standalone under a
/// chaos plane. Attempt `n` rebuilds the SoC from scratch (cold caches)
/// with the chaos re-seeded via [`ChaosConfig::for_attempt`].
///
/// # Errors
///
/// Propagates wrapper/assembly errors — build defects, never retried.
pub fn heal_standalone(
    routine: &dyn SelfTestRoutine,
    env: &RoutineEnv,
    wrap: &WrapConfig,
    kind: CoreKind,
    base: u32,
    chaos: ChaosConfig,
    cfg: &HealConfig,
) -> Result<RecoveryReport, WrapError> {
    let asm = wrap_cached(routine, env, wrap, "heal")?;
    let program = asm.assemble(base)?;
    let budget = cycle_budget_for(env, &asm);
    let image = {
        let mut b = SocBuilder::new();
        b = b.load(&program);
        b.freeze_image()
    };
    Ok(run_self_healing(cfg, |attempt| {
        let builder = SocBuilder::new()
            .core(CoreConfig::cached(kind, 0, base), 0)
            .chaos(chaos.for_attempt(attempt));
        let soc = builder.build_shared(image.clone());
        finish(soc, env, budget)
    }))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ok(sig: u32) -> RunReport {
        RunReport {
            outcome: RunOutcome::AllHalted { cycles: 100 },
            signature: sig,
            status: STATUS_PASS,
            cycles: 100,
        }
    }

    fn hung() -> RunReport {
        RunReport {
            outcome: RunOutcome::Watchdog { cycles: 999 },
            signature: 0,
            status: 0,
            cycles: 999,
        }
    }

    #[test]
    fn golden_clean_first_time() {
        let r = run_self_healing(&HealConfig::golden(7), |_| ok(7));
        assert_eq!(r.attempts, 1);
        assert_eq!(r.action, HealAction::Clean);
        assert_eq!(r.signature, Some(7));
    }

    #[test]
    fn golden_recovers_on_retry() {
        let r = run_self_healing(&HealConfig::golden(7), |n| {
            if n == 0 { ok(99) } else { ok(7) }
        });
        assert_eq!(r.action, HealAction::Recovered { retries: 1 });
        assert_eq!(r.attempts, 2);
        assert_eq!(r.signature, Some(7));
    }

    #[test]
    fn golden_escalates_with_last_cause() {
        let r = run_self_healing(&HealConfig::golden(7), |n| {
            if n < 2 { ok(99) } else { hung() }
        });
        assert_eq!(
            r.action,
            HealAction::Quarantine { cause: QuarantineCause::WatchdogBite }
        );
        assert_eq!(r.attempts, 3);
        assert!(!r.healthy());

        let r = run_self_healing(&HealConfig::golden(7), |_| ok(99));
        assert_eq!(
            r.action,
            HealAction::Quarantine { cause: QuarantineCause::SignatureMismatch }
        );
    }

    #[test]
    fn vote_trusts_two_of_three() {
        let r = run_self_healing(&HealConfig::vote(), |n| {
            if n == 1 { ok(99) } else { ok(7) }
        });
        assert_eq!(r.signature, Some(7));
        assert_eq!(r.action, HealAction::Recovered { retries: 0 });
        assert_eq!(r.attempts, 3);
    }

    #[test]
    fn vote_unanimous_is_clean() {
        let r = run_self_healing(&HealConfig::vote(), |_| ok(7));
        assert_eq!(r.action, HealAction::Clean);
        assert_eq!(r.attempts, 3);
    }

    #[test]
    fn vote_with_no_majority_escalates() {
        let mut sigs = [1u32, 2, 3, 4, 5, 6, 7, 8, 9].into_iter();
        let r = run_self_healing(&HealConfig::vote(), |_| ok(sigs.next().unwrap()));
        assert!(r.quarantined());
        assert_eq!(r.attempts, 9);
        assert_eq!(r.signature, None);
    }
}
