//! Load/store-unit routine.
//!
//! Stores and reloads patterns across SRAM scratch and the data TCM,
//! exercising store-to-load forwarding distances, cache write paths
//! (policy-aware via [`RoutineEnv::emit_store`]) and the atomic swap.
//! Another representative slice of the boot-time STL beyond the two
//! case-study routines.

use sbst_fault::Unit;
use sbst_isa::{Asm, Reg};
use sbst_mem::DTCM_BASE;

use crate::routine::{RoutineEnv, SelfTestRoutine};
use crate::signature::emit_accumulate;

const SB: Reg = Reg::R8; // SRAM scratch base
const TB: Reg = Reg::R9; // DTCM base
const V: Reg = Reg::R1;
const W: Reg = Reg::R2;
const T: Reg = Reg::R3;

/// The load/store-unit routine; `rounds` scales the pattern sweep.
#[derive(Debug, Clone)]
pub struct LsuTest {
    /// Number of pattern rounds.
    pub rounds: u32,
}

impl LsuTest {
    /// Default two-round routine.
    pub fn new() -> LsuTest {
        LsuTest { rounds: 2 }
    }
}

impl Default for LsuTest {
    fn default() -> LsuTest {
        LsuTest::new()
    }
}

impl SelfTestRoutine for LsuTest {
    fn name(&self) -> String {
        format!("lsu[{} rounds]", self.rounds)
    }

    fn target_unit(&self) -> Option<Unit> {
        None
    }

    fn emit_body(&self, asm: &mut Asm, env: &RoutineEnv, _tag: &str) {
        asm.li(SB, env.data_base);
        asm.li(TB, DTCM_BASE + 0x40);
        for round in 0..self.rounds.max(1) {
            let seed = 0xc001_d00du32.rotate_left(round * 5);
            // SRAM pattern sweep across 8 word offsets.
            for i in 0..8i16 {
                asm.li(V, seed ^ (i as u32).wrapping_mul(0x1111_1111));
                env.emit_store(asm, V, SB, i * 4);
            }
            // Immediate load-back (store-to-load forwarding distance 0).
            for i in 0..8i16 {
                asm.lw(T, SB, i * 4);
                emit_accumulate(asm, T);
            }
            // Store then load with intervening work (distance > buffer).
            asm.li(V, seed ^ 0xffff_0000);
            env.emit_store(asm, V, SB, 32);
            for _ in 0..6 {
                asm.addi(W, W, 3);
            }
            asm.lw(T, SB, 32);
            emit_accumulate(asm, T);
            // DTCM round trip (single-cycle private memory).
            asm.li(V, seed ^ 0x00ff_00ff);
            asm.sw(V, TB, 0);
            asm.lw(T, TB, 0);
            emit_accumulate(asm, T);
            // Atomic swap on SRAM: old value and final content both fold.
            asm.li(V, round + 1);
            asm.addi(W, SB, 36);
            asm.amoswap(T, V, W);
            emit_accumulate(asm, T);
            asm.lw(T, SB, 36);
            emit_accumulate(asm, T);
        }
    }
}
