//! The forwarding-logic self-test routine (after Bernardi et al. \[19\]).
//!
//! Exhaustively excites every operand-bypass path of the dual-issue
//! pipeline: for each *consumer slot* (0/1), *consumer operand* (A/B),
//! *producer pipe* (0/1) and *producer distance* (1 packet → EX/MEM
//! path, 2 packets → MEM/WB path), a dependent instruction pair is
//! issued with precise packet alignment and the forwarded value is
//! folded into the signature. Additional sequences cover intra-packet
//! (interpipeline) dependencies, load-use stalls, the writeback-select
//! muxes and — on core C — the 64-bit datapath.
//!
//! The `use_pcs` flag adds the performance-counter observation of \[19\]:
//! the HDCU-stall count delta across the body is folded into the
//! signature, making wrongly inserted (or missing) stalls detectable.

use sbst_fault::Unit;
use sbst_isa::{AluOp, Asm, Csr, Reg};

use crate::routine::{RoutineEnv, SelfTestRoutine};
use crate::signature::emit_accumulate;

// Body register convention (see `SelfTestRoutine`).
const V: Reg = Reg::R1; // pattern value
const P: Reg = Reg::R5; // fixed producer (stall/CSR sequences)
const C: Reg = Reg::R6; // fixed consumer (stall/CSR sequences)
const F: Reg = Reg::R7; // filler destination
/// Producer-destination rotation: the 5-bit register indices walk every
/// comparator bit through both polarities (the HDCU's register-index
/// XNOR comparators are only testable if the indices vary — \[19\]).
const P_SET: [Reg; 5] = [Reg::R5, Reg::R6, Reg::R9, Reg::R17, Reg::R18];
/// Consumer-destination rotation (disjoint from `P_SET`).
const C_SET: [Reg; 5] = [Reg::R4, Reg::R14, Reg::R15, Reg::R16, Reg::R19];
const DB: Reg = Reg::R8; // data base pointer
const PC0: Reg = Reg::R24; // hazard-stall counter snapshot
const PC_IF: Reg = Reg::R27; // fetch-stall counter snapshot
const PC_MEM: Reg = Reg::R28; // memory-stall counter snapshot
const V64: Reg = Reg::R2; // 64-bit pattern (r2:r3)
const P64: Reg = Reg::R10; // 64-bit producer pair (r10:r11)
const C64: Reg = Reg::R12; // 64-bit consumer pair (r12:r13)

/// One forwarding path to excite.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PathCombo {
    /// Packets between producer and consumer (1 = EX/MEM, 2 = MEM/WB).
    pub distance: u8,
    /// Pipe the producer issues in (0/1).
    pub producer_slot: u8,
    /// Slot the consumer issues in (0/1).
    pub consumer_slot: u8,
    /// Consumer operand the dependency rides on (0 = A, 1 = B).
    pub operand: u8,
}

impl PathCombo {
    /// All 16 inter-packet path combinations.
    pub fn all() -> Vec<PathCombo> {
        let mut out = Vec::with_capacity(16);
        for distance in [1u8, 2] {
            for producer_slot in [0u8, 1] {
                for consumer_slot in [0u8, 1] {
                    for operand in [0u8, 1] {
                        out.push(PathCombo { distance, producer_slot, consumer_slot, operand });
                    }
                }
            }
        }
        out
    }
}

/// Default data patterns: together they drive every datapath bit to
/// both polarities, and they are asymmetric enough that the rotating
/// signature cannot self-cancel.
pub fn default_patterns() -> Vec<u32> {
    vec![0xaaaa_aaaa, 0x5555_5555, 0xdead_beef, 0x2152_0114]
}

/// The forwarding-logic routine.
#[derive(Debug, Clone)]
pub struct ForwardingTest {
    combos: Vec<PathCombo>,
    patterns: Vec<u32>,
    use_pcs: bool,
    with64: bool,
}

impl ForwardingTest {
    /// Full-coverage routine for a core kind, *without* performance
    /// counters (the Table II variant).
    pub fn without_pcs(kind: sbst_cpu::CoreKind) -> ForwardingTest {
        ForwardingTest {
            combos: PathCombo::all(),
            patterns: default_patterns(),
            use_pcs: false,
            with64: kind.has_alu64(),
        }
    }

    /// Full routine with performance counters (the original \[19\]
    /// algorithm, used inside the HDCU test).
    pub fn with_pcs(kind: sbst_cpu::CoreKind) -> ForwardingTest {
        ForwardingTest { use_pcs: true, ..ForwardingTest::without_pcs(kind) }
    }

    /// Custom path/pattern subset (splitting, ablations).
    pub fn with_parts(
        combos: Vec<PathCombo>,
        patterns: Vec<u32>,
        use_pcs: bool,
        with64: bool,
    ) -> ForwardingTest {
        ForwardingTest { combos, patterns, use_pcs, with64 }
    }

    /// Whether the performance-counter observation is included.
    pub fn uses_pcs(&self) -> bool {
        self.use_pcs
    }

    /// Emits one inter-packet dependency template.
    ///
    /// Layout (distance 1, producer slot 0, consumer slot 0, operand A):
    ///
    /// ```text
    /// align 8
    /// add  P, V, r0    ; packet k   slot 0   (producer)
    /// nop              ;            slot 1
    /// add  C, P, r0    ; packet k+1 slot 0   (consumer, EX/MEM path)
    /// nop              ;            slot 1
    /// sig ^= C
    /// ```
    fn emit_combo(&self, asm: &mut Asm, combo: PathCombo, rotation: usize) {
        // Rotate the producer/consumer registers so the HDCU's 5-bit
        // index comparators see every bit in both polarities.
        let p = P_SET[rotation % P_SET.len()];
        let c = C_SET[(rotation / P_SET.len() + rotation) % C_SET.len()];
        asm.align(8);
        // Producer packet.
        if combo.producer_slot == 0 {
            asm.add(p, V, Reg::R0);
            asm.nop();
        } else {
            asm.nop();
            asm.add(p, V, Reg::R0);
        }
        // Filler packets for distance 2.
        for _ in 1..combo.distance {
            asm.addi(F, Reg::R0, 1);
            asm.nop();
        }
        // Consumer packet.
        let consumer = |asm: &mut Asm| {
            if combo.operand == 0 {
                asm.add(c, p, Reg::R0);
            } else {
                asm.add(c, Reg::R0, p);
            }
        };
        if combo.consumer_slot == 0 {
            consumer(asm);
            asm.nop();
        } else {
            asm.nop();
            consumer(asm);
        }
        emit_accumulate(asm, c);
    }

    /// 64-bit variant of a combo (core C): `add64` producer/consumer on
    /// register pairs, observed through the 32-bit signature.
    fn emit_combo64(&self, asm: &mut Asm, combo: PathCombo) {
        asm.align(8);
        if combo.producer_slot == 0 {
            asm.alu64(AluOp::Add, P64, V64, V64);
            asm.nop();
        } else {
            asm.nop();
            asm.alu64(AluOp::Add, P64, V64, V64);
        }
        for _ in 1..combo.distance {
            asm.addi(F, Reg::R0, 1);
            asm.nop();
        }
        let consumer = |asm: &mut Asm| {
            if combo.operand == 0 {
                asm.alu64(AluOp::Xor, C64, P64, V64);
            } else {
                asm.alu64(AluOp::Xor, C64, V64, P64);
            }
        };
        if combo.consumer_slot == 0 {
            consumer(asm);
            asm.nop();
        } else {
            asm.nop();
            consumer(asm);
        }
        emit_accumulate(asm, C64);
        // The [19] algorithm observes results through the 32-bit MISR:
        // the high half is only reachable for three of the four consumer
        // muxes (the fourth's upper word feeds the next excitation
        // directly), so part of core C's upper datapath stays masked by
        // the 32-bit signature — the paper's core-C coverage dip.
        if combo.consumer_slot * 2 + combo.operand != 3 {
            emit_accumulate(asm, Reg::R13);
        }
    }

    /// Intra-packet (interpipeline) dependency: split-issue path.
    fn emit_intra_packet(&self, asm: &mut Asm, operand: u8) {
        asm.align(8);
        asm.add(P, V, Reg::R0); // slot 0
        if operand == 0 {
            asm.add(C, P, Reg::R0); // slot 1: RAW on slot 0 -> split
        } else {
            asm.add(C, Reg::R0, P);
        }
        emit_accumulate(asm, C);
    }

    /// Load-use sequence: exercises the stall lines and the MEM leg of
    /// the writeback mux.
    fn emit_load_use(&self, asm: &mut Asm, env: &RoutineEnv, distance: u8, slot_off: i16) {
        // Seed the scratch word (write policy honoured).
        env.emit_store(asm, V, DB, slot_off);
        asm.align(8);
        asm.lw(P, DB, slot_off);
        asm.nop();
        for _ in 1..distance {
            asm.addi(F, Reg::R0, 1);
            asm.nop();
        }
        asm.add(C, P, Reg::R0);
        asm.nop();
        emit_accumulate(asm, C);
    }

    /// CSR leg of the writeback-select mux.
    fn emit_wb_csr(&self, asm: &mut Asm) {
        asm.csrw(Csr::Scratch0, V);
        asm.align(8);
        asm.csrr(C, Csr::Scratch0);
        asm.nop();
        asm.add(F, C, Reg::R0); // forward the CSR-read result too
        asm.nop();
        emit_accumulate(asm, C);
        emit_accumulate(asm, F);
    }
}

impl SelfTestRoutine for ForwardingTest {
    fn name(&self) -> String {
        format!(
            "forwarding[{} paths x {} patterns{}{}]",
            self.combos.len(),
            self.patterns.len(),
            if self.use_pcs { ", PCs" } else { "" },
            if self.with64 { ", 64-bit" } else { "" },
        )
    }

    fn target_unit(&self) -> Option<Unit> {
        Some(Unit::Forwarding)
    }

    fn emit_body(&self, asm: &mut Asm, env: &RoutineEnv, _tag: &str) {
        if self.use_pcs {
            // Snapshot the stall counters ([19] tracks "the number of
            // pipeline stalls": hazard-inserted AND memory-induced ones —
            // the memory-induced ones are what contention perturbs).
            asm.csrr(PC0, Csr::HazStalls);
            asm.csrr(PC_IF, Csr::IfStalls);
            asm.csrr(PC_MEM, Csr::MemStalls);
        }
        asm.li(DB, env.data_base);
        for (pi, &pattern) in self.patterns.iter().enumerate() {
            asm.li(V, pattern);
            for (ci, &combo) in self.combos.iter().enumerate() {
                self.emit_combo(asm, combo, pi * 7 + ci);
            }
            // Interpipeline + stall sequences once per pattern.
            self.emit_intra_packet(asm, (pi % 2) as u8);
            self.emit_load_use(asm, env, 1, (pi as i16 % 4) * 4);
            self.emit_load_use(asm, env, 2, (pi as i16 % 4) * 4);
            self.emit_wb_csr(asm);
            if self.with64 {
                // 64-bit pattern: complementary halves.
                asm.li(V64, pattern);
                asm.li(Reg::R3, !pattern);
                for &combo in &self.combos {
                    self.emit_combo64(asm, combo);
                }
            }
        }
        if self.use_pcs {
            // Fold the stall-count deltas across this iteration.
            asm.csrr(Reg::R25, Csr::HazStalls);
            asm.sub(Reg::R25, Reg::R25, PC0);
            emit_accumulate(asm, Reg::R25);
            asm.csrr(Reg::R25, Csr::IfStalls);
            asm.sub(Reg::R25, Reg::R25, PC_IF);
            emit_accumulate(asm, Reg::R25);
            asm.csrr(Reg::R25, Csr::MemStalls);
            asm.sub(Reg::R25, Reg::R25, PC_MEM);
            emit_accumulate(asm, Reg::R25);
        }
    }

    fn split(&self, parts: usize) -> Option<Vec<Box<dyn SelfTestRoutine>>> {
        if parts < 2 || parts > self.combos.len() {
            return None;
        }
        let chunk = self.combos.len().div_ceil(parts);
        Some(
            self.combos
                .chunks(chunk)
                .map(|c| {
                    Box::new(ForwardingTest::with_parts(
                        c.to_vec(),
                        self.patterns.clone(),
                        self.use_pcs,
                        self.with64,
                    )) as Box<dyn SelfTestRoutine>
                })
                .collect(),
        )
    }
}
