//! A generic boot-time STL routine (register file / ALU march).
//!
//! Not one of the paper's two case-study routines: this is the
//! representative "rest of the STL" used to generate realistic parallel
//! test activity for the Table I stall measurements (the paper runs the
//! full library with the ICU/HDCU programs excluded).

use sbst_fault::Unit;
use sbst_isa::{AluOp, Asm, Reg};

use crate::routine::{RoutineEnv, SelfTestRoutine};
use crate::signature::emit_accumulate;

const DB: Reg = Reg::R19;

/// Generic ALU/register-file routine; `rounds` scales its length.
#[derive(Debug, Clone)]
pub struct GenericAluTest {
    /// Number of march rounds.
    pub rounds: u32,
}

impl GenericAluTest {
    /// A routine with the given number of rounds.
    pub fn new(rounds: u32) -> GenericAluTest {
        GenericAluTest { rounds }
    }
}

impl SelfTestRoutine for GenericAluTest {
    fn name(&self) -> String {
        format!("generic-alu[{} rounds]", self.rounds)
    }

    fn target_unit(&self) -> Option<Unit> {
        None
    }

    fn emit_body(&self, asm: &mut Asm, env: &RoutineEnv, tag: &str) {
        asm.li(DB, env.data_base);
        asm.addi(Reg::R18, Reg::R0, 0);
        for round in 0..self.rounds.max(1) {
            let seed = 0x9e37_79b9u32.wrapping_mul(round + 1);
            // Register-file march: write a distinct value to r1..r15,
            // read each back through an ALU op into the signature.
            for i in 1..16u32 {
                asm.li(Reg::from_index(i as usize), seed.wrapping_add(i * 0x0101_0101));
            }
            for i in 1..16u32 {
                emit_accumulate(asm, Reg::from_index(i as usize));
            }
            // ALU op chain with data dependencies.
            for (i, op) in [
                AluOp::Add,
                AluOp::Sub,
                AluOp::Xor,
                AluOp::And,
                AluOp::Or,
                AluOp::Sll,
                AluOp::Srl,
                AluOp::Mul,
            ]
            .into_iter()
            .enumerate()
            {
                let rd = Reg::from_index(1 + (i % 8));
                let rs = Reg::from_index(1 + ((i + 3) % 8));
                let rt = Reg::from_index(9 + (i % 4));
                asm.alu(op, rd, rs, rt);
                emit_accumulate(asm, rd);
            }
            // Memory burst: store the march results, reload, fold.
            for i in 0..8i16 {
                env.emit_store(asm, Reg::from_index(1 + i as usize), DB, i * 4);
            }
            for i in 0..8i16 {
                asm.lw(Reg::R16, DB, i * 4);
                emit_accumulate(asm, Reg::R16);
            }
            // A short counted loop — taken branches all resolve by the
            // end of the iteration (paper §III.2.1 compliant).
            let lbl = format!("{tag}_march_{round}");
            asm.li(Reg::R17, 4);
            asm.label(&lbl);
            asm.addi(Reg::R18, Reg::R18, 7);
            asm.subi(Reg::R17, Reg::R17, 1);
            asm.bne(Reg::R17, Reg::R0, &lbl);
            emit_accumulate(asm, Reg::R18);
        }
    }
}
