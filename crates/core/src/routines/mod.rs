//! The Software Test Library's self-test routines.

mod alu;
mod branch;
mod forwarding;
mod hdcu;
mod icu;
mod lsu;
mod regfile;

pub use alu::GenericAluTest;
pub use branch::BranchTest;
pub use forwarding::{default_patterns, ForwardingTest, PathCombo};
pub use hdcu::HdcuTest;
pub use icu::IcuTest;
pub use lsu::LsuTest;
pub use regfile::RegFileTest;
