//! The Interrupt Control Unit self-test routine (after Singh et al.
//! \[21\], adapted to synchronous *imprecise* interrupts).
//!
//! The body installs a trap handler (itself part of the cached body, so
//! the execution loop stays bus-free), then triggers the interrupt
//! sources in a sequence of phases:
//!
//! 1. arithmetic overflow alone (`addv`);
//! 2. unaligned access alone (`lw` from an odd address);
//! 3. overflow + multiply-overflow raised *in the same issue packet*
//!    (priority/pairing pattern of \[21\]);
//! 4. unaligned + illegal raised in the same packet.
//!
//! The handler folds the cause register, the imprecision depth and the
//! *position-independent* EPC offset into the signature. Phases 3 and 4
//! are where the paper's core A/B masking appears: those cores map both
//! causes of a pair onto one shared cause-register bit, so single faults
//! on the individual cause paths are invisible exactly when the paired
//! source drives the same bit.

use sbst_fault::Unit;
use sbst_isa::{AluOp, Asm, Csr, Reg};

use crate::routine::{emit_pc_anchor, RoutineEnv, SelfTestRoutine};
use crate::signature::emit_accumulate;

const ANCHOR: Reg = Reg::R25; // handler base = position anchor
const TMP: Reg = Reg::R24;
const TRAPS: Reg = Reg::R14; // trap counter
const OPA: Reg = Reg::R2;
const OPB: Reg = Reg::R3;
const DST: Reg = Reg::R4;
const DB: Reg = Reg::R8;

/// The ICU routine.
#[derive(Debug, Clone)]
pub struct IcuTest {
    /// Runtime repetitions of the phase sequence (a counted loop whose
    /// branch is taken until the final round — compliant with paper
    /// §III.2.1). More rounds mean more execution time per byte of code,
    /// the regime where the TCM-based strategy's one-pass execution pays
    /// off (Table IV).
    pub rounds: u32,
}

impl IcuTest {
    /// The default routine (8 rounds).
    pub fn new() -> IcuTest {
        IcuTest { rounds: 8 }
    }

    /// A routine with a custom round count.
    pub fn with_rounds(rounds: u32) -> IcuTest {
        IcuTest { rounds: rounds.max(1) }
    }

    /// Post-trigger shadow code: enough straight-line slack for the
    /// imprecise recognition window to elapse before the next phase, with
    /// a per-phase issue-rate profile so each trap is recognised at a
    /// *different* imprecision depth (exercising distinct bits of the
    /// ICU's depth counter — only reachable when the stream keeps
    /// flowing, i.e. with warm caches).
    fn emit_pad(asm: &mut Asm, profile: u8) {
        match profile {
            // Dual-issue nops: maximum depth.
            0 => {
                for _ in 0..28 {
                    asm.nop();
                }
            }
            // Dependent chain: every packet splits -> about half depth.
            1 => {
                for _ in 0..14 {
                    asm.addi(Reg::R16, Reg::R16, 1);
                    asm.add(Reg::R17, Reg::R16, Reg::R17);
                }
                for _ in 0..8 {
                    asm.nop();
                }
            }
            // Load-use pairs: stall-limited issue -> low depth.
            2 => {
                for _ in 0..5 {
                    asm.lw(Reg::R16, DB, 0);
                    asm.add(Reg::R17, Reg::R16, Reg::R17);
                }
                for _ in 0..18 {
                    asm.nop();
                }
            }
            // Independent pairs: near-maximum depth, different values.
            _ => {
                for _ in 0..14 {
                    asm.addi(Reg::R16, Reg::R0, 3);
                    asm.addi(Reg::R17, Reg::R0, 5);
                }
                for _ in 0..6 {
                    asm.nop();
                }
            }
        }
    }
}

impl Default for IcuTest {
    fn default() -> IcuTest {
        IcuTest::new()
    }
}

impl SelfTestRoutine for IcuTest {
    fn name(&self) -> String {
        format!("icu[{} rounds]", self.rounds)
    }

    fn target_unit(&self) -> Option<Unit> {
        Some(Unit::Icu)
    }

    fn emit_body(&self, asm: &mut Asm, env: &RoutineEnv, tag: &str) {
        let handler_end = format!("{tag}_hend");
        // The jal both skips the handler and captures its address.
        emit_pc_anchor(asm, ANCHOR, &format!("{tag}_skip"));
        // -- jump over the handler (the anchor jal lands right here) --
        asm.j(&handler_end);
        // ---- trap handler -------------------------------------------
        // (entered at ANCHOR + 4)
        asm.csrr(TMP, Csr::IcuCause);
        emit_accumulate(asm, TMP);
        asm.csrr(TMP, Csr::IcuDepth);
        emit_accumulate(asm, TMP);
        asm.csrr(TMP, Csr::Epc);
        asm.sub(TMP, TMP, ANCHOR); // position-independent EPC offset
        emit_accumulate(asm, TMP);
        asm.li(TMP, 0xf);
        asm.csrw(Csr::IcuPending, TMP);
        asm.addi(TRAPS, TRAPS, 1);
        asm.mret();
        asm.label(&handler_end);
        // ---- install ------------------------------------------------
        asm.addi(TMP, ANCHOR, 4); // handler entry
        asm.csrw(Csr::TrapVec, TMP);
        asm.addi(TRAPS, Reg::R0, 0);
        asm.li(DB, env.data_base);
        let rounds_label = format!("{tag}_rounds");
        asm.li(Reg::R15, self.rounds.max(1));
        asm.label(&rounds_label);
        {
            // Phase 1: overflow alone.
            asm.li(OPA, 0x7fff_ffff);
            asm.li(OPB, 1);
            asm.addv(DST, OPA, OPB);
            IcuTest::emit_pad(asm, 0);
            emit_accumulate(asm, DST); // wrapped result is architectural
            // Phase 2: unaligned load alone.
            asm.align(8);
            asm.lw(DST, DB, 2); // odd offset -> unaligned
            asm.nop();
            IcuTest::emit_pad(asm, 1);
            // Phase 3: overflow + mul-overflow in one packet. The
            // load-throttled pad that follows reads `[DB]`: prime that
            // line *before* the trigger so the issue-rate profile inside
            // the recognition window does not depend on whether the data
            // cache is already warm (it is under the cache wrapper's
            // loading loop, it is not on a TCM single pass).
            asm.lw(Reg::R16, DB, 0);
            asm.nops(2);
            asm.li(OPA, 0x7fff_ffff);
            asm.li(OPB, 2);
            asm.align(8);
            asm.addv(DST, OPA, OPB); // slot 0: overflow
            asm.mulv(Reg::R5, OPA, OPB); // slot 1: mul overflow
            IcuTest::emit_pad(asm, 2);
            // Phase 4: unaligned + illegal in one packet.
            asm.align(8);
            asm.lw(DST, DB, 2); // slot 0: unaligned
            asm.emit(sbst_isa::Instr::Alu64 {
                // slot 1: odd register pair -> illegal on every core
                op: AluOp::Add,
                rd: Reg::R3,
                rs1: Reg::R3,
                rs2: Reg::R3,
            });
            IcuTest::emit_pad(asm, 3);
        }
        asm.subi(Reg::R15, Reg::R15, 1);
        asm.bne(Reg::R15, Reg::R0, &rounds_label);
        // Mask-toggle phase (once, after the rounds): disable the
        // overflow cause, trigger it, verify NO trap arrives inside the
        // window (the trap count is folded), then re-enable and observe
        // the deferred trap. Exercises the mask bits in both directions.
        asm.li(TMP, 0b1110);
        asm.csrw(Csr::IcuMask, TMP);
        asm.li(OPA, 0x7fff_ffff);
        asm.li(OPB, 1);
        asm.addv(DST, OPA, OPB);
        IcuTest::emit_pad(asm, 0);
        emit_accumulate(asm, TRAPS); // unchanged if the mask works
        asm.li(TMP, 0xf);
        asm.csrw(Csr::IcuMask, TMP); // re-enable; pending cause now traps
        asm.addi(TMP, Reg::R0, 0); // any instruction restarts nothing: the
        asm.addv(DST, OPA, OPB); // re-trigger with the mask open
        IcuTest::emit_pad(asm, 0);
        emit_accumulate(asm, TRAPS);
        // The number of traps taken is itself an observation.
        emit_accumulate(asm, TRAPS);
        // Disarm the handler so a later routine can install its own.
        asm.csrw(Csr::TrapVec, Reg::R0);
    }
}
