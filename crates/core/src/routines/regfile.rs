//! Register-file march routine.
//!
//! Classic SBST content (the paper's STL contains many such routines
//! besides the two case studies): a March-like element sequence over the
//! 31 writable registers with walking-one/walking-zero and checkerboard
//! patterns, every readback folded into the signature.

use sbst_fault::Unit;
use sbst_isa::{Asm, Reg};

use crate::routine::{RoutineEnv, SelfTestRoutine};
use crate::signature::emit_accumulate;

/// The register-file march routine.
///
/// Uses `r1..=r18` plus `r24..=r28` (the body-owned set): the wrapper
/// and signature registers are never touched, so the routine composes
/// into STL sequences like any other.
#[derive(Debug, Clone, Default)]
pub struct RegFileTest {
    /// Include the checkerboard element (doubles the length).
    pub checkerboard: bool,
}

impl RegFileTest {
    /// Full march (walking patterns + checkerboard).
    pub fn new() -> RegFileTest {
        RegFileTest { checkerboard: true }
    }

    /// The registers this routine marches over.
    fn regs() -> impl Iterator<Item = Reg> {
        // Body-owned registers only (see `SelfTestRoutine` conventions).
        (1..=18usize).chain(24..=28).map(Reg::from_index)
    }
}

impl SelfTestRoutine for RegFileTest {
    fn name(&self) -> String {
        format!("regfile[{}]", if self.checkerboard { "march+cb" } else { "march" })
    }

    fn target_unit(&self) -> Option<Unit> {
        None
    }

    fn emit_body(&self, asm: &mut Asm, _env: &RoutineEnv, _tag: &str) {
        // Element 1: ascending write of distinct walking-one values.
        for (i, r) in RegFileTest::regs().enumerate() {
            asm.li(r, 1u32 << (i % 32));
        }
        // Element 2: ascending read (fold), then write complement.
        for (i, r) in RegFileTest::regs().enumerate() {
            emit_accumulate(asm, r);
            asm.li(r, !(1u32 << (i % 32)));
        }
        // Element 3: descending read (fold), write address-in-register.
        let regs: Vec<Reg> = RegFileTest::regs().collect();
        for (i, &r) in regs.iter().enumerate().rev() {
            emit_accumulate(asm, r);
            asm.li(r, 0x0101_0101u32.wrapping_mul(i as u32 + 1));
        }
        // Element 4: descending read.
        for &r in regs.iter().rev() {
            emit_accumulate(asm, r);
        }
        if self.checkerboard {
            for (i, &r) in regs.iter().enumerate() {
                asm.li(r, if i % 2 == 0 { 0xaaaa_aaaa } else { 0x5555_5555 });
            }
            for &r in &regs {
                emit_accumulate(asm, r);
            }
        }
    }
}
