//! Branch-unit routine.
//!
//! Exercises every branch condition in both directions with boundary
//! operands. The taken/not-taken outcome of each branch is a fixed
//! function of constant data, so the execution flow is identical in the
//! loading and execution loops (paper §III.2.1 compliant), yet every
//! comparator outcome leaves a distinct mark in the signature.

use sbst_fault::Unit;
use sbst_isa::{Asm, Cond, Reg};

use crate::routine::{RoutineEnv, SelfTestRoutine};
use crate::signature::emit_accumulate;

const A: Reg = Reg::R1;
const B: Reg = Reg::R2;
const MARK: Reg = Reg::R3;

/// The branch-unit routine.
#[derive(Debug, Clone, Default)]
pub struct BranchTest;

impl BranchTest {
    /// Creates the routine.
    pub fn new() -> BranchTest {
        BranchTest
    }

    /// Operand pairs hitting the comparison boundaries.
    fn operand_pairs() -> [(u32, u32); 7] {
        [
            (0, 0),
            (1, 0),
            (0, 1),
            (u32::MAX, 0),          // -1 vs 0 (signed order flip)
            (0x7fff_ffff, 0x8000_0000), // MAX vs MIN
            (0x8000_0000, 0x8000_0000),
            (5, u32::MAX),          // 5 vs -1
        ]
    }
}

impl SelfTestRoutine for BranchTest {
    fn name(&self) -> String {
        "branch[all conds x boundaries]".to_string()
    }

    fn target_unit(&self) -> Option<Unit> {
        None
    }

    fn emit_body(&self, asm: &mut Asm, _env: &RoutineEnv, tag: &str) {
        for (pi, (a, b)) in BranchTest::operand_pairs().into_iter().enumerate() {
            asm.li(A, a);
            asm.li(B, b);
            for cond in Cond::ALL {
                let label = format!("{tag}_b{pi}_{}", cond.mnemonic());
                // MARK records the direction the branch took.
                asm.li(MARK, 0x0600_0000 | (pi as u32) << 8 | cond as u32);
                asm.branch(cond, A, B, &label);
                asm.xori(MARK, MARK, 0x00ff); // only on fall-through
                asm.label(&label);
                emit_accumulate(asm, MARK);
            }
            // Backward-taken branch: a 2-iteration countdown.
            let back = format!("{tag}_back{pi}");
            asm.li(Reg::R4, 2);
            asm.label(&back);
            asm.addi(Reg::R5, Reg::R5, 1);
            asm.subi(Reg::R4, Reg::R4, 1);
            asm.bne(Reg::R4, Reg::R0, &back);
            emit_accumulate(asm, Reg::R5);
        }
        // Jump-and-link excitation: two consecutive links whose
        // *difference* is folded, keeping the signature independent of
        // where the scenario placed the code.
        let l1 = format!("{tag}_jal_l1");
        let l2 = format!("{tag}_jal_l2");
        asm.jal(Reg::R27, &l1);
        asm.label(&l1);
        asm.jal(Reg::R28, &l2);
        asm.label(&l2);
        asm.sub(Reg::R28, Reg::R28, Reg::R27);
        emit_accumulate(asm, Reg::R28);
    }
}
