//! The Hazard Detection Control Unit self-test routine: the complete
//! algorithm of \[19\] — forwarding excitation *plus* the
//! performance-counter observation — extended with dedicated
//! stall-pattern sequences (load-use chains, intra-packet splits, and
//! the 32/64-bit overlap interlock on core C).
//!
//! Wrongly inserted stalls change no architectural value, so only the
//! folded stall-counter delta can expose them — the paper's motivation
//! for Performance Counters in the signature, and the reason this
//! routine's signature is *unstable* in an uncached multi-core run.

use sbst_cpu::CoreKind;
use sbst_fault::Unit;
use sbst_isa::{AluOp, Asm, Csr, Reg};

use crate::routine::{RoutineEnv, SelfTestRoutine};
use crate::routines::forwarding::ForwardingTest;
use crate::signature::emit_accumulate;

const V: Reg = Reg::R1;
const P: Reg = Reg::R5;
const C: Reg = Reg::R6;
const DB: Reg = Reg::R8;
const PC0: Reg = Reg::R26;

/// The HDCU routine.
#[derive(Debug, Clone)]
pub struct HdcuTest {
    kind: CoreKind,
    inner: ForwardingTest,
    /// Comparator-walk variants: (consumer slot, operand, producer slot,
    /// producer distance).
    walk: Vec<(u8, u8, u8, u8)>,
}

impl HdcuTest {
    /// The standard HDCU routine for a core kind: the full \[19\]
    /// forwarding excitation with performance counters, a comparator-bit
    /// walk over the EX/MEM-stage comparator instances of both producer
    /// pipes, and the stall suite. Fits the 8 KiB instruction cache
    /// unsplit on cores A and B (like the paper's routine); on core C
    /// the 64-bit sections push it over and it splits (paper §III.2.2).
    pub fn new(kind: CoreKind) -> HdcuTest {
        let mut walk = Vec::new();
        for slot in [0u8, 1] {
            for operand in [0u8, 1] {
                for producer_slot in [0u8, 1] {
                    walk.push((slot, operand, producer_slot, 1));
                }
            }
        }
        HdcuTest { kind, inner: ForwardingTest::with_pcs(kind), walk }
    }

    /// The exhaustive variant: full 4-pattern forwarding excitation plus
    /// the walk over *every* comparator instance (EX/MEM and MEM/WB,
    /// both producer pipes). Exceeds the instruction cache and relies on
    /// routine splitting (paper §III.2.2).
    pub fn exhaustive(kind: CoreKind) -> HdcuTest {
        let mut walk = Vec::new();
        for slot in [0u8, 1] {
            for operand in [0u8, 1] {
                for producer_slot in [0u8, 1] {
                    for distance in [1u8, 2] {
                        walk.push((slot, operand, producer_slot, distance));
                    }
                }
            }
        }
        HdcuTest { kind, inner: ForwardingTest::with_pcs(kind), walk }
    }

    /// Comparator-bit walk: for every bit of the 5-bit register-index
    /// comparators, a producer/consumer pair whose indices differ in
    /// exactly that bit (mismatch case: the XNOR's stuck-at-1 forges a
    /// forward) and an exact-match pair (stuck-at-0 kills the forward).
    /// Repeated across consumer slots/operands and producer distances so
    /// each physical comparator instance is exercised.
    fn emit_cmp_walk(&self, asm: &mut Asm) {
        // Register pairs differing in exactly bit 0..4 (body-owned set).
        const PAIRS: [(Reg, Reg); 5] = [
            (Reg::R18, Reg::R19), // bit 0
            (Reg::R4, Reg::R6),   // bit 1
            (Reg::R2, Reg::R6),   // bit 2
            (Reg::R6, Reg::R14),  // bit 3
            (Reg::R2, Reg::R18),  // bit 4
        ];
        for &(slot, operand, producer_slot, distance) in &self.walk {
            for (bit, (ra, rb)) in PAIRS.into_iter().enumerate() {
                // Known distinct register-file contents.
                asm.li(ra, 0x1000 + bit as u32);
                asm.li(rb, 0x2000 + bit as u32);
                asm.li(V, 0x0bad_0000 | (slot as u32) << 8 | bit as u32);
                let produce = |asm: &mut Asm| {
                    if producer_slot == 0 {
                        asm.add(ra, V, Reg::R0);
                        asm.nop();
                    } else {
                        asm.nop();
                        asm.add(ra, V, Reg::R0);
                    }
                };
                let consume = |asm: &mut Asm, src: Reg| {
                    if operand == 0 {
                        asm.add(Reg::R15, src, Reg::R0);
                    } else {
                        asm.add(Reg::R15, Reg::R0, src);
                    }
                };
                // Mismatch case: consumer reads `rb`, producer wrote `ra`
                // (indices differ in exactly this bit): no forward.
                asm.align(8);
                produce(asm);
                for _ in 1..distance {
                    asm.addi(Reg::R7, Reg::R0, 1);
                    asm.nop();
                }
                if slot == 0 {
                    consume(asm, rb);
                    asm.nop();
                } else {
                    asm.nop();
                    consume(asm, rb);
                }
                emit_accumulate(asm, Reg::R15);
                // Match case: consumer reads `ra` right behind its
                // producer: must forward (the old RF value differs).
                asm.align(8);
                produce(asm);
                for _ in 1..distance {
                    asm.addi(Reg::R7, Reg::R0, 1);
                    asm.nop();
                }
                if slot == 0 {
                    consume(asm, ra);
                    asm.nop();
                } else {
                    asm.nop();
                    consume(asm, ra);
                }
                emit_accumulate(asm, Reg::R15);
            }
        }
    }

    /// Dedicated stall sequences with a known, deterministic stall count.
    fn emit_stall_suite(&self, asm: &mut Asm, env: &RoutineEnv) {
        asm.csrr(PC0, Csr::HazStalls);
        asm.li(DB, env.data_base);
        asm.li(V, 0x0f0f_0ff0);
        // Load-use chain: each pair costs exactly one HDCU stall.
        env.emit_store(asm, V, DB, 0);
        for _ in 0..4 {
            asm.align(8);
            asm.lw(P, DB, 0);
            asm.nop();
            asm.add(C, P, Reg::R0); // load-use -> 1 stall
            asm.nop();
            emit_accumulate(asm, C);
        }
        // Intra-packet RAW splits: each costs exactly one split stall.
        for _ in 0..4 {
            asm.align(8);
            asm.add(P, V, Reg::R0);
            asm.add(C, P, V); // same packet -> split
            emit_accumulate(asm, C);
        }
        // Back-to-back *independent* packets: must cost zero stalls; a
        // stuck-at that forges a dependency inserts one here.
        for _ in 0..4 {
            asm.align(8);
            asm.add(P, V, Reg::R0);
            asm.addi(C, V, 3);
            asm.add(Reg::R7, V, V);
            asm.addi(Reg::R9, V, 5);
            emit_accumulate(asm, Reg::R7);
        }
        if self.kind.has_alu64() {
            // Overlap interlock: 64-bit producer, 32-bit consumer of the
            // high half -> deterministic interlock stalls.
            asm.li(Reg::R2, 0x1234_5678);
            asm.li(Reg::R3, 0x0000_0001);
            for _ in 0..2 {
                asm.align(8);
                asm.alu64(AluOp::Add, Reg::R10, Reg::R2, Reg::R2);
                asm.nop();
                asm.addi(C, Reg::R11, 0); // reads the high half as 32-bit
                asm.nop();
                emit_accumulate(asm, C);
            }
        }
        // Fold the suite's stall-count delta.
        asm.csrr(Reg::R27, Csr::HazStalls);
        asm.sub(Reg::R27, Reg::R27, PC0);
        emit_accumulate(asm, Reg::R27);
    }
}

impl SelfTestRoutine for HdcuTest {
    fn name(&self) -> String {
        "hdcu[full, PCs]".to_string()
    }

    fn target_unit(&self) -> Option<Unit> {
        Some(Unit::Hdcu)
    }

    fn emit_body(&self, asm: &mut Asm, env: &RoutineEnv, tag: &str) {
        self.inner.emit_body(asm, env, tag);
        self.emit_cmp_walk(asm);
        self.emit_stall_suite(asm, env);
    }

    fn split(&self, parts: usize) -> Option<Vec<Box<dyn SelfTestRoutine>>> {
        if parts < 2 || self.walk.len() < parts {
            return None;
        }
        // Partition the walk variants; part 0 keeps the inner forwarding
        // excitation + stall suite, the others get an empty inner.
        let chunk = self.walk.len().div_ceil(parts);
        Some(
            self.walk
                .chunks(chunk)
                .enumerate()
                .map(|(i, w)| {
                    let inner = if i == 0 {
                        self.inner.clone()
                    } else {
                        ForwardingTest::with_parts(Vec::new(), Vec::new(), true, false)
                    };
                    Box::new(HdcuTest { kind: self.kind, inner, walk: w.to_vec() })
                        as Box<dyn SelfTestRoutine>
                })
                .collect(),
        )
    }
}
