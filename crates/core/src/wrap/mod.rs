//! Deterministic execution wrappers around single-core routines.

pub(crate) mod cache;
mod tcm;

pub use cache::{plan_cached, wrap_cached, wrap_sequence, WrapConfig, WrapError};
pub use tcm::{wrap_tcm, TcmWrapped};

/// How a wrapped routine ends.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Terminator {
    /// `halt` — standalone test programs.
    #[default]
    Halt,
    /// `ret` (`jalr r0, 0(r31)`) — routine called by a scheduler.
    Ret,
    /// Nothing — the next routine of an STL sequence follows inline.
    Fallthrough,
}
