//! The competing strategy: TCM (scratchpad) based execution.
//!
//! The test body is assembled for the instruction TCM and embedded in
//! Flash as data; a copier loop moves it into the TCM at boot and jumps
//! there. The body then runs with single-cycle fetches — as deterministic
//! as the cache-based wrapper, but the TCM bytes stay *permanently
//! reserved* for test purposes, which is the memory-overhead drawback
//! Table IV quantifies.

use sbst_isa::{Asm, Program, Reg};
use sbst_mem::ITCM_BASE;

use crate::routine::{
    RoutineEnv, SelfTestRoutine, RESULT_SIG_OFF, RESULT_STATUS_OFF, STATUS_DONE, STATUS_FAIL,
    STATUS_PASS,
};
use crate::signature::{emit_init, SIG_REG};
use crate::wrap::cache::{WrapConfig, WrapError};

const RESULT_REG: Reg = Reg::R22;
const TMP_REG: Reg = Reg::R23;
const COPY_SRC: Reg = Reg::R24;
const COPY_DST: Reg = Reg::R25;
const COPY_CNT: Reg = Reg::R26;
const COPY_TMP: Reg = Reg::R27;

/// A TCM-wrapped routine.
#[derive(Debug, Clone)]
pub struct TcmWrapped {
    /// The Flash-resident program (copier + embedded body image).
    pub program: Program,
    /// Bytes of instruction TCM permanently reserved for the test —
    /// the paper's "overall memory overhead" column of Table IV.
    pub tcm_overhead_bytes: usize,
}

/// Emits the TCM-based version of `routine`, based at `flash_base`.
///
/// Unlike [`wrap_cached`](crate::wrap_cached) the result is a fixed
/// [`Program`]: the copier embeds the absolute Flash address of the body
/// image.
///
/// # Errors
///
/// Returns [`WrapError::TooLarge`] if the body does not fit the TCM, or
/// a propagated assembly error.
pub fn wrap_tcm(
    routine: &dyn SelfTestRoutine,
    env: &RoutineEnv,
    cfg: &WrapConfig,
    tag: &str,
    flash_base: u32,
) -> Result<TcmWrapped, WrapError> {
    // The body image, assembled for TCM execution: a single pass (the
    // explicit copy replaces the loading loop), then publish + check.
    let mut body = Asm::new();
    body.li(RESULT_REG, env.result_addr);
    emit_init(&mut body);
    routine.emit_body(&mut body, env, tag);
    body.sw(SIG_REG, RESULT_REG, RESULT_SIG_OFF);
    match cfg.expected_sig {
        Some(expected) => {
            let fail = format!("{tag}_tfail");
            let done = format!("{tag}_tdone");
            body.li(TMP_REG, expected);
            body.bne(SIG_REG, TMP_REG, &fail);
            body.li(TMP_REG, STATUS_PASS);
            body.sw(TMP_REG, RESULT_REG, RESULT_STATUS_OFF);
            body.j(&done);
            body.label(&fail);
            body.li(TMP_REG, STATUS_FAIL);
            body.sw(TMP_REG, RESULT_REG, RESULT_STATUS_OFF);
            body.label(&done);
        }
        None => {
            body.li(TMP_REG, STATUS_DONE);
            body.sw(TMP_REG, RESULT_REG, RESULT_STATUS_OFF);
        }
    }
    body.halt();
    let image = body.assemble(ITCM_BASE)?;
    if image.len_bytes() > sbst_mem::TCM_SIZE as usize {
        return Err(WrapError::TooLarge {
            image_bytes: image.len_bytes(),
            capacity: sbst_mem::TCM_SIZE,
        });
    }

    // The Flash-resident copier. Built twice: the first pass only
    // measures the copier's (constant — every constant uses the fixed
    // 2-instruction `li32`) length so the embedded image address is
    // exact in the second pass.
    // Round the copy length up to the 4x-unrolled copier's stride.
    let nwords = (image.words().len() as u32).div_ceil(4) * 4;
    let build_copier = |image_addr: u32| {
        let mut copier = Asm::new();
        copier.li32(COPY_SRC, image_addr);
        copier.li32(COPY_DST, ITCM_BASE);
        copier.li32(COPY_CNT, nwords / 4);
        copier.label("copy");
        for i in 0..4i16 {
            copier.lw(COPY_TMP, COPY_SRC, 4 * i);
            copier.sw(COPY_TMP, COPY_DST, 4 * i);
        }
        copier.addi(COPY_SRC, COPY_SRC, 16);
        copier.addi(COPY_DST, COPY_DST, 16);
        copier.subi(COPY_CNT, COPY_CNT, 1);
        copier.bne(COPY_CNT, Reg::R0, "copy");
        copier.li32(COPY_TMP, ITCM_BASE);
        copier.jalr(Reg::R0, COPY_TMP, 0);
        copier
    };
    let copier_len = build_copier(0).len() as u32;
    let image_addr = flash_base + copier_len * 4;
    let mut copier = build_copier(image_addr);
    // Embed the image as data (padded to the copier's 4-word stride).
    for &w in image.words() {
        copier.word(w);
    }
    for _ in image.words().len() as u32..nwords {
        copier.word(0);
    }
    let program = copier.assemble(flash_base)?;
    debug_assert_eq!(program.word_at(image_addr), Some(image.words()[0]));
    Ok(TcmWrapped { program, tcm_overhead_bytes: image.len_bytes() })
}
