//! The paper's contribution: the cache-based deterministic wrapper.
//!
//! Figure 2b structure around an unmodified single-core body:
//!
//! ```text
//! (a) setup: loop counter, result pointer
//! (b) invalidate I$ and D$
//! ┌─ loop (2 iterations)
//! │  (c/d) the routine body — iteration 1 is the LOADING loop (warms
//! │        the caches; its signature is discarded), iteration 2 is the
//! │        EXECUTION loop (runs entirely from cache, decoupled from
//! │        the bus: its signature is the reported one)
//! └─ (e) decrement / branch back (taken exactly once → every branch
//!        path is exercised by the end, paper §III.2.1)
//! store signature; optional self-check against the expected value
//! ```

use sbst_isa::{Asm, AsmError, Reg};

use crate::routine::{
    RoutineEnv, SelfTestRoutine, RESULT_SIG_OFF, RESULT_STATUS_OFF, STATUS_DONE, STATUS_FAIL,
    STATUS_PASS,
};
use crate::signature::{emit_init, SIG_REG};
use crate::wrap::Terminator;

/// Wrapper registers (reserved; bodies must not touch them).
const LOOP_REG: Reg = Reg::R21;
const RESULT_REG: Reg = Reg::R22;
const TMP_REG: Reg = Reg::R23;

/// Configuration of the cache-based wrapper.
#[derive(Debug, Clone, Copy)]
pub struct WrapConfig {
    /// Loop iterations (paper: 2 — loading + execution). Values other
    /// than 2 exist for the ablation benches.
    pub iterations: u32,
    /// Whether to invalidate both caches first (paper §III.3; ablations
    /// disable it).
    pub invalidate: bool,
    /// Instruction-cache capacity the wrapped image must fit in
    /// (paper §III.2.2).
    pub icache_capacity: u32,
    /// Expected (golden) signature for the embedded self-check; `None`
    /// stores the signature without checking (golden-learning runs).
    pub expected_sig: Option<u32>,
    /// How the program ends.
    pub terminator: Terminator,
}

impl Default for WrapConfig {
    fn default() -> WrapConfig {
        WrapConfig {
            iterations: 2,
            invalidate: true,
            icache_capacity: 8 * 1024,
            expected_sig: None,
            terminator: Terminator::Halt,
        }
    }
}

/// Errors from the wrappers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WrapError {
    /// The wrapped image exceeds the instruction cache and the routine
    /// does not support splitting.
    TooLarge {
        /// Wrapped image size in bytes.
        image_bytes: usize,
        /// Configured cache capacity.
        capacity: u32,
    },
    /// Label resolution failed while assembling a size probe.
    Asm(AsmError),
}

impl std::fmt::Display for WrapError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WrapError::TooLarge { image_bytes, capacity } => write!(
                f,
                "wrapped image ({image_bytes} B) exceeds the {capacity} B instruction cache \
                 and the routine cannot be split"
            ),
            WrapError::Asm(e) => write!(f, "assembly failed: {e}"),
        }
    }
}

impl std::error::Error for WrapError {}

impl From<AsmError> for WrapError {
    fn from(e: AsmError) -> WrapError {
        WrapError::Asm(e)
    }
}

/// Emits the cache-wrapped version of `routine` (Figure 2b).
///
/// `tag` must be unique within the final program (label prefix).
///
/// # Errors
///
/// Returns [`WrapError::TooLarge`] when the wrapped image does not fit
/// the configured instruction-cache capacity — use [`plan_cached`] to
/// let the routine split itself instead.
pub fn wrap_cached(
    routine: &dyn SelfTestRoutine,
    env: &RoutineEnv,
    cfg: &WrapConfig,
    tag: &str,
) -> Result<Asm, WrapError> {
    let mut asm = Asm::new();
    emit_into(&mut asm, routine, env, cfg, tag);
    // Size check against the I$ (only the looped section must be
    // resident, but checking the whole image is conservative and simple).
    let probe = asm.assemble(0)?;
    if probe.len_bytes() > cfg.icache_capacity as usize {
        return Err(WrapError::TooLarge {
            image_bytes: probe.len_bytes(),
            capacity: cfg.icache_capacity,
        });
    }
    Ok(asm)
}

/// Emits the wrapper into an existing program (STL sequences).
pub(crate) fn emit_into(
    asm: &mut Asm,
    routine: &dyn SelfTestRoutine,
    env: &RoutineEnv,
    cfg: &WrapConfig,
    tag: &str,
) {
    // (a) setup.
    asm.li(RESULT_REG, env.result_addr);
    asm.li(LOOP_REG, cfg.iterations.max(1));
    // (b) cache invalidation.
    if cfg.invalidate {
        asm.icinv();
        asm.dcinv();
    }
    // Internal 16-byte alignment: the body's packet pairing (and thus
    // the deterministic signature) is independent of the scenario's
    // base-alignment axis.
    asm.align(16);
    let top = format!("{tag}_loop");
    asm.label(&top);
    // The signature restarts every iteration: the loading loop's
    // (bus-disturbed) accumulation is discarded; only the execution
    // loop's value survives the final iteration.
    emit_init(asm);
    // (c)/(d) the unmodified single-core body.
    routine.emit_body(asm, env, tag);
    // (e) loop control — taken once, then falls through.
    asm.subi(LOOP_REG, LOOP_REG, 1);
    asm.bne(LOOP_REG, Reg::R0, &top);
    // Publish the signature.
    asm.sw(SIG_REG, RESULT_REG, RESULT_SIG_OFF);
    match cfg.expected_sig {
        Some(expected) => {
            let fail = format!("{tag}_fail");
            let done = format!("{tag}_done");
            asm.li(TMP_REG, expected);
            asm.bne(SIG_REG, TMP_REG, &fail);
            asm.li(TMP_REG, STATUS_PASS);
            asm.sw(TMP_REG, RESULT_REG, RESULT_STATUS_OFF);
            asm.j(&done);
            asm.label(&fail);
            asm.li(TMP_REG, STATUS_FAIL);
            asm.sw(TMP_REG, RESULT_REG, RESULT_STATUS_OFF);
            asm.label(&done);
        }
        None => {
            asm.li(TMP_REG, STATUS_DONE);
            asm.sw(TMP_REG, RESULT_REG, RESULT_STATUS_OFF);
        }
    }
    match cfg.terminator {
        Terminator::Halt => asm.halt(),
        Terminator::Ret => asm.ret(),
        Terminator::Fallthrough => {}
    }
}

/// Emits several wrapped routines back-to-back into one program
/// (fallthrough between them, `halt` at the end) — the shape of one
/// core's share of a boot-time STL. Routine `i` publishes into
/// `env.result_addr + 16*i` and scratches at `env.data_base + 0x40*i`.
pub fn wrap_sequence(
    routines: &[&dyn SelfTestRoutine],
    env: &RoutineEnv,
    cfg: &WrapConfig,
    tag: &str,
) -> Asm {
    let mut asm = Asm::new();
    for (i, routine) in routines.iter().enumerate() {
        let env = RoutineEnv {
            result_addr: env.result_addr + 16 * i as u32,
            data_base: env.data_base + 0x40 * i as u32,
            ..*env
        };
        let cfg = WrapConfig { terminator: crate::wrap::Terminator::Fallthrough, ..*cfg };
        emit_into(&mut asm, *routine, &env, &cfg, &format!("{tag}_s{i}"));
    }
    asm.halt();
    asm
}

/// Wraps `routine`, splitting it into smaller self-test procedures when
/// the wrapped image exceeds the cache (paper §III.2.2). Each part `i`
/// publishes into `env.result_addr + 16*i`.
///
/// # Errors
///
/// Propagates [`WrapError::TooLarge`] when even the smallest supported
/// split does not fit.
pub fn plan_cached(
    routine: &dyn SelfTestRoutine,
    env: &RoutineEnv,
    cfg: &WrapConfig,
    tag: &str,
) -> Result<Vec<Asm>, WrapError> {
    match wrap_cached(routine, env, cfg, tag) {
        Ok(asm) => Ok(vec![asm]),
        Err(WrapError::TooLarge { image_bytes, capacity }) => {
            for parts in 2..=8usize {
                let Some(split) = routine.split(parts) else { break };
                let mut out = Vec::with_capacity(parts);
                let mut ok = true;
                for (i, part) in split.iter().enumerate() {
                    let part_env = RoutineEnv {
                        result_addr: env.result_addr + 16 * i as u32,
                        ..*env
                    };
                    let part_tag = format!("{tag}_p{i}");
                    match wrap_cached(part.as_ref(), &part_env, cfg, &part_tag) {
                        Ok(asm) => out.push(asm),
                        Err(WrapError::TooLarge { .. }) => {
                            ok = false;
                            break;
                        }
                        Err(e) => return Err(e),
                    }
                }
                if ok {
                    return Ok(out);
                }
            }
            Err(WrapError::TooLarge { image_bytes, capacity })
        }
        Err(e) => Err(e),
    }
}
