//! Golden-signature pinning: the wrapped (cache-based) signature of
//! every catalog routine on every core kind is pinned against the
//! checked-in fixture `tests/fixtures/golden_signatures.json`.
//!
//! These signatures are the repository's most important invariant: the
//! paper's whole determinism argument rests on the golden learned at
//! end-of-manufacturing staying bit-identical in the field, so *any*
//! change to a routine, the wrapper, the assembler, the pipeline or the
//! memory system that moves a signature must be a conscious decision,
//! not an accident. A legitimate change (e.g. a routine gains coverage)
//! shows up here as a diff of the fixture, which code review can see.
//!
//! Oversized routines (HDCU on core C) split into cache-sized parts
//! (paper §III.2.2); the fixture pins the signature of every part, in
//! order, as a JSON array.
//!
//! Regenerating the fixture after an intentional change:
//!
//! ```sh
//! GOLDEN_REGEN=1 cargo test -p sbst-stl --test golden_signatures
//! git diff crates/core/tests/fixtures/golden_signatures.json  # review!
//! ```
//!
//! The regen run rewrites the fixture and then passes; commit the new
//! fixture together with the change that moved the signatures.

use sbst_cpu::CoreKind;
use sbst_fault::FaultPlane;
use sbst_obs::{parse_json, Json};
use sbst_stl::routines::{
    BranchTest, ForwardingTest, GenericAluTest, HdcuTest, IcuTest, LsuTest, RegFileTest,
};
use sbst_stl::{plan_cached, run_standalone, RoutineEnv, SelfTestRoutine, WrapConfig};

/// Every routine the STL catalog ships, constructed for `kind` (two of
/// them specialise their code to the core's datapath).
fn catalog(kind: CoreKind) -> Vec<(&'static str, Box<dyn SelfTestRoutine>)> {
    vec![
        ("regfile", Box::new(RegFileTest::new())),
        ("forwarding", Box::new(ForwardingTest::without_pcs(kind))),
        ("branch", Box::new(BranchTest::new())),
        ("lsu", Box::new(LsuTest::new())),
        ("hdcu", Box::new(HdcuTest::new(kind))),
        ("icu", Box::new(IcuTest::new())),
        ("alu", Box::new(GenericAluTest::new(3))),
    ]
}

const ROUTINES: usize = 7;

fn kind_key(kind: CoreKind) -> &'static str {
    match kind {
        CoreKind::A => "A",
        CoreKind::B => "B",
        CoreKind::C => "C",
    }
}

fn fixture_path() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures/golden_signatures.json")
}

/// Learns the golden signature of every part of `routine` fault-free on
/// a single cached core — the end-of-manufacturing flow of the paper.
fn learn(routine: &dyn SelfTestRoutine, kind: CoreKind) -> Vec<u32> {
    let env = RoutineEnv::for_core(kind);
    let cfg = WrapConfig::default();
    let parts = plan_cached(routine, &env, &cfg, "golden")
        .unwrap_or_else(|e| panic!("{} on {kind:?} fails to wrap: {e}", routine.name()));
    parts
        .iter()
        .enumerate()
        .map(|(i, asm)| {
            let part_env = RoutineEnv { result_addr: env.result_addr + 16 * i as u32, ..env };
            let report = run_standalone(
                asm,
                &part_env,
                kind,
                true,
                0x400,
                FaultPlane::fault_free(),
                30_000_000,
            );
            assert!(
                report.outcome.is_clean(),
                "golden run of {} part {i} on {kind:?} did not halt: {:?}",
                routine.name(),
                report.outcome
            );
            assert_ne!(report.signature, 0, "{} part {i} on {kind:?}", routine.name());
            report.signature
        })
        .collect()
}

/// Learns the current signatures of every routine × core pairing.
fn learn_all() -> Vec<(&'static str, &'static str, Vec<u32>)> {
    let mut out = Vec::new();
    for kind in CoreKind::ALL {
        for (name, routine) in catalog(kind) {
            out.push((name, kind_key(kind), learn(&*routine, kind)));
        }
    }
    out
}

fn sigs_to_json(sigs: &[u32]) -> Json {
    Json::Arr(sigs.iter().map(|&s| Json::int(u64::from(s))).collect())
}

#[test]
fn every_routine_signature_matches_the_fixture() {
    let learned = learn_all();

    if std::env::var_os("GOLDEN_REGEN").is_some() {
        let mut routines: Vec<(String, Json)> = Vec::new();
        for (name, kind, sigs) in &learned {
            if !routines.iter().any(|(n, _)| n == name) {
                routines.push((name.to_string(), Json::Obj(Vec::new())));
            }
            let entry =
                routines.iter_mut().find(|(n, _)| n == name).expect("just pushed");
            entry.1.set(kind, sigs_to_json(sigs));
        }
        let doc = Json::Obj(routines);
        std::fs::write(fixture_path(), doc.render_pretty(2)).expect("write fixture");
        eprintln!("regenerated {}", fixture_path().display());
        return;
    }

    let text = std::fs::read_to_string(fixture_path()).expect(
        "fixture missing — run with GOLDEN_REGEN=1 per the test header to create it",
    );
    let doc = parse_json(&text).expect("fixture parses as JSON");

    // The fixture must cover exactly the current catalog: a routine
    // added without pinning, or pinned but since removed, both fail.
    let mut checked = 0usize;
    for (name, kind, sigs) in &learned {
        let pinned = doc
            .get(name)
            .and_then(|r| r.get(kind))
            .and_then(Json::as_arr)
            .unwrap_or_else(|| panic!("fixture lacks {name}/{kind} — see header for regen"));
        let pinned: Vec<u64> =
            pinned.iter().map(|v| v.as_f64().expect("integer signature") as u64).collect();
        let learned_u64: Vec<u64> = sigs.iter().map(|&s| u64::from(s)).collect();
        assert_eq!(
            pinned, learned_u64,
            "golden signature of {name} on core {kind} moved (fixture vs learned). \
             If this change is intentional, regenerate the fixture (see header).",
        );
        checked += 1;
    }
    let fixture_entries: usize = match &doc {
        Json::Obj(routines) => routines
            .iter()
            .map(|(_, cores)| match cores {
                Json::Obj(entries) => entries.len(),
                _ => 0,
            })
            .sum(),
        _ => 0,
    };
    assert_eq!(
        fixture_entries, checked,
        "fixture has stale entries no longer in the catalog — regenerate it"
    );
    assert_eq!(checked, ROUTINES * CoreKind::ALL.len(), "full routine x core coverage");
}

/// Learning is reproducible: a second independent learning pass yields
/// bit-identical signatures for every routine × core — the premise that
/// makes pinning them in a fixture meaningful at all.
#[test]
fn golden_learning_is_reproducible() {
    let (first, second) = (learn_all(), learn_all());
    assert_eq!(first, second, "golden learning must be deterministic");
}
