//! Boot-image tests: the deployable STL catalog end to end, including an
//! injected fault flipping exactly its routine to FAIL.

use sbst_cpu::{CoreConfig, CoreKind};
use sbst_fault::{Element, FaultPlane, FaultSite, Polarity, Unit};
use sbst_soc::SocBuilder;
use sbst_stl::routines::{ForwardingTest, GenericAluTest, IcuTest, LsuTest, RegFileTest};
use sbst_stl::{BootVerdict, StlCatalog};

fn full_catalog() -> StlCatalog {
    let mut catalog = StlCatalog::new();
    catalog.add("regfile-a", 0, Box::new(RegFileTest::new()));
    catalog.add("fwd-a", 0, Box::new(ForwardingTest::without_pcs(CoreKind::A)));
    catalog.add("alu-b", 1, Box::new(GenericAluTest::new(2)));
    catalog.add("lsu-b", 1, Box::new(LsuTest::new()));
    catalog.add("icu-c", 2, Box::new(IcuTest::with_rounds(2)));
    catalog
}

#[test]
fn parallel_boot_test_passes_clean() {
    let image = full_catalog().build().expect("builds");
    assert_eq!(image.programs().len(), 3, "three active cores");
    let report = image.run(60_000_000);
    for (name, verdict) in report.iter() {
        assert_eq!(verdict, BootVerdict::Pass, "{name}");
    }
    assert!(report.all_passed());
}

#[test]
fn injected_fault_fails_exactly_the_targeting_routine() {
    let image = full_catalog().build().expect("builds");
    // Arm a forwarding fault on core A's *operand-B* mux: branches and
    // address computations ride operand A, so the core keeps control
    // flow intact and the corruption shows up purely as wrong data.
    // `fwd-a` must FAIL; the register-file routine on the same core may
    // legitimately catch it too; cores B and C stay green.
    let site = FaultSite {
        unit: Unit::Forwarding,
        instance: sbst_cpu::operand_mux_id(0, 1),
        element: Element::MuxDataIn { src: sbst_cpu::SRC_EXMEM_P0 as u8, bit: 7 },
        polarity: Polarity::StuckAt1,
    };
    let mut builder = SocBuilder::new();
    for (_, _, p) in image.programs() {
        builder = builder.load(p);
    }
    for (i, &(core, base, _)) in image.programs().iter().enumerate() {
        builder = builder.core(CoreConfig::cached(CoreKind::ALL[core], i, base), i as u32 * 3);
    }
    let mut soc = builder.build();
    soc.core_mut(0).set_plane(FaultPlane::armed(site));
    let outcome = soc.run(60_000_000);
    let report = image.report(&soc, outcome);
    assert_eq!(report.verdict("fwd-a"), Some(BootVerdict::Fail), "alarm raised");
    assert_ne!(report.verdict("regfile-a"), Some(BootVerdict::NotRun));
    assert_eq!(report.verdict("alu-b"), Some(BootVerdict::Pass));
    assert_eq!(report.verdict("lsu-b"), Some(BootVerdict::Pass));
    assert_eq!(report.verdict("icu-c"), Some(BootVerdict::Pass));
    assert!(!report.all_passed());
}

#[test]
fn golden_db_round_trips_and_rebuilds_the_image() {
    use sbst_stl::GoldenDb;
    let catalog = full_catalog();
    let db = catalog.learn().expect("learns");
    assert_eq!(db.len(), 5);
    // Persist, reload, rebuild — the image must behave identically.
    let text = db.to_text();
    let reloaded = GoldenDb::from_text(&text).expect("parses");
    assert_eq!(db, reloaded);
    let image = catalog.build_with(&reloaded).expect("builds");
    let report = image.run(60_000_000);
    assert!(report.all_passed());
    // Tampered golden -> the affected routine fails its self-check.
    let tampered = GoldenDb::from_text(&text.replace(
        &format!("{:#010x}", db.get("alu-b").unwrap()),
        &format!("{:#010x}", db.get("alu-b").unwrap() ^ 1),
    ))
    .expect("parses");
    let image = catalog.build_with(&tampered).expect("builds");
    let report = image.run(60_000_000);
    assert_eq!(report.verdict("alu-b"), Some(BootVerdict::Fail));
    assert_eq!(report.verdict("lsu-b"), Some(BootVerdict::Pass));
}

#[test]
fn golden_db_text_format_rejects_garbage() {
    use sbst_stl::GoldenDb;
    assert!(GoldenDb::from_text("# comment\n\nname = 0xdeadbeef\n").is_ok());
    assert_eq!(GoldenDb::from_text("no-equals-here\n"), Err(1));
    assert_eq!(GoldenDb::from_text("x = banana\n"), Err(1));
}
