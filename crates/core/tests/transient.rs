//! Supervisor escalation under *transient* disturbances (satellite of
//! the chaos layer): a fault armed for only the first run(s) must end
//! in [`CoreVerdict::PassedAfterRetry`] — quarantine is reserved for
//! disturbances that outlast the whole retry budget — and the
//! [`DegradedReport`] keeps transient-recovered and quarantined cores
//! distinguishable.

use sbst_cpu::{CoreKind, HDCU_CTRL};
use sbst_fault::{Element, FaultPlane, FaultSite, Polarity, Unit};
use sbst_mem::SRAM_BASE;
use sbst_stl::routines::{GenericAluTest, RegFileTest};
use sbst_stl::sched::CoreStl;
use sbst_stl::{
    CoreVerdict, DegradedReport, QuarantineCause, RoutineEnv, Supervisor, SupervisorConfig,
};

fn env_for(core: usize) -> RoutineEnv {
    RoutineEnv {
        result_addr: SRAM_BASE + 0x2000 + 0x100 * core as u32,
        data_base: SRAM_BASE + 0x5000 + 0x400 * core as u32,
        ..RoutineEnv::for_core(CoreKind::ALL[core])
    }
}

fn stl_for(core: usize) -> CoreStl {
    CoreStl::new(
        vec![Box::new(RegFileTest::new()), Box::new(GenericAluTest::new(3))],
        env_for(core),
    )
}

/// A stuck stall line that hangs the core while armed.
fn hang_plane() -> FaultPlane {
    FaultPlane::armed(FaultSite {
        unit: Unit::Hdcu,
        instance: HDCU_CTRL,
        element: Element::StallLine { line: 4 },
        polarity: Polarity::StuckAt1,
    })
}

fn cheap_config(max_retries: usize) -> SupervisorConfig {
    SupervisorConfig {
        max_retries,
        watchdog_timeout: 150_000,
        base_budget: 2_000_000,
        ..Default::default()
    }
}

fn recovered_cores(report: &DegradedReport) -> Vec<usize> {
    report
        .iter()
        .filter(|(_, v)| matches!(v, CoreVerdict::PassedAfterRetry { .. }))
        .map(|(c, _)| c)
        .collect()
}

fn passed(v: Option<CoreVerdict>) -> bool {
    matches!(
        v,
        Some(CoreVerdict::Passed | CoreVerdict::PassedAfterRetry { .. })
    )
}

/// A transient hang (armed for exactly the first run) is healed by the
/// standalone retry: the verdict is PassedAfterRetry, never quarantine.
#[test]
fn transient_hang_recovers_as_passed_after_retry() {
    let mut sup = Supervisor::new(cheap_config(2));
    for core in 0..3 {
        sup.add_core(core, stl_for(core));
    }
    sup.set_transient_plane(1, hang_plane(), 1);
    let report = sup.run().expect("boot");
    assert_eq!(
        report.verdict(1),
        Some(CoreVerdict::PassedAfterRetry { attempts: 1 }),
        "{report}"
    );
    // The bite aborts the whole round, so the innocent cores may also
    // consume a retry — but nobody is quarantined.
    assert!(passed(report.verdict(0)), "{report}");
    assert!(passed(report.verdict(2)), "{report}");
    assert!(!report.degraded(), "{report}");
    assert!(recovered_cores(&report).contains(&1), "{report}");
    assert!(report.rounds >= 2, "recovery re-runs the parallel phase: {report}");
}

/// The same disturbance armed past the whole retry budget is
/// indistinguishable from a permanent defect and must quarantine, with
/// the cause of the last failing attempt.
#[test]
fn transient_outlasting_retry_budget_is_quarantined() {
    let mut sup = Supervisor::new(cheap_config(1));
    for core in 0..2 {
        sup.add_core(core, stl_for(core));
    }
    // 1 parallel run + 1 standalone retry = 2 runs; arming 10 outlasts
    // the budget.
    sup.set_transient_plane(0, hang_plane(), 10);
    let report = sup.run().expect("boot");
    assert_eq!(
        report.verdict(0),
        Some(CoreVerdict::Quarantined { cause: QuarantineCause::WatchdogBite }),
        "{report}"
    );
    assert!(passed(report.verdict(1)), "{report}");
    assert_eq!(report.quarantined(), vec![0]);
}

/// One boot with both kinds of victim: the report must keep them apart
/// — core 1 transient-recovered, core 2 quarantined, core 0 untouched.
#[test]
fn report_distinguishes_transient_recovered_from_quarantined() {
    let mut sup = Supervisor::new(cheap_config(1));
    for core in 0..3 {
        sup.add_core(core, stl_for(core));
    }
    sup.set_transient_plane(1, hang_plane(), 1);
    sup.set_plane(2, hang_plane());
    let report = sup.run().expect("boot");
    assert!(passed(report.verdict(0)), "{report}");
    assert_eq!(
        report.verdict(1),
        Some(CoreVerdict::PassedAfterRetry { attempts: 1 }),
        "{report}"
    );
    assert_eq!(
        report.verdict(2),
        Some(CoreVerdict::Quarantined { cause: QuarantineCause::WatchdogBite }),
        "{report}"
    );
    assert!(recovered_cores(&report).contains(&1), "{report}");
    assert_eq!(report.quarantined(), vec![2]);
    assert!(report.degraded());
}
