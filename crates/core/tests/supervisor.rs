//! End-to-end tests of the fault-tolerant STL supervisor: a healthy SoC
//! boots clean, a hung core is retried and quarantined while the other
//! cores still produce verdicts, and a deterministic signature
//! mismatch exhausts its retries into quarantine.

use sbst_cpu::{unit_fault_list, CoreKind, HDCU_CTRL};
use sbst_fault::{Element, FaultPlane, FaultSite, Polarity, Unit};
use sbst_mem::{ArbiterKind, InjectorProgram, SRAM_BASE};
use sbst_soc::ChaosConfig;
use sbst_stl::routines::{GenericAluTest, RegFileTest};
use sbst_stl::sched::CoreStl;
use sbst_stl::{
    derive_cycle_budget, learn_golden_cached, run_standalone, wrap_cached, BoundWatchdog,
    CoreVerdict, QuarantineCause, RoutineEnv, Supervisor, SupervisorConfig, WrapConfig,
    STATUS_FAIL,
};

fn env_for(core: usize) -> RoutineEnv {
    RoutineEnv {
        result_addr: SRAM_BASE + 0x2000 + 0x100 * core as u32,
        data_base: SRAM_BASE + 0x5000 + 0x400 * core as u32,
        ..RoutineEnv::for_core(CoreKind::ALL[core])
    }
}

fn stl_for(core: usize) -> CoreStl {
    CoreStl::new(
        vec![Box::new(RegFileTest::new()), Box::new(GenericAluTest::new(3))],
        env_for(core),
    )
}

fn passed(v: Option<CoreVerdict>) -> bool {
    matches!(
        v,
        Some(CoreVerdict::Passed | CoreVerdict::PassedAfterRetry { .. })
    )
}

#[test]
fn healthy_triple_core_boot_passes_first_time() {
    let mut sup = Supervisor::new(SupervisorConfig::default());
    for core in 0..3 {
        sup.add_core(core, stl_for(core));
    }
    let report = sup.run().expect("boot");
    assert!(report.fully_healthy(), "{report}");
    assert!(!report.degraded());
    assert_eq!(report.rounds, 1, "healthy boot needs one parallel round");
    for core in 0..3 {
        assert_eq!(report.verdict(core), Some(CoreVerdict::Passed));
    }
}

/// The headline robustness scenario: core 1 hangs under an armed stuck
/// stall line, the watchdog bites, the supervisor retries it standalone
/// (escalating budgets, cold caches) and finally quarantines it — and
/// cores 0 and 2 still complete their boot test cleanly behind a
/// shrunken barrier.
#[test]
fn hung_core_is_retried_then_quarantined_and_others_finish() {
    // Explicit budgets keep the hung-core retries cheap: the watchdog
    // bites 150k cycles after the last kick, long before the 2M host
    // backstop.
    let mut sup = Supervisor::new(SupervisorConfig {
        max_retries: 2,
        watchdog_timeout: 150_000,
        base_budget: 2_000_000,
        ..Default::default()
    });
    for core in 0..3 {
        sup.add_core(core, stl_for(core));
    }
    sup.set_plane(
        1,
        FaultPlane::armed(FaultSite {
            unit: Unit::Hdcu,
            instance: HDCU_CTRL,
            element: Element::StallLine { line: 4 },
            polarity: Polarity::StuckAt1,
        }),
    );
    let report = sup.run().expect("boot");
    assert_eq!(
        report.verdict(1),
        Some(CoreVerdict::Quarantined { cause: QuarantineCause::WatchdogBite }),
        "{report}"
    );
    assert!(passed(report.verdict(0)), "{report}");
    assert!(passed(report.verdict(2)), "{report}");
    assert!(report.degraded());
    assert_eq!(report.quarantined(), vec![1]);
    assert!(report.rounds >= 2, "quarantine forces a re-run: {report}");
}

/// A fault that deterministically corrupts a routine's signature (found
/// by probing the HDCU fault list standalone first) must exhaust its
/// retries — the fault is permanent, retrying cannot help — and land in
/// quarantine with the SignatureMismatch cause, without disturbing the
/// healthy core.
#[test]
fn signature_mismatch_exhausts_retries_into_quarantine() {
    let kind = CoreKind::A;
    let env = env_for(0);
    let routine = RegFileTest::new();
    let cfg = WrapConfig::default();
    let golden = learn_golden_cached(&routine, &env, &cfg, kind, 0x1000).expect("golden");
    let checked = wrap_cached(
        &routine,
        &env,
        &WrapConfig { expected_sig: Some(golden), ..cfg },
        "probe",
    )
    .expect("wraps");
    let budget = derive_cycle_budget(&checked);
    let site = unit_fault_list(kind, Unit::Hdcu)
        .sample(5)
        .into_iter()
        .find(|&site| {
            let report = run_standalone(
                &checked,
                &env,
                kind,
                true,
                0x1000,
                FaultPlane::armed(site),
                budget,
            );
            report.outcome.is_clean() && report.status == STATUS_FAIL
        })
        .expect("some HDCU fault fails the self-check without hanging");

    let mut sup = Supervisor::new(SupervisorConfig { max_retries: 1, ..Default::default() });
    sup.add_core(0, CoreStl::new(vec![Box::new(RegFileTest::new())], env_for(0)));
    sup.add_core(1, stl_for(1));
    sup.set_plane(0, FaultPlane::armed(site));
    let report = sup.run().expect("boot");
    assert_eq!(
        report.verdict(0),
        Some(CoreVerdict::Quarantined { cause: QuarantineCause::SignatureMismatch }),
        "{report}"
    );
    assert!(passed(report.verdict(1)), "{report}");
}

/// The bound-watchdog escalation path: the platform was certified for
/// round-robin arbitration, but the deployed bus runs fixed-priority
/// with the saturating traffic injector on the top-priority (last)
/// port. The core's ports starve past the round-robin bound, the bound
/// watchdog fires before any routine status is even consulted, and the
/// core is quarantined with the BoundViolation cause — the platform
/// voided the determinism argument, so no signature from it can be
/// trusted.
#[test]
fn violated_bound_escalates_to_quarantine() {
    let mut sup = Supervisor::new(SupervisorConfig {
        // Retrying cannot help — the platform itself is wrong — so keep
        // the test cheap with a single attempt and a tight budget.
        max_retries: 0,
        base_budget: 300_000,
        watchdog_timeout: 250_000,
        arbiter: ArbiterKind::FixedPriority { ascending: false },
        chaos: Some(ChaosConfig::interference(InjectorProgram::saturate(7))),
        bound_watchdog: Some(BoundWatchdog::new(ArbiterKind::RoundRobin)),
        ..Default::default()
    });
    sup.add_core(0, CoreStl::new(vec![Box::new(RegFileTest::new())], env_for(0)));
    let report = sup.run().expect("boot");
    assert_eq!(
        report.verdict(0),
        Some(CoreVerdict::Quarantined { cause: QuarantineCause::BoundViolation }),
        "{report}"
    );
    assert!(
        sup.events()
            .iter()
            .any(|e| matches!(e.kind, sbst_obs::TraceKind::Quarantine { cause: "bound violation" })),
        "quarantine trace event carries the bound-violation cause"
    );
}

/// Same platform, but certified honestly: a fixed-priority certificate
/// flags the core's ports unbounded, so the runtime watchdog has
/// nothing to enforce and the failure surfaces as an ordinary watchdog
/// bite (the core hung because it was starved) — certification must
/// catch unbounded ports *before* deployment, not at runtime.
#[test]
fn honest_fixed_priority_certificate_reports_a_hang_not_a_violation() {
    let mut sup = Supervisor::new(SupervisorConfig {
        max_retries: 0,
        base_budget: 300_000,
        watchdog_timeout: 250_000,
        arbiter: ArbiterKind::FixedPriority { ascending: false },
        chaos: Some(ChaosConfig::interference(InjectorProgram::saturate(7))),
        bound_watchdog: Some(BoundWatchdog::new(ArbiterKind::FixedPriority {
            ascending: false,
        })),
        ..Default::default()
    });
    sup.add_core(0, CoreStl::new(vec![Box::new(RegFileTest::new())], env_for(0)));
    let report = sup.run().expect("boot");
    assert_eq!(
        report.verdict(0),
        Some(CoreVerdict::Quarantined { cause: QuarantineCause::WatchdogBite }),
        "{report}"
    );
}
