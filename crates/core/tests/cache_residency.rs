//! The paper's central invariant, pinned at integration level: once the
//! loading loop of a cache-fitting routine has warmed the L1s, the
//! execution loop runs *entirely* from cache — zero instruction- or
//! data-cache read misses. This is exactly the invariant a broken LRU
//! replacement silently violates (an eviction of a just-loaded line
//! re-introduces nondeterministic misses), so these tests compare the
//! miss counts of a loading-only run (`iterations = 1`) against a
//! loading + execution run (`iterations = 2`) under the paper's real
//! geometries: every miss must happen in the loading loop.

use sbst_cpu::{CoreConfig, CoreKind};
use sbst_mem::{CacheStats, SRAM_BASE};
use sbst_soc::{Scenario, SocBuilder};
use sbst_stl::routines::{ForwardingTest, GenericAluTest};
use sbst_stl::{
    wrap_cached, wrap_sequence, RoutineEnv, SelfTestRoutine, WrapConfig, RESULT_STATUS_OFF,
    STATUS_DONE,
};

const MAX: u64 = 30_000_000;

fn env() -> RoutineEnv {
    RoutineEnv {
        result_addr: SRAM_BASE + 0x40,
        data_base: SRAM_BASE + 0x100,
        ..RoutineEnv::for_core(CoreKind::A)
    }
}

/// Runs the forwarding routine wrapped with `iterations` loop passes on
/// a cached core 0 (paper geometry: 8 KiB I$, 4 KiB D$), optionally
/// with two contending traffic cores, and returns core 0's cache
/// statistics.
fn run_wrapped(iterations: u32, contended: bool) -> (CacheStats, CacheStats) {
    let kind = CoreKind::A;
    let env = env();
    let routine = ForwardingTest::without_pcs(kind);
    let wrap = WrapConfig { iterations, ..WrapConfig::default() };
    let asm = wrap_cached(&routine, &env, &wrap, "res").expect("routine fits the I$");
    let scenario = Scenario {
        active_cores: if contended { 3 } else { 1 },
        skew_seed: 1,
        ..Scenario::single_core()
    };
    let delays = scenario.start_delays();
    let base = scenario.code_base(0);
    let mut builder = SocBuilder::new()
        .load(&asm.assemble(base).expect("assembles"))
        .core(CoreConfig::cached(kind, 0, base), delays[0]);
    for (core, &delay) in delays.iter().enumerate().take(scenario.active_cores).skip(1) {
        // Traffic cores: unwrapped generic STL churn over the bus.
        let tenv = RoutineEnv {
            result_addr: SRAM_BASE + 0x800 + 0x40 * core as u32,
            data_base: SRAM_BASE + 0x1000 + 0x100 * core as u32,
            ..env
        };
        let traffic = GenericAluTest::new(11);
        let seq: Vec<&dyn SelfTestRoutine> = vec![&traffic];
        let twrap = WrapConfig {
            iterations: 1,
            invalidate: false,
            icache_capacity: u32::MAX,
            ..WrapConfig::default()
        };
        let tbase = scenario.code_base(core);
        let tasm = wrap_sequence(&seq, &tenv, &twrap, &format!("t{core}"));
        builder = builder
            .load(&tasm.assemble(tbase).expect("traffic assembles"))
            .core(CoreConfig::uncached(CoreKind::ALL[core], core, tbase), delay);
    }
    let mut soc = builder.build();
    let outcome = soc.run(MAX);
    assert!(outcome.is_clean(), "run did not finish: {outcome:?}");
    assert_eq!(soc.peek(env.result_addr + RESULT_STATUS_OFF as u32), STATUS_DONE);
    let core = soc.core(0);
    (
        core.fetch_unit().icache().expect("cached core").stats(),
        core.lsu_unit().dcache().expect("cached core").stats(),
    )
}

/// Single core: the execution loop adds read *hits* but not one read
/// miss over the loading loop, in either cache.
#[test]
fn execution_loop_takes_zero_read_misses() {
    let (i1, d1) = run_wrapped(1, false);
    let (i2, d2) = run_wrapped(2, false);
    assert!(i1.read_misses > 0, "the loading loop must cold-miss");
    assert!(
        i2.read_hits > i1.read_hits,
        "the second iteration must actually re-execute from the I$"
    );
    assert_eq!(
        i2.read_misses, i1.read_misses,
        "execution loop took instruction-cache read misses"
    );
    assert_eq!(
        d2.read_misses, d1.read_misses,
        "execution loop took data-cache read misses"
    );
}

/// The same invariant under multi-core bus contention: other cores
/// perturb *when* the loading loop's misses are served, never whether
/// the execution loop hits.
#[test]
fn execution_loop_takes_zero_read_misses_under_contention() {
    let (i1, d1) = run_wrapped(1, true);
    let (i2, d2) = run_wrapped(2, true);
    assert!(i1.read_misses > 0, "the loading loop must cold-miss");
    assert_eq!(
        i2.read_misses, i1.read_misses,
        "execution loop took instruction-cache read misses under contention"
    );
    assert_eq!(
        d2.read_misses, d1.read_misses,
        "execution loop took data-cache read misses under contention"
    );
}
