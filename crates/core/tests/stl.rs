//! Integration tests for the paper's central claims:
//!
//! * the cache-based wrapper yields a **stable signature** under
//!   multi-core bus contention (and equal to the single-core golden);
//! * without caches, routines that fold performance counters (HDCU) or
//!   imprecise-interrupt state (ICU) have **unstable signatures**;
//! * the forwarding routine without counters keeps a stable signature
//!   even uncached ("exact signature but lower fault coverage");
//! * TCM-based execution trades memory overhead for a little speed.

use sbst_cpu::{CoreConfig, CoreKind};
use sbst_fault::FaultPlane;
use sbst_isa::Asm;
use sbst_mem::{WritePolicy, SRAM_BASE};
use sbst_soc::{Scenario, SocBuilder};
use sbst_stl::routines::{ForwardingTest, GenericAluTest, HdcuTest, IcuTest};
use sbst_stl::{
    learn_golden_cached, plan_cached, run_standalone, wrap_cached, wrap_tcm, RoutineEnv,
    SelfTestRoutine, WrapConfig, WrapError, RESULT_SIG_OFF, RESULT_STATUS_OFF, STATUS_DONE,
    STATUS_FAIL, STATUS_PASS,
};

const MAX: u64 = 30_000_000;

fn env() -> RoutineEnv {
    RoutineEnv {
        result_addr: SRAM_BASE + 0x40,
        data_base: SRAM_BASE + 0x100,
        ..RoutineEnv::for_core(CoreKind::A)
    }
}

/// Runs the routine (wrapped per `cfg`) on core 0 of a multi-core SoC
/// with `active` cores, the other cores running uncached STL traffic,
/// and returns (signature, status).
fn run_contended(
    asm: &Asm,
    env: &RoutineEnv,
    kind: CoreKind,
    cached: bool,
    active: usize,
    skew_seed: u64,
) -> (u32, u32) {
    let scenario = Scenario { active_cores: active, skew_seed, ..Scenario::single_core() };
    let delays = scenario.start_delays();
    let base = scenario.code_base(0);
    let program = asm.assemble(base).expect("assembles");
    let mut builder = SocBuilder::new().load(&program);
    // Traffic cores: plain (unwrapped, uncached) generic STL activity.
    // The workload length varies with the scenario seed — the paper's
    // "initial SoC configuration" that makes contention unpredictable.
    let traffic = GenericAluTest::new(8 + 3 * skew_seed as u32);
    for core in 1..active {
        let tbase = scenario.code_base(core);
        let tenv = RoutineEnv {
            result_addr: SRAM_BASE + 0x800 + 0x40 * core as u32,
            data_base: SRAM_BASE + 0x1000 + 0x100 * core as u32,
            ..*env
        };
        let mut tasm = Asm::new();
        let tcfg = WrapConfig {
            iterations: 1,
            invalidate: false,
            icache_capacity: u32::MAX, // traffic cores run uncached
            ..WrapConfig::default()
        };
        // Build an unwrapped-ish body (single iteration, no invalidate).
        let wrapped = {
            let mut w = tasm;
            sbst_stl_emit(&mut w, &traffic, &tenv, &tcfg, &format!("t{core}"));
            w
        };
        tasm = wrapped;
        builder = builder.load(&tasm.assemble(tbase).expect("traffic assembles"));
    }
    let cfg0 = if cached {
        CoreConfig::cached(kind, 0, base)
    } else {
        CoreConfig::uncached(kind, 0, base)
    };
    builder = builder.core(cfg0, delays[0]);
    for (core, &delay) in delays.iter().enumerate().take(active).skip(1) {
        let kind = CoreKind::ALL[core];
        builder = builder.core(
            CoreConfig::uncached(kind, core, scenario.code_base(core)),
            delay,
        );
    }
    let mut soc = builder.build();
    let outcome = soc.run(MAX);
    assert!(outcome.is_clean(), "contended run did not finish: {outcome:?}");
    (
        soc.peek(env.result_addr + RESULT_SIG_OFF as u32),
        soc.peek(env.result_addr + RESULT_STATUS_OFF as u32),
    )
}

/// Helper: emit a wrapped routine into an Asm (test-local shim over the
/// public wrapper API).
fn sbst_stl_emit(
    asm: &mut Asm,
    routine: &dyn SelfTestRoutine,
    env: &RoutineEnv,
    cfg: &WrapConfig,
    tag: &str,
) {
    let wrapped = wrap_cached(routine, env, cfg, tag).expect("wraps");
    *asm = wrapped;
}

#[test]
fn cache_wrapped_signature_is_stable_and_matches_golden() {
    for kind in [CoreKind::A, CoreKind::C] {
        let routine = ForwardingTest::without_pcs(kind);
        let env = env();
        let cfg = WrapConfig::default();
        let golden = learn_golden_cached(&routine, &env, &cfg, kind, 0x400).unwrap();
        let asm = wrap_cached(&routine, &env, &cfg, "fw").unwrap();
        for skew in 0..4 {
            let (sig, _) = run_contended(&asm, &env, kind, true, 3, skew);
            assert_eq!(
                sig, golden,
                "cache-wrapped signature must equal the single-core golden \
                 under full contention (kind {kind}, skew {skew})"
            );
        }
    }
}

#[test]
fn hdcu_signature_with_pcs_is_unstable_without_caches() {
    let kind = CoreKind::A;
    let routine = HdcuTest::new(kind);
    let env = env();
    // Legacy execution: single pass, no invalidation, uncached core.
    let cfg = WrapConfig { iterations: 1, invalidate: false, ..WrapConfig::default() };
    let asm = wrap_cached(&routine, &env, &cfg, "hdcu").unwrap();
    let sigs: Vec<u32> = (0..5)
        .map(|skew| run_contended(&asm, &env, kind, false, 3, skew).0)
        .collect();
    assert!(
        sigs.windows(2).any(|w| w[0] != w[1]),
        "PC-folding signature must fluctuate with contention phase: {sigs:x?}"
    );
}

#[test]
fn hdcu_signature_with_pcs_is_stable_with_the_wrapper() {
    let kind = CoreKind::A;
    let routine = HdcuTest::new(kind);
    let env = env();
    let cfg = WrapConfig::default();
    let golden = learn_golden_cached(&routine, &env, &cfg, kind, 0x400).unwrap();
    let asm = wrap_cached(&routine, &env, &cfg, "hdcu").unwrap();
    for skew in 0..4 {
        let (sig, _) = run_contended(&asm, &env, kind, true, 3, skew);
        assert_eq!(sig, golden, "skew {skew}");
    }
}

#[test]
fn icu_signature_is_unstable_without_caches_stable_with() {
    let kind = CoreKind::A;
    let routine = IcuTest::new();
    let env = env();
    let legacy = WrapConfig { iterations: 1, invalidate: false, ..WrapConfig::default() };
    let asm = wrap_cached(&routine, &env, &legacy, "icu").unwrap();
    let sigs: Vec<u32> = (0..6)
        .map(|skew| run_contended(&asm, &env, kind, false, 3, skew).0)
        .collect();
    assert!(
        sigs.windows(2).any(|w| w[0] != w[1]),
        "imprecision depth must fluctuate with contention: {sigs:x?}"
    );
    let cfg = WrapConfig::default();
    let golden = learn_golden_cached(&routine, &env, &cfg, kind, 0x400).unwrap();
    let wrapped = wrap_cached(&routine, &env, &cfg, "icu2").unwrap();
    for skew in 0..4 {
        let (sig, _) = run_contended(&wrapped, &env, kind, true, 3, skew);
        assert_eq!(sig, golden, "skew {skew}");
    }
}

#[test]
fn forwarding_without_pcs_keeps_exact_signature_even_uncached() {
    // Paper §II: "Exact signature but lower fault coverage" — without
    // performance counters the uncached multi-core signature still
    // matches, because delayed instructions produce the same values
    // through different paths.
    let kind = CoreKind::A;
    let routine = ForwardingTest::without_pcs(kind);
    let env = env();
    let legacy = WrapConfig { iterations: 1, invalidate: false, ..WrapConfig::default() };
    let asm = wrap_cached(&routine, &env, &legacy, "fwnp").unwrap();
    let single = run_standalone(
        &asm, &env, kind, false, 0x400, FaultPlane::fault_free(), MAX,
    );
    for skew in 0..3 {
        let (sig, _) = run_contended(&asm, &env, kind, false, 3, skew);
        assert_eq!(sig, single.signature, "value-only signature is contention-immune");
    }
}

#[test]
fn embedded_self_check_passes_and_detects_wrong_expectation() {
    let kind = CoreKind::A;
    let routine = IcuTest::new();
    let env = env();
    let mut cfg = WrapConfig::default();
    let golden = learn_golden_cached(&routine, &env, &cfg, kind, 0x400).unwrap();
    cfg.expected_sig = Some(golden);
    let asm = wrap_cached(&routine, &env, &cfg, "chk").unwrap();
    let report =
        run_standalone(&asm, &env, kind, true, 0x400, FaultPlane::fault_free(), MAX);
    assert_eq!(report.status, STATUS_PASS);
    // A wrong expectation must take the FAIL path.
    cfg.expected_sig = Some(golden ^ 1);
    let asm = wrap_cached(&routine, &env, &cfg, "chk2").unwrap();
    let report =
        run_standalone(&asm, &env, kind, true, 0x400, FaultPlane::fault_free(), MAX);
    assert_eq!(report.status, STATUS_FAIL);
}

#[test]
fn wrapper_without_expectation_reports_done() {
    let routine = GenericAluTest::new(2);
    let env = env();
    let asm = wrap_cached(&routine, &env, &WrapConfig::default(), "gen").unwrap();
    let report = run_standalone(
        &asm, &env, CoreKind::B, true, 0x400, FaultPlane::fault_free(), MAX,
    );
    assert_eq!(report.status, STATUS_DONE);
    assert_ne!(report.signature, 0);
}

#[test]
fn oversized_routine_is_split_until_it_fits() {
    let kind = CoreKind::C; // 64-bit sections make the body large
    let routine = ForwardingTest::without_pcs(kind);
    let env = env();
    // Force a tiny cache so the whole routine cannot fit.
    let cfg = WrapConfig { icache_capacity: 2048, ..WrapConfig::default() };
    assert!(matches!(
        wrap_cached(&routine, &env, &cfg, "big"),
        Err(WrapError::TooLarge { .. })
    ));
    let parts = plan_cached(&routine, &env, &cfg, "big").expect("splits");
    assert!(parts.len() >= 2, "was split into {} parts", parts.len());
    // Every part runs and publishes into its own mailbox.
    for (i, part) in parts.iter().enumerate() {
        let part_env = RoutineEnv { result_addr: env.result_addr + 16 * i as u32, ..env };
        let report = run_standalone(
            part, &part_env, kind, true, 0x400, FaultPlane::fault_free(), MAX,
        );
        assert!(report.outcome.is_clean());
        assert_eq!(report.status, STATUS_DONE, "part {i}");
    }
}

#[test]
fn no_write_allocate_dummy_loads_keep_the_execution_loop_deterministic() {
    let kind = CoreKind::A;
    let env_nwa = RoutineEnv { policy: WritePolicy::NoWriteAllocate, ..env() };
    let routine = GenericAluTest::new(3);
    let cfg = WrapConfig::default();
    // Golden on a single cached core with an NWA D$.
    let asm = wrap_cached(&routine, &env_nwa, &cfg, "nwa").unwrap();
    let base = 0x400;
    let program = asm.assemble(base).unwrap();
    let nwa_dcache = sbst_mem::CacheConfig {
        policy: WritePolicy::NoWriteAllocate,
        ..sbst_mem::CacheConfig::dcache_4k()
    };
    let mk_cfg = |id: usize, pc: u32| CoreConfig {
        dcache: Some(nwa_dcache),
        ..CoreConfig::cached(kind, id, pc)
    };
    let run = |skew: u32| {
        let mut soc = SocBuilder::new()
            .load(&program)
            .core(mk_cfg(0, base), skew)
            .build();
        assert!(soc.run(MAX).is_clean());
        soc.peek(env_nwa.result_addr)
    };
    let sig0 = run(0);
    assert_eq!(sig0, run(5), "NWA + dummy loads stays deterministic");
    assert_ne!(sig0, 0);
}

#[test]
fn tcm_wrapper_matches_behaviour_and_costs_memory() {
    let kind = CoreKind::A;
    let routine = IcuTest::new();
    let env = env();
    let cfg = WrapConfig::default();
    let flash_base = 0x400;
    let tcm = wrap_tcm(&routine, &env, &cfg, "tcm", flash_base).unwrap();
    assert!(tcm.tcm_overhead_bytes > 0, "TCM bytes are permanently reserved");
    let mut soc = SocBuilder::new()
        .load(&tcm.program)
        .core(CoreConfig::cached(kind, 0, flash_base), 0)
        .build();
    let outcome = soc.run(MAX);
    assert!(outcome.is_clean(), "{outcome:?}");
    assert_eq!(soc.peek(env.result_addr + 4), STATUS_DONE);
    let tcm_cycles = soc.cycle();

    // Cache-based equivalent: zero memory overhead, slightly slower
    // (the loading loop re-executes the body; Table IV).
    let asm = wrap_cached(&routine, &env, &cfg, "cache").unwrap();
    let report =
        run_standalone(&asm, &env, kind, true, flash_base, FaultPlane::fault_free(), MAX);
    assert!(report.outcome.is_clean());
    assert!(
        report.cycles > tcm_cycles,
        "cache-based ({}) should cost a few more cycles than TCM-based ({})",
        report.cycles,
        tcm_cycles
    );
    // ... but within a small factor (paper: ~10%).
    assert!(
        (report.cycles as f64) < 2.5 * tcm_cycles as f64,
        "overhead must stay moderate: {} vs {}",
        report.cycles,
        tcm_cycles
    );
}

#[test]
fn scheduler_runs_parallel_stl_on_three_cores() {
    use sbst_stl::sched::{build_stl_program, CoreStl, SchedLayout};
    let layout = SchedLayout::default();
    let wrap = WrapConfig::default();
    let mut builder = SocBuilder::new();
    let mut result_addrs = Vec::new();
    for core in 0..3usize {
        let kind = CoreKind::ALL[core];
        let env = RoutineEnv {
            result_addr: SRAM_BASE + 0x2000 + 0x100 * core as u32,
            data_base: SRAM_BASE + 0x4000 + 0x400 * core as u32,
            ..RoutineEnv::for_core(kind)
        };
        result_addrs.push(env.result_addr);
        let stl = CoreStl {
            routines: vec![
                Box::new(GenericAluTest::new(2)),
                Box::new(ForwardingTest::without_pcs(kind)),
            ],
            env,
            watchdog: None,
        };
        let asm = build_stl_program(core, 3, &stl, &wrap, &layout);
        let base = 0x1000 + 0x2_0000 * core as u32;
        builder = builder.load(&asm.assemble(base).unwrap());
        builder = builder.core(CoreConfig::cached(kind, core, base), core as u32 * 7);
    }
    let mut soc = builder.build();
    let outcome = soc.run(MAX);
    assert!(outcome.is_clean(), "{outcome:?}");
    for (core, &result_addr) in result_addrs.iter().enumerate() {
        assert_eq!(soc.peek(layout.done_base + 4 * core as u32), 1, "core {core} done");
        for routine in 0..2u32 {
            let status = soc.peek(result_addr + 16 * routine + 4);
            assert_eq!(status, STATUS_DONE, "core {core} routine {routine}");
        }
    }
}

#[test]
fn armed_watchdog_catches_a_hung_stl_and_quiet_when_kicked() {
    use sbst_stl::sched::{build_stl_program, CoreStl, SchedLayout};
    // (1) A healthy STL with the watchdog armed and kicked between
    // routines completes cleanly.
    let layout = SchedLayout::default();
    let wrap = WrapConfig::default();
    let build = |watchdog| {
        let stl = CoreStl {
            routines: vec![
                Box::new(GenericAluTest::new(2)) as Box<dyn SelfTestRoutine>,
                Box::new(GenericAluTest::new(3)),
            ],
            env: RoutineEnv::for_core(CoreKind::A),
            watchdog,
        };
        build_stl_program(0, 1, &stl, &wrap, &layout)
    };
    let healthy = build(Some(200_000)).assemble(0x1000).unwrap();
    let mut soc = SocBuilder::new()
        .load(&healthy)
        .core(CoreConfig::cached(CoreKind::A, 0, 0x1000), 0)
        .build();
    assert!(soc.run(10_000_000).is_clean(), "kicked watchdog stays quiet");
    assert!(!soc.bus().watchdog().bitten());

    // (2) The same STL with a fault that hangs the core *immediately*
    // (even the software arm sequence never executes): the boot ROM has
    // already armed the watchdog, so the peripheral still catches it —
    // modeled by arming it from the harness before the run.
    let mut soc = SocBuilder::new()
        .load(&build(Some(50_000)).assemble(0x1000).unwrap())
        .core(CoreConfig::cached(CoreKind::A, 0, 0x1000), 0)
        .build();
    soc.bus_mut().watchdog_mut().write(sbst_mem::WDG_LOAD, 50_000);
    use sbst_fault::{Element, FaultPlane, FaultSite, Polarity, Unit};
    soc.core_mut(0).set_plane(FaultPlane::armed(FaultSite {
        unit: Unit::Hdcu,
        instance: sbst_cpu::HDCU_CTRL,
        element: Element::StallLine { line: 4 },
        polarity: Polarity::StuckAt1,
    }));
    let outcome = soc.run(10_000_000);
    assert!(
        matches!(outcome, sbst_soc::RunOutcome::Watchdog { cycles } if cycles == soc.cycle()),
        "expected a watchdog bite, got {outcome:?}"
    );
    assert!(soc.bus().watchdog().bitten(), "the peripheral raised the alarm");
    assert!(soc.cycle() < 200_000, "bite came from the peripheral, not the budget");
}

#[test]
fn cached_signature_is_invariant_to_flash_timing() {
    // The whole point of the execution loop: once cache-resident, the
    // signature cannot depend on ANY memory-subsystem timing parameter.
    use sbst_mem::FlashTiming;
    let kind = CoreKind::A;
    let routine = HdcuTest::new(kind);
    let env = env();
    let asm = wrap_cached(&routine, &env, &WrapConfig::default(), "ft").unwrap();
    let program = asm.assemble(0x400).unwrap();
    let sig_with = |timing: FlashTiming| {
        let mut soc = SocBuilder::new()
            .flash_timing(timing)
            .load(&program)
            .core(CoreConfig::cached(kind, 0, 0x400), 0)
            .build();
        assert!(soc.run(MAX).is_clean());
        soc.peek(env.result_addr)
    };
    let reference = sig_with(FlashTiming::default());
    for timing in [
        FlashTiming { access_cycles: 16, ..FlashTiming::default() },
        FlashTiming { row_hit_cycles: 5, ..FlashTiming::default() },
        FlashTiming { row_buffers: 1, ..FlashTiming::default() },
        FlashTiming { access_cycles: 20, row_hit_cycles: 7, row_buffers: 2, row_bytes: 32 },
    ] {
        assert_eq!(
            sig_with(timing),
            reference,
            "flash timing {timing:?} leaked into the execution loop"
        );
    }
}

#[test]
fn tcm_and_cache_wrappers_produce_the_same_signature() {
    // Paper Table IV: "the fault coverage ... is the same for both" —
    // which requires both strategies to compute the identical signature
    // from the identical body.
    let kind = CoreKind::A;
    let env = env();
    let cfg = WrapConfig::default();
    let routines: Vec<(&str, Box<dyn SelfTestRoutine>)> = vec![
        ("icu", Box::new(IcuTest::with_rounds(2))),
        ("fw", Box::new(ForwardingTest::without_pcs(kind))),
    ];
    for (name, routine) in routines {
        let cached = wrap_cached(routine.as_ref(), &env, &cfg, name).unwrap();
        let cached_report = run_standalone(
            &cached, &env, kind, true, 0x400, FaultPlane::fault_free(), MAX,
        );
        let tcm = wrap_tcm(routine.as_ref(), &env, &cfg, name, 0x400).unwrap();
        let mut soc = SocBuilder::new()
            .load(&tcm.program)
            .core(CoreConfig::cached(kind, 0, 0x400), 0)
            .build();
        assert!(soc.run(MAX).is_clean());
        let tcm_sig = soc.peek(env.result_addr);
        assert_eq!(
            cached_report.signature, tcm_sig,
            "{name}: the two strategies must observe identical behaviour"
        );
    }
}
