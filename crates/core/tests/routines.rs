//! Per-routine behaviour tests: every STL routine runs cleanly under the
//! wrapper on every core kind, produces a nonzero deterministic
//! signature, and honours the register conventions.

use sbst_cpu::CoreKind;
use sbst_fault::FaultPlane;
use sbst_stl::routines::{
    BranchTest, ForwardingTest, GenericAluTest, HdcuTest, IcuTest, LsuTest, RegFileTest,
};
use sbst_stl::{
    plan_cached, run_standalone, wrap_cached, RoutineEnv, SelfTestRoutine, WrapConfig,
    STATUS_DONE,
};

fn all_routines(kind: CoreKind) -> Vec<Box<dyn SelfTestRoutine>> {
    vec![
        Box::new(GenericAluTest::new(2)),
        Box::new(RegFileTest::new()),
        Box::new(BranchTest::new()),
        Box::new(LsuTest::new()),
        Box::new(ForwardingTest::without_pcs(kind)),
        Box::new(HdcuTest::new(kind)),
        Box::new(IcuTest::with_rounds(2)),
    ]
}

#[test]
fn every_routine_runs_wrapped_on_every_core_kind() {
    for kind in CoreKind::ALL {
        for routine in all_routines(kind) {
            let env = RoutineEnv::for_core(kind);
            let cfg = WrapConfig::default();
            // Oversized routines split into cache-sized parts
            // (paper §III.2.2) — each part must run cleanly.
            let parts = plan_cached(routine.as_ref(), &env, &cfg, "r")
                .unwrap_or_else(|e| panic!("{} does not wrap: {e}", routine.name()));
            for (i, asm) in parts.iter().enumerate() {
                let part_env =
                    RoutineEnv { result_addr: env.result_addr + 16 * i as u32, ..env };
                let report = run_standalone(
                    asm,
                    &part_env,
                    kind,
                    true,
                    0x400,
                    FaultPlane::fault_free(),
                    30_000_000,
                );
                assert!(
                    report.outcome.is_clean(),
                    "{} part {i} on {kind}: {:?}",
                    routine.name(),
                    report.outcome
                );
                assert_eq!(report.status, STATUS_DONE, "{} on {kind}", routine.name());
                assert_ne!(report.signature, 0, "{} on {kind}", routine.name());
            }
        }
    }
}

#[test]
fn signatures_are_position_independent_under_the_wrapper() {
    // Every routine must fold only position-independent observations, so
    // the same golden works wherever the scenario places the code.
    let kind = CoreKind::A;
    for routine in all_routines(kind) {
        let env = RoutineEnv::for_core(kind);
        let cfg = WrapConfig::default();
        let asm = wrap_cached(routine.as_ref(), &env, &cfg, "p").expect("wraps");
        let sig_at = |base: u32| {
            let r = run_standalone(
                &asm, &env, kind, true, base, FaultPlane::fault_free(), 30_000_000,
            );
            assert!(r.outcome.is_clean(), "{} at {base:#x}", routine.name());
            r.signature
        };
        assert_eq!(
            sig_at(0x400),
            sig_at(0x0040_0000),
            "{} signature depends on code position",
            routine.name()
        );
        assert_eq!(
            sig_at(0x400),
            sig_at(0x0400 + 4 + 8), // different alignment class
            "{} signature depends on alignment",
            routine.name()
        );
    }
}

#[test]
fn distinct_routines_have_distinct_signatures() {
    let kind = CoreKind::A;
    let mut sigs = Vec::new();
    for routine in all_routines(kind) {
        let env = RoutineEnv::for_core(kind);
        let asm = wrap_cached(routine.as_ref(), &env, &WrapConfig::default(), "d").unwrap();
        let r = run_standalone(&asm, &env, kind, true, 0x400, FaultPlane::fault_free(), 30_000_000);
        sigs.push((routine.name(), r.signature));
    }
    for i in 0..sigs.len() {
        for j in i + 1..sigs.len() {
            assert_ne!(sigs[i].1, sigs[j].1, "{} vs {}", sigs[i].0, sigs[j].0);
        }
    }
}
