#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! # sbst-fault — structural stuck-at fault model
//!
//! The paper grades its self-test routines against *stuck-at* faults on
//! the post-layout netlist of three CPU units: the forwarding logic, the
//! Hazard Detection Control Unit (HDCU) and the Interrupt Control Unit
//! (ICU). We do not have the proprietary netlist, so this crate defines a
//! pin-accurate **gate decomposition** of those same units and enumerates
//! stuck-at fault sites on every pin:
//!
//! * [`FaultSite`] — one injectable fault: unit + instance + gate-pin
//!   [`Element`] + [`Polarity`];
//! * [`FaultPlane`] — at most one *armed* fault per simulation run, with
//!   constant-time "does this fault live in my unit instance?" queries
//!   from the CPU model's hot loop;
//! * [`gates`] — fault-aware evaluators for the two combinational
//!   primitives the units are built from (one-hot AND–OR multiplexer,
//!   AND-chain equality comparator). The faulty value is computed
//!   *analytically*, so simulation speed is independent of netlist size;
//! * [`FaultList`] and [`Verdict`] — campaign bookkeeping.
//!
//! The enumeration of concrete sites for a given core lives in
//! `sbst-cpu` (which knows the structures); this crate only defines the
//! vocabulary and the faulty-evaluation semantics.
//!
//! ## Example
//!
//! ```
//! use sbst_fault::{gates, Element, FaultPlane, FaultSite, Polarity, Unit};
//!
//! let site = FaultSite {
//!     unit: Unit::Forwarding,
//!     instance: 0,
//!     element: Element::MuxSelStem { src: 2 },
//!     polarity: Polarity::StuckAt1,
//! };
//! let plane = FaultPlane::armed(site);
//! // The faulty select stem forces source 2 on in mux instance 0:
//! let inputs = [0x0, 0x0, 0xff, 0x0, 0x0];
//! let out = gates::mux_out(&inputs, 0, 8, plane.query(Unit::Forwarding, 0));
//! assert_eq!(out, 0xff); // source 0 selected, but source 2 leaks in
//! ```

pub mod gates;

mod collapse;
mod list;
mod plane;
mod site;
mod word;

pub use collapse::{collapse, CollapsedList};
pub use list::{FaultList, Verdict};
pub use plane::FaultPlane;
pub use site::{Element, FaultSite, Polarity, Unit};
pub use word::{pack_density, pack_fault_words, FaultWord, WORD_LANES};
