//! The armed-fault plane.

use crate::{Element, FaultSite, Polarity, Unit};

/// A fault-injection plane holding at most one *armed* fault.
///
/// Every structural unit of the CPU model asks the plane, each time it
/// evaluates, whether the armed fault lives inside it. The query is two
/// integer comparisons, so a fault-free run pays essentially nothing and
/// a faulty run only perturbs the single owning unit — this is what makes
/// simulating tens of thousands of faults tractable without a gate-level
/// netlist simulator.
#[derive(Debug, Clone, Copy, Default)]
pub struct FaultPlane {
    armed: Option<FaultSite>,
}

impl FaultPlane {
    /// A plane with no fault (golden simulation).
    pub const fn fault_free() -> FaultPlane {
        FaultPlane { armed: None }
    }

    /// A plane with `site` armed.
    pub fn armed(site: FaultSite) -> FaultPlane {
        FaultPlane { armed: Some(site) }
    }

    /// The armed fault, if any.
    pub fn site(&self) -> Option<FaultSite> {
        self.armed
    }

    /// Whether any fault is armed.
    pub fn is_armed(&self) -> bool {
        self.armed.is_some()
    }

    /// The armed fault's element and polarity, if it lives in
    /// `unit`/`instance`.
    #[inline]
    pub fn query(&self, unit: Unit, instance: u16) -> Option<(Element, Polarity)> {
        match self.armed {
            Some(s) if s.unit == unit && s.instance == instance => {
                Some((s.element, s.polarity))
            }
            _ => None,
        }
    }

    /// Like [`query`](FaultPlane::query) but only matching the unit
    /// (for units with a single instance or instance-agnostic checks).
    #[inline]
    pub fn query_unit(&self, unit: Unit) -> Option<FaultSite> {
        match self.armed {
            Some(s) if s.unit == unit => Some(s),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn site() -> FaultSite {
        FaultSite {
            unit: Unit::Hdcu,
            instance: 3,
            element: Element::CmpOut,
            polarity: Polarity::StuckAt1,
        }
    }

    #[test]
    fn fault_free_answers_nothing() {
        let p = FaultPlane::fault_free();
        assert!(!p.is_armed());
        assert_eq!(p.query(Unit::Hdcu, 3), None);
        assert_eq!(p.query_unit(Unit::Icu), None);
    }

    #[test]
    fn armed_matches_only_its_unit_and_instance() {
        let p = FaultPlane::armed(site());
        assert_eq!(p.query(Unit::Hdcu, 3), Some((Element::CmpOut, Polarity::StuckAt1)));
        assert_eq!(p.query(Unit::Hdcu, 2), None);
        assert_eq!(p.query(Unit::Forwarding, 3), None);
        assert_eq!(p.query_unit(Unit::Hdcu), Some(site()));
    }
}
