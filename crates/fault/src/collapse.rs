//! Structural fault-equivalence collapsing.
//!
//! Commercial fault simulators never grade every enumerated stuck-at:
//! faults that provably produce identical behaviour on every input are
//! *collapsed* into one representative. For the gate networks of this
//! model the classical dominance/equivalence rules are:
//!
//! * **AND gate**: stuck-at-0 on any input ≡ stuck-at-0 on the output.
//!   In the mux decomposition, `MuxDataIn{s,b}/SA0`,
//!   `MuxSelBranch{s,b}/SA0` and `MuxAndOut{s,b}/SA0` are one class.
//! * **OR plane (flat)**: stuck-at-1 on any input ≡ stuck-at-1 on the
//!   output: `MuxAndOut{s,b}/SA1` ≡ `MuxOrOut{b}/SA1` for every `s`.
//! * **AND chain (comparator)**: stuck-at-0 anywhere on the chain ≡
//!   stuck-at-0 at the output: `CmpValidIn/SA0`, `CmpXnorOut{b}/SA0`,
//!   every `CmpChainNode{n}/SA0` and `CmpOut/SA0` are one class.
//!
//! Collapsing never changes fault *coverage*: a class is detected iff
//! its representative is (verified by campaign-level tests in
//! `sbst-campaign`). Classes and totals are both reported, so coverage
//! can still be quoted against the uncollapsed universe.

use std::collections::HashMap;

use crate::{Element, FaultList, FaultSite, Polarity};

/// The result of collapsing a fault list.
#[derive(Debug, Clone)]
pub struct CollapsedList {
    /// One representative per equivalence class, in first-seen order.
    representatives: FaultList,
    /// Class size per representative (same order).
    class_sizes: Vec<usize>,
}

impl CollapsedList {
    /// The representatives to actually simulate.
    pub fn representatives(&self) -> &FaultList {
        &self.representatives
    }

    /// Number of equivalence classes.
    pub fn classes(&self) -> usize {
        self.representatives.len()
    }

    /// Total faults across all classes (the uncollapsed count).
    pub fn total_faults(&self) -> usize {
        self.class_sizes.iter().sum()
    }

    /// Size of the class represented by representative `i`.
    pub fn class_size(&self, i: usize) -> usize {
        self.class_sizes[i]
    }

    /// Expands per-representative detections into uncollapsed coverage:
    /// `detected[i]` refers to representative `i`.
    ///
    /// # Panics
    ///
    /// Panics if `detected.len()` differs from the class count.
    pub fn expand_coverage(&self, detected: &[bool]) -> (usize, usize) {
        assert_eq!(detected.len(), self.classes());
        let hit: usize = detected
            .iter()
            .zip(&self.class_sizes)
            .filter(|&(&d, _)| d)
            .map(|(_, &n)| n)
            .sum();
        (hit, self.total_faults())
    }
}

/// Equivalence-class key of a fault site.
///
/// Faults mapping to the same key are behaviourally identical; sites
/// with no rule collapse to themselves (singleton classes).
fn class_key(site: &FaultSite) -> FaultSite {
    let canon = |element: Element| FaultSite { element, ..*site };
    match (site.element, site.polarity) {
        // AND-gate SA0 equivalence inside one mux source/bit.
        (Element::MuxDataIn { src, bit }, Polarity::StuckAt0)
        | (Element::MuxSelBranch { src, bit }, Polarity::StuckAt0) => {
            canon(Element::MuxAndOut { src, bit })
        }
        // Flat OR plane SA1 equivalence: every AND output feeding bit `b`
        // collapses onto the OR output. (The OR-chain nodes of core B's
        // resynthesis are NOT equivalent: a node fault masks only the
        // sources accumulated so far — they stay singletons.)
        (Element::MuxAndOut { bit, .. }, Polarity::StuckAt1) => {
            canon(Element::MuxOrOut { bit })
        }
        // Comparator AND-chain SA0 equivalence.
        (Element::CmpValidIn, Polarity::StuckAt0)
        | (Element::CmpXnorOut { .. }, Polarity::StuckAt0)
        | (Element::CmpChainNode { .. }, Polarity::StuckAt0) => canon(Element::CmpOut),
        _ => *site,
    }
}

/// Collapses `list` into equivalence classes.
pub fn collapse(list: &FaultList) -> CollapsedList {
    let mut index: HashMap<FaultSite, usize> = HashMap::new();
    let mut representatives = FaultList::new();
    let mut class_sizes = Vec::new();
    for &site in list {
        let key = class_key(&site);
        match index.get(&key) {
            Some(&i) => class_sizes[i] += 1,
            None => {
                index.insert(key, class_sizes.len());
                // The representative is the *canonical* site (so the
                // simulated fault is the class's common behaviour).
                representatives.push(key);
                class_sizes.push(1);
            }
        }
    }
    CollapsedList { representatives, class_sizes }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{gates, Unit};

    fn site(element: Element, polarity: Polarity) -> FaultSite {
        FaultSite { unit: Unit::Forwarding, instance: 0, element, polarity }
    }

    #[test]
    fn and_sa0_classes_merge() {
        let list = FaultList::from_sites(vec![
            site(Element::MuxDataIn { src: 1, bit: 3 }, Polarity::StuckAt0),
            site(Element::MuxSelBranch { src: 1, bit: 3 }, Polarity::StuckAt0),
            site(Element::MuxAndOut { src: 1, bit: 3 }, Polarity::StuckAt0),
            // Different bit: separate class.
            site(Element::MuxDataIn { src: 1, bit: 4 }, Polarity::StuckAt0),
        ]);
        let c = collapse(&list);
        assert_eq!(c.classes(), 2);
        assert_eq!(c.total_faults(), 4);
        assert_eq!(c.class_size(0), 3);
    }

    #[test]
    fn or_sa1_classes_merge_across_sources() {
        let list = FaultList::from_sites(vec![
            site(Element::MuxAndOut { src: 0, bit: 7 }, Polarity::StuckAt1),
            site(Element::MuxAndOut { src: 4, bit: 7 }, Polarity::StuckAt1),
            site(Element::MuxOrOut { bit: 7 }, Polarity::StuckAt1),
        ]);
        let c = collapse(&list);
        assert_eq!(c.classes(), 1);
        assert_eq!(c.class_size(0), 3);
    }

    #[test]
    fn polarity_matters() {
        let list = FaultList::from_sites(vec![
            site(Element::MuxDataIn { src: 0, bit: 0 }, Polarity::StuckAt0),
            site(Element::MuxDataIn { src: 0, bit: 0 }, Polarity::StuckAt1),
        ]);
        assert_eq!(collapse(&list).classes(), 2, "SA1 data faults are not AND-output faults");
    }

    #[test]
    fn expand_coverage_scales_by_class_size() {
        let list = FaultList::from_sites(vec![
            site(Element::MuxDataIn { src: 1, bit: 3 }, Polarity::StuckAt0),
            site(Element::MuxAndOut { src: 1, bit: 3 }, Polarity::StuckAt0),
            site(Element::MuxOrOut { bit: 9 }, Polarity::StuckAt0),
        ]);
        let c = collapse(&list);
        assert_eq!(c.classes(), 2);
        let (hit, total) = c.expand_coverage(&[true, false]);
        assert_eq!((hit, total), (2, 3));
    }

    /// The semantic ground truth behind the rules: for every collapsed
    /// pair, the faulty mux evaluates identically on exhaustive small
    /// inputs.
    #[test]
    fn collapsed_mux_faults_are_behaviourally_identical() {
        let pairs = [
            (
                site(Element::MuxDataIn { src: 1, bit: 2 }, Polarity::StuckAt0),
                site(Element::MuxAndOut { src: 1, bit: 2 }, Polarity::StuckAt0),
            ),
            (
                site(Element::MuxSelBranch { src: 3, bit: 1 }, Polarity::StuckAt0),
                site(Element::MuxAndOut { src: 3, bit: 1 }, Polarity::StuckAt0),
            ),
            (
                site(Element::MuxAndOut { src: 2, bit: 0 }, Polarity::StuckAt1),
                site(Element::MuxOrOut { bit: 0 }, Polarity::StuckAt1),
            ),
        ];
        for (a, b) in pairs {
            assert_eq!(class_key(&a), class_key(&b), "{a} vs {b}");
            for sel in 0..5 {
                for pattern in 0..32u64 {
                    let inputs = [
                        pattern,
                        pattern.rotate_left(1),
                        !pattern,
                        0x15,
                        pattern ^ 0x0a,
                    ];
                    let fa = gates::mux_out(&inputs, sel, 6, Some((a.element, a.polarity)));
                    let fb = gates::mux_out(&inputs, sel, 6, Some((b.element, b.polarity)));
                    assert_eq!(fa, fb, "{a} != {b} at sel={sel} pattern={pattern:#x}");
                }
            }
        }
    }

    /// Comparator-chain SA0 equivalence, checked against the evaluator.
    #[test]
    fn collapsed_cmp_faults_are_behaviourally_identical() {
        let variants = [
            site(Element::CmpValidIn, Polarity::StuckAt0),
            site(Element::CmpXnorOut { bit: 2 }, Polarity::StuckAt0),
            site(Element::CmpChainNode { node: 4 }, Polarity::StuckAt0),
            site(Element::CmpOut, Polarity::StuckAt0),
        ];
        for v in &variants {
            assert_eq!(class_key(v), site(Element::CmpOut, Polarity::StuckAt0));
        }
        for a in 0..32u32 {
            for b in 0..32u32 {
                for valid in [false, true] {
                    let outs: Vec<bool> = variants
                        .iter()
                        .map(|v| gates::cmp_eq(a, b, 5, valid, Some((v.element, v.polarity))))
                        .collect();
                    assert!(outs.windows(2).all(|w| w[0] == w[1]), "a={a} b={b}");
                }
            }
        }
    }
}
