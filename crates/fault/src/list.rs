//! Fault lists and simulation verdicts.

use crate::{FaultSite, Unit};

/// Outcome of simulating one fault against one test program.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Verdict {
    /// Final signature differed from the golden one.
    WrongSignature,
    /// The routine's own pass/fail check took its FAIL path.
    TestFail,
    /// The core trapped to the failure handler unexpectedly.
    UnexpectedTrap,
    /// The core did not halt within the watchdog budget — in field the
    /// watchdog converts this into a detection.
    Hang,
    /// The fault produced no observable difference.
    Undetected,
    /// The simulation of this fault crashed (a harness defect, not a
    /// property of the silicon): the campaign records it and moves on
    /// instead of aborting — see `sbst-campaign`'s panic isolation.
    SimError,
}

impl Verdict {
    /// Whether this verdict counts as a detection for fault coverage.
    /// A crashed simulation proves nothing about the fault, so
    /// [`SimError`](Verdict::SimError) does not count.
    pub fn is_detected(self) -> bool {
        !matches!(self, Verdict::Undetected | Verdict::SimError)
    }

    /// Whether the simulation itself failed (no verdict about silicon).
    pub fn is_sim_error(self) -> bool {
        matches!(self, Verdict::SimError)
    }

    /// Stable text tag (checkpoint format, reports).
    pub fn tag(self) -> &'static str {
        match self {
            Verdict::WrongSignature => "wrong-signature",
            Verdict::TestFail => "test-fail",
            Verdict::UnexpectedTrap => "unexpected-trap",
            Verdict::Hang => "hang",
            Verdict::Undetected => "undetected",
            Verdict::SimError => "sim-error",
        }
    }

    /// Parses a [`tag`](Verdict::tag) back into a verdict.
    pub fn from_tag(tag: &str) -> Option<Verdict> {
        Some(match tag {
            "wrong-signature" => Verdict::WrongSignature,
            "test-fail" => Verdict::TestFail,
            "unexpected-trap" => Verdict::UnexpectedTrap,
            "hang" => Verdict::Hang,
            "undetected" => Verdict::Undetected,
            "sim-error" => Verdict::SimError,
            _ => return None,
        })
    }
}

impl std::fmt::Display for Verdict {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.tag())
    }
}

/// An ordered collection of fault sites for one unit of one core.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultList {
    sites: Vec<FaultSite>,
}

impl FaultList {
    /// Creates an empty list.
    pub fn new() -> FaultList {
        FaultList::default()
    }

    /// Creates a list from sites.
    pub fn from_sites(sites: Vec<FaultSite>) -> FaultList {
        FaultList { sites }
    }

    /// Appends a site.
    pub fn push(&mut self, site: FaultSite) {
        self.sites.push(site);
    }

    /// The sites.
    pub fn sites(&self) -> &[FaultSite] {
        &self.sites
    }

    /// Number of faults.
    pub fn len(&self) -> usize {
        self.sites.len()
    }

    /// Whether the list is empty.
    pub fn is_empty(&self) -> bool {
        self.sites.is_empty()
    }

    /// Iterates over the sites.
    pub fn iter(&self) -> std::slice::Iter<'_, FaultSite> {
        self.sites.iter()
    }

    /// Keeps only sites belonging to `unit`.
    pub fn restrict_to(&self, unit: Unit) -> FaultList {
        FaultList {
            sites: self.sites.iter().copied().filter(|s| s.unit == unit).collect(),
        }
    }

    /// Deterministically samples every `stride`-th fault (for quick test
    /// runs); `stride == 1` returns the full list.
    ///
    /// # Panics
    ///
    /// Panics if `stride == 0`.
    pub fn sample(&self, stride: usize) -> FaultList {
        assert!(stride > 0, "stride must be positive");
        FaultList {
            sites: self.sites.iter().copied().step_by(stride).collect(),
        }
    }
}

impl FromIterator<FaultSite> for FaultList {
    fn from_iter<I: IntoIterator<Item = FaultSite>>(iter: I) -> FaultList {
        FaultList { sites: iter.into_iter().collect() }
    }
}

impl Extend<FaultSite> for FaultList {
    fn extend<I: IntoIterator<Item = FaultSite>>(&mut self, iter: I) {
        self.sites.extend(iter);
    }
}

impl<'a> IntoIterator for &'a FaultList {
    type Item = &'a FaultSite;
    type IntoIter = std::slice::Iter<'a, FaultSite>;

    fn into_iter(self) -> Self::IntoIter {
        self.sites.iter()
    }
}

impl IntoIterator for FaultList {
    type Item = FaultSite;
    type IntoIter = std::vec::IntoIter<FaultSite>;

    fn into_iter(self) -> Self::IntoIter {
        self.sites.into_iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Element, Polarity};

    fn site(unit: Unit, instance: u16) -> FaultSite {
        FaultSite {
            unit,
            instance,
            element: Element::CmpOut,
            polarity: Polarity::StuckAt0,
        }
    }

    #[test]
    fn restrict_and_sample() {
        let list: FaultList = (0..10)
            .map(|i| site(if i % 2 == 0 { Unit::Hdcu } else { Unit::Icu }, i))
            .collect();
        assert_eq!(list.len(), 10);
        assert_eq!(list.restrict_to(Unit::Hdcu).len(), 5);
        assert_eq!(list.sample(3).len(), 4);
        assert_eq!(list.sample(1).len(), 10);
    }

    #[test]
    fn verdict_detection() {
        assert!(Verdict::WrongSignature.is_detected());
        assert!(Verdict::Hang.is_detected());
        assert!(!Verdict::Undetected.is_detected());
    }

    #[test]
    #[should_panic(expected = "stride")]
    fn zero_stride_panics() {
        let _ = FaultList::new().sample(0);
    }
}
