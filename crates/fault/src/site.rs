//! Fault-site vocabulary.

/// Stuck-at polarity of a fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Polarity {
    /// The faulty line permanently reads logic 0.
    StuckAt0,
    /// The faulty line permanently reads logic 1.
    StuckAt1,
}

impl Polarity {
    /// Both polarities.
    pub const BOTH: [Polarity; 2] = [Polarity::StuckAt0, Polarity::StuckAt1];

    /// Forces bit `bit` of `word` to the stuck value.
    pub fn force(self, word: u64, bit: u8) -> u64 {
        match self {
            Polarity::StuckAt0 => word & !(1 << bit),
            Polarity::StuckAt1 => word | (1 << bit),
        }
    }

    /// The stuck logic value as a bool.
    pub fn value(self) -> bool {
        self == Polarity::StuckAt1
    }
}

/// The CPU unit a fault site belongs to — the three units the paper's
/// experiments target.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Unit {
    /// Forwarding logic: the operand-bypass and result-collect muxes.
    Forwarding,
    /// Hazard Detection Control Unit: dependency comparators, stall and
    /// forwarding-select generation.
    Hdcu,
    /// Interrupt Control Unit: pending latches, cause mapping/encoding,
    /// recognition logic, EPC/depth capture.
    Icu,
}

impl Unit {
    /// All units.
    pub const ALL: [Unit; 3] = [Unit::Forwarding, Unit::Hdcu, Unit::Icu];
}

impl std::fmt::Display for Unit {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            Unit::Forwarding => "forwarding",
            Unit::Hdcu => "hdcu",
            Unit::Icu => "icu",
        };
        f.write_str(s)
    }
}

/// A gate pin within a unit's decomposition.
///
/// Mux elements describe the canonical one-hot AND–OR multiplexer used by
/// the forwarding network (see [`gates::mux_out`](crate::gates::mux_out)):
/// per output bit, one 2-input AND per source (data pin + select-branch
/// pin) feeding an N-input OR. Comparator elements describe the
/// XNOR-plus-AND-chain equality comparator of the HDCU (see
/// [`gates::cmp_eq`](crate::gates::cmp_eq)). The remaining elements are
/// control lines and latch pins referenced directly by the HDCU/ICU
/// models in `sbst-cpu`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)] // field meanings documented on each variant
pub enum Element {
    // ---- one-hot AND–OR multiplexer --------------------------------
    /// Data input pin of the AND gate for source `src`, output bit `bit`.
    MuxDataIn { src: u8, bit: u8 },
    /// Stem of the one-hot select line for source `src` (fans out to all
    /// bit AND gates).
    MuxSelStem { src: u8 },
    /// One fanout branch of the select line: source `src`, bit `bit`.
    MuxSelBranch { src: u8, bit: u8 },
    /// Output of the AND gate for source `src`, bit `bit`.
    MuxAndOut { src: u8, bit: u8 },
    /// Output of the final OR for bit `bit` (the mux output pin).
    MuxOrOut { bit: u8 },
    /// Internal node of the OR plane when it is synthesized as a chain of
    /// 2-input ORs (core B's resynthesized netlist): the accumulator
    /// output after source `node` has been OR-ed in, bit `bit`.
    MuxOrNode { node: u8, bit: u8 },

    // ---- equality comparator (HDCU) --------------------------------
    /// Per-bit XNOR output, bit `bit`.
    CmpXnorOut { bit: u8 },
    /// AND-chain internal node `node` (node 0 gates the valid input).
    CmpChainNode { node: u8 },
    /// Producer-valid input pin.
    CmpValidIn,
    /// Final comparator match output.
    CmpOut,

    // ---- HDCU control ------------------------------------------------
    /// Load-use stall request line `line`.
    StallLine { line: u8 },
    /// Forwarding-select encoder output line: consumer mux `mux`,
    /// select bit `bit`.
    SelEncLine { mux: u8, bit: u8 },

    // ---- ICU -----------------------------------------------------------
    /// Pending latch state output for cause index `cause`.
    PendLatchQ { cause: u8 },
    /// Pending latch set input for cause index `cause`.
    PendSetLine { cause: u8 },
    /// Mapping line from cause `cause` into the cause register.
    CauseMapLine { cause: u8 },
    /// Cause register bit `bit` (as read by software).
    CauseRegBit { bit: u8 },
    /// Mask register bit for cause `cause`.
    MaskBit { cause: u8 },
    /// Trap-recognition request line.
    RecognizeLine,
    /// EPC capture register bit `bit`.
    EpcBit { bit: u8 },
    /// Imprecision-depth counter bit `bit`.
    DepthBit { bit: u8 },

    // ---- extension: small-delay defect (paper §V future work) -------
    /// Transition/delay defect on the mux data path of source `src`,
    /// bit `bit`: when the selected bit toggles, the stale value is
    /// produced for one evaluation.
    MuxPathDelay { src: u8, bit: u8 },
}

/// One injectable fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FaultSite {
    /// Owning unit.
    pub unit: Unit,
    /// Unit instance (e.g. which of the forwarding muxes).
    pub instance: u16,
    /// Gate pin.
    pub element: Element,
    /// Stuck polarity (ignored for [`Element::MuxPathDelay`]).
    pub polarity: Polarity,
}

impl std::fmt::Display for FaultSite {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let p = match self.polarity {
            Polarity::StuckAt0 => "sa0",
            Polarity::StuckAt1 => "sa1",
        };
        write!(f, "{}[{}].{:?}/{}", self.unit, self.instance, self.element, p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn polarity_force() {
        assert_eq!(Polarity::StuckAt1.force(0, 3), 8);
        assert_eq!(Polarity::StuckAt0.force(0xff, 0), 0xfe);
    }

    #[test]
    fn polarity_value() {
        assert!(!Polarity::StuckAt0.value());
        assert!(Polarity::StuckAt1.value());
    }

    #[test]
    fn site_display() {
        let s = FaultSite {
            unit: Unit::Icu,
            instance: 0,
            element: Element::PendLatchQ { cause: 1 },
            polarity: Polarity::StuckAt0,
        };
        let txt = s.to_string();
        assert!(txt.contains("icu"), "{txt}");
        assert!(txt.contains("sa0"), "{txt}");
    }
}
