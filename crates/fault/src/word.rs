//! PPSFP word packing: grouping compatible faults into machine words.
//!
//! The bit-parallel grading tier in `sbst-campaign` evaluates up to 64
//! faults of one unit against a single tapped fault-free run — one
//! *lane* per bit of a machine word. Packing groups the collapsed fault
//! list into such words: faults are compatible when they target the same
//! unit (the campaign decides per lane whether the ride stays
//! architecturally convergent or the lane must fall back to the serial
//! path). Original list indices ride along so graded verdicts can be
//! merged back in order.

use crate::site::{FaultSite, Unit};

/// Number of lanes in one fault word (one per bit of a machine word).
pub const WORD_LANES: usize = 64;

/// A packed word of up to [`WORD_LANES`] faults from one unit.
///
/// Lanes keep their position in the source list (`index`) so a grader
/// can merge per-lane verdicts back into the flat verdict vector.
#[derive(Debug, Clone)]
pub struct FaultWord {
    unit: Unit,
    lanes: Vec<(usize, FaultSite)>,
}

impl FaultWord {
    /// The unit every lane of this word targets.
    pub fn unit(&self) -> Unit {
        self.unit
    }

    /// The lanes: `(source-list index, site)`, in list order.
    pub fn lanes(&self) -> &[(usize, FaultSite)] {
        &self.lanes
    }

    /// Number of occupied lanes (1..=[`WORD_LANES`]).
    pub fn len(&self) -> usize {
        self.lanes.len()
    }

    /// Whether the word holds no lanes (never produced by
    /// [`pack_fault_words`]; kept for API completeness).
    pub fn is_empty(&self) -> bool {
        self.lanes.is_empty()
    }
}

fn unit_index(unit: Unit) -> usize {
    match unit {
        Unit::Forwarding => 0,
        Unit::Hdcu => 1,
        Unit::Icu => 2,
    }
}

/// Packs `sites` into per-unit [`FaultWord`]s, preserving list order
/// within each unit. Every site lands in exactly one lane; words are
/// closed at [`WORD_LANES`] lanes, so a non-multiple-of-64 unit
/// population simply ends with a partially filled word (a single fault
/// yields a single-lane word, an empty list yields no words).
pub fn pack_fault_words(sites: &[FaultSite]) -> Vec<FaultWord> {
    let mut words: Vec<FaultWord> = Vec::new();
    let mut open: [Option<usize>; 3] = [None; 3];
    for (index, &site) in sites.iter().enumerate() {
        let slot = unit_index(site.unit);
        let w = match open[slot] {
            Some(w) if words[w].lanes.len() < WORD_LANES => w,
            _ => {
                words.push(FaultWord { unit: site.unit, lanes: Vec::new() });
                open[slot] = Some(words.len() - 1);
                words.len() - 1
            }
        };
        words[w].lanes.push((index, site));
    }
    words
}

/// Mean lane occupancy of `words` as a fraction of [`WORD_LANES`]
/// (0.0 for an empty packing) — the campaign's pack-density telemetry.
pub fn pack_density(words: &[FaultWord]) -> f64 {
    if words.is_empty() {
        return 0.0;
    }
    let occupied: usize = words.iter().map(FaultWord::len).sum();
    occupied as f64 / (words.len() * WORD_LANES) as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::site::{Element, Polarity};

    fn site(unit: Unit, instance: u16, bit: u8) -> FaultSite {
        FaultSite {
            unit,
            instance,
            element: Element::MuxDataIn { src: 0, bit },
            polarity: Polarity::StuckAt0,
        }
    }

    #[test]
    fn empty_list_packs_to_no_words() {
        assert!(pack_fault_words(&[]).is_empty());
        assert_eq!(pack_density(&[]), 0.0);
    }

    #[test]
    fn single_fault_packs_to_single_lane_word() {
        let words = pack_fault_words(&[site(Unit::Forwarding, 0, 0)]);
        assert_eq!(words.len(), 1);
        assert_eq!(words[0].len(), 1);
        assert_eq!(words[0].lanes()[0].0, 0);
        assert!(!words[0].is_empty());
    }

    #[test]
    fn words_close_at_64_lanes() {
        let sites: Vec<FaultSite> =
            (0..130).map(|i| site(Unit::Forwarding, (i / 64) as u16, (i % 64) as u8)).collect();
        let words = pack_fault_words(&sites);
        assert_eq!(words.len(), 3);
        assert_eq!(words[0].len(), 64);
        assert_eq!(words[1].len(), 64);
        assert_eq!(words[2].len(), 2, "non-multiple-of-64 tail word");
        // Original indices preserved in order.
        assert_eq!(words[1].lanes()[0].0, 64);
        assert_eq!(words[2].lanes()[1].0, 129);
    }

    #[test]
    fn units_never_share_a_word() {
        let sites = vec![
            site(Unit::Forwarding, 0, 0),
            site(Unit::Icu, 0, 0),
            site(Unit::Forwarding, 0, 1),
            site(Unit::Hdcu, 0, 0),
            site(Unit::Forwarding, 0, 2),
        ];
        let words = pack_fault_words(&sites);
        assert_eq!(words.len(), 3);
        let fwd = words.iter().find(|w| w.unit() == Unit::Forwarding).unwrap();
        assert_eq!(
            fwd.lanes().iter().map(|&(i, _)| i).collect::<Vec<_>>(),
            vec![0, 2, 4],
            "interleaved units keep their own word and indices"
        );
        // Every input index appears exactly once across all words.
        let mut all: Vec<usize> =
            words.iter().flat_map(|w| w.lanes().iter().map(|&(i, _)| i)).collect();
        all.sort_unstable();
        assert_eq!(all, (0..sites.len()).collect::<Vec<_>>());
    }

    #[test]
    fn density_reflects_occupancy() {
        let sites: Vec<FaultSite> =
            (0..96).map(|i| site(Unit::Forwarding, 0, (i % 64) as u8)).collect();
        let words = pack_fault_words(&sites);
        assert_eq!(words.len(), 2);
        assert!((pack_density(&words) - 0.75).abs() < 1e-12);
    }
}
