//! Fault-aware evaluators for the combinational primitives of the
//! modeled units.
//!
//! Each evaluator computes the output of a small gate network with an
//! optional stuck-at fault on one of its pins, *analytically* — the
//! network is never instantiated as a netlist, so evaluation is O(width)
//! regardless of how many fault sites the network exposes.

use crate::{Element, Polarity};

/// Evaluates the canonical one-hot AND–OR multiplexer.
///
/// The network, per output bit `b`:
///
/// ```text
/// and[s][b] = data[s][b] AND sel_branch[s][b]     (2-input AND per source)
/// out[b]    = OR over s of and[s][b]              (N-input OR)
/// ```
///
/// where the `sel_branch[s]` lines all fan out from a one-hot decoded
/// `sel_stem[s]`. `inputs[sel]` is the nominally selected source.
///
/// A stuck-at on a select stem can switch *two* sources on at once, in
/// which case the OR plane produces the bitwise OR of both — exactly the
/// behaviour a real AND–OR mux exhibits.
///
/// `width` is the datapath width in bits (≤ 64). Bits above `width` are
/// masked off.
///
/// # Panics
///
/// Panics if `sel >= inputs.len()` or `width > 64`.
pub fn mux_out(
    inputs: &[u64],
    sel: usize,
    width: u8,
    fault: Option<(Element, Polarity)>,
) -> u64 {
    assert!(sel < inputs.len(), "mux select {sel} out of range");
    assert!(width as usize <= 64);
    let mask = if width == 64 { u64::MAX } else { (1u64 << width) - 1 };

    // Fast path: no fault in this mux instance.
    let Some((element, pol)) = fault else {
        return inputs[sel] & mask;
    };

    // One-hot select with possible stem fault.
    let mut onehot: Vec<bool> = (0..inputs.len()).map(|s| s == sel).collect();
    if let Element::MuxSelStem { src } = element {
        if (src as usize) < onehot.len() {
            onehot[src as usize] = pol.value();
        }
    }

    let mut out = 0u64;
    for (s, (&data, &on)) in inputs.iter().zip(&onehot).enumerate() {
        let mut data = data & mask;
        // Per-bit data-input fault.
        if let Element::MuxDataIn { src, bit } = element {
            if src as usize == s && bit < width {
                data = pol.force(data, bit);
            }
        }
        // Per-bit select-branch fault: only that bit's AND gate sees the
        // forced select.
        let mut and = if on { data } else { 0 };
        if let Element::MuxSelBranch { src, bit } = element {
            if src as usize == s && bit < width {
                let bit_on = pol.value();
                if bit_on {
                    and |= data & (1 << bit);
                } else {
                    and &= !(1 << bit);
                }
            }
        }
        // AND-output fault.
        if let Element::MuxAndOut { src, bit } = element {
            if src as usize == s && bit < width {
                and = pol.force(and, bit);
            }
        }
        out |= and;
        // OR-chain internal node fault (resynthesized OR plane): force the
        // accumulator bit right after source `s` has been OR-ed in.
        if let Element::MuxOrNode { node, bit } = element {
            if node as usize == s && bit < width {
                out = pol.force(out, bit);
            }
        }
    }

    // OR-output fault.
    if let Element::MuxOrOut { bit } = element {
        if bit < width {
            out = pol.force(out, bit);
        }
    }
    out & mask
}

/// Evaluates the HDCU equality comparator with valid gating.
///
/// The network:
///
/// ```text
/// xnor[b]  = NOT (a[b] XOR b[b])          for b in 0..bits
/// chain[0] = valid
/// chain[i] = chain[i-1] AND xnor[i-1]     (AND chain)
/// out      = chain[bits]
/// ```
///
/// [`Element::CmpChainNode`]`{node}` faults the output of `chain[node]`;
/// node 0 therefore behaves like a fault on the gated valid.
pub fn cmp_eq(
    a: u32,
    b: u32,
    bits: u8,
    valid: bool,
    fault: Option<(Element, Polarity)>,
) -> bool {
    let mut valid = valid;
    if let Some((Element::CmpValidIn, pol)) = fault {
        valid = pol.value();
    }
    let mut chain = valid;
    if let Some((Element::CmpChainNode { node: 0 }, pol)) = fault {
        chain = pol.value();
    }
    for i in 0..bits {
        let mut xnor = (a >> i) & 1 == (b >> i) & 1;
        if let Some((Element::CmpXnorOut { bit }, pol)) = fault {
            if bit == i {
                xnor = pol.value();
            }
        }
        chain = chain && xnor;
        if let Some((Element::CmpChainNode { node }, pol)) = fault {
            if node == i + 1 {
                chain = pol.value();
            }
        }
    }
    if let Some((Element::CmpOut, pol)) = fault {
        chain = pol.value();
    }
    chain
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Polarity::{StuckAt0, StuckAt1};

    const INPUTS: [u64; 5] = [0x11, 0x22, 0x44, 0x88, 0xf0];

    #[test]
    fn fault_free_mux_selects() {
        for (s, &v) in INPUTS.iter().enumerate() {
            assert_eq!(mux_out(&INPUTS, s, 8, None), v);
        }
    }

    #[test]
    fn width_masks_high_bits() {
        assert_eq!(mux_out(&[0x1ff], 0, 8, None), 0xff);
        assert_eq!(mux_out(&[u64::MAX], 0, 64, None), u64::MAX);
    }

    #[test]
    fn data_in_fault_only_affects_its_source() {
        let f = Some((Element::MuxDataIn { src: 1, bit: 0 }, StuckAt1));
        assert_eq!(mux_out(&INPUTS, 1, 8, f), 0x23, "selected source perturbed");
        assert_eq!(mux_out(&INPUTS, 0, 8, f), 0x11, "other source untouched");
    }

    #[test]
    fn sel_stem_sa1_wires_or_two_sources() {
        let f = Some((Element::MuxSelStem { src: 2 }, StuckAt1));
        assert_eq!(mux_out(&INPUTS, 0, 8, f), 0x11 | 0x44);
        // Selecting the faulty source itself is unchanged.
        assert_eq!(mux_out(&INPUTS, 2, 8, f), 0x44);
    }

    #[test]
    fn sel_stem_sa0_kills_its_source() {
        let f = Some((Element::MuxSelStem { src: 2 }, StuckAt0));
        assert_eq!(mux_out(&INPUTS, 2, 8, f), 0, "selected source gated off");
        assert_eq!(mux_out(&INPUTS, 1, 8, f), 0x22);
    }

    #[test]
    fn sel_branch_fault_affects_one_bit() {
        let f = Some((Element::MuxSelBranch { src: 2, bit: 2 }, StuckAt1));
        // Source 0 selected; bit 2 of source 2 (0x44 has bit 2 set) leaks.
        assert_eq!(mux_out(&INPUTS, 0, 8, f), 0x11 | 0x04);
        let f0 = Some((Element::MuxSelBranch { src: 2, bit: 6 }, StuckAt0));
        // Source 2 selected; its bit 6 AND gate is off.
        assert_eq!(mux_out(&INPUTS, 2, 8, f0), 0x04);
    }

    #[test]
    fn and_out_and_or_out_faults() {
        let f = Some((Element::MuxAndOut { src: 0, bit: 7 }, StuckAt1));
        assert_eq!(mux_out(&INPUTS, 1, 8, f), 0x22 | 0x80, "dead AND output leaks");
        let f = Some((Element::MuxOrOut { bit: 0 }, StuckAt0));
        assert_eq!(mux_out(&INPUTS, 0, 8, f), 0x10);
    }

    #[test]
    fn or_chain_node_fault() {
        // Node 1 is forced after sources 0 and 1 are accumulated; later
        // sources can still set the bit again for SA0.
        let f = Some((Element::MuxOrNode { node: 1, bit: 0 }, StuckAt0));
        assert_eq!(mux_out(&INPUTS, 0, 8, f), 0x10, "bit 0 of source 0 killed at node 1");
        assert_eq!(mux_out(&INPUTS, 4, 8, f), 0xf0, "source 4 ORs in after the fault");
        let f = Some((Element::MuxOrNode { node: 4, bit: 1 }, StuckAt1));
        assert_eq!(mux_out(&INPUTS, 0, 8, f), 0x13);
    }

    #[test]
    fn fault_outside_width_is_inert() {
        let f = Some((Element::MuxDataIn { src: 0, bit: 40 }, StuckAt1));
        assert_eq!(mux_out(&INPUTS, 0, 32, f), 0x11);
    }

    #[test]
    fn cmp_fault_free() {
        assert!(cmp_eq(0b10110, 0b10110, 5, true, None));
        assert!(!cmp_eq(0b10110, 0b10111, 5, true, None));
        assert!(!cmp_eq(3, 3, 5, false, None), "invalid producer never matches");
    }

    #[test]
    fn cmp_xnor_fault() {
        let f = Some((Element::CmpXnorOut { bit: 0 }, StuckAt1));
        assert!(cmp_eq(0, 1, 5, true, f), "difference masked -> false match");
        let f = Some((Element::CmpXnorOut { bit: 3 }, StuckAt0));
        assert!(!cmp_eq(7, 7, 5, true, f), "match killed");
    }

    #[test]
    fn cmp_chain_and_out_faults() {
        let f = Some((Element::CmpChainNode { node: 0 }, StuckAt1));
        assert!(cmp_eq(9, 9, 5, false, f), "valid gating bypassed");
        let f = Some((Element::CmpOut, StuckAt0));
        assert!(!cmp_eq(9, 9, 5, true, f));
        let f = Some((Element::CmpOut, StuckAt1));
        assert!(cmp_eq(1, 2, 5, true, f));
    }

    #[test]
    fn cmp_valid_in_fault() {
        let f = Some((Element::CmpValidIn, StuckAt0));
        assert!(!cmp_eq(5, 5, 5, true, f));
    }
}
