//! Equivalence of the analytic fault evaluators against a brute-force
//! gate-netlist reference.
//!
//! The production evaluators in [`sbst_fault::gates`] compute the faulty
//! output of the AND–OR mux / comparator chain *analytically* (O(width)
//! regardless of fault count). These tests rebuild the same networks as
//! explicit gate netlists, inject the stuck-at on the corresponding pin,
//! evaluate gate by gate, and require bit-exact agreement on random
//! inputs for *every* fault site — the evidence that the fast path
//! faithfully implements the netlist semantics the paper's commercial
//! fault simulator would use.

use proptest::prelude::*;
use sbst_fault::{gates, Element, Polarity};

/// Brute-force netlist model of the one-hot AND–OR multiplexer.
///
/// Structure per output bit `b`:
/// `and[s][b] = data_pin(s,b) AND sel_branch_pin(s,b)`;
/// `or` accumulates in source order (`MuxOrNode` fault points);
/// `out[b]` is the final OR output (`MuxOrOut` fault point).
fn netlist_mux(
    inputs: &[u64],
    sel: Option<usize>,
    width: u8,
    fault: Option<(Element, Polarity)>,
) -> u64 {
    let forced = |element_matches: bool, value: bool, pol: Polarity| -> bool {
        if element_matches {
            pol.value()
        } else {
            value
        }
    };
    let mut out = 0u64;
    for b in 0..width {
        // One-hot select stems (with stem fault).
        let mut acc = false;
        for (s, &data) in inputs.iter().enumerate() {
            let mut stem = sel == Some(s);
            if let Some((Element::MuxSelStem { src }, pol)) = fault {
                if src as usize == s {
                    stem = pol.value();
                }
            }
            // Select branch pin for this bit.
            let mut branch = stem;
            if let Some((Element::MuxSelBranch { src, bit }, pol)) = fault {
                branch = forced(src as usize == s && bit == b, branch, pol);
            }
            // Data pin.
            let mut d = (data >> b) & 1 == 1;
            if let Some((Element::MuxDataIn { src, bit }, pol)) = fault {
                d = forced(src as usize == s && bit == b, d, pol);
            }
            // AND gate.
            let mut and = d && branch;
            if let Some((Element::MuxAndOut { src, bit }, pol)) = fault {
                and = forced(src as usize == s && bit == b, and, pol);
            }
            // OR chain accumulation.
            acc = acc || and;
            if let Some((Element::MuxOrNode { node, bit }, pol)) = fault {
                acc = forced(node as usize == s && bit == b, acc, pol);
            }
        }
        if let Some((Element::MuxOrOut { bit }, pol)) = fault {
            acc = forced(bit == b, acc, pol);
        }
        if acc {
            out |= 1 << b;
        }
    }
    out
}

/// Brute-force netlist model of the XNOR + AND-chain comparator.
fn netlist_cmp(
    a: u32,
    b: u32,
    bits: u8,
    valid: bool,
    fault: Option<(Element, Polarity)>,
) -> bool {
    let forced = |m: bool, v: bool, pol: Polarity| if m { pol.value() } else { v };
    let mut valid = valid;
    if let Some((Element::CmpValidIn, pol)) = fault {
        valid = pol.value();
    }
    let mut chain = valid;
    if let Some((Element::CmpChainNode { node }, pol)) = fault {
        chain = forced(node == 0, chain, pol);
    }
    for i in 0..bits {
        let mut xnor = (a >> i) & 1 == (b >> i) & 1;
        if let Some((Element::CmpXnorOut { bit }, pol)) = fault {
            xnor = forced(bit == i, xnor, pol);
        }
        chain = chain && xnor;
        if let Some((Element::CmpChainNode { node }, pol)) = fault {
            chain = forced(node == i + 1, chain, pol);
        }
    }
    if let Some((Element::CmpOut, pol)) = fault {
        chain = pol.value();
    }
    chain
}

/// Every mux fault site for `srcs` sources and `width` bits, including
/// the OR-chain nodes.
fn all_mux_sites(srcs: u8, width: u8) -> Vec<(Element, Polarity)> {
    let mut sites = Vec::new();
    for pol in Polarity::BOTH {
        for src in 0..srcs {
            sites.push((Element::MuxSelStem { src }, pol));
            for bit in 0..width {
                sites.push((Element::MuxDataIn { src, bit }, pol));
                sites.push((Element::MuxSelBranch { src, bit }, pol));
                sites.push((Element::MuxAndOut { src, bit }, pol));
                sites.push((Element::MuxOrNode { node: src, bit }, pol));
            }
        }
        for bit in 0..width {
            sites.push((Element::MuxOrOut { bit }, pol));
        }
    }
    sites
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn mux_analytic_matches_netlist_for_every_fault(
        inputs in prop::collection::vec(any::<u64>(), 5),
        sel in 0usize..5,
        width in prop::sample::select(vec![8u8, 32, 64]),
    ) {
        for (element, polarity) in all_mux_sites(5, width) {
            let fast = gates::mux_out(&inputs, sel, width, Some((element, polarity)));
            let slow = netlist_mux(&inputs, Some(sel), width, Some((element, polarity)));
            prop_assert_eq!(
                fast, slow,
                "mismatch for {:?}/{:?} sel={} width={}",
                element, polarity, sel, width
            );
        }
    }

    #[test]
    fn mux_fault_free_matches_netlist(
        inputs in prop::collection::vec(any::<u64>(), 2..8),
        width in prop::sample::select(vec![8u8, 32, 64]),
        sel_raw in any::<usize>(),
    ) {
        let sel = sel_raw % inputs.len();
        prop_assert_eq!(
            gates::mux_out(&inputs, sel, width, None),
            netlist_mux(&inputs, Some(sel), width, None)
        );
    }

    #[test]
    fn cmp_analytic_matches_netlist_for_every_fault(
        a in any::<u32>(),
        b in any::<u32>(),
        bits in 1u8..8,
        valid in any::<bool>(),
    ) {
        let mut sites = vec![(Element::CmpValidIn, Polarity::StuckAt0), (Element::CmpOut, Polarity::StuckAt0)];
        for pol in Polarity::BOTH {
            sites.push((Element::CmpValidIn, pol));
            sites.push((Element::CmpOut, pol));
            for bit in 0..bits {
                sites.push((Element::CmpXnorOut { bit }, pol));
            }
            for node in 0..=bits {
                sites.push((Element::CmpChainNode { node }, pol));
            }
        }
        for (element, polarity) in sites {
            prop_assert_eq!(
                gates::cmp_eq(a, b, bits, valid, Some((element, polarity))),
                netlist_cmp(a, b, bits, valid, Some((element, polarity))),
                "mismatch for {:?}/{:?}", element, polarity
            );
        }
    }

    #[test]
    fn cmp_fault_free_matches_netlist(
        a in any::<u32>(),
        b in any::<u32>(),
        bits in 1u8..33,
        valid in any::<bool>(),
    ) {
        prop_assert_eq!(
            gates::cmp_eq(a, b, bits, valid, None),
            netlist_cmp(a, b, bits, valid, None)
        );
    }
}

#[test]
fn single_fault_changes_at_most_its_cone() {
    // A stuck-at on (src s, bit b) pins can only affect output bit b.
    let inputs = [0x12u64, 0x34, 0x56, 0x78, 0x9a];
    for (element, polarity) in all_mux_sites(5, 8) {
        let affected_bit = match element {
            Element::MuxDataIn { bit, .. }
            | Element::MuxSelBranch { bit, .. }
            | Element::MuxAndOut { bit, .. }
            | Element::MuxOrNode { bit, .. }
            | Element::MuxOrOut { bit } => Some(bit),
            _ => None, // select stems fan out to all bits
        };
        if let Some(bit) = affected_bit {
            for sel in 0..5 {
                let clean = gates::mux_out(&inputs, sel, 8, None);
                let faulty = gates::mux_out(&inputs, sel, 8, Some((element, polarity)));
                let diff = clean ^ faulty;
                assert!(
                    diff & !(1 << bit) == 0,
                    "{element:?}/{polarity:?} leaked outside bit {bit}: {diff:#x}"
                );
            }
        }
    }
}
