//! The SoC address map.
//!
//! ```text
//! 0x0000_0000 .. 0x0080_0000   Flash (code + rodata), shared, via bus
//! 0x1000_0000 .. +16 KiB       Instruction TCM, core-private, 1 cycle
//! 0x1800_0000 .. +16 KiB       Data TCM, core-private, 1 cycle
//! 0x2000_0000 .. +64 KiB       System SRAM, shared, via bus
//! ```
//!
//! Code-position scenarios place test programs at "low", "mid" and "high"
//! Flash addresses (paper §IV-C).

/// Base address of the Flash region.
pub const FLASH_BASE: u32 = 0x0000_0000;
/// Size of the Flash region in bytes.
pub const FLASH_SIZE: u32 = 0x0080_0000;
/// Base address of the per-core instruction TCM.
pub const ITCM_BASE: u32 = 0x1000_0000;
/// Base address of the per-core data TCM.
pub const DTCM_BASE: u32 = 0x1800_0000;
/// Size of each TCM in bytes.
pub const TCM_SIZE: u32 = 16 * 1024;
/// Base address of the shared system SRAM.
pub const SRAM_BASE: u32 = 0x2000_0000;
/// Size of the shared system SRAM in bytes.
pub const SRAM_SIZE: u32 = 64 * 1024;
/// Base address of the memory-mapped peripherals (watchdog).
pub const MMIO_BASE: u32 = 0x4000_0000;
/// Size of the peripheral window in bytes.
pub const MMIO_SIZE: u32 = 0x1000;

/// "Low" Flash code position used by scenario sweeps.
pub const FLASH_LOW: u32 = 0x0000_0400;
/// "Mid" Flash code position.
pub const FLASH_MID: u32 = 0x0040_0000;
/// "High" Flash code position.
pub const FLASH_HIGH: u32 = 0x007c_0000;

/// The memory region an address belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Region {
    /// Shared Flash (via the system bus).
    Flash,
    /// Core-private instruction TCM.
    Itcm,
    /// Core-private data TCM.
    Dtcm,
    /// Shared system SRAM (via the system bus).
    Sram,
    /// Memory-mapped peripherals — the watchdog (via the system bus).
    Mmio,
    /// No device responds at this address.
    Unmapped,
}

impl Region {
    /// Region for a byte address.
    pub fn of(addr: u32) -> Region {
        if (FLASH_BASE..FLASH_BASE + FLASH_SIZE).contains(&addr) {
            Region::Flash
        } else if (ITCM_BASE..ITCM_BASE + TCM_SIZE).contains(&addr) {
            Region::Itcm
        } else if (DTCM_BASE..DTCM_BASE + TCM_SIZE).contains(&addr) {
            Region::Dtcm
        } else if (SRAM_BASE..SRAM_BASE + SRAM_SIZE).contains(&addr) {
            Region::Sram
        } else if (MMIO_BASE..MMIO_BASE + MMIO_SIZE).contains(&addr) {
            Region::Mmio
        } else {
            Region::Unmapped
        }
    }

    /// Whether accesses to this region go over the shared system bus.
    pub fn is_shared(self) -> bool {
        matches!(self, Region::Flash | Region::Sram | Region::Mmio)
    }

    /// Whether the region is core-private (TCMs).
    pub fn is_private(self) -> bool {
        matches!(self, Region::Itcm | Region::Dtcm)
    }
}

impl std::fmt::Display for Region {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            Region::Flash => "flash",
            Region::Itcm => "itcm",
            Region::Dtcm => "dtcm",
            Region::Sram => "sram",
            Region::Mmio => "mmio",
            Region::Unmapped => "unmapped",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn region_classification() {
        assert_eq!(Region::of(0), Region::Flash);
        assert_eq!(Region::of(FLASH_HIGH), Region::Flash);
        assert_eq!(Region::of(ITCM_BASE), Region::Itcm);
        assert_eq!(Region::of(ITCM_BASE + TCM_SIZE - 4), Region::Itcm);
        assert_eq!(Region::of(ITCM_BASE + TCM_SIZE), Region::Unmapped);
        assert_eq!(Region::of(DTCM_BASE), Region::Dtcm);
        assert_eq!(Region::of(SRAM_BASE), Region::Sram);
        assert_eq!(Region::of(MMIO_BASE), Region::Mmio);
        assert_eq!(Region::of(MMIO_BASE + MMIO_SIZE), Region::Unmapped);
        assert_eq!(Region::of(0xf000_0000), Region::Unmapped);
    }

    #[test]
    fn sharing() {
        assert!(Region::Flash.is_shared());
        assert!(Region::Sram.is_shared());
        assert!(Region::Itcm.is_private());
        assert!(!Region::Itcm.is_shared());
    }
}
