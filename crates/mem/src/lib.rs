#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! # sbst-mem — the memory subsystem of the simulated SoC
//!
//! Models every storage and interconnect element the DATE 2020 paper's
//! triple-core automotive SoC exposes to its Software Test Library:
//!
//! * [`FlashImage`]/[`FlashCtl`] — shared program Flash with an 8-cycle
//!   access time and a prefetch *row buffer* that makes code position and
//!   alignment observable in timing;
//! * [`Bus`] — the single shared system bus with a round-robin arbiter;
//!   its serialization of concurrent fetches is the root cause of the
//!   multi-core nondeterminism the paper addresses;
//! * [`Cache`] — private per-core L1 instruction (8 KiB) and data (4 KiB)
//!   caches, write-through, with both write-allocate and no-write-allocate
//!   policies and whole-cache invalidation;
//! * [`Tcm`] — per-core instruction/data Tightly-Coupled Memories, the
//!   competing execution strategy of the paper's Table IV;
//! * [`Sram`] — shared system SRAM for mailboxes and scheduler state;
//! * [`TrafficInjector`] — a SafeTI-style programmable adversarial bus
//!   master for interference testing, plus the [`SeuScheduler`] transient
//!   bit-flip plane and the shared deterministic [`Prng`] they (and the
//!   scenario axes) draw from.
//!
//! ## Example: a cache miss serviced over the contended bus
//!
//! ```
//! use sbst_mem::{Bus, BusRequest, Cache, CacheConfig, FlashCtl, FlashImage,
//!                FlashTiming, Sram};
//!
//! let image = FlashImage::new().freeze();
//! let mut bus = Bus::new(FlashCtl::new(image, FlashTiming::default()),
//!                        Sram::default(), 1);
//! let mut icache = Cache::new(CacheConfig::icache_8k());
//!
//! // Miss: fetch the whole line over the bus, then install it.
//! assert_eq!(icache.read(0x100), None);
//! bus.request(0, BusRequest::read_burst(icache.line_base(0x100), 8));
//! let line = loop {
//!     bus.step();
//!     if let Some(resp) = bus.response(0) {
//!         break resp.words().to_vec();
//!     }
//! };
//! icache.fill(0x100, &line);
//! assert!(icache.read(0x100).is_some());
//! ```

mod arbiter;
mod bounds;
mod bus;
mod cache;
mod cow;
mod flash;
mod injector;
mod map;
mod prng;
mod seu;
mod sram;
mod tcm;
mod watchdog;

pub use arbiter::{Arbiter, ArbiterKind, FixedPriority, RoundRobin, Tdma};
pub use bounds::BoundParams;
pub use bus::{Bus, BusOp, BusRequest, BusResponse, BusStats, ReqKind, MAX_BURST};
pub use cache::{Cache, CacheConfig, CacheStats, WritePolicy};
pub use cow::{CowVec, COW_PAGE};
pub use flash::{FlashCtl, FlashImage, FlashTiming, ERASED};
pub use injector::{
    injector_scratch_base, InjectorPattern, InjectorProgram, InjectorStats, TrafficInjector,
    INJECTOR_SCRATCH_BYTES,
};
pub use map::{
    Region, DTCM_BASE, FLASH_BASE, FLASH_HIGH, FLASH_LOW, FLASH_MID, FLASH_SIZE, ITCM_BASE,
    MMIO_BASE, MMIO_SIZE, SRAM_BASE, SRAM_SIZE, TCM_SIZE,
};
pub use prng::Prng;
pub use seu::{SeuConfig, SeuEvent, SeuScheduler, SeuStrike, SeuTarget};
pub use sram::Sram;
pub use tcm::Tcm;
pub use watchdog::{Watchdog, WDG_KICK, WDG_LOAD, WDG_STATUS};
