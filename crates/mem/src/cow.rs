//! Versioned copy-on-write backing storage.
//!
//! The warm-start campaign path clones the whole [`Soc`] once per fault
//! tail; with plain `Vec` backing arrays that clone memcpy's every
//! memory in the system even though a fault tail dirties only a handful
//! of SRAM/cache locations. [`CowVec`] keeps the elements in fixed-size
//! pages behind [`Arc`]s: a clone is a vector of pointer bumps, and only
//! pages actually written after the clone are materialized
//! ([`Arc::make_mut`]). Two descendants of the same snapshot therefore
//! share every untouched page, which also makes whole-store equality
//! checks (`fast_eq`) near-free — pages still shared compare by pointer.
//!
//! The page size is 64 elements: big enough that the per-page `Arc`
//! overhead disappears against the payload, small enough that one dirty
//! mailbox word doesn't materialize a whole memory.
//!
//! [`Soc`]: ../sbst_soc/index.html

use std::sync::Arc;

/// Elements per page.
pub const COW_PAGE: usize = 64;

/// A fixed-length vector of `T` stored as copy-on-write pages.
///
/// Cloning is O(pages) pointer bumps; the first write to a page after a
/// clone materializes (deep-copies) just that page. The `version`
/// counter increments on every mutating access, keying dirty-page
/// deltas to the snapshot they diverged from.
#[derive(Debug, Clone)]
pub struct CowVec<T> {
    pages: Vec<Arc<[T; COW_PAGE]>>,
    len: usize,
    version: u64,
}

impl<T: Clone + PartialEq> CowVec<T> {
    /// A `CowVec` of `len` copies of `fill`.
    pub fn new(len: usize, fill: T) -> CowVec<T> {
        let n_pages = len.div_ceil(COW_PAGE);
        let page: Arc<[T; COW_PAGE]> = Arc::new(std::array::from_fn(|_| fill.clone()));
        // All-equal pages can share one allocation until first write.
        CowVec { pages: vec![page; n_pages], len, version: 0 }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the vector is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of backing pages.
    pub fn page_count(&self) -> usize {
        self.pages.len()
    }

    /// Mutation counter: increments on every write access.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Element `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len`, like slice indexing.
    #[inline]
    pub fn get(&self, i: usize) -> &T {
        assert!(i < self.len, "CowVec index {i} out of range {}", self.len);
        &self.pages[i / COW_PAGE][i % COW_PAGE]
    }

    /// Mutable access to element `i`, materializing its page if shared.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len`.
    #[inline]
    pub fn get_mut(&mut self, i: usize) -> &mut T {
        assert!(i < self.len, "CowVec index {i} out of range {}", self.len);
        self.version += 1;
        &mut Arc::make_mut(&mut self.pages[i / COW_PAGE])[i % COW_PAGE]
    }

    /// Writes element `i`, skipping the page copy (and the version bump)
    /// when the stored value is already equal — the common case for
    /// write-through traffic that re-stores unchanged words.
    #[inline]
    pub fn set(&mut self, i: usize, value: T) {
        if *self.get(i) != value {
            *self.get_mut(i) = value;
        }
    }

    /// Iterates the elements in order.
    pub fn iter(&self) -> impl Iterator<Item = &T> {
        self.pages.iter().flat_map(|p| p.iter()).take(self.len)
    }

    /// Pages still physically shared with `other` (same allocation).
    pub fn shared_pages_with(&self, other: &CowVec<T>) -> usize {
        self.pages
            .iter()
            .zip(&other.pages)
            .filter(|(a, b)| Arc::ptr_eq(a, b))
            .count()
    }

    /// Pages that have diverged from `other` (by pointer; an upper bound
    /// on content differences).
    pub fn delta_pages_with(&self, other: &CowVec<T>) -> usize {
        self.pages.len().max(other.pages.len()) - self.shared_pages_with(other)
    }

    /// Content equality with a pointer-compare fast path per page.
    pub fn fast_eq(&self, other: &CowVec<T>) -> bool {
        self.len == other.len
            && self
                .pages
                .iter()
                .zip(&other.pages)
                .all(|(a, b)| Arc::ptr_eq(a, b) || a[..] == b[..])
    }

    /// Re-allocates every page, severing all sharing — the deep-copy
    /// behavior of the pre-COW `Vec` backing (differential-test hook).
    pub fn unshare(&mut self) {
        for page in &mut self.pages {
            *page = Arc::new((**page).clone());
        }
    }
}

impl<T: Clone + PartialEq> PartialEq for CowVec<T> {
    fn eq(&self, other: &CowVec<T>) -> bool {
        self.fast_eq(other)
    }
}

impl<T: Clone + PartialEq> std::ops::Index<usize> for CowVec<T> {
    type Output = T;

    #[inline]
    fn index(&self, i: usize) -> &T {
        self.get(i)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_and_len() {
        let mut v = CowVec::new(130, 0u32); // 3 pages, last partial
        assert_eq!(v.len(), 130);
        assert_eq!(v.page_count(), 3);
        v.set(0, 7);
        v.set(129, 9);
        assert_eq!(*v.get(0), 7);
        assert_eq!(*v.get(129), 9);
        assert_eq!(*v.get(64), 0);
        assert_eq!(v.iter().copied().sum::<u32>(), 16);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_panics() {
        let v = CowVec::new(130, 0u32);
        let _ = v.get(130);
    }

    #[test]
    fn clone_shares_until_written() {
        let mut a = CowVec::new(256, 0u32);
        a.set(5, 1);
        let mut b = a.clone();
        assert_eq!(b.shared_pages_with(&a), 4);
        b.set(70, 2); // dirties page 1 only
        assert_eq!(b.shared_pages_with(&a), 3);
        assert_eq!(b.delta_pages_with(&a), 1);
        // Isolation both ways.
        assert_eq!(*a.get(70), 0);
        assert_eq!(*b.get(5), 1);
    }

    #[test]
    fn identical_write_keeps_sharing() {
        let mut a = CowVec::new(256, 0u32);
        a.set(5, 1);
        let v0 = a.version();
        let mut b = a.clone();
        b.set(5, 1); // same value: no copy, no version bump
        assert_eq!(b.shared_pages_with(&a), 4);
        assert_eq!(b.version(), v0);
        b.set(5, 2);
        assert_eq!(b.shared_pages_with(&a), 3);
        assert!(b.version() > v0);
    }

    #[test]
    fn fast_eq_is_content_equality() {
        let mut a = CowVec::new(200, 0u32);
        a.set(100, 3);
        let mut b = a.clone();
        assert!(a.fast_eq(&b));
        b.set(100, 4);
        assert!(!a.fast_eq(&b));
        b.set(100, 3); // back to equal content, page no longer shared
        assert_eq!(b.shared_pages_with(&a), a.page_count() - 1);
        assert!(a.fast_eq(&b));
        assert_eq!(a, b);
    }

    #[test]
    fn unshare_severs_all_pages_without_changing_content() {
        let mut a = CowVec::new(256, 7u32);
        a.set(9, 1);
        let mut b = a.clone();
        b.unshare();
        assert_eq!(b.shared_pages_with(&a), 0);
        assert!(a.fast_eq(&b));
        b.set(10, 2);
        assert_eq!(*a.get(10), 7);
    }

    #[test]
    fn non_copy_elements() {
        #[derive(Debug, Clone, PartialEq)]
        struct Blob(Vec<u8>);
        let mut v = CowVec::new(70, Blob(vec![1, 2]));
        v.get_mut(65).0.push(3);
        assert_eq!(v.get(65).0, vec![1, 2, 3]);
        assert_eq!(v.get(64).0, vec![1, 2]);
    }
}
