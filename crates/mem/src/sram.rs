//! Shared system SRAM.

use crate::cow::CowVec;
use crate::map::{SRAM_BASE, SRAM_SIZE};

/// The shared on-chip SRAM behind the system bus.
///
/// Holds the STL's shared data (signature mailboxes, scheduler locks).
/// Word-addressed; the harness can [`poke`](Sram::poke)/[`peek`](Sram::peek)
/// directly to initialize data and read back results without consuming
/// bus cycles. Backed by copy-on-write pages ([`CowVec`]) so cloning a
/// `Soc` for a warm-start fault tail costs pointer bumps, not a 64 KiB
/// memcpy.
#[derive(Debug, Clone)]
pub struct Sram {
    words: CowVec<u32>,
    access_cycles: u32,
}

impl Default for Sram {
    fn default() -> Sram {
        Sram::new(4)
    }
}

impl Sram {
    /// Creates a zeroed SRAM with the given access latency in cycles.
    pub fn new(access_cycles: u32) -> Sram {
        Sram { words: CowVec::new((SRAM_SIZE / 4) as usize, 0), access_cycles }
    }

    /// Access latency in cycles.
    pub fn access_cycles(&self) -> u32 {
        self.access_cycles
    }

    fn index(addr: u32) -> Option<usize> {
        if !(SRAM_BASE..SRAM_BASE + SRAM_SIZE).contains(&addr) || !addr.is_multiple_of(4) {
            return None;
        }
        Some(((addr - SRAM_BASE) / 4) as usize)
    }

    /// Word at `addr` (0 for out-of-range reads, mirroring a bus that
    /// returns zeros for unmapped slaves).
    pub fn read(&self, addr: u32) -> u32 {
        Sram::index(addr).map_or(0, |i| *self.words.get(i))
    }

    /// Writes `value` at `addr` (out-of-range writes are dropped).
    pub fn write(&mut self, addr: u32, value: u32) {
        if let Some(i) = Sram::index(addr) {
            self.words.set(i, value);
        }
    }

    /// Content equality (fast: pages shared with `other` compare by
    /// pointer).
    pub fn state_eq(&self, other: &Sram) -> bool {
        self.words.fast_eq(&other.words)
    }

    /// The copy-on-write backing store (telemetry/diagnostics).
    pub fn storage(&self) -> &CowVec<u32> {
        &self.words
    }

    /// Severs all page sharing (differential-test hook; see
    /// [`CowVec::unshare`]).
    pub fn unshare(&mut self) {
        self.words.unshare();
    }

    /// Harness-side direct write (no bus traffic).
    pub fn poke(&mut self, addr: u32, value: u32) {
        self.write(addr, value);
    }

    /// Harness-side direct read (no bus traffic).
    pub fn peek(&self, addr: u32) -> u32 {
        self.read(addr)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_write_roundtrip() {
        let mut s = Sram::default();
        s.write(SRAM_BASE + 0x40, 0xdead_beef);
        assert_eq!(s.read(SRAM_BASE + 0x40), 0xdead_beef);
        assert_eq!(s.read(SRAM_BASE), 0);
    }

    #[test]
    fn out_of_range_is_benign() {
        let mut s = Sram::default();
        s.write(0x0, 1); // flash region, not sram
        assert_eq!(s.read(0x0), 0);
        s.write(SRAM_BASE + SRAM_SIZE, 7);
        assert_eq!(s.read(SRAM_BASE + SRAM_SIZE), 0);
    }
}
