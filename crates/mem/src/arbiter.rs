//! Pluggable bus arbiters.
//!
//! The seed bus hardcoded a round-robin grant loop; the interference
//! bounds of [`bounds`](crate::bounds) only make sense relative to a
//! concrete arbitration policy, so the policy is now a first-class,
//! swappable component. Three policies are provided:
//!
//! * [`RoundRobin`] — the seed behaviour, bit-identical to the old
//!   hardcoded loop: starvation-free, per-access interference bounded
//!   by one full rotation of maximal transactions;
//! * [`FixedPriority`] — a strict priority chain. Only the
//!   highest-priority port has a bounded worst-case grant latency;
//!   every lower port can be starved indefinitely by saturating
//!   traffic above it, which the bound computation flags instead of
//!   papering over;
//! * [`Tdma`] — a time-division slot table (one slot per port). A port
//!   is granted only inside its own slot and only when the slot has
//!   room for a worst-case transaction, so transactions never overrun
//!   into a foreign slot and each port's grant latency is bounded by
//!   the slot-table distance *regardless of what other masters do* —
//!   the composability property certification leans on.
//!
//! Arbiters are deterministic and carry all their state, so a cloned
//! [`Bus`](crate::Bus) (campaign snapshots) replays identically.

/// Which arbitration policy a bus uses — the configuration-level
/// description, also consumed by the analytical bound computation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArbiterKind {
    /// Fair rotation: after a grant, the scan restarts just past the
    /// granted port.
    RoundRobin,
    /// Strict priority chain.
    FixedPriority {
        /// `true`: port 0 has the highest priority (the seed's port
        /// numbering puts core 0's fetch port first). `false`: the
        /// *last* port wins — which hands the traffic injector, always
        /// attached after the cores, the top priority and turns it into
        /// a starvation adversary.
        ascending: bool,
    },
    /// Time-division multiple access: a repeating table of one
    /// `slot_cycles`-cycle slot per port.
    Tdma {
        /// Slot length in cycles. Must be at least the worst-case
        /// transaction latency (see
        /// [`BoundParams::t_max`](crate::bounds::BoundParams::t_max));
        /// `0` derives exactly that at bus construction.
        slot_cycles: u32,
    },
}

impl ArbiterKind {
    /// Short stable name (report keys, trace events).
    pub fn name(&self) -> &'static str {
        match self {
            ArbiterKind::RoundRobin => "round-robin",
            ArbiterKind::FixedPriority { .. } => "fixed-priority",
            ArbiterKind::Tdma { .. } => "tdma",
        }
    }

    /// The default fixed-priority chain (port 0 highest).
    pub fn fixed_priority() -> ArbiterKind {
        ArbiterKind::FixedPriority { ascending: true }
    }

    /// A TDMA table with the slot length derived from the bus's
    /// worst-case transaction latency at construction time.
    pub fn tdma() -> ArbiterKind {
        ArbiterKind::Tdma { slot_cycles: 0 }
    }

    /// Builds the runtime arbiter for a bus with `ports` master ports
    /// whose worst transaction lasts `t_max` cycles.
    ///
    /// # Panics
    ///
    /// Panics for a TDMA table whose explicit slot is shorter than
    /// `t_max` — such a table cannot guarantee that a transaction stays
    /// inside its slot, which voids the whole TDMA bound.
    pub(crate) fn build(self, ports: usize, t_max: u64) -> Box<dyn Arbiter> {
        match self {
            ArbiterKind::RoundRobin => Box::new(RoundRobin { last: 0 }),
            ArbiterKind::FixedPriority { ascending } => {
                Box::new(FixedPriority { ascending })
            }
            ArbiterKind::Tdma { slot_cycles } => {
                let slot = if slot_cycles == 0 {
                    u32::try_from(t_max).expect("t_max fits u32")
                } else {
                    slot_cycles
                };
                assert!(
                    u64::from(slot) >= t_max,
                    "TDMA slot of {slot} cycles cannot contain a worst-case \
                     {t_max}-cycle transaction"
                );
                Box::new(Tdma { slot_cycles: slot, ports, t_max })
            }
        }
    }
}

/// A bus arbiter: chooses which pending request (if any) to grant on a
/// cycle where the bus is idle.
///
/// Implementations must be deterministic functions of their own state,
/// the pending mask and the cycle number — the analytical bounds in
/// [`bounds`](crate::bounds) are statements about these policies, and
/// the certification flow checks observed behaviour against them.
pub trait Arbiter: std::fmt::Debug + Send + Sync {
    /// Picks the port to grant this cycle, or `None` to leave the bus
    /// idle. `pending[p]` is whether port `p` has a request waiting;
    /// `cycle` is the bus-local cycle counter. Called only when no
    /// transaction is in flight. A returned port must be pending.
    fn grant(&mut self, pending: &[bool], cycle: u64) -> Option<usize>;

    /// The configuration this arbiter was built from — the key the
    /// bound computation is looked up under.
    fn kind(&self) -> ArbiterKind;

    /// A signature of the arbiter's mutable state (0 for stateless
    /// policies). Two buses with equal kinds and equal signatures
    /// arbitrate identically from here on — the state-equality hook the
    /// campaign's livelock detection compares through.
    fn state_sig(&self) -> u64 {
        0
    }

    /// Clones the arbiter with its state (the bus is `Clone` for
    /// campaign snapshotting).
    fn clone_box(&self) -> Box<dyn Arbiter>;
}

impl Clone for Box<dyn Arbiter> {
    fn clone(&self) -> Box<dyn Arbiter> {
        self.clone_box()
    }
}

/// Fair rotating-priority arbitration (the seed policy).
#[derive(Debug, Clone)]
pub struct RoundRobin {
    /// Most recently granted port; the scan restarts just past it.
    last: usize,
}

impl Arbiter for RoundRobin {
    fn grant(&mut self, pending: &[bool], _cycle: u64) -> Option<usize> {
        let n = pending.len();
        for i in 0..n {
            let port = (self.last + 1 + i) % n;
            if pending[port] {
                self.last = port;
                return Some(port);
            }
        }
        None
    }

    fn kind(&self) -> ArbiterKind {
        ArbiterKind::RoundRobin
    }

    fn state_sig(&self) -> u64 {
        self.last as u64
    }

    fn clone_box(&self) -> Box<dyn Arbiter> {
        Box::new(self.clone())
    }
}

/// Strict fixed-priority arbitration.
#[derive(Debug, Clone)]
pub struct FixedPriority {
    ascending: bool,
}

impl Arbiter for FixedPriority {
    fn grant(&mut self, pending: &[bool], _cycle: u64) -> Option<usize> {
        if self.ascending {
            pending.iter().position(|&p| p)
        } else {
            pending.iter().rposition(|&p| p)
        }
    }

    fn kind(&self) -> ArbiterKind {
        ArbiterKind::FixedPriority { ascending: self.ascending }
    }

    fn clone_box(&self) -> Box<dyn Arbiter> {
        Box::new(self.clone())
    }
}

/// Time-division slot-table arbitration: port `p` owns every cycle `c`
/// with `(c / slot_cycles) % ports == p`, and is granted only when the
/// remainder of its slot still fits a worst-case transaction — so no
/// transaction ever runs into a foreign slot, and at every slot start
/// the bus is provably idle (or busy with the slot owner's own work).
#[derive(Debug, Clone)]
pub struct Tdma {
    slot_cycles: u32,
    ports: usize,
    t_max: u64,
}

impl Tdma {
    /// Slot length in cycles.
    pub fn slot_cycles(&self) -> u32 {
        self.slot_cycles
    }
}

impl Arbiter for Tdma {
    fn grant(&mut self, pending: &[bool], cycle: u64) -> Option<usize> {
        let slot = u64::from(self.slot_cycles);
        let owner = ((cycle / slot) % self.ports as u64) as usize;
        let remaining_in_slot = slot - cycle % slot;
        if pending[owner] && remaining_in_slot >= self.t_max {
            Some(owner)
        } else {
            None
        }
    }

    fn kind(&self) -> ArbiterKind {
        ArbiterKind::Tdma { slot_cycles: self.slot_cycles }
    }

    fn clone_box(&self) -> Box<dyn Arbiter> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_robin_rotates_fairly() {
        let mut a = RoundRobin { last: 0 };
        let all = vec![true; 3];
        assert_eq!(a.grant(&all, 0), Some(1));
        assert_eq!(a.grant(&all, 1), Some(2));
        assert_eq!(a.grant(&all, 2), Some(0));
        assert_eq!(a.grant(&all, 3), Some(1));
        assert_eq!(a.grant(&[false, false, true], 4), Some(2));
        assert_eq!(a.grant(&[false, false, false], 5), None);
    }

    #[test]
    fn fixed_priority_always_prefers_top() {
        let mut asc = FixedPriority { ascending: true };
        assert_eq!(asc.grant(&[true, true, true], 0), Some(0));
        assert_eq!(asc.grant(&[false, true, true], 1), Some(1));
        let mut desc = FixedPriority { ascending: false };
        assert_eq!(desc.grant(&[true, true, true], 0), Some(2));
        assert_eq!(desc.grant(&[true, true, false], 1), Some(1));
    }

    #[test]
    fn tdma_grants_only_the_slot_owner_with_room() {
        let mut a = Tdma { slot_cycles: 10, ports: 2, t_max: 4 };
        let all = vec![true; 2];
        // Port 0 owns cycles 0..10; grantable while >= 4 cycles remain.
        assert_eq!(a.grant(&all, 0), Some(0));
        assert_eq!(a.grant(&all, 6), Some(0));
        assert_eq!(a.grant(&all, 7), None, "no room left in the slot");
        // Port 1 owns cycles 10..20.
        assert_eq!(a.grant(&all, 10), Some(1));
        assert_eq!(a.grant(&all, 16), Some(1));
        assert_eq!(a.grant(&all, 17), None);
        // An idle owner leaves the bus idle even if others are pending.
        assert_eq!(a.grant(&[true, false], 12), None);
    }

    #[test]
    #[should_panic(expected = "cannot contain")]
    fn tdma_slot_shorter_than_t_max_is_rejected() {
        let _ = ArbiterKind::Tdma { slot_cycles: 4 }.build(2, 15);
    }

    #[test]
    fn derived_tdma_slot_equals_t_max() {
        let a = ArbiterKind::tdma().build(3, 15);
        assert_eq!(a.kind(), ArbiterKind::Tdma { slot_cycles: 15 });
    }
}
