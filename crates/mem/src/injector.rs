//! SafeTI-style programmable bus-traffic injector.
//!
//! The paper's determinism claim is *"the execution-loop signature does
//! not depend on what the other bus masters do"* — but the repository
//! only ever exercised the wrapper against the benign traffic the other
//! STL cores happen to generate. This module adds an adversarial bus
//! master in the spirit of SafeTI (arXiv:2308.11528): a programmable
//! injector attached to its own bus port that replays a deterministic,
//! seeded traffic pattern — from an occasional burst to full bus
//! saturation — so tests can sweep interference intensity and pin the
//! claim property-style.
//!
//! Injected traffic is *timing-only* by construction: reads target
//! Flash and SRAM (side-effect free), writes target Flash (ROM at
//! runtime: acknowledged and dropped) or a reserved scratch window at
//! the top of SRAM that no STL program uses. The injector never touches
//! MMIO, so it cannot kick or trip the watchdog.

use crate::bus::{Bus, BusRequest, MAX_BURST};
use crate::map::{FLASH_SIZE, SRAM_BASE, SRAM_SIZE};
use crate::prng::Prng;

/// Bytes at the top of SRAM reserved as the injector's write window.
pub const INJECTOR_SCRATCH_BYTES: u32 = 0x400;

/// First byte of the injector's reserved SRAM write window.
pub fn injector_scratch_base() -> u32 {
    SRAM_BASE + SRAM_SIZE - INJECTOR_SCRATCH_BYTES
}

/// The traffic shape an [`InjectorProgram`] replays.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InjectorPattern {
    /// No traffic (the control case of a sweep).
    Idle,
    /// One read burst of `burst` words every `period` cycles.
    PeriodicBurst {
        /// Cycles between burst starts (>= 1).
        period: u32,
        /// Burst length in words (1..=[`MAX_BURST`]).
        burst: u8,
    },
    /// Whenever the port is free, issue a request with probability
    /// `density`% — random kind, length and address.
    Random {
        /// Issue probability per free cycle, in percent (0..=100).
        density: u32,
    },
    /// Re-issue a maximum-length read burst the moment the port frees:
    /// the worst-case adversary a shared round-robin bus admits.
    Saturate,
}

/// A complete injector configuration: pattern, seed and activity window.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InjectorProgram {
    /// Traffic shape.
    pub pattern: InjectorPattern,
    /// Seed for every random draw the pattern makes.
    pub seed: u64,
    /// First active cycle.
    pub start: u64,
    /// First cycle past the activity window (`u64::MAX` = forever).
    pub stop: u64,
}

impl InjectorProgram {
    /// The silent program.
    pub fn idle() -> InjectorProgram {
        InjectorProgram { pattern: InjectorPattern::Idle, seed: 0, start: 0, stop: 0 }
    }

    /// Full-saturation traffic for the whole run.
    pub fn saturate(seed: u64) -> InjectorProgram {
        InjectorProgram {
            pattern: InjectorPattern::Saturate,
            seed,
            start: 0,
            stop: u64::MAX,
        }
    }

    /// Seeded-random traffic at `density`% for the whole run.
    pub fn random(seed: u64, density: u32) -> InjectorProgram {
        InjectorProgram {
            pattern: InjectorPattern::Random { density: density.min(100) },
            seed,
            start: 0,
            stop: u64::MAX,
        }
    }

    /// Maps a nominal interference intensity (0..=100 %) to a program:
    /// 0 is idle, 100 is saturation, anything between is seeded-random
    /// traffic of that density — the sweep axis of the chaos campaign.
    pub fn with_intensity(intensity: u32, seed: u64) -> InjectorProgram {
        match intensity {
            0 => InjectorProgram::idle(),
            i if i >= 100 => InjectorProgram::saturate(seed),
            i => InjectorProgram::random(seed, i),
        }
    }

    /// Draws an arbitrary *traffic-generating* program from a seed (the
    /// property-test sweep: never [`InjectorPattern::Idle`], so every
    /// drawn program actually disturbs the bus).
    pub fn from_seed(seed: u64) -> InjectorProgram {
        let mut p = Prng::new(seed ^ 0x5afe_7150);
        let pattern = match p.below(3) {
            0 => InjectorPattern::PeriodicBurst {
                period: 2 + p.below(40) as u32,
                burst: 1 + p.below(MAX_BURST as u64) as u8,
            },
            1 => InjectorPattern::Random { density: 10 + p.below(91) as u32 },
            _ => InjectorPattern::Saturate,
        };
        InjectorProgram { pattern, seed, start: p.below(64), stop: u64::MAX }
    }
}

/// Counters of what the injector actually put on the bus.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct InjectorStats {
    /// Requests issued.
    pub requests: u64,
    /// Words moved (burst beats summed).
    pub words: u64,
    /// Cycles the injector wanted to issue but its port was still busy
    /// (back-pressure from its own outstanding transaction).
    pub throttled_cycles: u64,
}

/// The programmable extra bus master.
///
/// Drive it like a core: call [`step`](TrafficInjector::step) once per
/// cycle *before* [`Bus::step`]. The injector drains its own responses,
/// so the port never wedges.
///
/// # Example
///
/// ```
/// use sbst_mem::{Bus, FlashCtl, FlashImage, FlashTiming, InjectorProgram,
///                Sram, TrafficInjector};
///
/// let mut bus = Bus::new(
///     FlashCtl::new(FlashImage::new().freeze(), FlashTiming::default()),
///     Sram::default(),
///     2,
/// );
/// let mut inj = TrafficInjector::new(InjectorProgram::saturate(1), 1);
/// for cycle in 0..100 {
///     inj.step(&mut bus, cycle);
///     bus.step();
/// }
/// assert!(inj.stats().requests > 0);
/// ```
#[derive(Debug, Clone)]
pub struct TrafficInjector {
    prog: InjectorProgram,
    prng: Prng,
    port: usize,
    stats: InjectorStats,
}

impl TrafficInjector {
    /// Creates an injector driving bus port `port`.
    pub fn new(prog: InjectorProgram, port: usize) -> TrafficInjector {
        TrafficInjector { prng: Prng::new(prog.seed), prog, port, stats: InjectorStats::default() }
    }

    /// The program this injector replays.
    pub fn program(&self) -> InjectorProgram {
        self.prog
    }

    /// The bus port this injector masters.
    pub fn port(&self) -> usize {
        self.port
    }

    /// Traffic counters.
    pub fn stats(&self) -> InjectorStats {
        self.stats
    }

    /// Advances the injector by one cycle: drains any completed
    /// response and, when the pattern fires, presents the next request.
    pub fn step(&mut self, bus: &mut Bus, cycle: u64) {
        // Injected reads are fire-and-forget; take the data off the port
        // so the bus's one-outstanding-per-port protocol is respected.
        let _ = bus.response(self.port);
        if cycle < self.prog.start || cycle >= self.prog.stop {
            return;
        }
        let fire = match self.prog.pattern {
            InjectorPattern::Idle => false,
            InjectorPattern::PeriodicBurst { period, .. } => {
                (cycle - self.prog.start).is_multiple_of(period.max(1) as u64)
            }
            InjectorPattern::Random { density } => self.prng.chance(density, 100),
            InjectorPattern::Saturate => true,
        };
        if !fire {
            return;
        }
        if bus.port_busy(self.port) {
            self.stats.throttled_cycles += 1;
            return;
        }
        let req = self.draw_request();
        self.stats.requests += 1;
        self.stats.words += req.burst as u64;
        bus.request(self.port, req);
    }

    /// Draws the next request of the active pattern (side-effect-free
    /// targets only; see the module docs).
    fn draw_request(&mut self) -> BusRequest {
        match self.prog.pattern {
            InjectorPattern::Idle => unreachable!("idle never fires"),
            InjectorPattern::PeriodicBurst { burst, .. } => {
                let burst = burst.clamp(1, MAX_BURST as u8);
                BusRequest::read_burst(self.flash_addr(burst), burst)
            }
            InjectorPattern::Saturate => {
                let burst = MAX_BURST as u8;
                BusRequest::read_burst(self.flash_addr(burst), burst)
            }
            InjectorPattern::Random { .. } => {
                let burst = 1 + self.prng.below(MAX_BURST as u64) as u8;
                match self.prng.below(4) {
                    // Flash read bursts: the dominant contention source.
                    0 | 1 => BusRequest::read_burst(self.flash_addr(burst), burst),
                    // SRAM reads of the scratch window.
                    2 => BusRequest::read(self.scratch_addr()),
                    // SRAM writes stay inside the reserved window.
                    _ => BusRequest::write(self.scratch_addr(), self.prng.next_u32()),
                }
            }
        }
    }

    /// A word-aligned Flash address with room for a `burst`-word beat.
    fn flash_addr(&mut self, burst: u8) -> u32 {
        let span = (FLASH_SIZE - 4 * burst as u32) as u64 / 4;
        (self.prng.below(span) as u32) * 4
    }

    /// A word-aligned address inside the reserved SRAM scratch window.
    fn scratch_addr(&mut self) -> u32 {
        injector_scratch_base() + (self.prng.below(INJECTOR_SCRATCH_BYTES as u64 / 4) as u32) * 4
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flash::{FlashCtl, FlashImage, FlashTiming};
    use crate::map::Region;
    use crate::sram::Sram;

    fn bus(ports: usize) -> Bus {
        Bus::new(
            FlashCtl::new(FlashImage::new().freeze(), FlashTiming::default()),
            Sram::default(),
            ports,
        )
    }

    fn run(prog: InjectorProgram, cycles: u64) -> (Bus, TrafficInjector) {
        let mut b = bus(1);
        let mut inj = TrafficInjector::new(prog, 0);
        for c in 0..cycles {
            inj.step(&mut b, c);
            b.step();
        }
        (b, inj)
    }

    #[test]
    fn idle_program_is_silent() {
        let (b, inj) = run(InjectorProgram::idle(), 500);
        assert_eq!(inj.stats().requests, 0);
        assert_eq!(b.stats().transactions, 0);
    }

    #[test]
    fn saturate_keeps_the_bus_busy() {
        let (b, inj) = run(InjectorProgram::saturate(1), 500);
        assert!(inj.stats().requests > 10);
        // Flash bursts dominate: the bus must be busy most of the run.
        assert!(b.stats().busy_cycles > 400, "busy {}", b.stats().busy_cycles);
    }

    #[test]
    fn periodic_burst_rate_matches_period() {
        let prog = InjectorProgram {
            pattern: InjectorPattern::PeriodicBurst { period: 50, burst: 2 },
            seed: 3,
            start: 0,
            stop: u64::MAX,
        };
        let (_, inj) = run(prog, 500);
        // 10 firing slots; some may be throttled by an in-flight burst.
        let issued = inj.stats().requests + inj.stats().throttled_cycles;
        assert_eq!(issued, 10);
        assert!(inj.stats().requests >= 8);
    }

    #[test]
    fn window_is_respected() {
        let prog = InjectorProgram { start: 100, stop: 200, ..InjectorProgram::saturate(5) };
        let mut b = bus(1);
        let mut inj = TrafficInjector::new(prog, 0);
        for c in 0..100 {
            inj.step(&mut b, c);
            b.step();
        }
        assert_eq!(inj.stats().requests, 0, "quiet before start");
        for c in 100..300 {
            inj.step(&mut b, c);
            b.step();
        }
        let after_window = inj.stats().requests;
        assert!(after_window > 0);
        for c in 300..400 {
            inj.step(&mut b, c);
            b.step();
        }
        assert_eq!(inj.stats().requests, after_window, "quiet after stop");
    }

    #[test]
    fn random_traffic_is_deterministic_per_seed() {
        let a = run(InjectorProgram::random(7, 50), 400);
        let b = run(InjectorProgram::random(7, 50), 400);
        assert_eq!(a.1.stats(), b.1.stats());
        assert_eq!(a.0.stats(), b.0.stats());
        let c = run(InjectorProgram::random(8, 50), 400);
        assert_ne!(a.1.stats(), c.1.stats());
    }

    #[test]
    fn writes_stay_inside_the_scratch_window() {
        let mut inj = TrafficInjector::new(InjectorProgram::random(11, 100), 0);
        for _ in 0..500 {
            let req = inj.draw_request();
            match req.kind {
                crate::bus::ReqKind::Write(_) | crate::bus::ReqKind::Swap(_) => {
                    assert!(req.addr >= injector_scratch_base());
                    assert!(req.addr < SRAM_BASE + SRAM_SIZE);
                }
                crate::bus::ReqKind::Read => {
                    let region = Region::of(req.addr);
                    assert!(
                        region == Region::Flash || region == Region::Sram,
                        "read outside flash/sram: {:#x}",
                        req.addr
                    );
                    assert_ne!(region, Region::Mmio);
                }
            }
            assert_eq!(req.addr % 4, 0);
        }
    }

    #[test]
    fn from_seed_never_draws_idle_and_is_stable() {
        for seed in 0..64u64 {
            let p = InjectorProgram::from_seed(seed);
            assert_ne!(p.pattern, InjectorPattern::Idle);
            assert_eq!(p, InjectorProgram::from_seed(seed));
        }
    }

    #[test]
    fn contends_with_a_real_master() {
        // A core-like master on port 0 plus a saturating injector on
        // port 1: the master's reads must still complete (round-robin
        // starvation freedom), but slower than solo.
        let solo = {
            let mut b = bus(2);
            let mut cycles = 0u64;
            for _ in 0..20 {
                b.request(0, BusRequest::read(0x100));
                loop {
                    b.step();
                    cycles += 1;
                    if b.response(0).is_some() {
                        break;
                    }
                }
            }
            cycles
        };
        let contended = {
            let mut b = bus(2);
            let mut inj = TrafficInjector::new(InjectorProgram::saturate(2), 1);
            let mut cycles = 0u64;
            let mut clk = 0u64;
            for _ in 0..20 {
                b.request(0, BusRequest::read(0x100));
                loop {
                    inj.step(&mut b, clk);
                    b.step();
                    clk += 1;
                    cycles += 1;
                    if b.response(0).is_some() {
                        break;
                    }
                }
            }
            cycles
        };
        assert!(contended > solo, "injector must slow the master ({contended} vs {solo})");
    }
}
