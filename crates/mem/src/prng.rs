//! The workspace's one deterministic pseudo-random generator.
//!
//! Every seeded randomness source of the simulator — scenario
//! start-phase skew, the [`TrafficInjector`](crate::TrafficInjector)'s
//! pattern draws and the [`SeuScheduler`](crate::SeuScheduler)'s strike
//! rolls — goes through this generator, so all of it is one auditable,
//! reproducible implementation instead of per-module ad-hoc LCGs.
//!
//! The algorithm is the xorshift64 (12/25/27) step over a
//! splitmix-style seeded state. It is deliberately bit-compatible with
//! the generator `sbst_soc::Scenario::start_delays` historically
//! inlined, so extracting it here changed no golden signature or sweep.

/// A small deterministic PRNG (seeded xorshift64).
///
/// # Example
///
/// ```
/// use sbst_mem::Prng;
///
/// let mut a = Prng::new(7);
/// let mut b = Prng::new(7);
/// assert_eq!(a.next_u64(), b.next_u64());
/// assert!(Prng::new(8).next_u64() != Prng::new(7).next_u64());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Prng {
    state: u64,
}

impl Prng {
    /// Seeds the generator. Equal seeds yield equal streams.
    pub fn new(seed: u64) -> Prng {
        Prng { state: seed.wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(1) }
    }

    /// Next 64 pseudo-random bits.
    pub fn next_u64(&mut self) -> u64 {
        // xorshift64 has one absorbing state; escape it so a
        // pathological seed cannot freeze an injector or SEU stream.
        if self.state == 0 {
            self.state = 0x9e37_79b9_7f4a_7c15;
        }
        self.state ^= self.state >> 12;
        self.state ^= self.state << 25;
        self.state ^= self.state >> 27;
        self.state
    }

    /// Next 32 pseudo-random bits.
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Uniform draw from `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is 0.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "empty range");
        // Modulo bias is irrelevant at simulation scales.
        self.next_u64() % bound
    }

    /// Bernoulli draw: `true` with probability `num / den`.
    ///
    /// # Panics
    ///
    /// Panics if `den` is 0.
    pub fn chance(&mut self, num: u32, den: u32) -> bool {
        self.below(den as u64) < num as u64
    }

    /// A decorrelated child generator (stream `index` of this seed) —
    /// retries and sweep cells derive fresh, reproducible randomness
    /// without consuming the parent stream.
    pub fn split(&self, index: u64) -> Prng {
        Prng::new(self.state ^ index.wrapping_mul(0xd605_0bb5_9df4_4f45).wrapping_add(index))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The extraction contract: the stream must match the generator
    /// `Scenario::start_delays` used to inline (state = seed·φ + 1,
    /// then xorshift 12/25/27 per draw).
    #[test]
    fn bit_compatible_with_legacy_scenario_skew() {
        for seed in [0u64, 1, 7, 0xdead_beef] {
            let mut x = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(1);
            let mut p = Prng::new(seed);
            for _ in 0..8 {
                x ^= x >> 12;
                x ^= x << 25;
                x ^= x >> 27;
                assert_eq!(p.next_u64(), x);
            }
        }
    }

    #[test]
    fn deterministic_and_seed_sensitive() {
        let a: Vec<u64> = (0..16).map({
            let mut p = Prng::new(42);
            move |_| p.next_u64()
        }).collect();
        let b: Vec<u64> = (0..16).map({
            let mut p = Prng::new(42);
            move |_| p.next_u64()
        }).collect();
        assert_eq!(a, b);
        let mut c = Prng::new(43);
        assert_ne!(a[0], c.next_u64());
    }

    #[test]
    fn below_respects_bound() {
        let mut p = Prng::new(3);
        for bound in [1u64, 2, 23, 1000] {
            for _ in 0..100 {
                assert!(p.below(bound) < bound);
            }
        }
    }

    #[test]
    fn chance_extremes() {
        let mut p = Prng::new(9);
        assert!((0..50).all(|_| p.chance(100, 100)));
        assert!((0..50).all(|_| !p.chance(0, 100)));
    }

    #[test]
    fn zero_state_escapes() {
        // Hand-build the absorbing state; the stream must not freeze.
        let mut p = Prng { state: 0 };
        let a = p.next_u64();
        let b = p.next_u64();
        assert_ne!(a, 0);
        assert_ne!(a, b);
    }

    #[test]
    fn split_streams_are_decorrelated() {
        let p = Prng::new(5);
        let mut s0 = p.split(0);
        let mut s1 = p.split(1);
        assert_ne!(s0.next_u64(), s1.next_u64());
        // Splitting is pure: same index, same stream.
        assert_eq!(p.split(1).next_u64(), p.split(1).next_u64());
    }
}
