//! Single-event-upset (SEU) scheduling: seeded transient bit flips.
//!
//! The fault plane (`sbst-fault`) models *permanent* stuck-at defects
//! inside a core's logic. This module adds the orthogonal transient
//! plane: radiation-style upsets that flip one bit in a cached line or
//! in the data of an in-flight bus transaction. A [`SeuScheduler`]
//! rolls a seeded Bernoulli trial every cycle; when it fires, it emits
//! a [`SeuStrike`] describing *where* the flip should land, and the SoC
//! applies it (it owns the caches and the bus). Everything is
//! deterministic in the seed, so a run that recovered — or escalated —
//! reproduces exactly.
//!
//! Unlike a stuck-at fault, an SEU does not recur: re-running the
//! routine (the self-healing wrapper's invalidate → re-warm → retry
//! path) reads fresh, correct data from Flash/SRAM.

use crate::prng::Prng;

/// Where a strike lands.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SeuTarget {
    /// A valid line of one core's instruction cache.
    ICache {
        /// Victim core index.
        core: usize,
    },
    /// A valid line of one core's data cache.
    DCache {
        /// Victim core index.
        core: usize,
    },
    /// A data word of the bus transaction currently in flight.
    BusData,
}

/// One scheduled upset: target plus which word/bit to flip.
///
/// `line_pick`/`word_pick` are raw draws; the applier reduces them
/// modulo whatever is actually resident (valid lines, burst length), so
/// a strike is never invalidated by cache occupancy changing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SeuStrike {
    /// Cycle the strike was rolled.
    pub cycle: u64,
    /// Target storage element.
    pub target: SeuTarget,
    /// Raw line selector (reduce modulo valid-line count).
    pub line_pick: u64,
    /// Raw word selector (reduce modulo line/burst words).
    pub word_pick: u64,
    /// Bit to flip (0..32).
    pub bit: u32,
}

/// One strike as actually applied (or absorbed) by the SoC.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SeuEvent {
    /// The scheduled strike.
    pub strike: SeuStrike,
    /// Whether the flip landed in real state. A strike is *absorbed*
    /// when its target held nothing to corrupt (empty cache, idle bus).
    pub landed: bool,
}

/// Transient-upset rate and window.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SeuConfig {
    /// Seed for strike timing and placement.
    pub seed: u64,
    /// Strike probability per cycle, in parts per million. The chaos
    /// sweeps use 0 (off) up to ~10_000 (one strike every ~100 cycles —
    /// far beyond any physical rate, to force the recovery machinery).
    pub rate_ppm: u32,
    /// First cycle strikes may land.
    pub start: u64,
    /// First cycle past the strike window (`u64::MAX` = forever).
    pub stop: u64,
    /// Upper bound on strikes for the whole run (0 = unlimited).
    pub max_strikes: u32,
}

impl SeuConfig {
    /// No upsets ever.
    pub fn off() -> SeuConfig {
        SeuConfig { seed: 0, rate_ppm: 0, start: 0, stop: 0, max_strikes: 0 }
    }

    /// Upsets at `rate_ppm` for the whole run.
    pub fn at_rate(seed: u64, rate_ppm: u32) -> SeuConfig {
        SeuConfig { seed, rate_ppm, start: 0, stop: u64::MAX, max_strikes: 0 }
    }

    /// Whether this configuration can ever produce a strike.
    pub fn enabled(&self) -> bool {
        self.rate_ppm > 0 && self.stop > self.start
    }

    /// The same schedule re-seeded for retry `attempt`: a transient
    /// does not replay, so each self-healing attempt must face fresh
    /// (still deterministic) strike timing.
    pub fn for_attempt(&self, attempt: usize) -> SeuConfig {
        if attempt == 0 {
            return *self;
        }
        SeuConfig {
            seed: Prng::new(self.seed).split(attempt as u64).next_u64(),
            ..*self
        }
    }
}

/// The per-run strike scheduler.
#[derive(Debug, Clone)]
pub struct SeuScheduler {
    cfg: SeuConfig,
    prng: Prng,
    strikes: u32,
}

impl SeuScheduler {
    /// A scheduler for one run.
    pub fn new(cfg: SeuConfig) -> SeuScheduler {
        SeuScheduler { prng: Prng::new(cfg.seed ^ 0x5e0_u64), cfg, strikes: 0 }
    }

    /// This scheduler's configuration.
    pub fn config(&self) -> SeuConfig {
        self.cfg
    }

    /// Strikes rolled so far.
    pub fn strikes(&self) -> u32 {
        self.strikes
    }

    /// Rolls the cycle's Bernoulli trial; `cores` is the number of
    /// potential cache victims. Returns the strike to apply, if any.
    pub fn roll(&mut self, cycle: u64, cores: usize) -> Option<SeuStrike> {
        if cycle < self.cfg.start || cycle >= self.cfg.stop {
            return None;
        }
        if self.cfg.max_strikes != 0 && self.strikes >= self.cfg.max_strikes {
            return None;
        }
        if !self.prng.chance(self.cfg.rate_ppm, 1_000_000) {
            return None;
        }
        self.strikes += 1;
        let target = match self.prng.below(8) {
            // I-cache strikes dominate: instruction state is what the
            // cache-resident execution loop actually trusts.
            0..=3 => SeuTarget::ICache { core: self.prng.below(cores.max(1) as u64) as usize },
            4..=5 => SeuTarget::DCache { core: self.prng.below(cores.max(1) as u64) as usize },
            _ => SeuTarget::BusData,
        };
        Some(SeuStrike {
            cycle,
            target,
            line_pick: self.prng.next_u64(),
            word_pick: self.prng.next_u64(),
            bit: self.prng.below(32) as u32,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strikes_of(cfg: SeuConfig, cycles: u64) -> Vec<SeuStrike> {
        let mut s = SeuScheduler::new(cfg);
        (0..cycles).filter_map(|c| s.roll(c, 3)).collect()
    }

    #[test]
    fn off_never_fires() {
        assert!(strikes_of(SeuConfig::off(), 100_000).is_empty());
    }

    #[test]
    fn rate_is_roughly_respected_and_deterministic() {
        let cfg = SeuConfig::at_rate(42, 10_000); // ~1 per 100 cycles
        let a = strikes_of(cfg, 100_000);
        let b = strikes_of(cfg, 100_000);
        assert_eq!(a, b, "same seed, same schedule");
        assert!(
            (500..=2000).contains(&a.len()),
            "~1000 strikes expected, got {}",
            a.len()
        );
        let c = strikes_of(SeuConfig::at_rate(43, 10_000), 100_000);
        assert_ne!(a, c, "different seed, different schedule");
    }

    #[test]
    fn window_and_cap_bound_strikes() {
        let cfg = SeuConfig { start: 1000, stop: 2000, ..SeuConfig::at_rate(7, 100_000) };
        let s = strikes_of(cfg, 10_000);
        assert!(!s.is_empty());
        assert!(s.iter().all(|s| (1000..2000).contains(&s.cycle)));

        let capped = SeuConfig { max_strikes: 3, ..SeuConfig::at_rate(7, 100_000) };
        assert_eq!(strikes_of(capped, 100_000).len(), 3);
    }

    #[test]
    fn strike_fields_are_in_range() {
        for s in strikes_of(SeuConfig::at_rate(9, 50_000), 20_000) {
            assert!(s.bit < 32);
            match s.target {
                SeuTarget::ICache { core } | SeuTarget::DCache { core } => assert!(core < 3),
                SeuTarget::BusData => {}
            }
        }
    }

    #[test]
    fn attempt_reseeding_changes_timing_but_is_pure() {
        let cfg = SeuConfig::at_rate(5, 20_000);
        assert_eq!(cfg.for_attempt(0), cfg);
        let r1 = cfg.for_attempt(1);
        assert_ne!(r1.seed, cfg.seed);
        assert_eq!(r1, cfg.for_attempt(1));
        assert_ne!(strikes_of(cfg, 50_000), strikes_of(r1, 50_000));
    }
}
