//! Tightly-Coupled Memories (scratchpads).

use crate::cow::CowVec;
use crate::map::TCM_SIZE;

/// A core-private Tightly-Coupled Memory (instruction or data).
///
/// TCMs are single-cycle SRAM banks local to each core; unlike caches
/// there is no miss/hit concept — software must explicitly copy code or
/// data into them before use (the paper's comparison baseline for the
/// cache-based strategy, Table IV).
#[derive(Debug, Clone)]
pub struct Tcm {
    base: u32,
    words: CowVec<u32>,
}

impl Tcm {
    /// Creates a zeroed TCM mapped at `base`.
    ///
    /// # Panics
    ///
    /// Panics if `base` is not word aligned.
    pub fn new(base: u32) -> Tcm {
        assert_eq!(base % 4, 0);
        Tcm { base, words: CowVec::new((TCM_SIZE / 4) as usize, 0) }
    }

    /// Base address.
    pub fn base(&self) -> u32 {
        self.base
    }

    /// Capacity in bytes.
    pub fn size(&self) -> u32 {
        TCM_SIZE
    }

    /// Whether `addr` falls inside this TCM.
    pub fn contains(&self, addr: u32) -> bool {
        (self.base..self.base + TCM_SIZE).contains(&addr)
    }

    /// Word at `addr`.
    ///
    /// # Panics
    ///
    /// Panics if `addr` is outside the TCM or unaligned (the core checks
    /// alignment and mapping before dispatching here).
    pub fn read(&self, addr: u32) -> u32 {
        assert!(self.contains(addr) && addr.is_multiple_of(4), "bad TCM read {addr:#x}");
        *self.words.get(((addr - self.base) / 4) as usize)
    }

    /// Writes `value` at `addr`.
    ///
    /// # Panics
    ///
    /// Same conditions as [`read`](Tcm::read).
    pub fn write(&mut self, addr: u32, value: u32) {
        assert!(self.contains(addr) && addr.is_multiple_of(4), "bad TCM write {addr:#x}");
        self.words.set(((addr - self.base) / 4) as usize, value);
    }

    /// Content equality (fast: pages shared with `other` compare by
    /// pointer).
    pub fn state_eq(&self, other: &Tcm) -> bool {
        self.base == other.base && self.words.fast_eq(&other.words)
    }

    /// The copy-on-write backing store (telemetry/diagnostics).
    pub fn storage(&self) -> &CowVec<u32> {
        &self.words
    }

    /// Severs all page sharing (differential-test hook).
    pub fn unshare(&mut self) {
        self.words.unshare();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::map::ITCM_BASE;

    #[test]
    fn read_write() {
        let mut t = Tcm::new(ITCM_BASE);
        t.write(ITCM_BASE + 8, 0x1234_5678);
        assert_eq!(t.read(ITCM_BASE + 8), 0x1234_5678);
        assert_eq!(t.read(ITCM_BASE), 0);
        assert!(t.contains(ITCM_BASE + TCM_SIZE - 4));
        assert!(!t.contains(ITCM_BASE + TCM_SIZE));
    }

    #[test]
    #[should_panic(expected = "bad TCM read")]
    fn out_of_range_read_panics() {
        let t = Tcm::new(ITCM_BASE);
        let _ = t.read(ITCM_BASE + TCM_SIZE);
    }
}
