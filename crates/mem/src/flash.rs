//! Flash memory and its controller (with a prefetch row buffer).

use std::sync::Arc;

use sbst_isa::Program;

use crate::map::{FLASH_BASE, FLASH_SIZE};

/// Value returned for erased (never programmed) Flash words.
///
/// `0xffff_ffff` does not decode as a valid instruction, so a core that
/// runs off the end of its program traps with an illegal-instruction
/// cause instead of silently executing garbage.
pub const ERASED: u32 = 0xffff_ffff;

/// An immutable Flash image shared (via [`Arc`]) by every simulation run
/// of a fault campaign — the image is read-only at runtime, so thousands
/// of parallel fault simulations can share one copy.
#[derive(Debug, Clone, Default)]
pub struct FlashImage {
    // Sparse storage: (word index, value), sorted. Images are small
    // compared to the 8 MiB region, so a sorted vec + binary search wins.
    words: Vec<(u32, u32)>,
}

impl FlashImage {
    /// Creates an empty (fully erased) image.
    pub fn new() -> FlashImage {
        FlashImage::default()
    }

    /// Writes `program` into the image.
    ///
    /// # Panics
    ///
    /// Panics if the program falls outside the Flash region or overlaps a
    /// previously loaded program.
    pub fn load(&mut self, program: &Program) {
        assert!(
            (FLASH_BASE..=FLASH_BASE + FLASH_SIZE).contains(&program.base())
                && program.end() <= FLASH_BASE + FLASH_SIZE,
            "program [{:#x}..{:#x}) outside flash",
            program.base(),
            program.end()
        );
        for (i, &w) in program.words().iter().enumerate() {
            let idx = (program.base() - FLASH_BASE) / 4 + i as u32;
            match self.words.binary_search_by_key(&idx, |&(k, _)| k) {
                Ok(_) => panic!(
                    "flash overlap at {:#x} while loading program based at {:#x}",
                    FLASH_BASE + idx * 4,
                    program.base()
                ),
                Err(pos) => self.words.insert(pos, (idx, w)),
            }
        }
    }

    /// Word at byte address `addr` (erased pattern if never programmed).
    pub fn word_at(&self, addr: u32) -> u32 {
        debug_assert_eq!(addr % 4, 0);
        let idx = (addr - FLASH_BASE) / 4;
        match self.words.binary_search_by_key(&idx, |&(k, _)| k) {
            Ok(pos) => self.words[pos].1,
            Err(_) => ERASED,
        }
    }

    /// Freezes the image for sharing between simulation runs.
    pub fn freeze(self) -> Arc<FlashImage> {
        Arc::new(self)
    }

    /// Number of programmed words.
    pub fn programmed_words(&self) -> usize {
        self.words.len()
    }
}

/// Timing configuration of the Flash controller.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlashTiming {
    /// Cycles for an access that misses every prefetch row buffer.
    ///
    /// The paper reports 8 cycles to fetch an issue packet from Flash.
    pub access_cycles: u32,
    /// Cycles for an access that hits a prefetch row buffer.
    pub row_hit_cycles: u32,
    /// Row buffer width in bytes (power of two, ≥ 8).
    pub row_bytes: u32,
    /// Number of row buffers (LRU-managed): with several buffers each
    /// master's sequential fetch stream keeps its own row warm despite
    /// interleaved traffic from the other cores.
    pub row_buffers: usize,
}

impl Default for FlashTiming {
    fn default() -> FlashTiming {
        FlashTiming { access_cycles: 8, row_hit_cycles: 2, row_bytes: 16, row_buffers: 8 }
    }
}

/// The Flash controller: wraps the shared image with a single prefetch
/// row buffer.
///
/// The row buffer is what makes *code position and alignment* matter:
/// requests falling in the most recently fetched row are fast, and where
/// row boundaries fall relative to issue packets depends on the program's
/// base address and alignment — one of the paper's sources of
/// scenario-dependent variability. Because the buffer is shared by all
/// cores, interleaved multi-core fetch streams thrash it.
#[derive(Debug, Clone)]
pub struct FlashCtl {
    image: Arc<FlashImage>,
    timing: FlashTiming,
    /// LRU row stack, most recently used first.
    rows: Vec<u32>,
    accesses: u64,
    row_hits: u64,
}

impl FlashCtl {
    /// Creates a controller over a frozen image.
    pub fn new(image: Arc<FlashImage>, timing: FlashTiming) -> FlashCtl {
        assert!(timing.row_bytes.is_power_of_two() && timing.row_bytes >= 8);
        assert!(timing.row_buffers >= 1);
        FlashCtl { image, timing, rows: Vec::new(), accesses: 0, row_hits: 0 }
    }

    /// Latency in cycles of a read at `addr`, updating the row buffers.
    pub fn access(&mut self, addr: u32) -> u32 {
        self.accesses += 1;
        let row = addr / self.timing.row_bytes;
        if let Some(pos) = self.rows.iter().position(|&r| r == row) {
            self.rows.remove(pos);
            self.rows.insert(0, row);
            self.row_hits += 1;
            // Keep the sequential prefetch ahead of a streaming reader.
            if !self.rows.contains(&(row + 1)) {
                self.rows.insert(1, row + 1);
                self.rows.truncate(self.timing.row_buffers);
            }
            self.timing.row_hit_cycles
        } else {
            // Miss: the array access also prefetches the next sequential
            // row into a second buffer (automotive flash accelerators
            // stream sequential code).
            self.rows.insert(0, row);
            self.rows.insert(1, row + 1);
            self.rows.truncate(self.timing.row_buffers);
            self.timing.access_cycles
        }
    }

    /// Word at `addr` (combinational data path; latency accounted by
    /// [`access`](FlashCtl::access)).
    pub fn word_at(&self, addr: u32) -> u32 {
        self.image.word_at(addr)
    }

    /// Timing configuration.
    pub fn timing(&self) -> FlashTiming {
        self.timing
    }

    /// `(total accesses, row-buffer hits)` since construction.
    pub fn stats(&self) -> (u64, u64) {
        (self.accesses, self.row_hits)
    }

    /// Behavioral-state equality: same image (by pointer — campaign runs
    /// share one frozen image), timing and row-buffer contents. Access
    /// statistics are ignored.
    pub fn state_eq(&self, other: &FlashCtl) -> bool {
        Arc::ptr_eq(&self.image, &other.image)
            && self.timing == other.timing
            && self.rows == other.rows
    }

    /// Clears the row buffers (e.g. at SoC reset).
    pub fn reset(&mut self) {
        self.rows.clear();
        self.accesses = 0;
        self.row_hits = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sbst_isa::{Asm, Reg};

    fn program_at(base: u32) -> Program {
        let mut a = Asm::new();
        a.addi(Reg::R1, Reg::R0, 42);
        a.halt();
        a.assemble(base).unwrap()
    }

    #[test]
    fn image_load_and_read() {
        let mut img = FlashImage::new();
        let p = program_at(0x1000);
        img.load(&p);
        assert_eq!(img.word_at(0x1000), p.words()[0]);
        assert_eq!(img.word_at(0x1004), p.words()[1]);
        assert_eq!(img.word_at(0x0ffc), ERASED);
        assert_eq!(img.programmed_words(), 2);
    }

    #[test]
    #[should_panic(expected = "overlap")]
    fn overlapping_programs_panic() {
        let mut img = FlashImage::new();
        img.load(&program_at(0x1000));
        img.load(&program_at(0x1004));
    }

    #[test]
    #[should_panic(expected = "outside flash")]
    fn out_of_region_panics() {
        let mut img = FlashImage::new();
        img.load(&program_at(0x2000_0000));
    }

    #[test]
    fn row_buffer_hits_within_row() {
        let img = FlashImage::new().freeze();
        let mut ctl = FlashCtl::new(img, FlashTiming::default());
        assert_eq!(ctl.access(0x100), 8, "cold access");
        assert_eq!(ctl.access(0x104), 2, "same 16-byte row");
        assert_eq!(ctl.access(0x10c), 2, "same row");
        assert_eq!(ctl.access(0x110), 2, "next row was prefetched");
        assert_eq!(ctl.access(0x100), 2, "old row still in an LRU buffer");
        assert_eq!(ctl.stats(), (5, 4));
    }

    #[test]
    fn lru_evicts_oldest_row() {
        let img = FlashImage::new().freeze();
        let mut ctl = FlashCtl::new(
            img,
            FlashTiming { row_buffers: 2, ..FlashTiming::default() },
        );
        assert_eq!(ctl.access(0x000), 8); // rows {0, 1}
        assert_eq!(ctl.access(0x100), 8); // rows {16, 17}
        assert_eq!(ctl.access(0x000), 8, "evicted by the 0x100 stream");
        assert_eq!(ctl.access(0x010), 2, "prefetched row 1 survives");
    }

    #[test]
    fn interleaved_streams_keep_their_rows() {
        // The multi-master scenario: two sequential fetch streams
        // interleave; with >= 2 buffers both keep hitting.
        let img = FlashImage::new().freeze();
        let mut ctl = FlashCtl::new(img, FlashTiming::default());
        ctl.access(0x1000);
        ctl.access(0x8000);
        assert_eq!(ctl.access(0x1004), 2);
        assert_eq!(ctl.access(0x8004), 2);
    }

    #[test]
    fn reset_clears_row() {
        let img = FlashImage::new().freeze();
        let mut ctl = FlashCtl::new(img, FlashTiming::default());
        ctl.access(0x100);
        ctl.reset();
        assert_eq!(ctl.access(0x104), 8);
    }
}
