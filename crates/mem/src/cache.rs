//! Set-associative L1 caches.

use crate::cow::CowVec;

/// Write-miss policy of the data cache.
///
/// Both policies are write-through (no dirty lines, so `dcinv` never
/// loses data). The paper's SoC supports both, configurable before use;
/// with [`NoWriteAllocate`](WritePolicy::NoWriteAllocate) the cache-based
/// self-test wrapper must add a *dummy load* after every store so the
/// execution loop sees no write misses (paper §III.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WritePolicy {
    /// A write miss allocates the line (read-fill then merge).
    WriteAllocate,
    /// A write miss bypasses the cache entirely.
    NoWriteAllocate,
}

/// Geometry and policy of one L1 cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size_bytes: u32,
    /// Associativity.
    pub ways: u32,
    /// Line size in bytes (8..=32, power of two).
    pub line_bytes: u32,
    /// Write-miss policy (ignored for instruction caches).
    pub policy: WritePolicy,
}

impl CacheConfig {
    /// The paper's 8 KiB instruction cache.
    pub fn icache_8k() -> CacheConfig {
        CacheConfig {
            size_bytes: 8 * 1024,
            ways: 2,
            line_bytes: 32,
            policy: WritePolicy::WriteAllocate,
        }
    }

    /// The paper's 4 KiB data cache (write-allocate, as configured in the
    /// experiments of §IV).
    pub fn dcache_4k() -> CacheConfig {
        CacheConfig {
            size_bytes: 4 * 1024,
            ways: 2,
            line_bytes: 32,
            policy: WritePolicy::WriteAllocate,
        }
    }

    /// A direct-mapped 8 KiB instruction cache — the certification
    /// variant: one way removes replacement state, so the cached/locked
    /// working-set argument needs no LRU reasoning at all (the
    /// configuration the per-access interference-bound literature
    /// assumes).
    pub fn icache_8k_direct() -> CacheConfig {
        CacheConfig { ways: 1, ..CacheConfig::icache_8k() }
    }

    /// A direct-mapped 4 KiB data cache (see
    /// [`icache_8k_direct`](CacheConfig::icache_8k_direct)).
    pub fn dcache_4k_direct() -> CacheConfig {
        CacheConfig { ways: 1, ..CacheConfig::dcache_4k() }
    }

    /// Words per line.
    pub fn line_words(self) -> u32 {
        self.line_bytes / 4
    }

    /// Number of sets.
    pub fn sets(self) -> u32 {
        self.size_bytes / (self.line_bytes * self.ways)
    }

    fn validate(self) {
        assert!(self.line_bytes.is_power_of_two() && (8..=32).contains(&self.line_bytes));
        assert!(self.ways >= 1 && self.size_bytes.is_multiple_of(self.line_bytes * self.ways));
        assert!(self.sets().is_power_of_two());
    }
}

/// Hit/miss counters of one cache.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Read lookups that hit.
    pub read_hits: u64,
    /// Read lookups that missed.
    pub read_misses: u64,
    /// Write lookups that hit.
    pub write_hits: u64,
    /// Write lookups that missed.
    pub write_misses: u64,
    /// Whole-cache invalidations performed.
    pub invalidations: u64,
}

impl CacheStats {
    /// Total lookups (hits plus misses, reads plus writes).
    pub fn accesses(&self) -> u64 {
        self.read_hits + self.read_misses + self.write_hits + self.write_misses
    }

    /// Copies the counters into the observability layer's type.
    pub fn counters(&self) -> sbst_obs::CacheCounters {
        sbst_obs::CacheCounters {
            read_hits: self.read_hits,
            read_misses: self.read_misses,
            write_hits: self.write_hits,
            write_misses: self.write_misses,
            invalidations: self.invalidations,
        }
    }
}

#[derive(Debug, Clone, PartialEq)]
struct Line {
    valid: bool,
    tag: u32,
    age: u32, // lower = more recently used
    data: [u32; 8],
}

/// A set-associative, write-through L1 cache with true-LRU replacement.
///
/// The cache is a passive lookup structure: the core's fetch/memory units
/// decide when to [`fill`](Cache::fill) on a miss (after fetching the
/// line over the bus) and always forward writes to memory (write-through).
///
/// # Example
///
/// ```
/// use sbst_mem::{Cache, CacheConfig};
///
/// let mut ic = Cache::new(CacheConfig::icache_8k());
/// assert_eq!(ic.read(0x100), None); // cold miss
/// ic.fill(0x100, &[7; 8]);
/// assert_eq!(ic.read(0x104), Some(7)); // now hits anywhere in the line
/// ic.invalidate_all();
/// assert_eq!(ic.read(0x104), None);
/// ```
#[derive(Debug, Clone)]
pub struct Cache {
    cfg: CacheConfig,
    lines: CowVec<Line>, // sets * ways, set-major
    stats: CacheStats,
}

impl Cache {
    /// Creates an empty (all-invalid) cache.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is inconsistent (non-power-of-two
    /// geometry, zero ways, line size outside 8..=32 bytes).
    pub fn new(cfg: CacheConfig) -> Cache {
        cfg.validate();
        let n = (cfg.sets() * cfg.ways) as usize;
        Cache {
            cfg,
            lines: CowVec::new(n, Line { valid: false, tag: 0, age: 0, data: [0; 8] }),
            stats: CacheStats::default(),
        }
    }

    /// This cache's configuration.
    pub fn config(&self) -> CacheConfig {
        self.cfg
    }

    /// Hit/miss statistics.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// First byte address of the line containing `addr`.
    pub fn line_base(&self, addr: u32) -> u32 {
        addr & !(self.cfg.line_bytes - 1)
    }

    fn set_of(&self, addr: u32) -> u32 {
        (addr / self.cfg.line_bytes) & (self.cfg.sets() - 1)
    }

    fn tag_of(&self, addr: u32) -> u32 {
        addr / self.cfg.line_bytes / self.cfg.sets()
    }

    fn way_range(&self, set: u32) -> std::ops::Range<usize> {
        let start = (set * self.cfg.ways) as usize;
        start..start + self.cfg.ways as usize
    }

    fn find(&self, addr: u32) -> Option<usize> {
        let tag = self.tag_of(addr);
        self.way_range(self.set_of(addr))
            .find(|&i| self.lines.get(i).valid && self.lines.get(i).tag == tag)
    }

    /// Makes `idx` the MRU line of `set`, preserving the relative order
    /// of the others: only lines younger than `idx`'s previous age move
    /// (they age by one). The resident ages of a set always form a
    /// distinct 0..k permutation, provided a line entering the set is
    /// first marked maximally old (see [`fill`](Cache::fill)) — otherwise
    /// two lines filled into invalid ways would stay tied at age 0 and
    /// eviction would no longer be true LRU.
    fn touch(&mut self, idx: usize, set: u32) {
        let old_age = self.lines.get(idx).age;
        for i in self.way_range(set) {
            if self.lines.get(i).valid && self.lines.get(i).age < old_age {
                self.lines.get_mut(i).age += 1;
            }
        }
        if old_age != 0 {
            self.lines.get_mut(idx).age = 0;
        }
    }

    /// Read lookup: word at `addr` on a hit, `None` on a miss.
    ///
    /// Updates LRU state and statistics.
    pub fn read(&mut self, addr: u32) -> Option<u32> {
        debug_assert_eq!(addr % 4, 0);
        match self.find(addr) {
            Some(idx) => {
                self.stats.read_hits += 1;
                let word = self.lines.get(idx).data
                    [((addr % self.cfg.line_bytes) / 4) as usize];
                self.touch(idx, self.set_of(addr));
                Some(word)
            }
            None => {
                self.stats.read_misses += 1;
                None
            }
        }
    }

    /// Probe without updating LRU or statistics (harness/debug use).
    pub fn probe(&self, addr: u32) -> Option<u32> {
        self.find(addr)
            .map(|idx| self.lines.get(idx).data[((addr % self.cfg.line_bytes) / 4) as usize])
    }

    /// Write lookup: updates the cached copy on a hit and returns `true`;
    /// returns `false` on a miss (the caller always writes through to
    /// memory, and decides allocation per the configured policy).
    pub fn write(&mut self, addr: u32, value: u32) -> bool {
        debug_assert_eq!(addr % 4, 0);
        match self.find(addr) {
            Some(idx) => {
                self.stats.write_hits += 1;
                let off = ((addr % self.cfg.line_bytes) / 4) as usize;
                if self.lines.get(idx).data[off] != value {
                    self.lines.get_mut(idx).data[off] = value;
                }
                self.touch(idx, self.set_of(addr));
                true
            }
            None => {
                self.stats.write_misses += 1;
                false
            }
        }
    }

    /// Installs the line containing `addr`, evicting the LRU way.
    ///
    /// `line` must hold exactly [`line_words`](CacheConfig::line_words)
    /// words starting at [`line_base`](Cache::line_base).
    ///
    /// # Panics
    ///
    /// Panics if `line` has the wrong length.
    pub fn fill(&mut self, addr: u32, line: &[u32]) {
        assert_eq!(line.len() as u32, self.cfg.line_words(), "bad fill size");
        let set = self.set_of(addr);
        let tag = self.tag_of(addr);
        // Reuse a matching or invalid way first, then the LRU way.
        let idx = self
            .way_range(set)
            .find(|&i| self.lines.get(i).valid && self.lines.get(i).tag == tag)
            .or_else(|| self.way_range(set).find(|&i| !self.lines.get(i).valid))
            .unwrap_or_else(|| {
                self.way_range(set)
                    .max_by_key(|&i| self.lines.get(i).age)
                    .expect("ways >= 1")
            });
        let l = self.lines.get_mut(idx);
        // A line entering the set (or re-filled in place) is maximally
        // old until touched, so `touch` ages every other resident line
        // and the set keeps a total recency order.
        l.age = u32::MAX;
        l.valid = true;
        l.tag = tag;
        l.data[..line.len()].copy_from_slice(line);
        self.touch(idx, set);
    }

    /// Invalidates every line (the wrapper's block *b* in Figure 2b).
    pub fn invalidate_all(&mut self) {
        for i in 0..self.lines.len() {
            // Only materialize pages that actually hold valid lines.
            if self.lines.get(i).valid {
                self.lines.get_mut(i).valid = false;
            }
        }
        self.stats.invalidations += 1;
    }

    /// Number of currently valid lines (harness/debug use).
    pub fn valid_lines(&self) -> usize {
        self.lines.iter().filter(|l| l.valid).count()
    }

    /// Content equality of lines (valid/tag/LRU/data), ignoring
    /// statistics. Fast: pages shared with `other` compare by pointer.
    pub fn state_eq(&self, other: &Cache) -> bool {
        self.cfg == other.cfg && self.lines.fast_eq(&other.lines)
    }

    /// Number of copy-on-write pages backing the line array.
    pub fn cow_pages(&self) -> usize {
        self.lines.page_count()
    }

    /// Line-array pages still physically shared with `other`.
    pub fn cow_shared_with(&self, other: &Cache) -> usize {
        self.lines.shared_pages_with(&other.lines)
    }

    /// Severs all page sharing (differential-test hook).
    pub fn unshare(&mut self) {
        self.lines.unshare();
    }

    /// Flips one bit of one *valid* line — the cache half of the SEU
    /// model. `line_pick`/`word_pick` are raw random draws, reduced
    /// modulo the current valid-line and line-word counts so a strike
    /// always lands when anything is resident. Returns the byte address
    /// of the corrupted word, or `None` (strike absorbed) when the
    /// cache holds no valid line. Does not touch LRU state or
    /// statistics: an upset is invisible until the word is consumed.
    pub fn flip_bit(&mut self, line_pick: u64, word_pick: u64, bit: u32) -> Option<u32> {
        let victims: Vec<usize> = (0..self.lines.len())
            .filter(|&i| self.lines.get(i).valid)
            .collect();
        if victims.is_empty() {
            return None;
        }
        let idx = victims[(line_pick % victims.len() as u64) as usize];
        let word = (word_pick % self.cfg.line_words() as u64) as usize;
        self.lines.get_mut(idx).data[word] ^= 1 << (bit % 32);
        // Reconstruct the word's byte address from set/tag geometry.
        let set = (idx as u32) / self.cfg.ways;
        let addr = (self.lines.get(idx).tag * self.cfg.sets() + set) * self.cfg.line_bytes
            + 4 * word as u32;
        Some(addr)
    }

    /// Resets statistics (not contents).
    pub fn reset_stats(&mut self) {
        self.stats = CacheStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Cache {
        // 2 sets x 2 ways x 32B lines = 128 B.
        Cache::new(CacheConfig {
            size_bytes: 128,
            ways: 2,
            line_bytes: 32,
            policy: WritePolicy::WriteAllocate,
        })
    }

    #[test]
    fn miss_fill_hit() {
        let mut c = tiny();
        assert_eq!(c.read(0x40), None);
        c.fill(0x40, &[1, 2, 3, 4, 5, 6, 7, 8]);
        assert_eq!(c.read(0x40), Some(1));
        assert_eq!(c.read(0x5c), Some(8));
        assert_eq!(c.stats().read_hits, 2);
        assert_eq!(c.stats().read_misses, 1);
    }

    #[test]
    fn lru_eviction() {
        let mut c = tiny();
        // Three lines mapping to set 0 (line 32B, 2 sets => set = bit 5).
        c.fill(0x000, &[0xa; 8]);
        c.fill(0x080, &[0xb; 8]);
        assert_eq!(c.read(0x000), Some(0xa)); // make 0x000 MRU
        c.fill(0x100, &[0xc; 8]); // evicts 0x080 (LRU)
        assert_eq!(c.probe(0x000), Some(0xa));
        assert_eq!(c.probe(0x080), None);
        assert_eq!(c.probe(0x100), Some(0xc));
    }

    /// Regression for the age-tie defect: two lines filled into invalid
    /// ways both sat at age 0, `touch` never broke the tie (it only aged
    /// lines *younger* than the touched one), and `fill`'s `max_by_key`
    /// then evicted the higher-indexed way — here the *most* recently
    /// used line. The old `lru_eviction` test above passed by accident
    /// because its MRU happened to live in way 0.
    #[test]
    fn eviction_is_lru_even_after_age_ties() {
        let mut c = tiny();
        c.fill(0x000, &[0xa; 8]); // way 0
        c.fill(0x080, &[0xb; 8]); // way 1
        assert_eq!(c.read(0x080), Some(0xb)); // 0x080 is MRU (way 1)
        c.fill(0x100, &[0xc; 8]); // must evict 0x000, the true LRU
        assert_eq!(c.probe(0x080), Some(0xb), "MRU line was evicted");
        assert_eq!(c.probe(0x000), None);
        assert_eq!(c.probe(0x100), Some(0xc));
    }

    /// The same defect seen through writes and refills: every touch kind
    /// (read hit, write hit, refill of a resident tag) must promote to
    /// MRU with a strict recency order left behind.
    #[test]
    fn every_touch_kind_breaks_ties() {
        // Write hit promotes.
        let mut c = tiny();
        c.fill(0x000, &[0xa; 8]);
        c.fill(0x080, &[0xb; 8]);
        assert!(c.write(0x084, 7));
        c.fill(0x100, &[0xc; 8]);
        assert_eq!(c.probe(0x084), Some(7), "written line was evicted");
        assert_eq!(c.probe(0x000), None);

        // Refill of the resident tag promotes.
        let mut c = tiny();
        c.fill(0x000, &[0xa; 8]);
        c.fill(0x080, &[0xb; 8]);
        c.fill(0x080, &[0xd; 8]); // same tag, reuses way 1, now MRU
        c.fill(0x100, &[0xc; 8]);
        assert_eq!(c.probe(0x080), Some(0xd), "refilled line was evicted");
        assert_eq!(c.probe(0x000), None);
    }

    #[test]
    fn write_hit_updates_line() {
        let mut c = tiny();
        c.fill(0x40, &[0; 8]);
        assert!(c.write(0x44, 9));
        assert_eq!(c.read(0x44), Some(9));
        assert!(!c.write(0x400, 1), "write miss");
        assert_eq!(c.stats().write_misses, 1);
    }

    #[test]
    fn invalidate_all_clears() {
        let mut c = tiny();
        c.fill(0x40, &[1; 8]);
        assert_eq!(c.valid_lines(), 1);
        c.invalidate_all();
        assert_eq!(c.valid_lines(), 0);
        assert_eq!(c.read(0x40), None);
        assert_eq!(c.stats().invalidations, 1);
    }

    #[test]
    fn refill_same_tag_reuses_way() {
        let mut c = tiny();
        c.fill(0x40, &[1; 8]);
        c.fill(0x40, &[2; 8]);
        assert_eq!(c.valid_lines(), 1);
        assert_eq!(c.probe(0x40), Some(2));
    }

    #[test]
    fn paper_geometries() {
        let ic = Cache::new(CacheConfig::icache_8k());
        assert_eq!(ic.config().sets(), 128);
        let dc = Cache::new(CacheConfig::dcache_4k());
        assert_eq!(dc.config().sets(), 64);
    }

    #[test]
    fn line_base() {
        let c = tiny();
        assert_eq!(c.line_base(0x47), 0x40);
        assert_eq!(c.line_base(0x40), 0x40);
    }

    #[test]
    #[should_panic(expected = "bad fill size")]
    fn fill_wrong_len_panics() {
        let mut c = tiny();
        c.fill(0, &[1, 2, 3]);
    }

    #[test]
    fn flip_bit_corrupts_exactly_one_word() {
        let mut c = tiny();
        assert_eq!(c.flip_bit(0, 0, 5), None, "empty cache absorbs strikes");
        c.fill(0x40, &[7; 8]);
        let addr = c.flip_bit(3, 10, 40).expect("one valid line");
        // Reported address lies within the filled line and the flipped
        // bit is 40 % 32 = 8.
        assert!((0x40..0x60).contains(&addr), "addr {addr:#x}");
        assert_eq!(c.probe(addr), Some(7 ^ 0x100));
        // Every other word of the line is intact.
        let corrupted = (0x40..0x60)
            .step_by(4)
            .filter(|&a| c.probe(a) != Some(7))
            .count();
        assert_eq!(corrupted, 1);
        // LRU state and stats were not disturbed.
        assert_eq!(c.stats().read_hits, 0);
    }

    #[test]
    fn flip_bit_reported_address_round_trips_geometry() {
        let mut c = Cache::new(CacheConfig::icache_8k());
        for base in [0x100u32, 0x2340, 0x7f00] {
            c.fill(base, &[0xabcd; 8]);
        }
        for pick in 0..12u64 {
            let addr = c.flip_bit(pick, pick.wrapping_mul(7), (pick % 32) as u32)
                .expect("lines valid");
            let v = c.probe(addr).expect("reported address must be resident");
            assert_ne!(v, 0xabcd, "the word at the reported address changed");
            // Restore the struck line so the next iteration starts clean.
            c.fill(c.line_base(addr), &[0xabcd; 8]);
        }
    }
}
