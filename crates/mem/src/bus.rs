//! The shared system bus and its pluggable arbiter.
//!
//! One transaction occupies the bus at a time; every in-flight request
//! from another port waits. This serialization is the physical source of
//! the paper's multi-core nondeterminism: instruction fetches are delayed
//! by the other cores' traffic, so the exact stream of instructions
//! entering each pipeline depends on global interleaving. *Which* ports
//! delay which is the arbitration policy — see [`Arbiter`](crate::Arbiter)
//! — and the analytical interference bounds in [`bounds`](crate::bounds)
//! are derived per policy from this bus's timing parameters.

use crate::arbiter::{Arbiter, ArbiterKind};
use crate::bounds::BoundParams;
use crate::flash::FlashCtl;
use crate::map::{Region, MMIO_BASE};
use crate::sram::Sram;
use crate::watchdog::Watchdog;
use sbst_obs::BusObs;

/// Maximum burst length in words (one 32-byte cache line).
pub const MAX_BURST: usize = 8;

/// What a bus transaction does.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReqKind {
    /// Read `burst` consecutive words.
    Read,
    /// Write one word.
    Write(u32),
    /// Atomic swap: write the payload, return the old word.
    Swap(u32),
}

/// A request presented on one bus port.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BusRequest {
    /// Operation.
    pub kind: ReqKind,
    /// Word-aligned byte address of the first word.
    pub addr: u32,
    /// Burst length in words (1 for writes/swaps).
    pub burst: u8,
}

impl BusRequest {
    /// Single-word read.
    pub fn read(addr: u32) -> BusRequest {
        BusRequest { kind: ReqKind::Read, addr, burst: 1 }
    }

    /// Burst read of `burst` words (e.g. a cache-line fill).
    pub fn read_burst(addr: u32, burst: u8) -> BusRequest {
        BusRequest { kind: ReqKind::Read, addr, burst }
    }

    /// Single-word write.
    pub fn write(addr: u32, value: u32) -> BusRequest {
        BusRequest { kind: ReqKind::Write(value), addr, burst: 1 }
    }

    /// Atomic swap.
    pub fn swap(addr: u32, value: u32) -> BusRequest {
        BusRequest { kind: ReqKind::Swap(value), addr, burst: 1 }
    }
}

/// Data returned on transaction completion.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BusResponse {
    data: [u32; MAX_BURST],
    len: u8,
}

impl BusResponse {
    /// First (or only) data word.
    pub fn word(&self) -> u32 {
        self.data[0]
    }

    /// All returned words.
    pub fn words(&self) -> &[u32] {
        &self.data[..self.len as usize]
    }
}

/// Aggregate and per-port bus statistics.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BusStats {
    /// Completed transactions.
    pub transactions: u64,
    /// Cycles the bus was occupied by a transaction.
    pub busy_cycles: u64,
    /// Per-port cycles spent waiting for a grant (summed over requests).
    pub wait_cycles: Vec<u64>,
    /// Per-port grants (transactions started).
    pub grants: Vec<u64>,
    /// Per-port worst-case wait of a *single* request before its grant —
    /// the contention figure chaos-campaign reports quantify injected
    /// interference with.
    pub max_grant_wait: Vec<u64>,
}

impl BusStats {
    /// Mean grant latency of `port` in cycles (0 when never granted, or
    /// when `port` is out of range — report code iterates heterogeneous
    /// port counts across scenario axes and must not panic on the
    /// narrower configurations).
    pub fn mean_grant_wait(&self, port: usize) -> f64 {
        match self.grants.get(port) {
            None | Some(0) => 0.0,
            Some(&g) => self.wait_cycles[port] as f64 / g as f64,
        }
    }
}

#[derive(Debug, Clone, PartialEq, Eq)]
struct Active {
    port: usize,
    remaining: u32,
    resp: BusResponse,
}

/// One granted bus transaction, as recorded by the optional operation
/// tap: which port moved what kind of access over which addresses. The
/// data phase commits at grant time (see [`Bus::step`]), so the grant
/// stream is exactly the memory-effect stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BusOp {
    /// Master port granted.
    pub port: usize,
    /// Operation (with write/swap payload).
    pub kind: ReqKind,
    /// Word-aligned byte address of the first word.
    pub addr: u32,
    /// Burst length in words.
    pub burst: u8,
}

impl BusOp {
    /// Word addresses the transaction touches:
    /// `addr, addr+4, .., addr + 4*(burst-1)`.
    pub fn words(&self) -> impl Iterator<Item = u32> + '_ {
        (0..self.burst as u32).map(move |i| self.addr + 4 * i)
    }
}

/// The shared system bus: Flash + SRAM slaves, N master ports, a
/// pluggable arbiter (round-robin by default), one transaction in
/// flight.
///
/// Protocol, from a master's point of view:
/// 1. [`request`](Bus::request) — present a request on your port
///    (panics if the port already has one in flight);
/// 2. call [`step`](Bus::step) once per cycle (the SoC does this);
/// 3. poll [`response`](Bus::response) until it yields the data.
#[derive(Debug, Clone)]
pub struct Bus {
    flash: FlashCtl,
    sram: Sram,
    watchdog: Watchdog,
    pending: Vec<Option<BusRequest>>,
    responses: Vec<Option<BusResponse>>,
    active: Option<Active>,
    arbiter: Box<dyn Arbiter>,
    /// Bus-local cycle counter (drives the TDMA slot table).
    cycle: u64,
    stats: BusStats,
    /// Cycles each port's *current* pending request has waited so far.
    cur_wait: Vec<u64>,
    /// Optional observer — strictly read-only w.r.t. bus behaviour; when
    /// `None` (the default) the only cost is one branch per hook site.
    obs: Option<Box<BusObs>>,
    /// Grant-stream tap (see [`BusOp`]); `None` = recording off.
    ops: Option<Vec<BusOp>>,
}

impl Bus {
    /// Creates a bus with `ports` master ports and the default
    /// round-robin arbiter (bit-identical to the seed behaviour).
    pub fn new(flash: FlashCtl, sram: Sram, ports: usize) -> Bus {
        Bus::with_arbiter(flash, sram, ports, ArbiterKind::RoundRobin)
    }

    /// Creates a bus with `ports` master ports and an explicit
    /// arbitration policy.
    ///
    /// # Panics
    ///
    /// Panics for a TDMA arbiter whose explicit slot is shorter than
    /// this bus's worst-case transaction latency (see
    /// [`BoundParams::t_max`]).
    pub fn with_arbiter(
        flash: FlashCtl,
        sram: Sram,
        ports: usize,
        kind: ArbiterKind,
    ) -> Bus {
        let t_max = BoundParams {
            ports,
            arbiter: kind,
            flash: flash.timing(),
            sram_latency: sram.access_cycles(),
        }
        .t_max();
        Bus {
            flash,
            sram,
            watchdog: Watchdog::new(),
            pending: vec![None; ports],
            responses: vec![None; ports],
            active: None,
            arbiter: kind.build(ports, t_max),
            cycle: 0,
            stats: BusStats {
                wait_cycles: vec![0; ports],
                grants: vec![0; ports],
                max_grant_wait: vec![0; ports],
                ..BusStats::default()
            },
            cur_wait: vec![0; ports],
            obs: None,
            ops: None,
        }
    }

    /// The arbitration policy this bus was built with (after TDMA slot
    /// derivation, so `Tdma { slot_cycles }` carries the real slot).
    pub fn arbiter_kind(&self) -> ArbiterKind {
        self.arbiter.kind()
    }

    /// The parameters the analytical interference bounds are computed
    /// from: this bus's port count, arbitration policy and slave
    /// timings.
    pub fn bound_params(&self) -> BoundParams {
        BoundParams {
            ports: self.ports(),
            arbiter: self.arbiter.kind(),
            flash: self.flash.timing(),
            sram_latency: self.sram.access_cycles(),
        }
    }

    /// Attaches an observer recording per-port grant latencies and bus
    /// events. Observation never changes bus behaviour.
    pub fn attach_obs(&mut self, obs: BusObs) {
        self.obs = Some(Box::new(obs));
    }

    /// The attached observer, if any.
    pub fn obs(&self) -> Option<&BusObs> {
        self.obs.as_deref()
    }

    /// Detaches and returns the observer, if any.
    pub fn take_obs(&mut self) -> Option<BusObs> {
        self.obs.take().map(|b| *b)
    }

    /// Number of master ports.
    pub fn ports(&self) -> usize {
        self.pending.len()
    }

    /// Presents `req` on `port`.
    ///
    /// # Panics
    ///
    /// Panics if the port already has a request in flight or an untaken
    /// response, if the address is unaligned, or if the burst length is
    /// 0 or exceeds [`MAX_BURST`].
    pub fn request(&mut self, port: usize, req: BusRequest) {
        assert!(self.pending[port].is_none(), "port {port} already has a request");
        assert!(self.responses[port].is_none(), "port {port} has an untaken response");
        assert_eq!(req.addr % 4, 0, "unaligned bus address {:#x}", req.addr);
        assert!((1..=MAX_BURST as u8).contains(&req.burst), "bad burst {}", req.burst);
        if let Some(obs) = &mut self.obs {
            obs.on_request(port);
        }
        self.pending[port] = Some(req);
    }

    /// Whether `port` has a request in flight (waiting or being served).
    pub fn port_busy(&self, port: usize) -> bool {
        self.pending[port].is_some()
            || self.active.as_ref().is_some_and(|a| a.port == port)
    }

    /// Takes the completed response for `port`, if any.
    pub fn response(&mut self, port: usize) -> Option<BusResponse> {
        self.responses[port].take()
    }

    /// Advances the bus by one clock cycle.
    pub fn step(&mut self) {
        self.watchdog.tick();
        // Arbitrate first: the grant cycle is the first cycle of the
        // access, so an uncontended single-word SRAM read completes in
        // exactly `access_cycles` steps.
        if self.active.is_none() {
            let mask: Vec<bool> = self.pending.iter().map(Option::is_some).collect();
            if let Some(port) = self.arbiter.grant(&mask, self.cycle) {
                let req = self.pending[port].take().expect("arbiter granted an idle port");
                self.stats.grants[port] += 1;
                self.stats.max_grant_wait[port] =
                    self.stats.max_grant_wait[port].max(self.cur_wait[port]);
                if let Some(obs) = &mut self.obs {
                    let write = matches!(req.kind, ReqKind::Write(_) | ReqKind::Swap(_));
                    obs.on_grant(port, self.cur_wait[port], req.addr, write);
                }
                self.cur_wait[port] = 0;
                if let Some(ops) = &mut self.ops {
                    ops.push(BusOp { port, kind: req.kind, addr: req.addr, burst: req.burst });
                }
                let (latency, resp) = self.execute(req);
                self.active = Some(Active { port, remaining: latency.max(1), resp });
            }
        }
        // Progress the active transaction.
        if let Some(a) = &mut self.active {
            self.stats.busy_cycles += 1;
            a.remaining -= 1;
            if a.remaining == 0 {
                let a = self.active.take().expect("checked");
                self.responses[a.port] = Some(a.resp);
                self.stats.transactions += 1;
            }
        }
        // Requests still pending after arbitration are waiting for
        // grant. `max_grant_wait` is folded in *continuously*, not only
        // at grant time, so a starved port (fixed-priority under a
        // saturating higher-priority master) reports its ever-growing
        // wait instead of 0 — the bound watchdog feeds on this figure.
        for (p, r) in self.pending.iter().enumerate() {
            if r.is_some() {
                self.stats.wait_cycles[p] += 1;
                self.cur_wait[p] += 1;
                self.stats.max_grant_wait[p] =
                    self.stats.max_grant_wait[p].max(self.cur_wait[p]);
            }
        }
        if let Some(obs) = &mut self.obs {
            obs.tick();
        }
        self.cycle += 1;
    }

    /// Flips `bit` of one data word of the transaction currently in
    /// flight — the bus half of the SEU model (a glitch on the data
    /// lines while a transfer is mid-burst). `word_pick` is reduced
    /// modulo the transfer length. Returns `false` (strike absorbed)
    /// when the bus is idle.
    pub fn corrupt_in_flight(&mut self, word_pick: u64, bit: u32) -> bool {
        match &mut self.active {
            Some(a) if a.resp.len > 0 => {
                let w = (word_pick % a.resp.len as u64) as usize;
                a.resp.data[w] ^= 1 << (bit % 32);
                true
            }
            _ => false,
        }
    }

    /// Performs the data-phase of a transaction and returns its latency.
    fn execute(&mut self, req: BusRequest) -> (u32, BusResponse) {
        let mut resp = BusResponse { data: [0; MAX_BURST], len: req.burst };
        let region = Region::of(req.addr);
        let latency = match (region, req.kind) {
            (Region::Flash, ReqKind::Read) => {
                let mut lat = self.flash.access(req.addr);
                for i in 0..req.burst as u32 {
                    let a = req.addr + i * 4;
                    if i > 0 {
                        // Burst beats cost one cycle each and advance the
                        // prefetch row buffers as a side effect.
                        let _ = self.flash.access(a);
                        lat += 1;
                    }
                    resp.data[i as usize] = self.flash.word_at(a);
                }
                lat
            }
            // Flash is ROM at runtime: writes are acknowledged and dropped,
            // swaps return the old value without modifying anything.
            (Region::Flash, ReqKind::Write(_)) => self.flash.access(req.addr),
            (Region::Flash, ReqKind::Swap(_)) => {
                resp.data[0] = self.flash.word_at(req.addr);
                self.flash.access(req.addr)
            }
            (Region::Sram, ReqKind::Read) => {
                for i in 0..req.burst as u32 {
                    resp.data[i as usize] = self.sram.read(req.addr + i * 4);
                }
                self.sram.access_cycles() + (req.burst as u32 - 1)
            }
            (Region::Sram, ReqKind::Write(v)) => {
                self.sram.write(req.addr, v);
                self.sram.access_cycles()
            }
            (Region::Sram, ReqKind::Swap(v)) => {
                resp.data[0] = self.sram.read(req.addr);
                self.sram.write(req.addr, v);
                self.sram.access_cycles() + 1
            }
            (Region::Mmio, ReqKind::Read) => {
                for i in 0..req.burst as u32 {
                    resp.data[i as usize] =
                        self.watchdog.read(req.addr - MMIO_BASE + i * 4);
                }
                2
            }
            (Region::Mmio, ReqKind::Write(v)) => {
                self.watchdog.write(req.addr - MMIO_BASE, v);
                2
            }
            (Region::Mmio, ReqKind::Swap(v)) => {
                resp.data[0] = self.watchdog.read(req.addr - MMIO_BASE);
                self.watchdog.write(req.addr - MMIO_BASE, v);
                2
            }
            // TCMs are not bus slaves; unmapped reads return zeros.
            _ => 1,
        };
        (latency, resp)
    }

    /// Turns the grant-stream tap on or off. While on, every granted
    /// transaction is appended to an internal log drained with
    /// [`take_ops`](Bus::take_ops). Recording never changes behaviour.
    pub fn record_ops(&mut self, enable: bool) {
        self.ops = enable.then(Vec::new);
    }

    /// Drains the recorded grant stream (empty when recording is off).
    pub fn take_ops(&mut self) -> Vec<BusOp> {
        match &mut self.ops {
            Some(ops) => std::mem::take(ops),
            None => Vec::new(),
        }
    }

    /// Behavioral-state equality, for the campaign's livelock detection:
    /// pending/active/response latches, SRAM and Flash-row contents,
    /// watchdog configuration and arbiter state. Excluded on purpose:
    /// statistics, per-port wait counters, the observer/tap, and the
    /// free-running `cycle` counter (monotone; it only influences
    /// arbitration under TDMA, which callers must gate on via
    /// [`arbiter_kind`](Bus::arbiter_kind)).
    pub fn state_eq(&self, other: &Bus) -> bool {
        self.pending == other.pending
            && self.responses == other.responses
            && self.active == other.active
            && self.sram.state_eq(&other.sram)
            && self.flash.state_eq(&other.flash)
            && self.watchdog.config_eq(&other.watchdog)
            && self.arbiter.kind() == other.arbiter.kind()
            && self.arbiter.state_sig() == other.arbiter.state_sig()
    }

    /// Statistics snapshot.
    pub fn stats(&self) -> &BusStats {
        &self.stats
    }

    /// Direct harness access to the SRAM slave (no bus traffic).
    pub fn sram(&self) -> &Sram {
        &self.sram
    }

    /// Mutable harness access to the SRAM slave (no bus traffic).
    pub fn sram_mut(&mut self) -> &mut Sram {
        &mut self.sram
    }

    /// Direct harness access to the Flash controller.
    pub fn flash(&self) -> &FlashCtl {
        &self.flash
    }

    /// The watchdog peripheral.
    pub fn watchdog(&self) -> &Watchdog {
        &self.watchdog
    }

    /// Harness access to the watchdog (e.g. to model boot-ROM arming
    /// before the self-test code runs).
    pub fn watchdog_mut(&mut self) -> &mut Watchdog {
        &mut self.watchdog
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flash::{FlashImage, FlashTiming};
    use crate::map::SRAM_BASE;
    use sbst_isa::{Asm, Reg};

    fn bus(ports: usize) -> Bus {
        let mut img = FlashImage::new();
        let mut a = Asm::new();
        for i in 0..16 {
            a.addi(Reg::R1, Reg::R0, i);
        }
        img.load(&a.assemble(0x100).unwrap());
        Bus::new(
            FlashCtl::new(img.freeze(), FlashTiming::default()),
            Sram::default(),
            ports,
        )
    }

    fn run_to_response(bus: &mut Bus, port: usize, max: u32) -> (u32, BusResponse) {
        for cycle in 1..=max {
            bus.step();
            if let Some(r) = bus.response(port) {
                return (cycle, r);
            }
        }
        panic!("no response after {max} cycles");
    }

    #[test]
    fn flash_read_latency_and_data() {
        let mut b = bus(1);
        b.request(0, BusRequest::read(0x100));
        let (cycles, r) = run_to_response(&mut b, 0, 100);
        assert_eq!(cycles, 8);
        assert_eq!(r.word(), sbst_isa::Instr::AluImm {
            op: sbst_isa::AluOp::Add,
            rd: Reg::R1,
            rs1: Reg::R0,
            imm: 0
        }
        .encode());
    }

    #[test]
    fn sram_write_then_read() {
        let mut b = bus(1);
        b.request(0, BusRequest::write(SRAM_BASE + 8, 77));
        run_to_response(&mut b, 0, 100);
        b.request(0, BusRequest::read(SRAM_BASE + 8));
        let (cycles, r) = run_to_response(&mut b, 0, 100);
        assert_eq!(cycles, 4);
        assert_eq!(r.word(), 77);
    }

    #[test]
    fn swap_returns_old_value() {
        let mut b = bus(1);
        b.sram_mut().poke(SRAM_BASE, 5);
        b.request(0, BusRequest::swap(SRAM_BASE, 9));
        let (_, r) = run_to_response(&mut b, 0, 100);
        assert_eq!(r.word(), 5);
        assert_eq!(b.sram().peek(SRAM_BASE), 9);
    }

    #[test]
    fn contention_serializes_and_round_robin_is_fair() {
        let mut b = bus(3);
        for p in 0..3 {
            b.request(p, BusRequest::read(0x100 + 0x40 * p as u32));
        }
        let mut completion = vec![];
        for cycle in 1..=100 {
            b.step();
            for p in 0..3 {
                if b.response(p).is_some() {
                    completion.push((p, cycle));
                }
            }
            if completion.len() == 3 {
                break;
            }
        }
        assert_eq!(completion.len(), 3);
        // Ports complete strictly one after another (serialized).
        assert!(completion[0].1 < completion[1].1);
        assert!(completion[1].1 < completion[2].1);
        // Everyone eventually got served.
        let served: Vec<usize> = completion.iter().map(|&(p, _)| p).collect();
        let mut sorted = served.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![0, 1, 2]);
        // Later ports accumulated wait cycles.
        assert!(b.stats().wait_cycles.iter().sum::<u64>() > 0);
        // Every port was granted exactly once and the grant-latency
        // counters saw the serialization: the last-served port's worst
        // single wait equals its total wait (one request each).
        assert_eq!(b.stats().grants, vec![1, 1, 1]);
        for p in 0..3 {
            assert_eq!(b.stats().max_grant_wait[p], b.stats().wait_cycles[p]);
        }
        assert!(b.stats().max_grant_wait.iter().any(|&w| w > 0));
    }

    #[test]
    fn grant_wait_tracks_worst_single_request() {
        let mut b = bus(2);
        // Round-robin grants port 1 first (rr starts at 0), so port 0's
        // single request waits out one whole flash access.
        b.request(0, BusRequest::read(0x100));
        b.request(1, BusRequest::read(0x140));
        while b.response(0).is_none() {
            b.step();
        }
        assert_eq!(b.stats().grants[0], 1);
        assert!(b.stats().max_grant_wait[0] >= 7, "{:?}", b.stats());
        assert!((b.stats().mean_grant_wait(0) - b.stats().wait_cycles[0] as f64).abs() < 1e-9);
        // The first-granted port saw no contention.
        assert_eq!(b.stats().max_grant_wait[1], 0);
        assert_eq!(b.stats().mean_grant_wait(1), 0.0);
    }

    #[test]
    fn corrupt_in_flight_flips_one_response_bit() {
        let mut b = bus(1);
        b.sram_mut().poke(SRAM_BASE, 0xff00);
        b.request(0, BusRequest::read(SRAM_BASE));
        b.step(); // grant + execute: response data now in flight
        assert!(b.corrupt_in_flight(0, 3));
        let (_, r) = run_to_response(&mut b, 0, 100);
        assert_eq!(r.word(), 0xff00 ^ 0b1000);
        // Memory itself is untouched — the glitch was on the wire.
        assert_eq!(b.sram().peek(SRAM_BASE), 0xff00);
        // Idle bus absorbs the strike.
        assert!(!b.corrupt_in_flight(0, 3));
    }

    #[test]
    fn burst_read_returns_all_words() {
        let mut b = bus(1);
        b.request(0, BusRequest::read_burst(0x100, 4));
        let (cycles, r) = run_to_response(&mut b, 0, 100);
        assert_eq!(r.words().len(), 4);
        assert!(cycles > 8, "burst costs more than a single beat");
        for (i, w) in r.words().iter().enumerate() {
            let d = sbst_isa::Instr::decode(*w).unwrap();
            assert_eq!(
                d,
                sbst_isa::Instr::AluImm {
                    op: sbst_isa::AluOp::Add,
                    rd: Reg::R1,
                    rs1: Reg::R0,
                    imm: i as i16
                }
            );
        }
    }

    #[test]
    #[should_panic(expected = "already has a request")]
    fn double_request_panics() {
        let mut b = bus(1);
        b.request(0, BusRequest::read(0x100));
        b.request(0, BusRequest::read(0x104));
    }

    #[test]
    fn unmapped_read_returns_zero() {
        let mut b = bus(1);
        b.request(0, BusRequest::read(0xf000_0000));
        let (_, r) = run_to_response(&mut b, 0, 10);
        assert_eq!(r.word(), 0);
    }

    /// The arbiter-specificity regression: a saturating master on the
    /// top fixed-priority port starves the low-priority port past the
    /// bound certified for round-robin — proof that the bound is a
    /// property of the policy, not of the bus, and that a starved
    /// port's growing wait is visible in `max_grant_wait` even though
    /// it is never granted.
    #[test]
    fn fixed_priority_starvation_exceeds_the_round_robin_bound() {
        let mut img = FlashImage::new();
        let mut a = Asm::new();
        for i in 0..16 {
            a.addi(Reg::R1, Reg::R0, i);
        }
        img.load(&a.assemble(0x100).unwrap());
        let mut b = Bus::with_arbiter(
            FlashCtl::new(img.freeze(), FlashTiming::default()),
            Sram::default(),
            2,
            ArbiterKind::FixedPriority { ascending: false },
        );
        let rr_bound = BoundParams { arbiter: ArbiterKind::RoundRobin, ..b.bound_params() }
            .per_access_wcl(0)
            .cycles()
            .expect("round-robin is bounded");
        b.request(0, BusRequest::read(0x100));
        for _ in 0..500 {
            // Port 1 (top priority) re-files the instant it is free.
            if !b.port_busy(1) {
                let _ = b.response(1);
                b.request(1, BusRequest::read(0x140));
            }
            b.step();
        }
        assert_eq!(b.stats().grants[0], 0, "low-priority port never granted");
        assert!(
            b.stats().max_grant_wait[0] > rr_bound,
            "starved wait {} must exceed the round-robin bound {rr_bound}",
            b.stats().max_grant_wait[0]
        );
        // The honest certificate for this platform flags the port.
        assert_eq!(b.bound_params().per_access_wcl(0), sbst_obs::PortBound::Unbounded);
    }

    #[test]
    fn port_busy_tracks_lifecycle() {
        let mut b = bus(2);
        assert!(!b.port_busy(0));
        b.request(0, BusRequest::read(0x100));
        assert!(b.port_busy(0));
        let _ = run_to_response(&mut b, 0, 100);
        assert!(!b.port_busy(0));
    }
}
