//! Analytical worst-case interference bounds.
//!
//! The chaos sweeps *observe* grant latency under adversarial traffic;
//! this module *derives* it from first principles, per arbitration
//! policy, so certification can assert `observed ≤ bound` instead of
//! hoping the sweep sampled the worst case (the per-access-upper-bound
//! construction of the related interference-analysis literature, applied
//! to this simulator's exact timing model).
//!
//! ## The worst-case transaction, `t_max`
//!
//! The bus serves one transaction at a time and a transaction, once
//! granted, runs to completion. Every bound therefore reduces to "how
//! many foreign transactions can be in front of me, times how long one
//! transaction can last". The longest possible transaction latency on
//! this bus, straight from [`Bus::execute`](crate::Bus)'s latency
//! table, is the maximum of:
//!
//! * a full-line Flash burst read that misses every row buffer:
//!   `flash.access_cycles + (MAX_BURST − 1)` (later beats always hit
//!   the row that the first beat just fetched, costing 1 cycle each);
//! * a full-line SRAM burst read: `sram_latency + (MAX_BURST − 1)`;
//! * an SRAM swap: `sram_latency + 1`;
//! * an MMIO access: `2` cycles.
//!
//! With default timings (`access_cycles = 8`, `sram_latency = 4`,
//! `MAX_BURST = 8`) that is **15 cycles**.
//!
//! ## Per-arbiter per-access worst-case grant latency
//!
//! Wait cycles are counted from the step *after* a request is filed
//! until the step it is granted (the grant step itself is the first
//! cycle of service, not a wait cycle).
//!
//! * **Round-robin** — a request waits for the in-flight transaction to
//!   drain (at most `t_max − 1` remaining wait steps) and then, because
//!   the rotation serves each other port at most once before coming
//!   back around, for at most `N − 1` foreign transactions of `t_max`
//!   cycles each: `WCL = N·t_max − 1`.
//! * **TDMA** — a port is granted only in its own slot and only when
//!   the slot's remainder fits a worst-case transaction, so foreign
//!   work *never* spills into the port's slot. The worst case is
//!   requesting just after the last grantable cycle of one's own slot:
//!   the unusable slot tail (`t_max − 1` cycles) plus the `N − 1`
//!   foreign slots: `WCL = (N−1)·slot + t_max − 1`. Note this is
//!   independent of what other masters do — the composability property
//!   that makes TDMA the textbook certification arbiter.
//! * **Fixed-priority** — only the top-priority port has a bound (the
//!   in-flight drain, `t_max − 1`); every other port can be starved
//!   forever by saturating traffic above it and is flagged
//!   [`PortBound::Unbounded`]. Certification refuses such ports rather
//!   than inventing a number.
//!
//! ## Routine-level interference
//!
//! A routine that performs `k` bus accesses on one port inflates by at
//! most `k × WCL` cycles relative to its solo run — the figure
//! [`BoundParams::routine_bound`] reports and the certification report
//! carries per scenario.

use crate::arbiter::ArbiterKind;
use crate::bus::MAX_BURST;
use crate::flash::FlashTiming;
use sbst_obs::PortBound;

/// Everything the analytical bounds depend on: the bus's port count,
/// arbitration policy, and slave timings. Obtained from a live bus via
/// [`Bus::bound_params`](crate::Bus::bound_params) or built by hand to
/// certify a configuration before constructing it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BoundParams {
    /// Bus master ports.
    pub ports: usize,
    /// Arbitration policy. A `Tdma { slot_cycles: 0 }` here means
    /// "slot derived as `t_max`", mirroring bus construction.
    pub arbiter: ArbiterKind,
    /// Flash timing (worst transaction is a burst that misses the row
    /// buffers).
    pub flash: FlashTiming,
    /// SRAM access latency in cycles.
    pub sram_latency: u32,
}

impl BoundParams {
    /// The longest possible single bus transaction, in cycles.
    pub fn t_max(&self) -> u64 {
        let burst_tail = MAX_BURST as u64 - 1;
        let flash_burst = u64::from(self.flash.access_cycles) + burst_tail;
        let sram_burst = u64::from(self.sram_latency) + burst_tail;
        let sram_swap = u64::from(self.sram_latency) + 1;
        let mmio = 2;
        flash_burst.max(sram_burst).max(sram_swap).max(mmio)
    }

    /// The TDMA slot length this configuration resolves to (explicit
    /// slot, or `t_max` when derived). `None` for non-TDMA arbiters.
    pub fn tdma_slot(&self) -> Option<u64> {
        match self.arbiter {
            ArbiterKind::Tdma { slot_cycles: 0 } => Some(self.t_max()),
            ArbiterKind::Tdma { slot_cycles } => Some(u64::from(slot_cycles)),
            _ => None,
        }
    }

    /// The certified worst-case grant latency of a single request on
    /// `port`, in wait cycles.
    pub fn per_access_wcl(&self, port: usize) -> PortBound {
        let n = self.ports as u64;
        let t_max = self.t_max();
        match self.arbiter {
            ArbiterKind::RoundRobin => PortBound::Bounded(n * t_max - 1),
            ArbiterKind::Tdma { .. } => {
                let slot = self.tdma_slot().expect("tdma");
                PortBound::Bounded((n - 1) * slot + t_max - 1)
            }
            ArbiterKind::FixedPriority { ascending } => {
                let top = if ascending { 0 } else { self.ports - 1 };
                if port == top {
                    PortBound::Bounded(t_max - 1)
                } else {
                    PortBound::Unbounded
                }
            }
        }
    }

    /// Per-access bounds for every port, port 0 first.
    pub fn all(&self) -> Vec<PortBound> {
        (0..self.ports).map(|p| self.per_access_wcl(p)).collect()
    }

    /// Worst-case interference a routine performing `accesses` bus
    /// transactions on `port` can accumulate, in cycles, relative to
    /// its solo run.
    pub fn routine_bound(&self, port: usize, accesses: u64) -> PortBound {
        match self.per_access_wcl(port) {
            PortBound::Bounded(wcl) => PortBound::Bounded(wcl * accesses),
            PortBound::Unbounded => PortBound::Unbounded,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params(arbiter: ArbiterKind) -> BoundParams {
        BoundParams {
            ports: 3,
            arbiter,
            flash: FlashTiming::default(),
            sram_latency: 4,
        }
    }

    #[test]
    fn default_t_max_is_the_flash_burst() {
        // 8-cycle miss + 7 burst beats.
        assert_eq!(params(ArbiterKind::RoundRobin).t_max(), 15);
    }

    #[test]
    fn slow_sram_can_dominate_t_max() {
        let mut p = params(ArbiterKind::RoundRobin);
        p.sram_latency = 20;
        assert_eq!(p.t_max(), 27);
    }

    #[test]
    fn round_robin_bound_is_one_rotation() {
        let p = params(ArbiterKind::RoundRobin);
        for port in 0..3 {
            assert_eq!(p.per_access_wcl(port), PortBound::Bounded(3 * 15 - 1));
        }
    }

    #[test]
    fn tdma_bound_is_slot_table_distance() {
        let p = params(ArbiterKind::tdma());
        assert_eq!(p.tdma_slot(), Some(15));
        for port in 0..3 {
            // 2 foreign slots + unusable own-slot tail.
            assert_eq!(p.per_access_wcl(port), PortBound::Bounded(2 * 15 + 14));
        }
        let wide = params(ArbiterKind::Tdma { slot_cycles: 40 });
        assert_eq!(wide.per_access_wcl(0), PortBound::Bounded(2 * 40 + 14));
    }

    #[test]
    fn fixed_priority_bounds_only_the_top_port() {
        let asc = params(ArbiterKind::fixed_priority());
        assert_eq!(asc.per_access_wcl(0), PortBound::Bounded(14));
        assert_eq!(asc.per_access_wcl(1), PortBound::Unbounded);
        assert_eq!(asc.per_access_wcl(2), PortBound::Unbounded);
        let desc = params(ArbiterKind::FixedPriority { ascending: false });
        assert_eq!(desc.per_access_wcl(2), PortBound::Bounded(14));
        assert_eq!(desc.per_access_wcl(0), PortBound::Unbounded);
    }

    #[test]
    fn routine_bound_scales_linearly() {
        let p = params(ArbiterKind::RoundRobin);
        assert_eq!(p.routine_bound(0, 100), PortBound::Bounded(100 * 44));
        let fp = params(ArbiterKind::fixed_priority());
        assert_eq!(fp.routine_bound(1, 100), PortBound::Unbounded);
    }

    #[test]
    fn all_covers_every_port() {
        let bounds = params(ArbiterKind::fixed_priority()).all();
        assert_eq!(bounds.len(), 3);
        assert_eq!(bounds[0], PortBound::Bounded(14));
        assert!(bounds[1..].iter().all(|b| *b == PortBound::Unbounded));
    }
}
