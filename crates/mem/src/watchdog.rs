//! Memory-mapped watchdog timer.
//!
//! The in-field safety net behind the campaign's *hang* verdicts: when a
//! fault stalls a core forever, nothing inside the core can flag it —
//! the watchdog bites and the safety supervisor records a detection.
//! The boot-test scheduler kicks it between routines.
//!
//! Register map (word offsets from [`MMIO_BASE`](crate::MMIO_BASE)):
//!
//! | offset | read | write |
//! |---|---|---|
//! | `0x0` `LOAD` | programmed timeout | set timeout, enable, reload |
//! | `0x4` `KICK` | remaining cycles | reload the counter |
//! | `0x8` `STATUS` | bit 0 = bitten | write 1 to clear (and reload) |

/// Register offset: timeout load / enable.
pub const WDG_LOAD: u32 = 0x0;
/// Register offset: kick (reload) / remaining.
pub const WDG_KICK: u32 = 0x4;
/// Register offset: status (bit 0 = bitten), write-1-to-clear.
pub const WDG_STATUS: u32 = 0x8;

/// The watchdog timer peripheral (a bus slave; see [`Bus`](crate::Bus)).
#[derive(Debug, Clone, Default)]
pub struct Watchdog {
    timeout: u32,
    remaining: u32,
    enabled: bool,
    bitten: bool,
}

impl Watchdog {
    /// A disabled watchdog.
    pub fn new() -> Watchdog {
        Watchdog::default()
    }

    /// Advances one cycle; at zero the watchdog bites (latched).
    pub fn tick(&mut self) {
        if !self.enabled || self.bitten {
            return;
        }
        if self.remaining == 0 {
            self.bitten = true;
        } else {
            self.remaining -= 1;
        }
    }

    /// Whether the watchdog has bitten since the last clear.
    pub fn bitten(&self) -> bool {
        self.bitten
    }

    /// Whether the watchdog is armed.
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Configuration equality: programmed timeout and enable only. The
    /// countdown (`remaining`) and the latched alarm are deliberately
    /// excluded — they advance monotonically every cycle, and the
    /// campaign's livelock detection compares machine states modulo
    /// free-running timers (it separately verifies the spinning code
    /// never reads a watchdog register, so the excluded fields cannot
    /// influence the trajectory; an earlier-than-budget bite only
    /// reinforces the hang verdict).
    pub fn config_eq(&self, other: &Watchdog) -> bool {
        self.timeout == other.timeout && self.enabled == other.enabled
    }

    /// Bus read at register offset `off`.
    pub fn read(&self, off: u32) -> u32 {
        match off {
            WDG_LOAD => self.timeout,
            WDG_KICK => self.remaining,
            WDG_STATUS => u32::from(self.bitten),
            _ => 0,
        }
    }

    /// Bus write at register offset `off`.
    pub fn write(&mut self, off: u32, value: u32) {
        match off {
            WDG_LOAD => {
                self.timeout = value;
                self.remaining = value;
                self.enabled = value != 0;
            }
            WDG_KICK => self.remaining = self.timeout,
            WDG_STATUS
                if value & 1 != 0 => {
                    // Clearing the alarm also restarts the countdown —
                    // otherwise the zero counter would re-bite on the
                    // next cycle.
                    self.bitten = false;
                    self.remaining = self.timeout;
                }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_watchdog_never_bites() {
        let mut w = Watchdog::new();
        for _ in 0..1000 {
            w.tick();
        }
        assert!(!w.bitten());
    }

    #[test]
    fn bites_after_timeout_and_latches() {
        let mut w = Watchdog::new();
        w.write(WDG_LOAD, 3);
        for _ in 0..3 {
            w.tick();
            assert!(!w.bitten());
        }
        w.tick();
        assert!(w.bitten());
        w.tick(); // stays latched, no counting
        assert!(w.bitten());
        w.write(WDG_STATUS, 1);
        assert!(!w.bitten(), "write-1-to-clear");
        w.tick();
        assert!(!w.bitten(), "clear also reloaded the countdown");
    }

    #[test]
    fn kicking_restarts_the_countdown() {
        let mut w = Watchdog::new();
        w.write(WDG_LOAD, 5);
        for _ in 0..100 {
            w.tick();
            w.tick();
            w.write(WDG_KICK, 0);
        }
        assert!(!w.bitten(), "regular kicks keep it quiet");
        assert_eq!(w.read(WDG_KICK), 5);
        assert_eq!(w.read(WDG_LOAD), 5);
    }
}
