//! Property tests of the memory subsystem against simple reference
//! models: cache reads are never stale, the bus loses no transactions,
//! serves ports fairly and keeps per-port data consistent.

use std::collections::HashMap;

use proptest::prelude::*;
use sbst_mem::{
    Bus, BusRequest, Cache, CacheConfig, FlashCtl, FlashImage, FlashTiming, Sram, WritePolicy,
    SRAM_BASE,
};

// ---------------------------------------------------------------------
// Cache soundness
// ---------------------------------------------------------------------

#[derive(Debug, Clone)]
enum CacheOp {
    Fill(u16),
    Read(u16),
    Write(u16, u32),
    InvalidateAll,
}

fn arb_cache_op() -> impl Strategy<Value = CacheOp> {
    prop_oneof![
        (0u16..512).prop_map(CacheOp::Fill),
        (0u16..512).prop_map(CacheOp::Read),
        ((0u16..512), any::<u32>()).prop_map(|(a, v)| CacheOp::Write(a, v)),
        Just(CacheOp::InvalidateAll),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Whenever a read hits, it returns the latest value established for
    /// that address (by a line fill from backing memory or a write hit),
    /// and write hits keep the cache coherent with write-through memory.
    #[test]
    fn cache_reads_are_never_stale(ops in prop::collection::vec(arb_cache_op(), 1..200)) {
        let cfg = CacheConfig {
            size_bytes: 256,
            ways: 2,
            line_bytes: 16,
            policy: WritePolicy::WriteAllocate,
        };
        let mut cache = Cache::new(cfg);
        // Backing memory (what a fill would fetch) + write-through mirror.
        let mut memory: HashMap<u32, u32> = HashMap::new();
        let word = |m: &HashMap<u32, u32>, addr: u32| m.get(&addr).copied().unwrap_or(0);
        for (i, op) in ops.iter().enumerate() {
            match *op {
                CacheOp::Fill(a) => {
                    let addr = (a as u32) * 4;
                    let base = cache.line_base(addr);
                    let line: Vec<u32> =
                        (0..cfg.line_words()).map(|w| word(&memory, base + w * 4)).collect();
                    cache.fill(addr, &line);
                }
                CacheOp::Read(a) => {
                    let addr = (a as u32) * 4;
                    if let Some(v) = cache.read(addr) {
                        prop_assert_eq!(
                            v, word(&memory, addr),
                            "stale read at {:#x} after {} ops", addr, i
                        );
                    }
                }
                CacheOp::Write(a, v) => {
                    let addr = (a as u32) * 4;
                    // Write-through: memory always updated; cache updated
                    // only on hit (the LSU handles allocation policy).
                    cache.write(addr, v);
                    memory.insert(addr, v);
                }
                CacheOp::InvalidateAll => cache.invalidate_all(),
            }
            prop_assert!(
                cache.valid_lines() <= (cfg.sets() * cfg.ways) as usize,
                "more valid lines than the geometry allows"
            );
        }
    }

    /// Replacement is *true* LRU: against a reference model keeping each
    /// set's residents in recency order, an arbitrary fill/read/write
    /// stream always leaves exactly the model's lines resident — i.e. a
    /// capacity fill always evicts the least recently used way, never a
    /// tied or MRU one. (Regression: `touch` used to leave age ties, so
    /// two lines filled into invalid ways stayed tied at age 0 and a
    /// later fill could evict the most recently used line.)
    #[test]
    fn eviction_always_picks_the_true_lru(
        ops in prop::collection::vec(arb_cache_op(), 1..300)
    ) {
        // 4 sets x 4 ways x 16B lines: deep recency orders per set.
        let cfg = CacheConfig {
            size_bytes: 256,
            ways: 4,
            line_bytes: 16,
            policy: WritePolicy::WriteAllocate,
        };
        let mut cache = Cache::new(cfg);
        // Per-set resident line bases, MRU first.
        let mut model: Vec<Vec<u32>> = vec![Vec::new(); cfg.sets() as usize];
        let set_of = |addr: u32| ((addr / cfg.line_bytes) & (cfg.sets() - 1)) as usize;
        let promote = |list: &mut Vec<u32>, base: u32| {
            if let Some(pos) = list.iter().position(|&b| b == base) {
                list.remove(pos);
                list.insert(0, base);
                true
            } else {
                false
            }
        };
        for (i, op) in ops.iter().enumerate() {
            match *op {
                CacheOp::Fill(a) => {
                    let addr = (a as u32) * 4;
                    let base = cache.line_base(addr);
                    cache.fill(addr, &vec![0; cfg.line_words() as usize]);
                    let list = &mut model[set_of(addr)];
                    if !promote(list, base) {
                        if list.len() == cfg.ways as usize {
                            list.pop(); // the model's LRU
                        }
                        list.insert(0, base);
                    }
                }
                CacheOp::Read(a) => {
                    let addr = (a as u32) * 4;
                    let hit = cache.read(addr).is_some();
                    let modeled = promote(&mut model[set_of(addr)], cache.line_base(addr));
                    prop_assert_eq!(hit, modeled, "hit/miss diverged at op {}", i);
                }
                CacheOp::Write(a, v) => {
                    let addr = (a as u32) * 4;
                    let hit = cache.write(addr, v);
                    let modeled = promote(&mut model[set_of(addr)], cache.line_base(addr));
                    prop_assert_eq!(hit, modeled, "hit/miss diverged at op {}", i);
                }
                CacheOp::InvalidateAll => {
                    cache.invalidate_all();
                    for list in &mut model {
                        list.clear();
                    }
                }
            }
            // Exact residency: every modeled line present, and no extras.
            for (s, list) in model.iter().enumerate() {
                for &base in list {
                    prop_assert!(
                        cache.probe(base).is_some(),
                        "op {}: set {} lost modeled-resident line {:#x} (wrong eviction)",
                        i, s, base
                    );
                }
            }
            prop_assert_eq!(
                cache.valid_lines(),
                model.iter().map(Vec::len).sum::<usize>(),
                "op {}: resident line count diverged from the LRU model", i
            );
        }
    }

    /// After invalidation every read misses until a fill re-establishes
    /// the line.
    #[test]
    fn invalidate_means_miss(addrs in prop::collection::vec(0u16..512, 1..50)) {
        let mut cache = Cache::new(CacheConfig::dcache_4k());
        for &a in &addrs {
            let addr = (a as u32) * 4;
            cache.fill(addr, &[7; 8]);
        }
        cache.invalidate_all();
        for &a in &addrs {
            prop_assert_eq!(cache.read((a as u32) * 4), None);
        }
    }
}

// ---------------------------------------------------------------------
// Bus properties
// ---------------------------------------------------------------------

fn empty_bus(ports: usize) -> Bus {
    Bus::new(
        FlashCtl::new(FlashImage::new().freeze(), FlashTiming::default()),
        Sram::default(),
        ports,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Three ports hammer disjoint SRAM ranges with random read/write
    /// streams: every transaction completes, every read sees that port's
    /// own last write, and round-robin keeps completion counts balanced.
    #[test]
    fn bus_is_lossless_consistent_and_fair(
        streams in prop::collection::vec(
            prop::collection::vec((any::<bool>(), 0u16..64, any::<u32>()), 10..60),
            3..=3
        )
    ) {
        let mut bus = empty_bus(3);
        let mut mirrors: Vec<HashMap<u32, u32>> = vec![HashMap::new(); 3];
        let mut cursors = [0usize; 3];
        let mut inflight: [Option<(bool, u32, u32)>; 3] = [None; 3];
        let mut completed = [0usize; 3];
        let total: usize = streams.iter().map(Vec::len).sum();
        let mut guard = 0;
        while completed.iter().sum::<usize>() < total {
            guard += 1;
            prop_assert!(guard < 100_000, "bus starved: {completed:?} of {total}");
            for p in 0..3 {
                if let Some(resp) = bus.response(p) {
                    let (is_read, addr, _val) = inflight[p].take().expect("tracked");
                    if is_read {
                        let expect = mirrors[p].get(&addr).copied().unwrap_or(0);
                        prop_assert_eq!(resp.word(), expect, "port {} read {:#x}", p, addr);
                    }
                    completed[p] += 1;
                }
                if inflight[p].is_none() && cursors[p] < streams[p].len() {
                    let (is_read, slot, val) = streams[p][cursors[p]];
                    cursors[p] += 1;
                    // Disjoint 1 KiB range per port.
                    let addr = SRAM_BASE + (p as u32) * 0x400 + (slot as u32) * 4;
                    if is_read {
                        bus.request(p, BusRequest::read(addr));
                    } else {
                        bus.request(p, BusRequest::write(addr, val));
                        mirrors[p].insert(addr, val);
                    }
                    inflight[p] = Some((is_read, addr, val));
                }
            }
            bus.step();
        }
        // Everything drained.
        prop_assert_eq!(completed.iter().sum::<usize>(), total);
    }

    /// With identical continuous demand, round-robin arbitration serves
    /// the ports within one transaction of each other.
    #[test]
    fn round_robin_is_fair_under_saturation(cycles in 200u32..800) {
        let mut bus = empty_bus(3);
        let mut served = [0u32; 3];
        for _ in 0..cycles {
            for (p, count) in served.iter_mut().enumerate() {
                if bus.response(p).is_some() {
                    *count += 1;
                }
                if !bus.port_busy(p) {
                    bus.request(p, BusRequest::read(SRAM_BASE + p as u32 * 64));
                }
            }
            bus.step();
        }
        let max = *served.iter().max().unwrap();
        let min = *served.iter().min().unwrap();
        prop_assert!(max - min <= 1, "unfair service: {served:?}");
    }
}
