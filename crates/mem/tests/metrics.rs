//! Metrics-consistency properties: the observability layer's counters
//! must agree *exactly* with the simulator's own statistics, which are
//! maintained by independent code paths (`BusStats` inside the arbiter
//! vs. `BusObs` hooks; `CacheStats` vs. the copied `CacheCounters`).
//! Any drift between the two is an instrumentation bug.

use proptest::prelude::*;
use sbst_mem::{
    Bus, Cache, CacheConfig, FlashCtl, FlashImage, FlashTiming, InjectorProgram, Sram,
    TrafficInjector, WritePolicy,
};
use sbst_obs::{BusObs, TraceKind};

fn bus(ports: usize) -> Bus {
    let mut img = FlashImage::new();
    let mut a = sbst_isa::Asm::new();
    for i in 0..64 {
        a.addi(sbst_isa::Reg::R1, sbst_isa::Reg::R0, i);
    }
    img.load(&a.assemble(0x100).unwrap());
    Bus::new(FlashCtl::new(img.freeze(), FlashTiming::default()), Sram::default(), ports)
}

/// Drives `injectors` against an observed bus for `cycles`, then keeps
/// stepping (injectors quiet) until every port has drained, so every
/// submitted request has been granted and completed by the time the
/// counters are compared.
fn run_observed(seeds: &[u64], cycles: u64) -> Bus {
    let mut b = bus(seeds.len());
    // Generous ring bound: no grant event is dropped at these cycle
    // counts, so the ring can serve as an exact cross-check below.
    b.attach_obs(BusObs::new(seeds.len(), 1 << 20));
    let mut injectors: Vec<TrafficInjector> = seeds
        .iter()
        .enumerate()
        .map(|(port, &seed)| {
            let prog = InjectorProgram { stop: cycles, ..InjectorProgram::from_seed(seed) };
            TrafficInjector::new(prog, port)
        })
        .collect();
    for c in 0..cycles {
        for inj in &mut injectors {
            inj.step(&mut b, c);
        }
        b.step();
    }
    for _ in 0..10_000 {
        if (0..b.ports()).all(|p| !b.port_busy(p)) {
            break;
        }
        b.step();
    }
    assert!((0..b.ports()).all(|p| !b.port_busy(p)), "bus failed to drain");
    b
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Over arbitrary injector programs on every port, once the bus has
    /// drained:
    /// * per-port observed requests == per-port grants (nothing lost),
    /// * the grants sum to the bus's completed-transaction total,
    /// * each port's wait-histogram count equals its grant count,
    /// * each port's wait-histogram mass equals its total wait cycles,
    /// * each port's wait-histogram max equals its worst single wait,
    /// * the number of non-zero histogram samples equals the number of
    ///   requests that actually waited (cross-checked against the event
    ///   ring, which records every grant's individual wait).
    #[test]
    fn bus_observer_agrees_with_bus_stats(
        seeds in prop::collection::vec(any::<u64>(), 1..4),
        cycles in 200u64..1200,
    ) {
        let b = run_observed(&seeds, cycles);
        let stats = b.stats().clone();
        let obs = b.obs().expect("observer attached");

        let total_grants: u64 = stats.grants.iter().sum();
        prop_assert_eq!(total_grants, stats.transactions,
            "grants must sum to completed transactions after drain");

        let mut waited_by_port = vec![0u64; b.ports()];
        let mut grant_events_by_port = vec![0u64; b.ports()];
        let mut wait_mass_by_port = vec![0u64; b.ports()];
        for e in obs.ring().iter() {
            if let TraceKind::BusGrant { port, wait, .. } = e.kind {
                grant_events_by_port[port as usize] += 1;
                wait_mass_by_port[port as usize] += u64::from(wait);
                if wait > 0 {
                    waited_by_port[port as usize] += 1;
                }
            }
        }

        for p in 0..b.ports() {
            prop_assert_eq!(obs.requests()[p], stats.grants[p],
                "port {}: every submitted request must have been granted", p);
            let h = obs.wait_hist(p);
            prop_assert_eq!(h.count(), stats.grants[p],
                "port {}: one histogram sample per grant", p);
            prop_assert_eq!(h.mass(), stats.wait_cycles[p],
                "port {}: histogram mass is the port's total wait", p);
            prop_assert_eq!(h.max(), stats.max_grant_wait[p],
                "port {}: histogram max is the worst single wait", p);
            prop_assert_eq!(h.buckets().iter().sum::<u64>(), h.count(),
                "port {}: bucket counts sum to the sample count", p);
            // The unbounded ring kept every grant, so it must agree too.
            prop_assert_eq!(grant_events_by_port[p], stats.grants[p],
                "port {}: one BusGrant event per grant", p);
            prop_assert_eq!(wait_mass_by_port[p], stats.wait_cycles[p],
                "port {}: event waits sum to the port's total wait", p);
            prop_assert_eq!(h.nonzero(), waited_by_port[p],
                "port {}: non-zero samples = requests that waited", p);
        }
    }

    /// An unobserved bus driven by the *same* programs produces exactly
    /// the same statistics: attaching the observer is behaviour-neutral
    /// at the bus level.
    #[test]
    fn bus_observer_is_behaviour_neutral(
        seeds in prop::collection::vec(any::<u64>(), 1..4),
        cycles in 200u64..800,
    ) {
        let observed = run_observed(&seeds, cycles);
        let mut plain = bus(seeds.len());
        let mut injectors: Vec<TrafficInjector> = seeds
            .iter()
            .enumerate()
            .map(|(port, &seed)| {
                let prog = InjectorProgram { stop: cycles, ..InjectorProgram::from_seed(seed) };
                TrafficInjector::new(prog, port)
            })
            .collect();
        for c in 0..cycles {
            for inj in &mut injectors {
                inj.step(&mut plain, c);
            }
            plain.step();
        }
        for _ in 0..10_000 {
            if (0..plain.ports()).all(|p| !plain.port_busy(p)) {
                break;
            }
            plain.step();
        }
        prop_assert_eq!(plain.stats(), observed.stats());
    }
}

// ---------------------------------------------------------------------
// Cache counter consistency
// ---------------------------------------------------------------------

#[derive(Debug, Clone)]
enum CacheOp {
    Fill(u16),
    Read(u16),
    Write(u16, u32),
    InvalidateAll,
}

fn arb_cache_op() -> impl Strategy<Value = CacheOp> {
    prop_oneof![
        (0u16..512).prop_map(CacheOp::Fill),
        (0u16..512).prop_map(CacheOp::Read),
        ((0u16..512), any::<u32>()).prop_map(|(a, v)| CacheOp::Write(a, v)),
        Just(CacheOp::InvalidateAll),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Over an arbitrary lookup stream, the exported `CacheCounters`
    /// mirror `CacheStats` field for field, hits + misses equals the
    /// number of lookups we performed, and the observed hit/miss split
    /// matches a hand-maintained tally.
    #[test]
    fn cache_counters_mirror_cache_stats(
        ops in prop::collection::vec(arb_cache_op(), 1..250)
    ) {
        let cfg = CacheConfig {
            size_bytes: 256,
            ways: 2,
            line_bytes: 16,
            policy: WritePolicy::WriteAllocate,
        };
        let mut cache = Cache::new(cfg);
        let (mut lookups, mut hits) = (0u64, 0u64);
        for op in &ops {
            match *op {
                CacheOp::Fill(a) => {
                    let addr = (a as u32) * 4;
                    let line = vec![0u32; cfg.line_words() as usize];
                    cache.fill(addr, &line);
                }
                CacheOp::Read(a) => {
                    lookups += 1;
                    if cache.read((a as u32) * 4).is_some() {
                        hits += 1;
                    }
                }
                CacheOp::Write(a, v) => {
                    lookups += 1;
                    if cache.write((a as u32) * 4, v) {
                        hits += 1;
                    }
                }
                CacheOp::InvalidateAll => cache.invalidate_all(),
            }
        }
        let stats = cache.stats();
        let counters = stats.counters();
        prop_assert_eq!(counters.read_hits, stats.read_hits);
        prop_assert_eq!(counters.read_misses, stats.read_misses);
        prop_assert_eq!(counters.write_hits, stats.write_hits);
        prop_assert_eq!(counters.write_misses, stats.write_misses);
        prop_assert_eq!(counters.invalidations, stats.invalidations);
        prop_assert_eq!(counters.accesses(), stats.accesses());
        prop_assert_eq!(counters.hits() + counters.misses(), counters.accesses());
        prop_assert_eq!(counters.accesses(), lookups, "one counter bump per lookup");
        prop_assert_eq!(counters.hits(), hits, "hit split matches the reference tally");
    }
}
