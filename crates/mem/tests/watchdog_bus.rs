//! The watchdog as a bus slave: programmed and kicked through real bus
//! transactions, ticking with bus time.

use sbst_mem::{
    Bus, BusRequest, FlashCtl, FlashImage, FlashTiming, Sram, MMIO_BASE, WDG_KICK, WDG_LOAD,
    WDG_STATUS,
};

fn bus() -> Bus {
    Bus::new(
        FlashCtl::new(FlashImage::new().freeze(), FlashTiming::default()),
        Sram::default(),
        1,
    )
}

fn transact(bus: &mut Bus, req: BusRequest) -> u32 {
    bus.request(0, req);
    for _ in 0..100 {
        bus.step();
        if let Some(r) = bus.response(0) {
            return r.word();
        }
    }
    panic!("no response");
}

#[test]
fn program_kick_and_bite_over_the_bus() {
    let mut b = bus();
    transact(&mut b, BusRequest::write(MMIO_BASE + WDG_LOAD, 40));
    assert!(b.watchdog().enabled());
    assert_eq!(transact(&mut b, BusRequest::read(MMIO_BASE + WDG_LOAD)), 40);
    // Kick a few times: stays quiet.
    for _ in 0..5 {
        transact(&mut b, BusRequest::write(MMIO_BASE + WDG_KICK, 0));
    }
    assert_eq!(transact(&mut b, BusRequest::read(MMIO_BASE + WDG_STATUS)), 0);
    // Stop kicking: the countdown elapses while the bus idles.
    for _ in 0..60 {
        b.step();
    }
    assert!(b.watchdog().bitten());
    assert_eq!(transact(&mut b, BusRequest::read(MMIO_BASE + WDG_STATUS)), 1);
    // Clear.
    transact(&mut b, BusRequest::write(MMIO_BASE + WDG_STATUS, 1));
    assert!(!b.watchdog().bitten());
}

#[test]
fn unprogrammed_watchdog_never_interferes() {
    let mut b = bus();
    for _ in 0..10_000 {
        b.step();
    }
    assert!(!b.watchdog().bitten());
    assert!(!b.watchdog().enabled());
}
