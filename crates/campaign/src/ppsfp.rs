//! Bit-parallel (PPSFP) fault grading: one tapped fault-free tail run
//! grades up to 64 packed faults at once.
//!
//! Classic serial fault simulation re-runs the whole SoC tail once per
//! fault. PPSFP ("parallel-pattern single-fault propagation", here
//! adapted to parallel *faults*) observes that most forwarding-logic
//! faults perturb only *data* flowing through the pipeline — control
//! flow, memory addresses, stall timing and trap causes stay exactly as
//! in the fault-free run. For those faults the faulty run is the golden
//! run plus a small set of value differences, so one instrumented golden
//! ride can grade a whole word of faults:
//!
//! 1. the golden tail is run once from the warm-start snapshot with the
//!    core tap ([`TapEvent`]) and the bus operation tap enabled,
//!    recording every register commit, mux evaluation, executed
//!    instruction and bus transaction up to the core-under-test halt
//!    (the same early exit [`Experiment::run_warm`] uses);
//! 2. each *lane* (one fault of a packed [`FaultWord`]) replays the
//!    event stream, overlaying its own differences (registers, pipeline
//!    latches, memory words) on the recorded fault-free values and
//!    re-evaluating the shared [`mux_eval`] gate decomposition for its
//!    own faulted mux instance — bit-exact with what an armed
//!    [`ForwardingNetwork`](sbst_cpu::ForwardingNetwork) would compute;
//! 3. the moment a lane's differences would change *architecture* —
//!    branch direction, a jump target, a memory address, a trap cause, a
//!    CSR write operand, a store outside private/tracked memory, or any
//!    bus access by another core (or the instruction-fetch port)
//!    touching a differing word — the lane *falls off* the ride and is
//!    re-graded by the serial warm path. Fall-off is conservative:
//!    surviving lanes are cycle-identical to the golden run by
//!    construction, so their verdict is decided purely by overlaying
//!    their memory differences on the golden mailbox words.
//!
//! HDCU and ICU faults perturb stall timing and trap recognition — the
//! very things the ride assumes frozen — so their words are graded
//! serially as whole-word fallbacks.
//!
//! The serial fallback itself gets a *livelock short-circuit*: once past
//! the golden cycle count, exact state repetition
//! ([`Soc::loop_state_eq`]) is detected with a Brent-style doubling
//! anchor and verified over one full period (no performance-counter CSR
//! reads, no MMIO traffic, state equal again), after which the run is
//! classified [`Verdict::Hang`] immediately instead of burning the
//! remaining tail budget.
//!
//! Verdict equivalence with the serial warm path — over full collapsed
//! lists, forced fallbacks included — is pinned by
//! `tests/ppsfp_equivalence.rs`.

use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use sbst_cpu::{
    alu32, alu64, imm_operand, mux_eval, operand_mux_id, wb_mux_id, CoreKind, MemOp,
    MemOpKind, TapEvent, SRC_EXMEM_P0, SRC_EXMEM_P1, SRC_MEMWB_P0, SRC_MEMWB_P1, SRC_RF,
    WB_SRC_ALU, WB_SRC_CSR, WB_SRC_MEM,
};
use sbst_fault::{
    pack_density, pack_fault_words, Element, FaultList, FaultPlane, FaultSite, FaultWord,
    Polarity, Unit, Verdict,
};
use sbst_isa::{Csr, Instr};
use sbst_mem::{ArbiterKind, BusOp, Region, ReqKind};
use sbst_soc::{RunOutcome, Soc};
use sbst_stl::{RESULT_SIG_OFF, RESULT_STATUS_OFF, STATUS_DONE};

use crate::experiment::{Experiment, Observation, Snapshot};
use crate::faultsim::{grade_pending, CampaignResult, FaultGrader};

/// Bus master port of the core under test's data side (its
/// instruction-fetch side is port 0; foreign cores are ports 2+).
const CUT_DATA_PORT: usize = 1;

/// Initial Brent window (cycles an anchor is held before re-anchoring).
const LOOP_WINDOW: u64 = 64;

/// PPSFP campaign statistics: how the fault list split between the
/// bit-parallel ride and the serial fallback.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct PpsfpStats {
    /// Packed fault words formed from the list (all units).
    pub words: usize,
    /// Words graded on the bit-parallel ride (forwarding-unit words).
    pub ridden_words: usize,
    /// Faults packed into ridden words (before any lane fell off).
    pub packed_faults: usize,
    /// Mean lane occupancy of the packing (fraction of 64).
    pub pack_density: f64,
    /// Faults graded by the serial fallback (fallen-off lanes plus
    /// whole-word fallbacks for HDCU/ICU words).
    pub fallback_faults: usize,
    /// `fallback_faults` over the list size (0 for an empty list).
    pub fallback_rate: f64,
    /// Serial fallback runs decided early by the verified-livelock
    /// short-circuit instead of exhausting the tail budget.
    pub loop_short_circuits: usize,
}

// ---------------------------------------------------------------------
// Ride trace: one tapped golden tail run, recorded once per campaign.
// ---------------------------------------------------------------------

/// Events of one SoC cycle of the golden ride.
struct RideStep {
    events: Vec<TapEvent>,
    ops: Vec<BusOp>,
}

/// The recorded golden tail: per-cycle tap events and bus operations
/// from the warm-start snapshot to the core-under-test halt, plus the
/// golden mailbox words at that point.
struct RideTrace {
    steps: Vec<RideStep>,
    /// Per mailbox part: (base, golden signature word, golden status).
    mailboxes: Vec<(u32, u32, u32)>,
    cut_halt_cycle: u64,
    width: u8,
    kind: CoreKind,
    /// Forwarding-mux delay history at the snapshot (seeds lane
    /// reconstruction of `MuxPathDelay` faults).
    delay_seed: [u64; 6],
}

/// Runs the golden tail once with the core and bus taps enabled.
/// Returns `None` if the golden tail fails to halt cleanly (defensive —
/// the experiment asserts a clean golden run at assembly).
fn record_ride(experiment: &Experiment, snapshot: &Snapshot) -> Option<RideTrace> {
    let mut soc = snapshot.soc().clone();
    soc.core_mut(0).set_tap(true);
    soc.bus_mut().record_ops(true);
    let mut steps = Vec::new();
    loop {
        if soc.cycle() >= snapshot.budget() {
            return None;
        }
        soc.step();
        let events = soc.core_mut(0).take_tap_events();
        let ops = soc.bus_mut().take_ops();
        steps.push(RideStep { events, ops });
        if (0..soc.core_count()).any(|i| soc.core(i).fatal_trap()) {
            return None;
        }
        if soc.core(0).halted() {
            break;
        }
        if soc.bus().watchdog().bitten() {
            return None;
        }
    }
    let mailboxes = experiment
        .mailboxes()
        .iter()
        .map(|&mb| {
            (
                mb,
                soc.peek(mb + RESULT_SIG_OFF as u32),
                soc.peek(mb + RESULT_STATUS_OFF as u32),
            )
        })
        .collect();
    Some(RideTrace {
        steps,
        mailboxes,
        cut_halt_cycle: soc.cycle(),
        width: soc.core(0).forwarding_unit().width(),
        kind: soc.core(0).config().kind,
        delay_seed: *snapshot.soc().core(0).forwarding_unit().delay_state(),
    })
}

// ---------------------------------------------------------------------
// Lane state
// ---------------------------------------------------------------------

/// Architectural-register differences of one lane (value at the faulty
/// run minus presence bit; absent = equal to golden).
#[derive(Debug, Clone, Copy, Default)]
struct RegDiff {
    mask: u32,
    vals: [u32; 32],
}

impl RegDiff {
    fn get(&self, r: u8) -> Option<u32> {
        (self.mask >> r & 1 == 1).then(|| self.vals[r as usize])
    }

    /// Records the lane value committed to `r` (clears the diff when it
    /// matches golden — a golden-equal commit overwrites any stale
    /// difference).
    fn commit(&mut self, r: u8, lane: u32, golden: u32) {
        if lane == golden {
            self.mask &= !(1 << r);
        } else {
            self.mask |= 1 << r;
            self.vals[r as usize] = lane;
        }
    }
}

/// EX/MEM latch differences of one lane's in-flight entry.
#[derive(Debug, Clone, Copy, Default)]
struct LatchDiff {
    /// Lane ALU/link value, if it differs from golden.
    alu: Option<u64>,
    /// Lane store/swap payload, if it differs from golden.
    wdata: Option<u32>,
}

/// One fault lane riding the golden trace.
struct Lane {
    /// Index into the campaign fault list.
    index: usize,
    /// Faulted forwarding-mux instance.
    instance: u16,
    fault: (Element, Polarity),
    /// Delay history of the faulted mux instance (mirrors
    /// `ForwardingNetwork::delay_state` of a really-armed run).
    last_out: u64,
    regs: RegDiff,
    exmem: [Option<LatchDiff>; 2],
    /// Lane writeback value per pipe, if it differs from golden.
    memwb: [Option<u64>; 2],
    /// Forwarding-view snapshots taken at the start of each step
    /// (EX/MEM alu and MEM/WB value differences, per pipe).
    fwd_ex: [Option<u64>; 2],
    fwd_wb: [Option<u64>; 2],
    /// Lane operand values of the current issue packet, if differing.
    ops: [[Option<u64>; 2]; 2],
    /// Lane memory view: value at every word address where the lane's
    /// memory differs (or ever differed — entries are removed when a
    /// golden-equal store reconverges the word) from golden.
    mem: HashMap<u32, u32>,
    /// Old lane value at the in-flight bus swap's address, recorded at
    /// grant time (`Some(None)` = equal to golden).
    swap_overlay: Option<Option<u32>>,
    /// The in-flight swap's write difference was applied at grant time
    /// (bus swaps); private TCM swaps apply it at the WB mux instead.
    swap_applied: bool,
}

/// Signals that a lane's differences escaped the data-only regime and
/// the lane must fall back to the serial path.
struct FallOff;

impl Lane {
    fn new(index: usize, site: FaultSite, seed: &[u64; 6]) -> Lane {
        Lane {
            index,
            instance: site.instance,
            fault: (site.element, site.polarity),
            last_out: seed.get(site.instance as usize).copied().unwrap_or(0),
            regs: RegDiff::default(),
            exmem: [None; 2],
            memwb: [None; 2],
            fwd_ex: [None; 2],
            fwd_wb: [None; 2],
            ops: [[None; 2]; 2],
            mem: HashMap::new(),
            swap_overlay: None,
            swap_applied: false,
        }
    }

    /// Applies the memory effect of a store/swap: the lane wrote
    /// `wdata` (`None` = golden value) into `addr` where golden wrote
    /// `golden_w`. Tracked for SRAM and the private data TCM; a
    /// differing write anywhere else (MMIO side effects, instruction
    /// TCM self-modification, Flash) falls off.
    fn apply_write(
        &mut self,
        union: &mut HashMap<u32, u64>,
        bit: u64,
        addr: u32,
        golden_w: u32,
        wdata: Option<u32>,
    ) -> Result<(), FallOff> {
        let lane_w = wdata.unwrap_or(golden_w);
        match Region::of(addr) {
            Region::Sram | Region::Dtcm => {
                if lane_w == golden_w {
                    self.mem.remove(&addr);
                } else {
                    self.mem.insert(addr, lane_w);
                    // Sticky: the union entry survives reconvergence, so
                    // foreign accesses during any store-buffer drain
                    // window still fall the lane off conservatively.
                    *union.entry(addr).or_insert(0) |= bit;
                }
                Ok(())
            }
            _ if lane_w != golden_w => Err(FallOff),
            _ => Ok(()),
        }
    }

    /// Lane view of a 64-bit register-file read (mirrors
    /// `Core::read_src` pairing rules over the golden value).
    fn read_src(&self, golden: u64, base: u8, is64: bool) -> u64 {
        let lo = self.regs.get(base).unwrap_or(golden as u32);
        if is64 && base.is_multiple_of(2) && base < 31 {
            let hi = self.regs.get(base + 1).unwrap_or((golden >> 32) as u32);
            lo as u64 | (hi as u64) << 32
        } else {
            lo as u64
        }
    }
}

// ---------------------------------------------------------------------
// Lane event processing
// ---------------------------------------------------------------------

/// Replays one recorded cycle for one lane. `Err(FallOff)` means the
/// lane diverged architecturally and must be re-graded serially.
fn lane_step(
    lane: &mut Lane,
    step: &RideStep,
    trace: &RideTrace,
    union: &mut HashMap<u32, u64>,
    bit: u64,
) -> Result<(), FallOff> {
    // The core snapshots its pipeline registers for the forwarding
    // network before anything else in the cycle; mirror that.
    lane.fwd_ex = [lane.exmem[0].and_then(|l| l.alu), lane.exmem[1].and_then(|l| l.alu)];
    lane.fwd_wb = lane.memwb;

    for ev in &step.events {
        match *ev {
            TapEvent::WbCommit { pipe, dest, value } => {
                let lane_v = lane.memwb[pipe].take();
                if let Some((base, is64)) = dest {
                    let lv = lane_v.unwrap_or(value);
                    if base != 0 {
                        lane.regs.commit(base, lv as u32, value as u32);
                    }
                    if is64 && base < 31 {
                        lane.regs.commit(base + 1, (lv >> 32) as u32, (value >> 32) as u32);
                    }
                }
            }
            TapEvent::WbMux { pipe, inputs, sel, out, mem } => {
                lane_wb_mux(lane, union, bit, trace, pipe, &inputs, sel, out, mem)?;
            }
            TapEvent::ExOperand { slot, operand, rf_src, inputs, sel, out } => {
                let mut li = inputs;
                if let Some((base, is64)) = rf_src {
                    li[SRC_RF] = lane.read_src(inputs[SRC_RF], base, is64);
                }
                for (i, d) in [
                    (SRC_EXMEM_P0, lane.fwd_ex[0]),
                    (SRC_EXMEM_P1, lane.fwd_ex[1]),
                    (SRC_MEMWB_P0, lane.fwd_wb[0]),
                    (SRC_MEMWB_P1, lane.fwd_wb[1]),
                ] {
                    if let Some(v) = d {
                        li[i] = v;
                    }
                }
                let id = operand_mux_id(slot, operand);
                let lane_out = if id == lane.instance {
                    mux_eval(&li, sel, trace.width, Some(lane.fault), &mut lane.last_out)
                } else if li != inputs {
                    let mut dummy = 0;
                    mux_eval(&li, sel, trace.width, None, &mut dummy)
                } else {
                    out
                };
                lane.ops[slot][operand] = (lane_out != out).then_some(lane_out);
            }
            TapEvent::ExExec { slot, instr, ops, alu: _, mem, raise: _, .. } => {
                let lane_ops = [
                    lane.ops[slot][0].take().unwrap_or(ops[0]),
                    lane.ops[slot][1].take().unwrap_or(ops[1]),
                ];
                lane.exmem[slot] = if lane_ops == ops {
                    None
                } else {
                    let latch = lane_exec(trace.kind, instr, ops, lane_ops, mem)?;
                    (latch.alu.is_some() || latch.wdata.is_some()).then_some(latch)
                };
            }
        }
    }

    for op in &step.ops {
        match op.port {
            CUT_DATA_PORT => {
                if let ReqKind::Swap(golden_w) = op.kind {
                    // The swap's data phase commits at grant: record the
                    // pre-swap lane value for the WB-stage read and apply
                    // the write difference now, before any foreign access
                    // can observe the new word. Memory ops only ever
                    // occupy pipe 0, so the in-flight latch is exmem[0].
                    lane.swap_overlay = Some(lane.mem.get(&op.addr).copied());
                    let wd = lane.exmem[0].and_then(|l| l.wdata);
                    lane.apply_write(union, bit, op.addr, golden_w, wd)?;
                    lane.swap_applied = true;
                }
                // Reads are the lane's own loads/fills (overlaid at the
                // WB mux); posted writes were applied at their WB mux.
            }
            _ => {
                // Foreign master — or the core under test's own
                // instruction fetches: any touched word the lane ever
                // diverged on invalidates the shared-trajectory
                // assumption (stale caches, divergent fetched code).
                if !union.is_empty()
                    && op.words().any(|a| union.get(&a).is_some_and(|m| m & bit != 0))
                {
                    return Err(FallOff);
                }
            }
        }
    }
    Ok(())
}

/// The WB-select mux of `pipe` for one lane: overlay latch and memory
/// differences on the recorded inputs, re-evaluate if needed, apply
/// store effects, and latch the lane's writeback value.
#[allow(clippy::too_many_arguments)]
fn lane_wb_mux(
    lane: &mut Lane,
    union: &mut HashMap<u32, u64>,
    bit: u64,
    trace: &RideTrace,
    pipe: usize,
    inputs: &[u64; 3],
    sel: usize,
    out: u64,
    mem: Option<MemOp>,
) -> Result<(), FallOff> {
    let latch = lane.exmem[pipe].take().unwrap_or_default();
    let mut li = [
        latch.alu.unwrap_or(inputs[WB_SRC_ALU]),
        inputs[WB_SRC_MEM],
        inputs[WB_SRC_CSR],
    ];
    if let Some(op) = mem {
        match op.kind {
            MemOpKind::Load => {
                if let Some(&v) = lane.mem.get(&op.addr) {
                    li[WB_SRC_MEM] = v as u64;
                }
            }
            MemOpKind::Swap => {
                match lane.swap_overlay.take() {
                    // Bus swap: read and write were resolved at grant.
                    Some(overlay) => {
                        if let Some(v) = overlay {
                            li[WB_SRC_MEM] = v as u64;
                        }
                    }
                    // Private TCM swap: same-cycle read-then-write, no
                    // bus visibility — resolve both here.
                    None => {
                        if let Some(&v) = lane.mem.get(&op.addr) {
                            li[WB_SRC_MEM] = v as u64;
                        }
                    }
                }
                if !lane.swap_applied {
                    lane.apply_write(union, bit, op.addr, op.wdata, latch.wdata)?;
                }
                lane.swap_applied = false;
            }
            MemOpKind::Store => {
                lane.apply_write(union, bit, op.addr, op.wdata, latch.wdata)?;
            }
        }
    }
    let id = wb_mux_id(pipe);
    let lane_out = if id == lane.instance {
        mux_eval(&li, Some(sel), trace.width, Some(lane.fault), &mut lane.last_out)
    } else if li[..] != inputs[..] {
        let mut dummy = 0;
        mux_eval(&li, Some(sel), trace.width, None, &mut dummy)
    } else {
        out
    };
    lane.memwb[pipe] = (lane_out != out).then_some(lane_out);
    Ok(())
}

/// Re-executes one instruction's data semantics with the lane's operand
/// values, checking every architectural decision against the golden
/// outcome. Returns the lane's EX/MEM latch differences.
fn lane_exec(
    kind: CoreKind,
    instr: Option<Instr>,
    g_ops: [u64; 2],
    l_ops: [u64; 2],
    event_mem: Option<MemOp>,
) -> Result<LatchDiff, FallOff> {
    let mut latch = LatchDiff::default();
    let (ga, gb) = (g_ops[0] as u32, g_ops[1] as u32);
    let (la, lb) = (l_ops[0] as u32, l_ops[1] as u32);
    let Some(instr) = instr else { return Ok(latch) }; // Illegal in both runs
    match instr {
        Instr::Nop | Instr::Halt | Instr::Lui { .. } | Instr::Jal { .. }
        | Instr::Cache(_) | Instr::Mret | Instr::CsrRead { .. } => {}
        Instr::Alu { op, .. } => {
            let (gv, gc) = alu32(op, ga, gb);
            let (lv, lc) = alu32(op, la, lb);
            if lc != gc {
                return Err(FallOff);
            }
            latch.alu = (lv != gv).then_some(lv as u64);
        }
        Instr::AluImm { op, imm, .. } => {
            let b = imm_operand(op, imm);
            let (gv, gc) = alu32(op, ga, b);
            let (lv, lc) = alu32(op, la, b);
            if lc != gc {
                return Err(FallOff);
            }
            latch.alu = (lv != gv).then_some(lv as u64);
        }
        Instr::Alu64 { op, rd, rs1, rs2 } => {
            let legal = kind.has_alu64()
                && rd.is_even()
                && rs1.is_even()
                && rs2.is_even()
                && rd.index() < 31;
            if legal {
                let (gv, gc) = alu64(op, g_ops[0], g_ops[1]);
                let (lv, lc) = alu64(op, l_ops[0], l_ops[1]);
                if lc != gc {
                    return Err(FallOff);
                }
                latch.alu = (lv != gv).then_some(lv);
            } // else: Illegal in both runs
        }
        Instr::Load { off, .. } => {
            if la.wrapping_add(off as i32 as u32) != ga.wrapping_add(off as i32 as u32) {
                return Err(FallOff); // address divergence
            }
        }
        Instr::Store { off, .. } => {
            if la.wrapping_add(off as i32 as u32) != ga.wrapping_add(off as i32 as u32) {
                return Err(FallOff);
            }
            if event_mem.is_some() {
                latch.wdata = (lb != gb).then_some(lb);
            } // unaligned in both runs otherwise
        }
        Instr::Amoswap { .. } => {
            if la != ga {
                return Err(FallOff);
            }
            if event_mem.is_some() {
                latch.wdata = (lb != gb).then_some(lb);
            }
        }
        Instr::Branch { cond, .. } => {
            if cond.eval(la, lb) != cond.eval(ga, gb) {
                return Err(FallOff); // taken-direction divergence
            }
        }
        Instr::Jalr { off, .. } => {
            if la.wrapping_add(off as i32 as u32) & !3 != ga.wrapping_add(off as i32 as u32) & !3 {
                return Err(FallOff); // target divergence
            }
        }
        Instr::CsrWrite { .. } => {
            if la != ga {
                return Err(FallOff); // diffed operand into CSR/ICU state
            }
        }
    }
    Ok(latch)
}

// ---------------------------------------------------------------------
// Word grading
// ---------------------------------------------------------------------

/// Grades one forwarding fault word against the recorded trace:
/// verdicts for surviving lanes, fall-off indices for the rest.
fn grade_forwarding_word(
    word: &FaultWord,
    trace: &RideTrace,
    golden: &Observation,
) -> Vec<(usize, Verdict)> {
    let mut lanes: Vec<Lane> = word
        .lanes()
        .iter()
        .map(|&(index, site)| Lane::new(index, site, &trace.delay_seed))
        .collect();
    let mut alive: u64 = if lanes.len() == 64 { u64::MAX } else { (1u64 << lanes.len()) - 1 };
    let mut union: HashMap<u32, u64> = HashMap::new();
    for step in &trace.steps {
        if alive == 0 {
            break;
        }
        for (l, lane) in lanes.iter_mut().enumerate() {
            let bit = 1u64 << l;
            if alive & bit == 0 {
                continue;
            }
            if lane_step(lane, step, trace, &mut union, bit).is_err() {
                alive &= !bit;
            }
        }
    }
    let mut verdicts = Vec::new();
    for (l, lane) in lanes.iter().enumerate() {
        if alive & (1 << l) == 0 {
            continue; // fell off: graded serially
        }
        // The lane reached the core-under-test halt cycle-identically
        // to the golden run; its observation is the golden mailbox
        // state overlaid with its memory differences.
        let mut signature = 0u32;
        let mut status = STATUS_DONE;
        for (i, &(mb, g_sig, g_status)) in trace.mailboxes.iter().enumerate() {
            let sig = lane.mem.get(&(mb + RESULT_SIG_OFF as u32)).copied().unwrap_or(g_sig);
            let s = lane
                .mem
                .get(&(mb + RESULT_STATUS_OFF as u32))
                .copied()
                .unwrap_or(g_status);
            signature ^= sig.rotate_left(i as u32);
            if s != STATUS_DONE {
                status = s;
            }
        }
        let obs = Observation {
            outcome: RunOutcome::AllHalted { cycles: trace.cut_halt_cycle },
            signature,
            status,
            cycles: trace.cut_halt_cycle,
            if_stalls: 0,
            mem_stalls: 0,
        };
        verdicts.push((lane.index, Experiment::classify(golden, &obs)));
    }
    verdicts
}

// ---------------------------------------------------------------------
// Serial fallback with livelock short-circuit
// ---------------------------------------------------------------------

enum LoopProbe {
    /// State repeats over one verified period: the run can never halt.
    Confirmed,
    /// The loop body reads excluded free-running state (counter CSRs or
    /// MMIO) — periodicity of the visible state proves nothing.
    Tainted,
    /// The anchor match was a coincidence; keep simulating.
    NotPeriodic,
}

fn counter_csr(csr: Csr) -> bool {
    matches!(csr, Csr::Cycles | Csr::Retired | Csr::IfStalls | Csr::MemStalls | Csr::HazStalls)
}

/// Verifies a candidate period by re-simulating one period on a tapped
/// clone: the loop must not read a performance-counter CSR on any core,
/// must not touch MMIO, and must land on the same state again.
fn verify_loop(soc: &Soc, period: u64) -> LoopProbe {
    let mut probe = soc.clone();
    for i in 0..probe.core_count() {
        probe.core_mut(i).set_tap(true);
    }
    probe.bus_mut().record_ops(true);
    for _ in 0..period {
        probe.step();
        for i in 0..probe.core_count() {
            for ev in probe.core_mut(i).take_tap_events() {
                if let TapEvent::ExExec { instr: Some(Instr::CsrRead { csr, .. }), .. } = ev {
                    if counter_csr(csr) {
                        return LoopProbe::Tainted;
                    }
                }
            }
        }
        for op in probe.bus_mut().take_ops() {
            if op.words().any(|a| Region::of(a) == Region::Mmio) {
                return LoopProbe::Tainted;
            }
        }
    }
    if probe.loop_state_eq(soc) {
        LoopProbe::Confirmed
    } else {
        LoopProbe::NotPeriodic
    }
}

/// [`Experiment::run_warm`] plus the livelock short-circuit: once past
/// the golden cycle count, a Brent-style doubling anchor watches for
/// exact state repetition; a verified loop is classified as the
/// watchdog outcome immediately (verdict-identical — a looping run can
/// only ever end by budget exhaustion or watchdog bite, both `Hang`).
pub(crate) fn run_warm_loopcheck(
    experiment: &Experiment,
    snapshot: &Snapshot,
    golden_cycles: u64,
    plane: FaultPlane,
    loop_hits: &AtomicUsize,
) -> Observation {
    let mut soc = snapshot.soc().clone();
    soc.core_mut(0).set_plane(plane);
    // TDMA slotting depends on the absolute cycle (excluded from the
    // state comparison) and chaos planes are nondeterministic state
    // outside it: both disable detection, never correctness.
    let mut detect = !matches!(soc.bus().arbiter_kind(), ArbiterKind::Tdma { .. })
        && !soc.has_chaos();
    let mut anchor: Option<Soc> = None;
    let mut anchor_cycle = 0u64;
    let mut window = LOOP_WINDOW;
    let outcome = loop {
        if soc.cycle() >= snapshot.budget() {
            break RunOutcome::Watchdog { cycles: soc.cycle() };
        }
        soc.step();
        if let Some(core) = (0..soc.core_count()).find(|&i| soc.core(i).fatal_trap()) {
            break RunOutcome::FatalTrap { core, cycles: soc.cycle() };
        }
        if soc.core(0).halted() {
            break RunOutcome::AllHalted { cycles: soc.cycle() };
        }
        if soc.bus().watchdog().bitten() {
            break RunOutcome::Watchdog { cycles: soc.cycle() };
        }
        if detect && soc.cycle() > golden_cycles {
            match &anchor {
                None => {
                    anchor = Some(soc.clone());
                    anchor_cycle = soc.cycle();
                }
                Some(a) if soc.loop_state_eq(a) => {
                    match verify_loop(&soc, soc.cycle() - anchor_cycle) {
                        LoopProbe::Confirmed => {
                            loop_hits.fetch_add(1, Ordering::Relaxed);
                            break RunOutcome::Watchdog { cycles: snapshot.budget() };
                        }
                        LoopProbe::Tainted => {
                            detect = false;
                            anchor = None;
                        }
                        LoopProbe::NotPeriodic => {
                            anchor = Some(soc.clone());
                            anchor_cycle = soc.cycle();
                            window *= 2;
                        }
                    }
                }
                Some(_) if soc.cycle() - anchor_cycle >= window => {
                    anchor = Some(soc.clone());
                    anchor_cycle = soc.cycle();
                    window *= 2;
                }
                Some(_) => {}
            }
        }
    };
    experiment.observe(&soc, outcome)
}

/// The fallback grader: the serial warm path with the livelock
/// short-circuit. Used for fallen-off lanes and HDCU/ICU words.
pub(crate) struct PpsfpFallbackGrader<'a> {
    pub experiment: &'a Experiment,
    pub golden: &'a Observation,
    pub snapshot: &'a Snapshot,
    pub loop_hits: &'a AtomicUsize,
}

impl FaultGrader for PpsfpFallbackGrader<'_> {
    fn grade(&self, site: FaultSite) -> Verdict {
        let faulty = run_warm_loopcheck(
            self.experiment,
            self.snapshot,
            self.golden.cycles,
            FaultPlane::armed(site),
            self.loop_hits,
        );
        Experiment::classify(self.golden, &faulty)
    }
}

// ---------------------------------------------------------------------
// Campaign entry points
// ---------------------------------------------------------------------

/// [`run_campaign_ppsfp_detailed`] without the per-fault records.
pub fn run_campaign_ppsfp(
    experiment: &Experiment,
    golden: &Observation,
    faults: &FaultList,
    threads: usize,
) -> CampaignResult {
    run_campaign_ppsfp_detailed(experiment, golden, faults, threads).0
}

/// The bit-parallel campaign: packs the list into [`FaultWord`]s, rides
/// forwarding words on one tapped golden tail, and grades everything
/// else (fallen-off lanes, HDCU/ICU words) through the serial warm path
/// with the livelock short-circuit. Verdicts are returned in fault-list
/// order and are bit-identical to [`run_campaign_warm_detailed`]
/// (pinned by the equivalence wall); each fault is graded exactly once.
///
/// [`run_campaign_warm_detailed`]: crate::run_campaign_warm_detailed
pub fn run_campaign_ppsfp_detailed(
    experiment: &Experiment,
    golden: &Observation,
    faults: &FaultList,
    threads: usize,
) -> (CampaignResult, Vec<(FaultSite, Verdict)>, PpsfpStats) {
    let sites = faults.sites();
    let words = pack_fault_words(sites);
    let mut stats = PpsfpStats {
        words: words.len(),
        pack_density: pack_density(&words),
        ..PpsfpStats::default()
    };
    let slots = Mutex::new(vec![None::<Verdict>; sites.len()]);
    if sites.is_empty() {
        return (CampaignResult::default(), Vec::new(), stats);
    }
    let snapshot = experiment.snapshot(golden);

    let ridden: Vec<&FaultWord> =
        words.iter().filter(|w| w.unit() == Unit::Forwarding).collect();
    if !ridden.is_empty() {
        if let Some(trace) = record_ride(experiment, &snapshot) {
            stats.ridden_words = ridden.len();
            stats.packed_faults = ridden.iter().map(|w| w.len()).sum();
            let next = AtomicUsize::new(0);
            let workers = crate::faultsim::resolve_threads(threads).min(ridden.len());
            std::thread::scope(|scope| {
                for _ in 0..workers {
                    scope.spawn(|| loop {
                        let t = next.fetch_add(1, Ordering::Relaxed);
                        let Some(word) = ridden.get(t) else { break };
                        // A panicking word grader (harness defect) only
                        // demotes its lanes to the serial fallback.
                        let graded = catch_unwind(AssertUnwindSafe(|| {
                            grade_forwarding_word(word, &trace, golden)
                        }))
                        .unwrap_or_default();
                        let mut slots = slots.lock().expect("verdict slots");
                        for (index, verdict) in graded {
                            slots[index] = Some(verdict);
                        }
                    });
                }
            });
        }
    }

    let graded_on_ride =
        slots.lock().expect("verdict slots").iter().filter(|v| v.is_some()).count();
    stats.fallback_faults = sites.len() - graded_on_ride;
    stats.fallback_rate = stats.fallback_faults as f64 / sites.len() as f64;

    let loop_hits = AtomicUsize::new(0);
    let grader = PpsfpFallbackGrader {
        experiment,
        golden,
        snapshot: &snapshot,
        loop_hits: &loop_hits,
    };
    let errors = Mutex::new(Vec::new());
    grade_pending(&grader, sites, &slots, &errors, threads, &|_| {});
    stats.loop_short_circuits = loop_hits.load(Ordering::Relaxed);

    let records: Vec<(FaultSite, Verdict)> = sites
        .iter()
        .zip(slots.into_inner().expect("verdict slots"))
        .map(|(&s, v)| (s, v.expect("every fault graded")))
        .collect();
    (CampaignResult::from_records(&records), records, stats)
}

/// [`run_campaign_ppsfp_detailed`] plus wall-clock telemetry in the
/// observability layer's type.
pub fn run_campaign_ppsfp_telemetry(
    experiment: &Experiment,
    golden: &Observation,
    faults: &FaultList,
    threads: usize,
) -> (CampaignResult, Vec<(FaultSite, Verdict)>, sbst_obs::PpsfpTelemetry) {
    let start = std::time::Instant::now();
    let (result, records, stats) =
        run_campaign_ppsfp_detailed(experiment, golden, faults, threads);
    let elapsed = start.elapsed().as_secs_f64();
    let telemetry = sbst_obs::PpsfpTelemetry {
        total: result.total as u64,
        words: stats.words as u64,
        ridden_words: stats.ridden_words as u64,
        packed_faults: stats.packed_faults as u64,
        pack_density: stats.pack_density,
        fallback_faults: stats.fallback_faults as u64,
        fallback_rate: stats.fallback_rate,
        loop_short_circuits: stats.loop_short_circuits as u64,
        elapsed_secs: elapsed,
        faults_per_sec: if elapsed > 0.0 { result.total as f64 / elapsed } else { 0.0 },
        mix: result.mix(),
    };
    (result, records, telemetry)
}
