//! Ablations of the cache-based wrapper: remove one ingredient at a time
//! and measure what breaks.
//!
//! The paper's §III argues each element of Figure 2b is necessary:
//! cache invalidation (3), the loading loop (1), full cache residency
//! (2.2) and the dummy-load transform under no-write-allocate (1). These
//! experiments make the argument quantitative: for each variant we check
//! whether the signature stays **deterministic** across SoC
//! configurations and what **fault coverage** it reaches.

use sbst_cpu::CoreKind;
use sbst_fault::Unit;
use sbst_soc::Scenario;

use crate::experiment::{ExecStyle, Experiment};
use crate::faultsim::run_campaign_collapsed;
use crate::routines_for;
use crate::tables::Effort;

/// One wrapper variant under ablation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Variant {
    /// The full method: invalidate + 2 iterations, cached.
    Full,
    /// No cache invalidation before the loop (paper §III.3).
    NoInvalidate,
    /// Single iteration — no loading loop (paper §III.1).
    NoLoadingLoop,
    /// Three iterations (does the extra loop buy anything?).
    ThreeIterations,
    /// Legacy uncached execution (the baseline the paper replaces).
    Uncached,
}

impl Variant {
    /// All variants, `Full` first.
    pub const ALL: [Variant; 5] = [
        Variant::Full,
        Variant::NoInvalidate,
        Variant::NoLoadingLoop,
        Variant::ThreeIterations,
        Variant::Uncached,
    ];

    fn style(self) -> ExecStyle {
        match self {
            Variant::Uncached => ExecStyle::LegacyUncached,
            _ => ExecStyle::CacheWrapped,
        }
    }

    fn wrap_overrides(self) -> (u32, bool) {
        // (iterations, invalidate)
        match self {
            Variant::Full => (2, true),
            Variant::NoInvalidate => (2, false),
            Variant::NoLoadingLoop => (1, true),
            Variant::ThreeIterations => (3, true),
            Variant::Uncached => (1, false),
        }
    }
}

impl std::fmt::Display for Variant {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            Variant::Full => "full method",
            Variant::NoInvalidate => "no invalidation",
            Variant::NoLoadingLoop => "no loading loop",
            Variant::ThreeIterations => "3 iterations",
            Variant::Uncached => "uncached (legacy)",
        };
        f.write_str(s)
    }
}

/// Result of ablating one variant.
#[derive(Debug, Clone, PartialEq)]
pub struct AblationRow {
    /// The variant.
    pub variant: Variant,
    /// Signature identical across all probed SoC configurations.
    pub deterministic: bool,
    /// Distinct signatures observed.
    pub distinct_signatures: usize,
    /// Fault coverage on the sampled list \[%\] (graded against the
    /// variant's own per-scenario golden).
    pub coverage: f64,
    /// Execution cycles of the golden run (first configuration).
    pub cycles: u64,
}

/// Runs the ablation study on the HDCU routine (the most
/// contention-sensitive one: it folds performance counters).
pub fn ablate(kind: CoreKind, effort: &Effort) -> Vec<AblationRow> {
    let factory = routines_for(Unit::Hdcu);
    let list = sbst_cpu::unit_fault_list(kind, Unit::Hdcu);
    let sample = effort.sample(&list);
    let mut rows = Vec::new();
    for variant in Variant::ALL {
        let (iterations, invalidate) = variant.wrap_overrides();
        let mut signatures = Vec::new();
        let mut coverage = 0.0;
        let mut cycles = 0;
        for seed in 0..effort.seeds.max(2) {
            let scenario =
                Scenario { active_cores: 3, skew_seed: seed, ..Scenario::single_core() };
            let exp = Experiment::assemble_with_wrap(
                &*factory,
                kind,
                variant.style(),
                &scenario,
                iterations,
                invalidate,
            )
            .expect("ablation experiment");
            let golden = exp.golden();
            signatures.push(golden.signature);
            if seed == 0 {
                cycles = golden.cycles;
                coverage = run_campaign_collapsed(&exp, &golden, &sample, effort.threads).coverage();
            }
        }
        signatures.sort_unstable();
        signatures.dedup();
        rows.push(AblationRow {
            variant,
            deterministic: signatures.len() == 1,
            distinct_signatures: signatures.len(),
            coverage,
            cycles,
        });
    }
    rows
}

/// Renders the ablation study.
pub fn render_ablation(rows: &[AblationRow]) -> String {
    let mut out = String::from(
        "ABLATION — WRAPPER VARIANTS (HDCU routine, 3 active cores)\n\
         Variant            | Deterministic | Distinct sigs | FC [%] | Cycles\n",
    );
    for r in rows {
        out.push_str(&format!(
            "{:<18} | {:>13} | {:>13} | {:>6.2} | {:>6}\n",
            r.variant.to_string(),
            if r.deterministic { "YES" } else { "no" },
            r.distinct_signatures,
            r.coverage,
            r.cycles
        ));
    }
    out
}
