//! Campaign telemetry: throughput, verdict mix, warm-start hit rate and
//! periodic progress snapshots, collected through the engine's
//! `on_done` observer seam.
//!
//! The observer runs outside the verdict lock (see
//! [`grade_pending`](crate::faultsim)), so snapshots can arrive out of
//! order; a monotonic done-count guard keeps the recorded progress
//! strictly increasing. Telemetry never changes what is graded: the
//! verdicts and aggregates are identical to the plain
//! [`run_campaign_detailed`](crate::run_campaign_detailed) /
//! [`run_campaign_warm_detailed`](crate::run_campaign_warm_detailed)
//! paths.

use std::sync::Mutex;
use std::time::Instant;

use sbst_fault::{FaultList, FaultSite, Verdict};
use sbst_obs::{CampaignTelemetry, ProgressSnapshot};

use crate::experiment::{Experiment, Observation};
use crate::faultsim::{
    grade_pending, CampaignResult, ExperimentGrader, FaultGrader, WarmExperimentGrader,
};

/// Progress snapshots targeted per campaign (the last fault always
/// produces one, so short campaigns still get an end-of-run sample).
const TARGET_SNAPSHOTS: usize = 8;

/// Grades `faults` with `grader` while collecting telemetry. The
/// wall-clock fields (`elapsed_secs`, `faults_per_sec`, snapshot
/// timings) are the only non-deterministic outputs; verdicts and the
/// mix are bit-identical to the untelemetered engine.
pub fn run_campaign_graded_telemetry(
    grader: &dyn FaultGrader,
    faults: &FaultList,
    threads: usize,
) -> (CampaignResult, Vec<(FaultSite, Verdict)>, CampaignTelemetry) {
    let sites = faults.sites();
    let total = sites.len();
    let pending = Mutex::new(vec![None::<Verdict>; total]);
    let errors = Mutex::new(Vec::new());
    let start = Instant::now();
    let interval = (total / TARGET_SNAPSHOTS).max(1);
    // (highest done-count recorded, snapshots) — the guard keeps
    // progress monotonic even when observer calls arrive out of order.
    let progress: Mutex<(usize, Vec<ProgressSnapshot>)> = Mutex::new((0, Vec::new()));
    grade_pending(grader, sites, &pending, &errors, threads, &|slots| {
        let done = slots.iter().filter(|v| v.is_some()).count();
        if !done.is_multiple_of(interval) && done != total {
            return;
        }
        let elapsed = start.elapsed().as_secs_f64();
        let mut state = progress.lock().expect("progress state");
        if done <= state.0 {
            return;
        }
        state.0 = done;
        state.1.push(ProgressSnapshot {
            done,
            total,
            elapsed_secs: elapsed,
            faults_per_sec: if elapsed > 0.0 { done as f64 / elapsed } else { 0.0 },
        });
    });
    let elapsed = start.elapsed().as_secs_f64();
    let records: Vec<(FaultSite, Verdict)> = sites
        .iter()
        .zip(pending.into_inner().expect("verdict slots"))
        .map(|(&s, v)| (s, v.expect("every fault graded")))
        .collect();
    let result = CampaignResult::from_records(&records);
    let telemetry = CampaignTelemetry {
        total: total as u64,
        mix: result.mix(),
        elapsed_secs: elapsed,
        faults_per_sec: if elapsed > 0.0 { total as f64 / elapsed } else { 0.0 },
        warm_hit_rate: None,
        progress: progress.into_inner().expect("progress state").1,
    };
    (result, records, telemetry)
}

/// [`run_campaign_detailed`](crate::run_campaign_detailed) plus
/// telemetry (cold path: `warm_hit_rate` stays `None`).
pub fn run_campaign_telemetry(
    experiment: &Experiment,
    golden: &Observation,
    faults: &FaultList,
    threads: usize,
) -> (CampaignResult, Vec<(FaultSite, Verdict)>, CampaignTelemetry) {
    let grader = ExperimentGrader { experiment, golden };
    run_campaign_graded_telemetry(&grader, faults, threads)
}

/// [`run_campaign_warm_detailed`](crate::run_campaign_warm_detailed)
/// plus telemetry. `warm_hit_rate` is the fraction of faults that
/// short-circuited on the warm path's early-verdict exit — everything
/// except hangs, which by definition ran out their whole tail budget.
pub fn run_campaign_warm_telemetry(
    experiment: &Experiment,
    golden: &Observation,
    faults: &FaultList,
    threads: usize,
) -> (CampaignResult, Vec<(FaultSite, Verdict)>, CampaignTelemetry) {
    let snapshot = experiment.snapshot(golden);
    let grader = WarmExperimentGrader { experiment, golden, snapshot: &snapshot };
    let (result, records, mut telemetry) = run_campaign_graded_telemetry(&grader, faults, threads);
    telemetry.warm_hit_rate = Some(if result.total == 0 {
        0.0
    } else {
        1.0 - result.hang as f64 / result.total as f64
    });
    (result, records, telemetry)
}
