//! Fleet-scale in-field campaign service.
//!
//! The paper's on-line STL campaigns ultimately run across a *fleet*:
//! thousands of ECUs, heterogeneous in cache geometry, write policy
//! and core mix, each grading a slice of the collapsed fault universe
//! between drive cycles. This module is the simulator-side service for
//! that deployment shape:
//!
//! * [`shard`] — the ECU population ([`EcuSpec`]) and the work
//!   inventory ([`FleetPlan`], [`Shard`]);
//! * [`lease`] — lease-based work distribution with epochs, watchdog
//!   deadlines, work stealing, jittered exponential backoff and
//!   quarantine ([`LeaseTable`], [`LeasePolicy`], [`ShardFate`]);
//! * [`chaos`] — the seeded worker-failure injection plane
//!   ([`WorkerChaos`]: panic / hang / slow / corrupt-result);
//! * [`orchestrator`] — the thread-pool service ([`run_fleet`]), the
//!   serial reference ([`run_fleet_serial`]) and the production grader
//!   ([`ExperimentFleetGrader`]);
//! * [`process`] — the process-per-worker pool
//!   ([`run_fleet_process`]) for true crash isolation.
//!
//! The headline guarantee, asserted over dozens of seeded chaos storms
//! by the `fleet` test suite: under random injected worker failures
//! the fleet run terminates, never deadlocks, its merged verdict map
//! is bit-identical to an uninterrupted serial run on every completed
//! shard, and every skipped shard is explicitly accounted as
//! quarantined with a cause.

pub mod chaos;
pub mod lease;
pub mod orchestrator;
pub mod process;
pub mod shard;

pub use chaos::{ChaosAction, ForcedFailure, WorkerChaos};
pub use lease::{FailOutcome, FailureKind, Lease, LeasePolicy, LeaseTable, ShardFate};
pub use orchestrator::{
    assemble_ecu, run_fleet, run_fleet_serial, shard_checkpoint_path, ExperimentFleetGrader,
    FleetConfig, FleetGrader, FleetReport, ShardResult,
};
pub use process::{execute_shard_standalone, run_fleet_process, ShardCommand};
pub use shard::{EcuSpec, FleetPlan, Shard};
