//! The fleet orchestrator: leased shards, worker threads, a watchdog
//! monitor, and chaos-tolerant result merging.
//!
//! The headline property (asserted by the `fleet` test suite over
//! dozens of seeded chaos storms): a [`run_fleet`] invocation under
//! random injected worker failures **terminates**, never deadlocks,
//! and its merged verdict map is **bit-identical** to
//! [`run_fleet_serial`] on every completed shard, with every
//! non-completed shard explicitly accounted as quarantined with a
//! cause. The machinery that makes this true:
//!
//! * verdicts are pure functions of (ECU config, fault site), so a
//!   retried or stolen shard re-grades to the same answer;
//! * results are sealed with a checksum over (shard, fault-list
//!   fingerprint, ECU fingerprint, verdicts) — a corrupted result
//!   fails validation and is retried, never merged;
//! * stale-epoch reports (the lease was stolen meanwhile) are dropped,
//!   so a resurrected hung worker cannot double-merge;
//! * per-shard checkpoints are bound to both the shard's fault slice
//!   *and* its ECU configuration, so resuming a killed fleet cannot
//!   attribute one variant's verdicts to another.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use sbst_fault::Verdict;
use sbst_obs::{FleetTelemetry, TraceEvent, TraceKind, VerdictMix};
use sbst_stl::WrapError;

use crate::checkpoint::{fnv, Checkpoint};
use crate::experiment::{Experiment, Observation, Snapshot};

use super::chaos::{ChaosAction, WorkerChaos};
use super::lease::{FailOutcome, FailureKind, LeasePolicy, LeaseTable, ShardFate};
use super::shard::{EcuSpec, FleetPlan, Shard};

/// Grades one fault of one ECU variant — the seam the fleet engine
/// runs behind. The production implementation is
/// [`ExperimentFleetGrader`]; the chaos property tests substitute pure
/// synthetic graders so fifty storms finish in seconds.
pub trait FleetGrader: Sync {
    /// Grades `site` on ECU variant `ecu` (`spec` is
    /// `plan.ecus[ecu]`).
    fn grade(&self, ecu: usize, spec: &EcuSpec, site: sbst_fault::FaultSite) -> Verdict;
}

/// Builds the full simulation stack for one ECU variant: the assembled
/// experiment, its golden observation, and the warm-start snapshot.
///
/// # Errors
///
/// Propagates wrapper/assembly errors.
pub fn assemble_ecu(spec: &EcuSpec) -> Result<(Experiment, Observation, Snapshot), WrapError> {
    let factory = crate::routines_for(spec.unit);
    let experiment = Experiment::assemble_config(&*factory, &spec.config)?;
    let golden = experiment.golden();
    let snapshot = experiment.snapshot(&golden);
    Ok((experiment, golden, snapshot))
}

/// The production fleet grader: one warm-start simulation stack per
/// ECU variant, every fault graded through the snapshot fast path.
pub struct ExperimentFleetGrader {
    cells: Vec<(Experiment, Observation, Snapshot)>,
}

impl ExperimentFleetGrader {
    /// Assembles the stack of every variant in `plan` up front (one
    /// golden run each).
    ///
    /// # Errors
    ///
    /// Propagates wrapper/assembly errors of any variant.
    pub fn new(plan: &FleetPlan) -> Result<ExperimentFleetGrader, WrapError> {
        let cells = plan.ecus.iter().map(assemble_ecu).collect::<Result<Vec<_>, _>>()?;
        Ok(ExperimentFleetGrader { cells })
    }
}

impl FleetGrader for ExperimentFleetGrader {
    fn grade(&self, ecu: usize, _spec: &EcuSpec, site: sbst_fault::FaultSite) -> Verdict {
        let (experiment, golden, snapshot) = &self.cells[ecu];
        experiment.test_fault_warm(golden, snapshot, site)
    }
}

/// A sealed shard result: the verdicts plus a checksum binding them to
/// the exact shard, fault slice and ECU configuration that produced
/// them. Only results whose seal [validates](ShardResult::is_valid)
/// are ever merged.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardResult {
    /// Shard index.
    pub shard: usize,
    /// Faults restored from a checkpoint rather than graded.
    pub resumed: u32,
    /// Per-fault verdicts, in shard fault order.
    pub verdicts: Vec<Verdict>,
    /// FNV-1a over (shard, fault fingerprint, ECU fingerprint,
    /// verdict tags).
    pub checksum: u64,
}

impl ShardResult {
    fn checksum_of(shard: usize, fault_fp: u64, ecu_fp: u64, verdicts: &[Verdict]) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        fnv(&mut h, &(shard as u64).to_le_bytes());
        fnv(&mut h, &fault_fp.to_le_bytes());
        fnv(&mut h, &ecu_fp.to_le_bytes());
        for v in verdicts {
            fnv(&mut h, v.tag().as_bytes());
        }
        h
    }

    /// Seals a completed shard's verdicts.
    pub fn seal(
        shard: usize,
        fault_fp: u64,
        ecu_fp: u64,
        verdicts: Vec<Verdict>,
        resumed: u32,
    ) -> ShardResult {
        let checksum = ShardResult::checksum_of(shard, fault_fp, ecu_fp, &verdicts);
        ShardResult { shard, resumed, verdicts, checksum }
    }

    /// Whether the seal matches this shard/fault-slice/ECU binding —
    /// i.e. the verdicts were not corrupted (or misrouted) in transit.
    pub fn is_valid(&self, shard: usize, fault_fp: u64, ecu_fp: u64) -> bool {
        self.shard == shard
            && self.checksum == ShardResult::checksum_of(shard, fault_fp, ecu_fp, &self.verdicts)
    }
}

/// Counters of what the chaos plane actually did (as opposed to was
/// configured to do), shared across workers.
#[derive(Default)]
pub(crate) struct InjectedTally {
    pub panics: AtomicU64,
    pub hangs: AtomicU64,
    pub slows: AtomicU64,
    pub corruptions: AtomicU64,
    pub checkpoints_rejected: AtomicU64,
    pub faults_graded: AtomicU64,
}

/// Outcome of one shard attempt that did not panic.
pub(crate) enum AttemptOutcome {
    /// A sealed (possibly chaos-corrupted) result.
    Sealed(ShardResult),
    /// The lease was stolen; the attempt stopped cooperatively and
    /// reports nothing.
    Cancelled,
}

/// Per-shard checkpoint path inside a fleet checkpoint directory.
pub fn shard_checkpoint_path(dir: &Path, shard: usize) -> PathBuf {
    dir.join(format!("shard-{shard:04}.ckpt.json"))
}

/// Executes one attempt of one shard: restores its checkpoint (when
/// enabled and valid for this fault slice + ECU), grades the remaining
/// faults, persists progress, applies the chaos action rolled for
/// `(shard, attempt)`, and seals the result.
///
/// Panics when the chaos action is an injected panic — callers run it
/// under `catch_unwind` (thread pool) or in a separate process.
#[allow(clippy::too_many_arguments)]
pub(crate) fn execute_shard(
    plan: &FleetPlan,
    shard: &Shard,
    attempt: u8,
    chaos: &WorkerChaos,
    grader: &dyn FleetGrader,
    checkpoint_dir: Option<&Path>,
    checkpoint_every: usize,
    cancel: &AtomicBool,
    tally: &InjectedTally,
) -> AttemptOutcome {
    let spec = &plan.ecus[shard.ecu];
    let sites = plan.sites(shard);
    let faults = plan.shard_fault_list(shard);
    let fault_fp = plan.shard_fingerprint(shard);
    let ecu_fp = spec.fingerprint();
    let action = chaos.roll(shard.index, attempt, sites.len());

    if action == ChaosAction::Slow {
        tally.slows.fetch_add(1, Ordering::Relaxed);
        std::thread::sleep(Duration::from_millis(chaos.slow_millis));
        if cancel.load(Ordering::Acquire) {
            return AttemptOutcome::Cancelled;
        }
    }

    // Restore this shard's checkpoint when it matches both the fault
    // slice and the ECU configuration; anything else is discarded.
    let ckpt_path = checkpoint_dir.map(|d| shard_checkpoint_path(d, shard.index));
    let mut checkpoint = Checkpoint::with_config(&faults, ecu_fp);
    if let Some(path) = ckpt_path.as_deref() {
        if path.exists() {
            match Checkpoint::load(path) {
                Ok(cp)
                    if cp.fingerprint == checkpoint.fingerprint
                        && cp.config == ecu_fp
                        && cp.verdicts.len() == sites.len() =>
                {
                    checkpoint = cp;
                }
                _ => {
                    tally.checkpoints_rejected.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
    }
    let resumed = checkpoint.completed() as u32;

    let every = checkpoint_every.max(1);
    let mut graded = 0usize;
    for (i, &site) in sites.iter().enumerate() {
        if cancel.load(Ordering::Acquire) {
            return AttemptOutcome::Cancelled;
        }
        if checkpoint.verdicts[i].is_some() {
            continue;
        }
        match action {
            ChaosAction::Panic { after } if graded == after => {
                tally.panics.fetch_add(1, Ordering::Relaxed);
                panic!("chaos: injected worker panic (shard {}, attempt {attempt})", shard.index);
            }
            ChaosAction::Hang { after } if graded == after => {
                tally.hangs.fetch_add(1, Ordering::Relaxed);
                // Hang until the lease is stolen and the monitor
                // cancels us (process workers are killed instead).
                loop {
                    if cancel.load(Ordering::Acquire) {
                        return AttemptOutcome::Cancelled;
                    }
                    std::thread::sleep(Duration::from_millis(1));
                }
            }
            _ => {}
        }
        checkpoint.verdicts[i] = Some(grader.grade(shard.ecu, spec, site));
        graded += 1;
        tally.faults_graded.fetch_add(1, Ordering::Relaxed);
        if let Some(path) = ckpt_path.as_deref() {
            if graded.is_multiple_of(every) {
                // Best-effort: a failed write must not fail the shard.
                let _ = checkpoint.save(path);
            }
        }
    }
    if let Some(path) = ckpt_path.as_deref() {
        let _ = checkpoint.save(path);
    }

    let verdicts: Vec<Verdict> =
        checkpoint.verdicts.iter().map(|v| v.expect("every fault graded")).collect();
    let mut result = ShardResult::seal(shard.index, fault_fp, ecu_fp, verdicts, resumed);
    if action == ChaosAction::Corrupt {
        // Flip one verdict *after* sealing: the orchestrator's
        // validation must catch this, or the headline bit-identity
        // property dies.
        tally.corruptions.fetch_add(1, Ordering::Relaxed);
        result.verdicts[0] = match result.verdicts[0] {
            Verdict::Undetected => Verdict::Hang,
            _ => Verdict::Undetected,
        };
    }
    AttemptOutcome::Sealed(result)
}

/// Fleet orchestrator configuration.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Worker threads (or concurrent worker processes).
    pub workers: usize,
    /// Lease / retry / backoff policy.
    pub policy: LeasePolicy,
    /// Failure injection plane.
    pub chaos: WorkerChaos,
    /// Per-shard checkpoint directory (`None` disables checkpointing).
    pub checkpoint_dir: Option<PathBuf>,
    /// Persist a shard's checkpoint every this many newly graded
    /// faults (and once at shard completion).
    pub checkpoint_every: usize,
    /// Monitor poll interval (lease expiry granularity).
    pub poll: Duration,
}

impl FleetConfig {
    /// `workers` workers under [`LeasePolicy::fast`], chaos off, no
    /// checkpointing.
    pub fn new(workers: usize, seed: u64) -> FleetConfig {
        FleetConfig {
            workers: workers.max(1),
            policy: LeasePolicy::fast(seed),
            chaos: WorkerChaos::off(),
            checkpoint_dir: None,
            checkpoint_every: 4,
            poll: Duration::from_millis(2),
        }
    }
}

/// Everything a fleet run produced.
#[derive(Debug)]
pub struct FleetReport {
    /// Terminal fate of every shard, in plan order.
    pub fates: Vec<ShardFate>,
    /// Merged verdicts per shard (`None` exactly for quarantined
    /// shards), in shard fault order.
    pub verdicts: Vec<Option<Vec<Verdict>>>,
    /// Run telemetry (counters, injections, throughput, verdict mix).
    pub telemetry: FleetTelemetry,
    /// Lease-protocol trace events (`cycle` is milliseconds since the
    /// run started, `core` the worker id).
    pub events: Vec<TraceEvent>,
}

impl FleetReport {
    /// Whether every shard completed (nothing quarantined).
    pub fn is_complete(&self) -> bool {
        self.fates.iter().all(|f| matches!(f, ShardFate::Completed { .. }))
    }

    /// Shard indices that were quarantined, with their causes.
    pub fn quarantined(&self) -> Vec<(usize, FailureKind)> {
        self.fates
            .iter()
            .enumerate()
            .filter_map(|(i, f)| match f {
                ShardFate::Quarantined { cause, .. } => Some((i, *cause)),
                ShardFate::Completed { .. } => None,
            })
            .collect()
    }
}

pub(crate) struct EventLog {
    pub(crate) start: Instant,
    pub(crate) events: Mutex<Vec<TraceEvent>>,
}

impl EventLog {
    pub(crate) fn new() -> EventLog {
        EventLog { start: Instant::now(), events: Mutex::new(Vec::new()) }
    }

    pub(crate) fn push(&self, core: Option<u8>, kind: TraceKind) {
        let cycle = self.start.elapsed().as_millis() as u64;
        self.events.lock().expect("event log").push(TraceEvent { cycle, core, kind });
    }

    pub(crate) fn fail_event(
        &self,
        core: Option<u8>,
        shard: usize,
        kind: FailureKind,
        outcome: FailOutcome,
    ) {
        match outcome {
            FailOutcome::Retry { backoff, failures } => self.push(
                core,
                TraceKind::ShardRetry {
                    shard: shard as u32,
                    failures,
                    backoff_ms: backoff.as_millis() as u32,
                    cause: kind.as_str(),
                },
            ),
            FailOutcome::Quarantined => self.push(
                core,
                TraceKind::ShardQuarantine { shard: shard as u32, cause: kind.as_str() },
            ),
            FailOutcome::Stale => {}
        }
    }
}

/// Serial reference run: every shard graded in plan order on the
/// calling thread, no leases, no chaos. The baseline the headline
/// property compares [`run_fleet`] against.
pub fn run_fleet_serial(plan: &FleetPlan, grader: &dyn FleetGrader) -> Vec<Vec<Verdict>> {
    plan.shards
        .iter()
        .map(|shard| {
            let spec = &plan.ecus[shard.ecu];
            plan.sites(shard).iter().map(|&s| grader.grade(shard.ecu, spec, s)).collect()
        })
        .collect()
}

/// Runs the fleet campaign on a pool of worker threads with lease
/// stealing, retry/backoff, quarantine and (optionally) per-shard
/// checkpoints; see the module docs for the guarantees.
///
/// Always terminates: every shard ends
/// [`Completed`](ShardFate::Completed) or
/// [`Quarantined`](ShardFate::Quarantined), and the monitor's lease
/// expiry bounds how long any failure can stall progress.
pub fn run_fleet(plan: &FleetPlan, grader: &dyn FleetGrader, cfg: &FleetConfig) -> FleetReport {
    let table = LeaseTable::new(plan.shard_count(), cfg.policy);
    let merged: Mutex<Vec<Option<Vec<Verdict>>>> = Mutex::new(vec![None; plan.shard_count()]);
    let tally = InjectedTally::default();
    let restored_total = AtomicU64::new(0);
    let log = EventLog::new();

    std::thread::scope(|scope| {
        for worker in 0..cfg.workers.max(1) {
            let table = &table;
            let merged = &merged;
            let tally = &tally;
            let restored_total = &restored_total;
            let log = &log;
            scope.spawn(move || {
                let core = Some(worker as u8);
                loop {
                    if table.all_settled() {
                        break;
                    }
                    let Some(lease) = table.claim() else {
                        // Everything is leased or backing off; the
                        // monitor will free work up.
                        std::thread::sleep(cfg.poll);
                        continue;
                    };
                    let shard = &plan.shards[lease.shard];
                    log.push(
                        core,
                        TraceKind::ShardLease { shard: lease.shard as u32, attempt: lease.attempt },
                    );
                    let outcome = catch_unwind(AssertUnwindSafe(|| {
                        execute_shard(
                            plan,
                            shard,
                            lease.attempt,
                            &cfg.chaos,
                            grader,
                            cfg.checkpoint_dir.as_deref(),
                            cfg.checkpoint_every,
                            &lease.cancel,
                            tally,
                        )
                    }));
                    match outcome {
                        Ok(AttemptOutcome::Sealed(result)) => {
                            let fault_fp = plan.shard_fingerprint(shard);
                            let ecu_fp = plan.ecus[shard.ecu].fingerprint();
                            if result.is_valid(lease.shard, fault_fp, ecu_fp) {
                                if table.complete(lease.shard, lease.epoch, result.resumed) {
                                    if result.resumed > 0 {
                                        table.note_resume();
                                        restored_total
                                            .fetch_add(u64::from(result.resumed), Ordering::Relaxed);
                                    }
                                    log.push(
                                        core,
                                        TraceKind::ShardDone {
                                            shard: lease.shard as u32,
                                            restored: result.resumed,
                                        },
                                    );
                                    merged.lock().expect("merged verdicts")[lease.shard] =
                                        Some(result.verdicts);
                                }
                                // else: stale epoch — the shard was
                                // stolen and re-graded; drop silently
                                // (the table counted the late result).
                            } else {
                                let fail =
                                    table.fail(lease.shard, lease.epoch, FailureKind::Corrupt);
                                log.fail_event(core, lease.shard, FailureKind::Corrupt, fail);
                            }
                        }
                        Ok(AttemptOutcome::Cancelled) => {
                            // The steal already charged this failure.
                        }
                        Err(_) => {
                            let fail = table.fail(lease.shard, lease.epoch, FailureKind::Panic);
                            log.fail_event(core, lease.shard, FailureKind::Panic, fail);
                        }
                    }
                }
            });
        }

        // The monitor: expire leases, cancel their holders, put the
        // shards back on the market (or quarantine them).
        while !table.all_settled() {
            for (shard, outcome) in table.expire_stale() {
                log.push(None, TraceKind::ShardSteal { shard: shard as u32 });
                log.fail_event(None, shard, FailureKind::Timeout, outcome);
            }
            std::thread::sleep(cfg.poll);
        }
    });

    let verdicts = merged.into_inner().expect("merged verdicts");
    let mut mix = VerdictMix::default();
    for v in verdicts.iter().flatten().flatten() {
        match v {
            Verdict::WrongSignature => mix.wrong_signature += 1,
            Verdict::TestFail => mix.test_fail += 1,
            Verdict::UnexpectedTrap => mix.unexpected_trap += 1,
            Verdict::Hang => mix.hang += 1,
            Verdict::Undetected => mix.undetected += 1,
            Verdict::SimError => mix.sim_error += 1,
        }
    }
    let elapsed = log.start.elapsed().as_secs_f64();
    let graded = tally.faults_graded.load(Ordering::Relaxed);
    let restored = restored_total.load(Ordering::Relaxed);
    let telemetry = FleetTelemetry {
        counters: table.counters(),
        injected_panics: tally.panics.load(Ordering::Relaxed),
        injected_hangs: tally.hangs.load(Ordering::Relaxed),
        injected_slowdowns: tally.slows.load(Ordering::Relaxed),
        injected_corruptions: tally.corruptions.load(Ordering::Relaxed),
        checkpoints_rejected: tally.checkpoints_rejected.load(Ordering::Relaxed),
        faults_graded: graded,
        faults_restored: restored,
        elapsed_secs: elapsed,
        faults_per_sec: if elapsed > 0.0 { (graded + restored) as f64 / elapsed } else { 0.0 },
        mix,
    };
    FleetReport {
        fates: table.fates(),
        verdicts,
        telemetry,
        events: log.events.into_inner().expect("event log"),
    }
}
