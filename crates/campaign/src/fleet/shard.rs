//! Fleet sharding: a heterogeneous ECU population × a collapsed fault
//! list, cut into leased work units.
//!
//! A deployed fleet is not one SoC: cars ship with different cache
//! sizes, write policies and core mixes, and the in-field STL campaign
//! must grade every variant. [`EcuSpec`] names one variant (a full
//! [`ExperimentConfig`] plus the unit under test); [`FleetPlan`] pairs
//! every variant with its fault list and chunks the work into
//! [`Shard`]s small enough that losing a worker mid-shard loses little.

use sbst_cpu::CoreKind;
use sbst_fault::{FaultList, FaultSite, Unit};
use sbst_mem::{CacheConfig, WritePolicy};
use sbst_soc::Scenario;

use crate::checkpoint::{fingerprint, fingerprint_config};
use crate::experiment::{ExecStyle, ExperimentConfig};

/// One ECU variant of the fleet population.
#[derive(Debug, Clone)]
pub struct EcuSpec {
    /// Human-readable variant name (lands in telemetry/dashboards).
    pub name: String,
    /// The full SoC configuration of this variant.
    pub config: ExperimentConfig,
    /// The unit whose fault list this variant grades.
    pub unit: Unit,
}

impl EcuSpec {
    /// Fingerprint binding shard checkpoints to this exact variant:
    /// the configuration fingerprint folded with the unit under test.
    pub fn fingerprint(&self) -> u64 {
        let cfg = fingerprint_config(&self.config);
        let mut h = cfg ^ 0x9e37_79b9_7f4a_7c15;
        for b in format!("{:?}", self.unit).bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        if h == crate::checkpoint::CONFIG_UNBOUND {
            h = 1;
        }
        h
    }

    /// A small heterogeneous population: three variants differing in
    /// core kind, core count, cache geometry and data-cache write
    /// policy — the axes the in-field papers vary across a fleet.
    pub fn population(unit: Unit) -> Vec<EcuSpec> {
        let base = |kind: CoreKind, cores: usize| ExperimentConfig {
            scenario: Scenario { active_cores: cores, ..Scenario::single_core() },
            ..ExperimentConfig::new(kind, ExecStyle::CacheWrapped, Scenario::single_core())
        };
        vec![
            EcuSpec {
                name: "ecu-a3-8k4k-wa".into(),
                config: base(CoreKind::A, 3),
                unit,
            },
            EcuSpec {
                name: "ecu-b1-4k2k-wa".into(),
                config: ExperimentConfig {
                    icache: CacheConfig { size_bytes: 4 * 1024, ..CacheConfig::icache_8k() },
                    dcache: CacheConfig { size_bytes: 2 * 1024, ..CacheConfig::dcache_4k() },
                    ..base(CoreKind::B, 1)
                },
                unit,
            },
            EcuSpec {
                name: "ecu-c2-8k4k-nwa".into(),
                config: ExperimentConfig {
                    dcache: CacheConfig {
                        policy: WritePolicy::NoWriteAllocate,
                        ..CacheConfig::dcache_4k()
                    },
                    ..base(CoreKind::C, 2)
                },
                unit,
            },
        ]
    }
}

/// One leased work unit: a contiguous slice of one ECU variant's fault
/// list.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Shard {
    /// Index of this shard within the plan (lease table key).
    pub index: usize,
    /// Index of the ECU variant in [`FleetPlan::ecus`].
    pub ecu: usize,
    /// First fault (index into the variant's fault list).
    pub start: usize,
    /// Number of faults in this shard.
    pub len: usize,
}

/// The fleet's complete work inventory: every ECU variant, its fault
/// list, and the shard cut.
#[derive(Debug, Clone)]
pub struct FleetPlan {
    /// The ECU population.
    pub ecus: Vec<EcuSpec>,
    /// Per-variant fault lists (indexed like [`FleetPlan::ecus`]).
    faults: Vec<FaultList>,
    /// The shard cut, in plan order.
    pub shards: Vec<Shard>,
}

impl FleetPlan {
    /// Cuts `faults[i]` (the fault list of `ecus[i]`) into shards of at
    /// most `shard_faults` faults each.
    ///
    /// # Panics
    ///
    /// Panics if the population and fault-list counts differ or
    /// `shard_faults` is zero.
    pub fn build(ecus: Vec<EcuSpec>, faults: Vec<FaultList>, shard_faults: usize) -> FleetPlan {
        assert_eq!(ecus.len(), faults.len(), "one fault list per ECU variant");
        assert!(shard_faults > 0, "shards must hold at least one fault");
        let mut shards = Vec::new();
        for (ecu, list) in faults.iter().enumerate() {
            let mut start = 0;
            while start < list.len() {
                let len = shard_faults.min(list.len() - start);
                shards.push(Shard { index: shards.len(), ecu, start, len });
                start += len;
            }
        }
        FleetPlan { ecus, faults, shards }
    }

    /// The fault sites of one shard.
    pub fn sites(&self, shard: &Shard) -> &[FaultSite] {
        &self.faults[shard.ecu].sites()[shard.start..shard.start + shard.len]
    }

    /// The fault list of one ECU variant.
    pub fn ecu_faults(&self, ecu: usize) -> &FaultList {
        &self.faults[ecu]
    }

    /// The shard's fault slice as an owned list (what its checkpoint
    /// fingerprint is computed over).
    pub fn shard_fault_list(&self, shard: &Shard) -> FaultList {
        self.sites(shard).iter().copied().collect()
    }

    /// Fingerprint of the shard's fault slice.
    pub fn shard_fingerprint(&self, shard: &Shard) -> u64 {
        fingerprint(&self.shard_fault_list(shard))
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Total faults across every variant.
    pub fn total_faults(&self) -> usize {
        self.faults.iter().map(FaultList::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sbst_fault::{Element, Polarity};

    fn list(n: u16) -> FaultList {
        (0..n)
            .map(|i| FaultSite {
                unit: Unit::Hdcu,
                instance: i,
                element: Element::CmpOut,
                polarity: Polarity::StuckAt0,
            })
            .collect()
    }

    #[test]
    fn build_cuts_every_variant_without_loss_or_overlap() {
        let ecus = EcuSpec::population(Unit::Hdcu);
        let plan = FleetPlan::build(ecus, vec![list(10), list(7), list(3)], 4);
        assert_eq!(plan.shard_count(), 3 + 2 + 1);
        assert_eq!(plan.total_faults(), 20);
        // Shards tile each variant's list exactly.
        for ecu in 0..3 {
            let mut covered = Vec::new();
            for s in plan.shards.iter().filter(|s| s.ecu == ecu) {
                covered.extend(s.start..s.start + s.len);
            }
            covered.sort_unstable();
            let expect: Vec<usize> = (0..plan.ecu_faults(ecu).len()).collect();
            assert_eq!(covered, expect, "ecu {ecu}");
        }
        // Shard indices are their plan positions.
        for (i, s) in plan.shards.iter().enumerate() {
            assert_eq!(s.index, i);
            assert_eq!(plan.sites(s).len(), s.len);
        }
    }

    #[test]
    fn population_variants_have_distinct_fingerprints() {
        let ecus = EcuSpec::population(Unit::Forwarding);
        let fps: Vec<u64> = ecus.iter().map(EcuSpec::fingerprint).collect();
        for i in 0..fps.len() {
            for j in i + 1..fps.len() {
                assert_ne!(fps[i], fps[j], "{} vs {}", ecus[i].name, ecus[j].name);
            }
        }
        // The same variant graded against a different unit is a
        // different checkpoint binding.
        let other = EcuSpec { unit: Unit::Hdcu, ..ecus[0].clone() };
        assert_ne!(ecus[0].fingerprint(), other.fingerprint());
    }

    #[test]
    fn shard_fingerprints_differ_between_slices() {
        let ecus = EcuSpec::population(Unit::Hdcu);
        let plan = FleetPlan::build(ecus, vec![list(8), list(8), list(8)], 4);
        let a = plan.shard_fingerprint(&plan.shards[0]);
        let b = plan.shard_fingerprint(&plan.shards[1]);
        assert_ne!(a, b);
    }
}
