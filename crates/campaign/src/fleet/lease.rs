//! Lease table: the fleet's single source of truth about who owns
//! which shard, with epochs, deadlines, backoff and quarantine.
//!
//! The protocol is deliberately small:
//!
//! 1. A worker [`claim`](LeaseTable::claim)s an idle shard whose
//!    backoff gate has passed; the claim stamps a fresh **epoch** and a
//!    **deadline**, and hands out a cancel token.
//! 2. The worker reports [`complete`](LeaseTable::complete) or
//!    [`fail`](LeaseTable::fail) *with its epoch*. A stale epoch means
//!    the lease was stolen in the meantime — the report is dropped and
//!    counted as a late result, never merged.
//! 3. The monitor calls [`expire_stale`](LeaseTable::expire_stale);
//!    leases past their deadline are cancelled (token set), bumped to a
//!    new epoch and put back on the market — that is the **steal**.
//! 4. Each failure charges the shard's retry budget and arms a
//!    jittered exponential backoff; budget exhausted → **quarantine**
//!    with the final cause, the fleet-level analog of the supervisor's
//!    `DegradedReport`.
//!
//! Everything is guarded by one mutex; lock hold times are O(shards)
//! scans with no I/O, so the table never becomes the bottleneck at the
//! fleet sizes this simulator runs.

use std::sync::atomic::AtomicBool;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use sbst_mem::Prng;
use sbst_obs::FleetCounters;

/// Why a shard attempt failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailureKind {
    /// The worker panicked mid-shard.
    Panic,
    /// The lease expired (hang, overload, or a dead worker).
    Timeout,
    /// The result failed checksum validation.
    Corrupt,
    /// The worker process exited without producing a result.
    WorkerLost,
}

impl FailureKind {
    /// Stable text tag (telemetry, trace events).
    pub fn as_str(self) -> &'static str {
        match self {
            FailureKind::Panic => "panic",
            FailureKind::Timeout => "timeout",
            FailureKind::Corrupt => "corrupt",
            FailureKind::WorkerLost => "worker-lost",
        }
    }
}

/// Terminal outcome of one shard.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShardFate {
    /// The shard's verdicts were validated and merged.
    Completed {
        /// Leases issued (1 = first try succeeded).
        attempts: u8,
        /// Leases stolen after expiry.
        steals: u32,
        /// Faults restored from a checkpoint rather than re-graded.
        resumed_faults: u32,
    },
    /// Retry budget exhausted; the shard is explicitly accounted as
    /// skipped with its final failure cause.
    Quarantined {
        /// The failure that exhausted the budget.
        cause: FailureKind,
        /// Leases issued before giving up.
        attempts: u8,
    },
}

/// A live lease: permission to grade one shard until `deadline`.
#[derive(Debug, Clone)]
pub struct Lease {
    /// Shard index.
    pub shard: usize,
    /// Epoch stamped at claim time; reports carry it back.
    pub epoch: u64,
    /// Attempt number (1-based).
    pub attempt: u8,
    /// Cooperative cancel token: set when the lease is stolen. Thread
    /// workers poll it; the process pool kills the child instead.
    pub cancel: Arc<AtomicBool>,
}

/// What [`LeaseTable::fail`] decided.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailOutcome {
    /// The shard goes back on the market after `backoff`.
    Retry {
        /// Jittered exponential backoff before the next lease.
        backoff: Duration,
        /// Failures charged so far.
        failures: u8,
    },
    /// Retry budget exhausted.
    Quarantined,
    /// The epoch was stale (lease already stolen); report dropped.
    Stale,
}

#[derive(Debug, Clone)]
enum SlotState {
    Idle,
    Leased { deadline: Instant, cancel: Arc<AtomicBool> },
    Done,
    Quarantined,
}

#[derive(Debug, Clone)]
struct Slot {
    state: SlotState,
    epoch: u64,
    attempts: u8,
    failures: u8,
    steals: u32,
    resumed_faults: u32,
    last_cause: Option<FailureKind>,
    not_before: Option<Instant>,
}

struct Inner {
    slots: Vec<Slot>,
    counters: FleetCounters,
}

/// Retry/backoff policy of a lease table.
#[derive(Debug, Clone, Copy)]
pub struct LeasePolicy {
    /// Failures tolerated per shard before quarantine.
    pub max_retries: u8,
    /// Lease duration; expiry triggers a steal.
    pub lease_timeout: Duration,
    /// Backoff after the first failure; doubles per failure.
    pub backoff_base: Duration,
    /// Backoff ceiling.
    pub backoff_cap: Duration,
    /// Jitter seed (jitter is in `[0, backoff_base)`).
    pub seed: u64,
}

impl LeasePolicy {
    /// A policy tuned for tests: short leases, millisecond backoff.
    pub fn fast(seed: u64) -> LeasePolicy {
        LeasePolicy {
            max_retries: 6,
            lease_timeout: Duration::from_millis(40),
            backoff_base: Duration::from_millis(2),
            backoff_cap: Duration::from_millis(16),
            seed,
        }
    }
}

/// The shared lease table (one per fleet run).
pub struct LeaseTable {
    inner: Mutex<Inner>,
    policy: LeasePolicy,
}

impl LeaseTable {
    /// A table with `shards` idle shards.
    pub fn new(shards: usize, policy: LeasePolicy) -> LeaseTable {
        let slot = Slot {
            state: SlotState::Idle,
            epoch: 0,
            attempts: 0,
            failures: 0,
            steals: 0,
            resumed_faults: 0,
            last_cause: None,
            not_before: None,
        };
        LeaseTable {
            inner: Mutex::new(Inner {
                slots: vec![slot; shards],
                counters: FleetCounters { shards: shards as u64, ..FleetCounters::default() },
            }),
            policy,
        }
    }

    /// The policy this table enforces.
    pub fn policy(&self) -> &LeasePolicy {
        &self.policy
    }

    /// Claims the lowest-indexed idle shard whose backoff gate has
    /// passed. `None` when nothing is claimable *right now* (all leased,
    /// settled, or backing off).
    pub fn claim(&self) -> Option<Lease> {
        let now = Instant::now();
        let mut inner = self.inner.lock().expect("lease table poisoned");
        let idx = inner.slots.iter().position(|s| {
            matches!(s.state, SlotState::Idle) && s.not_before.is_none_or(|t| t <= now)
        })?;
        let slot = &mut inner.slots[idx];
        slot.epoch += 1;
        slot.attempts = slot.attempts.saturating_add(1);
        let cancel = Arc::new(AtomicBool::new(false));
        slot.state = SlotState::Leased {
            deadline: now + self.policy.lease_timeout,
            cancel: Arc::clone(&cancel),
        };
        let lease = Lease { shard: idx, epoch: slot.epoch, attempt: slot.attempts, cancel };
        inner.counters.leases += 1;
        Some(lease)
    }

    /// Reports a validated result. Returns `false` (and merges nothing)
    /// when the epoch is stale — the lease was stolen and the shard
    /// re-graded elsewhere.
    pub fn complete(&self, shard: usize, epoch: u64, resumed_faults: u32) -> bool {
        let mut inner = self.inner.lock().expect("lease table poisoned");
        let slot = &mut inner.slots[shard];
        let live = matches!(slot.state, SlotState::Leased { .. }) && slot.epoch == epoch;
        if !live {
            inner.counters.late_results += 1;
            return false;
        }
        slot.state = SlotState::Done;
        slot.resumed_faults = resumed_faults;
        inner.counters.completed += 1;
        true
    }

    /// Reports a failed attempt: charges the retry budget and either
    /// re-arms the shard behind a jittered exponential backoff or
    /// quarantines it.
    pub fn fail(&self, shard: usize, epoch: u64, kind: FailureKind) -> FailOutcome {
        let mut inner = self.inner.lock().expect("lease table poisoned");
        let outcome = Self::fail_slot(&mut inner.slots[shard], epoch, kind, &self.policy);
        match outcome {
            FailOutcome::Retry { .. } => inner.counters.retries += 1,
            FailOutcome::Quarantined => inner.counters.quarantined += 1,
            FailOutcome::Stale => inner.counters.late_results += 1,
        }
        outcome
    }

    /// Expires leases past their deadline: cancels the token, bumps the
    /// epoch (so the hung attempt's eventual report is stale) and
    /// charges a [`FailureKind::Timeout`]. Returns `(shard, outcome)`
    /// for every stolen lease.
    pub fn expire_stale(&self) -> Vec<(usize, FailOutcome)> {
        let now = Instant::now();
        let mut inner = self.inner.lock().expect("lease table poisoned");
        let mut stolen = Vec::new();
        for idx in 0..inner.slots.len() {
            let expired = match &inner.slots[idx].state {
                SlotState::Leased { deadline, cancel } if *deadline <= now => {
                    cancel.store(true, std::sync::atomic::Ordering::Release);
                    true
                }
                _ => false,
            };
            if expired {
                let epoch = inner.slots[idx].epoch;
                inner.slots[idx].steals += 1;
                let outcome =
                    Self::fail_slot(&mut inner.slots[idx], epoch, FailureKind::Timeout, &self.policy);
                inner.counters.steals += 1;
                match outcome {
                    FailOutcome::Retry { .. } => inner.counters.retries += 1,
                    FailOutcome::Quarantined => inner.counters.quarantined += 1,
                    FailOutcome::Stale => {}
                }
                stolen.push((idx, outcome));
            }
        }
        stolen
    }

    fn fail_slot(slot: &mut Slot, epoch: u64, kind: FailureKind, policy: &LeasePolicy) -> FailOutcome {
        let live = matches!(slot.state, SlotState::Leased { .. }) && slot.epoch == epoch;
        if !live {
            return FailOutcome::Stale;
        }
        // Bump the epoch so the (possibly still running) attempt's
        // eventual report is recognisably stale.
        slot.epoch += 1;
        slot.failures = slot.failures.saturating_add(1);
        slot.last_cause = Some(kind);
        if slot.failures > policy.max_retries {
            slot.state = SlotState::Quarantined;
            return FailOutcome::Quarantined;
        }
        let exp = u32::from(slot.failures.saturating_sub(1)).min(16);
        let backoff = policy
            .backoff_base
            .saturating_mul(1u32 << exp)
            .min(policy.backoff_cap);
        let jitter_ns = Prng::new(policy.seed ^ 0xbacc_0ff5)
            .split(slot.epoch)
            .below(policy.backoff_base.as_nanos().max(1) as u64);
        let backoff = backoff + Duration::from_nanos(jitter_ns);
        slot.state = SlotState::Idle;
        slot.not_before = Some(Instant::now() + backoff);
        FailOutcome::Retry { backoff, failures: slot.failures }
    }

    /// Bookkeeping hook: counts a shard whose faults were (partially)
    /// restored from a checkpoint.
    pub fn note_resume(&self) {
        self.inner.lock().expect("lease table poisoned").counters.resumes += 1;
    }

    /// Whether every shard reached a terminal state.
    pub fn all_settled(&self) -> bool {
        self.inner
            .lock()
            .expect("lease table poisoned")
            .slots
            .iter()
            .all(|s| matches!(s.state, SlotState::Done | SlotState::Quarantined))
    }

    /// Snapshot of the fleet counters.
    pub fn counters(&self) -> FleetCounters {
        self.inner.lock().expect("lease table poisoned").counters
    }

    /// Terminal fate of every shard. Call after
    /// [`all_settled`](LeaseTable::all_settled) turns true; non-terminal
    /// shards are reported as quarantined with their last cause.
    pub fn fates(&self) -> Vec<ShardFate> {
        let inner = self.inner.lock().expect("lease table poisoned");
        inner
            .slots
            .iter()
            .map(|s| match s.state {
                SlotState::Done => ShardFate::Completed {
                    attempts: s.attempts,
                    steals: s.steals,
                    resumed_faults: s.resumed_faults,
                },
                _ => ShardFate::Quarantined {
                    cause: s.last_cause.unwrap_or(FailureKind::WorkerLost),
                    attempts: s.attempts,
                },
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn policy() -> LeasePolicy {
        LeasePolicy {
            max_retries: 2,
            lease_timeout: Duration::from_millis(30),
            backoff_base: Duration::from_millis(1),
            backoff_cap: Duration::from_millis(4),
            seed: 5,
        }
    }

    #[test]
    fn claim_complete_settles_every_shard_once() {
        let table = LeaseTable::new(3, policy());
        let mut leased = Vec::new();
        while let Some(l) = table.claim() {
            leased.push(l);
        }
        assert_eq!(leased.len(), 3);
        assert!(table.claim().is_none(), "no double leases");
        for l in &leased {
            assert!(table.complete(l.shard, l.epoch, 0));
        }
        assert!(table.all_settled());
        let c = table.counters();
        assert_eq!((c.shards, c.leases, c.completed), (3, 3, 3));
        assert!(table
            .fates()
            .iter()
            .all(|f| matches!(f, ShardFate::Completed { attempts: 1, steals: 0, .. })));
    }

    #[test]
    fn stale_epoch_reports_are_dropped_as_late_results() {
        let table = LeaseTable::new(1, policy());
        let first = table.claim().expect("lease");
        match table.fail(first.shard, first.epoch, FailureKind::Panic) {
            FailOutcome::Retry { failures: 1, .. } => {}
            other => panic!("expected first retry, got {other:?}"),
        }
        // The original holder reports again with its stale epoch.
        assert!(!table.complete(first.shard, first.epoch, 0));
        assert_eq!(
            table.fail(first.shard, first.epoch, FailureKind::Panic),
            FailOutcome::Stale
        );
        assert_eq!(table.counters().late_results, 2);
        // The shard is still claimable (after backoff) and completable.
        std::thread::sleep(Duration::from_millis(10));
        let second = table.claim().expect("re-lease after backoff");
        assert_eq!(second.attempt, 2);
        assert!(table.complete(second.shard, second.epoch, 0));
        assert!(table.all_settled());
    }

    #[test]
    fn budget_exhaustion_quarantines_with_the_last_cause() {
        let table = LeaseTable::new(1, policy());
        let mut backoffs = Vec::new();
        for round in 0..3 {
            std::thread::sleep(Duration::from_millis(8));
            let l = table.claim().expect("lease");
            match table.fail(l.shard, l.epoch, FailureKind::Corrupt) {
                FailOutcome::Retry { backoff, .. } => backoffs.push(backoff),
                FailOutcome::Quarantined => {
                    assert_eq!(round, 2, "max_retries=2 tolerates two failures");
                }
                FailOutcome::Stale => panic!("live epoch cannot be stale"),
            }
        }
        assert!(table.all_settled());
        assert_eq!(table.claim().map(|l| l.shard), None);
        match table.fates()[0] {
            ShardFate::Quarantined { cause: FailureKind::Corrupt, attempts: 3 } => {}
            other => panic!("unexpected fate {other:?}"),
        }
        // Exponential: second backoff's floor doubles the first's.
        assert_eq!(backoffs.len(), 2);
        assert!(backoffs[1] >= Duration::from_millis(2), "backoff grows: {backoffs:?}");
        assert_eq!(table.counters().quarantined, 1);
    }

    #[test]
    fn expiry_steals_the_lease_and_cancels_the_holder() {
        let table = LeaseTable::new(1, policy());
        let l = table.claim().expect("lease");
        assert!(table.expire_stale().is_empty(), "lease still fresh");
        std::thread::sleep(Duration::from_millis(35));
        let stolen = table.expire_stale();
        assert_eq!(stolen.len(), 1);
        assert!(l.cancel.load(std::sync::atomic::Ordering::Acquire), "holder cancelled");
        assert!(matches!(stolen[0], (0, FailOutcome::Retry { .. })));
        // The hung holder's late completion is dropped.
        assert!(!table.complete(l.shard, l.epoch, 0));
        let c = table.counters();
        assert_eq!((c.steals, c.retries, c.late_results), (1, 1, 1));
    }
}
