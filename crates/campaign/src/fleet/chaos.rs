//! Worker chaos plane: seeded failure injection for fleet campaigns.
//!
//! The fleet orchestrator's headline property — terminate, never
//! deadlock, completed verdicts bit-identical to a serial run — is only
//! credible if workers actually die. [`WorkerChaos`] decides, purely
//! from `(seed, shard, attempt)`, whether a given grading attempt
//! panics mid-shard, hangs past its lease, runs slow, or silently
//! corrupts its result. The roll is a pure function, so the same seed
//! replays the same failure schedule on every run and in every worker
//! topology (threads or processes).

use sbst_mem::Prng;

/// What the chaos plane does to one grading attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChaosAction {
    /// No injection: the attempt runs honestly.
    None,
    /// Panic after grading `after` faults (worker dies mid-shard).
    Panic {
        /// Faults graded before the panic fires.
        after: usize,
    },
    /// Hang after grading `after` faults until cancelled/killed.
    Hang {
        /// Faults graded before the hang starts.
        after: usize,
    },
    /// Grade honestly but sleep long enough to stress the lease clock.
    Slow,
    /// Complete, but flip one verdict *after* the result is sealed, so
    /// the orchestrator's checksum validation must catch it.
    Corrupt,
}

/// A failure forced onto one specific `(shard, attempt)` pair —
/// deterministic injections for CI smoke runs, checked before the
/// probabilistic roll.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ForcedFailure {
    /// Shard index the injection targets.
    pub shard: usize,
    /// Attempt number (1-based; attempt 1 is the first lease).
    pub attempt: u8,
    /// The injected action.
    pub action: ChaosAction,
}

/// Seeded per-attempt failure injection configuration.
///
/// Probabilities are per-mille and evaluated in order (panic, hang,
/// slow, corrupt); at most one action fires per attempt.
#[derive(Debug, Clone)]
pub struct WorkerChaos {
    /// PRNG seed; rolls derive from `seed`, shard and attempt only.
    pub seed: u64,
    /// Panic probability, ‰ per attempt.
    pub panic_permille: u32,
    /// Hang probability, ‰ per attempt.
    pub hang_permille: u32,
    /// Slowdown probability, ‰ per attempt.
    pub slow_permille: u32,
    /// Result-corruption probability, ‰ per attempt.
    pub corrupt_permille: u32,
    /// How long a [`ChaosAction::Slow`] attempt sleeps before grading.
    pub slow_millis: u64,
    /// Deterministic injections, consulted before any roll.
    pub forced: Vec<ForcedFailure>,
}

impl WorkerChaos {
    /// No injection at all.
    pub fn off() -> WorkerChaos {
        WorkerChaos {
            seed: 0,
            panic_permille: 0,
            hang_permille: 0,
            slow_permille: 0,
            corrupt_permille: 0,
            slow_millis: 0,
            forced: Vec::new(),
        }
    }

    /// The standard storm used by the property tests: every failure
    /// mode armed with double-digit per-mille rates.
    pub fn storm(seed: u64) -> WorkerChaos {
        WorkerChaos {
            seed,
            panic_permille: 120,
            hang_permille: 60,
            slow_permille: 80,
            corrupt_permille: 60,
            slow_millis: 10,
            forced: Vec::new(),
        }
    }

    /// Whether any injection can ever fire.
    pub fn is_active(&self) -> bool {
        !self.forced.is_empty()
            || self.panic_permille > 0
            || self.hang_permille > 0
            || self.slow_permille > 0
            || self.corrupt_permille > 0
    }

    /// The action for attempt `attempt` (1-based) on shard `shard`
    /// whose fault slice holds `len` faults. Pure: same inputs, same
    /// action.
    pub fn roll(&self, shard: usize, attempt: u8, len: usize) -> ChaosAction {
        for f in &self.forced {
            if f.shard == shard && f.attempt == attempt {
                return f.action;
            }
        }
        let mut rng = Prng::new(self.seed ^ 0x5eed_f1ee_7000_0000)
            .split(shard as u64)
            .split(attempt as u64);
        let mid = |rng: &mut Prng| {
            if len <= 1 { 0 } else { rng.below(len as u64) as usize }
        };
        if rng.chance(self.panic_permille, 1000) {
            return ChaosAction::Panic { after: mid(&mut rng) };
        }
        if rng.chance(self.hang_permille, 1000) {
            return ChaosAction::Hang { after: mid(&mut rng) };
        }
        if rng.chance(self.slow_permille, 1000) {
            return ChaosAction::Slow;
        }
        if rng.chance(self.corrupt_permille, 1000) {
            return ChaosAction::Corrupt;
        }
        ChaosAction::None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rolls_are_deterministic_and_attempt_sensitive() {
        let chaos = WorkerChaos::storm(7);
        for shard in 0..40 {
            for attempt in 1..5 {
                assert_eq!(
                    chaos.roll(shard, attempt, 9),
                    chaos.roll(shard, attempt, 9),
                    "shard {shard} attempt {attempt}"
                );
            }
        }
        // Different attempts on the same shard see independent rolls:
        // across enough shards at least one shard must change action
        // between attempt 1 and 2.
        let changed = (0..200)
            .any(|s| chaos.roll(s, 1, 9) != chaos.roll(s, 2, 9));
        assert!(changed, "attempt number never affected the roll");
    }

    #[test]
    fn storm_actually_fires_every_mode() {
        let chaos = WorkerChaos::storm(21);
        let mut saw = [false; 4];
        for shard in 0..4000 {
            match chaos.roll(shard, 1, 8) {
                ChaosAction::Panic { after } => {
                    assert!(after < 8);
                    saw[0] = true;
                }
                ChaosAction::Hang { after } => {
                    assert!(after < 8);
                    saw[1] = true;
                }
                ChaosAction::Slow => saw[2] = true,
                ChaosAction::Corrupt => saw[3] = true,
                ChaosAction::None => {}
            }
        }
        assert_eq!(saw, [true; 4], "panic/hang/slow/corrupt all observed");
    }

    #[test]
    fn forced_failures_override_the_roll() {
        let mut chaos = WorkerChaos::off();
        chaos.forced.push(ForcedFailure {
            shard: 3,
            attempt: 1,
            action: ChaosAction::Panic { after: 2 },
        });
        assert_eq!(chaos.roll(3, 1, 10), ChaosAction::Panic { after: 2 });
        assert_eq!(chaos.roll(3, 2, 10), ChaosAction::None);
        assert_eq!(chaos.roll(4, 1, 10), ChaosAction::None);
        assert!(chaos.is_active());
        assert!(!WorkerChaos::off().is_active());
    }
}
