//! Process-per-worker fleet pool: true crash isolation.
//!
//! The thread pool in [`run_fleet`](super::run_fleet) isolates panics
//! with `catch_unwind`, but an aborting worker (stack overflow, OOM
//! kill, `std::process::abort`) would take the whole fleet down. This
//! pool runs every shard attempt in its **own child process**: the
//! child grades the shard, writes a sealed [`ShardResult`] file, and
//! exits; the parent reaps exits, validates seals, and kills children
//! whose lease expired. A child dying in *any* way — clean panic,
//! abort, SIGKILL — is just a failed attempt.
//!
//! The parent stays a single thread: the children are the parallelism,
//! and the lease table is the only shared state, so there is nothing
//! to deadlock on.

use std::io;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::sync::atomic::AtomicBool;

use sbst_fault::Verdict;
use sbst_obs::{FleetTelemetry, TraceKind, VerdictMix};

use crate::checkpoint::{malformed, CheckpointError, Parser};

use super::chaos::ChaosAction;
use super::lease::{FailureKind, Lease, LeaseTable, ShardFate};
use super::orchestrator::{
    execute_shard, AttemptOutcome, EventLog, FleetConfig, FleetGrader, FleetReport, InjectedTally,
    ShardResult,
};
use super::shard::{FleetPlan, Shard};

impl ShardResult {
    /// Serializes the result to the shard-result file format (one JSON
    /// object, same vocabulary as the checkpoint format).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(48 + 16 * self.verdicts.len());
        out.push_str("{\n");
        out.push_str(&format!("  \"shard\": {},\n", self.shard));
        out.push_str(&format!("  \"resumed\": {},\n", self.resumed));
        out.push_str(&format!("  \"checksum\": {},\n", self.checksum));
        out.push_str("  \"verdicts\": [");
        for (i, v) in self.verdicts.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push('"');
            out.push_str(v.tag());
            out.push('"');
        }
        out.push_str("]\n}\n");
        out
    }

    /// Parses the shard-result file format.
    ///
    /// # Errors
    ///
    /// Returns [`CheckpointError::Malformed`] on any deviation — a torn
    /// or truncated result file from a killed child must parse as
    /// garbage, never as a half-result.
    pub fn from_json(text: &str) -> Result<ShardResult, CheckpointError> {
        let mut p = Parser { rest: text };
        p.expect('{')?;
        let mut shard = None;
        let mut resumed = None;
        let mut checksum = None;
        let mut verdicts = None;
        loop {
            let key = p.string()?;
            p.expect(':')?;
            match key.as_str() {
                "shard" => shard = Some(p.integer()? as usize),
                "resumed" => resumed = Some(p.integer()? as u32),
                "checksum" => checksum = Some(p.integer()?),
                "verdicts" => {
                    let slots = p.verdict_array()?;
                    let mut out = Vec::with_capacity(slots.len());
                    for v in slots {
                        out.push(v.ok_or_else(|| malformed("null verdict in shard result"))?);
                    }
                    verdicts = Some(out);
                }
                other => {
                    return Err(malformed(&format!("unknown key {other:?}")));
                }
            }
            if !p.comma_or('}')? {
                break;
            }
        }
        Ok(ShardResult {
            shard: shard.ok_or_else(|| malformed("missing shard"))?,
            resumed: resumed.ok_or_else(|| malformed("missing resumed"))?,
            checksum: checksum.ok_or_else(|| malformed("missing checksum"))?,
            verdicts: verdicts.ok_or_else(|| malformed("missing verdicts"))?,
        })
    }
}

/// Child-process entry point: grades one shard attempt to a sealed
/// result. Injected chaos behaves like a real defect would in a
/// process worker — a panic unwinds into a non-zero exit, a hang spins
/// until the parent kills the process.
///
/// Intended for the `--worker` mode of a fleet binary: rebuild the
/// same deterministic [`FleetPlan`] from the CLI arguments, call this,
/// write the result with [`ShardResult::to_json`], exit zero.
pub fn execute_shard_standalone(
    plan: &FleetPlan,
    shard: &Shard,
    attempt: u8,
    cfg: &FleetConfig,
    grader: &dyn FleetGrader,
) -> ShardResult {
    let cancel = AtomicBool::new(false);
    let tally = InjectedTally::default();
    match execute_shard(
        plan,
        shard,
        attempt,
        &cfg.chaos,
        grader,
        cfg.checkpoint_dir.as_deref(),
        cfg.checkpoint_every,
        &cancel,
        &tally,
    ) {
        AttemptOutcome::Sealed(result) => result,
        // The cancel token is never set in a standalone process.
        AttemptOutcome::Cancelled => unreachable!("standalone shard attempts are never cancelled"),
    }
}

/// Builds the child [`Command`] for one shard attempt. The callback
/// receives the shard, the attempt number and the path the child must
/// write its [`ShardResult`] JSON to.
pub type ShardCommand<'a> = dyn Fn(&Shard, u8, &Path) -> Command + 'a;

struct ActiveChild {
    child: Child,
    lease: Lease,
    shard: usize,
    out: PathBuf,
    /// Set when the parent killed this child after a steal: its exit
    /// has already been accounted for and must not be reported again.
    killed: bool,
}

/// Runs the fleet campaign with one **child process per shard
/// attempt** — the crash-isolated twin of
/// [`run_fleet`](super::run_fleet), with the same lease / steal /
/// retry / quarantine semantics. Hung children are killed when their
/// lease expires; children that die without writing a valid sealed
/// result are charged as [`FailureKind::WorkerLost`].
///
/// Injection counters in the returned telemetry are computed
/// parent-side from the (pure) chaos rolls, since a crashed child
/// cannot report what it did.
///
/// # Errors
///
/// Propagates creation of the scratch directory for result files;
/// per-child spawn failures are charged to the shard instead.
pub fn run_fleet_process(
    plan: &FleetPlan,
    cfg: &FleetConfig,
    command: &ShardCommand<'_>,
) -> io::Result<FleetReport> {
    let scratch = std::env::temp_dir().join(format!(
        "sbst-fleet-{}-{:x}",
        std::process::id(),
        cfg.policy.seed
    ));
    std::fs::create_dir_all(&scratch)?;

    let table = LeaseTable::new(plan.shard_count(), cfg.policy);
    let mut merged: Vec<Option<Vec<Verdict>>> = vec![None; plan.shard_count()];
    let log = EventLog::new();
    let mut active: Vec<ActiveChild> = Vec::new();
    let mut injected = [0u64; 4]; // panic, hang, slow, corrupt (scheduled)
    let mut restored_total = 0u64;

    while !table.all_settled() || !active.is_empty() {
        // 1. Expire stale leases; kill the children that held them.
        for (shard, outcome) in table.expire_stale() {
            log.push(None, TraceKind::ShardSteal { shard: shard as u32 });
            log.fail_event(None, shard, FailureKind::Timeout, outcome);
            for a in active.iter_mut().filter(|a| a.shard == shard && !a.killed) {
                let _ = a.child.kill();
                a.killed = true;
            }
        }

        // 2. Reap exited children and account their results.
        let mut still_active = Vec::new();
        for mut a in active {
            let status = match a.child.try_wait() {
                Ok(Some(status)) => status,
                Ok(None) => {
                    still_active.push(a);
                    continue;
                }
                // Treat a wait error like a lost worker.
                Err(_) => {
                    if !a.killed {
                        let fail = table.fail(a.shard, a.lease.epoch, FailureKind::WorkerLost);
                        log.fail_event(None, a.shard, FailureKind::WorkerLost, fail);
                    }
                    let _ = std::fs::remove_file(&a.out);
                    continue;
                }
            };
            if a.killed {
                // Already charged as a timeout steal.
                let _ = std::fs::remove_file(&a.out);
                continue;
            }
            let result = status
                .success()
                .then(|| std::fs::read_to_string(&a.out).ok())
                .flatten()
                .and_then(|text| ShardResult::from_json(&text).ok());
            let _ = std::fs::remove_file(&a.out);
            match result {
                Some(result) => {
                    let shard = &plan.shards[a.shard];
                    let fault_fp = plan.shard_fingerprint(shard);
                    let ecu_fp = plan.ecus[shard.ecu].fingerprint();
                    if result.is_valid(a.shard, fault_fp, ecu_fp) {
                        if table.complete(a.shard, a.lease.epoch, result.resumed) {
                            if result.resumed > 0 {
                                table.note_resume();
                                restored_total += u64::from(result.resumed);
                            }
                            log.push(
                                None,
                                TraceKind::ShardDone {
                                    shard: a.shard as u32,
                                    restored: result.resumed,
                                },
                            );
                            merged[a.shard] = Some(result.verdicts);
                        }
                    } else {
                        let fail = table.fail(a.shard, a.lease.epoch, FailureKind::Corrupt);
                        log.fail_event(None, a.shard, FailureKind::Corrupt, fail);
                    }
                }
                None => {
                    // Non-zero exit (panic/abort/signal) or an
                    // unreadable/torn result file.
                    let fail = table.fail(a.shard, a.lease.epoch, FailureKind::WorkerLost);
                    log.fail_event(None, a.shard, FailureKind::WorkerLost, fail);
                }
            }
        }
        active = still_active;

        // 3. Fill free worker slots with new leases.
        while active.len() < cfg.workers.max(1) {
            let Some(lease) = table.claim() else { break };
            let shard = &plan.shards[lease.shard];
            log.push(
                None,
                TraceKind::ShardLease { shard: lease.shard as u32, attempt: lease.attempt },
            );
            match cfg.chaos.roll(lease.shard, lease.attempt, shard.len) {
                ChaosAction::Panic { .. } => injected[0] += 1,
                ChaosAction::Hang { .. } => injected[1] += 1,
                ChaosAction::Slow => injected[2] += 1,
                ChaosAction::Corrupt => injected[3] += 1,
                ChaosAction::None => {}
            }
            let out = scratch.join(format!("shard-{:04}-e{}.json", lease.shard, lease.epoch));
            let _ = std::fs::remove_file(&out);
            let mut cmd = command(shard, lease.attempt, &out);
            cmd.stdout(Stdio::null()).stderr(Stdio::null());
            match cmd.spawn() {
                Ok(child) => active.push(ActiveChild {
                    child,
                    shard: lease.shard,
                    lease,
                    out,
                    killed: false,
                }),
                Err(_) => {
                    let fail = table.fail(lease.shard, lease.epoch, FailureKind::WorkerLost);
                    log.fail_event(None, lease.shard, FailureKind::WorkerLost, fail);
                }
            }
        }

        std::thread::sleep(cfg.poll);
    }
    let _ = std::fs::remove_dir_all(&scratch);

    let mut mix = VerdictMix::default();
    for v in merged.iter().flatten().flatten() {
        match v {
            Verdict::WrongSignature => mix.wrong_signature += 1,
            Verdict::TestFail => mix.test_fail += 1,
            Verdict::UnexpectedTrap => mix.unexpected_trap += 1,
            Verdict::Hang => mix.hang += 1,
            Verdict::Undetected => mix.undetected += 1,
            Verdict::SimError => mix.sim_error += 1,
        }
    }
    let completed_faults: u64 = plan
        .shards
        .iter()
        .filter(|s| merged[s.index].is_some())
        .map(|s| s.len as u64)
        .sum();
    let elapsed = log.start.elapsed().as_secs_f64();
    let graded = completed_faults.saturating_sub(restored_total);
    let telemetry = FleetTelemetry {
        counters: table.counters(),
        injected_panics: injected[0],
        injected_hangs: injected[1],
        injected_slowdowns: injected[2],
        injected_corruptions: injected[3],
        checkpoints_rejected: 0,
        faults_graded: graded,
        faults_restored: restored_total,
        elapsed_secs: elapsed,
        faults_per_sec: if elapsed > 0.0 { completed_faults as f64 / elapsed } else { 0.0 },
        mix,
    };
    let fates = table.fates();
    debug_assert_eq!(
        fates.iter().filter(|f| matches!(f, ShardFate::Completed { .. })).count(),
        merged.iter().filter(|v| v.is_some()).count(),
        "every completed shard has merged verdicts and vice versa"
    );
    Ok(FleetReport { fates, verdicts: merged, telemetry, events: log.events.into_inner().expect("event log") })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shard_result_json_round_trips_and_rejects_torn_files() {
        let r = ShardResult::seal(
            5,
            0xabc,
            0xdef,
            vec![Verdict::Hang, Verdict::Undetected, Verdict::WrongSignature],
            2,
        );
        let text = r.to_json();
        let back = ShardResult::from_json(&text).expect("parses");
        assert_eq!(back, r);
        assert!(back.is_valid(5, 0xabc, 0xdef));
        assert!(!back.is_valid(5, 0xabc, 0xdee), "wrong ECU binding rejected");
        assert!(!back.is_valid(4, 0xabc, 0xdef), "wrong shard rejected");
        // Every torn prefix (anything short of the closing brace) is
        // rejected, never half-parsed.
        for cut in 0..text.trim_end().len() {
            assert!(ShardResult::from_json(&text[..cut]).is_err(), "accepted prefix {cut}");
        }
    }

    #[test]
    fn tampered_verdicts_fail_the_seal() {
        let mut r = ShardResult::seal(1, 10, 20, vec![Verdict::Undetected; 4], 0);
        assert!(r.is_valid(1, 10, 20));
        r.verdicts[2] = Verdict::Hang;
        assert!(!r.is_valid(1, 10, 20));
    }
}
