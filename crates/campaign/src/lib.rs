#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! # sbst-campaign — fault-simulation campaigns and scenario sweeps
//!
//! The in-simulator counterpart of the paper's experimental flow
//! (post-layout netlist + commercial fault simulator):
//!
//! * [`Experiment`] — one (routine, core-under-test, execution style,
//!   scenario) configuration, including the parallel execution of the
//!   same routine on the other cores;
//! * [`run_campaign`] — grades a [`FaultList`](sbst_fault::FaultList)
//!   against an experiment, one full-SoC simulation per fault, fanned
//!   out over worker threads;
//! * [`tables`] — regenerates the paper's Tables I–IV with configurable
//!   [`Effort`](tables::Effort).
//!
//! ## Example: grade a few ICU faults
//!
//! ```
//! use sbst_campaign::{routines_for, run_campaign, ExecStyle, Experiment};
//! use sbst_cpu::{unit_fault_list, CoreKind};
//! use sbst_fault::Unit;
//! use sbst_soc::Scenario;
//!
//! let factory = routines_for(Unit::Icu);
//! let exp = Experiment::assemble(
//!     &*factory,
//!     CoreKind::A,
//!     ExecStyle::CacheWrapped,
//!     &Scenario::single_core(),
//! ).expect("experiment");
//! let golden = exp.golden();
//! let faults = unit_fault_list(CoreKind::A, Unit::Icu).sample(60);
//! let result = run_campaign(&exp, &golden, &faults, 0);
//! assert_eq!(result.total, faults.len());
//! ```

pub mod ablation;
pub mod chaos;
mod checkpoint;
mod experiment;
pub mod fleet;
pub mod split;
mod faultsim;
mod ppsfp;
pub mod tables;
mod telemetry;

pub use chaos::{run_chaos_campaign, ChaosCell, ChaosReport, ChaosSweepConfig, ChaosTelemetry};
pub use checkpoint::{
    fingerprint, fingerprint_config, resume_campaign, resume_campaign_graded, Checkpoint,
    CheckpointConfig, CheckpointError, ResumableOutcome, CHECKPOINT_VERSION, CONFIG_UNBOUND,
};
pub use experiment::{
    ExecStyle, Experiment, ExperimentConfig, Observation, RoutineFactory, Snapshot,
};
pub use faultsim::{
    run_campaign, run_campaign_collapsed, run_campaign_detailed, run_campaign_graded,
    run_campaign_warm, run_campaign_warm_detailed, summarize_by_category, CampaignError,
    CampaignResult, ExperimentGrader, FaultGrader, WarmExperimentGrader,
};
pub use ppsfp::{
    run_campaign_ppsfp, run_campaign_ppsfp_detailed, run_campaign_ppsfp_telemetry, PpsfpStats,
};
pub use telemetry::{
    run_campaign_graded_telemetry, run_campaign_telemetry, run_campaign_warm_telemetry,
};

use sbst_cpu::CoreKind;
use sbst_fault::Unit;
use sbst_stl::routines::{ForwardingTest, HdcuTest, IcuTest};
use sbst_stl::SelfTestRoutine;

/// The standard routine factory for a graded unit: the routine the paper
/// uses against that unit, specialised per core kind.
///
/// * [`Unit::Forwarding`] → the \[19\] algorithm with the performance
///   counters removed (Table II);
/// * [`Unit::Hdcu`] → the complete \[19\] algorithm with counters, in its
///   exhaustive form (the campaign splits it into cache-sized parts per
///   paper §III.2.2 when it exceeds the instruction cache);
/// * [`Unit::Icu`] → the \[21\]-based imprecise-interrupt routine.
pub fn routines_for(unit: Unit) -> Box<RoutineFactory<'static>> {
    match unit {
        Unit::Forwarding => {
            Box::new(|kind: CoreKind| {
                Box::new(ForwardingTest::without_pcs(kind)) as Box<dyn SelfTestRoutine>
            })
        }
        Unit::Hdcu => Box::new(|kind: CoreKind| {
            Box::new(HdcuTest::exhaustive(kind)) as Box<dyn SelfTestRoutine>
        }),
        Unit::Icu => {
            Box::new(|_: CoreKind| Box::new(IcuTest::new()) as Box<dyn SelfTestRoutine>)
        }
    }
}
